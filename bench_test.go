// Benchmarks regenerating the paper's evaluation artifacts. One
// benchmark per table/figure (see DESIGN.md's per-experiment index);
// run them all with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmarks report the paper's headline metrics (occurrence
// counts, overhead percentages, recovery accuracy) through b.ReportMetric
// so the regenerated numbers appear alongside timing.
package er_test

import (
	"io"
	"testing"

	"execrecon"
	"execrecon/internal/apps"
	"execrecon/internal/bench"
	"execrecon/internal/core"
	"execrecon/internal/prod"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// BenchmarkTable1 reproduces each of the 13 bugs through the full ER
// loop (Table 1: #Instr, #Occur, Symbex Time).
func BenchmarkTable1(b *testing.B) {
	for _, a := range apps.All() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			mod, err := a.Module()
			if err != nil {
				b.Fatal(err)
			}
			var occ int
			for i := 0; i < b.N; i++ {
				rep, err := core.Reproduce(core.Config{
					Module:        mod,
					Gen:           &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
					Symex:         symex.Options{QueryBudget: a.QueryBudget, MaxInstrs: 50_000_000},
					MaxIterations: 12,
				})
				if err != nil || !rep.Reproduced || !rep.Verified {
					b.Fatalf("reproduction failed: %v (%+v)", err, rep)
				}
				occ = rep.Occurrences
			}
			b.ReportMetric(float64(occ), "occurrences")
		})
	}
}

// BenchmarkFig5 measures shepherded symbolic execution progress under
// the three recording configurations of Fig. 5.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig5("")
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 3 {
			b.Fatalf("series: %d", len(r.Series))
		}
		// The defining shape: each iteration's recorded values make
		// the same prefix substantially faster.
		if !(r.Series[0].Total > r.Series[1].Total && r.Series[1].Total > r.Series[2].Total) {
			b.Fatalf("fig5 shape violated: %v / %v / %v",
				r.Series[0].Total, r.Series[1].Total, r.Series[2].Total)
		}
		b.ReportMetric(float64(r.Series[0].Total.Microseconds())/float64(r.Series[2].Total.Microseconds()), "speedup-iter2")
	}
}

// BenchmarkFig6ER measures ER's always-on control-flow tracing
// overhead per application (left bars of Fig. 6; the full measurement
// including final-iteration ptwrite instrumentation is `cmd/erbench
// -exp fig6`, which reports 0.38% average).
func BenchmarkFig6ER(b *testing.B) {
	for _, a := range apps.All() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			mod, err := a.Module()
			if err != nil {
				b.Fatal(err)
			}
			runner := prod.NewRunner()
			runner.Runs = 3
			var mean float64
			for i := 0; i < b.N; i++ {
				s := runner.MeasureER(mod, nil, func(i int) (*vm.Workload, int64) {
					return a.Benign(i), int64(i) + 1
				})
				mean = s.MeanPct
			}
			b.ReportMetric(mean, "overhead-%")
		})
	}
}

// BenchmarkFig6RR measures the record/replay baseline's overhead per
// application (right bars of Fig. 6).
func BenchmarkFig6RR(b *testing.B) {
	for _, a := range apps.All() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			mod, err := a.Module()
			if err != nil {
				b.Fatal(err)
			}
			runner := prod.NewRunner()
			runner.Runs = 3
			var mean float64
			for i := 0; i < b.N; i++ {
				s := runner.MeasureRR(mod, func(i int) (*vm.Workload, int64) {
					return a.Benign(i), int64(i) + 1
				})
				mean = s.MeanPct
			}
			b.ReportMetric(mean, "overhead-%")
		})
	}
}

// BenchmarkRandomSelection runs the §5.2 key-selection vs random
// recording comparison.
func BenchmarkRandomSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunRandomBaseline(0)
		var keyOK, rndOK int
		for _, r := range rows {
			if r.KeyOK {
				keyOK++
			}
			if r.NeedsData && r.RandomOK {
				rndOK++
			}
		}
		if keyOK < len(rows) {
			b.Fatalf("key selection failed on %d apps", len(rows)-keyOK)
		}
		b.ReportMetric(float64(rndOK), "random-successes")
	}
}

// BenchmarkAccuracy runs the §5.2 accuracy comparison (generated
// inputs vs originals).
func BenchmarkAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunAccuracy()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.SameFailure || !r.SameBranchHist {
				b.Fatalf("accuracy violated for %s: %+v", r.App, r)
			}
		}
	}
}

// BenchmarkReptRecovery measures REPT-style recovery accuracy vs
// trace length (§2.3/§5.2).
func BenchmarkReptRecovery(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunReptAccuracy([]int{50, 1000, 20000})
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].IncorrectPct
	}
	b.ReportMetric(last, "incorrect-%-at-20k")
}

// BenchmarkMimic runs the §5.4 invariant-localization case study.
func BenchmarkMimic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunMimic()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.RootCauseRank != 1 {
				b.Fatalf("%s: root cause ranked #%d", r.App, r.RootCauseRank)
			}
		}
	}
}

// BenchmarkQuickstartPipeline measures the full public-API pipeline on
// the quickstart scenario (compile → fail → reconstruct → verify).
func BenchmarkQuickstartPipeline(b *testing.B) {
	src := `
func main() int {
	int x = input32("x");
	int y = input32("y");
	assert(x * 2 + y != 100, "target");
	return 0;
}`
	mod, err := er.Compile("bench", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := er.NewWorkload().Add("x", 30).Add("y", 40)
		rep, err := er.Reproduce(mod, w, 1, er.Options{Log: io.Discard})
		if err != nil || !rep.Reproduced {
			b.Fatal("reproduction failed")
		}
	}
}

// BenchmarkTraceRecording measures pure monitoring throughput: VM
// execution with the PT-like encoder attached.
func BenchmarkTraceRecording(b *testing.B) {
	a := apps.ByName("Libpng-2004-0597")
	mod, err := a.Module()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, res, err := er.RecordTrace(mod, a.Benign(i%5), 1)
		if err != nil || res.Failure != nil {
			b.Fatalf("run failed: %v %v", err, res.Failure)
		}
		_ = tr
	}
}
