// Command er compiles and runs minc programs, and reproduces their
// failures through the full Execution Reconstruction loop.
//
// Usage:
//
//	er [flags] run prog.minc         tag=1,2,3 tag2=4 ... run once, report outcome
//	er [flags] reproduce prog.minc   tag=1,2,3 ...        ER loop on the failing input
//	er [flags] constraints prog.minc tag=1,2,3 ...        dump the failing run's path
//	                                                      constraint as SMT-LIB 2
//	er -coordinator URL submit prog.minc tag=1,2,3 ...    run once traced and ship a
//	                                                      failing occurrence to an
//	                                                      erd coordinator
//	er -coordinator URL verdicts                          list every cluster bucket's
//	                                                      triage outcome
//	er -coordinator URL timeline                          render every bucket's stitched
//	                                                      cross-process reconstruction
//	                                                      timeline (ingest → lease →
//	                                                      remote replay → resolve)
//
// Input streams are given as tag=v1,v2,... arguments.
//
// Flags:
//
//	-store <dir>   use a persistent trace archive (internal/tracestore)
//	               rooted at dir. `run` archives the traced run when it
//	               fails; `reproduce` routes every traced reoccurrence
//	               through the archive (append, then decode back off the
//	               segment log).
//	-replay-store  with -store, `reproduce` performs no production runs
//	               at all: reoccurrences are replayed from the archived
//	               records of the failure's signature, in sequence
//	               order. The archive must already hold the failure
//	               (e.g. from earlier `er run -store` invocations).
//	-coordinator   base URL of an erd coordinator (cmd/erd). Required by
//	               the `submit` and `verdicts` subcommands, which speak
//	               the cluster wire protocol as a pure client: submit
//	               traces into the fleet's ingest path, query triage
//	               verdicts back out.
//	-v             log ER loop progress to stderr.
//
// All errors — including a failure that cannot be reproduced and an
// archive that runs dry under -replay-store — exit non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"execrecon"
	"execrecon/internal/cluster"
	"execrecon/internal/core"
	"execrecon/internal/expr"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: er [-store dir] [-replay-store] [-lint] [-v] run|reproduce|constraints <prog.minc> [tag=v1,v2,...]...")
	fmt.Fprintln(os.Stderr, "       er -coordinator URL submit <prog.minc> [tag=v1,v2,...]...")
	fmt.Fprintln(os.Stderr, "       er -coordinator URL verdicts")
	fmt.Fprintln(os.Stderr, "       er -coordinator URL timeline")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	storeDir := flag.String("store", "", "archive traces in a persistent store rooted at this directory")
	replayStore := flag.Bool("replay-store", false, "reproduce from archived records only (requires -store)")
	metricsAddr := flag.String("metrics-addr", "", "serve live telemetry on this address (/metrics Prometheus text, /debug/er JSON) while the command runs")
	coordinator := flag.String("coordinator", "", "erd coordinator base URL (enables the submit and verdicts subcommands)")
	lint := flag.Bool("lint", false, "report advisory IR lint findings after compiling")
	verbose := flag.Bool("v", false, "log ER loop progress to stderr")
	flag.Usage = usage
	flag.Parse()
	// `verdicts` is a pure coordinator query with no program argument;
	// every other subcommand compiles one.
	if flag.Arg(0) == "verdicts" {
		if *coordinator == "" {
			fatal(fmt.Errorf("verdicts requires -coordinator"))
		}
		if flag.NArg() > 1 {
			usage()
		}
		reportVerdicts(*coordinator)
		return
	}
	// `timeline` likewise queries the coordinator directly.
	if flag.Arg(0) == "timeline" {
		if *coordinator == "" {
			fatal(fmt.Errorf("timeline requires -coordinator"))
		}
		if flag.NArg() > 1 {
			usage()
		}
		reportTimelines(*coordinator)
		return
	}
	if flag.NArg() < 2 {
		usage()
	}
	if *replayStore && *storeDir == "" {
		fatal(fmt.Errorf("-replay-store requires -store"))
	}
	cmd, path := flag.Arg(0), flag.Arg(1)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, findings, err := er.CompileWithLint(path, string(src))
	if err != nil {
		fatal(err)
	}
	if *lint {
		// CompileWithLint already includes the abstract interpreter's
		// rules: proven OOB and overflow fail the run, single-outcome
		// branches stay advisory.
		fatalFinding := false
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "er: lint: %s\n", f)
			if er.ErrorLevel(f.Rule) {
				fatalFinding = true
			}
		}
		if fatalFinding {
			os.Exit(1)
		}
	}
	w := er.NewWorkload()
	for _, arg := range flag.Args()[2:] {
		tag, vals, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad input argument %q (want tag=v1,v2,...)", arg))
		}
		for _, vs := range strings.Split(vals, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(vs), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad value %q in %q", vs, arg))
			}
			w.Add(tag, v)
		}
	}

	var store *tracestore.Store
	if *storeDir != "" {
		store, err = tracestore.Open(*storeDir, tracestore.Options{})
		if err != nil {
			fatal(fmt.Errorf("open trace store: %w", err))
		}
		defer store.Close()
	}
	var log *os.File
	if *verbose {
		log = os.Stderr
	}
	app := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))

	// Live telemetry: every stage of the session (core loop, symbolic
	// executor, solver, trace store) reports into one registry served
	// on -metrics-addr for the lifetime of the command.
	var (
		reg    *er.Telemetry
		tracer *er.Tracer
	)
	if *metricsAddr != "" {
		reg = er.NewTelemetry()
		tracer = er.NewTracer(0)
		if store != nil {
			store.RegisterMetrics(reg)
		}
		srv, err := er.ServeTelemetry(*metricsAddr, er.TelemetryOptions{Registry: reg, Tracer: tracer})
		if err != nil {
			fatal(fmt.Errorf("metrics endpoint: %w", err))
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "er: telemetry on http://%s/metrics\n", srv.Addr())
	}
	erOpts := er.Options{Log: log, Telemetry: reg, Tracer: tracer}

	switch cmd {
	case "run":
		if store == nil {
			res := er.Run(mod, w, 1)
			reportRun(res)
			return
		}
		// Traced run: archive the ring when the run fails, exactly as a
		// production machine would ship it.
		ring := pt.NewRing(pt.DefaultRingSize)
		enc := pt.NewEncoder(ring)
		res := vm.New(mod, vm.Config{Input: w, Seed: 1, Tracer: enc}).Run("main")
		enc.Finish()
		if res.Failure != nil {
			seq, err := store.AppendRing(res.Failure, tracestore.Meta{
				App: app, Seed: 1, Instrs: res.Stats.Instrs,
			}, ring)
			if err != nil {
				fatal(fmt.Errorf("archive trace: %w", err))
			}
			fmt.Printf("archived: key=%#x seq=%d\n", tracestore.KeyOf(res.Failure), seq)
		}
		reportRun(res)
	case "reproduce":
		var rep *er.Report
		switch {
		case store == nil:
			rep, err = er.Reproduce(mod, w, 1, erOpts)
		case *replayStore:
			key, kerr := storeKeyFor(store, mod, w)
			if kerr != nil {
				fatal(kerr)
			}
			rep, err = er.ReproduceFrom(mod, &tracestore.ReplaySource{Store: store, Key: key},
				erOpts)
		default:
			rep, err = er.ReproduceFrom(mod, &tracestore.Source{
				Store: store,
				Gen:   &core.FixedWorkload{Workload: w, Seed: 1},
				App:   app,
			}, erOpts)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(er.Describe(rep))
		if !rep.Reproduced {
			// Reproduction failing is the tool failing: make it
			// visible to scripts via the exit code.
			os.Exit(1)
		}
		fmt.Println("generated test case:")
		for tag, vals := range rep.TestCase.Streams {
			fmt.Printf("  %s = %v\n", tag, vals)
		}
	case "submit":
		if *coordinator == "" {
			fatal(fmt.Errorf("submit requires -coordinator"))
		}
		// Capture exactly what a production machine ships: a traced run
		// whose ring buffer and failure travel to the coordinator's
		// ingest path over the wire protocol.
		ring := pt.NewRing(pt.DefaultRingSize)
		enc := pt.NewEncoder(ring)
		res := vm.New(mod, vm.Config{Input: w, Seed: 1, Tracer: enc}).Run("main")
		enc.Finish()
		if res.Failure == nil {
			fatal(fmt.Errorf("the given input does not fail; nothing to submit"))
		}
		raw, lost := ring.Bytes()
		resp, err := cluster.NewClient(*coordinator, "").Submit(&cluster.SubmitRequest{
			App:     app,
			Failure: res.Failure,
			Raw:     raw,
			Lost:    lost,
			Seed:    1,
			Instrs:  res.Stats.Instrs,
		})
		if err != nil {
			fatal(err)
		}
		if !resp.OK {
			fatal(fmt.Errorf("coordinator rejected submit: %s", resp.Err))
		}
		if !resp.Accepted {
			fatal(fmt.Errorf("ingest dropped the occurrence (app %q not in the coordinator's corpus, or the fleet is shutting down)", app))
		}
		fmt.Printf("submitted: app=%s key=%#x failure=%v\n", app, tracestore.KeyOf(res.Failure), res.Failure)
	case "constraints":
		tr, res, err := er.RecordTrace(mod, w, 1)
		if err != nil {
			fatal(err)
		}
		if res.Failure == nil {
			fatal(fmt.Errorf("the given input does not fail; nothing to reconstruct"))
		}
		fmt.Fprintf(os.Stderr, "; failure: %v\n", res.Failure)
		sres := symex.New(mod, tr, res.Failure, symex.Options{}).Run("main")
		if sres.Status != symex.StatusCompleted && sres.Status != symex.StatusStalled {
			fatal(fmt.Errorf("symbolic execution %v: %v", sres.Status, sres.Err))
		}
		if err := expr.WriteSMTLIB(os.Stdout, sres.PathConstraint); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

// reportVerdicts lists every cluster bucket's triage outcome.
func reportVerdicts(base string) {
	resp, err := cluster.NewClient(base, "").Verdicts()
	if err != nil {
		fatal(err)
	}
	if !resp.OK {
		fatal(fmt.Errorf("coordinator rejected verdicts: %s", resp.Err))
	}
	if len(resp.Buckets) == 0 {
		fmt.Println("no buckets yet")
		return
	}
	for _, b := range resp.Buckets {
		status := b.State
		switch {
		case b.Reproduced && b.Verified:
			status = "reproduced+verified"
		case b.Reproduced:
			status = "reproduced (unverified)"
		case b.State == "resolved":
			status = "NOT reproduced"
			if b.FailReason != "" {
				status += " (" + b.FailReason + ")"
			}
		}
		fmt.Printf("%-24s key=%#x %-22s node=%-12s term=%d iters=%d redispatches=%d\n",
			b.App, b.Key, status, b.Node, b.Term, b.Iterations, b.Redispatches)
	}
}

// reportTimelines fetches /debug/er/timeline and renders each
// bucket's stitched cross-process span tree as an indented outline.
func reportTimelines(base string) {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/debug/er/timeline")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("coordinator: /debug/er/timeline: HTTP %d", resp.StatusCode))
	}
	var timelines []cluster.BucketTimeline
	if err := json.NewDecoder(resp.Body).Decode(&timelines); err != nil {
		fatal(fmt.Errorf("decode timelines: %w", err))
	}
	if len(timelines) == 0 {
		fmt.Println("no buckets yet")
		return
	}
	for i, tl := range timelines {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("%s key=%#x trace=%s state=%s redispatches=%d\n",
			tl.App, tl.Key, tl.TraceID, tl.State, tl.Redispatches)
		if err := telemetry.WriteTree(os.Stdout, tl.Root); err != nil {
			fatal(err)
		}
	}
}

// reportRun prints a run's outcome, exiting 1 on failure.
func reportRun(res *er.RunResult) {
	fmt.Printf("instructions: %d\n", res.Stats.Instrs)
	if len(res.Output) > 0 {
		fmt.Printf("output: %v\n", res.Output)
	}
	if res.Failure != nil {
		fmt.Printf("FAILURE: %v\n", res.Failure)
		os.Exit(1)
	}
	fmt.Println("exited cleanly")
}

// storeKeyFor picks the archived signature to replay. When the archive
// holds exactly one signature that is unambiguous; otherwise the given
// workload is executed once (locally, untraced — not a production run)
// to learn which failure it triggers.
func storeKeyFor(store *tracestore.Store, mod *er.Module, w *er.Workload) (uint64, error) {
	keys := store.Keys()
	if len(keys) == 0 {
		return 0, fmt.Errorf("trace store at %s holds no archived failures", store.Dir())
	}
	if len(keys) == 1 {
		return keys[0], nil
	}
	res := er.Run(mod, w, 1)
	if res.Failure == nil {
		return 0, fmt.Errorf("store holds %d signatures and the given input does not fail; cannot pick one to replay", len(keys))
	}
	key := tracestore.KeyOf(res.Failure)
	if store.Sig(key) == nil {
		return 0, fmt.Errorf("failure %v (key %#x) has no archived records among the store's %d signatures",
			res.Failure, key, len(keys))
	}
	return key, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "er:", err)
	os.Exit(1)
}
