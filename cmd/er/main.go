// Command er compiles and runs minc programs, and reproduces their
// failures through the full Execution Reconstruction loop.
//
// Usage:
//
//	er run prog.minc         tag=1,2,3 tag2=4 ... run once, report outcome
//	er reproduce prog.minc   tag=1,2,3 ...        ER loop on the failing input
//	er constraints prog.minc tag=1,2,3 ...        dump the failing run's path
//	                                              constraint as SMT-LIB 2
//
// Input streams are given as tag=v1,v2,... arguments.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"execrecon"
	"execrecon/internal/expr"
	"execrecon/internal/symex"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: er run|reproduce|constraints <prog.minc> [tag=v1,v2,...]...")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, err := er.Compile(path, string(src))
	if err != nil {
		fatal(err)
	}
	w := er.NewWorkload()
	for _, arg := range os.Args[3:] {
		tag, vals, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad input argument %q (want tag=v1,v2,...)", arg))
		}
		for _, vs := range strings.Split(vals, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(vs), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad value %q in %q", vs, arg))
			}
			w.Add(tag, v)
		}
	}

	switch cmd {
	case "run":
		res := er.Run(mod, w, 1)
		fmt.Printf("instructions: %d\n", res.Stats.Instrs)
		if len(res.Output) > 0 {
			fmt.Printf("output: %v\n", res.Output)
		}
		if res.Failure != nil {
			fmt.Printf("FAILURE: %v\n", res.Failure)
			os.Exit(1)
		}
		fmt.Println("exited cleanly")
	case "reproduce":
		rep, err := er.Reproduce(mod, w, 1, er.Options{Log: os.Stderr})
		if err != nil {
			fatal(err)
		}
		fmt.Println(er.Describe(rep))
		if !rep.Reproduced {
			// Reproduction failing is the tool failing: make it
			// visible to scripts via the exit code.
			os.Exit(1)
		}
		fmt.Println("generated test case:")
		for tag, vals := range rep.TestCase.Streams {
			fmt.Printf("  %s = %v\n", tag, vals)
		}
	case "constraints":
		tr, res, err := er.RecordTrace(mod, w, 1)
		if err != nil {
			fatal(err)
		}
		if res.Failure == nil {
			fatal(fmt.Errorf("the given input does not fail; nothing to reconstruct"))
		}
		fmt.Fprintf(os.Stderr, "; failure: %v\n", res.Failure)
		sres := symex.New(mod, tr, res.Failure, symex.Options{}).Run("main")
		if sres.Status != symex.StatusCompleted && sres.Status != symex.StatusStalled {
			fatal(fmt.Errorf("symbolic execution %v: %v", sres.Status, sres.Err))
		}
		if err := expr.WriteSMTLIB(os.Stdout, sres.PathConstraint); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "er:", err)
	os.Exit(1)
}
