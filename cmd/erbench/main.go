// Command erbench regenerates the paper's evaluation artifacts. Each
// -exp value corresponds to a table or figure (see DESIGN.md's
// per-experiment index):
//
//	fig1      Fig. 1: the efficiency/effectiveness/accuracy spectrum
//	table1    Table 1: reproduce the 13 bugs (#Instr, #Occur, Symbex Time)
//	offline   §5.3 offline costs (graph nodes, selection time, bytes)
//	fig5      Fig. 5: symbex progress vs recorded data values
//	fig6      Fig. 6: runtime overhead, ER vs record/replay
//	random    §5.2 key selection vs random recording
//	accuracy  §5.2 generated-input accuracy
//	rept      §2.3/§5.2 REPT recovery accuracy vs trace length
//	mimic     §5.4 invariant-based failure localization
//	ablation  recording-set minimization on/off (design-choice check)
//	mt        §3.4 multithreaded reconstruction summary
//	fleet     fleet-scale triage: the 13 apps as one mixed workload,
//	          sequential vs parallel ER pipelines (internal/fleet);
//	          -nodes N triages the same corpus through an in-process
//	          multi-node cluster instead (internal/cluster: coordinator
//	          + N triage nodes over loopback HTTP, scaling measured at
//	          {1,2,4} <= N), and -kill-after D adds a node-kill chaos
//	          run that must preserve verdict parity
//	solvecache  incremental solver-session ablation: fresh-per-query vs
//	          one persistent session per pipeline (cumulative solver
//	          time, constraint reuse, verdict parity); -portfolio N
//	          adds a third configuration racing each query across N
//	          seeded CDCL workers (optionally -cube-vars splits and
//	          -speculate pre-solving), comparing sequential vs raced
//	          session wall clock under the same parity gate
//	tracestore  persistent trace archive: per-app raw-vs-stored
//	          compression over archived reoccurrences, ingest
//	          throughput, and verdict parity when every trace is read
//	          back through the store's streaming reader
//	absint    abstract-interpretation ablation: each bug reproduced
//	          with the interval/known-bits pre-pass off vs on,
//	          comparing verdict parity, abstractly-discharged query
//	          rate, CNF size reduction from bit-pinning, cumulative
//	          solver time, and statically mined invariants verified on
//	          the reproduced input (-absint-widen tunes the fixpoint
//	          widening threshold)
//	slice     static failure-slice ablation: full symbolic shepherding
//	          vs slice-pruned (out-of-slice instructions execute
//	          natively), comparing symbolic dispatch counts, verdicts,
//	          and per-iteration recording-site parity
//	telemetry telemetry overhead smoke: each bug reproduced with the
//	          metrics registry + span tracer off vs on (min-of-N wall
//	          clock), asserting verdict parity and < 5% overhead, plus
//	          per-stage latency summaries (p50/p90/p99) read back from
//	          er_core_stage_seconds
//	obs       cluster-wide observability gates: the corpus triaged
//	          with the full layer (registry + tracer + journal +
//	          overhead accountant) off vs on under a verdict-parity
//	          and < -max-overhead wall-clock gate; a deterministic
//	          recording-overhead budget-gate smoke; and a multi-node
//	          run (-nodes, default 2) whose every resolved bucket must
//	          stitch into one ingest-through-resolve timeline that
//	          also survives a coordinator WAL restart
//	corpus    population-scale reproduction: generate -corpus-n
//	          self-verified scenarios from -seed (seven injected bug
//	          patterns, two of them concurrency) and reproduce the
//	          whole population through the fleet under mixed
//	          benign/failing traffic, reporting per-pattern
//	          reproduction rates, iteration counts, and recording-cost
//	          distributions; -absint runs the population with the
//	          abstract-interpretation pre-pass enabled across every
//	          pipeline (discharge, narrowed blasting, provable lint,
//	          invariant mining)
//	all       everything above
//
// -json <dir> additionally writes the telemetry experiment's
// structured result (including the stage summaries) to
// <dir>/BENCH_telemetry.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"execrecon/internal/apps"
	"execrecon/internal/bench"
)

// experiments lists the valid -exp values in presentation order.
var experiments = []string{
	"fig1", "table1", "offline", "fig5", "fig6", "random",
	"accuracy", "rept", "mimic", "ablation", "mt", "fleet",
	"solvecache", "tracestore", "absint", "slice", "telemetry",
	"obs", "corpus",
}

func validExp(name string) bool {
	if name == "all" {
		return true
	}
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(experiments, ", ")+", all)")
	runs := flag.Int("runs", 10, "runs per overhead measurement (fig6)")
	app := flag.String("app", "", "restrict table1/fleet to one app / select fig5 app")
	workers := flag.Int("workers", 0, "parallel pipeline workers for the fleet experiment (0 = GOMAXPROCS)")
	machines := flag.Int("machines", 0, "producer machines per app for the fleet experiment (0 = default 2)")
	nodes := flag.Int("nodes", 0, "run the fleet experiment through an in-process multi-node cluster (coordinator + N triage nodes over loopback HTTP); scaling is measured at every count in {1,2,4} <= N")
	killAfter := flag.Duration("kill-after", 0, "with -nodes >= 2, kill -9 one triage node this long into an extra chaos run (all buckets must still resolve via lease re-dispatch)")
	pace := flag.Duration("pace", 0, "production-run spacing per fleet machine (0 = default 100ms); also the solvecache portfolio mode's simulated reoccurrence interval (0 = default 1s)")
	trials := flag.Int("trials", 0, "timed repetitions per mode for the telemetry and obs experiments (0 = default 3)")
	portfolio := flag.Int("portfolio", 0, "racing CDCL workers per query for the solvecache experiment's third mode (<=1 = off)")
	cubeVars := flag.Int("cube-vars", 0, "cube-and-conquer split variables for the solvecache portfolio mode (0 = no cubes)")
	speculate := flag.Bool("speculate", false, "speculatively pre-solve stall constraints during waits in the solvecache portfolio mode")
	useAbsint := flag.Bool("absint", false, "enable the abstract-interpretation pre-pass across the corpus experiment's pipelines")
	absintWiden := flag.Int("absint-widen", 0, "fixpoint widening threshold for the abstract pass (0 = default)")
	corpusN := flag.Int("corpus-n", 200, "generated scenarios for the corpus experiment")
	seed := flag.Int64("seed", 1, "generation master seed for the corpus experiment")
	maxOverhead := flag.Float64("max-overhead", 5.0, "telemetry experiment failure threshold in percent")
	jsonDir := flag.String("json", "", "write the telemetry experiment's structured result to <dir>/BENCH_telemetry.json")
	verbose := flag.Bool("v", false, "log ER loop progress")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "erbench: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if !validExp(*exp) {
		fmt.Fprintf(os.Stderr, "erbench: unknown experiment %q (valid: %s, all)\n",
			*exp, strings.Join(experiments, ", "))
		os.Exit(2)
	}
	// Fleet sizing flags must be sane: a negative worker pool,
	// machine count, or pace is always a caller mistake — fail fast
	// instead of letting withDefaults silently "correct" it.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	if *machines < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -machines must be >= 0 (got %d)\n", *machines)
		os.Exit(2)
	}
	if *pace < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -pace must be >= 0 (got %v)\n", *pace)
		os.Exit(2)
	}
	// Cluster sizing flags: an explicit -nodes must name a positive
	// node count, and the chaos mode needs a surviving node to inherit
	// the victim's leases.
	nodesSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "nodes" {
			nodesSet = true
		}
	})
	if nodesSet && *nodes <= 0 {
		fmt.Fprintf(os.Stderr, "erbench: -nodes must be > 0 (got %d)\n", *nodes)
		os.Exit(2)
	}
	if *killAfter < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -kill-after must be >= 0 (got %v)\n", *killAfter)
		os.Exit(2)
	}
	if *killAfter > 0 && *nodes < 2 {
		fmt.Fprintln(os.Stderr, "erbench: -kill-after requires -nodes >= 2 (a survivor must inherit the victim's leases)")
		os.Exit(2)
	}
	if *runs <= 0 {
		fmt.Fprintf(os.Stderr, "erbench: -runs must be > 0 (got %d)\n", *runs)
		os.Exit(2)
	}
	if *trials < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -trials must be >= 0 (got %d)\n", *trials)
		os.Exit(2)
	}
	// Portfolio sizing flags: negative widths are caller mistakes, and
	// cube/speculation settings are meaningless without racing on.
	if *portfolio < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -portfolio must be >= 0 (got %d)\n", *portfolio)
		os.Exit(2)
	}
	if *cubeVars < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -cube-vars must be >= 0 (got %d)\n", *cubeVars)
		os.Exit(2)
	}
	if (*cubeVars > 0 || *speculate) && *portfolio <= 1 {
		fmt.Fprintln(os.Stderr, "erbench: -cube-vars/-speculate require -portfolio > 1")
		os.Exit(2)
	}
	// Abstract-pass knobs: the ablation *is* the off-vs-on comparison,
	// so explicitly forcing -absint=false alongside -exp absint is a
	// contradiction; a negative widening threshold would never
	// stabilize the fixpoint; and tuning the threshold is meaningless
	// when nothing runs the pass.
	absintSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "absint" {
			absintSet = true
		}
	})
	if absintSet && !*useAbsint && *exp == "absint" {
		fmt.Fprintln(os.Stderr, "erbench: -absint=false contradicts -exp absint (the ablation runs the pass by definition)")
		os.Exit(2)
	}
	if *absintWiden < 0 {
		fmt.Fprintf(os.Stderr, "erbench: -absint-widen must be >= 0 (got %d)\n", *absintWiden)
		os.Exit(2)
	}
	if *absintWiden > 0 && !*useAbsint && *exp != "absint" && *exp != "all" {
		fmt.Fprintln(os.Stderr, "erbench: -absint-widen requires -exp absint or -absint")
		os.Exit(2)
	}
	if *maxOverhead <= 0 {
		fmt.Fprintf(os.Stderr, "erbench: -max-overhead must be > 0 (got %v)\n", *maxOverhead)
		os.Exit(2)
	}
	// Corpus sizing flags: a non-positive population or seed is always
	// a caller mistake (seed 0 would silently alias the default
	// population instead of naming a reproducible one).
	if *corpusN <= 0 {
		fmt.Fprintf(os.Stderr, "erbench: -corpus-n must be > 0 (got %d)\n", *corpusN)
		os.Exit(2)
	}
	if *seed <= 0 {
		fmt.Fprintf(os.Stderr, "erbench: -seed must be > 0 (got %d)\n", *seed)
		os.Exit(2)
	}
	if *app != "" && apps.ByName(*app) == nil {
		var names []string
		for _, a := range apps.All() {
			names = append(names, a.Name)
		}
		fmt.Fprintf(os.Stderr, "erbench: unknown app %q (valid: %s)\n", *app, strings.Join(names, ", "))
		os.Exit(2)
	}

	out := os.Stdout
	var log *os.File
	if *verbose {
		log = os.Stderr
	}

	run := func(name string) bool { return *exp == name || *exp == "all" }
	ok := true

	if run("fig1") {
		fmt.Fprintln(out, "== Fig 1: the efficiency/effectiveness/accuracy spectrum ==")
		rows, err := bench.RunFig1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig1:", err)
			ok = false
		} else {
			bench.RenderFig1(out, rows)
		}
		fmt.Fprintln(out)
	}
	var table1Rows []bench.Table1Row
	if run("table1") || run("offline") {
		opts := bench.Table1Options{}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		table1Rows = bench.RunTable1(opts)
	}
	if run("table1") {
		fmt.Fprintln(out, "== Table 1: failure reproduction ==")
		bench.RenderTable1(out, table1Rows)
		fmt.Fprintln(out)
	}
	if run("offline") {
		fmt.Fprintln(out, "== §5.3 offline analysis costs ==")
		bench.RenderOffline(out, table1Rows)
		fmt.Fprintln(out)
	}
	if run("fig5") {
		fmt.Fprintln(out, "== Fig 5: symbolic execution progress ==")
		r, err := bench.RunFig5(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5:", err)
			ok = false
		} else {
			bench.RenderFig5(out, r)
		}
		fmt.Fprintln(out)
	}
	if run("fig6") {
		fmt.Fprintln(out, "== Fig 6: runtime overhead, ER vs record/replay ==")
		rows, err := bench.RunFig6(*runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			ok = false
		} else {
			bench.RenderFig6(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("random") {
		fmt.Fprintln(out, "== §5.2 key selection vs random recording ==")
		bench.RenderRandomBaseline(out, bench.RunRandomBaseline(0))
		fmt.Fprintln(out)
	}
	if run("accuracy") {
		fmt.Fprintln(out, "== §5.2 accuracy of reproduced executions ==")
		rows, err := bench.RunAccuracy()
		if err != nil {
			fmt.Fprintln(os.Stderr, "accuracy:", err)
			ok = false
		} else {
			bench.RenderAccuracy(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("rept") {
		fmt.Fprintln(out, "== REPT-style recovery accuracy vs trace length ==")
		rows, err := bench.RunReptAccuracy(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rept:", err)
			ok = false
		} else {
			bench.RenderRept(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("mimic") {
		fmt.Fprintln(out, "== §5.4 invariant-based failure localization (MIMIC) ==")
		rows, err := bench.RunMimic()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mimic:", err)
			ok = false
		} else {
			bench.RenderMimic(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("ablation") {
		fmt.Fprintln(out, "== ablation: recording-set minimization on/off ==")
		rows, err := bench.RunAblation()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			ok = false
		} else {
			bench.RenderAblation(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("mt") {
		fmt.Fprintln(out, "== §3.4 multithreaded reconstruction ==")
		rows, err := bench.RunMT()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mt:", err)
			ok = false
		} else {
			bench.RenderMT(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("fleet") {
		if *nodes > 0 {
			fmt.Fprintln(out, "== fleet-scale triage: distributed multi-node cluster ==")
			opts := bench.FleetClusterOptions{
				Nodes:          *nodes,
				KillAfter:      *killAfter,
				MachinesPerApp: *machines,
				Pace:           *pace,
			}
			if *app != "" {
				opts.Only = []string{*app}
			}
			if log != nil {
				opts.Log = log
			}
			r, err := bench.RunFleetCluster(opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fleet:", err)
				ok = false
			} else {
				bench.RenderFleetCluster(out, r)
				if !r.Parity() {
					ok = false
				}
			}
		} else {
			fmt.Fprintln(out, "== fleet-scale triage: sequential vs parallel ER pipelines ==")
			opts := bench.FleetExpOptions{Workers: *workers, MachinesPerApp: *machines, Pace: *pace}
			if *app != "" {
				opts.Only = []string{*app}
			}
			if log != nil {
				opts.Log = log
			}
			r, err := bench.RunFleetExp(opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fleet:", err)
				ok = false
			} else {
				bench.RenderFleet(out, r)
			}
		}
		fmt.Fprintln(out)
	}
	if run("solvecache") {
		fmt.Fprintln(out, "== incremental solver-session ablation (fresh vs session) ==")
		opts := bench.SolveCacheOptions{
			Portfolio: *portfolio,
			CubeVars:  *cubeVars,
			Speculate: *speculate,
			Pace:      *pace,
		}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		r, err := bench.RunSolveCache(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solvecache:", err)
			ok = false
		} else {
			bench.RenderSolveCache(out, r)
			if !r.AllVerdictsMatch {
				ok = false
			}
		}
		fmt.Fprintln(out)
	}
	if run("tracestore") {
		fmt.Fprintln(out, "== trace archive: compression, ingest throughput, verdict parity ==")
		opts := bench.TracestoreOptions{}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		rows, err := bench.RunTracestore(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestore:", err)
			ok = false
		} else {
			bench.RenderTracestore(out, rows)
			if !bench.TracestoreParity(rows) {
				fmt.Fprintln(os.Stderr, "tracestore: verdict parity violated (see table)")
				ok = false
			}
		}
		fmt.Fprintln(out)
	}
	if run("absint") {
		fmt.Fprintln(out, "== abstract-interpretation ablation (pre-pass off vs on) ==")
		opts := bench.AbsintOptions{Widen: *absintWiden}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		r, err := bench.RunAbsint(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "absint:", err)
			ok = false
		} else {
			bench.RenderAbsint(out, r)
			if !r.AllVerdictsMatch {
				fmt.Fprintln(os.Stderr, "absint: verdict parity violated (see table)")
				ok = false
			}
		}
		fmt.Fprintln(out)
	}
	if run("slice") {
		fmt.Fprintln(out, "== static failure-slice ablation (full vs slice-pruned symbex) ==")
		opts := bench.SliceOptions{}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		r, err := bench.RunSlice(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slice:", err)
			ok = false
		} else {
			bench.RenderSlice(out, r)
			if !r.AllParity {
				fmt.Fprintln(os.Stderr, "slice: verdict/recording-site parity violated (see table)")
				ok = false
			}
		}
		fmt.Fprintln(out)
	}
	if run("telemetry") {
		fmt.Fprintln(out, "== telemetry overhead: registry + span tracer off vs on ==")
		opts := bench.TelemetryOptions{Trials: *trials}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		r, err := bench.RunTelemetry(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			ok = false
		} else {
			bench.RenderTelemetry(out, r)
			if !r.AllVerdictsMatch {
				fmt.Fprintln(os.Stderr, "telemetry: verdict parity violated (see table)")
				ok = false
			}
			if over := r.OverheadPct(); over > *maxOverhead {
				fmt.Fprintf(os.Stderr, "telemetry: overhead %.2f%% exceeds the %.1f%% budget\n",
					over, *maxOverhead)
				ok = false
			}
			if *jsonDir != "" {
				path, err := bench.WriteJSONArtifact(*jsonDir, "telemetry", r)
				if err != nil {
					fmt.Fprintln(os.Stderr, "telemetry: write json:", err)
					ok = false
				} else {
					fmt.Fprintf(out, "wrote %s\n", path)
				}
			}
		}
		fmt.Fprintln(out)
	}
	if run("obs") {
		fmt.Fprintln(out, "== observability: journal + accountant parity, timeline stitching ==")
		opts := bench.ObsOptions{
			Nodes:          *nodes,
			MachinesPerApp: *machines,
			Pace:           *pace,
			Trials:         *trials,
		}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		r, err := bench.RunObs(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			ok = false
		} else {
			bench.RenderObs(out, r)
			if !r.AllVerdictsMatch {
				fmt.Fprintln(os.Stderr, "obs: verdict parity violated (see table)")
				ok = false
			}
			if over := r.OverheadPct(); over > *maxOverhead {
				fmt.Fprintf(os.Stderr, "obs: overhead %.2f%% exceeds the %.1f%% budget\n",
					over, *maxOverhead)
				ok = false
			}
			if r.GateBreaches != 1 || !r.GateAlerted {
				fmt.Fprintln(os.Stderr, "obs: recording-overhead budget gate smoke failed")
				ok = false
			}
			if !r.TimelinesComplete || !r.RestartComplete {
				fmt.Fprintln(os.Stderr, "obs: timeline completeness violated (see tables)")
				ok = false
			}
			if *jsonDir != "" {
				path, err := bench.WriteJSONArtifact(*jsonDir, "obs", r)
				if err != nil {
					fmt.Fprintln(os.Stderr, "obs: write json:", err)
					ok = false
				} else {
					fmt.Fprintf(out, "wrote %s\n", path)
				}
			}
		}
		fmt.Fprintln(out)
	}
	if run("corpus") {
		fmt.Fprintln(out, "== population-scale reproduction over generated scenarios ==")
		opts := bench.CorpusOptions{
			N:           *corpusN,
			Seed:        uint64(*seed),
			Workers:     *workers,
			Pace:        *pace,
			Absint:      *useAbsint,
			AbsintWiden: *absintWiden,
		}
		if log != nil {
			opts.Log = log
		}
		r, err := bench.RunCorpus(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpus:", err)
			ok = false
		} else {
			bench.RenderCorpus(out, r)
			if r.TimedOut {
				ok = false
			}
		}
		fmt.Fprintln(out)
	}
	if !ok {
		os.Exit(1)
	}
}
