// Command erbench regenerates the paper's evaluation artifacts. Each
// -exp value corresponds to a table or figure (see DESIGN.md's
// per-experiment index):
//
//	fig1      Fig. 1: the efficiency/effectiveness/accuracy spectrum
//	table1    Table 1: reproduce the 13 bugs (#Instr, #Occur, Symbex Time)
//	offline   §5.3 offline costs (graph nodes, selection time, bytes)
//	fig5      Fig. 5: symbex progress vs recorded data values
//	fig6      Fig. 6: runtime overhead, ER vs record/replay
//	random    §5.2 key selection vs random recording
//	accuracy  §5.2 generated-input accuracy
//	rept      §2.3/§5.2 REPT recovery accuracy vs trace length
//	mimic     §5.4 invariant-based failure localization
//	ablation  recording-set minimization on/off (design-choice check)
//	mt        §3.4 multithreaded reconstruction summary
//	all       everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"execrecon/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1, table1, offline, fig5, fig6, random, accuracy, rept, mimic, ablation, mt, all)")
	runs := flag.Int("runs", 10, "runs per overhead measurement (fig6)")
	app := flag.String("app", "", "restrict table1 to one app / select fig5 app")
	verbose := flag.Bool("v", false, "log ER loop progress")
	flag.Parse()

	out := os.Stdout
	var log *os.File
	if *verbose {
		log = os.Stderr
	}

	run := func(name string) bool { return *exp == name || *exp == "all" }
	ok := true

	if run("fig1") {
		fmt.Fprintln(out, "== Fig 1: the efficiency/effectiveness/accuracy spectrum ==")
		rows, err := bench.RunFig1()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig1:", err)
			ok = false
		} else {
			bench.RenderFig1(out, rows)
		}
		fmt.Fprintln(out)
	}
	var table1Rows []bench.Table1Row
	if run("table1") || run("offline") {
		opts := bench.Table1Options{}
		if *app != "" {
			opts.Only = []string{*app}
		}
		if log != nil {
			opts.Log = log
		}
		table1Rows = bench.RunTable1(opts)
	}
	if run("table1") {
		fmt.Fprintln(out, "== Table 1: failure reproduction ==")
		bench.RenderTable1(out, table1Rows)
		fmt.Fprintln(out)
	}
	if run("offline") {
		fmt.Fprintln(out, "== §5.3 offline analysis costs ==")
		bench.RenderOffline(out, table1Rows)
		fmt.Fprintln(out)
	}
	if run("fig5") {
		fmt.Fprintln(out, "== Fig 5: symbolic execution progress ==")
		r, err := bench.RunFig5(*app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5:", err)
			ok = false
		} else {
			bench.RenderFig5(out, r)
		}
		fmt.Fprintln(out)
	}
	if run("fig6") {
		fmt.Fprintln(out, "== Fig 6: runtime overhead, ER vs record/replay ==")
		rows, err := bench.RunFig6(*runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			ok = false
		} else {
			bench.RenderFig6(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("random") {
		fmt.Fprintln(out, "== §5.2 key selection vs random recording ==")
		bench.RenderRandomBaseline(out, bench.RunRandomBaseline(0))
		fmt.Fprintln(out)
	}
	if run("accuracy") {
		fmt.Fprintln(out, "== §5.2 accuracy of reproduced executions ==")
		rows, err := bench.RunAccuracy()
		if err != nil {
			fmt.Fprintln(os.Stderr, "accuracy:", err)
			ok = false
		} else {
			bench.RenderAccuracy(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("rept") {
		fmt.Fprintln(out, "== REPT-style recovery accuracy vs trace length ==")
		rows, err := bench.RunReptAccuracy(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rept:", err)
			ok = false
		} else {
			bench.RenderRept(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("mimic") {
		fmt.Fprintln(out, "== §5.4 invariant-based failure localization (MIMIC) ==")
		rows, err := bench.RunMimic()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mimic:", err)
			ok = false
		} else {
			bench.RenderMimic(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("ablation") {
		fmt.Fprintln(out, "== ablation: recording-set minimization on/off ==")
		rows, err := bench.RunAblation()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			ok = false
		} else {
			bench.RenderAblation(out, rows)
		}
		fmt.Fprintln(out)
	}
	if run("mt") {
		fmt.Fprintln(out, "== §3.4 multithreaded reconstruction ==")
		rows, err := bench.RunMT()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mt:", err)
			ok = false
		} else {
			bench.RenderMT(out, rows)
		}
		fmt.Fprintln(out)
	}
	if !ok {
		os.Exit(1)
	}
}
