// Command erd is the distributed fleet daemon (internal/cluster). It
// serves one of two roles:
//
//	erd -role coordinator -store dir -wal file [-listen addr] [-apps a,b] \
//	    [-machines N] [-pace D] [-ttl D] [-timeout D] [-pprof] \
//	    [-log-level L] [-log-json] [-overhead-budget PCT] [-v]
//
// runs the production half: the producer machines for the selected
// corpus apps, the ingest/dedup path, the durable trace archive, the
// lease/commit WAL, and the versioned /v1/* wire protocol on the same
// endpoint as /metrics and /debug/er. The coordinator is crash-only:
// SIGINT/SIGTERM exit immediately, and a restart over the same -store
// and -wal recovers the lease table and every committed verdict.
//
//	erd -role node -coordinator URL [-name id] [-apps a,b] [-workers N] \
//	    [-log-level L] [-log-json] [-v]
//
// runs a triage node: it leases buckets from the coordinator, replays
// their banked reoccurrences from the archive through a local ER
// pipeline, ships rollout chains back, and commits verdicts. Nodes
// are stateless — kill one and its leases expire and re-dispatch.
//
// Observability: the coordinator journals structured events
// (drainable at /debug/er/events, teed to stderr as JSON lines with
// -log-json, filtered by -log-level), stitches per-bucket
// cross-process timelines (/debug/er/timeline, `er timeline`), and
// accounts recording overhead per instrumentation version
// (er_overhead_* on /metrics; -overhead-budget arms the SLO gate).
//
// All flag validation errors exit 2, matching erbench.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/bench"
	"execrecon/internal/cluster"
	"execrecon/internal/fleet"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
)

func main() {
	role := flag.String("role", "", "daemon role: coordinator or node (required)")
	listen := flag.String("listen", "127.0.0.1:0", "coordinator endpoint address (/metrics, /debug/er, /v1/*)")
	coordinator := flag.String("coordinator", "", "coordinator base URL (node role; required)")
	name := flag.String("name", "", "node name for lease bookkeeping (node role; default host-pid)")
	storeDir := flag.String("store", "", "trace archive directory (coordinator role; required)")
	walPath := flag.String("wal", "", "lease/commit write-ahead log file (coordinator role; required)")
	appsFlag := flag.String("apps", "", "comma-separated corpus apps (default: all)")
	machines := flag.Int("machines", 0, "producer machines per app (coordinator; 0 = default 2)")
	pace := flag.Duration("pace", 100*time.Millisecond, "production-run spacing per machine")
	ttl := flag.Duration("ttl", cluster.DefaultTTL, "lease heartbeat deadline")
	timeout := flag.Duration("timeout", 0, "stop after this long even if buckets are unresolved (0 = run until every expected failure resolves)")
	workers := flag.Int("workers", 2, "concurrent leases per node")
	pprof := flag.Bool("pprof", false, "mount net/http/pprof on the coordinator endpoint")
	logLevel := flag.String("log-level", "info", "journal level: debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "tee journal events to stderr as JSON lines")
	overheadBudget := flag.Float64("overhead-budget", 0, "recording-overhead SLO in percent over the version-0 baseline (coordinator; 0 = accounting without a gate)")
	verbose := flag.Bool("v", false, "log cluster progress to stderr")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "erd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	// Role and endpoint validation: empty or unknown values are caller
	// mistakes — exit 2, matching the erbench convention.
	switch *role {
	case "coordinator", "node":
	case "":
		fmt.Fprintln(os.Stderr, "erd: -role is required (coordinator or node)")
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "erd: unknown -role %q (want coordinator or node)\n", *role)
		os.Exit(2)
	}
	if *listen == "" {
		fmt.Fprintln(os.Stderr, "erd: -listen must not be empty")
		os.Exit(2)
	}
	if *ttl <= 0 {
		fmt.Fprintf(os.Stderr, "erd: -ttl must be > 0 (got %v)\n", *ttl)
		os.Exit(2)
	}
	if *machines < 0 {
		fmt.Fprintf(os.Stderr, "erd: -machines must be >= 0 (got %d)\n", *machines)
		os.Exit(2)
	}
	if *pace < 0 {
		fmt.Fprintf(os.Stderr, "erd: -pace must be >= 0 (got %v)\n", *pace)
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "erd: -timeout must be >= 0 (got %v)\n", *timeout)
		os.Exit(2)
	}
	if *workers <= 0 {
		fmt.Fprintf(os.Stderr, "erd: -workers must be > 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	minLevel, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "erd: -log-level: %v\n", err)
		os.Exit(2)
	}
	if *overheadBudget < 0 {
		fmt.Fprintf(os.Stderr, "erd: -overhead-budget must be >= 0 (got %v)\n", *overheadBudget)
		os.Exit(2)
	}

	fapps, err := corpusApps(*appsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erd:", err)
		os.Exit(2)
	}
	var log *os.File
	if *verbose {
		log = os.Stderr
	}
	jopts := telemetry.JournalOptions{Min: minLevel}
	if *logJSON {
		jopts.Tee = os.Stderr
	}
	journal := telemetry.NewJournal(jopts)

	switch *role {
	case "coordinator":
		if *storeDir == "" {
			fmt.Fprintln(os.Stderr, "erd: coordinator role requires -store")
			os.Exit(2)
		}
		if *walPath == "" {
			fmt.Fprintln(os.Stderr, "erd: coordinator role requires -wal")
			os.Exit(2)
		}
		runCoordinator(fapps, *storeDir, *walPath, *listen, *machines, *pace, *ttl, *timeout, *pprof, journal, *overheadBudget, log)
	case "node":
		if *coordinator == "" {
			fmt.Fprintln(os.Stderr, "erd: node role requires -coordinator")
			os.Exit(2)
		}
		nodeName := *name
		if nodeName == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "node"
			}
			nodeName = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		runNode(fapps, nodeName, *coordinator, *workers, journal, log)
	}
}

// corpusApps builds the fleet application list from the Table 1
// corpus, optionally restricted to a comma-separated subset.
func corpusApps(only string) ([]fleet.App, error) {
	var names []string
	if only != "" {
		for _, n := range strings.Split(only, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if apps.ByName(n) == nil {
				return nil, fmt.Errorf("unknown app %q", n)
			}
			names = append(names, n)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-apps named no applications")
		}
	}
	var out []fleet.App
	for _, a := range apps.All() {
		if len(names) > 0 && !contains(names, a.Name) {
			continue
		}
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		budget := a.QueryBudget
		if budget == 0 {
			budget = bench.DefaultQueryBudget
		}
		out = append(out, fleet.App{
			Name:    a.Name,
			Module:  mod,
			Failing: a.Failing,
			Seed:    a.Seed,
			Symex:   symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		})
	}
	return out, nil
}

func contains(names []string, n string) bool {
	for _, s := range names {
		if s == n {
			return true
		}
	}
	return false
}

func runCoordinator(fapps []fleet.App, storeDir, walPath, listen string, machines int, pace, ttl, timeout time.Duration, pprof bool, journal *telemetry.Journal, overheadBudget float64, log *os.File) {
	store, err := tracestore.Open(storeDir, tracestore.Options{})
	if err != nil {
		fatal(fmt.Errorf("open trace store: %w", err))
	}
	defer store.Close()
	reg := telemetry.New()
	journal.RegisterMetrics(reg)
	overhead := telemetry.NewOverhead(telemetry.OverheadOptions{
		BudgetPct: overheadBudget,
		Journal:   journal,
		Registry:  reg,
	})
	fo := fleet.Options{
		MachinesPerApp: machines,
		Pace:           pace,
		Telemetry:      reg,
		Tracer:         telemetry.NewTracer(0),
		Journal:        journal,
		Overhead:       overhead,
		Log:            log,
	}
	if timeout > 0 {
		fo.Timeout = timeout
	} else {
		fo.Timeout = -1 // a daemon runs until its buckets resolve
	}
	coord, err := cluster.NewCoordinator(fapps, cluster.CoordinatorOptions{
		Fleet:    fo,
		Store:    store,
		WALPath:  walPath,
		TTL:      ttl,
		Listen:   listen,
		Pprof:    pprof,
		Journal:  journal,
		Overhead: overhead,
		Log:      log,
	})
	if err != nil {
		fatal(err)
	}
	if err := coord.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("erd: coordinator on %s (store %s, wal %s, %d apps)\n",
		coord.URL(), storeDir, walPath, len(fapps))

	// Crash-only shutdown: the WAL and archive are the durable state,
	// and recovery is the tested path — don't invent a second one.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "erd: %v: state is durable in the WAL and archive; exiting (a restart recovers the lease table)\n", s)
		os.Exit(130)
	}()

	res, err := coord.Wait()
	if err != nil {
		fatal(err)
	}
	snap := coord.Snapshot()
	fmt.Printf("erd: resolved %d buckets in %v (granted %d, redispatched %d, recovered %d)\n",
		len(res.Buckets), res.Elapsed.Round(time.Millisecond), snap.Granted, snap.Redispatched, snap.Recovered)
	code := 0
	for _, b := range res.Buckets {
		status := "reproduced+verified"
		if !b.Reproduced {
			status = "NOT reproduced"
			code = 1
		} else if !b.Verified {
			status = "reproduced (unverified)"
		}
		fmt.Printf("  %-24s %s (%d iterations)\n", b.App, status, b.Iterations)
	}
	os.Exit(code)
}

func runNode(fapps []fleet.App, name, coordinator string, workers int, journal *telemetry.Journal, log *os.File) {
	node, err := cluster.NewNode(cluster.NodeOptions{
		Name:        name,
		Coordinator: coordinator,
		Apps:        fapps,
		Workers:     workers,
		Tracer:      telemetry.NewTracer(0),
		Log:         log,
	})
	journal.Log(telemetry.LevelInfo, "erd", "node starting",
		telemetry.A("name", name), telemetry.A("coordinator", coordinator))
	if err != nil {
		fatal(err)
	}
	if err := node.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("erd: node %s triaging for %s (%d workers, %d apps)\n",
		name, coordinator, workers, len(fapps))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	node.Close()
	fmt.Printf("erd: node %s stopped (resolved %d, leases lost %d)\n",
		name, node.Resolved(), node.LeasesLost())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "erd:", err)
	os.Exit(1)
}
