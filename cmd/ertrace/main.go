// Command ertrace records one monitored execution of a minc program
// and prints the decoded PT-like packet stream — the raw material ER's
// analysis engine consumes. It also exposes the static analyses:
// -lint reports IR lint findings, and -dump-cfg renders each
// function's control-flow graph (with dominator-tree edges) as
// Graphviz DOT instead of running the program.
//
// Usage:
//
//	ertrace [-lint] [-dump-cfg] prog.minc [tag=v1,v2,...]...
//
// Flags:
//
//	-lint      print advisory lint findings (dead stores, width
//	           inconsistencies) to stderr after compiling.
//	-dump-cfg  write every function's CFG as Graphviz DOT to stdout
//	           and exit without executing the program. Solid edges are
//	           control flow (T/F-labelled for conditional branches);
//	           dashed blue edges are the dominator tree.
//	-spans     run the full ER reproduction loop on the given (failing)
//	           input instead of dumping packets, and print the
//	           session's nested span tree: the reconstruction root, one
//	           iteration per analyzed occurrence, and the
//	           shepherd/solve/keyselect/instrument/verify stage spans
//	           with their attributes (signature, solver verdict,
//	           recording-set size).
//	-budget n  solver query budget for -spans (0 = unlimited; small
//	           budgets force stall iterations into the tree).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"execrecon"
	"execrecon/internal/dataflow"
	"execrecon/internal/pt"
	"execrecon/internal/telemetry"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ertrace [-lint] [-dump-cfg] [-spans [-budget n]] <prog.minc> [tag=v1,v2,...]...")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	lint := flag.Bool("lint", false, "print advisory lint findings to stderr")
	dumpCFG := flag.Bool("dump-cfg", false, "write function CFGs as Graphviz DOT to stdout and exit")
	spans := flag.Bool("spans", false, "run the ER loop and print the session's span tree instead of dumping packets")
	budget := flag.Int64("budget", 0, "solver query budget for -spans (0 = unlimited)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	mod, findings, err := er.CompileWithLint(path, string(src))
	if err != nil {
		fatal(err)
	}
	if *lint {
		// CompileWithLint already includes the abstract interpreter's
		// rules: proven OOB and overflow fail the run, single-outcome
		// branches stay advisory.
		fatalFinding := false
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "ertrace: lint: %s\n", f)
			if er.ErrorLevel(f.Rule) {
				fatalFinding = true
			}
		}
		if fatalFinding {
			os.Exit(1)
		}
	}
	if *dumpCFG {
		for _, fn := range mod.Funcs {
			if err := dataflow.BuildCFG(fn).WriteDOT(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	w := er.NewWorkload()
	for _, arg := range flag.Args()[1:] {
		tag, vals, ok := strings.Cut(arg, "=")
		if !ok {
			fatal(fmt.Errorf("bad input argument %q", arg))
		}
		for _, vs := range strings.Split(vals, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(vs), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad value %q in %q (want tag=v1,v2,...)", vs, arg))
			}
			w.Add(tag, v)
		}
	}
	if *spans {
		printSpans(mod, w, *budget)
		return
	}
	tr, res, err := er.RecordTrace(mod, w, 1)
	if err != nil {
		fatal(err)
	}
	if tr.Truncated {
		// The ring wrapped and the oldest packets were overwritten.
		// Dump what survived, but make the loss visible to scripts.
		fmt.Fprintln(os.Stderr, "ertrace: warning: trace truncated (ring buffer wrapped, oldest packets lost)")
	}
	if res.Failure != nil {
		fmt.Printf("# run failed: %v\n", res.Failure)
	} else {
		fmt.Println("# run exited cleanly")
	}
	fmt.Printf("# %d instructions, %d events\n", res.Stats.Instrs, len(tr.Events))
	var tnt strings.Builder
	flush := func() {
		if tnt.Len() > 0 {
			fmt.Printf("TNT  %s\n", tnt.String())
			tnt.Reset()
		}
	}
	for _, ev := range tr.Events {
		switch ev.Kind {
		case pt.EvTNT:
			if ev.Taken {
				tnt.WriteByte('1')
			} else {
				tnt.WriteByte('0')
			}
			if tnt.Len() == 64 {
				flush()
			}
		case pt.EvTIP:
			flush()
			fmt.Printf("TIP  target=%d\n", ev.Target)
		case pt.EvPTW:
			flush()
			fmt.Printf("PTW  key=%d width=%d value=%d\n", ev.Key, ev.WidthBits, ev.Value)
		case pt.EvChunk:
			flush()
			fmt.Printf("CHNK tid=%d ts=%d\n", ev.Tid, ev.Timestamp)
		case pt.EvPGD:
			flush()
			fmt.Printf("PGD  count=%d\n", ev.Count)
		case pt.EvEnd:
			flush()
			fmt.Println("END")
		}
	}
	flush()
	if tr.Truncated {
		os.Exit(1)
	}
}

// printSpans runs the full ER loop on the failing workload with a
// span tracer attached and renders every finished reconstruction tree
// as an indented outline. Exits non-zero when the failure does not
// reproduce (mirroring `er reproduce`).
func printSpans(mod *er.Module, w *er.Workload, budget int64) {
	tracer := er.NewTracer(0)
	rep, err := er.Reproduce(mod, w, 1, er.Options{QueryBudget: budget, Tracer: tracer})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s\n", er.Describe(rep))
	for _, root := range tracer.Recent() {
		if err := telemetry.WriteTree(os.Stdout, root); err != nil {
			fatal(err)
		}
	}
	if !rep.Reproduced {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ertrace:", err)
	os.Exit(1)
}
