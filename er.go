// Package er is the public facade of the Execution Reconstruction
// library — a Go reproduction of "Execution Reconstruction:
// Harnessing Failure Reoccurrences for Failure Reproduction"
// (PLDI 2021).
//
// The library reproduces production failures from hardware-style
// control-flow traces: programs written in the bundled mini-C dialect
// (minc) run on a deterministic virtual machine whose conditional
// branches, indirect calls, returns, and scheduling boundaries stream
// into a PT-like ring buffer. When a run fails, shepherded symbolic
// execution follows the trace, and — when the constraint solver
// stalls — key data value selection picks a minimal set of values to
// record via ptwrite instrumentation on the next failure
// reoccurrence, iterating until a concrete, verified,
// failure-reproducing test case is generated.
//
// Quick start:
//
//	mod, err := er.Compile("demo", src)          // minc → IR
//	report, err := er.Reproduce(mod, failing, 1, er.Options{})
//	if report.Reproduced {
//	    fmt.Println(report.TestCase.Streams)     // generated inputs
//	}
//
// Fleet scale: RunFleet deploys many applications across simulated
// production machines that ship failure traces into a concurrent
// ingestion/triage subsystem (internal/fleet); distinct failures are
// bucketed by signature and reconstructed by independent, concurrent
// ER pipelines.
//
// The subsystems are importable directly for finer control:
// internal/vm (the machine), internal/pt (traces), internal/symex
// (shepherded symbolic execution), internal/keyselect (key data value
// selection), internal/core (the iterative loop), internal/fleet
// (ingestion and triage), internal/bench (the paper's experiments).
package er

import (
	"fmt"
	"io"

	"execrecon/internal/absint"
	"execrecon/internal/core"
	"execrecon/internal/dataflow"
	"execrecon/internal/fleet"
	"execrecon/internal/invariants"
	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// Re-exported core types. Module is the compiled program; Workload
// supplies program inputs (and is the shape of generated test cases);
// Failure is a failure signature; Report describes a reproduction
// session.
type (
	// Module is a compiled program in the library's register IR.
	Module = ir.Module
	// Workload is a set of per-tag input streams.
	Workload = vm.Workload
	// Failure is a failure signature (kind, program counter, stack).
	Failure = vm.Failure
	// Report is the outcome of a reproduction session.
	Report = core.Report
	// RunResult is the outcome of one concrete execution.
	RunResult = vm.Result
	// Trace is a decoded control-flow/data trace.
	Trace = pt.Trace
	// Observation is one invariant-engine program-point sample.
	Observation = invariants.Obs
	// InvariantSet is a set of likely invariants.
	InvariantSet = invariants.Set
	// Violation is an invariant broken by a failing run.
	Violation = invariants.Violation
)

// Options tunes a reproduction session.
type Options struct {
	// QueryBudget bounds each solver query in abstract steps — the
	// analog of the paper's 30-second solver timeout. 0 means
	// unlimited (no stalls, single-occurrence reproduction whenever
	// the solver can finish).
	QueryBudget int64
	// MaxIterations bounds the reoccurrence loop (default 16).
	MaxIterations int
	// RingSize is the trace buffer capacity (default 64 MB).
	RingSize int
	// StaticSlice enables failure-slice-pruned symbolic execution and
	// deducibility-aware recording-set selection (internal/dataflow).
	StaticSlice bool
	// Telemetry, when set, is the shared metrics registry the session
	// reports into: per-stage latency histograms
	// (er_core_stage_seconds) plus the symbolic executor's and
	// solver's own series. Create one with NewTelemetry and expose it
	// with ServeTelemetry or Telemetry.WritePrometheus.
	Telemetry *Telemetry
	// Tracer, when set, records the session as one nested span tree
	// (reconstruction → iteration → shepherd/solve/keyselect/
	// instrument/verify); retrieve finished trees with Tracer.Recent.
	Tracer *Tracer
	// Log receives progress lines when set.
	Log io.Writer
}

// Compile translates minc source into an executable module.
func Compile(name, src string) (*Module, error) {
	return minc.Compile(name, src)
}

// Finding is one static-analysis lint finding (internal/dataflow).
type Finding = dataflow.Finding

// CompileWithLint is Compile plus the advisory IR lint rules (dead
// stores, cross-block width inconsistencies). The invariant rules
// (maybe-undef, unreachable-block) are always enforced by Compile.
func CompileWithLint(name, src string) (*Module, []Finding, error) {
	return minc.CompileWithLint(name, src)
}

// Lint runs the full IR lint suite over a compiled module: the
// dataflow rules plus the abstract interpreter's provable findings
// (LintProvable).
func Lint(mod *Module) []Finding {
	return append(dataflow.Lint(mod), LintProvable(mod)...)
}

// LintProvable runs only the abstract-interpretation lint rules: a
// whole-module interval + known-bits fixpoint proving out-of-bounds
// accesses, guaranteed arithmetic wrap, and single-outcome computed
// branches. OOB and overflow proofs are error-level (ErrorLevel);
// always-true/false branches stay advisory.
func LintProvable(mod *Module) []Finding {
	return absint.Lint(mod, absint.Config{})
}

// ErrorLevel reports whether a lint rule is error-level — a proven
// defect that should fail a lint run — rather than advisory.
func ErrorLevel(rule string) bool { return dataflow.ErrorLevel(rule) }

// NewWorkload returns an empty workload; use Add to fill streams.
func NewWorkload() *Workload { return vm.NewWorkload() }

// Run executes the module's main function once, without monitoring.
func Run(mod *Module, w *Workload, seed int64) *RunResult {
	return vm.New(mod, vm.Config{Input: w, Seed: seed}).Run("main")
}

// RecordTrace executes one monitored run, returning the decoded trace
// and the run result. This is what ER's always-on tracing ships to
// the analysis engine when the run fails.
func RecordTrace(mod *Module, w *Workload, seed int64) (*Trace, *RunResult, error) {
	ring := pt.NewRing(pt.DefaultRingSize)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: w, Seed: seed, Tracer: enc}).Run("main")
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		return nil, nil, err
	}
	return tr, res, nil
}

// Reproduce runs the full iterative ER loop against a fixed failing
// workload (the simplest reoccurrence model: every production run
// replays this workload). It returns the report with the generated,
// verified test case on success.
func Reproduce(mod *Module, failing *Workload, seed int64, opts Options) (*Report, error) {
	return ReproduceWith(mod, &core.FixedWorkload{Workload: failing, Seed: seed}, opts)
}

// Generator produces the workload and scheduler seed of each
// production run, for reoccurrence models richer than a fixed input.
type Generator = core.WorkloadGen

// ReproduceWith runs the ER loop with a custom production-run
// generator.
func ReproduceWith(mod *Module, gen Generator, opts Options) (*Report, error) {
	return core.Reproduce(core.Config{
		Module:        mod,
		Gen:           gen,
		Symex:         symex.Options{QueryBudget: opts.QueryBudget},
		MaxIterations: opts.MaxIterations,
		RingSize:      opts.RingSize,
		StaticSlice:   opts.StaticSlice,
		Telemetry:     opts.Telemetry,
		Tracer:        opts.Tracer,
		Log:           opts.Log,
	})
}

// Reoccurrence-source types, for callers that deliver failure
// reoccurrences themselves instead of replaying workloads in-process.
// Occurrence is one delivered reoccurrence; SourceRequest describes
// what the loop needs next; Source is the delivery interface
// (FixedWorkload and custom fleet buckets implement it).
type (
	Occurrence    = core.Occurrence
	SourceRequest = core.SourceRequest
	Source        = core.ReoccurrenceSource
)

// ReproduceFrom runs the ER loop against a custom reoccurrence
// source.
func ReproduceFrom(mod *Module, src Source, opts Options) (*Report, error) {
	return core.Reproduce(core.Config{
		Module:        mod,
		Source:        src,
		Symex:         symex.Options{QueryBudget: opts.QueryBudget},
		MaxIterations: opts.MaxIterations,
		RingSize:      opts.RingSize,
		StaticSlice:   opts.StaticSlice,
		Telemetry:     opts.Telemetry,
		Tracer:        opts.Tracer,
		Log:           opts.Log,
	})
}

// Telemetry types, re-exported for callers that observe ER sessions:
// a Telemetry registry collects er_* metric series (scrapeable in
// Prometheus text format); a Tracer records reconstruction sessions as
// nested span trees; a SpanTree is one finished tree.
type (
	Telemetry        = telemetry.Registry
	Tracer           = telemetry.Tracer
	SpanTree         = telemetry.SpanSnapshot
	TelemetryServer  = telemetry.Server
	TelemetryOptions = telemetry.ServerOptions
)

// NewTelemetry returns an empty metrics registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewTracer returns a span tracer retaining the given number of
// finished trees (0 = default).
func NewTracer(keep int) *Tracer { return telemetry.NewTracer(keep) }

// ServeTelemetry serves the live introspection endpoint — GET
// /metrics (Prometheus text format 0.0.4) and GET /debug/er (JSON) —
// on addr ("127.0.0.1:0" binds an ephemeral port; the server reports
// the bound address). Close the returned server when done.
func ServeTelemetry(addr string, opts TelemetryOptions) (*TelemetryServer, error) {
	return telemetry.Serve(addr, opts)
}

// Fleet-scale types: a Fleet runs many FleetApps across simulated
// production machines, triages shipped failure traces into
// per-signature buckets, and reconstructs each distinct failure with
// an independent concurrent ER pipeline. FleetSnapshot is the live
// stats surface (queue depths, drops, per-bucket progress).
type (
	Fleet         = fleet.Fleet
	FleetApp      = fleet.App
	FleetOptions  = fleet.Options
	FleetResult   = fleet.Result
	FleetSnapshot = fleet.Snapshot
)

// NewFleet assembles a fleet (call Start, then Snapshot/Wait).
func NewFleet(apps []FleetApp, opts FleetOptions) (*Fleet, error) {
	return fleet.New(apps, opts)
}

// RunFleet runs a fleet to completion: every distinct failure
// signature is triaged and reconstructed (or given up on), and the
// aggregate result returned.
func RunFleet(apps []FleetApp, opts FleetOptions) (*FleetResult, error) {
	return fleet.Run(apps, opts)
}

// CollectObservations runs the module and gathers function entry/exit
// observations for invariant inference.
func CollectObservations(mod *Module, w *Workload, seed int64) ([]Observation, *RunResult) {
	return invariants.Collect(mod, w, seed)
}

// InferInvariants merges observations from passing runs into a
// likely-invariant set.
func InferInvariants(passingRuns [][]Observation) *InvariantSet {
	return invariants.Infer(passingRuns)
}

// Failure kinds, re-exported for callers that classify outcomes.
const (
	FailNone           = vm.FailNone
	FailAbort          = vm.FailAbort
	FailAssert         = vm.FailAssert
	FailNullDeref      = vm.FailNullDeref
	FailOutOfBounds    = vm.FailOutOfBounds
	FailUseAfterFree   = vm.FailUseAfterFree
	FailDivByZero      = vm.FailDivByZero
	FailDeadlock       = vm.FailDeadlock
	FailDoubleFree     = vm.FailDoubleFree
	FailBadFree        = vm.FailBadFree
	FailStackOverflow  = vm.FailStackOverflow
	FailInputExhausted = vm.FailInputExhausted
)

// Version identifies the library.
const Version = "1.0.0"

// Describe returns a short multi-line description of a report,
// convenient for CLIs and examples.
func Describe(rep *Report) string {
	if rep == nil {
		return "no report"
	}
	if !rep.Reproduced {
		return fmt.Sprintf("not reproduced after %d occurrence(s): %s", rep.Occurrences, rep.FailReason)
	}
	s := fmt.Sprintf("reproduced %v after %d occurrence(s), symbex time %v",
		rep.Failure, rep.Occurrences, rep.TotalSymexTime)
	if rep.Verified {
		s += " (test case verified)"
	}
	return s
}
