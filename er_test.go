package er_test

import (
	"io"
	"strings"
	"testing"

	"execrecon"
)

func TestCompileAndRun(t *testing.T) {
	mod, err := er.Compile("t", `func main() int { output(41 + 1); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	res := er.Run(mod, er.NewWorkload(), 1)
	if res.Failure != nil || len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("res: %+v", res)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := er.Compile("t", `func main() int { return x; }`); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestPublicReproduce(t *testing.T) {
	mod, err := er.Compile("t", `
func main() int {
	int a = input32("a");
	int b = input32("a");
	if (a > b) {
		assert(a - b != 7, "gap of seven");
	}
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	w := er.NewWorkload().Add("a", 20, 13)
	rep, err := er.Reproduce(mod, w, 1, er.Options{Log: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
	vals := rep.TestCase.Streams["a"]
	if len(vals) != 2 || uint32(vals[0])-uint32(vals[1]) != 7 {
		t.Errorf("generated inputs %v do not have gap 7", vals)
	}
	if d := er.Describe(rep); !strings.Contains(d, "reproduced") {
		t.Errorf("describe: %q", d)
	}
}

func TestRecordTrace(t *testing.T) {
	mod, err := er.Compile("t", `
func main() int {
	for (int i = 0; i < 10; i = i + 1) { output(i); }
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	tr, res, err := er.RecordTrace(mod, er.NewWorkload(), 1)
	if err != nil || res.Failure != nil {
		t.Fatalf("err=%v failure=%v", err, res.Failure)
	}
	if len(tr.Events) == 0 {
		t.Error("empty trace")
	}
}

func TestInvariantFacade(t *testing.T) {
	mod, err := er.Compile("t", `
func f(int x) int { return x * 2; }
func main() int {
	int n = input32("n");
	output(f(n));
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	var passing [][]er.Observation
	for i := 1; i <= 3; i++ {
		obs, res := er.CollectObservations(mod, er.NewWorkload().Add("n", uint64(i)), 1)
		if res.Failure != nil {
			t.Fatal(res.Failure)
		}
		passing = append(passing, obs)
	}
	set := er.InferInvariants(passing)
	if set.NumPoints() == 0 {
		t.Fatal("no invariant points")
	}
	obs, _ := er.CollectObservations(mod, er.NewWorkload().Add("n", 999), 1)
	if len(set.Check(obs)) == 0 {
		t.Error("out-of-range run should violate invariants")
	}
}

func TestDescribeNil(t *testing.T) {
	if er.Describe(nil) != "no report" {
		t.Error("nil describe")
	}
}
