// fuzzseed: the fuzzing use case of §1/§2 — because ER produces
// *executable* test cases (unlike best-effort post-mortem tools), a
// reconstructed failure can seed a mutational fuzzer that then probes
// the neighborhood of the production bug for further defects.
package main

import (
	"fmt"
	"os"

	"execrecon"
)

// A tag-length-value message parser with two latent bugs: a checksum
// assertion (the production failure we reconstruct) and an unchecked
// copy length (a nearby heap overflow the fuzzer should discover from
// the reconstructed seed).
const src = `
func handle(int kind) int {
	if (kind == 1) {
		// counted record: len, payload, checksum
		int n = input32("msg");
		if (n <= 0 || n > 12) { return -1; }
		int sum = 0;
		for (int i = 0; i < n; i = i + 1) { sum = sum + input32("msg"); }
		assert(sum % 1000 != 613, "checksum collision");
		return sum;
	}
	if (kind == 2) {
		// blob record: the declared length is trusted for the copy
		// but the staging buffer is fixed — the second bug.
		int blen = input32("msg");
		if (blen < 0) { return -1; }
		char staging[8];
		for (int i = 0; i < blen; i = i + 1) {
			staging[i] = input8("msg");
		}
		int s = 0;
		for (int i = 0; i < blen; i = i + 1) { s = s + (int)staging[i]; }
		return s;
	}
	return 0;
}

func main() int {
	int msgs = input32("msg");
	if (msgs <= 0 || msgs > 32) { return -1; }
	for (int m = 0; m < msgs; m = m + 1) {
		output(handle(input32("msg")));
	}
	return 0;
}`

func main() {
	mod, err := er.Compile("tlv", src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Production failure: a counted record whose checksum lands on
	// the poisoned value.
	failing := er.NewWorkload()
	failing.Add("msg", 2, 1, 3, 100, 200, 313, 1, 2, 50, 50)

	rep, err := er.Reproduce(mod, failing, 1, er.Options{})
	if err != nil || !rep.Reproduced {
		fmt.Fprintln(os.Stderr, "reconstruction failed:", err)
		os.Exit(1)
	}
	fmt.Println("reconstructed:", er.Describe(rep))

	// Seed the fuzzer with the generated test case and mutate.
	seed := rep.TestCase.Streams["msg"]
	fmt.Printf("fuzz seed (%d values): %v\n", len(seed), seed)

	found := map[string]bool{}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	trials := 0
	for i := 0; i < 4000; i++ {
		mut := append([]uint64(nil), seed...)
		for k := 0; k < 1+int(next()%3); k++ {
			pos := int(next() % uint64(len(mut)))
			switch next() % 3 {
			case 0:
				mut[pos] = next() % 16 // small value / record-kind flip
			case 1:
				mut[pos] = mut[pos] + 1
			default:
				mut[pos] = next()
			}
		}
		// Pad the stream so truncated-input runs (not real bugs)
		// stay rare.
		for k := 0; k < 24; k++ {
			mut = append(mut, next()%256)
		}
		w := er.NewWorkload().Add("msg", mut...)
		res := er.Run(mod, w, 1)
		trials++
		if res.Failure != nil && res.Failure.Kind != er.FailInputExhausted {
			// Deduplicate by signature (kind + program counter), not
			// by message: object ids vary run to run.
			sig := fmt.Sprintf("%v@%s#%d", res.Failure.Kind, res.Failure.Func, res.Failure.InstrID)
			if !found[sig] {
				found[sig] = true
				fmt.Printf("fuzzer found: %v\n", res.Failure)
			}
		}
	}
	fmt.Printf("%d mutants executed, %d distinct failure signatures\n", trials, len(found))
	if len(found) < 2 {
		fmt.Println("note: expected to rediscover the checksum bug AND hit the blob overflow")
	}
}
