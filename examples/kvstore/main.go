// kvstore: reconstructing a memcached-style NULL-dereference race in
// a multithreaded key-value store. The failure only manifests under a
// particular coarse interleaving of the serving thread and a
// crawler thread; ER's chunked scheduling trace captures the
// interleaving, and the reconstructed schedule replays it (§3.4).
package main

import (
	"fmt"
	"os"

	"execrecon"
)

const src = `
// A slot-table store: one thread serves set/del commands, another
// walks the table dumping item metadata.
int used[32];
long items[32];
int dumped = 0;

func do_set(int slot, int value) {
	if (slot < 0 || slot >= 32) { return; }
	lock(1);
	if (used[slot] == 0) {
		int *it = (int*)malloc(8);
		it[0] = slot;
		it[1] = value;
		items[slot] = (long)it;
		used[slot] = 1;
	}
	unlock(1);
}

func do_del(int slot) {
	if (slot < 0 || slot >= 32) { return; }
	// BUG: the item pointer is cleared before the slot is unlinked,
	// outside the crawler's critical section.
	if (used[slot] == 1) {
		long it = items[slot];
		items[slot] = 0;
		yield();
		used[slot] = 0;
		free((char*)it);
	}
}

func server(int n) {
	for (int i = 0; i < n; i = i + 1) {
		int op = input32("cmd");
		int slot = input32("cmd");
		if (op == 1) { do_set(slot, input32("cmd")); }
		else { do_del(slot); }
	}
}

func crawler(int rounds) {
	for (int r = 0; r < rounds; r = r + 1) {
		for (int s = 0; s < 32; s = s + 1) {
			if (used[s] == 1) {
				yield();
				int *it = (int*)items[s];
				dumped = dumped + it[1]; // NULL deref in the race window
			}
		}
	}
}

func main() int {
	int n = input32("cfg");
	if (n < 0 || n > 256) { return -1; }
	long t1 = spawn server(n);
	long t2 = spawn crawler(4);
	join(t1);
	join(t2);
	output(dumped);
	return 0;
}`

func main() {
	mod, err := er.Compile("kvstore", src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Production traffic: sets followed by deletes of the same
	// slots while the crawler walks.
	failing := er.NewWorkload()
	failing.Add("cfg", 16)
	for s := 0; s < 8; s++ {
		failing.Add("cmd", 1, uint64(s), uint64(100+s))
	}
	for s := 0; s < 8; s++ {
		failing.Add("cmd", 2, uint64(s))
	}

	res := er.Run(mod, failing.Clone(), 3)
	if res.Failure == nil {
		fmt.Println("this interleaving did not expose the race; try another seed")
		return
	}
	fmt.Println("production failure:", res.Failure)
	fmt.Printf("threads: %d, schedule chunks recorded: %d\n",
		res.Stats.Threads, res.Stats.Chunks)

	rep, err := er.Reproduce(mod, failing, 3, er.Options{QueryBudget: 50_000})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(er.Describe(rep))
	if rep.Reproduced {
		fmt.Println("generated command stream:", rep.TestCase.Streams["cmd"])
	}
}
