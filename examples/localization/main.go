// localization: the §5.4 use case — ER's replayable reconstructions
// feed an invariant-based failure localizer (MIMIC/Daikon style).
// Likely invariants are inferred from passing runs; the
// ER-reconstructed failing execution is checked against them, and the
// violated invariants point at the root cause.
package main

import (
	"fmt"
	"os"

	"execrecon"
)

const src = `
// A tiny billing pipeline: price lookup, discount, and tax. The bug:
// the discount routine returns a NEGATIVE total for a 100% coupon
// (the fix clamps at zero), which the tax step then turns into a
// nonsense refund caught by an assertion downstream.
int prices[8] = {100, 250, 75, 300, 120, 80, 560, 40};

func price_of(int item) int {
	if (item < 0 || item >= 8) { return 0; }
	return prices[item];
}

func apply_discount(int total, int pct) int {
	// BUG: pct == 100 yields 0 - rounding adjustment = negative.
	int off = (total * pct) / 100;
	return total - off - 1;
}

func add_tax(int total) int {
	assert(total >= 0, "negative total reached tax computation");
	return total + total / 10;
}

func main() int {
	int orders = input32("orders");
	if (orders <= 0 || orders > 64) { return -1; }
	for (int o = 0; o < orders; o = o + 1) {
		int item = input32("orders");
		int pct = input32("orders");
		if (pct < 0 || pct > 100) { pct = 0; }
		int t = price_of(item);
		t = apply_discount(t, pct);
		output(add_tax(t));
	}
	return 0;
}`

func main() {
	mod, err := er.Compile("billing", src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Likely invariants from four passing workloads (moderate
	// discounts only, as production mostly sees).
	var passing [][]er.Observation
	for i := 0; i < 4; i++ {
		w := er.NewWorkload()
		w.Add("orders", 6)
		for o := 0; o < 6; o++ {
			w.Add("orders", uint64((i+o)%8), uint64((i*7+o*13)%60))
		}
		obs, res := er.CollectObservations(mod, w, int64(i)+1)
		if res.Failure != nil {
			fmt.Fprintln(os.Stderr, "passing run failed:", res.Failure)
			os.Exit(1)
		}
		passing = append(passing, obs)
	}
	invs := er.InferInvariants(passing)
	fmt.Printf("inferred invariants at %d program points\n", invs.NumPoints())

	// The production failure: a 100%% coupon.
	failing := er.NewWorkload()
	failing.Add("orders", 3, 2, 10, 4, 25, 6, 100)

	rep, err := er.Reproduce(mod, failing, 1, er.Options{})
	if err != nil || !rep.Reproduced {
		fmt.Fprintln(os.Stderr, "reconstruction failed:", err)
		os.Exit(1)
	}
	fmt.Println(er.Describe(rep))

	// Localize using the reconstructed (replayable!) execution —
	// exactly what post-mortem tools like REPT cannot provide.
	obs, _ := er.CollectObservations(mod, rep.TestCase.Clone(), 1)
	violations := invs.Check(obs)
	fmt.Println("violated invariants (ranked):")
	for i, v := range violations {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-22s %s\n", i+1, v.Point, v.Desc)
	}
}
