// Quickstart: compile a small program with a latent bug, let it fail
// in "production", and reconstruct a concrete failure-reproducing
// test case with the ER loop.
package main

import (
	"fmt"
	"os"

	"execrecon"
)

// The program parses a tiny message: a length, that many payload
// bytes, and a checksum. A checksum of exactly 777 trips a latent
// assertion — the production failure we will reconstruct.
const src = `
func parse(int n) int {
	if (n <= 0 || n > 16) { return -1; }
	int sum = 0;
	for (int i = 0; i < n; i = i + 1) {
		sum = sum + input32("payload");
	}
	assert(sum != 777, "checksum collision");
	return sum;
}

func main() int {
	int msgs = input32("hdr");
	if (msgs <= 0 || msgs > 64) { return -1; }
	for (int m = 0; m < msgs; m = m + 1) {
		output(parse(input32("hdr")));
	}
	return 0;
}`

func main() {
	mod, err := er.Compile("quickstart", src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The failing production input: two benign messages, then one
	// whose payload sums to 777.
	failing := er.NewWorkload()
	failing.Add("hdr", 3, 2, 3, 3)
	failing.Add("payload", 10, 20)     // message 1: sum 30
	failing.Add("payload", 1, 2, 3)    // message 2: sum 6
	failing.Add("payload", 700, 70, 7) // message 3: sum 777 -> assert

	// Confirm it fails.
	res := er.Run(mod, failing.Clone(), 1)
	fmt.Println("production failure:", res.Failure)

	// Reconstruct: control-flow tracing plus (if needed) iterative
	// key data value recording.
	rep, err := er.Reproduce(mod, failing, 1, er.Options{Log: os.Stderr})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(er.Describe(rep))

	// The generated inputs need not equal the original ones — but
	// they must drive the same control flow into the same failure.
	fmt.Println("generated test case:")
	for tag, vals := range rep.TestCase.Streams {
		fmt.Printf("  %-8s = %v\n", tag, vals)
	}
	replay := er.Run(mod, rep.TestCase.Clone(), 1)
	fmt.Println("replayed failure:  ", replay.Failure)
}
