module execrecon

go 1.22
