package absint

import (
	"sort"

	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
)

// Config tunes the fixpoint iteration.
type Config struct {
	// WidenAfter is the number of visits of a loop head before
	// widening kicks in (default 8). Lower converges faster but
	// loses bound precision inside loops.
	WidenAfter int
	// MaxFuncRuns caps interprocedural re-analyses before the
	// analyzer bails out to the sound one-pass Top approximation
	// (default 64 per function).
	MaxFuncRuns int
}

func (c Config) withDefaults() Config {
	if c.WidenAfter <= 0 {
		c.WidenAfter = 8
	}
	if c.MaxFuncRuns <= 0 {
		c.MaxFuncRuns = 64
	}
	return c
}

// FuncFacts is the per-function fixpoint result.
type FuncFacts struct {
	F     *ir.Func
	Index int
	CFG   *dataflow.CFG
	// Params over-approximates the arguments of every call that can
	// reach this function (Top for roots).
	Params []Val
	// Ret over-approximates every returned value (Bottom if the
	// function never returns).
	Ret Val
	// Defs maps instruction ID -> the abstract register value the
	// instruction writes. Call results are included; instructions
	// in unreachable code are absent.
	Defs map[int32]Val
	// In is the entry environment (one Val per register) of each
	// block; nil marks blocks the analysis proved unreachable.
	In [][]Val
	// Reached reports whether any root or call site reaches the
	// function at all.
	Reached bool
}

// ModuleFacts is the whole-module fixpoint result.
type ModuleFacts struct {
	Mod   *ir.Module
	Entry string
	Funcs map[string]*FuncFacts
}

// FactFor returns the abstract value of the register defined by
// instruction id in fn, if the analysis reached it.
func (mf *ModuleFacts) FactFor(fn string, id int32) (Val, bool) {
	ff := mf.Funcs[fn]
	if ff == nil || ff.Defs == nil {
		return Val{}, false
	}
	v, ok := ff.Defs[id]
	return v, ok
}

type fstate struct {
	ff         *FuncFacts
	params     []Val
	paramJoins int
	rooted     bool
	reached    bool
	ret        Val
	runs       int
	queued     bool
}

type analyzer struct {
	mod     *ir.Module
	cfg     Config
	states  []*fstate
	byName  map[string]*fstate
	callers map[string]map[string]bool
	queue   []*fstate
}

// AnalyzeModule runs the interprocedural fixpoint. Functions
// reachable from entry get parameter facts joined over their call
// sites; entry itself, address-taken functions, and functions
// matching an indirect-call arity are rooted with Top parameters.
// An empty entry roots every function (the mode used for lint, whose
// findings must hold for any entry point).
func AnalyzeModule(mod *ir.Module, entry string, cfg Config) *ModuleFacts {
	a := &analyzer{
		mod:     mod,
		cfg:     cfg.withDefaults(),
		byName:  make(map[string]*fstate, len(mod.Funcs)),
		callers: make(map[string]map[string]bool),
	}
	mf := &ModuleFacts{Mod: mod, Entry: entry, Funcs: make(map[string]*FuncFacts, len(mod.Funcs))}

	// Collect indirect-call arities: the VM lets an icall reach any
	// function of matching arity, so those must stay Top-rooted.
	icallArity := map[int]bool{}
	addrTaken := map[string]bool{}
	for _, f := range mod.Funcs {
		for bi := range f.Blocks {
			for ii := range f.Blocks[bi].Instrs {
				in := &f.Blocks[bi].Instrs[ii]
				switch in.Op {
				case ir.OpICall:
					icallArity[len(in.Args)] = true
				case ir.OpFuncAddr:
					addrTaken[in.Tag] = true
				}
			}
		}
	}

	for i, f := range mod.Funcs {
		ff := &FuncFacts{F: f, Index: i, CFG: dataflow.BuildCFG(f)}
		mf.Funcs[f.Name] = ff
		st := &fstate{ff: ff, ret: Bottom()}
		root := entry == "" || f.Name == entry || addrTaken[f.Name] || icallArity[f.NParams]
		if root {
			st.rooted, st.reached = true, true
			st.params = make([]Val, f.NParams)
			for p := range st.params {
				st.params[p] = Top(64)
			}
		}
		a.states = append(a.states, st)
		a.byName[f.Name] = st
	}
	for _, st := range a.states {
		if st.rooted {
			a.enqueue(st)
		}
	}

	total := 0
	budget := a.cfg.MaxFuncRuns * (len(a.states) + 1)
	for len(a.queue) > 0 {
		st := a.queue[0]
		a.queue = a.queue[1:]
		st.queued = false
		total++
		if total > budget {
			a.bailout()
			break
		}
		a.runFunc(st)
	}

	for _, st := range a.states {
		st.ff.Params = st.params
		st.ff.Ret = st.ret
		st.ff.Reached = st.reached
	}
	return mf
}

func (a *analyzer) enqueue(st *fstate) {
	if !st.queued {
		st.queued = true
		a.queue = append(a.queue, st)
	}
}

// bailout re-derives every reached function once with Top parameters
// and Top callee returns: a dependency-free sound approximation used
// only when the interprocedural budget is exhausted.
func (a *analyzer) bailout() {
	a.queue = nil
	for _, st := range a.states {
		if !st.reached {
			continue
		}
		st.queued = false
		st.params = make([]Val, st.ff.F.NParams)
		for p := range st.params {
			st.params[p] = Top(64)
		}
		st.ret = Top(64)
	}
	for _, st := range a.states {
		if st.reached {
			a.runFuncOnce(st, true)
		}
	}
}

func (a *analyzer) runFunc(st *fstate) {
	st.runs++
	if st.runs > a.cfg.MaxFuncRuns {
		return // bounded by the global budget bailout
	}
	a.runFuncOnce(st, false)
}

func copyEnv(env []Val) []Val {
	out := make([]Val, len(env))
	copy(out, env)
	return out
}

func joinEnv(a, b []Val) []Val {
	out := make([]Val, len(a))
	for i := range a {
		out[i] = a[i].Join(b[i], 64)
	}
	return out
}

func widenEnv(old, next []Val) []Val {
	out := make([]Val, len(old))
	for i := range old {
		out[i] = old[i].Widen(next[i], 64)
	}
	return out
}

func envEq(a, b []Val) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (a *analyzer) entryEnv(st *fstate) []Val {
	f := st.ff.F
	env := make([]Val, f.NumRegs)
	for i := range env {
		env[i] = ConstV(0, 64) // vm frames zero-init registers
	}
	for p := 0; p < f.NParams && p < len(env); p++ {
		if st.params != nil && p < len(st.params) {
			env[p] = st.params[p]
		} else {
			env[p] = Top(64)
		}
	}
	return env
}

type edge struct {
	to  int
	env []Val
}

func (a *analyzer) runFuncOnce(st *fstate, topCallees bool) {
	f := st.ff.F
	cfg := st.ff.CFG
	n := len(f.Blocks)
	if n == 0 {
		return
	}
	in := make([][]Val, n)
	visits := make([]int, n)
	in[0] = a.entryEnv(st)
	inWL := make([]bool, n)
	wl := []int{0}
	inWL[0] = true
	pop := func() int {
		best := 0
		for i, b := range wl {
			if cfg.RPONum(b) >= 0 && cfg.RPONum(b) < cfg.RPONum(wl[best]) {
				best = i
			}
		}
		b := wl[best]
		wl = append(wl[:best], wl[best+1:]...)
		inWL[b] = false
		return b
	}

	steps, maxSteps := 0, 64*n+256
	for len(wl) > 0 {
		b := pop()
		if steps++; steps > maxSteps {
			// Per-function safety net: give up on precision, keep
			// soundness.
			for i := range in {
				if in[i] != nil || cfg.Reachable[i] {
					env := a.entryEnv(st)
					for r := range env {
						env[r] = Top(64)
					}
					in[i] = env
				}
			}
			break
		}
		edges, _ := a.execBlock(st, b, copyEnv(in[b]), topCallees, nil)
		for _, e := range edges {
			cur := in[e.to]
			var nw []Val
			if cur == nil {
				nw = e.env
			} else {
				nw = joinEnv(cur, e.env)
				if visits[e.to] >= a.cfg.WidenAfter && cfg.RPONum(b) >= cfg.RPONum(e.to) {
					nw = widenEnv(cur, nw)
				}
				if envEq(cur, nw) {
					continue
				}
			}
			in[e.to] = nw
			visits[e.to]++
			if !inWL[e.to] {
				inWL[e.to] = true
				wl = append(wl, e.to)
			}
		}
	}

	// Final pass: record per-def facts and the return summary from
	// the stabilized entry environments.
	defs := make(map[int32]Val)
	ret := Bottom()
	order := make([]int, 0, n)
	for b := 0; b < n; b++ {
		if in[b] != nil {
			order = append(order, b)
		}
	}
	sort.Slice(order, func(i, j int) bool { return cfg.RPONum(order[i]) < cfg.RPONum(order[j]) })
	for _, b := range order {
		_, r := a.execBlock(st, b, copyEnv(in[b]), topCallees, defs)
		ret = ret.Join(r, 64)
	}
	st.ff.In = in
	st.ff.Defs = defs
	if ret != st.ret {
		st.ret = ret
		for name := range a.callers[f.Name] {
			if cs := a.byName[name]; cs != nil && !topCallees {
				a.enqueue(cs)
			}
		}
	}
}

// recordCall joins concrete call-site arguments into the callee's
// parameter facts, waking the callee (and transitively its callers)
// when they grow.
func (a *analyzer) recordCall(caller *fstate, callee string, args []Val) *fstate {
	st := a.byName[callee]
	if st == nil {
		return nil
	}
	if a.callers[callee] == nil {
		a.callers[callee] = make(map[string]bool)
	}
	a.callers[callee][caller.ff.F.Name] = true
	if st.rooted {
		if !st.reached {
			st.reached = true
			a.enqueue(st)
		}
		return st
	}
	changed := !st.reached
	st.reached = true
	if st.params == nil {
		st.params = make([]Val, st.ff.F.NParams)
		for i := range st.params {
			st.params[i] = Bottom()
		}
	}
	for i := range st.params {
		var av Val
		if i < len(args) {
			av = args[i]
		} else {
			av = ConstV(0, 64) // missing args read as zeroed registers
		}
		nv := st.params[i].Join(av, 64)
		if st.paramJoins > a.cfg.WidenAfter*4 {
			nv = st.params[i].Widen(nv, 64)
		}
		if nv != st.params[i] {
			st.params[i] = nv
			changed = true
		}
	}
	if changed {
		st.paramJoins++
		a.enqueue(st)
	}
	return st
}

// execBlock interprets one block from env, returning the out-edges
// (with branch refinement applied) and the joined OpRet value. When
// defs is non-nil the computed per-instruction values are recorded.
func (a *analyzer) execBlock(st *fstate, b int, env []Val, topCallees bool, defs map[int32]Val) ([]edge, Val) {
	f := st.ff.F
	blk := f.Blocks[b]
	ret := Bottom()
	argVal := func(arg ir.Arg) Val {
		if arg.K == ir.ArgImm {
			return ConstV(arg.Imm, 64)
		}
		return env[arg.Reg]
	}
	set := func(in *ir.Instr, v Val) {
		if in.Dst >= 0 && in.Dst < len(env) {
			env[in.Dst] = v
		}
		if defs != nil {
			defs[in.ID] = v
		}
	}
	for ii := range blk.Instrs {
		in := &blk.Instrs[ii]
		w := uint(in.W)
		switch in.Op {
		case ir.OpConst:
			set(in, ConstV(in.A.Imm, w))
		case ir.OpMov:
			set(in, argVal(in.A).TruncTo(w))
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem,
			ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
			ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
			v := BinV(in.Op, w, argVal(in.A), argVal(in.B))
			set(in, v)
			if v.IsBottom() {
				return nil, ret // op fails on every input reaching it
			}
		case ir.OpZext, ir.OpTrunc:
			set(in, argVal(in.A).TruncTo(w))
		case ir.OpSext:
			set(in, argVal(in.A).SextFrom(w))
		case ir.OpLoad:
			if a.accessMustFail(st, argVal(in.A), int64(in.W.Bytes())) {
				return nil, ret
			}
			set(in, Top(w))
		case ir.OpStore:
			if a.accessMustFail(st, argVal(in.A), int64(in.W.Bytes())) {
				return nil, ret
			}
		case ir.OpFrame:
			off := uint64(uint32(in.A.Imm))
			if f.FrameSize > 0 {
				v := ConstV(off, 32)
				v.PKind, v.PIdx = PtrFrame, int32(st.ff.Index)
				set(in, v)
			} else {
				// No frame object: the packed address has object 0.
				set(in, ConstV(off, 64))
			}
		case ir.OpGlobal:
			v := ConstV(0, 32)
			v.PKind, v.PIdx = PtrGlobal, int32(in.A.Imm)
			set(in, v)
		case ir.OpMalloc:
			sz := argVal(in.A).demote()
			if sz.IsBottom() || sz.Lo > 1<<28 {
				return nil, ret // malloc always fails
			}
			v := ConstV(0, 32)
			v.PKind = PtrHeap
			set(in, v)
		case ir.OpFree:
			// No register effect; failure modes are input-dependent.
		case ir.OpFuncAddr:
			set(in, ConstV(uint64(int64(a.mod.FuncIndex(in.Tag))), 64))
		case ir.OpCall:
			args := make([]Val, len(in.Args))
			for i, arg := range in.Args {
				args[i] = argVal(arg)
			}
			cs := a.recordCall(st, in.Tag, args)
			rv := Top(64)
			if !topCallees && cs != nil {
				rv = cs.ret
			}
			set(in, rv)
			if rv.IsBottom() {
				return nil, ret // callee (so far) never returns
			}
		case ir.OpICall:
			// Any matching-arity function may run (all rooted Top);
			// the result is unconstrained.
			set(in, Top(64))
		case ir.OpInput:
			set(in, Top(w))
		case ir.OpSpawn:
			args := make([]Val, len(in.Args))
			for i, arg := range in.Args {
				args[i] = argVal(arg)
			}
			a.recordCall(st, in.Tag, args)
			set(in, Top(64))
		case ir.OpJoin, ir.OpLock, ir.OpUnlock, ir.OpYield, ir.OpOutput, ir.OpPtWrite:
			// No register effect.
		case ir.OpAssert:
			c := argVal(in.A)
			if !c.IsBottom() && c.demote().Hi == 0 {
				return nil, ret // assert fails on every execution
			}
			if in.A.K == ir.ArgReg {
				refineTruth(env, blk, ii, in.A.Reg, true)
				if env[in.A.Reg].IsBottom() {
					return nil, ret
				}
			}
		case ir.OpAbort:
			return nil, ret
		case ir.OpBr:
			return []edge{{to: in.Blk, env: env}}, ret
		case ir.OpCondBr:
			c := argVal(in.A)
			var out []edge
			mkEdge := func(to int, taken bool) {
				e := copyEnv(env)
				if in.A.K == ir.ArgReg {
					refineTruth(e, blk, ii, in.A.Reg, taken)
					if e[in.A.Reg].IsBottom() {
						return // edge infeasible
					}
				}
				out = append(out, edge{to: to, env: e})
			}
			cd := c.demote()
			if !cd.IsBottom() && cd.Lo >= 1 {
				mkEdge(in.Blk, true)
			} else if !cd.IsBottom() && cd.Hi == 0 {
				mkEdge(in.Blk2, false)
			} else {
				mkEdge(in.Blk, true)
				mkEdge(in.Blk2, false)
			}
			return out, ret
		case ir.OpRet:
			ret = ret.Join(argVal(in.A), 64)
			return nil, ret
		}
	}
	return nil, ret
}

// accessMustFail reports whether a load/store of nb bytes at addr is
// out of bounds for every value of addr (the provable-OOB condition).
func (a *analyzer) accessMustFail(st *fstate, addr Val, nb int64) bool {
	if addr.IsBottom() {
		return false
	}
	size, offLo, _, ok := accessBounds(a.mod, addr)
	return ok && int64(offLo)+nb > size
}

// refineTruth strengthens env given that register r is nonzero
// (truth) or zero (!truth), following r back to a defining
// comparison in the same block when the operands are unclobbered.
func refineTruth(env []Val, blk *ir.Block, upto int, r int, truth bool) {
	nz := Val{Lo: 1, Hi: ^uint64(0)}
	if truth {
		env[r] = env[r].Meet(nz, 64)
	} else {
		env[r] = env[r].Meet(ConstV(0, 64), 64)
	}
	if env[r].IsBottom() {
		return
	}
	// Find the defining comparison.
	di := -1
	for i := upto - 1; i >= 0; i-- {
		in := &blk.Instrs[i]
		if in.Dst == r && writesDst(in.Op) {
			di = i
			break
		}
	}
	if di < 0 {
		return
	}
	def := &blk.Instrs[di]
	switch def.Op {
	case ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
	default:
		return
	}
	// Operand registers must not be redefined between def and use.
	clobbered := func(arg ir.Arg) bool {
		if arg.K != ir.ArgReg {
			return false
		}
		for i := di + 1; i < upto; i++ {
			in := &blk.Instrs[i]
			if in.Dst == arg.Reg && writesDst(in.Op) {
				return true
			}
		}
		return false
	}
	if clobbered(def.A) || clobbered(def.B) {
		return
	}
	refineCmp(env, def, truth)
}

// writesDst reports whether the op defines Dst when executed.
func writesDst(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpMov,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle,
		ir.OpZext, ir.OpSext, ir.OpTrunc,
		ir.OpLoad, ir.OpFrame, ir.OpGlobal, ir.OpMalloc, ir.OpFuncAddr,
		ir.OpCall, ir.OpICall, ir.OpInput, ir.OpSpawn:
		return true
	}
	return false
}

// refineCmp narrows the operand registers of comparison def given its
// result truth value. Registers are refined only when they already
// fit the comparison width (the VM masks operands before comparing,
// so a wider register cannot be constrained directly) and carry no
// pointer provenance.
func refineCmp(env []Val, def *ir.Instr, truth bool) {
	w := uint(def.W)
	m := mask(w)
	op := def.Op
	// Normalize Ne away.
	if op == ir.OpNe {
		op, truth = ir.OpEq, !truth
	}
	get := func(arg ir.Arg) (Val, bool) {
		if arg.K == ir.ArgImm {
			return ConstV(arg.Imm, w), false // constants are not refinable
		}
		v := env[arg.Reg]
		return v.TruncTo(w), v.PKind == PtrNone && !v.IsBottom() && v.Hi <= m
	}
	va, aOK := get(def.A)
	vb, bOK := get(def.B)
	apply := func(arg ir.Arg, ok bool, nv Val) {
		if ok && arg.K == ir.ArgReg {
			env[arg.Reg] = env[arg.Reg].Meet(nv, w)
		}
	}
	// Signed comparisons refine like unsigned when both sides are
	// provably in the non-negative half.
	if op == ir.OpSlt || op == ir.OpSle {
		if va.IsBottom() || vb.IsBottom() || !signedNonNeg(va, w) || !signedNonNeg(vb, w) {
			return
		}
		if op == ir.OpSlt {
			op = ir.OpUlt
		} else {
			op = ir.OpUle
		}
		// Additionally everything stays below the sign bit.
		half := Range(0, mask(w)>>1, w)
		apply(def.A, aOK, half)
		apply(def.B, bOK, half)
	}
	if va.IsBottom() || vb.IsBottom() {
		return
	}
	switch {
	case op == ir.OpEq && truth:
		nv := va.Meet(vb, w)
		apply(def.A, aOK, nv)
		apply(def.B, bOK, nv)
	case op == ir.OpEq && !truth:
		if c, ok := vb.IsConst(); ok && aOK {
			apply(def.A, aOK, excludeConst(env[def.A.Reg].TruncTo(w), c, w))
		}
		if c, ok := va.IsConst(); ok && bOK {
			apply(def.B, bOK, excludeConst(env[def.B.Reg].TruncTo(w), c, w))
		}
	case op == ir.OpUlt && truth: // a < b
		if vb.Hi == 0 {
			apply(def.A, aOK, Bottom())
			return
		}
		apply(def.A, aOK, Range(0, vb.Hi-1, w))
		apply(def.B, bOK, Range(va.Lo+1, m, w))
	case op == ir.OpUlt && !truth: // a >= b
		apply(def.A, aOK, Range(vb.Lo, m, w))
		apply(def.B, bOK, Range(0, va.Hi, w))
	case op == ir.OpUle && truth: // a <= b
		apply(def.A, aOK, Range(0, vb.Hi, w))
		apply(def.B, bOK, Range(va.Lo, m, w))
	case op == ir.OpUle && !truth: // a > b
		if va.Hi == 0 {
			apply(def.B, bOK, Bottom())
			return
		}
		apply(def.A, aOK, Range(vb.Lo+1, m, w))
		apply(def.B, bOK, Range(0, va.Hi-1, w))
	}
}

// excludeConst removes a single excluded value from an interval when
// it sits on an endpoint.
func excludeConst(v Val, c uint64, w uint) Val {
	if v.IsBottom() {
		return v
	}
	if v.Lo == c && v.Hi == c {
		return Bottom()
	}
	if v.Lo == c {
		return norm(Val{Lo: c + 1, Hi: v.Hi, Mask: v.Mask, Bits: v.Bits}, w)
	}
	if v.Hi == c {
		return norm(Val{Lo: v.Lo, Hi: c - 1, Mask: v.Mask, Bits: v.Bits}, w)
	}
	return v
}
