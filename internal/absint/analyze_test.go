package absint_test

import (
	"fmt"
	"testing"

	"execrecon/internal/absint"
	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/vm"
)

// checkSound runs every workload concretely and asserts that each
// register write lands inside the fixpoint's fact for that def.
func checkSound(t *testing.T, src string, loads []*vm.Workload) {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mf := absint.AnalyzeModule(mod, "main", absint.Config{})
	for i, w := range loads {
		var bad []string
		cfg := vm.Config{
			Input: w.Clone(),
			OnRegWrite: func(fn string, id int32, dst int, val uint64) {
				v, ok := mf.FactFor(fn, id)
				if !ok {
					return
				}
				if v.IsBottom() || !v.Contains(val) {
					bad = append(bad, fmt.Sprintf(
						"workload %d: %s id=%d r%d: concrete %d escapes fact %v",
						i, fn, id, dst, val, v))
				}
			},
		}
		vm.New(mod, cfg).Run("main")
		for _, m := range bad {
			t.Error(m)
		}
		if t.Failed() {
			t.Fatalf("unsound facts for workload %d", i)
		}
	}
}

func TestAnalyzeSoundArith(t *testing.T) {
	src := `
func main() int {
	int x = input32("in");
	int y = x & 255;
	int z = y * 3 + 7;
	int q = z / 2;
	int r = z % 10;
	long s = (long)x;
	char c = (char)x;
	uint u = (uint)x >> 3;
	return q + r + (int)s + (int)c + (int)u;
}`
	loads := []*vm.Workload{
		vm.NewWorkload().Add("in", 0),
		vm.NewWorkload().Add("in", 255),
		vm.NewWorkload().Add("in", 0xFFFFFFFF),
		vm.NewWorkload().Add("in", 0x80000000),
		vm.NewWorkload().Add("in", 1234567),
	}
	checkSound(t, src, loads)
}

func TestAnalyzeSoundBranchLoop(t *testing.T) {
	src := `
func clamp(int v, int lim) int {
	if (v < 0) { return 0; }
	if (v > lim) { return lim; }
	return v;
}
func main() int {
	int n = clamp(input32("n"), 100);
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		acc = acc + i;
		if (acc > 10000) { break; }
	}
	while (acc > 16) { acc = acc / 2; }
	return acc;
}`
	loads := []*vm.Workload{
		vm.NewWorkload().Add("n", 0),
		vm.NewWorkload().Add("n", 7),
		vm.NewWorkload().Add("n", 100),
		vm.NewWorkload().Add("n", 0xFFFFFFFF), // negative as int32
	}
	checkSound(t, src, loads)
}

func TestAnalyzeSoundMemory(t *testing.T) {
	src := `
int G[16];
func fill(int k) int {
	for (int i = 0; i < 16; i = i + 1) { G[i] = i * k; }
	return G[15];
}
func main() int {
	int k = input32("k") & 7;
	int last = fill(k + 1);
	char *p = malloc(64);
	p[3] = (char)last;
	char v = p[3];
	free(p);
	return (int)v;
}`
	loads := []*vm.Workload{
		vm.NewWorkload().Add("k", 0),
		vm.NewWorkload().Add("k", 5),
		vm.NewWorkload().Add("k", 0xFFFFFFFF),
	}
	checkSound(t, src, loads)
}

// instr builds one instruction with a fresh ID.
func instr(f *ir.Func, op ir.Op, w ir.Width, dst int, a, b ir.Arg) ir.Instr {
	return ir.Instr{Op: op, W: w, Dst: dst, A: a, B: b, ID: f.NewInstrID()}
}

func findRule(fs []dataflow.Finding, rule string) *dataflow.Finding {
	for i := range fs {
		if fs[i].Rule == rule {
			return &fs[i]
		}
	}
	return nil
}

// TestLintProvableOOB: a constant-folded store 400 bytes into a
// 16-byte global must be flagged as error-level provable OOB.
func TestLintProvableOOB(t *testing.T) {
	mod := &ir.Module{Name: "t"}
	mod.AddGlobal(&ir.Global{Name: "g", Size: 16})
	f := &ir.Func{Name: "main", NumRegs: 4}
	b0 := &ir.Block{}
	b0.Instrs = append(b0.Instrs,
		instr(f, ir.OpGlobal, ir.W64, 0, ir.Imm(0), ir.Arg{}),
		instr(f, ir.OpConst, ir.W64, 1, ir.Imm(400), ir.Arg{}),
		instr(f, ir.OpAdd, ir.W64, 2, ir.Reg(0), ir.Reg(1)),
		instr(f, ir.OpStore, ir.W32, 0, ir.Reg(2), ir.Imm(7)),
		instr(f, ir.OpRet, ir.W64, 0, ir.Imm(0), ir.Arg{}),
	)
	f.Blocks = []*ir.Block{b0}
	mod.AddFunc(f)

	fs := absint.Lint(mod, absint.Config{})
	fd := findRule(fs, dataflow.RuleProvableOOB)
	if fd == nil {
		t.Fatalf("no provable-oob finding in %v", fs)
	}
	if !dataflow.ErrorLevel(fd.Rule) {
		t.Fatalf("provable-oob should be error-level")
	}
}

// TestLintProvableOverflow: 0xFFFFFFFF + 1 at width 32 wraps for every
// execution.
func TestLintProvableOverflow(t *testing.T) {
	mod := &ir.Module{Name: "t"}
	f := &ir.Func{Name: "main", NumRegs: 4}
	b0 := &ir.Block{}
	b0.Instrs = append(b0.Instrs,
		instr(f, ir.OpConst, ir.W32, 0, ir.Imm(0xFFFFFFFF), ir.Arg{}),
		instr(f, ir.OpConst, ir.W32, 1, ir.Imm(1), ir.Arg{}),
		instr(f, ir.OpAdd, ir.W32, 2, ir.Reg(0), ir.Reg(1)),
		instr(f, ir.OpRet, ir.W64, 0, ir.Reg(2), ir.Arg{}),
	)
	f.Blocks = []*ir.Block{b0}
	mod.AddFunc(f)

	fs := absint.Lint(mod, absint.Config{})
	if findRule(fs, dataflow.RuleProvableOverflow) == nil {
		t.Fatalf("no provable-overflow finding in %v", fs)
	}
}

// TestLintAlwaysBranch: a computed condition that compares constants
// has a single outcome.
func TestLintAlwaysBranch(t *testing.T) {
	mod := &ir.Module{Name: "t"}
	f := &ir.Func{Name: "main", NumRegs: 4}
	b0 := &ir.Block{}
	b0.Instrs = append(b0.Instrs,
		instr(f, ir.OpConst, ir.W64, 0, ir.Imm(3), ir.Arg{}),
		instr(f, ir.OpConst, ir.W64, 1, ir.Imm(5), ir.Arg{}),
		instr(f, ir.OpUlt, ir.W64, 2, ir.Reg(0), ir.Reg(1)),
		ir.Instr{Op: ir.OpCondBr, A: ir.Reg(2), Blk: 1, Blk2: 2, ID: f.NewInstrID()},
	)
	b1 := &ir.Block{Index: 1}
	b1.Instrs = append(b1.Instrs, instr(f, ir.OpRet, ir.W64, 0, ir.Imm(1), ir.Arg{}))
	b2 := &ir.Block{Index: 2}
	b2.Instrs = append(b2.Instrs, instr(f, ir.OpRet, ir.W64, 0, ir.Imm(0), ir.Arg{}))
	f.Blocks = []*ir.Block{b0, b1, b2}
	mod.AddFunc(f)

	fs := absint.Lint(mod, absint.Config{})
	fd := findRule(fs, dataflow.RuleAlwaysBranch)
	if fd == nil {
		t.Fatalf("no always-branch finding in %v", fs)
	}
	if dataflow.ErrorLevel(fd.Rule) {
		t.Fatalf("always-branch should be advisory, not error-level")
	}
}

// TestLintCleanPrograms: ordinary correct programs produce no
// error-level provable findings.
func TestLintCleanPrograms(t *testing.T) {
	srcs := []string{
		`func main() int { return 0; }`,
		`
int T[32];
func main() int {
	int n = input32("n") & 31;
	T[n] = n;
	int acc = 0;
	for (int i = 0; i < 32; i = i + 1) { acc = acc + T[i]; }
	return acc;
}`,
		`
func fib(int n) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(input32("n") & 15); }`,
	}
	for i, src := range srcs {
		mod, err := minc.Compile(fmt.Sprintf("clean%d", i), src)
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
		for _, fd := range absint.Lint(mod, absint.Config{}) {
			if dataflow.ErrorLevel(fd.Rule) {
				t.Errorf("program %d: spurious %v", i, fd)
			}
		}
	}
}

// TestMineVerify: mined static candidates hold on the concrete runs
// they are checked against.
func TestMineVerify(t *testing.T) {
	src := `
func clamp(int v) int {
	if (v < 0) { return 0; }
	if (v > 99) { return 99; }
	return v;
}
func main() int { return clamp(input32("v")); }`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mf := absint.AnalyzeModule(mod, "main", absint.Config{})
	cands := absint.Mine(mf)
	if len(cands) == 0 {
		t.Fatalf("no mined candidates")
	}
	for _, c := range cands {
		if c.Min > c.Max {
			t.Fatalf("inverted bound %+v", c)
		}
	}
}
