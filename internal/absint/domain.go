// Package absint is a fixpoint abstract interpreter over the minc IR
// and the solver's expression language. It computes, for every value,
// an unsigned interval [Lo,Hi] combined with a known-bits mask
// (value&Mask == Bits), plus pointer provenance for packed addresses.
// The domains over-approximate the concrete VM semantics (vm.EvalBin
// and the opcode semantics in vm/exec.go), which is the soundness
// contract checked end-to-end by FuzzAbsintSoundness: no concrete
// execution ever escapes the computed facts.
//
// The facts feed four consumers: solver pre-discharge (deciding
// queries without CDCL), width-narrowed bit-blasting (pinning known
// CNF bits), static invariant mining (candidates for
// internal/invariants), and provable lint (errors for code that must
// fail on every execution reaching it).
package absint

import (
	"fmt"
	"math/bits"
)

// PtrKind tags pointer provenance for packed obj<<32|off addresses.
type PtrKind uint8

const (
	// PtrNone means the Val is a plain value: Lo/Hi/Mask/Bits
	// describe the full 64-bit register content.
	PtrNone PtrKind = iota
	// PtrFrame is a frame pointer of function PIdx (module func
	// index); the object id is dynamic, the interval describes the
	// 32-bit offset.
	PtrFrame
	// PtrGlobal is a pointer into global PIdx; the object id is
	// gi+1 exactly.
	PtrGlobal
	// PtrHeap is a malloc result; the object id is dynamic.
	PtrHeap
)

// Val is one abstract value. For PtrNone the interval and known bits
// constrain the full 64-bit value. For pointer kinds they constrain
// the low-32-bit offset only; Full() recovers the packed-value view.
type Val struct {
	Lo, Hi     uint64
	Mask, Bits uint64 // invariant: Bits &^ Mask == 0
	PKind      PtrKind
	PIdx       int32
	bot        bool
}

func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Bottom is the empty abstraction (unreachable / contradictory).
func Bottom() Val { return Val{bot: true} }

// IsBottom reports whether v denotes no values.
func (v Val) IsBottom() bool { return v.bot }

// Top is the full w-bit range with nothing known.
func Top(w uint) Val { return Val{Lo: 0, Hi: mask(w), Mask: ^mask(w)} }

// ConstV abstracts the single value c (truncated to w bits).
func ConstV(c uint64, w uint) Val {
	c &= mask(w)
	return Val{Lo: c, Hi: c, Mask: ^uint64(0), Bits: c}
}

// Range is the interval [lo,hi] within w bits.
func Range(lo, hi uint64, w uint) Val {
	return norm(Val{Lo: lo, Hi: hi, Mask: ^mask(w)}, w)
}

// IsConst reports the single concrete value when the abstraction
// pins one.
func (v Val) IsConst() (uint64, bool) {
	if v.bot || v.PKind != PtrNone {
		return 0, false
	}
	if v.Lo == v.Hi {
		return v.Lo, true
	}
	return 0, false
}

// Contains reports whether concrete value x is inside the
// abstraction. Pointer Vals are checked through their packed view.
func (v Val) Contains(x uint64) bool {
	if v.bot {
		return false
	}
	if v.PKind != PtrNone {
		v = v.Full()
	}
	return v.Lo <= x && x <= v.Hi && x&v.Mask == v.Bits
}

// KnownBitCount is the number of pinned bits within w.
func (v Val) KnownBitCount(w uint) int {
	if v.bot {
		return 0
	}
	return bits.OnesCount64(v.Mask & mask(w))
}

const objShift = 32

// Full converts a pointer Val to its packed obj<<32|off view.
func (v Val) Full() Val {
	if v.bot || v.PKind == PtrNone {
		return v
	}
	offMask := v.Mask & mask(32)
	offBits := v.Bits & mask(32)
	switch v.PKind {
	case PtrGlobal:
		obj := uint64(v.PIdx+1) << objShift
		return norm(Val{
			Lo: obj | v.Lo, Hi: obj | v.Hi,
			Mask: offMask | ^mask(32), Bits: offBits | obj,
		}, 64)
	default: // PtrFrame, PtrHeap: object id dynamic, >= 1
		return norm(Val{
			Lo: 1<<objShift | v.Lo, Hi: uint64(0xffffffff)<<objShift | v.Hi,
			Mask: offMask, Bits: offBits,
		}, 64)
	}
}

// norm tightens the interval from the known bits and vice versa, and
// canonicalizes contradictions to Bottom. w bounds the value width.
func norm(v Val, w uint) Val {
	m := mask(w)
	if v.bot {
		return Bottom()
	}
	v.Bits &= v.Mask
	// Everything above the width is known zero.
	v.Mask |= ^m
	v.Bits &= m
	if v.Hi > m {
		v.Hi = m
	}
	if v.Lo > v.Hi {
		return Bottom()
	}
	// Bits -> interval: the least value matching the pattern is
	// Bits (unknowns 0), the greatest sets all unknowns.
	if lo2 := v.Bits; lo2 > v.Lo {
		v.Lo = lo2
	}
	if hi2 := v.Bits | (^v.Mask & m); hi2 < v.Hi {
		v.Hi = hi2
	}
	if v.Lo > v.Hi {
		return Bottom()
	}
	// Interval -> bits: the common leading bits of Lo and Hi are
	// pinned for every value in between.
	if x := v.Lo ^ v.Hi; x == 0 {
		v.Mask = ^uint64(0)
		v.Bits = v.Lo
	} else {
		k := uint(64 - bits.LeadingZeros64(x)) // low k bits may vary
		if k < 64 {
			hm := ^uint64(0) << k
			if hm&^v.Mask != 0 {
				v.Mask |= hm
				v.Bits |= v.Lo & hm
			}
		}
	}
	return v
}

// demote strips pointer provenance, widening to the packed view.
func (v Val) demote() Val { return v.Full() }

// Join is the least upper bound: every value in either side is in
// the result.
func (a Val) Join(b Val, w uint) Val {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	if a.PKind != PtrNone || b.PKind != PtrNone {
		if a.PKind == b.PKind && a.PIdx == b.PIdx && a.PKind != PtrNone {
			j := joinPlain(stripPtr(a), stripPtr(b), 32)
			j.PKind, j.PIdx = a.PKind, a.PIdx
			return j
		}
		a, b = a.demote(), b.demote()
	}
	return joinPlain(a, b, w)
}

func stripPtr(v Val) Val {
	v.PKind, v.PIdx = PtrNone, 0
	return v
}

func joinPlain(a, b Val, w uint) Val {
	m := a.Mask & b.Mask &^ (a.Bits ^ b.Bits)
	return norm(Val{
		Lo: min64(a.Lo, b.Lo), Hi: max64(a.Hi, b.Hi),
		Mask: m, Bits: a.Bits & m,
	}, w)
}

// Meet is the greatest lower bound: values in both sides.
func (a Val) Meet(b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	if a.PKind != PtrNone || b.PKind != PtrNone {
		if a.PKind == b.PKind && a.PIdx == b.PIdx && a.PKind != PtrNone {
			mt := meetPlain(stripPtr(a), stripPtr(b), 32)
			if mt.bot {
				return Bottom()
			}
			mt.PKind, mt.PIdx = a.PKind, a.PIdx
			return mt
		}
		// Mixed: keep provenance when the other side adds nothing
		// over the packed view (e.g. a != 0 refinement).
		if a.PKind != PtrNone && b.PKind == PtrNone {
			if af := a.Full(); meetPlain(af, b, w) == af {
				return a
			}
		}
		if b.PKind != PtrNone && a.PKind == PtrNone {
			if bf := b.Full(); meetPlain(bf, a, w) == bf {
				return b
			}
		}
		a, b = a.demote(), b.demote()
	}
	return meetPlain(a, b, w)
}

func meetPlain(a, b Val, w uint) Val {
	if (a.Mask&b.Mask)&(a.Bits^b.Bits) != 0 {
		return Bottom()
	}
	return norm(Val{
		Lo: max64(a.Lo, b.Lo), Hi: min64(a.Hi, b.Hi),
		Mask: a.Mask | b.Mask, Bits: a.Bits | b.Bits,
	}, w)
}

// Widen extrapolates from old toward next so that fixpoint iteration
// terminates: unstable bounds jump to 0 / the next 2^k-1 boundary,
// and only the agreeing known bits survive.
func (old Val) Widen(next Val, w uint) Val {
	if old.bot {
		return next
	}
	if next.bot {
		return old
	}
	if old.PKind != PtrNone || next.PKind != PtrNone {
		if old.PKind == next.PKind && old.PIdx == next.PIdx && old.PKind != PtrNone {
			wd := stripPtr(old).Widen(stripPtr(next), 32)
			wd.PKind, wd.PIdx = old.PKind, old.PIdx
			return wd
		}
		old, next = old.demote(), next.demote()
	}
	lo, hi := old.Lo, old.Hi
	if next.Lo < lo {
		lo = 0
	}
	if next.Hi > hi {
		k := bits.Len64(next.Hi)
		if k >= 64 {
			hi = ^uint64(0)
		} else {
			hi = (uint64(1) << k) - 1
		}
	}
	m := old.Mask & next.Mask &^ (old.Bits ^ next.Bits)
	return norm(Val{Lo: lo, Hi: hi, Mask: m, Bits: old.Bits & m}, w)
}

// TruncTo masks the value to w bits (the VM's msk applied to every
// operand and result).
func (v Val) TruncTo(w uint) Val {
	if v.bot {
		return Bottom()
	}
	if v.PKind != PtrNone {
		if w >= 64 {
			return v
		}
		v = v.demote()
	}
	m := mask(w)
	if v.Hi <= m {
		return norm(v, w)
	}
	// High bits drop: if the chopped bits were all pinned the low
	// part keeps its interval shape, else fall to the bit pattern.
	if v.Mask|m == ^uint64(0) && v.Lo&^m == v.Hi&^m {
		return norm(Val{Lo: v.Lo & m, Hi: v.Hi & m, Mask: v.Mask, Bits: v.Bits & m}, w)
	}
	return norm(Val{Lo: 0, Hi: m, Mask: v.Mask & m, Bits: v.Bits & m}, w)
}

// SextFrom sign-extends the low w bits to the full 64-bit value
// (OpSext semantics: the register holds the full extension).
func (v Val) SextFrom(w uint) Val {
	if v.bot {
		return Bottom()
	}
	t := v.TruncTo(w)
	if w >= 64 || t.bot {
		return t
	}
	sign := uint64(1) << (w - 1)
	hm := ^mask(w)
	neg := func(x Val) Val {
		return norm(Val{Lo: x.Lo | hm, Hi: x.Hi | hm, Mask: x.Mask | hm, Bits: x.Bits | hm}, 64)
	}
	if t.Mask&sign != 0 {
		if t.Bits&sign == 0 {
			return t // non-negative: zero extension
		}
		return neg(t)
	}
	lo := meetPlain(t, Val{Lo: 0, Hi: sign - 1, Mask: ^mask(w)}, w)
	hi := meetPlain(t, Val{Lo: sign, Hi: mask(w), Mask: ^mask(w)}, w)
	if hi.bot {
		return lo
	}
	if lo.bot {
		return neg(hi)
	}
	return joinPlain(lo, neg(hi), 64)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (v Val) String() string {
	if v.bot {
		return "⊥"
	}
	p := ""
	switch v.PKind {
	case PtrFrame:
		p = fmt.Sprintf("frame(%d)+", v.PIdx)
	case PtrGlobal:
		p = fmt.Sprintf("global(%d)+", v.PIdx)
	case PtrHeap:
		p = "heap+"
	}
	return fmt.Sprintf("%s[%#x,%#x]&%#x=%#x", p, v.Lo, v.Hi, v.Mask, v.Bits)
}
