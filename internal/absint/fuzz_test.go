package absint_test

import (
	"testing"

	"execrecon/internal/absint"
	"execrecon/internal/corpus"
	"execrecon/internal/vm"
)

// FuzzAbsintSoundness is the differential soundness gate for the whole
// abstract interpreter: generate a self-verified corpus scenario from
// the fuzz seed, run its failing and benign workloads concretely, and
// require every register write to stay inside the fixpoint's fact for
// that definition. Any escape is an unsound transfer function.
func FuzzAbsintSoundness(f *testing.F) {
	for _, s := range []uint64{1, 42, 1337, 99991, 0xdeadbeef} {
		f.Add(s, uint8(8))
	}
	f.Fuzz(func(t *testing.T, seed uint64, widen uint8) {
		scens, _, err := corpus.Generate(corpus.GenConfig{
			N: 1, Seed: seed, Attempts: 4,
		})
		if err != nil || len(scens) == 0 {
			t.Skip("no scenario for this seed")
		}
		sc := scens[0]
		mod, err := sc.Module()
		if err != nil {
			t.Skipf("module: %v", err)
		}
		cfg := absint.Config{WidenAfter: int(widen%16) + 1}
		mf := absint.AnalyzeModule(mod, "main", cfg)

		check := func(w *vm.Workload, schedSeed int64, label string) {
			var bad string
			vcfg := vm.Config{
				Input: w, Seed: schedSeed, MaxSteps: 2_000_000,
				OnRegWrite: func(fn string, id int32, dst int, val uint64) {
					if bad != "" {
						return
					}
					v, ok := mf.FactFor(fn, id)
					if !ok {
						return
					}
					if v.IsBottom() || !v.Contains(val) {
						bad = label + ": " + fn + ": concrete write escapes abstract fact " + v.String()
					}
				},
			}
			vm.New(mod, vcfg).Run("main")
			if bad != "" {
				t.Fatalf("%s (scenario %s seed %d)", bad, sc.Name, seed)
			}
		}
		check(sc.Failing.Clone(), sc.SchedSeed, "failing")
		for i := 0; i < 2 && i < len(sc.BenignSeeds); i++ {
			check(sc.Benign(i), sc.BenignSeeds[i], "benign")
		}
	})
}
