package absint

import (
	"fmt"
	"math/bits"

	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
)

// Lint runs the provable-lint rules over mod using a whole-module
// fixpoint with every function rooted (so findings hold regardless
// of entry point). Error-level rules (dataflow.ErrorLevel) flag
// instructions that fail on every execution reaching them; the
// always-branch rule is advisory.
func Lint(mod *ir.Module, cfg Config) []dataflow.Finding {
	mf := AnalyzeModule(mod, "", cfg)
	return LintFacts(mf)
}

// LintFacts derives provable findings from an existing fixpoint.
func LintFacts(mf *ModuleFacts) []dataflow.Finding {
	var out []dataflow.Finding
	for _, f := range mf.Mod.Funcs {
		ff := mf.Funcs[f.Name]
		if ff == nil || !ff.Reached || ff.In == nil {
			continue
		}
		out = append(out, lintFunc(mf, ff)...)
	}
	return out
}

func lintFunc(mf *ModuleFacts, ff *FuncFacts) []dataflow.Finding {
	f := ff.F
	var out []dataflow.Finding
	add := func(rule string, blk int, in *ir.Instr, msg string) {
		out = append(out, dataflow.Finding{
			Rule: rule, Func: f.Name, Blk: blk, ID: in.ID, Line: in.Line, Msg: msg,
		})
	}
	for b := range f.Blocks {
		if ff.In[b] == nil {
			continue // unreachable under the abstraction
		}
		env := copyEnv(ff.In[b])
		blk := f.Blocks[b]
		argVal := func(arg ir.Arg) Val {
			if arg.K == ir.ArgImm {
				return ConstV(arg.Imm, 64)
			}
			return env[arg.Reg]
		}
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			w := uint(in.W)
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				addr := argVal(in.A)
				nb := int64(in.W.Bytes())
				if size, offLo, _, ok := accessBounds(mf.Mod, addr); ok && !addr.IsBottom() {
					if int64(offLo)+nb > size {
						add(dataflow.RuleProvableOOB, b, in, fmt.Sprintf(
							"%d-byte access at offset >= %d of a %d-byte object on every execution reaching it",
							nb, offLo, size))
					}
				}
			case ir.OpAdd, ir.OpSub, ir.OpMul:
				if ov, msg := provableWrap(in.Op, w, argVal(in.A), argVal(in.B), in); ov {
					add(dataflow.RuleProvableOverflow, b, in, msg)
				}
			case ir.OpCondBr:
				// Only computed conditions: a literal constant
				// condition (while(1), if(0)) is intentional.
				if in.A.K == ir.ArgReg && in.Blk != in.Blk2 {
					c := env[in.A.Reg]
					if !c.IsBottom() {
						cd := c.demote()
						if cd.Lo >= 1 {
							add(dataflow.RuleAlwaysBranch, b, in, "branch condition is nonzero on every execution: always taken")
						} else if cd.Hi == 0 {
							add(dataflow.RuleAlwaysBranch, b, in, "branch condition is zero on every execution: never taken")
						}
					}
				}
			}
			// Advance the environment with the same transfer the
			// fixpoint used, so later checks see refined values; a
			// proven-dead continuation ends the block's findings.
			if stepLintEnv(mf, ff, env, blk, ii) {
				break
			}
		}
	}
	return out
}

// stepLintEnv applies one instruction's transfer to env in place,
// reporting true when the continuation is unreachable.
func stepLintEnv(mf *ModuleFacts, ff *FuncFacts, env []Val, blk *ir.Block, ii int) bool {
	in := &blk.Instrs[ii]
	w := uint(in.W)
	argVal := func(arg ir.Arg) Val {
		if arg.K == ir.ArgImm {
			return ConstV(arg.Imm, 64)
		}
		return env[arg.Reg]
	}
	set := func(v Val) {
		if in.Dst >= 0 && in.Dst < len(env) {
			env[in.Dst] = v
		}
	}
	switch in.Op {
	case ir.OpConst:
		set(ConstV(in.A.Imm, w))
	case ir.OpMov, ir.OpZext, ir.OpTrunc:
		set(argVal(in.A).TruncTo(w))
	case ir.OpSext:
		set(argVal(in.A).SextFrom(w))
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
		v := BinV(in.Op, w, argVal(in.A), argVal(in.B))
		set(v)
		return v.IsBottom()
	case ir.OpLoad:
		set(Top(w))
	case ir.OpFrame:
		off := uint64(uint32(in.A.Imm))
		if ff.F.FrameSize > 0 {
			v := ConstV(off, 32)
			v.PKind, v.PIdx = PtrFrame, int32(ff.Index)
			set(v)
		} else {
			set(ConstV(off, 64))
		}
	case ir.OpGlobal:
		v := ConstV(0, 32)
		v.PKind, v.PIdx = PtrGlobal, int32(in.A.Imm)
		set(v)
	case ir.OpMalloc:
		v := ConstV(0, 32)
		v.PKind = PtrHeap
		set(v)
	case ir.OpFuncAddr:
		set(ConstV(uint64(int64(mf.Mod.FuncIndex(in.Tag))), 64))
	case ir.OpCall:
		rv := Top(64)
		if cf := mf.Funcs[in.Tag]; cf != nil {
			rv = cf.Ret
		}
		set(rv)
		return rv.IsBottom()
	case ir.OpICall, ir.OpSpawn:
		set(Top(64))
	case ir.OpInput:
		set(Top(w))
	case ir.OpAssert:
		c := argVal(in.A)
		if !c.IsBottom() && c.demote().Hi == 0 {
			return true
		}
		if in.A.K == ir.ArgReg {
			refineTruth(env, blk, ii, in.A.Reg, true)
			if env[in.A.Reg].IsBottom() {
				return true
			}
		}
	case ir.OpAbort:
		return true
	}
	return false
}

// accessBounds resolves the object size and offset bounds of a
// provenance-tagged address (frames of the owning function, globals;
// heap objects have dynamic sizes and are never flagged).
func accessBounds(mod *ir.Module, addr Val) (size int64, offLo, offHi uint64, ok bool) {
	switch addr.PKind {
	case PtrFrame:
		idx := int(addr.PIdx)
		if idx < 0 || idx >= len(mod.Funcs) {
			return 0, 0, 0, false
		}
		return mod.Funcs[idx].FrameSize, addr.Lo, addr.Hi, true
	case PtrGlobal:
		gi := int(addr.PIdx)
		if gi < 0 || gi >= len(mod.Globals) {
			return 0, 0, 0, false
		}
		return mod.Globals[gi].Size, addr.Lo, addr.Hi, true
	}
	return 0, 0, 0, false
}

// provableWrap reports whether the w-bit add/sub/mul wraps for every
// operand valuation. The negation idiom 0-x is exempt.
func provableWrap(op ir.Op, w uint, a, b Val, in *ir.Instr) (bool, string) {
	if a.IsBottom() || b.IsBottom() {
		return false, ""
	}
	// Pointer arithmetic with intact provenance never wraps the
	// packed representation in a way worth flagging.
	if a.PKind != PtrNone || b.PKind != PtrNone {
		return false, ""
	}
	a, b = a.TruncTo(w), b.TruncTo(w)
	m := mask(w)
	switch op {
	case ir.OpAdd:
		sum := a.Lo + b.Lo
		if (w >= 64 && sum < a.Lo) || (w < 64 && sum > m) {
			return true, fmt.Sprintf("%d-bit add wraps for every operand value (min operands %d + %d)", w, a.Lo, b.Lo)
		}
	case ir.OpSub:
		if in.A.K == ir.ArgImm && in.A.Imm == 0 {
			return false, "" // negation idiom
		}
		if a.Hi < b.Lo {
			return true, fmt.Sprintf("%d-bit subtract wraps for every operand value (max %d - min %d)", w, a.Hi, b.Lo)
		}
	case ir.OpMul:
		if a.Lo == 0 || b.Lo == 0 {
			return false, ""
		}
		hiP, loP := bits.Mul64(a.Lo, b.Lo)
		if hiP != 0 || loP > m {
			return true, fmt.Sprintf("%d-bit multiply wraps for every operand value (min operands %d * %d)", w, a.Lo, b.Lo)
		}
	}
	return false, ""
}
