package absint

import (
	"sort"

	"execrecon/internal/invariants"
)

// maxMined bounds the candidate list: beyond this the facts are
// mostly noise and the verification run stops being cheap.
const maxMined = 256

// Mine converts the fixpoint's parameter and return summaries into
// candidate invariants for internal/invariants. Only informative
// facts survive: a bound must be strictly tighter than the 64-bit
// range, and the value must not straddle the signed wrap (the
// invariant engine observes int64 views). The candidates are
// hypotheses — callers must run invariants.VerifyStatic against a
// reproduced input before assuming any of them.
func Mine(mf *ModuleFacts) []invariants.StaticCandidate {
	var out []invariants.StaticCandidate
	names := make([]string, 0, len(mf.Funcs))
	for name := range mf.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ff := mf.Funcs[name]
		if !ff.Reached {
			continue
		}
		for i, p := range ff.Params {
			if c, ok := candidateFrom(name+":enter", i, p); ok {
				out = append(out, c)
			}
		}
		if c, ok := candidateFrom(name+":exit", -1, ff.Ret); ok {
			out = append(out, c)
		}
		if len(out) >= maxMined {
			out = out[:maxMined]
			break
		}
	}
	return out
}

func candidateFrom(point string, varIdx int, v Val) (invariants.StaticCandidate, bool) {
	if v.IsBottom() || v.PKind != PtrNone {
		return invariants.StaticCandidate{}, false
	}
	lo, hi := signedBounds(v, 64)
	nonzero := v.Lo >= 1
	full := lo == -1<<63 && hi == 1<<63-1
	if full && !nonzero {
		return invariants.StaticCandidate{}, false // says nothing
	}
	return invariants.StaticCandidate{
		Point: point, Var: varIdx, Min: lo, Max: hi, Nonzero: nonzero,
	}, true
}
