package absint

import (
	"math/bits"

	"execrecon/internal/ir"
	"execrecon/internal/vm"
)

// Transfer functions for the w-bit operations shared by the IR and
// expression layers. Operands are first masked to w bits (mirroring
// the VM's msk) by the callers; each function returns the w-bit
// result abstraction. Every function must over-approximate
// vm.EvalBin — that contract is fuzzed by FuzzAbsintSoundness and
// TestOpsDifferential.

// addKnownBits runs a bitwise ripple-carry over the known bits of a
// and b with known carry-in, returning the known mask/bits of a+b.
func addKnownBits(a, b Val, cin uint64, cinKnown bool, w uint) (uint64, uint64) {
	var rm, rb uint64
	carry, carryKnown := cin, cinKnown
	for i := uint(0); i < w; i++ {
		bit := uint64(1) << i
		aK, bK := a.Mask&bit != 0, b.Mask&bit != 0
		av, bv := uint64(0), uint64(0)
		if a.Bits&bit != 0 {
			av = 1
		}
		if b.Bits&bit != 0 {
			bv = 1
		}
		if aK && bK && carryKnown {
			s := av + bv + carry
			if s&1 == 1 {
				rb |= bit
			}
			rm |= bit
			carry = s >> 1
			continue
		}
		// Result bit unknown; the carry out is still known when
		// the known addend bits force it regardless of the rest.
		switch {
		case aK && bK && av+bv == 2:
			carry, carryKnown = 1, true
		case aK && bK && av+bv == 0:
			carry, carryKnown = 0, true
		default:
			carryKnown = false
		}
	}
	return rm, rb
}

func notVal(v Val, w uint) Val {
	m := mask(w)
	return Val{Lo: (m - v.Hi) & m, Hi: (m - v.Lo) & m, Mask: v.Mask & m, Bits: ^v.Bits & v.Mask & m}
}

// AddV abstracts w-bit wrapping addition.
func AddV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	if (a.PKind != PtrNone) != (b.PKind != PtrNone) && w == 64 {
		// Pointer + offset: stay in the offset domain when the
		// addition provably cannot carry into the object id.
		p, o := a, b
		if b.PKind != PtrNone {
			p, o = b, a
		}
		if o.Hi <= mask(32) && p.Hi+o.Hi <= mask(32) {
			r := AddV(stripPtr(p), o, 32)
			r.PKind, r.PIdx = p.PKind, p.PIdx
			return r
		}
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	m := mask(w)
	lo, hi := uint64(0), m
	s1, c1 := bits.Add64(a.Lo, b.Lo, 0)
	s2, c2 := bits.Add64(a.Hi, b.Hi, 0)
	if w == 64 {
		if c1 == c2 { // both wrap, or neither: order preserved
			lo, hi = s1, s2
		}
	} else {
		switch {
		case s2 <= m: // no wrap anywhere
			lo, hi = s1, s2
		case s1 > m: // every sum wraps exactly once
			lo, hi = s1-m-1, s2-m-1
		}
	}
	km, kb := addKnownBits(a, b, 0, true, w)
	return norm(Val{Lo: lo, Hi: hi, Mask: km, Bits: kb}, w)
}

// SubV abstracts w-bit wrapping subtraction.
func SubV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	if a.PKind != PtrNone && b.PKind == PtrNone && w == 64 && b.Hi <= a.Lo {
		r := SubV(stripPtr(a), b, 32)
		r.PKind, r.PIdx = a.PKind, a.PIdx
		return r
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	m := mask(w)
	lo, hi := uint64(0), m
	switch {
	case a.Lo >= b.Hi: // never borrows
		lo, hi = a.Lo-b.Hi, a.Hi-b.Lo
	case a.Hi < b.Lo: // always borrows exactly once
		lo, hi = (a.Lo-b.Hi)&m, (a.Hi-b.Lo)&m
	}
	// a-b == a + ^b + 1 over w bits.
	nb := notVal(b, w)
	km, kb := addKnownBits(a, nb, 1, true, w)
	return norm(Val{Lo: lo, Hi: hi, Mask: km, Bits: kb}, w)
}

func knownZeroLow(v Val) uint {
	kz := v.Mask &^ v.Bits // known-zero bit positions
	return uint(bits.TrailingZeros64(^kz))
}

// MulV abstracts w-bit wrapping multiplication.
func MulV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	m := mask(w)
	lo, hi := uint64(0), m
	if hiP, loP := bits.Mul64(a.Hi, b.Hi); hiP == 0 && loP <= m {
		lo, hi = a.Lo*b.Lo, loP
	}
	// The product has at least tz(a)+tz(b) trailing zero bits.
	tz := knownZeroLow(a) + knownZeroLow(b)
	if tz > w {
		tz = w
	}
	km := mask(tz)
	return norm(Val{Lo: lo, Hi: hi, Mask: km, Bits: 0}, w)
}

// UDivV abstracts w-bit unsigned division. The VM fails the run on a
// zero divisor, so the continuation sees a divisor >= 1; a divisor
// that must be zero makes the continuation unreachable.
func UDivV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if b.Hi == 0 {
		return Bottom()
	}
	bLo := max64(b.Lo, 1)
	return norm(Val{Lo: a.Lo / b.Hi, Hi: a.Hi / bLo, Mask: 0}, w)
}

// URemV abstracts w-bit unsigned remainder (zero divisor fails).
func URemV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if b.Hi == 0 {
		return Bottom()
	}
	bLo := max64(b.Lo, 1)
	if a.Hi < bLo { // identity: a < b for every pair
		return norm(Val{Lo: a.Lo, Hi: a.Hi, Mask: 0}, w)
	}
	return norm(Val{Lo: 0, Hi: min64(a.Hi, b.Hi-1), Mask: 0}, w)
}

// signedNonNeg reports whether every value is in [0, 2^(w-1)-1].
func signedNonNeg(v Val, w uint) bool {
	if w >= 64 {
		return v.Hi <= mask(63)
	}
	return v.Hi < uint64(1)<<(w-1)
}

// SDivV abstracts w-bit signed division (zero divisor fails; the
// MIN/-1 case wraps like the VM).
func SDivV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 && bv != 0 {
			if r, ok3 := vm.EvalBin(ir.OpSDiv, ir.Width(w), av, bv); ok3 {
				return ConstV(r, w)
			}
		}
	}
	if b.Hi == 0 {
		return Bottom()
	}
	if signedNonNeg(a, w) && signedNonNeg(b, w) {
		return UDivV(a, b, w)
	}
	return Top(w)
}

// SRemV abstracts w-bit signed remainder.
func SRemV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 && bv != 0 {
			if r, ok3 := vm.EvalBin(ir.OpSRem, ir.Width(w), av, bv); ok3 {
				return ConstV(r, w)
			}
		}
	}
	if b.Hi == 0 {
		return Bottom()
	}
	if signedNonNeg(a, w) && signedNonNeg(b, w) {
		return URemV(a, b, w)
	}
	return Top(w)
}

// AndV abstracts bitwise and.
func AndV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	k1 := a.Bits & b.Bits
	kz := (a.Mask &^ a.Bits) | (b.Mask &^ b.Bits)
	return norm(Val{Lo: 0, Hi: min64(a.Hi, b.Hi), Mask: k1 | kz, Bits: k1}, w)
}

func lenBound(h uint64) uint64 {
	k := bits.Len64(h)
	if k >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << k) - 1
}

// OrV abstracts bitwise or.
func OrV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	k1 := a.Bits | b.Bits
	kz := (a.Mask &^ a.Bits) & (b.Mask &^ b.Bits)
	return norm(Val{
		Lo: max64(a.Lo, b.Lo), Hi: lenBound(a.Hi | b.Hi),
		Mask: k1 | kz, Bits: k1,
	}, w)
}

// XorV abstracts bitwise xor.
func XorV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	known := a.Mask & b.Mask
	return norm(Val{
		Lo: 0, Hi: lenBound(a.Hi | b.Hi),
		Mask: known, Bits: (a.Bits ^ b.Bits) & known,
	}, w)
}

// ShlV abstracts w-bit left shift (shift >= w yields 0, like the VM).
func ShlV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote()
	m := mask(w)
	if s, ok := b.IsConst(); ok {
		if s >= uint64(w) {
			return ConstV(0, w)
		}
		v := Val{Mask: (a.Mask << s) | mask(uint(s)), Bits: a.Bits << s}
		if a.Hi <= m>>s {
			v.Lo, v.Hi = a.Lo<<s, a.Hi<<s
		} else {
			v.Lo, v.Hi = 0, m
		}
		return norm(v, w)
	}
	if b.Lo >= uint64(w) {
		return ConstV(0, w)
	}
	// At least b.Lo low bits are zero (also true of the 0 result
	// when the shift saturates).
	return norm(Val{Lo: 0, Hi: m, Mask: mask(uint(b.Lo))}, w)
}

// LShrV abstracts w-bit logical right shift.
func LShrV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote()
	if s, ok := b.IsConst(); ok {
		if s >= uint64(w) {
			return ConstV(0, w)
		}
		return norm(Val{
			Lo: a.Lo >> s, Hi: a.Hi >> s,
			Mask: (a.Mask >> s) | ^(mask(w) >> s), Bits: a.Bits >> s,
		}, w)
	}
	lo := uint64(0)
	if b.Hi < uint64(w) {
		lo = a.Lo >> b.Hi
	}
	return norm(Val{Lo: lo, Hi: a.Hi, Mask: 0}, w)
}

// AShrV abstracts w-bit arithmetic right shift (the VM clamps the
// shift amount to w-1).
func AShrV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote()
	if av, ok := a.IsConst(); ok {
		if bv, ok2 := b.IsConst(); ok2 {
			if r, ok3 := vm.EvalBin(ir.OpAShr, ir.Width(w), av, bv); ok3 {
				return ConstV(r, w)
			}
		}
	}
	if signedNonNeg(a, w) {
		return LShrV(a, b, w)
	}
	return Top(w)
}

func boolTop() Val { return Val{Lo: 0, Hi: 1, Mask: ^uint64(1)} }

func boolVal(mustT, mustF bool) Val {
	switch {
	case mustT:
		return ConstV(1, 1)
	case mustF:
		return ConstV(0, 1)
	}
	return boolTop()
}

// EqV abstracts equality of two w-bit values.
func EqV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	av, aok := a.demote().TruncTo(w).IsConst()
	bv, bok := b.demote().TruncTo(w).IsConst()
	mustT := aok && bok && av == bv
	mustF := a.Meet(b, w).IsBottom()
	return boolVal(mustT, mustF)
}

// NeV abstracts disequality.
func NeV(a, b Val, w uint) Val {
	v := EqV(a, b, w)
	if v.bot {
		return v
	}
	if c, ok := v.IsConst(); ok {
		return ConstV(1-c, 1)
	}
	return v
}

// UltV abstracts unsigned less-than.
func UltV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	return boolVal(a.Hi < b.Lo, a.Lo >= b.Hi)
}

// UleV abstracts unsigned less-or-equal.
func UleV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	return boolVal(a.Hi <= b.Lo, a.Lo > b.Hi)
}

// signedBounds returns [smin,smax] of the w-bit values as int64.
func signedBounds(v Val, w uint) (int64, int64) {
	sext := func(x uint64) int64 {
		if w >= 64 {
			return int64(x)
		}
		sign := uint64(1) << (w - 1)
		if x&sign != 0 {
			return int64(x | ^mask(w))
		}
		return int64(x)
	}
	if w >= 64 {
		if int64(v.Lo) <= int64(v.Hi) { // same sign region in two's complement order
			return int64(v.Lo), int64(v.Hi)
		}
		return -1 << 63, 1<<63 - 1
	}
	sign := uint64(1) << (w - 1)
	if v.Hi < sign || v.Lo >= sign { // does not straddle the sign boundary
		return sext(v.Lo), sext(v.Hi)
	}
	return sext(sign), sext(sign - 1)
}

// SltV abstracts signed less-than at width w.
func SltV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	alo, ahi := signedBounds(a.demote().TruncTo(w), w)
	blo, bhi := signedBounds(b.demote().TruncTo(w), w)
	return boolVal(ahi < blo, alo >= bhi)
}

// SleV abstracts signed less-or-equal at width w.
func SleV(a, b Val, w uint) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	alo, ahi := signedBounds(a.demote().TruncTo(w), w)
	blo, bhi := signedBounds(b.demote().TruncTo(w), w)
	return boolVal(ahi <= blo, alo > bhi)
}

// BinV dispatches an IR binary op at width w; both operands are
// masked to w first, mirroring the VM.
func BinV(op ir.Op, w uint, a, b Val) Val {
	if a.bot || b.bot {
		return Bottom()
	}
	ta, tb := a, b
	if op != ir.OpAdd && op != ir.OpSub {
		// Add/Sub keep pointer provenance; everything else works
		// on the masked packed value.
		ta, tb = a.demote().TruncTo(w), b.demote().TruncTo(w)
	}
	// Constant folding via the VM's own semantics — except for
	// pointer add/sub, where folding to the packed constant would be
	// numerically exact but destroy the provenance the bounds rules
	// depend on.
	ptrArith := (op == ir.OpAdd || op == ir.OpSub) &&
		(a.PKind != PtrNone || b.PKind != PtrNone)
	if !ptrArith {
		if av, ok := ta.demote().TruncTo(w).IsConst(); ok {
			if bv, ok2 := tb.demote().TruncTo(w).IsConst(); ok2 {
				if r, ok3 := vm.EvalBin(op, ir.Width(w), av, bv); ok3 {
					return ConstV(r, w)
				}
				return Bottom() // the VM fails this op for every input
			}
		}
	}
	switch op {
	case ir.OpAdd:
		return AddV(a.TruncTo(w), b.TruncTo(w), w)
	case ir.OpSub:
		return SubV(a.TruncTo(w), b.TruncTo(w), w)
	case ir.OpMul:
		return MulV(ta, tb, w)
	case ir.OpUDiv:
		return UDivV(ta, tb, w)
	case ir.OpURem:
		return URemV(ta, tb, w)
	case ir.OpSDiv:
		return SDivV(ta, tb, w)
	case ir.OpSRem:
		return SRemV(ta, tb, w)
	case ir.OpAnd:
		return AndV(ta, tb, w)
	case ir.OpOr:
		return OrV(ta, tb, w)
	case ir.OpXor:
		return XorV(ta, tb, w)
	case ir.OpShl:
		return ShlV(ta, tb, w)
	case ir.OpLShr:
		return LShrV(ta, tb, w)
	case ir.OpAShr:
		return AShrV(ta, tb, w)
	case ir.OpEq:
		return EqV(ta, tb, w)
	case ir.OpNe:
		return NeV(ta, tb, w)
	case ir.OpUlt:
		return UltV(ta, tb, w)
	case ir.OpUle:
		return UleV(ta, tb, w)
	case ir.OpSlt:
		return SltV(ta, tb, w)
	case ir.OpSle:
		return SleV(ta, tb, w)
	}
	return Top(w)
}
