package absint

import (
	"math/rand"
	"testing"

	"execrecon/internal/expr"
	"execrecon/internal/ir"
	"execrecon/internal/vm"
)

// randValWith draws a random abstract value at width w together with a
// concrete member of it.
func randValWith(r *rand.Rand, w uint) (Val, uint64) {
	m := mask(w)
	x := r.Uint64() & m
	switch r.Intn(5) {
	case 0:
		return ConstV(x, w), x
	case 1:
		return ConstV(x, w).Join(ConstV(r.Uint64()&m, w), w), x
	case 2:
		lo, hi := x, r.Uint64()&m
		if lo > hi {
			lo, hi = hi, lo
		}
		return Range(lo, hi, w), x // lo == x or hi == x; lo is a member
	case 3:
		mk := r.Uint64() & m
		return norm(Val{Lo: 0, Hi: m, Mask: mk, Bits: x & mk}, w), x
	default:
		return Top(w), x
	}
}

var diffOps = []ir.Op{
	ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv,
	ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr,
	ir.OpAShr, ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle,
}

// TestOpsDifferential checks the core soundness property of every
// transfer function against the concrete VM semantics: if xa ∈ va and
// xb ∈ vb and the concrete operation succeeds, then the concrete
// result is a member of the abstract one.
func TestOpsDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	widths := []uint{8, 16, 32, 64}
	for iter := 0; iter < 200000; iter++ {
		w := widths[r.Intn(len(widths))]
		op := diffOps[r.Intn(len(diffOps))]
		va, xa := randValWith(r, w)
		vb, xb := randValWith(r, w)
		if r.Intn(8) == 0 {
			vb, xb = ConstV(0, w), 0 // exercise division edges
		}
		res := BinV(op, w, va, vb)
		got, ok := vm.EvalBin(op, ir.Width(w), xa, xb)
		if !ok {
			continue // concrete execution fails; any abstraction is fine
		}
		if res.IsBottom() {
			t.Fatalf("%v w%d: a=%v(%d) b=%v(%d): abstract Bottom but concrete %d succeeds",
				op, w, va, xa, vb, xb, got)
		}
		if !res.Contains(got) {
			t.Fatalf("%v w%d: a=%v(%d) b=%v(%d): concrete %d not in abstract %v",
				op, w, va, xa, vb, xb, got, res)
		}
	}
}

// TestDomainProps checks the lattice operations' containment
// obligations on random values.
func TestDomainProps(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	widths := []uint{1, 8, 16, 32, 64}
	for iter := 0; iter < 200000; iter++ {
		w := widths[r.Intn(len(widths))]
		a, xa := randValWith(r, w)
		b, xb := randValWith(r, w)

		j := a.Join(b, w)
		if !j.Contains(xa) || !j.Contains(xb) {
			t.Fatalf("w%d: join %v ∪ %v = %v loses %d or %d", w, a, b, j, xa, xb)
		}
		wi := a.Widen(j, w)
		if !wi.Contains(xa) || !wi.Contains(xb) {
			t.Fatalf("w%d: widen(%v, %v) = %v loses %d or %d", w, a, j, wi, xa, xb)
		}
		// A member of both operands survives the meet.
		shared := ConstV(xa, w).Join(b, w)
		mt := a.Meet(shared, w)
		if mt.IsBottom() || !mt.Contains(xa) {
			t.Fatalf("w%d: meet %v ∩ %v = %v loses member %d", w, a, shared, mt, xa)
		}
		// Complement.
		n := notVal(a, w)
		if !n.Contains(^xa & mask(w)) {
			t.Fatalf("w%d: not %v = %v loses %d", w, a, n, ^xa&mask(w))
		}
	}
}

// TestTruncSextProps checks width conversions against their concrete
// counterparts.
func TestTruncSextProps(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	widths := []uint{8, 16, 32, 64}
	for iter := 0; iter < 100000; iter++ {
		w := widths[r.Intn(len(widths))]
		v, x := randValWith(r, w)
		w2 := widths[r.Intn(len(widths))]
		tr := v.TruncTo(w2)
		if !tr.Contains(x & mask(w2)) {
			t.Fatalf("trunc w%d->w%d: %v -> %v loses %d", w, w2, v, tr, x&mask(w2))
		}
		se := v.SextFrom(w)
		want := uint64(expr.SignExtendValue(x, w))
		if !se.Contains(want) {
			t.Fatalf("sext from w%d: %v -> %v loses %d (from %d)", w, v, se, want, x)
		}
	}
}
