package absint

import (
	"math/bits"

	"execrecon/internal/expr"
)

// This file is the solver-facing half of the abstract interpreter: it
// evaluates a constraint set over the expr DAG in the interval +
// known-bits domain, refines per-variable facts from the constraints
// themselves, and tries to discharge the query without bit-blasting.
//
// Soundness contract:
//
//   - Unsat verdicts are proven by over-approximation: the refined
//     environment contains every model of the conjunction, so if some
//     constraint cannot evaluate to true under it, no model exists.
//   - Sat verdicts are only ever produced by guess-and-check — a
//     candidate assignment drawn from the refined intervals and
//     validated concretely with Assignment.Satisfies. An unvalidated
//     guess never escapes.
//   - Lemmas are universal facts: computed under the unconstrained
//     (all-variables-Top) environment, so they hold for every
//     assignment and may outlive the query (session-level reuse).
//   - Vars facts are query-refined: they hold only for models of this
//     constraint set and must not leak into other queries.
//
// Division follows the expr layer's total SMT-LIB semantics (udiv by
// zero yields all-ones, urem by zero yields the dividend, …), which
// differ from the VM's fail-on-zero-divisor semantics used by the
// IR-level transfer functions in ops.go.

// QueryOptions tunes AnalyzeQuery.
type QueryOptions struct {
	// MaxRounds bounds constraint-refinement iterations (default 3).
	MaxRounds int
	// MaxLemmas caps emitted universal lemmas (default 24).
	MaxLemmas int
	// WantLemmas enables universal lemma extraction.
	WantLemmas bool
	// WantModel enables the guess-and-check Sat attempt.
	WantModel bool
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 3
	}
	if o.MaxLemmas <= 0 {
		o.MaxLemmas = 24
	}
	return o
}

// Verdict is the abstract answer for a constraint set.
type Verdict uint8

// Verdicts. Unknown means the abstraction could not decide; Sat and
// Unsat are definitive (Sat is concretely validated, Unsat proven).
const (
	VerdictUnknown Verdict = iota
	VerdictSat
	VerdictUnsat
)

func (v Verdict) String() string {
	switch v {
	case VerdictSat:
		return "sat"
	case VerdictUnsat:
		return "unsat"
	}
	return "unknown"
}

// QueryResult is the outcome of AnalyzeQuery.
type QueryResult struct {
	Verdict Verdict
	// Model is a concretely validated satisfying assignment; non-nil
	// exactly when Verdict is VerdictSat.
	Model *expr.Assignment
	// Vars maps variable names to query-refined facts (normalised to
	// the variable's width). Valid only for this constraint set.
	Vars map[string]Val
	// Lemmas are universally valid implied facts over subterms of the
	// constraints, safe to assert permanently in the originating
	// Builder's session.
	Lemmas []*expr.Expr
}

// maxModelVars bounds the guess-and-check attempt: with more distinct
// variables the chance of a blind hit is negligible and enumerating
// candidates only burns time.
const maxModelVars = 32

// AnalyzeQuery evaluates the conjunction of cs in the abstract domain.
// b must be the Builder that produced cs (lemmas are built in it).
func AnalyzeQuery(b *expr.Builder, cs []*expr.Expr, opt QueryOptions) *QueryResult {
	opt = opt.withDefaults()
	res := &QueryResult{Verdict: VerdictUnknown}
	q := &qstate{
		env:  make(map[string]Val),
		memo: make(map[*expr.Expr]Val),
	}

	// Universal pass: facts valid for every assignment.
	for _, c := range cs {
		v := q.eval(c)
		if !v.IsBottom() && v.Hi == 0 {
			res.Verdict = VerdictUnsat // constraint is false outright
			return res
		}
	}
	if opt.WantLemmas {
		res.Lemmas = q.lemmas(b, cs, opt.MaxLemmas)
	}

	// Refinement rounds: push constraint truth back into variables.
	for r := 0; r < opt.MaxRounds && !q.bottom; r++ {
		changed := false
		for _, c := range cs {
			if q.refine(c, true) {
				changed = true
			}
			if q.bottom {
				break
			}
		}
		if !changed {
			break
		}
		q.memo = make(map[*expr.Expr]Val) // env changed; memo is stale
	}

	if q.bottom {
		res.Verdict = VerdictUnsat
		return res
	}
	for _, c := range cs {
		v := q.eval(c)
		if v.IsBottom() || v.Hi == 0 {
			res.Verdict = VerdictUnsat
			return res
		}
	}

	res.Vars = q.env
	if opt.WantModel {
		if asn := q.tryModel(cs); asn != nil {
			res.Verdict = VerdictSat
			res.Model = asn
		}
	}
	return res
}

// qstate is the per-query evaluation state.
type qstate struct {
	env    map[string]Val     // variable name -> refined fact
	memo   map[*expr.Expr]Val // node -> value under env (per round)
	bottom bool               // refinement derived a contradiction
}

func (q *qstate) varVal(e *expr.Expr) Val {
	if v, ok := q.env[e.Name]; ok {
		return v
	}
	return Top(e.Width)
}

// setVar meets v into the variable's fact, reporting change and
// recording a contradiction when the meet is empty.
func (q *qstate) setVar(e *expr.Expr, v Val) bool {
	old := q.varVal(e)
	nv := old.Meet(v, e.Width)
	if nv.IsBottom() {
		q.bottom = true
	}
	if nv == old {
		return false
	}
	q.env[e.Name] = nv
	return true
}

// eval computes the abstract value of e under the current environment.
// Results are memoised per refinement round (the DAG is shared).
func (q *qstate) eval(e *expr.Expr) Val {
	if v, ok := q.memo[e]; ok {
		return v
	}
	v := q.evalRaw(e)
	q.memo[e] = v
	return v
}

func (q *qstate) evalRaw(e *expr.Expr) Val {
	w := e.Width
	if e.IsArray() {
		return Top(w) // array-sorted; only reachable via guards below
	}
	switch e.Kind {
	case expr.KConst:
		return ConstV(e.Val, w)
	case expr.KVar:
		return q.varVal(e)
	case expr.KSelect:
		return Top(w) // memory contents are opaque to the domain
	case expr.KNot:
		return notVal(q.eval(e.Args[0]), w)
	case expr.KNeg:
		return SubV(ConstV(0, w), q.eval(e.Args[0]), w)
	case expr.KIte:
		if e.Args[1].IsArray() {
			return Top(w)
		}
		c := q.eval(e.Args[0])
		if c.IsBottom() {
			return Bottom()
		}
		if c.Lo >= 1 {
			return q.eval(e.Args[1])
		}
		if c.Hi == 0 {
			return q.eval(e.Args[2])
		}
		return q.eval(e.Args[1]).Join(q.eval(e.Args[2]), w)
	case expr.KConcat:
		loW := e.Args[1].Width
		hi := q.eval(e.Args[0])
		lo := q.eval(e.Args[1]).TruncTo(loW)
		sh := ShlV(hi, ConstV(uint64(loW), 64), w)
		return OrV(sh, lo, w)
	case expr.KExtract:
		v := q.eval(e.Args[0])
		v = LShrV(v, ConstV(uint64(e.Lo), 64), e.Args[0].Width)
		return v.TruncTo(w)
	case expr.KZExt:
		v := q.eval(e.Args[0])
		if v.IsBottom() {
			return v
		}
		return norm(v, w) // high bits become known-zero
	case expr.KSExt:
		return q.eval(e.Args[0]).SextFrom(e.Args[0].Width).TruncTo(w)
	}

	// Remaining kinds are binary over equal-width operands.
	if len(e.Args) != 2 {
		return Top(w)
	}
	if e.Args[0].IsArray() || e.Args[1].IsArray() {
		if e.Kind == expr.KEq {
			return boolTop()
		}
		return Top(w)
	}
	aw := e.Args[0].Width
	a, b := q.eval(e.Args[0]), q.eval(e.Args[1])
	switch e.Kind {
	case expr.KAdd:
		return AddV(a, b, w)
	case expr.KSub:
		return SubV(a, b, w)
	case expr.KMul:
		return MulV(a, b, w)
	case expr.KUDiv:
		return qUDiv(a, b, w)
	case expr.KURem:
		return qURem(a, b, w)
	case expr.KSDiv:
		return qSDiv(a, b, w)
	case expr.KSRem:
		return qSRem(a, b, w)
	case expr.KAnd:
		return AndV(a, b, w)
	case expr.KOr:
		return OrV(a, b, w)
	case expr.KXor:
		return XorV(a, b, w)
	case expr.KShl:
		return ShlV(a, b, w)
	case expr.KLShr:
		return LShrV(a, b, w)
	case expr.KAShr:
		return qAShr(a, b, w)
	case expr.KEq:
		return EqV(a, b, aw)
	case expr.KUlt:
		return UltV(a, b, aw)
	case expr.KUle:
		return UleV(a, b, aw)
	case expr.KSlt:
		return SltV(a, b, aw)
	case expr.KSle:
		return SleV(a, b, aw)
	}
	return Top(w)
}

// qUDiv is KUDiv with SMT-LIB total semantics: x udiv 0 = all-ones.
// UDivV models only the nonzero-divisor behaviour (its result is
// Bottom when the divisor must be zero), so the zero case joins in.
func qUDiv(a, b Val, w uint) Val {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	res := UDivV(a, b, w)
	if b.Contains(0) {
		res = ConstV(mask(w), w).Join(res, w)
	}
	return res
}

// qURem is KURem with total semantics: x urem 0 = x.
func qURem(a, b Val, w uint) Val {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	res := URemV(a, b, w)
	if b.Contains(0) {
		res = a.Join(res, w)
	}
	return res
}

// qSDiv is KSDiv with total semantics: x sdiv 0 = all-ones when x is
// non-negative, 1 when negative (SMT-LIB bvsdiv over bvudiv).
func qSDiv(a, b Val, w uint) Val {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if ca, aok := a.IsConst(); aok {
		if cb, bok := b.IsConst(); bok {
			xa, xb := expr.SignExtendValue(ca, w), expr.SignExtendValue(cb, w)
			switch {
			case xb == 0:
				if xa >= 0 {
					return ConstV(mask(w), w)
				}
				return ConstV(1, w)
			case xb == -1 && xa == -1<<63:
				return ConstV(ca, w)
			default:
				return ConstV(uint64(xa/xb)&mask(w), w)
			}
		}
	}
	res := SDivV(a, b, w)
	if b.Contains(0) {
		lo, hi := signedBounds(a, w)
		var z Val
		switch {
		case lo >= 0:
			z = ConstV(mask(w), w)
		case hi < 0:
			z = ConstV(1, w)
		default:
			z = ConstV(mask(w), w).Join(ConstV(1, w), w)
		}
		res = z.Join(res, w)
	}
	return res
}

// qSRem is KSRem with total semantics: x srem 0 = x, x srem -1 = 0.
func qSRem(a, b Val, w uint) Val {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if ca, aok := a.IsConst(); aok {
		if cb, bok := b.IsConst(); bok {
			xa, xb := expr.SignExtendValue(ca, w), expr.SignExtendValue(cb, w)
			switch {
			case xb == 0:
				return ConstV(ca, w)
			case xb == -1:
				return ConstV(0, w)
			default:
				return ConstV(uint64(xa%xb)&mask(w), w)
			}
		}
	}
	res := SRemV(a, b, w)
	if b.Contains(0) {
		res = a.Join(res, w)
	}
	return res
}

// qAShr is KAShr with expr semantics: shifts of w or more sign-fill
// (the shift clamps to w-1) instead of the VM's modular behaviour.
func qAShr(a, b Val, w uint) Val {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	a, b = a.demote().TruncTo(w), b.demote().TruncTo(w)
	if ca, aok := a.IsConst(); aok {
		if cb, bok := b.IsConst(); bok {
			sh := cb
			if sh >= uint64(w) {
				sh = uint64(w) - 1
			}
			return ConstV(uint64(expr.SignExtendValue(ca, w)>>sh)&mask(w), w)
		}
	}
	if lo, _ := signedBounds(a, w); lo >= 0 {
		// Non-negative operand: sign fill is zero fill, and a clamped
		// shift only yields values LShrV's range already covers.
		return LShrV(a, b, w)
	}
	return Top(w)
}

// refine narrows variable facts so that e evaluates to want, reporting
// whether any fact changed. Only sound narrowings are applied: every
// model making e equal want stays inside the refined environment.
func (q *qstate) refine(e *expr.Expr, want bool) bool {
	if e.IsArray() || q.bottom {
		return false
	}
	switch e.Kind {
	case expr.KNot:
		if e.Width == 1 {
			return q.refine(e.Args[0], !want)
		}
	case expr.KAnd:
		if e.Width == 1 && want {
			c1 := q.refine(e.Args[0], true)
			c2 := q.refine(e.Args[1], true)
			return c1 || c2
		}
	case expr.KOr:
		if e.Width == 1 && !want {
			c1 := q.refine(e.Args[0], false)
			c2 := q.refine(e.Args[1], false)
			return c1 || c2
		}
	case expr.KEq:
		if e.Args[0].IsArray() {
			return false
		}
		a, b := e.Args[0], e.Args[1]
		va, vb := q.eval(a), q.eval(b)
		w := a.Width
		if want {
			m := va.Meet(vb, w)
			c1 := q.assignBack(a, m)
			c2 := q.assignBack(b, m)
			return c1 || c2
		}
		if c, ok := vb.IsConst(); ok {
			return q.assignBack(a, excludeConst(va, c, w))
		}
		if c, ok := va.IsConst(); ok {
			return q.assignBack(b, excludeConst(vb, c, w))
		}
	case expr.KUlt, expr.KUle, expr.KSlt, expr.KSle:
		return q.refineOrder(e, want)
	case expr.KVar:
		if e.Width == 1 {
			if want {
				return q.setVar(e, ConstV(1, 1))
			}
			return q.setVar(e, ConstV(0, 1))
		}
	}
	return false
}

// refineOrder narrows both sides of a comparison. Signed comparisons
// refine only when both operands provably sit in the non-negative
// half, where signed and unsigned order coincide.
func (q *qstate) refineOrder(e *expr.Expr, want bool) bool {
	a, b := e.Args[0], e.Args[1]
	w := a.Width
	va, vb := q.eval(a).demote().TruncTo(w), q.eval(b).demote().TruncTo(w)
	if va.IsBottom() || vb.IsBottom() {
		return false
	}
	kind := e.Kind
	if kind == expr.KSlt || kind == expr.KSle {
		if !signedNonNeg(va, w) || !signedNonNeg(vb, w) {
			return q.refineSignedOneSided(e, want, va, vb)
		}
		if kind == expr.KSlt {
			kind = expr.KUlt
		} else {
			kind = expr.KUle
		}
	}
	m := mask(w)
	var ra, rb Val
	switch {
	case kind == expr.KUlt && want: // a < b
		if vb.Hi == 0 {
			q.bottom = true
			return false
		}
		ra, rb = Range(0, vb.Hi-1, w), rangeFrom(va.Lo+1, m, w)
	case kind == expr.KUlt && !want: // a >= b
		ra, rb = Range(vb.Lo, m, w), Range(0, va.Hi, w)
	case kind == expr.KUle && want: // a <= b
		ra, rb = Range(0, vb.Hi, w), Range(va.Lo, m, w)
	default: // a > b
		if va.Hi == 0 {
			q.bottom = true
			return false
		}
		ra, rb = rangeFrom(vb.Lo+1, m, w), Range(0, va.Hi-1, w)
	}
	c1 := q.assignBack(a, ra)
	c2 := q.assignBack(b, rb)
	return c1 || c2
}

// refineSignedOneSided handles signed comparisons where only one side
// is provably non-negative: the constraint then forces the other side
// into the non-negative half too, where signed order is unsigned
// order. E.g. slt 0 x (true) pins x to [1, 2^(w-1)-1] even though x
// itself started Top. The side that stays possibly-negative cannot be
// refined (its signed range is not an unsigned interval), but a later
// fixpoint round sees the newly non-negative value and takes the
// precise two-sided path.
func (q *qstate) refineSignedOneSided(e *expr.Expr, want bool, va, vb Val) bool {
	a, b := e.Args[0], e.Args[1]
	w := a.Width
	smax := mask(w) >> 1
	lt := e.Kind == expr.KSlt
	switch {
	case lt && want: // a < b signed
		if signedNonNeg(va, w) { // b > a >= 0
			if va.Lo == smax {
				q.bottom = true
				return false
			}
			return q.assignBack(b, Range(va.Lo+1, smax, w))
		}
	case lt && !want: // a >= b signed
		if signedNonNeg(vb, w) { // a >= b >= 0
			return q.assignBack(a, Range(vb.Lo, smax, w))
		}
	case !lt && want: // a <= b signed
		if signedNonNeg(va, w) { // b >= a >= 0
			return q.assignBack(b, Range(va.Lo, smax, w))
		}
	default: // a > b signed
		if signedNonNeg(vb, w) { // a > b >= 0
			if vb.Lo == smax {
				q.bottom = true
				return false
			}
			return q.assignBack(a, Range(vb.Lo+1, smax, w))
		}
	}
	return false
}

// rangeFrom is Range that tolerates lo having wrapped past the mask
// (lo > hi means the bound is vacuous -> Top).
func rangeFrom(lo, hi uint64, w uint) Val {
	if lo > hi {
		return Top(w)
	}
	return Range(lo, hi, w)
}

// assignBack meets fact v into the variables under e, inverting the
// few syntactic shapes that can be inverted exactly: zext, add/sub
// with a constant, and and-with-constant-mask. Reports change.
func (q *qstate) assignBack(e *expr.Expr, v Val) bool {
	if v.IsBottom() {
		q.bottom = true
		return false
	}
	// A 1-bit composite pinned to a constant is a boolean fact about
	// its operands: re-enter refine with the forced truth value. This
	// unlocks the engine's dominant query shape, eq(zext(pred), 0).
	if e.Width == 1 && e.Kind != expr.KVar && e.Kind != expr.KConst {
		if c, ok := v.IsConst(); ok {
			return q.refine(e, c == 1)
		}
	}
	switch e.Kind {
	case expr.KVar:
		return q.setVar(e, v)
	case expr.KZExt:
		x := e.Args[0]
		if x.IsArray() {
			return false
		}
		// value(e) == value(x); x just cannot exceed its own width.
		return q.assignBack(x, v.Meet(Top(x.Width), x.Width))
	case expr.KAdd:
		// x + c == v  =>  x == v - c (modular; SubV over-approximates)
		if c, ok := constSide(e.Args[1]); ok {
			return q.assignBack(e.Args[0], SubV(v, ConstV(c, e.Width), e.Width))
		}
		if c, ok := constSide(e.Args[0]); ok {
			return q.assignBack(e.Args[1], SubV(v, ConstV(c, e.Width), e.Width))
		}
	case expr.KSub:
		// x - c == v  =>  x == v + c
		if c, ok := constSide(e.Args[1]); ok {
			return q.assignBack(e.Args[0], AddV(v, ConstV(c, e.Width), e.Width))
		}
	case expr.KAnd:
		// x & c == const  =>  the bits selected by c are known in x.
		cv, okc := constSide(e.Args[1])
		t := e.Args[0]
		if !okc {
			cv, okc = constSide(e.Args[0])
			t = e.Args[1]
		}
		if okc {
			if bitsv, ok := v.IsConst(); ok && bitsv&^cv == 0 {
				known := norm(Val{Lo: 0, Hi: mask(e.Width), Mask: cv, Bits: bitsv}, e.Width)
				return q.assignBack(t, known)
			}
		}
	}
	return false
}

func constSide(e *expr.Expr) (uint64, bool) {
	if e.Kind == expr.KConst {
		return e.Val, true
	}
	return 0, false
}

// tryModel attempts a satisfying assignment by sampling corner points
// of the refined intervals and validating concretely. Array variables
// are left unassigned (Assignment.Eval defaults them to all-zero).
func (q *qstate) tryModel(cs []*expr.Expr) *expr.Assignment {
	var vars []*expr.Expr
	seen := make(map[string]bool)
	for _, c := range cs {
		for _, v := range expr.VarsOf(c) {
			if v.Kind != expr.KVar || seen[v.Name] {
				continue
			}
			seen[v.Name] = true
			vars = append(vars, v)
		}
	}
	if len(vars) > maxModelVars {
		return nil
	}
	cands := make([][]uint64, len(vars))
	for i, v := range vars {
		cands[i] = candidatePoints(q.varVal(v))
		if len(cands[i]) == 0 {
			return nil
		}
	}
	// Three probes: all-low, all-high, all-middle corner points.
	for probe := 0; probe < 3; probe++ {
		asn := expr.NewAssignment()
		for i, v := range vars {
			pts := cands[i]
			k := 0
			switch probe {
			case 1:
				k = len(pts) - 1
			case 2:
				k = len(pts) / 2
			}
			asn.Vars[v.Name] = pts[k]
		}
		if ok, err := asn.Satisfies(cs); err == nil && ok {
			return asn
		}
	}
	return nil
}

// candidatePoints lists plausible concrete values of v, deduplicated,
// each verified to lie inside v.
func candidatePoints(v Val) []uint64 {
	if v.IsBottom() {
		return nil
	}
	v = v.demote()
	var out []uint64
	add := func(x uint64) {
		if !v.Contains(x) {
			return
		}
		for _, y := range out {
			if y == x {
				return
			}
		}
		out = append(out, x)
	}
	add(v.Lo&^v.Mask | v.Bits)
	add(v.Lo)
	add(v.Bits)
	add(v.Hi&^v.Mask | v.Bits)
	add(v.Hi)
	return out
}

// lemmas extracts universally valid facts over the subterms of cs:
// bounds and bit patterns that hold under the unconstrained
// environment, rendered as expressions in b. Per-query variable
// refinements never appear here — only an empty environment is used.
func (q *qstate) lemmas(b *expr.Builder, cs []*expr.Expr, maxN int) []*expr.Expr {
	// The universal pass runs before any refinement, so q.env is
	// empty and q.memo holds exactly the universal values.
	var out []*expr.Expr
	emitted := make(map[uint64]bool)
	for _, c := range cs {
		if len(out) >= maxN {
			break
		}
		expr.Walk(c, func(s *expr.Expr) {
			if len(out) >= maxN || s.IsArray() || s.Width < 2 {
				return
			}
			if s.Kind == expr.KConst || s.Kind == expr.KVar {
				return // nothing a CDCL core doesn't already know
			}
			if emitted[s.ID()] {
				return
			}
			v := q.eval(s)
			if v.IsBottom() {
				return
			}
			v = v.demote()
			w := s.Width
			m := mask(w)
			if c, ok := v.IsConst(); ok {
				emitted[s.ID()] = true
				out = append(out, b.Eq(s, b.Const(c, w)))
				return
			}
			got := false
			if v.Hi < m && len(out) < maxN {
				out = append(out, b.Ule(s, b.Const(v.Hi, w)))
				got = true
			}
			if v.Lo > 0 && len(out) < maxN {
				out = append(out, b.Ule(b.Const(v.Lo, w), s))
				got = true
			}
			if km := v.Mask & m; km != 0 && len(out) < maxN {
				// Skip when the interval lemmas already pin the same
				// leading bits and nothing else is known.
				if km != leadingKnown(v, w) {
					out = append(out, b.Eq(b.And(s, b.Const(km, w)), b.Const(v.Bits&m, w)))
					got = true
				}
			}
			if got {
				emitted[s.ID()] = true
			}
		})
	}
	return out
}

// leadingKnown returns the mask of leading bits that norm derives from
// the interval alone (common prefix of Lo and Hi).
func leadingKnown(v Val, w uint) uint64 {
	x := v.Lo ^ v.Hi
	if x == 0 {
		return mask(w)
	}
	lz := uint(bits.LeadingZeros64(x))
	return (^uint64(0) << (64 - lz)) & mask(w)
}
