package absint_test

import (
	"math/rand"
	"testing"

	"execrecon/internal/absint"
	"execrecon/internal/expr"
)

func TestQueryUnsatByInterval(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	cs := []*expr.Expr{
		b.Ult(x, b.Const(5, 32)),  // x < 5
		b.Ult(b.Const(10, 32), x), // x > 10
	}
	res := absint.AnalyzeQuery(b, cs, absint.QueryOptions{})
	if res.Verdict != absint.VerdictUnsat {
		t.Fatalf("want unsat, got %v (vars %v)", res.Verdict, res.Vars)
	}
}

func TestQueryUnsatByBits(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	// x & 1 == 0 and x == 7 cannot both hold.
	cs := []*expr.Expr{
		b.Eq(b.And(x, b.Const(1, 32)), b.Const(0, 32)),
		b.Eq(x, b.Const(7, 32)),
	}
	res := absint.AnalyzeQuery(b, cs, absint.QueryOptions{})
	if res.Verdict != absint.VerdictUnsat {
		t.Fatalf("want unsat, got %v", res.Verdict)
	}
}

func TestQuerySatModel(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	cs := []*expr.Expr{
		b.Eq(x, b.Const(3, 32)),
		b.Ule(y, b.Const(100, 32)),
		b.Ult(b.Const(10, 32), y),
	}
	res := absint.AnalyzeQuery(b, cs, absint.QueryOptions{WantModel: true})
	if res.Verdict != absint.VerdictSat {
		t.Fatalf("want sat, got %v (vars %v)", res.Verdict, res.Vars)
	}
	if ok, err := res.Model.Satisfies(cs); err != nil || !ok {
		t.Fatalf("model does not satisfy: ok=%v err=%v", ok, err)
	}
}

func TestQueryRefinedVars(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	cs := []*expr.Expr{
		b.Ule(x, b.Const(41, 32)),
		b.Ule(b.Const(12, 32), x),
	}
	res := absint.AnalyzeQuery(b, cs, absint.QueryOptions{})
	if res.Verdict != absint.VerdictUnknown {
		t.Fatalf("want unknown, got %v", res.Verdict)
	}
	v, ok := res.Vars["x"]
	if !ok {
		t.Fatalf("no refined fact for x")
	}
	if v.Lo != 12 || v.Hi != 41 {
		t.Fatalf("refined x = %v, want [12,41]", v)
	}
}

func TestQueryLemmas(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	// zext8->32(x) is universally <= 255: the sum below is <= 265.
	wide := b.ZExt(x, 32)
	sum := b.Add(wide, b.Const(10, 32))
	cs := []*expr.Expr{b.Ult(sum, b.Const(500, 32))}
	res := absint.AnalyzeQuery(b, cs, absint.QueryOptions{WantLemmas: true})
	if len(res.Lemmas) == 0 {
		t.Fatalf("no lemmas emitted")
	}
	// Every lemma must hold for every assignment: spot-check randomly.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		asn := expr.NewAssignment()
		asn.Vars["x"] = r.Uint64() & 0xFF
		for _, l := range res.Lemmas {
			if v, err := asn.Eval(l); err != nil || v == 0 {
				t.Fatalf("lemma %v violated by x=%d (err %v)", l, asn.Vars["x"], err)
			}
		}
	}
}

// TestQueryRandomSoundness drives random constraint sets and checks
// the two discharge directions: a concretely satisfiable set is never
// declared Unsat, and a Sat verdict always carries a valid model.
func TestQueryRandomSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 3000; iter++ {
		b := expr.NewBuilder()
		nv := 1 + r.Intn(3)
		vars := make([]*expr.Expr, nv)
		conc := expr.NewAssignment()
		w := uint(8 << r.Intn(3)) // 8, 16, 32
		for i := range vars {
			name := string(rune('a' + i))
			vars[i] = b.Var(name, w)
			conc.Vars[name] = r.Uint64() & (1<<w - 1)
		}
		randTerm := func() *expr.Expr {
			v := vars[r.Intn(nv)]
			switch r.Intn(5) {
			case 0:
				return v
			case 1:
				return b.Add(v, b.Const(r.Uint64()&0xFF, w))
			case 2:
				return b.And(v, b.Const(r.Uint64()&(1<<w-1), w))
			case 3:
				return b.UDiv(v, b.Const(r.Uint64()&0xF, w))
			default:
				return b.Mul(v, b.Const(r.Uint64()&0xF, w))
			}
		}
		var cs []*expr.Expr
		for i := 0; i < 1+r.Intn(4); i++ {
			l, rt := randTerm(), randTerm()
			var c *expr.Expr
			switch r.Intn(4) {
			case 0:
				c = b.Eq(l, rt)
			case 1:
				c = b.Ult(l, rt)
			case 2:
				c = b.Ule(l, rt)
			default:
				c = b.Not(b.Eq(l, rt))
			}
			cs = append(cs, c)
		}
		sat, err := conc.Satisfies(cs)
		if err != nil {
			t.Fatalf("concrete eval: %v", err)
		}
		res := absint.AnalyzeQuery(b, cs, absint.QueryOptions{WantModel: true, WantLemmas: true})
		if sat && res.Verdict == absint.VerdictUnsat {
			t.Fatalf("iter %d: unsat verdict but %v satisfies %v", iter, conc.Vars, cs)
		}
		if res.Verdict == absint.VerdictSat {
			if ok, err := res.Model.Satisfies(cs); err != nil || !ok {
				t.Fatalf("iter %d: sat verdict with invalid model (ok=%v err=%v)", iter, ok, err)
			}
		}
		// Refined facts must contain every satisfying assignment.
		if sat && res.Verdict != absint.VerdictSat {
			for name, v := range res.Vars {
				if cv, okc := conc.Vars[name]; okc && !v.Contains(cv) {
					t.Fatalf("iter %d: refined %s=%v excludes satisfying value %d", iter, name, v, cv)
				}
			}
		}
		// Lemmas are universal: the concrete assignment satisfies them
		// regardless of whether it satisfies the query.
		for _, l := range res.Lemmas {
			if v, err := conc.Eval(l); err == nil && v == 0 {
				t.Fatalf("iter %d: universal lemma %v violated by %v", iter, l, conc.Vars)
			}
		}
	}
}
