// Package apps contains the evaluation programs: minc analogs of the
// 13 real-world bugs of Table 1, plus the coreutils od/pr analogs of
// the §5.4 MIMIC case study. Each program is a small but genuine
// system (a parser, an interpreter, a store, a compressor, …) whose
// bug is patterned after the referenced CVE/issue: same bug class,
// same structural cause (an unchecked length, an overflowing size
// computation, a flag interaction leaving a pointer NULL, a race on a
// shared buffer, …).
//
// Every app supplies a failing workload (the production input that
// triggers the bug) and a benign workload generator (the performance
// benchmark used for the Fig. 6 overhead measurements).
package apps

import (
	"fmt"
	"strings"
	"sync"

	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/vm"
)

// App is one evaluation program.
type App struct {
	// Name matches the paper's Application-BugID row.
	Name string
	// BugType is the Table 1 bug class.
	BugType string
	// MT marks multithreaded programs.
	MT bool
	// Kind is the expected failure kind of the failing workload.
	Kind vm.FailKind
	// Src is the minc source.
	Src string
	// Failing returns the bug-triggering workload.
	Failing func() *vm.Workload
	// Benign returns the performance workload for run i.
	Benign func(i int) *vm.Workload
	// Seed is the scheduler seed of the failing run.
	Seed int64
	// QueryBudget overrides the default solver budget (0 = default).
	// It plays the role of the paper's 30 s solver timeout, scaled
	// to our solver's step metering.
	QueryBudget int64

	once sync.Once
	mod  *ir.Module
	err  error
}

// Module compiles (once) and returns the app's module.
func (a *App) Module() (*ir.Module, error) {
	a.once.Do(func() { a.mod, a.err = minc.Compile(a.Name, a.Src) })
	if a.err != nil {
		return nil, fmt.Errorf("apps: %s: %w", a.Name, a.err)
	}
	return a.mod, nil
}

// SrcLines returns the minc line count (the "LoC" analog of Table 1).
func (a *App) SrcLines() int { return strings.Count(a.Src, "\n") + 1 }

// Run executes the app's program on a workload under a scheduler seed
// by concrete VM execution — the shared helper for ground-truth
// checks (does the failing input fail? do benign inputs pass?).
func (a *App) Run(w *vm.Workload, seed int64) (*vm.Result, error) {
	mod, err := a.Module()
	if err != nil {
		return nil, err
	}
	return vm.New(mod, vm.Config{Input: w, Seed: seed}).Run("main"), nil
}

// All returns the 13 Table 1 apps in the paper's row order.
func All() []*App {
	return []*App{
		PHP2012_2386(),
		PHP74194(),
		SQLite7be932d(),
		SQLite787fa71(),
		SQLite4e8e485(),
		Nasm2004_1287(),
		Objdump2018_6323(),
		Matrixssl2014_1569(),
		Memcached2019_11596(),
		Libpng2004_0597(),
		Bash108885(),
		Python2018_1000030(),
		Pbzip2(),
	}
}

// ByName returns the named app or nil.
func ByName(name string) *App {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// xorshift is a tiny deterministic generator for benign workloads.
type xorshift uint64

func newRand(seed int64) *xorshift {
	x := xorshift(uint64(seed)*2862933555777941757 + 3037000493)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) uint64 { return x.next() % uint64(n) }
