package apps

import "execrecon/internal/vm"

// CoreutilOd is the analog of the coreutils od fault used by the
// MIMIC case study (§5.4): od's skip-bytes handling miscounts when
// the skip exceeds the first pseudo-file, corrupting the dump offset
// that downstream formatting relies on.
func CoreutilOd() *App {
	a := &App{
		Name:    "coreutil-od",
		BugType: "Assertion failure",
		Kind:    vm.FailAssert,
		Src: `
// mini-od: dump input bytes in octal words, honoring a -j skip count
// across multiple concatenated input files.
int total_out = 0;

func format_word(int offset, int w) int {
	assert(offset >= 0, "dump offset went negative");
	output(offset * 65536 + (w & 65535));
	total_out = total_out + 1;
	return offset + 2;
}

// skip returns the remaining skip after consuming file bytes.
func skip_file(int flen, int skip) int {
	if (skip >= flen) {
		// BUG: the remaining skip must be skip - flen; subtracting
		// the skip from itself leaves 0, so later files are not
		// skipped and the dump offset runs negative relative to the
		// requested origin (mirrors the 2007 od skip fault).
		return skip - skip;
	}
	return 0 - (flen - skip); // negative: bytes of this file to dump
}

// dump_file prints flen bytes as words at dump offsets relative to
// the requested origin (gpos - skip).
func dump_file(int flen, int offset) int {
	int i = 0;
	while (i + 1 < flen) {
		int b0 = (int)input8("od");
		int b1 = (int)input8("od");
		offset = format_word(offset, b0 * 256 + b1);
		i = i + 2;
	}
	if (i < flen) { input8("od"); }
	return offset;
}

func main() int {
	int nfiles = input32("od");
	int skip = input32("od");
	if (nfiles <= 0 || nfiles > 8 || skip < 0 || skip > 4096) { return -1; }
	int remaining = skip;
	int gpos = 0; // global byte position across the input files
	for (int f = 0; f < nfiles; f = f + 1) {
		int flen = input32("od");
		if (flen < 0 || flen > 256) { return -1; }
		if (remaining > 0) {
			int r = skip_file(flen, remaining);
			if (r >= 0) {
				// whole file skipped: consume its bytes
				for (int i = 0; i < flen; i = i + 1) { input8("od"); }
				gpos = gpos + flen;
				// BUG site: r should be remaining - flen, but
				// skip_file returned 0 — later files dump from a
				// corrupted (negative) origin.
				remaining = r;
			} else {
				// dump the tail of this file
				for (int i = 0; i < remaining; i = i + 1) { input8("od"); }
				gpos = gpos + remaining;
				dump_file(flen - remaining, gpos - skip);
				gpos = gpos + (flen - remaining);
				remaining = 0;
			}
		} else {
			dump_file(flen, gpos - skip);
			gpos = gpos + flen;
		}
	}
	return total_out;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		// skip 10 spans the whole first file (6 bytes); the buggy
		// remainder computation returns 0 instead of 4, so file two
		// is dumped from a corrupted negative origin.
		w.Add("od", 2, 10)
		w.Add("od", 6, 1, 2, 3, 4, 5, 6)
		w.Add("od", 8, 11, 12, 13, 14, 15, 16, 17, 18)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 131)
		w := vm.NewWorkload()
		nf := int(r.intn(3)) + 3
		w.Add("od", uint64(nf), 0) // no skip: the common case
		for f := 0; f < nf; f++ {
			fl := int(r.intn(120)) + 40
			w.Add("od", uint64(fl))
			for b := 0; b < fl; b++ {
				w.Add("od", r.intn(256))
			}
		}
		return w
	}
	return a
}

// CoreutilPr is the analog of the coreutils pr fault used by the
// MIMIC case study (§5.4): pr's column balancing miscomputes the
// per-column line count for inputs that leave the last column empty,
// overrunning the column table.
func CoreutilPr() *App {
	a := &App{
		Name:    "coreutil-pr",
		BugType: "Out-of-bounds access",
		Kind:    vm.FailOutOfBounds,
		Src: `
// mini-pr: paginate input lines into balanced columns.
int lines[64];
int col_start[8];
int pages = 0;

func compute_columns(int nlines, int ncols) int {
	// BUG: rounding up with (nlines + ncols - 1) / ncols is correct
	// only when every column is used; when nlines < ncols the loop
	// below indexes col_start past its end (mirrors the 2008 pr
	// column fault).
	int percol = (nlines + ncols - 1) / ncols;
	if (percol < 1) { percol = 1; }
	int c = 0;
	int start = 0;
	while (start < nlines) {
		col_start[c] = start;
		c = c + 1;
		start = start + percol;
	}
	return c;
}

func emit_page(int nlines, int ncols) {
	int used = compute_columns(nlines, ncols);
	for (int c = 0; c < used; c = c + 1) {
		int s = col_start[c];
		int e = s + (nlines + ncols - 1) / ncols;
		if (e > nlines) { e = nlines; }
		for (int i = s; i < e; i = i + 1) { output(lines[i]); }
	}
	pages = pages + 1;
}

func main() int {
	int npages = input32("pr");
	int ncols = input32("pr");
	if (npages <= 0 || npages > 16 || ncols <= 0 || ncols > 12) { return -1; }
	for (int p = 0; p < npages; p = p + 1) {
		int nlines = input32("pr");
		if (nlines < 0 || nlines > 64) { return -1; }
		for (int i = 0; i < nlines; i = i + 1) { lines[i] = input32("pr"); }
		emit_page(nlines, ncols);
	}
	return pages;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		// ncols = 9 with nlines = 9 gives percol = 1, so the column
		// loop writes col_start[8] — past the 8-slot table.
		w.Add("pr", 2, 9)
		w.Add("pr", 4, 100, 101, 102, 103) // page 1: fine (4 columns)
		w.Add("pr", 9, 1, 2, 3, 4, 5, 6, 7, 8, 9)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 141)
		w := vm.NewWorkload()
		np := int(r.intn(4)) + 1
		w.Add("pr", uint64(np), r.intn(4)+2) // 2..5 columns
		for p := 0; p < np; p++ {
			nl := int(r.intn(40)) + 8
			w.Add("pr", uint64(nl))
			for l := 0; l < nl; l++ {
				w.Add("pr", r.intn(1000))
			}
		}
		return w
	}
	return a
}
