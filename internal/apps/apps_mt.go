package apps

import "execrecon/internal/vm"

// Memcached2019_11596 is the analog of CVE-2019-11596: a metadump
// crawl races with item deletion; deletion clears the item pointer
// before unlinking the slot, so the crawler observes a live slot with
// a NULL item and dereferences it.
func Memcached2019_11596() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "Memcached-2019-11596",
		BugType:     "NULL pointer dereference",
		MT:          true,
		Kind:        vm.FailNullDeref,
		Src: `
// mini-memcached: a slot table of items; one worker serves set/del
// commands, another runs the metadump crawler.
int used[64];
long items[64];
int stored = 0;
int dumped = 0;
int crawls = 0;

func slot_of(int key) int {
	int h = key * 2654435761;
	if (h < 0) { h = 0 - h; }
	return h % 64;
}

func do_set(int key, int value) {
	int s = slot_of(key);
	lock(1);
	if (used[s] == 0) {
		int *it = (int*)malloc(8);
		it[0] = key;
		it[1] = value;
		items[s] = (long)it;
		used[s] = 1;
		stored = stored + 1;
	} else {
		int *it = (int*)items[s];
		it[1] = value;
	}
	unlock(1);
}

func do_del(int key) {
	int s = slot_of(key);
	// BUG: the pointer is cleared and freed before the slot is
	// unlinked, and without the crawler's lock (the fix unlinks
	// under the lock first).
	if (used[s] == 1) {
		long it = items[s];
		items[s] = 0;
		yield();
		used[s] = 0;
		free((char*)it);
	}
}

func worker(int ncmds) {
	for (int i = 0; i < ncmds; i = i + 1) {
		int op = input32("cmds");
		int key = input32("cmds");
		if (op == 1) { do_set(key, input32("cmds")); }
		else if (op == 2) { do_del(key); }
	}
}

func crawler(int rounds) {
	for (int r = 0; r < rounds; r = r + 1) {
		for (int s = 0; s < 64; s = s + 1) {
			if (used[s] == 1) {
				yield();
				int *it = (int*)items[s];
				dumped = dumped + it[0]; // NULL deref in the race window
			}
		}
		crawls = crawls + 1;
	}
}

func main() int {
	int ncmds = input32("cfg");
	int rounds = input32("cfg");
	if (ncmds < 0 || ncmds > 4096 || rounds < 0 || rounds > 64) { return -1; }
	long t1 = spawn worker(ncmds);
	long t2 = spawn crawler(rounds);
	join(t1);
	join(t2);
	output(stored);
	output(dumped);
	return crawls;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		w.Add("cfg", 40, 8)
		r := newRand(7)
		// Sets followed by deletes of the same keys: the crawler
		// walks while the worker deletes.
		for i := 0; i < 10; i++ {
			w.Add("cmds", 1, uint64(i), r.intn(1000))
		}
		for i := 0; i < 10; i++ {
			w.Add("cmds", 2, uint64(i))
		}
		for i := 0; i < 10; i++ {
			w.Add("cmds", 1, uint64(i+20), r.intn(1000))
		}
		for i := 0; i < 10; i++ {
			w.Add("cmds", 2, uint64(i+20))
		}
		return w
	}
	a.Seed = 3 // an interleaving that exposes the race window
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 101)
		w := vm.NewWorkload()
		n := 300 // memtier-like set/get-heavy mix, no deletes
		w.Add("cfg", uint64(n), 4)
		for k := 0; k < n; k++ {
			w.Add("cmds", 1, r.intn(64), r.intn(10000))
		}
		return w
	}
	return a
}

// Python2018_1000030 is the analog of CVE-2018-1000030: CPython 2.7's
// file readahead buffer is not thread safe; concurrent readers race
// on the shared buffer, one thread using a buffer the other has
// already replaced.
func Python2018_1000030() *App {
	a := &App{
		QueryBudget: 2000,
		Name:        "Python-2018-1000030",
		BugType:     "Shared data corruption",
		MT:          true,
		Kind:        vm.FailUseAfterFree,
		Src: `
// mini-python file object: a shared readahead buffer refilled on
// demand; two reader threads consume lines concurrently.
long rbuf = 0;
int rlen = 0;
int rpos = 0;
int lines_read = 0;
int refills = 0;

func refill() {
	// Refills are serialized among themselves (lock 4), but — the
	// BUG — not against readers that already captured the old
	// buffer pointer (the fix holds the file object's lock across
	// the whole readahead operation).
	lock(4);
	long old = rbuf;
	int n = input32("file");
	if (n <= 0 || n > 32) { n = 8; }
	char *nb = malloc(n);
	for (int i = 0; i < n; i = i + 1) { nb[i] = input8("file"); }
	yield();
	lock(2);
	rbuf = (long)nb;
	rlen = n;
	rpos = 0;
	unlock(2);
	if (old != 0) { free((char*)old); }
	refills = refills + 1;
	unlock(4);
}

func read_line(int id) int {
	int acc = 0;
	lock(2);
	if (rpos >= rlen || rbuf == 0) {
		unlock(2);
		refill(); // racy: outside the object lock
		lock(2);
	}
	// reserve a position in the current buffer
	long p = rbuf;
	int pos = rpos;
	int len = rlen;
	rpos = rpos + 1;
	unlock(2);
	yield();
	// use the captured pointer: stale after a concurrent refill
	char *buf = (char*)p;
	if (pos < len) {
		acc = (int)buf[pos]; // use-after-free once the race hits
	}
	lines_read = lines_read + 1;
	return acc;
}

func reader(int n) {
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		acc = acc + read_line(0);
	}
	output(acc);
}

func main() int {
	int n1 = input32("cfg");
	int n2 = input32("cfg");
	if (n1 < 0 || n1 > 4096 || n2 < 0 || n2 > 4096) { return -1; }
	long t1 = spawn reader(n1);
	long t2 = spawn reader(n2);
	join(t1);
	join(t2);
	output(lines_read);
	return refills;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		w.Add("cfg", 12, 12)
		r := newRand(5)
		for k := 0; k < 24; k++ {
			n := 4
			w.Add("file", uint64(n))
			for b := 0; b < n; b++ {
				w.Add("file", r.intn(96)+32)
			}
		}
		return w
	}
	a.Seed = 2
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 111)
		w := vm.NewWorkload()
		// pypy-benchmark-like read mix: production reads are issued
		// by one thread at a time (the second thread is idle), so
		// the race window never lines up.
		w.Add("cfg", 200, 0)
		for k := 0; k < 300; k++ {
			n := int(r.intn(24)) + 8
			w.Add("file", uint64(n))
			for b := 0; b < n; b++ {
				w.Add("file", r.intn(96)+32)
			}
		}
		return w
	}
	return a
}

// Pbzip2 is the analog of the pbzip2-0.9.4 use-after-free: the
// consumer frees a queue block that the producer-side drain path
// still touches when the queue empties at end of input.
func Pbzip2() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "Pbzip2",
		BugType:     "Use-after-free",
		MT:          true,
		Kind:        vm.FailUseAfterFree,
		Src: `
// mini-pbzip2: a producer reads input blocks into a bounded queue; a
// consumer RLE-compresses and frees them. Normal termination is a
// "last block" marker; the fifo metadata is freed by the producer
// after the queue drains.
long queue[8];
int qhead = 0;
int qtail = 0;
int qcount = 0;
long fifo = 0; // shared metadata: [produced, consumed, eof]
int out_bytes = 0;

func enqueue(long blk) {
	int queued = 0;
	while (queued == 0) {
		lock(3);
		if (qcount < 8) {
			queue[qtail] = blk;
			qtail = (qtail + 1) % 8;
			qcount = qcount + 1;
			queued = 1;
		}
		unlock(3);
		if (queued == 0) { yield(); }
	}
}

func produce(int nblocks) {
	for (int b = 0; b < nblocks; b = b + 1) {
		int n = input32("data");
		if (n < 0 || n > 24) { n = 1; }
		if (n == 0) {
			// BUG: an empty block is skipped entirely — including
			// the last one, so its "last block" marker is never
			// queued and the consumer falls back to polling the
			// fifo metadata (the fix queues a zero-length marker
			// block).
			continue;
		}
		char *blk = malloc(n + 8);
		int *hdr = (int*)blk;
		hdr[0] = n;
		if (b == nblocks - 1) { hdr[1] = 1; } else { hdr[1] = 0; }
		for (int i = 0; i < n; i = i + 1) { blk[8 + i] = input8("data"); }
		enqueue((long)blk);
		int *f = (int*)fifo;
		lock(3);
		f[0] = f[0] + 1;
		unlock(3);
	}
	// Teardown: wait for the queue to drain, then free the fifo.
	int drained = 0;
	while (drained == 0) {
		lock(3);
		if (qcount == 0) { drained = 1; }
		unlock(3);
		if (drained == 0) { yield(); }
	}
	free((char*)fifo);
}

func rle(char *blk, int n) int {
	int out = 0;
	int i = 8;
	while (i < n + 8) {
		char v = blk[i];
		int run = 1;
		while (i + run < n + 8 && blk[i + run] == v) { run = run + 1; }
		out = out + 2;
		i = i + run;
	}
	return out;
}

func consume(int unused) {
	int done = 0;
	while (done == 0) {
		long blk = 0;
		lock(3);
		if (qcount > 0) {
			blk = queue[qhead];
			qhead = (qhead + 1) % 8;
			qcount = qcount - 1;
		}
		unlock(3);
		if (blk != 0) {
			int *hdr = (int*)blk;
			int n = hdr[0];
			if (hdr[1] == 1) { done = 1; }
			out_bytes = out_bytes + rle((char*)blk, n);
			free((char*)blk);
		} else {
			// queue empty: poll the EOF flag in the fifo metadata —
			// a use-after-free once the producer tore it down.
			int *f = (int*)fifo;
			if (f[2] == 1) { done = 1; }
			yield();
		}
	}
}

func main() int {
	int nblocks = input32("cfg");
	if (nblocks <= 0 || nblocks > 512) { return -1; }
	int *f = (int*)malloc(12);
	f[0] = 0; f[1] = 0; f[2] = 0;
	fifo = (long)f;
	long tp = spawn produce(nblocks);
	long tc = spawn consume(0);
	join(tp);
	join(tc);
	output(out_bytes);
	return out_bytes;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		w.Add("cfg", 6)
		r := newRand(9)
		for b := 0; b < 5; b++ {
			n := 6
			w.Add("data", uint64(n))
			for i := 0; i < n; i++ {
				w.Add("data", r.intn(4)) // runs compress well
			}
		}
		// The final block is empty: its "last" marker is skipped.
		w.Add("data", 0)
		return w
	}
	a.Seed = 1
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 121)
		w := vm.NewWorkload()
		// compress a "71 MB tar" stand-in: many blocks; the UAF
		// window needs the consumer to lag into the producer's
		// teardown, which large balanced pipelines avoid.
		n := 60
		w.Add("cfg", uint64(n))
		for b := 0; b < n; b++ {
			sz := int(r.intn(20)) + 4
			w.Add("data", uint64(sz))
			for k := 0; k < sz; k++ {
				w.Add("data", r.intn(3))
			}
		}
		return w
	}
	return a
}
