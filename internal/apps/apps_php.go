package apps

import "execrecon/internal/vm"

// PHP2012_2386 is the analog of PHP bug 2012-2386 (Secunia SA44335):
// an unchecked 32-bit multiplication of attacker-controlled entry
// count and entry size in the phar tar parser overflows, producing an
// undersized heap allocation that the entry-copy loop then overruns.
func PHP2012_2386() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "PHP-2012-2386",
		BugType:     "Integer overflow",
		Kind:        vm.FailOutOfBounds,
		Src: `
// mini-phar: archive processor with a manifest of fixed-size entries.
int archives_ok = 0;

func checksum(char *buf, int n) int {
	int sum = 0;
	for (int i = 0; i < n; i = i + 1) {
		sum = sum * 31 + (int)buf[i];
	}
	return sum;
}

func parse_archive() int {
	int count = input32("arch");
	int entsize = input32("arch");
	if (count <= 0 || entsize <= 0) { return -1; }
	// BUG: count*entsize computed in 32 bits with no overflow check
	// (the fix multiplies in 64 bits and validates).
	uint total = (uint)count * (uint)entsize;
	char *buf = malloc((long)total);
	for (int e = 0; e < count; e = e + 1) {
		for (int b = 0; b < entsize; b = b + 1) {
			buf[e * entsize + b] = input8("arch");
		}
	}
	int sum = checksum(buf, (int)total);
	free(buf);
	archives_ok = archives_ok + 1;
	return sum;
}

func main() int {
	int done = 0;
	while (done == 0) {
		int cmd = input32("req");
		if (cmd == 0) { done = 1; }
		else { output(parse_archive()); }
	}
	return archives_ok;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(3)
		// Benign archives, then the overflowing manifest:
		// 0x10000 * 0x10000 ≡ 0 (mod 2^32) → malloc(0) → the first
		// entry byte overruns.
		for k := 0; k < 5; k++ {
			w.Add("req", 1)
			count, entsize := int(r.intn(3))+1, int(r.intn(4))+2
			w.Add("arch", uint64(count), uint64(entsize))
			for b := 0; b < count*entsize; b++ {
				w.Add("arch", r.intn(256))
			}
		}
		w.Add("req", 1)
		w.Add("arch", 0x10000, 0x10000, 7)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 1)
		w := vm.NewWorkload()
		for k := 0; k < 40; k++ {
			w.Add("req", 1)
			count, entsize := int(r.intn(6))+1, int(r.intn(24))+1
			w.Add("arch", uint64(count), uint64(entsize))
			for b := 0; b < count*entsize; b++ {
				w.Add("arch", r.intn(256))
			}
		}
		w.Add("req", 0)
		return w
	}
	return a
}

// PHP74194 is the analog of PHP bug 74194: serializing an ArrayObject
// miscounts the needed buffer length for a corner-case value, so the
// second (writing) pass overruns the heap buffer sized by the first
// (counting) pass.
func PHP74194() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "PHP-74194",
		BugType:     "Heap buffer overflow",
		Kind:        vm.FailOutOfBounds,
		Src: `
// mini-serializer: two-pass "k:v;" encoding of integer pairs.
int serialized = 0;

// BUG: digits(0) returns 0, but the writer emits one character for
// zero — the length pass undercounts by one per zero value.
func digits(int x) int {
	int d = 0;
	while (x > 0) { d = d + 1; x = x / 10; }
	return d;
}

func writenum(char *out, int pos, int x) int {
	if (x == 0) {
		out[pos] = '0';
		return pos + 1;
	}
	char tmp[12];
	int n = 0;
	while (x > 0) {
		tmp[n] = (char)('0' + x % 10);
		x = x / 10;
		n = n + 1;
	}
	while (n > 0) {
		n = n - 1;
		out[pos] = tmp[n];
		pos = pos + 1;
	}
	return pos;
}

func serialize() int {
	int n = input32("ser");
	if (n <= 0 || n > 8) { return -1; }
	int keys[8];
	int vals[8];
	int len = 0;
	for (int i = 0; i < n; i = i + 1) {
		int k = input32("ser");
		int v = input32("ser");
		if (k < 0 || v < 0) { return -1; }
		keys[i] = k;
		vals[i] = v;
		len = len + digits(k) + digits(v) + 2;
	}
	char *out = malloc(len);
	int pos = 0;
	for (int i = 0; i < n; i = i + 1) {
		pos = writenum(out, pos, keys[i]);
		out[pos] = ':';
		pos = pos + 1;
		pos = writenum(out, pos, vals[i]);
		out[pos] = ';';
		pos = pos + 1;
	}
	int sum = 0;
	for (int i = 0; i < len; i = i + 1) { sum = sum + (int)out[i]; }
	free(out);
	serialized = serialized + 1;
	return sum;
}

func main() int {
	int done = 0;
	while (done == 0) {
		int cmd = input32("req");
		if (cmd == 0) { done = 1; }
		else { output(serialize()); }
	}
	return serialized;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		// Benign batches, then a batch whose value 0 triggers the
		// undercount.
		r := newRand(13)
		for k := 0; k < 5; k++ {
			w.Add("req", 1)
			n := int(r.intn(4)) + 1
			w.Add("ser", uint64(n))
			for j := 0; j < n; j++ {
				w.Add("ser", r.intn(90)+1, r.intn(90)+1)
			}
		}
		w.Add("req", 1)
		w.Add("ser", 2, 31, 7, 4, 0)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 11)
		w := vm.NewWorkload()
		for k := 0; k < 60; k++ {
			w.Add("req", 1)
			n := int(r.intn(8)) + 1
			w.Add("ser", uint64(n))
			for j := 0; j < n; j++ {
				w.Add("ser", r.intn(9000)+1, r.intn(9000)+1)
			}
		}
		w.Add("req", 0)
		return w
	}
	return a
}
