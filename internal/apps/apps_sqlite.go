package apps

import "execrecon/internal/vm"

// SQLite7be932d is the analog of SQLite ticket 7be932d: an adverse
// interaction between the CLI's ".stats" and ".eqp" modes leaves the
// query-plan counter structure unallocated while the stats printer
// dereferences it — a stateful, latent NULL dereference whose root
// cause (the mode change freeing the plan) is far from the failure
// (the next query's stats print).
func SQLite7be932d() *App {
	a := &App{
		QueryBudget: 10000,
		Name:        "SQLite-7be932d",
		BugType:     "NULL pointer dereference",
		Kind:        vm.FailNullDeref,
		Src: `
// mini-sqlite CLI: rows live in a hash-indexed table; commands toggle
// stats/eqp modes and run point queries.
int slots[128];   // hash-slot -> value (open addressing, 1 probe)
int slot_used[128];
int nrows = 0;
int stats_on = 0;
int eqp_on = 0;
long plan = 0; // plan counters, allocated while eqp is on

func alloc_plan() {
	int *p = (int*)malloc(16);
	p[0] = 0; p[1] = 0; p[2] = 0; p[3] = 0;
	plan = (long)p;
}

func reset_modes() {
	// BUG: resetting frees the plan but leaves stats_on set, so the
	// next query's stats printer dereferences NULL (the fix clears
	// stats_on too).
	if (plan != 0) { free((char*)plan); plan = 0; }
	eqp_on = 0;
}

func hash_of(int key) int {
	int h = (key * 31) ^ (key >> 7);
	return h & 127;
}

func insert_row(int key, int v) {
	int h = hash_of(key);
	if (slot_used[h] == 0) { nrows = nrows + 1; }
	slots[h] = v;
	slot_used[h] = 1;
}

func scan(int key) int {
	int hits = 0;
	int h = hash_of(key);
	int *p = (int*)plan;
	if (eqp_on == 1) { p[0] = p[0] + 1; }
	if (slot_used[h] == 1 && slots[h] == key) { hits = 1; }
	if (stats_on == 1) {
		int *sp = (int*)plan;
		output(sp[1]); // NULL deref when plan was reset
	}
	return hits;
}

func main() int {
	int queries = 0;
	int done = 0;
	while (done == 0) {
		int cmd = input32("sql");
		if (cmd == 0) { done = 1; }
		else if (cmd == 1) { insert_row(input32("sql"), input32("sql")); }
		else if (cmd == 2) { stats_on = 1; if (plan == 0) { alloc_plan(); } }
		else if (cmd == 3) { eqp_on = 1; if (plan == 0) { alloc_plan(); } }
		else if (cmd == 4) { reset_modes(); }
		else if (cmd == 5) { output(scan(input32("sql"))); queries = queries + 1; }
	}
	return queries;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(77)
		// a realistic session: a batch of inserts and queries with
		// both modes on, then the fatal reset/query pair
		w.Add("sql", 3, 2) // .eqp on, .stats on
		for k := 0; k < 12; k++ {
			w.Add("sql", 1, r.intn(500), r.intn(1000))
		}
		for k := 0; k < 6; k++ {
			w.Add("sql", 5, r.intn(500))
		}
		w.Add("sql", 4)    // reset: frees plan, stats stays on <- root cause
		w.Add("sql", 5, 9) // query: stats printer derefs NULL  <- failure
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 21)
		w := vm.NewWorkload()
		for k := 0; k < 30; k++ {
			w.Add("sql", 1, r.intn(500), r.intn(1000))
		}
		w.Add("sql", 3, 2)
		for k := 0; k < 60; k++ {
			w.Add("sql", 5, r.intn(500))
		}
		w.Add("sql", 4, 3, 2) // reset then re-enable both: safe order
		for k := 0; k < 40; k++ {
			w.Add("sql", 5, r.intn(500))
		}
		w.Add("sql", 0)
		return w
	}
	return a
}

// SQLite787fa71 is the analog of SQLite ticket 787fa71: a multi-use
// subquery implemented by co-routine leaves a shared structure
// inconsistent, tripping an internal assertion. Here a bulk-load mode
// defers index maintenance; a query issued before the bulk load is
// finalized observes index/table disagreement.
func SQLite787fa71() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "SQLite-787fa71",
		BugType:     "Inconsistent data-structure",
		Kind:        vm.FailAssert,
		Src: `
// mini-sqlite storage: table rows plus a sorted index maintained on
// insert; bulk mode batches index maintenance.
int rows[256];
int nrows = 0;
int index[256]; // row ids ordered by key
int nindex = 0;
int bulk = 0;

func index_insert(int rowid) {
	int key = rows[rowid];
	int pos = nindex;
	while (pos > 0 && rows[index[pos - 1]] > key) {
		index[pos] = index[pos - 1];
		pos = pos - 1;
	}
	index[pos] = rowid;
	nindex = nindex + 1;
}

func insert(int key) {
	if (nrows >= 256) { return; }
	rows[nrows] = key;
	// BUG: bulk mode defers index maintenance, but queries do not
	// force finalization first (the fix finalizes on query entry).
	if (bulk == 0) { index_insert(nrows); }
	nrows = nrows + 1;
}

func finalize_bulk() {
	while (nindex < nrows) { index_insert(nindex); }
	bulk = 0;
}

func lookup(int key) int {
	assert(nindex == nrows, "index out of sync with table");
	int lo = 0;
	int hi = nindex;
	while (lo < hi) {
		int mid = (lo + hi) / 2;
		if (rows[index[mid]] < key) { lo = mid + 1; }
		else { hi = mid; }
	}
	if (lo < nindex && rows[index[lo]] == key) { return index[lo]; }
	return -1;
}

func main() int {
	int done = 0;
	int found = 0;
	while (done == 0) {
		int cmd = input32("sql");
		if (cmd == 0) { done = 1; }
		else if (cmd == 1) { insert(input32("sql")); }
		else if (cmd == 2) { bulk = 1; }
		else if (cmd == 3) { finalize_bulk(); }
		else if (cmd == 4) {
			int r = lookup(input32("sql"));
			if (r >= 0) { found = found + 1; }
			output(r);
		}
	}
	return found;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		w.Add("sql",
			1, 30, 1, 10, 1, 20, // indexed inserts
			4, 20, // benign query
			2,     // bulk mode on          <- root cause setup
			1, 42, // deferred insert
			4, 42, // query before finalize <- assertion failure
		)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 31)
		w := vm.NewWorkload()
		for k := 0; k < 50; k++ {
			w.Add("sql", 1, r.intn(1000))
		}
		w.Add("sql", 2)
		for k := 0; k < 30; k++ {
			w.Add("sql", 1, r.intn(1000))
		}
		w.Add("sql", 3) // finalize before querying: safe
		for k := 0; k < 50; k++ {
			w.Add("sql", 4, r.intn(1000))
		}
		w.Add("sql", 0)
		return w
	}
	return a
}

// SQLite4e8e485 is the analog of SQLite ticket 4e8e485: a query whose
// WHERE clause contains an OR term crashes because the OR-clause
// optimizer leaves a sub-plan pointer NULL for a shape it does not
// expect (an OR arm that is a bare constant).
func SQLite4e8e485() *App {
	a := &App{
		QueryBudget: 2000,
		Name:        "SQLite-4e8e485",
		BugType:     "NULL pointer dereference",
		Kind:        vm.FailNullDeref,
		Src: `
// mini-sqlite WHERE planner: a clause is a list of terms; OR terms
// get a sub-plan object each. Term encoding on the wire:
//   1 k  -> col == k        2 k  -> col < k
//   3 k1 k2 -> col == k1 OR col == k2
//   4 k  -> col == k OR TRUE   (constant arm; the buggy shape)
int table[64];
int nrows = 0;

// planner output: up to 8 terms
int term_kind[8];
int term_a[8];
int term_b[8];
long term_plan[8]; // sub-plan per OR term
int nterms = 0;

func plan_term(int kind) {
	term_kind[nterms] = kind;
	if (kind == 1 || kind == 2) {
		term_a[nterms] = input32("sql");
		term_plan[nterms] = 0;
	}
	if (kind == 3) {
		term_a[nterms] = input32("sql");
		term_b[nterms] = input32("sql");
		int *sp = (int*)malloc(8);
		sp[0] = 2; // two arms
		term_plan[nterms] = (long)sp;
	}
	if (kind == 4) {
		term_a[nterms] = input32("sql");
		// BUG: the constant-true arm takes an early path that never
		// allocates the sub-plan (the fix allocates a degenerate
		// plan here).
		term_plan[nterms] = 0;
	}
	nterms = nterms + 1;
}

func eval_row(int v) int {
	for (int t = 0; t < nterms; t = t + 1) {
		int k = term_kind[t];
		int ok = 0;
		if (k == 1) { if (v == term_a[t]) { ok = 1; } }
		if (k == 2) { if (v < term_a[t]) { ok = 1; } }
		if (k == 3 || k == 4) {
			// OR execution consults the sub-plan arm counter.
			int *sp = (int*)term_plan[t];
			int arms = sp[0]; // NULL deref for kind 4
			if (v == term_a[t]) { ok = 1; }
			if (arms > 1 && v == term_b[t]) { ok = 1; }
			if (k == 4) { ok = 1; }
		}
		if (ok == 0) { return 0; }
	}
	return 1;
}

func run_query() int {
	int hits = 0;
	for (int i = 0; i < nrows; i = i + 1) {
		hits = hits + eval_row(table[i]);
	}
	nterms = 0;
	return hits;
}

func main() int {
	int done = 0;
	while (done == 0) {
		int cmd = input32("sql");
		if (cmd == 0) { done = 1; }
		else if (cmd == 1) { if (nrows < 64) { table[nrows] = input32("sql"); nrows = nrows + 1; } }
		else if (cmd == 5) {
			int nt = input32("sql");
			if (nt > 0 && nt <= 4) {
				for (int t = 0; t < nt; t = t + 1) { plan_term(input32("sql")); }
				output(run_query());
			}
		}
	}
	return nrows;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		w.Add("sql",
			1, 5, 1, 9, 1, 5, // rows
			5, 1, 3, 5, 9, // benign OR query: hits
			5, 1, 4, 5, // OR with constant arm -> NULL sub-plan deref
		)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 41)
		w := vm.NewWorkload()
		for k := 0; k < 40; k++ {
			w.Add("sql", 1, r.intn(100))
		}
		for k := 0; k < 40; k++ {
			switch r.intn(3) {
			case 0:
				w.Add("sql", 5, 1, 1, r.intn(100))
			case 1:
				w.Add("sql", 5, 1, 2, r.intn(100))
			default:
				w.Add("sql", 5, 1, 3, r.intn(100), r.intn(100))
			}
		}
		w.Add("sql", 0)
		return w
	}
	return a
}
