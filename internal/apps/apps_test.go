package apps

import (
	"testing"

	"execrecon/internal/vm"
)

func TestAppsCompile(t *testing.T) {
	for _, a := range append(All(), CoreutilOd(), CoreutilPr()) {
		if _, err := a.Module(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestAppsFailingWorkloads(t *testing.T) {
	for _, a := range append(All(), CoreutilOd(), CoreutilPr()) {
		t.Run(a.Name, func(t *testing.T) {
			mod, err := a.Module()
			if err != nil {
				t.Fatal(err)
			}
			res := vm.New(mod, vm.Config{Input: a.Failing(), Seed: a.Seed}).Run("main")
			if res.Failure == nil {
				t.Fatalf("failing workload did not fail (seed %d)", a.Seed)
			}
			if res.Failure.Kind != a.Kind {
				t.Fatalf("failure kind %v, want %v (%v)", res.Failure.Kind, a.Kind, res.Failure)
			}
		})
	}
}

func TestAppsBenignWorkloads(t *testing.T) {
	for _, a := range append(All(), CoreutilOd(), CoreutilPr()) {
		t.Run(a.Name, func(t *testing.T) {
			mod, err := a.Module()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				res := vm.New(mod, vm.Config{Input: a.Benign(i), Seed: int64(i) + 100}).Run("main")
				if res.Failure != nil {
					t.Fatalf("benign workload %d failed: %v", i, res.Failure)
				}
				if res.Stats.Instrs < 500 {
					t.Errorf("benign workload %d too small: %d instrs", i, res.Stats.Instrs)
				}
			}
		})
	}
}

// TestAppsFailureIsDeterministic re-runs each failing workload and
// checks the signature is stable — the reoccurrence premise of the ER
// loop.
func TestAppsFailureIsDeterministic(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			mod, err := a.Module()
			if err != nil {
				t.Fatal(err)
			}
			r1 := vm.New(mod, vm.Config{Input: a.Failing(), Seed: a.Seed}).Run("main")
			r2 := vm.New(mod, vm.Config{Input: a.Failing(), Seed: a.Seed}).Run("main")
			if r1.Failure == nil || r2.Failure == nil {
				t.Skip("needs seed tuning")
			}
			if !r1.Failure.SameSignature(r2.Failure) {
				t.Errorf("failure signature unstable: %v vs %v", r1.Failure, r2.Failure)
			}
		})
	}
}

// TestFindSeeds is a tuning helper: for each MT app, report which of
// the first seeds make the failing workload actually fail. It never
// fails the suite; run with -v to see candidates.
func TestFindSeeds(t *testing.T) {
	for _, a := range All() {
		if !a.MT {
			continue
		}
		mod, err := a.Module()
		if err != nil {
			t.Fatal(err)
		}
		var good []int64
		for s := int64(0); s < 40; s++ {
			res := vm.New(mod, vm.Config{Input: a.Failing(), Seed: s}).Run("main")
			if res.Failure != nil && res.Failure.Kind == a.Kind {
				good = append(good, s)
			}
		}
		t.Logf("%s: failing seeds in [0,40): %v (configured %d)", a.Name, good, a.Seed)
	}
}
