package apps

import "execrecon/internal/vm"

// Nasm2004_1287 is the analog of CVE-2004-1287: NASM's error
// preprocessing copies the offending source line into a fixed-size
// stack buffer without bounds checking, so a long line in an error
// path overruns the stack frame.
func Nasm2004_1287() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "Nasm-2004-1287",
		BugType:     "Stack buffer overrun",
		Kind:        vm.FailOutOfBounds,
		Src: `
// mini-nasm: assemble lines of "opcode operand" pairs into a code
// buffer; unknown opcodes route the raw line through error reporting.
int code[512];
int ncode = 0;
int errors = 0;

// opcodes: 1=mov 2=add 3=jmp 4=db
func emit(int op, int operand) {
	if (ncode < 512) {
		code[ncode] = op * 65536 + (operand & 65535);
		ncode = ncode + 1;
	}
}

func report_error(int linelen) {
	// BUG: the error formatter copies the line into a fixed stack
	// buffer with no length check (the fix truncates at 31 bytes).
	char msg[32];
	for (int i = 0; i < linelen; i = i + 1) {
		msg[i] = input8("asm");
	}
	int sum = 0;
	for (int i = 0; i < linelen; i = i + 1) { sum = sum + (int)msg[i]; }
	output(sum);
	errors = errors + 1;
}

func assemble_line() int {
	int op = input32("asm");
	int linelen = input32("asm");
	if (linelen < 0 || linelen > 256) { return -1; }
	if (op >= 1 && op <= 4) {
		int operand = input32("asm");
		emit(op, operand);
		// consume the rest of the line
		for (int i = 0; i < linelen; i = i + 1) { input8("asm"); }
		return 1;
	}
	report_error(linelen);
	return 0;
}

func main() int {
	int lines = input32("asm");
	if (lines < 0 || lines > 1024) { return -1; }
	for (int l = 0; l < lines; l = l + 1) {
		assemble_line();
	}
	output(ncode);
	return errors;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(23)
		lines := 24
		w.Add("asm", uint64(lines))
		for l := 0; l < lines-2; l++ {
			n := int(r.intn(5))
			w.Add("asm", r.intn(4)+1, uint64(n), r.intn(65536))
			for b := 0; b < n; b++ {
				w.Add("asm", r.intn(96)+32)
			}
		}
		w.Add("asm", 9, 3, 5, 6, 7) // unknown opcode, short line: benign error
		w.Add("asm", 9, 48)         // unknown opcode, 48-byte line: overrun
		for i := 0; i < 48; i++ {
			w.Add("asm", uint64(65+i%26))
		}
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 51)
		w := vm.NewWorkload()
		lines := 120
		w.Add("asm", uint64(lines))
		for l := 0; l < lines; l++ {
			if r.intn(10) == 0 {
				n := int(r.intn(28))
				w.Add("asm", 99, uint64(n))
				for b := 0; b < n; b++ {
					w.Add("asm", r.intn(96)+32)
				}
			} else {
				n := int(r.intn(6))
				w.Add("asm", r.intn(4)+1, uint64(n), r.intn(65536))
				for b := 0; b < n; b++ {
					w.Add("asm", r.intn(96)+32)
				}
			}
		}
		return w
	}
	return a
}

// Objdump2018_6323 is the analog of CVE-2018-6323: an unsigned
// integer overflow in BFD's section-table size computation makes
// objdump allocate an undersized table that the header loop then
// overruns.
func Objdump2018_6323() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "Objdump-2018-6323",
		BugType:     "Integer overflow",
		Kind:        vm.FailOutOfBounds,
		Src: `
// mini-objdump: parse an object header (nsects, then per-section
// size), load section bytes, then disassemble via a handler table.
int sections_seen = 0;

func dis_word(long w) long { return w * 2 + 1; }
func dis_byte(long w) long { return w + 100; }

func disassemble(char *buf, int n) int {
	long hw = fnptr("dis_word");
	long hb = fnptr("dis_byte");
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		int b = (int)(uchar)buf[i];
		long r = 0;
		if (b >= 128) { r = icall1(hw, (long)b); }
		else { r = icall1(hb, (long)b); }
		acc = acc + (int)r;
	}
	return acc;
}

func load_object() int {
	int nsects = input32("obj");
	if (nsects <= 0) { return -1; }
	// BUG: the section table is sized with a 32-bit multiply that
	// wraps for huge nsects (the fix checks for overflow).
	uint tabbytes = (uint)nsects * (uint)8;
	char *tab = malloc((long)tabbytes);
	for (int s = 0; s < nsects; s = s + 1) {
		int size = input32("obj");
		if (size < 0 || size > 64) { return -1; }
		int *entry = (int*)(tab + s * 8);
		entry[0] = s;
		entry[1] = size;
		char *data = malloc(size);
		for (int b = 0; b < size; b = b + 1) { data[b] = input8("obj"); }
		output(disassemble(data, size));
		free(data);
		sections_seen = sections_seen + 1;
	}
	free(tab);
	return nsects;
}

func main() int {
	int objects = input32("obj");
	if (objects < 0 || objects > 64) { return -1; }
	for (int o = 0; o < objects; o = o + 1) {
		load_object();
	}
	return sections_seen;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(29)
		w.Add("obj", 5) // five objects
		for o := 0; o < 4; o++ {
			ns := int(r.intn(3)) + 1
			w.Add("obj", uint64(ns))
			for sc := 0; sc < ns; sc++ {
				size := int(r.intn(12)) + 1
				w.Add("obj", uint64(size))
				for b := 0; b < size; b++ {
					w.Add("obj", r.intn(256))
				}
			}
		}
		// malicious: nsects = 0x20000000 -> 0x20000000*8 wraps to 0
		w.Add("obj", 0x20000000, 4, 1, 2, 3, 4)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 61)
		w := vm.NewWorkload()
		objects := 12
		w.Add("obj", uint64(objects))
		for o := 0; o < objects; o++ {
			ns := int(r.intn(5)) + 1
			w.Add("obj", uint64(ns))
			for s := 0; s < ns; s++ {
				size := int(r.intn(48)) + 1
				w.Add("obj", uint64(size))
				for b := 0; b < size; b++ {
					w.Add("obj", r.intn(256))
				}
			}
		}
		return w
	}
	return a
}

// Matrixssl2014_1569 is the analog of CVE-2014-1569: x.509
// certificate verification copies a DER element into a fixed stack
// buffer trusting the attacker-controlled length field.
func Matrixssl2014_1569() *App {
	a := &App{
		QueryBudget: 10000,
		Name:        "Matrixssl-2014-1569",
		BugType:     "Stack buffer overrun",
		Kind:        vm.FailOutOfBounds,
		Src: `
// mini-matrixssl: each certificate is read into a buffer and parsed
// DER-style with a cursor: version TLV, subject TLV, OID TLV. Length
// fields come from the wire, so the cursor is attacker-controlled.
int certs_ok = 0;

func parse_cert() int {
	int total = input32("tls");
	if (total < 8 || total > 512) { return -1; }
	char *der = malloc(total);
	for (int i = 0; i < total; i = i + 1) { der[i] = input8("tls"); }
	int pos = 0;
	// version TLV
	int vtag = (int)der[pos];
	int vlen = (int)der[pos + 1];
	pos = pos + 2;
	if (vtag != 2 || vlen != 1) { free(der); return -1; }
	int version = (int)der[pos];
	pos = pos + 1;
	if (version < 1 || version > 3) { free(der); return -1; }
	// subject TLV: length-checked against the buffer
	int stag = (int)der[pos];
	int slen = (int)der[pos + 1];
	pos = pos + 2;
	if (stag != 12 || slen < 0 || pos + slen > total) { free(der); return -1; }
	int ssum = 0;
	for (int i = 0; i < slen; i = i + 1) { ssum = ssum + (int)der[pos + i]; }
	pos = pos + slen;
	// OID TLV
	if (pos + 2 > total) { free(der); return -1; }
	int otag = (int)der[pos];
	int olen = (int)der[pos + 1];
	pos = pos + 2;
	if (otag != 6 || pos + olen > total) { free(der); return -1; }
	// BUG: olen is checked against the buffer but not against the
	// 16-byte stack destination (the fix bounds olen by
	// sizeof(oid)).
	char oid[16];
	for (int i = 0; i < olen; i = i + 1) {
		oid[i] = der[pos + i];
	}
	int osum = 0;
	for (int i = 0; i < olen; i = i + 1) { osum = osum + (int)oid[i]; }
	free(der);
	output(ssum + osum);
	certs_ok = certs_ok + 1;
	return 1;
}

func main() int {
	int chain = input32("tls");
	if (chain < 0 || chain > 32) { return -1; }
	for (int c = 0; c < chain; c = c + 1) {
		if (parse_cert() < 0) { output(0 - 1); }
	}
	return certs_ok;
}`,
	}
	// derCert serializes one certificate in the wire format.
	derCert := func(w *vm.Workload, version int, subject []uint64, oid []uint64) {
		total := 3 + 2 + len(subject) + 2 + len(oid)
		w.Add("tls", uint64(total))
		w.Add("tls", 2, 1, uint64(version))
		w.Add("tls", 12, uint64(len(subject)))
		w.Add("tls", subject...)
		w.Add("tls", 6, uint64(len(oid)))
		w.Add("tls", oid...)
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(17)
		w.Add("tls", 4) // four certs in the chain
		for c := 0; c < 3; c++ {
			subject := make([]uint64, int(r.intn(12))+4)
			for i := range subject {
				subject[i] = r.intn(96) + 32
			}
			derCert(w, 3, subject, []uint64{1, 2, 3})
		}
		// malicious cert: oid length 24 overruns the 16-byte buffer
		oid := make([]uint64, 24)
		for i := range oid {
			oid[i] = uint64(i + 1)
		}
		derCert(w, 3, []uint64{50, 51}, oid)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 71)
		w := vm.NewWorkload()
		chain := 16
		w.Add("tls", uint64(chain))
		for c := 0; c < chain; c++ {
			subject := make([]uint64, int(r.intn(64))+1)
			for b := range subject {
				subject[b] = r.intn(256)
			}
			oid := make([]uint64, int(r.intn(12))+1)
			for b := range oid {
				oid[b] = r.intn(128)
			}
			derCert(w, int(r.intn(3))+1, subject, oid)
		}
		return w
	}
	return a
}

// Libpng2004_0597 is the analog of CVE-2004-0597: libpng's row
// decoder trusts a length field in compressed image data, overflowing
// the row buffer allocated from the header's width.
func Libpng2004_0597() *App {
	a := &App{
		QueryBudget: 10000,
		Name:        "Libpng-2004-0597",
		BugType:     "Buffer overflow",
		Kind:        vm.FailOutOfBounds,
		Src: `
// mini-libpng: images are width/height plus per-row RLE chunks
// (runlen, value) that must exactly fill each row.
int images_ok = 0;

func decode_row(char *row, int width) int {
	int filled = 0;
	while (filled < width) {
		int run = input32("png");
		int value = input32("png");
		if (run <= 0) { return -1; }
		// BUG: run is not clamped to the row remainder (the fix
		// rejects run > width - filled).
		for (int i = 0; i < run; i = i + 1) {
			row[filled + i] = (char)value;
		}
		filled = filled + run;
	}
	return filled;
}

func decode_image() int {
	int width = input32("png");
	int height = input32("png");
	if (width <= 0 || width > 512 || height <= 0 || height > 64) { return -1; }
	char *row = malloc(width);
	int acc = 0;
	for (int y = 0; y < height; y = y + 1) {
		if (decode_row(row, width) < 0) { free(row); return -1; }
		for (int x = 0; x < width; x = x + 1) { acc = acc + (int)row[x]; }
	}
	free(row);
	images_ok = images_ok + 1;
	return acc;
}

func main() int {
	int files = input32("png");
	if (files < 0 || files > 1200) { return -1; }
	for (int f = 0; f < files; f = f + 1) {
		output(decode_image());
	}
	return images_ok;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(31)
		w.Add("png", 7)
		for f := 0; f < 6; f++ {
			width := int(r.intn(10)) + 3
			height := int(r.intn(3)) + 1
			w.Add("png", uint64(width), uint64(height))
			for y := 0; y < height; y++ {
				left := width
				for left > 0 {
					run := int(r.intn(uint64min(5, left))) + 1
					if run > left {
						run = left
					}
					w.Add("png", uint64(run), r.intn(256))
					left -= run
				}
			}
		}
		// malicious 8x1: run 20 overruns the 8-byte row
		w.Add("png", 8, 1, 3, 1, 20, 7)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 81)
		w := vm.NewWorkload()
		files := 40 // the paper's benchmark reads ~1000 small files
		w.Add("png", uint64(files))
		for f := 0; f < files; f++ {
			width := int(r.intn(24)) + 4
			height := int(r.intn(6)) + 1
			w.Add("png", uint64(width), uint64(height))
			for y := 0; y < height; y++ {
				left := width
				for left > 0 {
					run := int(r.intn(uint64min(8, left))) + 1
					if run > left {
						run = left
					}
					w.Add("png", uint64(run), r.intn(256))
					left -= run
				}
			}
		}
		return w
	}
	return a
}

func uint64min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Bash108885 is the analog of GNU bash support request 108885: a
// 4-byte script triggers a NULL pointer dereference and segfault in
// the parser/executor hand-off (a function definition with an empty
// body produces a command node the executor does not expect).
func Bash108885() *App {
	a := &App{
		QueryBudget: 5000,
		Name:        "Bash-108885",
		BugType:     "NULL pointer dereference",
		Kind:        vm.FailNullDeref,
		Src: `
// mini-bash: read a script into a buffer, tokenize it into words and
// operators, build heap command records [kind, payload, body], and
// execute them.
int executed = 0;
char script_buf[64];
int script_len = 0;
int script_pos = 0;

// token kinds: 0 eof, 1 word, 2 '(', 3 ')', 4 ';', 5 newline
func next_token() int {
	if (script_pos >= script_len) { return 0; }
	int c = (int)script_buf[script_pos];
	script_pos = script_pos + 1;
	if (c == '(') { return 2; }
	if (c == ')') { return 3; }
	if (c == ';') { return 4; }
	if (c == 10) { return 5; }
	if (c == 0) { return 0; }
	return 1;
}

func make_cmd(long kind, long payload) long {
	long *cmd = (long*)malloc(24);
	cmd[0] = kind;
	cmd[1] = payload;
	cmd[2] = 0;
	return (long)cmd;
}

// parse one command; returns a command record or 0
func parse_cmd() long {
	int t = next_token();
	if (t == 0) { return 0; }
	if (t == 1) {
		int t2 = next_token();
		if (t2 == 2) {
			int t3 = next_token();
			if (t3 == 3) {
				// "name()" — function definition. BUG: an empty
				// function body yields a NULL body pointer that the
				// definition node stores and execution dereferences
				// (the fix inserts an empty-command node).
				long body = 0;
				if (script_len - script_pos > 1) { body = parse_cmd(); }
				long def = make_cmd(7, 0);
				long *d = (long*)def;
				d[2] = body;
				return def;
			}
			return 0;
		}
		// simple command: word followed by a terminator
		return make_cmd(1, (long)t2);
	}
	if (t == 5 || t == 4) { return parse_cmd(); }
	return 0;
}

func execute(long cmd) int {
	if (cmd == 0) { return 0; }
	long *c = (long*)cmd;
	long kind = c[0];
	if (kind == 1) { executed = executed + 1; return 1; }
	if (kind == 7) {
		// executing a function definition touches its body record
		long *body = (long*)c[2];
		long bk = body[0]; // NULL deref for an empty body
		executed = executed + 1;
		return (int)bk;
	}
	return 0;
}

func main() int {
	int scripts = input32("script");
	if (scripts < 0 || scripts > 256) { return -1; }
	for (int s = 0; s < scripts; s = s + 1) {
		int len = input32("script");
		if (len < 0 || len > 64) { return -1; }
		for (int i = 0; i < len; i = i + 1) { script_buf[i] = input8("script"); }
		script_len = len;
		script_pos = 0;
		long cmd = parse_cmd();
		output(execute(cmd));
	}
	return executed;
}`,
	}
	a.Failing = func() *vm.Workload {
		w := vm.NewWorkload()
		r := newRand(37)
		w.Add("script", 12)
		for sidx := 0; sidx < 11; sidx++ {
			w.Add("script", 4, r.intn(26)+'a', r.intn(26)+'a', ';', 10)
		}
		// the 4-byte killer: "x()\n" -> function def with empty body
		w.Add("script", 4, 'x', '(', ')', 10)
		return w
	}
	a.Benign = func(i int) *vm.Workload {
		r := newRand(int64(i) + 91)
		w := vm.NewWorkload()
		scripts := 80 // quicksort-in-bash analog: many tiny commands
		w.Add("script", uint64(scripts))
		for s := 0; s < scripts; s++ {
			w.Add("script", 4, r.intn(26)+'a', r.intn(26)+'a', ';', 10)
		}
		return w
	}
	return a
}
