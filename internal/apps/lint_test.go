package apps_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"testing"

	"execrecon/internal/absint"
	"execrecon/internal/apps"
	"execrecon/internal/dataflow"
	"execrecon/internal/minc"
)

// TestCorpusLintClean locks in a lint-clean evaluation corpus: every
// shipped app (the 13 Table 1 programs plus the §5.4 coreutils
// analogs) must produce zero findings under the full IR lint suite.
// A new finding here means either a genuine defect slipped into an
// app or a lint rule regressed into flagging idiomatic minc.
func TestCorpusLintClean(t *testing.T) {
	corpus := append(apps.All(), apps.CoreutilOd(), apps.CoreutilPr())
	for _, a := range corpus {
		mod, err := a.Module()
		if err != nil {
			t.Errorf("%s: compile: %v", a.Name, err)
			continue
		}
		for _, f := range dataflow.Lint(mod) {
			t.Errorf("%s: %s", a.Name, f)
		}
		// The provable (abstract-interpretation) rules may surface
		// advisory always-branch notes on guard idioms, but an
		// error-level proof — oob or overflow on every input — would
		// mean a shipped app is statically broken.
		for _, f := range absint.Lint(mod, absint.Config{}) {
			if dataflow.ErrorLevel(f.Rule) {
				t.Errorf("%s: %s", a.Name, f)
			}
		}
	}
}

// TestExamplesLintClean extracts the embedded minc source of every
// example program (the `const src` literal of examples/*/main.go) and
// requires a clean compile with zero advisory lint findings, so the
// code users copy first stays exemplary.
func TestExamplesLintClean(t *testing.T) {
	paths, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example programs found")
	}
	for _, p := range paths {
		src, ok := exampleSource(t, p)
		if !ok {
			t.Errorf("%s: no `src` string constant found", p)
			continue
		}
		_, findings, err := minc.CompileWithLint(p, src)
		if err != nil {
			t.Errorf("%s: compile: %v", p, err)
			continue
		}
		for _, f := range findings {
			t.Errorf("%s: %s", p, f)
		}
	}
}

// exampleSource parses one example's Go file and returns the value of
// its `src` string constant.
func exampleSource(t *testing.T, path string) (string, bool) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	var out string
	var found bool
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range vs.Names {
			if name.Name != "src" || i >= len(vs.Values) {
				continue
			}
			lit, ok := vs.Values[i].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				t.Fatalf("%s: unquote src: %v", path, err)
			}
			out, found = s, true
		}
		return true
	})
	return out, found
}
