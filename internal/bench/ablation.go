package bench

import (
	"fmt"
	"io"

	"execrecon/internal/apps"
	"execrecon/internal/keyselect"
	"execrecon/internal/symex"
)

// AblationRow compares key data value selection with and without the
// §3.3.2 recording-cost minimization, on the first stall of each
// data-requiring bug: how many bytes per occurrence would each
// strategy record?
type AblationRow struct {
	App            string
	Stalled        bool
	BottleneckSize int
	MinimizedCost  int64
	MinimizedSites int
	RawCost        int64
	RawSites       int
}

// RunAblation measures the value of recording-set minimization.
func RunAblation() ([]AblationRow, error) {
	var rows []AblationRow
	for _, a := range apps.All() {
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		trace, failRes, err := record(mod, a.Failing(), a.Seed)
		if err != nil {
			return nil, err
		}
		sres := symex.New(mod, trace, failRes.Failure,
			symex.Options{QueryBudget: a.QueryBudget}).Run("main")
		row := AblationRow{App: a.Name, Stalled: sres.Status == symex.StatusStalled}
		if row.Stalled {
			min, err := keyselect.Select(sres)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			raw, err := keyselect.SelectWith(sres, keyselect.Options{NoMinimize: true})
			if err != nil {
				return nil, fmt.Errorf("%s (raw): %w", a.Name, err)
			}
			row.BottleneckSize = len(min.Bottleneck)
			row.MinimizedCost = min.TotalCostBytes
			row.MinimizedSites = len(min.Sites)
			row.RawCost = raw.TotalCostBytes
			row.RawSites = len(raw.Sites)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAblation prints the comparison.
func RenderAblation(w io.Writer, rows []AblationRow) {
	header := []string{"Application", "Bottleneck", "Minimized B/occur (sites)", "Raw B/occur (sites)", "Saving"}
	var out [][]string
	for _, r := range rows {
		if !r.Stalled {
			out = append(out, []string{r.App, "-", "no stall at first occurrence", "-", "-"})
			continue
		}
		saving := "0%"
		if r.RawCost > 0 {
			saving = fmt.Sprintf("%.0f%%", 100*(1-float64(r.MinimizedCost)/float64(r.RawCost)))
		}
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.BottleneckSize),
			fmt.Sprintf("%d (%d)", r.MinimizedCost, r.MinimizedSites),
			fmt.Sprintf("%d (%d)", r.RawCost, r.RawSites),
			saving,
		})
	}
	table(w, header, out)
	fmt.Fprintln(w, "\n(§3.3.2: recording the raw bottleneck set \"has high overhead\"; the")
	fmt.Fprintln(w, " cost-reduction DFS records a cheaper set from which it can be deduced)")
}
