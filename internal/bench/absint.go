package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/symex"
)

// AbsintOptions configures the abstract-interpretation ablation.
type AbsintOptions struct {
	// QueryBudget is the per-query solver budget (0 = bench default).
	QueryBudget int64
	// Only restricts the run to the named apps (nil = all).
	Only []string
	// Widen is the fixpoint widening threshold (0 = absint default).
	Widen int
	// Log receives progress lines.
	Log io.Writer
}

// AbsintRow compares one app's full ER reproduction with the abstract
// pre-pass off versus on: same fresh-per-query solving, same budgets,
// so any delta in CNF size or solver time is attributable to the
// interval/known-bits analysis alone.
type AbsintRow struct {
	App string

	// Baseline reproduction (absint off).
	OffSolverTime time.Duration
	OffQueries    int64
	OffVars       int64
	OffClauses    int64
	OffReproduced bool
	OffVerified   bool

	// Absint reproduction: pre-discharge + width-narrowed blasting +
	// post-reproduction invariant mining.
	OnSolverTime time.Duration
	OnQueries    int64
	OnVars       int64
	OnClauses    int64
	OnReproduced bool
	OnVerified   bool

	// Discharged is the number of queries the abstract pass answered
	// without touching SAT; Bits the constant bits it pinned in the
	// blasted queries; Mined/Invariants the static invariant candidates
	// and the subset that held on the reproduced input.
	Discharged int64
	Bits       int64
	Mined      int
	Invariants int

	// VerdictMatch: both modes agree on Reproduced and Verified — the
	// soundness gate of the ablation.
	VerdictMatch bool
	FailReason   string
}

// DischargePct is the share of the absint run's queries answered by
// the abstract domains alone.
func (r AbsintRow) DischargePct() float64 {
	if r.OnQueries == 0 {
		return 0
	}
	return 100 * float64(r.Discharged) / float64(r.OnQueries)
}

// ClauseReductionPct is the relative shrink in total CNF clauses from
// discharge (queries never blasted) plus bit-pinning (unit clauses
// replacing variable cones). Negative means the absint run's CNF grew:
// pinned bits steer CDCL to different (equally valid) models, which
// can change later iterations' query stream.
func (r AbsintRow) ClauseReductionPct() float64 {
	if r.OffClauses == 0 {
		return 0
	}
	return 100 * (1 - float64(r.OnClauses)/float64(r.OffClauses))
}

// Speedup is the off/on cumulative solver-time ratio.
func (r AbsintRow) Speedup() float64 {
	if r.OnSolverTime <= 0 {
		return 0
	}
	return float64(r.OffSolverTime) / float64(r.OnSolverTime)
}

// AbsintResult aggregates the ablation.
type AbsintResult struct {
	Rows []AbsintRow
	// TotalOff/TotalOn sum cumulative solver time across apps.
	TotalOff time.Duration
	TotalOn  time.Duration
	// TotalOffVars/Clauses and TotalOnVars/Clauses sum the blasted CNF
	// sizes; their ratio is the structural reduction bought by the
	// abstract pass.
	TotalOffVars    int64
	TotalOffClauses int64
	TotalOnVars     int64
	TotalOnClauses  int64
	// TotalQueries/TotalDischarged/TotalBits aggregate the absint runs'
	// query counts, abstract discharges, and pinned bits;
	// TotalMined/TotalInvariants the invariant mining.
	TotalQueries    int64
	TotalDischarged int64
	TotalBits       int64
	TotalMined      int
	TotalInvariants int
	// AllVerdictsMatch reports whether every app reproduced (and
	// verified) identically with the pass off and on.
	AllVerdictsMatch bool
}

// Speedup is the aggregate off/on solver-time ratio.
func (r *AbsintResult) Speedup() float64 {
	if r.TotalOn <= 0 {
		return 0
	}
	return float64(r.TotalOff) / float64(r.TotalOn)
}

// DischargePct is the aggregate share of queries answered abstractly.
func (r *AbsintResult) DischargePct() float64 {
	if r.TotalQueries == 0 {
		return 0
	}
	return 100 * float64(r.TotalDischarged) / float64(r.TotalQueries)
}

// ClauseReductionPct is the aggregate CNF clause shrink.
func (r *AbsintResult) ClauseReductionPct() float64 {
	if r.TotalOffClauses == 0 {
		return 0
	}
	return 100 * (1 - float64(r.TotalOnClauses)/float64(r.TotalOffClauses))
}

// absintRun drives one full ER reproduction with the abstract pass on
// or off, fresh-per-query solving throughout. It mirrors
// core.Reproduce but keeps the Pipeline so the report's CNF and
// discharge totals survive.
func absintRun(a *apps.App, budget int64, on bool, widen int, log io.Writer) (*core.Report, error) {
	mod, err := a.Module()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Module:      mod,
		Symex:       symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		Absint:      on,
		AbsintWiden: widen,
		Log:         log,
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed}}
	for !p.Done() {
		occ, err := src.Next(p.Request())
		if err != nil {
			return p.Report(), err
		}
		if _, err := p.Feed(occ); err != nil {
			return p.Report(), err
		}
	}
	return p.Report(), p.Err()
}

// RunAbsint reproduces each Table 1 bug twice — abstract pass off,
// then on — and compares verdicts, CNF sizes, abstract discharge
// rates, and cumulative solver time. Both halves use the generous
// bench budget (every query runs to a real verdict) so the measured
// deltas are solver work, not give-up speed.
func RunAbsint(opts AbsintOptions) (*AbsintResult, error) {
	res := &AbsintResult{AllVerdictsMatch: true}
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		budget := opts.QueryBudget
		if budget == 0 {
			budget = DefaultQueryBudget
		}
		row := AbsintRow{App: a.Name}

		off, err := absintRun(a, budget, false, opts.Widen, opts.Log)
		if err != nil && off == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllVerdictsMatch = false
			continue
		}
		row.OffSolverTime = off.TotalSolverTime
		row.OffVars = off.TotalSATVars
		row.OffClauses = off.TotalSATClauses
		row.OffReproduced = off.Reproduced
		row.OffVerified = off.Verified
		for _, it := range off.Iterations {
			row.OffQueries += it.Queries
		}

		on, err := absintRun(a, budget, true, opts.Widen, opts.Log)
		if err != nil && on == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllVerdictsMatch = false
			continue
		}
		row.OnSolverTime = on.TotalSolverTime
		row.OnVars = on.TotalSATVars
		row.OnClauses = on.TotalSATClauses
		row.OnReproduced = on.Reproduced
		row.OnVerified = on.Verified
		for _, it := range on.Iterations {
			row.OnQueries += it.Queries
		}
		row.Discharged = on.AbsintDischarged
		row.Bits = on.AbsintBits
		row.Mined = on.AbsintMined
		row.Invariants = len(on.AbsintInvariants)

		row.VerdictMatch = row.OffReproduced == row.OnReproduced &&
			row.OffVerified == row.OnVerified
		if !row.VerdictMatch {
			res.AllVerdictsMatch = false
		}
		res.TotalOff += row.OffSolverTime
		res.TotalOn += row.OnSolverTime
		res.TotalOffVars += row.OffVars
		res.TotalOffClauses += row.OffClauses
		res.TotalOnVars += row.OnVars
		res.TotalOnClauses += row.OnClauses
		res.TotalQueries += row.OnQueries
		res.TotalDischarged += row.Discharged
		res.TotalBits += row.Bits
		res.TotalMined += row.Mined
		res.TotalInvariants += row.Invariants
		res.Rows = append(res.Rows, row)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "absint: %s off=%v on=%v discharge=%d/%d (%.0f%%) clauses=%d->%d (%+.0f%%) bits=%d inv=%d/%d match=%v\n",
				a.Name, row.OffSolverTime.Round(time.Microsecond),
				row.OnSolverTime.Round(time.Microsecond),
				row.Discharged, row.OnQueries, row.DischargePct(),
				row.OffClauses, row.OnClauses, -row.ClauseReductionPct(),
				row.Bits, row.Invariants, row.Mined, row.VerdictMatch)
		}
	}
	return res, nil
}

// RenderAbsint prints the ablation in a table plus the aggregate
// verdict line.
func RenderAbsint(w io.Writer, res *AbsintResult) {
	header := []string{"Application-BugID", "Off Solver", "On Solver", "Speedup",
		"Discharged", "Clauses off/on", "Bits", "Inv", "Verdict"}
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.App,
			r.OffSolverTime.Round(time.Microsecond).String(),
			r.OnSolverTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup()),
			fmt.Sprintf("%d/%d (%.0f%%)", r.Discharged, r.OnQueries, r.DischargePct()),
			fmt.Sprintf("%d/%d (%+.0f%%)", r.OffClauses, r.OnClauses, -r.ClauseReductionPct()),
			fmt.Sprintf("%d", r.Bits),
			fmt.Sprintf("%d/%d", r.Invariants, r.Mined),
			absintVerdict(r),
		})
	}
	table(w, header, rows)
	fmt.Fprintf(w, "\ncumulative solver time: off %v vs on %v (%.2fx); queries discharged abstractly: %d/%d (%.1f%%); CNF %d vars %d clauses -> %d vars %d clauses (-%.1f%% clauses); bits pinned: %d; static invariants verified: %d/%d mined; verdicts identical: %v\n",
		res.TotalOff.Round(time.Microsecond), res.TotalOn.Round(time.Microsecond),
		res.Speedup(), res.TotalDischarged, res.TotalQueries, res.DischargePct(),
		res.TotalOffVars, res.TotalOffClauses, res.TotalOnVars, res.TotalOnClauses,
		res.ClauseReductionPct(), res.TotalBits, res.TotalInvariants, res.TotalMined,
		res.AllVerdictsMatch)
}

func absintVerdict(r AbsintRow) string {
	switch {
	case r.FailReason != "":
		return "ERROR: " + r.FailReason
	case !r.VerdictMatch:
		return "MISMATCH"
	}
	return "match"
}
