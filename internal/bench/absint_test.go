package bench_test

import (
	"strings"
	"testing"

	"execrecon/internal/bench"
)

// TestAbsintAblation runs the abstract-interpretation ablation on an
// app subset: verdicts must be identical with the pass off and on,
// the abstract pass must discharge at least one query or pin at least
// one bit somewhere, and the renderer must surface the headline line.
func TestAbsintAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("absint ablation runs full ER pipelines; skipped in -short")
	}
	only := []string{"PHP-2012-2386", "SQLite-787fa71", "Nasm-2004-1287"}
	r, err := bench.RunAbsint(bench.AbsintOptions{Only: only})
	if err != nil {
		t.Fatalf("absint: %v", err)
	}
	if len(r.Rows) != len(only) {
		t.Fatalf("rows: %d, want %d", len(r.Rows), len(only))
	}
	if !r.AllVerdictsMatch {
		for _, row := range r.Rows {
			t.Logf("%s: off=%v/%v on=%v/%v (%s)", row.App,
				row.OffReproduced, row.OffVerified,
				row.OnReproduced, row.OnVerified, row.FailReason)
		}
		t.Fatal("verdict parity violated with the abstract pass on")
	}
	for _, row := range r.Rows {
		if !row.OnReproduced || !row.OnVerified {
			t.Errorf("%s: absint run reproduced=%v verified=%v (%s)",
				row.App, row.OnReproduced, row.OnVerified, row.FailReason)
		}
		if row.OffVars == 0 || row.OffClauses == 0 {
			t.Errorf("%s: baseline recorded no CNF totals (vars=%d clauses=%d)",
				row.App, row.OffVars, row.OffClauses)
		}
	}
	// Per-app CNF growth is possible (pinned bits steer CDCL to
	// different models, changing later iterations' query stream), but
	// the aggregate over this subset must shrink or the pass is not
	// earning its keep.
	if r.ClauseReductionPct() <= 0 {
		t.Errorf("aggregate CNF did not shrink: %d -> %d clauses",
			r.TotalOffClauses, r.TotalOnClauses)
	}
	if r.TotalDischarged == 0 && r.TotalBits == 0 {
		t.Error("abstract pass neither discharged a query nor pinned a bit on any app")
	}
	if r.TotalQueries == 0 {
		t.Error("no queries recorded in the absint runs")
	}

	var sb strings.Builder
	bench.RenderAbsint(&sb, r)
	out := sb.String()
	for _, want := range []string{"Application-BugID", "Discharged", "verdicts identical: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
