// Package bench contains the experiment drivers that regenerate the
// paper's evaluation artifacts (per-experiment index in DESIGN.md):
// Table 1 (reproduction of the 13 bugs), Fig. 5 (symbolic-execution
// progress with and without recorded data values), Fig. 6 (runtime
// overhead of ER vs record/replay), the §5.2 random-recording and
// REPT comparisons, the §5.3 offline-cost measurements, and the §5.4
// MIMIC case study. Each driver returns structured results and can
// render the same rows/series the paper reports.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// table renders rows with aligned columns.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

// DefaultQueryBudget is the per-query solver budget used for the
// Table 1 runs — the step-metered analog of the paper's 30-second
// solver timeout (§4).
const DefaultQueryBudget = 200_000
