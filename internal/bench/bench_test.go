package bench_test

import (
	"strings"
	"testing"

	"execrecon/internal/bench"
)

// TestTable1ShapeHolds regenerates Table 1 and checks the paper's
// headline claims: every bug reproduces with a verified test case;
// most bugs need more than one occurrence (11/13 in the paper); a few
// reproduce immediately (2/13 in the paper).
func TestTable1ShapeHolds(t *testing.T) {
	rows := bench.RunTable1(bench.Table1Options{})
	if len(rows) != 13 {
		t.Fatalf("rows: %d", len(rows))
	}
	multi, single := 0, 0
	for _, r := range rows {
		if !r.Reproduced || !r.Verified {
			t.Errorf("%s: not reproduced/verified: %s", r.App, r.FailReason)
			continue
		}
		if r.Occur > 1 {
			multi++
		} else {
			single++
		}
		if r.Instrs == 0 || r.SymbexTime == 0 {
			t.Errorf("%s: empty metrics %+v", r.App, r)
		}
	}
	if multi < 9 {
		t.Errorf("only %d bugs needed data recording; the iterative loop is not exercised", multi)
	}
	if single < 1 {
		t.Errorf("no single-occurrence reproduction; expected a couple (paper: 2/13)")
	}
	var sb strings.Builder
	bench.RenderTable1(&sb, rows)
	if !strings.Contains(sb.String(), "PHP-2012-2386") {
		t.Error("render missing rows")
	}
	bench.RenderOffline(&sb, rows)
}

func TestFig5Shape(t *testing.T) {
	r, err := bench.RunFig5("")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series: %d", len(r.Series))
	}
	// Strict, substantial speedups per recording generation.
	if !(r.Series[0].Total > r.Series[1].Total) {
		t.Errorf("iteration-1 data did not speed up symex: %v vs %v",
			r.Series[0].Total, r.Series[1].Total)
	}
	if !(r.Series[1].Total > r.Series[2].Total) {
		t.Errorf("iteration-2 data did not speed up symex: %v vs %v",
			r.Series[1].Total, r.Series[2].Total)
	}
	if r.Series[0].Total < r.Series[2].Total*5 {
		t.Errorf("speedup not substantial: %v -> %v", r.Series[0].Total, r.Series[2].Total)
	}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Errorf("no progress points for %q", s.Label)
		}
	}
	var sb strings.Builder
	bench.RenderFig5(&sb, r)
	if !strings.Contains(sb.String(), "series,instructions,milliseconds") {
		t.Error("render missing CSV header")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := bench.RunFig6(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows: %d", len(rows))
	}
	var erSum, rrSum float64
	for _, r := range rows {
		if r.ER.MeanPct < 0 || r.ER.MeanPct > 10 {
			t.Errorf("%s: ER overhead %.2f%% outside production band", r.App, r.ER.MeanPct)
		}
		if r.RR.MeanPct < r.ER.MeanPct {
			t.Errorf("%s: rr (%.1f%%) below ER (%.2f%%)", r.App, r.RR.MeanPct, r.ER.MeanPct)
		}
		erSum += r.ER.MeanPct
		rrSum += r.RR.MeanPct
	}
	if avg := erSum / float64(len(rows)); avg > 2 {
		t.Errorf("ER average overhead %.2f%% too high (paper: 0.3%%)", avg)
	}
	if avg := rrSum / float64(len(rows)); avg < 10 {
		t.Errorf("rr average overhead %.1f%% too low (paper: 48%%)", avg)
	}
	var sb strings.Builder
	bench.RenderFig6(&sb, rows)
}

func TestReptDegradation(t *testing.T) {
	rows, err := bench.RunReptAccuracy([]int{50, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[0].CorrectPct <= rows[1].CorrectPct {
		t.Errorf("no degradation: %.1f%% vs %.1f%%", rows[0].CorrectPct, rows[1].CorrectPct)
	}
	if rows[1].IncorrectPct < 5 {
		t.Errorf("long trace should silently mis-recover values: %.1f%%", rows[1].IncorrectPct)
	}
	var sb strings.Builder
	bench.RenderRept(&sb, rows)
}

func TestMimicLocalizesRootCause(t *testing.T) {
	rows, err := bench.RunMimic()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.RootCauseRank != 1 {
			t.Errorf("%s: root cause ranked #%d, want #1", r.App, r.RootCauseRank)
		}
		if len(r.ViolationsER) == 0 {
			t.Errorf("%s: no violations from reconstructed run", r.App)
		}
	}
	var sb strings.Builder
	bench.RenderMimic(&sb, rows)
}

func TestAccuracyClaims(t *testing.T) {
	rows, err := bench.RunAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	differ := 0
	for _, r := range rows {
		if !r.SameFailure {
			t.Errorf("%s: generated input fails differently", r.App)
		}
		if !r.SameBranchHist {
			t.Errorf("%s: control flow differs", r.App)
		}
		if r.InputsDiffer {
			differ++
		}
	}
	if differ == 0 {
		t.Error("expected at least some generated inputs to differ from originals (§5.2)")
	}
}

func TestAblationMinimizationHelps(t *testing.T) {
	rows, err := bench.RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for _, r := range rows {
		if !r.Stalled {
			continue
		}
		if r.MinimizedCost > r.RawCost {
			t.Errorf("%s: minimization increased cost (%d > %d)", r.App, r.MinimizedCost, r.RawCost)
		}
		if r.MinimizedCost < r.RawCost {
			saved++
		}
	}
	if saved < 2 {
		t.Errorf("minimization saved bytes on only %d apps", saved)
	}
	var sb strings.Builder
	bench.RenderAblation(&sb, rows)
}

func TestMTReconstruction(t *testing.T) {
	rows, err := bench.RunMT()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if !r.Reproduced || !r.Verified {
			t.Errorf("%s: MT reconstruction failed", r.App)
		}
		if r.Threads < 3 {
			t.Errorf("%s: threads %d", r.App, r.Threads)
		}
	}
	var sb strings.Builder
	bench.RenderMT(&sb, rows)
}

func TestFig1Spectrum(t *testing.T) {
	rows, err := bench.RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	var er *bench.Fig1Position
	for i := range rows {
		if strings.HasPrefix(rows[i].System, "ER") {
			er = &rows[i]
		}
	}
	if er == nil {
		t.Fatal("ER row missing")
	}
	if !er.Efficient || !er.Effective || !er.Accurate {
		t.Errorf("ER must sit inside all three boundaries: %+v", er)
	}
	// No other system may hold all three properties except ER.
	for _, r := range rows {
		if r.System != er.System && r.Efficient && r.Effective && r.Accurate {
			t.Errorf("%s also claims all three properties", r.System)
		}
	}
	var sb strings.Builder
	bench.RenderFig1(&sb, rows)
}
