package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"execrecon/internal/cluster"
)

// FleetClusterOptions configures the multi-node fleet experiment: the
// mixed Table 1 corpus triaged by an in-process cluster (coordinator +
// N triage nodes over loopback HTTP) at each node count, plus an
// optional kill -9 chaos run.
type FleetClusterOptions struct {
	// Nodes is the maximum node count; the experiment runs every
	// count in {1, 2, 4} that is <= Nodes (so -nodes 4 produces the
	// scaling curve, -nodes 2 a smoke).
	Nodes int
	// WorkersPerNode is each node's concurrent-lease budget
	// (default 2).
	WorkersPerNode int
	// KillAfter, when > 0, adds a chaos run at the highest node count
	// that kill -9s node 0 that long after start. Every bucket must
	// still resolve (re-dispatch + archive replay) for parity to hold.
	KillAfter time.Duration
	// MachinesPerApp, Pace, Only as in FleetExpOptions.
	MachinesPerApp int
	Pace           time.Duration
	Only           []string
	// Log receives cluster progress lines.
	Log io.Writer
}

// FleetClusterRun is one multi-node run's outcome.
type FleetClusterRun struct {
	Nodes      int
	Killed     bool
	Elapsed    time.Duration
	Resolved   int
	Reproduced int
	Verified   int
	// NodeResolved is the per-node resolved-bucket distribution.
	NodeResolved []int64
	// Redispatched counts buckets re-dispatched after lease expiry.
	Redispatched int64
	// WALBytes is the commit log size at shutdown (post-checkpoint).
	WALBytes int64
}

// FleetClusterResult is the scaling curve plus the optional chaos run.
type FleetClusterResult struct {
	Apps int
	Runs []FleetClusterRun
	// Chaos is the node-kill run (nil when KillAfter was 0).
	Chaos *FleetClusterRun
}

// Parity reports whether every run (chaos included) resolved,
// reproduced, and verified every bucket.
func (r *FleetClusterResult) Parity() bool {
	check := func(run FleetClusterRun) bool {
		return run.Resolved == r.Apps && run.Reproduced == r.Apps && run.Verified == r.Apps
	}
	for _, run := range r.Runs {
		if !check(run) {
			return false
		}
	}
	if r.Chaos != nil && !check(*r.Chaos) {
		return false
	}
	return true
}

func runFleetCluster(nodes int, kill time.Duration, opts FleetClusterOptions) (FleetClusterRun, error) {
	dir, err := os.MkdirTemp("", "er-cluster-*")
	if err != nil {
		return FleetClusterRun{}, err
	}
	defer os.RemoveAll(dir)
	apps, err := fleetApps(opts.Only)
	if err != nil {
		return FleetClusterRun{}, err
	}
	res, err := cluster.RunHarness(cluster.HarnessOptions{
		Apps:           apps,
		Nodes:          nodes,
		WorkersPerNode: opts.WorkersPerNode,
		Dir:            dir,
		KillAfter:      kill,
		MachinesPerApp: opts.MachinesPerApp,
		Pace:           opts.Pace,
		Log:            opts.Log,
	})
	if err != nil {
		return FleetClusterRun{}, err
	}
	run := FleetClusterRun{
		Nodes:        nodes,
		Killed:       kill > 0,
		Elapsed:      res.Fleet.Elapsed,
		NodeResolved: res.NodeResolved,
		Redispatched: res.Cluster.Redispatched,
		WALBytes:     res.Cluster.WALBytes,
	}
	for _, b := range res.Fleet.Buckets {
		run.Resolved++
		if b.Reproduced {
			run.Reproduced++
		}
		if b.Verified {
			run.Verified++
		}
	}
	return run, nil
}

// RunFleetCluster triages the mixed corpus through an in-process
// multi-node cluster at each node count in {1, 2, 4} capped by
// opts.Nodes, then (with KillAfter set) once more under node-kill
// chaos at the highest count.
func RunFleetCluster(opts FleetClusterOptions) (*FleetClusterResult, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("bench: cluster fleet requires -nodes >= 1")
	}
	if opts.WorkersPerNode <= 0 {
		opts.WorkersPerNode = 2
	}
	if opts.MachinesPerApp <= 0 {
		opts.MachinesPerApp = 2
	}
	if opts.Pace == 0 {
		opts.Pace = 100 * time.Millisecond
	}
	fapps, err := fleetApps(opts.Only)
	if err != nil {
		return nil, err
	}
	r := &FleetClusterResult{Apps: len(fapps)}
	var counts []int
	for _, n := range []int{1, 2, 4} {
		if n <= opts.Nodes {
			counts = append(counts, n)
		}
	}
	if len(counts) == 0 || counts[len(counts)-1] != opts.Nodes {
		counts = append(counts, opts.Nodes)
	}
	for _, n := range counts {
		run, err := runFleetCluster(n, 0, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster fleet (%d nodes): %w", n, err)
		}
		r.Runs = append(r.Runs, run)
	}
	if opts.KillAfter > 0 {
		n := counts[len(counts)-1]
		if n < 2 {
			n = 2
		}
		run, err := runFleetCluster(n, opts.KillAfter, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster fleet chaos (%d nodes): %w", n, err)
		}
		r.Chaos = &run
	}
	return r, nil
}

// RenderFleetCluster prints the scaling table and the chaos run.
func RenderFleetCluster(w io.Writer, r *FleetClusterResult) {
	header := []string{"Nodes", "Chaos", "End-to-end", "Scaling", "Resolved", "Reproduced", "Verified", "Redispatched", "Per-node", "WAL"}
	var rows [][]string
	base := time.Duration(0)
	if len(r.Runs) > 0 {
		base = r.Runs[0].Elapsed
	}
	row := func(run FleetClusterRun) []string {
		chaos := "-"
		if run.Killed {
			chaos = "kill -9 node-0"
		}
		scale := "-"
		if base > 0 && run.Elapsed > 0 && !run.Killed {
			scale = fmt.Sprintf("%.2fx", float64(base)/float64(run.Elapsed))
		}
		return []string{
			fmt.Sprintf("%d", run.Nodes),
			chaos,
			run.Elapsed.Round(time.Millisecond).String(),
			scale,
			fmt.Sprintf("%d/%d", run.Resolved, r.Apps),
			fmt.Sprintf("%d/%d", run.Reproduced, r.Apps),
			fmt.Sprintf("%d/%d", run.Verified, r.Apps),
			fmt.Sprintf("%d", run.Redispatched),
			fmt.Sprintf("%v", run.NodeResolved),
			fmt.Sprintf("%dB", run.WALBytes),
		}
	}
	for _, run := range r.Runs {
		rows = append(rows, row(run))
	}
	if r.Chaos != nil {
		rows = append(rows, row(*r.Chaos))
	}
	table(w, header, rows)
	if r.Parity() {
		fmt.Fprintf(w, "\nverdict parity: %d/%d buckets reproduced+verified in every run\n", r.Apps, r.Apps)
	} else {
		fmt.Fprintln(w, "\nverdict parity VIOLATED (see table)")
	}
}
