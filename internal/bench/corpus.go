package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"execrecon/internal/corpus"
	"execrecon/internal/fleet"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
)

// CorpusOptions configures the population-scale reproduction
// experiment (E17): generate N self-verified scenarios and push them
// through the fleet as mixed production traffic.
type CorpusOptions struct {
	// N is the number of generated scenarios (default 200).
	N int
	// Seed is the generation master seed (default 1); the whole run is
	// reproducible from it.
	Seed uint64
	// Workers is the pipeline worker-pool size (0 = fleet default).
	Workers int
	// MachinesPerScenario is the producer count per scenario
	// (default 1 — the population supplies the scale).
	MachinesPerScenario int
	// FailEvery is the mixed-traffic failure period: each machine's
	// n-th run replays the failing workload when n+1 is a multiple of
	// this, and serves benign load otherwise (default 3).
	FailEvery int
	// Pace spaces each machine's production runs (default 200µs: with
	// hundreds of machines the fleet is already saturated; the pace
	// only models request arrival).
	Pace time.Duration
	// Timeout bounds the fleet run (default 10 minutes).
	Timeout time.Duration
	// Telemetry/Tracer/ListenAddr pass through to the fleet, so a
	// corpus run can expose live population progress on /debug/er.
	Telemetry  *telemetry.Registry
	Tracer     *telemetry.Tracer
	ListenAddr string
	// Absint enables the abstract-interpretation pre-pass (solver
	// pre-discharge, narrowed blasting, registration-time provable
	// lint) across the whole population's pipelines; AbsintWiden is
	// its widening threshold (0 = default).
	Absint      bool
	AbsintWiden int
	// Log receives generation and fleet progress lines.
	Log io.Writer
}

func (o *CorpusOptions) withDefaults() CorpusOptions {
	v := *o
	if v.N == 0 {
		v.N = 200
	}
	if v.Seed == 0 {
		v.Seed = 1
	}
	if v.MachinesPerScenario <= 0 {
		v.MachinesPerScenario = 1
	}
	if v.FailEvery <= 0 {
		v.FailEvery = 3
	}
	if v.Pace == 0 {
		v.Pace = 200 * time.Microsecond
	}
	if v.Timeout == 0 {
		v.Timeout = 10 * time.Minute
	}
	return v
}

// CorpusPatternRow aggregates one bug pattern's population outcome.
type CorpusPatternRow struct {
	Pattern   string
	Scenarios int
	// Reproduced/Verified count scenarios whose bucket pipeline
	// emitted a (verified) test case.
	Reproduced int
	Verified   int
	// Occurrences is the total failure reoccurrences triaged.
	Occurrences int64
	// IterP50/IterMax summarize ER iterations per scenario.
	IterP50 int64
	IterMax int64
	// CostP50/CostP90/CostMax summarize the per-scenario peak
	// recording cost (0 = reproduced without re-instrumentation).
	CostP50 int64
	CostP90 int64
	CostMax int64
}

// CorpusResult is the population-scale experiment outcome.
type CorpusResult struct {
	N        int
	Seed     uint64
	GenStats *corpus.GenStats
	GenTime  time.Duration
	RunTime  time.Duration
	// Rows aggregates per pattern, in generation order; Total is the
	// same aggregation over the whole population.
	Rows  []CorpusPatternRow
	Total CorpusPatternRow
	// Unresolved counts scenarios whose bucket never resolved before
	// the fleet timeout (they count as not reproduced).
	Unresolved int
	// TimedOut reports whether the fleet hit its timeout.
	TimedOut bool
	// Absint echoes CorpusOptions.Absint; the counters below then
	// aggregate the abstract pass's work across the population:
	// queries discharged without CDCL, registration-time provable
	// lint findings, and static invariants mined/verified.
	Absint           bool
	AbsintDischarged int64
	AbsintLintProofs int64
	AbsintMined      int
	AbsintVerified   int
}

// RunCorpus generates opts.N self-verified scenarios and reproduces
// the whole population through the fleet: every scenario runs as its
// own application whose machines serve benign traffic with the failing
// workload recurring, so reproduction rate, iteration counts, and
// recording costs are measured as population properties (the scale the
// paper's 13-bug table cannot show).
func RunCorpus(opts CorpusOptions) (*CorpusResult, error) {
	opts = opts.withDefaults()
	r := &CorpusResult{N: opts.N, Seed: opts.Seed}

	genStart := time.Now()
	scs, stats, err := corpus.Generate(corpus.GenConfig{
		N:       opts.N,
		Seed:    opts.Seed,
		Metrics: corpus.NewMetrics(opts.Telemetry),
	})
	r.GenStats = stats
	r.GenTime = time.Since(genStart)
	if err != nil {
		return r, fmt.Errorf("generate: %w", err)
	}

	byName := make(map[string]*corpus.Scenario, len(scs))
	fapps := make([]fleet.App, 0, len(scs))
	for _, sc := range scs {
		mod, err := sc.Module()
		if err != nil {
			return r, err
		}
		byName[sc.Name] = sc
		fapps = append(fapps, fleet.App{
			Name:     sc.Name,
			Module:   mod,
			Failing:  sc.App().Failing,
			Seed:     sc.SchedSeed,
			Gen:      sc.Gen(opts.FailEvery),
			Machines: opts.MachinesPerScenario,
			Symex:    symex.Options{QueryBudget: sc.QueryBudget, MaxInstrs: 50_000_000},
		})
	}

	met := corpus.NewMetrics(opts.Telemetry)
	runStart := time.Now()
	res, err := fleet.Run(fapps, fleet.Options{
		Workers:     opts.Workers,
		Pace:        opts.Pace,
		Timeout:     opts.Timeout,
		Telemetry:   opts.Telemetry,
		Tracer:      opts.Tracer,
		ListenAddr:  opts.ListenAddr,
		Absint:      opts.Absint,
		AbsintWiden: opts.AbsintWiden,
		Log:         opts.Log,
	})
	r.RunTime = time.Since(runStart)
	if err != nil {
		// A fleet timeout still yields partial results; anything else
		// is fatal.
		if res == nil {
			return r, fmt.Errorf("fleet: %w", err)
		}
		r.TimedOut = true
	}
	if opts.Absint {
		r.Absint = true
		r.AbsintLintProofs = res.Final.LintProofs
		for _, b := range res.Buckets {
			if b.Report == nil {
				continue
			}
			r.AbsintDischarged += b.Report.AbsintDischarged
			r.AbsintMined += b.Report.AbsintMined
			r.AbsintVerified += len(b.Report.AbsintInvariants)
		}
	}

	type agg struct {
		row   CorpusPatternRow
		iters []int64
		costs []int64
	}
	aggs := make(map[string]*agg)
	order := []string{}
	for _, p := range corpus.Patterns() {
		aggs[p.String()] = &agg{row: CorpusPatternRow{Pattern: p.String()}}
		order = append(order, p.String())
	}
	total := &agg{row: CorpusPatternRow{Pattern: "all"}}

	resolved := map[string]bool{}
	for _, b := range res.Buckets {
		sc := byName[b.App]
		if sc == nil {
			continue // foreign bucket (cannot happen in this fleet)
		}
		resolved[b.App] = true
		a := aggs[sc.Pattern.String()]
		for _, x := range []*agg{a, total} {
			x.row.Scenarios++
			x.row.Occurrences += b.Occurrences
		}
		rep := b.Report
		reproduced := rep != nil && rep.Reproduced
		met.Reproduced(sc.Pattern, reproduced)
		if rep == nil {
			continue
		}
		iters := int64(len(rep.Iterations))
		var cost int64
		for _, it := range rep.Iterations {
			if it.RecordingCost > cost {
				cost = it.RecordingCost
			}
		}
		for _, x := range []*agg{a, total} {
			if rep.Reproduced {
				x.row.Reproduced++
			}
			if rep.Verified {
				x.row.Verified++
			}
			x.iters = append(x.iters, iters)
			x.costs = append(x.costs, cost)
		}
	}
	for _, sc := range scs {
		if !resolved[sc.Name] {
			r.Unresolved++
			met.Reproduced(sc.Pattern, false)
		}
	}

	finish := func(a *agg) CorpusPatternRow {
		a.row.IterP50 = percentile(a.iters, 50)
		a.row.IterMax = percentile(a.iters, 100)
		a.row.CostP50 = percentile(a.costs, 50)
		a.row.CostP90 = percentile(a.costs, 90)
		a.row.CostMax = percentile(a.costs, 100)
		return a.row
	}
	for _, p := range order {
		r.Rows = append(r.Rows, finish(aggs[p]))
	}
	r.Total = finish(total)
	return r, nil
}

// percentile returns the p-th percentile (nearest-rank) of vs, or 0
// when empty. vs is sorted in place.
func percentile(vs []int64, p int) int64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	if p >= 100 {
		return vs[len(vs)-1]
	}
	idx := p * len(vs) / 100
	if idx >= len(vs) {
		idx = len(vs) - 1
	}
	return vs[idx]
}

// RenderCorpus prints the population-level reproduction table.
func RenderCorpus(w io.Writer, r *CorpusResult) {
	fmt.Fprintf(w, "population: %d scenarios from seed %d (%d draws rejected by self-verification)\n",
		r.N, r.Seed, rejectedOf(r.GenStats))
	fmt.Fprintf(w, "generation: %v (every scenario ground-truth-verified by concrete execution)\n",
		r.GenTime.Round(time.Millisecond))
	header := []string{"Pattern", "Scenarios", "Reproduced", "Verified", "Rate", "#Occur", "Iter p50/max", "RecCost p50/p90/max"}
	var rows [][]string
	render := func(row CorpusPatternRow) []string {
		rate := "-"
		if row.Scenarios > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(row.Reproduced)/float64(row.Scenarios))
		}
		return []string{
			row.Pattern,
			fmt.Sprintf("%d", row.Scenarios),
			fmt.Sprintf("%d", row.Reproduced),
			fmt.Sprintf("%d", row.Verified),
			rate,
			fmt.Sprintf("%d", row.Occurrences),
			fmt.Sprintf("%d/%d", row.IterP50, row.IterMax),
			fmt.Sprintf("%d/%d/%d", row.CostP50, row.CostP90, row.CostMax),
		}
	}
	for _, row := range r.Rows {
		rows = append(rows, render(row))
	}
	rows = append(rows, render(r.Total))
	table(w, header, rows)
	fmt.Fprintf(w, "\nfleet run: %v", r.RunTime.Round(time.Millisecond))
	if r.TimedOut {
		fmt.Fprintf(w, " (TIMED OUT: %d scenarios unresolved)", r.Unresolved)
	}
	if r.Absint {
		fmt.Fprintf(w, "\nabstract pass: %d queries discharged, %d provable lint findings at registration, %d/%d static invariants verified/mined",
			r.AbsintDischarged, r.AbsintLintProofs, r.AbsintVerified, r.AbsintMined)
	}
	fmt.Fprintf(w, "\nreproduce this population with: erbench -exp corpus -corpus-n %d -seed %d\n", r.N, r.Seed)
}

func rejectedOf(s *corpus.GenStats) int {
	if s == nil {
		return 0
	}
	return s.Rejected
}
