package bench_test

import (
	"strings"
	"testing"
	"time"

	"execrecon/internal/bench"
	"execrecon/internal/corpus"
	"execrecon/internal/telemetry"
)

// TestCorpusExpSmoke runs the population experiment end-to-end on a
// small generated population (two scenarios per pattern) and checks
// every scenario resolves, reproduces, and verifies, that the
// telemetry registry saw the population counters, and that the
// renderer emits the per-pattern table.
func TestCorpusExpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus experiment runs full ER pipelines; skipped in -short")
	}
	reg := telemetry.New()
	n := 2 * len(corpus.Patterns())
	r, err := bench.RunCorpus(bench.CorpusOptions{
		N:         n,
		Seed:      17,
		Workers:   4,
		Pace:      time.Millisecond,
		Timeout:   2 * time.Minute,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatalf("corpus experiment: %v", err)
	}
	if r.TimedOut {
		t.Fatalf("corpus fleet timed out with %d unresolved", r.Unresolved)
	}
	if r.Total.Scenarios != n {
		t.Errorf("resolved %d scenarios, want %d", r.Total.Scenarios, n)
	}
	if r.Total.Reproduced != n || r.Total.Verified != n {
		t.Errorf("reproduced/verified %d/%d, want %d/%d",
			r.Total.Reproduced, r.Total.Verified, n, n)
	}
	if r.Total.Occurrences < int64(n) {
		t.Errorf("%d occurrences, want >= %d", r.Total.Occurrences, n)
	}
	for _, row := range r.Rows {
		if row.Scenarios != 2 {
			t.Errorf("pattern %s: %d scenarios, want 2 (round-robin)", row.Pattern, row.Scenarios)
		}
	}

	for _, fam := range []string{"er_corpus_generated_total", "er_corpus_reproduced_total"} {
		snap, ok := reg.Family(fam)
		if !ok {
			t.Errorf("metric family %s not registered", fam)
			continue
		}
		var total float64
		for _, s := range snap.Series {
			total += s.Value
		}
		if total != float64(n) {
			t.Errorf("%s sums to %v, want %d", fam, total, n)
		}
	}

	var sb strings.Builder
	bench.RenderCorpus(&sb, r)
	out := sb.String()
	for _, want := range []string{"lock-inversion", "atomicity", "overflow", "Iter p50/max", "-seed 17"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
