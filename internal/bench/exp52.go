package bench

import (
	"fmt"
	"io"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// RandomRow compares key data value selection with the §5.2 random
// recording baseline on one application.
type RandomRow struct {
	App           string
	NeedsData     bool // needed ≥1 recording iteration at all
	KeyOccur      int
	KeyOK         bool
	RandomOccur   int
	RandomOK      bool
	RandomAborted string
}

// RunRandomBaseline reproduces the §5.2 comparison: ER with key data
// value selection versus ER with random recording at the same byte
// budget *and* the same number of failure occurrences, on every app
// that requires data recording.
func RunRandomBaseline(maxIter int) []RandomRow {
	var rows []RandomRow
	for _, a := range apps.All() {
		mod, err := a.Module()
		if err != nil {
			continue
		}
		row := RandomRow{App: a.Name}
		rep, err := core.Reproduce(core.Config{
			Module:        mod,
			Gen:           &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
			Symex:         symex.Options{QueryBudget: a.QueryBudget, MaxInstrs: 50_000_000},
			MaxIterations: 12,
		})
		row.KeyOK = err == nil && rep.Reproduced && rep.Verified
		row.KeyOccur = rep.Occurrences
		row.NeedsData = rep.Occurrences > 1
		if !row.NeedsData {
			rows = append(rows, row)
			continue
		}
		iters := rep.Occurrences
		if maxIter > 0 {
			iters = maxIter
		}
		rrep, rerr := core.Reproduce(core.Config{
			Module:          mod,
			Gen:             &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
			Symex:           symex.Options{QueryBudget: a.QueryBudget, MaxInstrs: 50_000_000},
			MaxIterations:   iters,
			RandomSelection: true,
			RandomSeed:      0xC0FFEE,
		})
		row.RandomOK = rerr == nil && rrep.Reproduced && rrep.Verified
		row.RandomOccur = rrep.Occurrences
		if rerr != nil {
			row.RandomAborted = rerr.Error()
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderRandomBaseline prints the comparison.
func RenderRandomBaseline(w io.Writer, rows []RandomRow) {
	header := []string{"Application", "Needs data", "Key-selection", "Random recording"}
	var out [][]string
	keyOK, rndOK, needs := 0, 0, 0
	for _, r := range rows {
		nd := "no"
		if r.NeedsData {
			nd = "yes"
			needs++
		}
		ks := fmt.Sprintf("reproduced in %d occ", r.KeyOccur)
		if !r.KeyOK {
			ks = "failed"
		} else {
			keyOK++
		}
		rs := "n/a"
		if r.NeedsData {
			if r.RandomOK {
				rs = fmt.Sprintf("reproduced in %d occ", r.RandomOccur)
				rndOK++
			} else {
				rs = fmt.Sprintf("NOT reproduced (%d occ tried)", r.RandomOccur)
			}
		}
		out = append(out, []string{r.App, nd, ks, rs})
	}
	table(w, header, out)
	fmt.Fprintf(w, "\nOf %d bugs needing data recording (same occurrence budget as key selection):\n", needs)
	fmt.Fprintf(w, "  key selection reproduced %d, random recording reproduced %d\n", keyOK, rndOK)
	fmt.Fprintf(w, "(paper: random recording reproduced 1 of the 11 data-requiring failures)\n")
}

// AccuracyRow is one §5.2 accuracy check: the generated input may
// differ from the original, but must drive the identical control flow
// and failure.
type AccuracyRow struct {
	App            string
	InputsDiffer   bool
	SameFailure    bool
	SameBranchHist bool
	OrigInputs     int
	GenInputs      int
}

// RunAccuracy reproduces each bug, then compares the generated test
// case with the original failing input: same failure signature, same
// branch history, inputs possibly different.
func RunAccuracy() ([]AccuracyRow, error) {
	var rows []AccuracyRow
	for _, a := range apps.All() {
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		rep, err := core.Reproduce(core.Config{
			Module:        mod,
			Gen:           &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
			Symex:         symex.Options{QueryBudget: a.QueryBudget, MaxInstrs: 50_000_000},
			MaxIterations: 12,
		})
		if err != nil || !rep.Reproduced {
			rows = append(rows, AccuracyRow{App: a.Name})
			continue
		}
		orig := a.Failing()
		row := AccuracyRow{
			App:        a.Name,
			OrigInputs: orig.TotalValues(),
			GenInputs:  rep.TestCase.TotalValues(),
		}
		row.InputsDiffer = !sameWorkload(orig, rep.TestCase)
		r1 := vm.New(mod, vm.Config{Input: orig.Clone(), Seed: a.Seed}).Run("main")
		r2 := vm.New(mod, vm.Config{Input: rep.TestCase.Clone(), Seed: a.Seed}).Run("main")
		row.SameFailure = r1.Failure.SameSignature(r2.Failure)
		row.SameBranchHist = r1.Stats.Branches == r2.Stats.Branches &&
			r1.Stats.Instrs == r2.Stats.Instrs
		rows = append(rows, row)
	}
	return rows, nil
}

func sameWorkload(a, b *vm.Workload) bool {
	if len(a.Streams) != len(b.Streams) {
		return false
	}
	for k, va := range a.Streams {
		vb, ok := b.Streams[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// RenderAccuracy prints the accuracy table.
func RenderAccuracy(w io.Writer, rows []AccuracyRow) {
	header := []string{"Application", "Inputs differ", "Same failure", "Same CF length"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%v (%d vs %d values)", r.InputsDiffer, r.OrigInputs, r.GenInputs),
			fmt.Sprintf("%v", r.SameFailure),
			fmt.Sprintf("%v", r.SameBranchHist),
		})
	}
	table(w, header, out)
}
