package bench

import (
	"fmt"
	"io"

	"execrecon/internal/apps"
	"execrecon/internal/prod"
	"execrecon/internal/vm"
)

// Fig1Position places one system on the three §2 spectra. Efficiency
// and the boundaries are measured where we have an implementation
// (ER, rr, REPT); the remaining systems are the paper's published
// characterizations, included so the figure is complete.
type Fig1Position struct {
	System     string
	OverheadPc float64 // measured or published runtime overhead
	Measured   bool
	// Efficient: under the 10% production boundary (§2.1).
	Efficient bool
	// Effective: handles latent and coarse-interleaved concurrency
	// bugs (§2.2).
	Effective bool
	// Accurate: output is a replayable execution with the same
	// failure (§2.3).
	Accurate bool
	Note     string
}

// RunFig1 reproduces the qualitative spectrum of Fig. 1, measuring
// the systems this repository implements and quoting the paper for
// the rest.
func RunFig1() ([]Fig1Position, error) {
	// Measure ER and rr overhead on the full application suite.
	runner := prod.NewRunner()
	runner.Runs = 3
	var erSum, rrSum float64
	n := 0
	for _, a := range apps.All() {
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		w := func(i int) (*vm.Workload, int64) { return a.Benign(i), int64(i) + 1 }
		erSum += runner.MeasureER(mod, nil, w).MeanPct
		rrSum += runner.MeasureRR(mod, w).MeanPct
		n++
	}
	erPct := erSum / float64(n)
	rrPct := rrSum / float64(n)

	return []Fig1Position{
		{System: "ER (this library)", OverheadPc: erPct, Measured: true,
			Efficient: erPct < 10, Effective: true, Accurate: true,
			Note: "verified replayable test cases for all 13 bugs incl. latent + MT"},
		{System: "Full RR (internal/rr)", OverheadPc: rrPct, Measured: true,
			Efficient: rrPct < 10, Effective: true, Accurate: true,
			Note: "bit-exact replay; overhead prohibitive"},
		{System: "REPT (internal/rept)", OverheadPc: erPct, Measured: true,
			Efficient: true, Effective: false, Accurate: false,
			Note: "~30% of recovered values silently wrong on long traces"},
		{System: "Efficient RR (paper)", OverheadPc: 10, Measured: false,
			Efficient: true, Effective: false, Accurate: true,
			Note: "cannot replay data races (§2.2)"},
		{System: "Hybrid RR (paper)", OverheadPc: 300, Measured: false,
			Efficient: false, Effective: true, Accurate: true,
			Note: "fine-grained modes 3-20x; coarse modes lose effectiveness"},
		{System: "BugRedux (paper)", OverheadPc: 1000, Measured: false,
			Efficient: false, Effective: false, Accurate: true,
			Note: "complete tracing up to 10x; solver may time out"},
		{System: "ESD/RDE (paper)", OverheadPc: 0, Measured: false,
			Efficient: true, Effective: false, Accurate: true,
			Note: "offline only; not guaranteed to reproduce"},
	}, nil
}

// RenderFig1 prints the spectrum table.
func RenderFig1(w io.Writer, rows []Fig1Position) {
	header := []string{"System", "Overhead", "Efficient(<10%)", "Effective", "Accurate", "Note"}
	var out [][]string
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		ov := fmt.Sprintf("%.2f%%", r.OverheadPc)
		if !r.Measured {
			ov += " (paper)"
		}
		out = append(out, []string{r.System, ov, yn(r.Efficient), yn(r.Effective), yn(r.Accurate), r.Note})
	}
	table(w, header, out)
	fmt.Fprintln(w, "\n(Fig. 1's claim: only ER sits inside all three usability boundaries.)")
}
