package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/ir"
	"execrecon/internal/keyselect"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// Fig5Series is one curve of Fig. 5: symbolic execution progress
// (instructions executed over wall time) under one recording
// configuration.
type Fig5Series struct {
	Label  string
	Points []symex.ProgressPoint
	// Total is the wall time to execute the full instruction count.
	Total  time.Duration
	Instrs int64
}

// Fig5Result carries the three curves of Fig. 5 (no data values,
// first-iteration values, second-iteration values).
type Fig5Result struct {
	App    string
	Series []Fig5Series
}

// RunFig5 reproduces Fig. 5 on the PHP-74194 analog: it derives the
// iteration-1 and iteration-2 instrumentation sets through the real
// ER loop, then re-runs shepherded symbolic execution with the solver
// timeout disabled under each of the three recording configurations,
// measuring the time to symbolically execute the same instructions.
func RunFig5(appName string) (*Fig5Result, error) {
	if appName == "" {
		appName = "PHP-74194"
	}
	a := apps.ByName(appName)
	if a == nil {
		return nil, fmt.Errorf("bench: unknown app %q", appName)
	}
	mod, err := a.Module()
	if err != nil {
		return nil, err
	}

	// Derive up to two instrumentation generations by running the
	// stall/select cycle with a tightly constrained solver budget
	// (half the app's configured timeout analog), so two distinct
	// recording generations emerge.
	budget := a.QueryBudget / 2
	if budget == 0 {
		budget = 2000
	}
	modules := []*ir.Module{mod} // generation 0: control flow only
	cur := mod
	for gen := 0; gen < 2; gen++ {
		trace, failRes, err := record(cur, a.Failing(), a.Seed)
		if err != nil {
			return nil, err
		}
		sres := symex.New(cur, trace, failRes.Failure, symex.Options{QueryBudget: budget}).Run("main")
		if sres.Status != symex.StatusStalled {
			// Converged early: reuse the last instrumentation for
			// the remaining generation.
			modules = append(modules, cur)
			continue
		}
		sel, err := keyselect.Select(sres)
		if err != nil {
			return nil, err
		}
		cur, err = keyselect.Instrument(cur, sel.Sites)
		if err != nil {
			return nil, err
		}
		modules = append(modules, cur)
	}

	labels := []string{
		"control-flow + no data values",
		"control-flow + 1st iteration data values",
		"control-flow + 2nd iteration data values",
	}
	res := &Fig5Result{App: a.Name}
	for i, m := range modules {
		trace, failRes, err := record(m, a.Failing(), a.Seed)
		if err != nil {
			return nil, err
		}
		// Solver timeout disabled (§5.2): every configuration
		// executes the same instructions to completion. The work per
		// configuration is deterministic but the later generations
		// finish in single-digit milliseconds, where one scheduling
		// hiccup dwarfs the real difference — so measure each
		// configuration a few times and keep the fastest run, the
		// standard noise-robust estimator for fixed work.
		var best *symex.Result
		for rep := 0; rep < 3; rep++ {
			eng := symex.New(m, trace, failRes.Failure, symex.Options{ProgressEvery: 64})
			sres := eng.Run("main")
			if sres.Status != symex.StatusCompleted {
				return nil, fmt.Errorf("bench: fig5 generation %d: %v (%v)", i, sres.Status, sres.Err)
			}
			if best == nil || sres.Stats.Elapsed < best.Stats.Elapsed {
				best = sres
			}
		}
		res.Series = append(res.Series, Fig5Series{
			Label:  labels[i],
			Points: best.Progress,
			Total:  best.Stats.Elapsed,
			Instrs: best.Stats.Instrs,
		})
	}
	return res, nil
}

// record runs one traced failing execution.
func record(mod *ir.Module, w *vm.Workload, seed int64) (*pt.Trace, *vm.Result, error) {
	ring := pt.NewRing(pt.DefaultRingSize)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: w, Tracer: enc, Seed: seed}).Run("main")
	if res.Failure == nil {
		return nil, nil, fmt.Errorf("bench: workload did not fail")
	}
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		return nil, nil, err
	}
	return tr, res, nil
}

// RenderFig5 prints the series: per configuration, total time and a
// coarse progress curve (CSV-like rows usable for plotting).
func RenderFig5(w io.Writer, r *Fig5Result) {
	fmt.Fprintf(w, "Fig 5 — shepherded symbolic execution progress, %s\n", r.App)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%-45s total %10v for %d instructions\n",
			s.Label, s.Total.Round(time.Microsecond), s.Instrs)
	}
	fmt.Fprintln(w, "\nseries,instructions,milliseconds")
	for si, s := range r.Series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%d,%d,%.3f\n", si, p.Instrs, float64(p.Elapsed.Microseconds())/1000)
		}
	}
}
