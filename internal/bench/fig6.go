package bench

import (
	"fmt"
	"io"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/ir"
	"execrecon/internal/keyselect"
	"execrecon/internal/prod"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// Fig6Row is one bar pair of Fig. 6: ER's monitoring overhead and the
// record/replay baseline's, on one application's performance
// workload.
type Fig6Row struct {
	App      string
	ER       prod.Summary
	RR       prod.Summary
	ERTraceB uint64 // mean trace bytes per run
}

// RunFig6 measures runtime overhead for every Table 1 application:
// ER (control-flow tracing plus the final iteration's ptwrite
// instrumentation, per §5.3 "the last occurrence records the most
// data") versus rr-style full record/replay.
func RunFig6(runs int) ([]Fig6Row, error) {
	var rows []Fig6Row
	runner := prod.NewRunner()
	if runs > 0 {
		runner.Runs = runs
	}
	for _, a := range apps.All() {
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		instr, err := finalInstrumentation(a, mod)
		if err != nil {
			return nil, err
		}
		w := func(i int) (*vm.Workload, int64) { return a.Benign(i), int64(i) + 1 }
		row := Fig6Row{App: a.Name}
		row.ER = runner.MeasureER(mod, instr, w)
		row.RR = runner.MeasureRR(mod, w)
		var tb uint64
		for _, s := range row.ER.Samples {
			tb += s.TraceBytes
		}
		if n := len(row.ER.Samples); n > 0 {
			row.ERTraceB = tb / uint64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// finalInstrumentation reruns the ER loop to obtain the module as
// deployed in the final (most-instrumented) iteration.
func finalInstrumentation(a *apps.App, mod *ir.Module) (*ir.Module, error) {
	deployed := mod
	rep, err := core.Reproduce(core.Config{
		Module:        mod,
		Gen:           &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
		Symex:         symex.Options{QueryBudget: a.QueryBudget, MaxInstrs: 50_000_000},
		MaxIterations: 12,
	})
	if err != nil || !rep.Reproduced {
		// Overhead of plain control-flow tracing still applies.
		return mod, nil
	}
	// Re-derive the instrumented module by replaying the recorded
	// iteration count.
	for i := 0; i < len(rep.Iterations)-1; i++ {
		trace, failRes, err := record(deployed, a.Failing(), a.Seed)
		if err != nil {
			return nil, err
		}
		sres := symex.New(deployed, trace, failRes.Failure,
			symex.Options{QueryBudget: a.QueryBudget}).Run("main")
		if sres.Status != symex.StatusStalled {
			break
		}
		sel, err := keyselect.Select(sres)
		if err != nil {
			return nil, err
		}
		deployed, err = keyselect.Instrument(deployed, sel.Sites)
		if err != nil {
			return nil, err
		}
	}
	return deployed, nil
}

// RenderFig6 prints the overhead bars with standard errors.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	header := []string{"Application", "ER overhead", "rr overhead", "ER trace bytes/run"}
	var out [][]string
	var erSum, rrSum, erMax, rrMax float64
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%.2f%% ± %.2f", r.ER.MeanPct, r.ER.StderrPct),
			fmt.Sprintf("%.1f%% ± %.1f", r.RR.MeanPct, r.RR.StderrPct),
			fmt.Sprintf("%d", r.ERTraceB),
		})
		erSum += r.ER.MeanPct
		rrSum += r.RR.MeanPct
		if r.ER.MeanPct > erMax {
			erMax = r.ER.MeanPct
		}
		if r.RR.MeanPct > rrMax {
			rrMax = r.RR.MeanPct
		}
	}
	table(w, header, out)
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "\nER:  average %.2f%%, max %.2f%%   (paper: avg 0.3%%, max 1.1%%)\n", erSum/n, erMax)
		fmt.Fprintf(w, "rr:  average %.1f%%, max %.1f%%   (paper: avg 48.0%%, max 142.2%%)\n", rrSum/n, rrMax)
	}
}
