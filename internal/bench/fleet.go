package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/fleet"
	"execrecon/internal/symex"
)

// FleetExpOptions configures the fleet-scale experiment.
type FleetExpOptions struct {
	// Workers is the parallel scheduler's worker-pool size
	// (default GOMAXPROCS, floored at 4).
	Workers int
	// MachinesPerApp is the producer count per application
	// (default 2).
	MachinesPerApp int
	// Only restricts the fleet to the named apps (nil = all 13).
	Only []string
	// Pace spaces each machine's production runs (default 100ms —
	// the fleet-wide failure reoccurrence interval). Sequential
	// triage pays this latency serially at every iteration of every
	// bucket; parallel triage overlaps one bucket's reoccurrence
	// wait with other buckets' analysis, which is where the
	// end-to-end speedup comes from even on a single core.
	Pace time.Duration
	// Log receives fleet progress lines.
	Log io.Writer
}

// FleetModeResult is one end-to-end fleet run (sequential or
// parallel triage).
type FleetModeResult struct {
	Label      string
	Workers    int
	Elapsed    time.Duration
	Resolved   int
	Reproduced int
	Verified   int
	// Occurrences is the total failure reoccurrences triaged.
	Occurrences int64
	// QueueDrops sums ingest overflow drops across shards.
	QueueDrops int64
}

// FleetExpResult compares sequential vs parallel triage over the same
// mixed fleet workload.
type FleetExpResult struct {
	Sequential FleetModeResult
	Parallel   FleetModeResult
	// Speedup is sequential wall time over parallel wall time.
	Speedup float64
	// Buckets holds the parallel run's per-bucket outcomes.
	Buckets []fleet.BucketResult
}

// fleetApps converts the Table 1 programs into fleet applications,
// with the same per-app solver budgets the Table 1 runs use.
func fleetApps(only []string) ([]fleet.App, error) {
	var out []fleet.App
	for _, a := range apps.All() {
		if len(only) > 0 && !contains(only, a.Name) {
			continue
		}
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		budget := a.QueryBudget
		if budget == 0 {
			budget = DefaultQueryBudget
		}
		out = append(out, fleet.App{
			Name:    a.Name,
			Module:  mod,
			Failing: a.Failing,
			Seed:    a.Seed,
			Symex:   symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: no fleet apps selected")
	}
	return out, nil
}

func runFleetMode(label string, workers int, only []string, opts FleetExpOptions) (FleetModeResult, []fleet.BucketResult, error) {
	fapps, err := fleetApps(only)
	if err != nil {
		return FleetModeResult{}, nil, err
	}
	res, err := fleet.Run(fapps, fleet.Options{
		Workers:        workers,
		MachinesPerApp: opts.MachinesPerApp,
		Pace:           opts.Pace,
		Log:            opts.Log,
	})
	if err != nil {
		return FleetModeResult{}, nil, err
	}
	m := FleetModeResult{Label: label, Workers: workers, Elapsed: res.Elapsed}
	for _, b := range res.Buckets {
		m.Resolved++
		if b.Reproduced {
			m.Reproduced++
		}
		if b.Verified {
			m.Verified++
		}
		m.Occurrences += b.Occurrences
	}
	for _, d := range res.Final.QueueDrops {
		m.QueueDrops += d
	}
	return m, res.Buckets, nil
}

// RunFleetExp runs the mixed 13-app fleet workload twice — once with
// a single pipeline worker (sequential triage, the repo's historical
// one-failure-at-a-time model) and once with a worker pool — and
// reports the end-to-end times.
func RunFleetExp(opts FleetExpOptions) (*FleetExpResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers < 4 {
			opts.Workers = 4
		}
	}
	if opts.MachinesPerApp <= 0 {
		opts.MachinesPerApp = 2
	}
	if opts.Pace == 0 {
		opts.Pace = 100 * time.Millisecond
	}
	seq, _, err := runFleetMode("sequential", 1, opts.Only, opts)
	if err != nil {
		return nil, fmt.Errorf("sequential fleet: %w", err)
	}
	par, buckets, err := runFleetMode("parallel", opts.Workers, opts.Only, opts)
	if err != nil {
		return nil, fmt.Errorf("parallel fleet: %w", err)
	}
	r := &FleetExpResult{Sequential: seq, Parallel: par, Buckets: buckets}
	if par.Elapsed > 0 {
		r.Speedup = float64(seq.Elapsed) / float64(par.Elapsed)
	}
	return r, nil
}

// RenderFleet prints the per-bucket triage outcomes and the
// sequential-vs-parallel comparison.
func RenderFleet(w io.Writer, r *FleetExpResult) {
	header := []string{"Bucket (Application-BugID)", "#Occur", "Iter", "Stale", "State", "Reproduced", "Time"}
	var rows [][]string
	for _, b := range r.Buckets {
		rep := "yes"
		if !b.Reproduced {
			rep = "NO"
		} else if !b.Verified {
			rep = "yes (unverified)"
		}
		rows = append(rows, []string{
			b.App,
			fmt.Sprintf("%d", b.Occurrences),
			fmt.Sprintf("%d", b.Iterations),
			fmt.Sprintf("%d", b.StaleDrops),
			b.State,
			rep,
			b.Elapsed.Round(time.Millisecond).String(),
		})
	}
	table(w, header, rows)
	fmt.Fprintln(w)

	header = []string{"Triage mode", "Workers", "End-to-end", "Resolved", "Reproduced", "#Occur", "Queue drops"}
	rows = nil
	for _, m := range []FleetModeResult{r.Sequential, r.Parallel} {
		rows = append(rows, []string{
			m.Label,
			fmt.Sprintf("%d", m.Workers),
			m.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", m.Resolved),
			fmt.Sprintf("%d", m.Reproduced),
			fmt.Sprintf("%d", m.Occurrences),
			fmt.Sprintf("%d", m.QueueDrops),
		})
	}
	table(w, header, rows)
	fmt.Fprintf(w, "\nparallel speedup: %.2fx (sequential %v / parallel %v)\n",
		r.Speedup,
		r.Sequential.Elapsed.Round(time.Millisecond),
		r.Parallel.Elapsed.Round(time.Millisecond))
}
