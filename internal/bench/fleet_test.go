package bench_test

import (
	"strings"
	"testing"
	"time"

	"execrecon/internal/bench"
)

// TestFleetExpSmoke runs the fleet experiment end-to-end on a small
// app subset with a tiny pace so the test stays fast. It checks both
// triage modes resolve and reproduce every selected bug and that the
// renderer emits the comparison.
func TestFleetExpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment runs full ER pipelines; skipped in -short")
	}
	only := []string{"SQLite-787fa71", "PHP-2012-2386"}
	r, err := bench.RunFleetExp(bench.FleetExpOptions{
		Workers:        4,
		MachinesPerApp: 2,
		Only:           only,
		Pace:           2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fleet experiment: %v", err)
	}
	for _, m := range []bench.FleetModeResult{r.Sequential, r.Parallel} {
		if m.Resolved != len(only) {
			t.Errorf("%s: resolved %d buckets, want %d", m.Label, m.Resolved, len(only))
		}
		if m.Reproduced != len(only) {
			t.Errorf("%s: reproduced %d, want %d", m.Label, m.Reproduced, len(only))
		}
		if m.Occurrences < int64(len(only)) {
			t.Errorf("%s: %d occurrences, want >= %d", m.Label, m.Occurrences, len(only))
		}
	}
	if r.Sequential.Workers != 1 {
		t.Errorf("sequential mode ran with %d workers", r.Sequential.Workers)
	}
	if r.Parallel.Workers != 4 {
		t.Errorf("parallel mode ran with %d workers, want 4", r.Parallel.Workers)
	}
	if len(r.Buckets) != len(only) {
		t.Errorf("bucket results: %d, want %d", len(r.Buckets), len(only))
	}
	if r.Speedup <= 0 {
		t.Errorf("speedup = %v, want > 0", r.Speedup)
	}

	var sb strings.Builder
	bench.RenderFleet(&sb, r)
	out := sb.String()
	for _, want := range append([]string{"sequential", "parallel", "speedup"}, only...) {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFleetExpRejectsEmptySelection(t *testing.T) {
	_, err := bench.RunFleetExp(bench.FleetExpOptions{
		Only: []string{"no-such-app"},
		Pace: time.Millisecond,
	})
	if err == nil {
		t.Fatal("expected error for an empty app selection")
	}
}
