package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// JSONArtifact is the envelope every BENCH_<exp>.json file shares:
// which experiment produced it, when, and the experiment's structured
// result (the same rows the text renderer prints).
type JSONArtifact struct {
	Experiment string      `json:"experiment"`
	Generated  time.Time   `json:"generated"`
	Result     interface{} `json:"result"`
}

// WriteJSONArtifact writes an experiment's structured result as
// indented JSON to dir/BENCH_<exp>.json and returns the written path.
func WriteJSONArtifact(dir, exp string, result interface{}) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", exp))
	b, err := json.MarshalIndent(JSONArtifact{
		Experiment: exp,
		Generated:  time.Now().UTC(),
		Result:     result,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
