package bench

import (
	"fmt"
	"io"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/invariants"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// MimicRow is one §5.4 case-study result: invariant-based failure
// localization driven by an ER-reconstructed execution.
type MimicRow struct {
	App string
	// PassingRuns used for inference (paper: 4).
	PassingRuns int
	Points      int
	// ViolationsDirect uses the original failing input;
	// ViolationsER uses the ER-generated test case. MIMIC's
	// requirement is that the two localize the same root causes.
	ViolationsDirect []invariants.Violation
	ViolationsER     []invariants.Violation
	SameTop          bool
	RootCausePoint   string
	RootCauseRank    int // 1-based rank of the buggy function's point, 0 if absent
}

// RunMimic performs the §5.4 case study on the od and pr analogs:
// infer likely invariants from passing runs, reconstruct the failure
// with ER, and localize by violated invariants.
func RunMimic() ([]MimicRow, error) {
	cases := []struct {
		app  *apps.App
		root string // function containing the defect's effect
	}{
		{apps.CoreutilOd(), "format_word"},
		{apps.CoreutilPr(), "compute_columns"},
	}
	var rows []MimicRow
	for _, c := range cases {
		mod, err := c.app.Module()
		if err != nil {
			return nil, err
		}
		// Likely invariants from 4 passing executions.
		var passing [][]invariants.Obs
		for i := 0; i < 4; i++ {
			obs, res := invariants.Collect(mod, c.app.Benign(i), int64(i)+1)
			if res.Failure != nil {
				return nil, fmt.Errorf("bench: mimic passing run failed: %v", res.Failure)
			}
			passing = append(passing, obs)
		}
		set := invariants.Infer(passing)

		// Reconstruct the failure with ER.
		rep, err := core.Reproduce(core.Config{
			Module:        mod,
			Gen:           &core.FixedWorkload{Workload: c.app.Failing(), Seed: c.app.Seed},
			Symex:         symex.Options{QueryBudget: 200_000, MaxInstrs: 50_000_000},
			MaxIterations: 12,
		})
		if err != nil || !rep.Reproduced {
			return nil, fmt.Errorf("bench: mimic reconstruction failed for %s: %v", c.app.Name, err)
		}

		// Localize with the direct failing input and with the
		// ER-generated one.
		dObs, _ := invariants.Collect(mod, c.app.Failing(), c.app.Seed)
		eObs, _ := invariants.Collect(mod, rep.TestCase.Clone(), c.app.Seed)
		dv := set.Check(dObs)
		ev := set.Check(eObs)

		row := MimicRow{
			App:              c.app.Name,
			PassingRuns:      4,
			Points:           set.NumPoints(),
			ViolationsDirect: dv,
			ViolationsER:     ev,
			RootCausePoint:   c.root,
		}
		row.SameTop = sameTopViolations(dv, ev, 3)
		for i, v := range ev {
			if hasPrefix(v.Point, c.root+":") {
				row.RootCauseRank = i + 1
				break
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// sameTopViolations compares the *program points* localized by the
// top-k violations: the ER-generated input may differ in concrete
// values (§5.2), but must blame the same places.
func sameTopViolations(a, b []invariants.Violation, k int) bool {
	points := func(vs []invariants.Violation) map[string]bool {
		out := map[string]bool{}
		for i, v := range vs {
			if i >= k {
				break
			}
			out[v.Point] = true
		}
		return out
	}
	pa, pb := points(a), points(b)
	if len(pa) != len(pb) {
		return false
	}
	for p := range pa {
		if !pb[p] {
			return false
		}
	}
	return true
}

// RenderMimic prints the case-study outcome.
func RenderMimic(w io.Writer, rows []MimicRow) {
	for _, r := range rows {
		fmt.Fprintf(w, "%s: %d invariant points from %d passing runs\n", r.App, r.Points, r.PassingRuns)
		fmt.Fprintf(w, "  ER-reconstructed run matches direct failing run on top violations: %v\n", r.SameTop)
		fmt.Fprintf(w, "  root-cause function %q ranked #%d among violations\n", r.RootCausePoint, r.RootCauseRank)
		fmt.Fprintln(w, "  top violations (ER-reconstructed execution):")
		for i, v := range r.ViolationsER {
			if i >= 5 {
				break
			}
			fmt.Fprintf(w, "    %d. %-24s %s (support %d)\n", i+1, v.Point, v.Desc, v.Confidence)
		}
	}
	fmt.Fprintln(w, "\n(paper: Daikon identifies the same root causes from the ER-reconstructed")
	fmt.Fprintln(w, " execution as from the failing test case directly)")
}

// MultiThreadedRow summarizes the §3.4 reconstruction check: every
// multithreaded bug reconstructs under its recorded coarse
// interleaving.
type MultiThreadedRow struct {
	App        string
	Threads    int
	Chunks     int64
	Reproduced bool
	Verified   bool
	Occur      int
}

// RunMT re-verifies the multithreaded reconstructions and reports
// schedule statistics.
func RunMT() ([]MultiThreadedRow, error) {
	var rows []MultiThreadedRow
	for _, a := range apps.All() {
		if !a.MT {
			continue
		}
		mod, err := a.Module()
		if err != nil {
			return nil, err
		}
		res := vm.New(mod, vm.Config{Input: a.Failing(), Seed: a.Seed}).Run("main")
		rep, err := core.Reproduce(core.Config{
			Module:        mod,
			Gen:           &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
			Symex:         symex.Options{QueryBudget: a.QueryBudget, MaxInstrs: 50_000_000},
			MaxIterations: 12,
		})
		row := MultiThreadedRow{
			App:     a.Name,
			Threads: res.Stats.Threads,
			Chunks:  res.Stats.Chunks,
		}
		if err == nil {
			row.Reproduced = rep.Reproduced
			row.Verified = rep.Verified
			row.Occur = rep.Occurrences
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMT prints the multithreaded summary.
func RenderMT(w io.Writer, rows []MultiThreadedRow) {
	header := []string{"Application", "Threads", "Sched chunks", "Reproduced", "Verified", "#Occur"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%d", r.Chunks),
			fmt.Sprintf("%v", r.Reproduced),
			fmt.Sprintf("%v", r.Verified),
			fmt.Sprintf("%d", r.Occur),
		})
	}
	table(w, header, out)
}
