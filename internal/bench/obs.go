// The observability experiment (erbench -exp obs): the price and the
// payoff of the cluster-wide observability layer, in three phases.
//
// Phase A runs the full Table 1 corpus through the fleet twice — once
// with every observability hook disabled (nil registry, tracer,
// journal, accountant: the nil-receiver fast paths) and once with all
// of them live — and gates on 13/13 verdict parity plus an aggregate
// wall-clock overhead under the budget (default 5%). The enabled run
// also exercises the recording-overhead accountant end to end: every
// production run's wall time lands in the ledger via prod.Machine,
// every rollout's recording-set cost via the fleet.
//
// Phase B is a deterministic budget-gate smoke: a synthetic ledger
// with a known-overbudget instrumented version must trip the SLO gate
// exactly and raise the journal alert.
//
// Phase C runs the corpus through the in-process multi-node cluster
// (coordinator + N triage nodes over loopback HTTP, per-node tracers
// on) and checks that every resolved bucket yields one stitched
// ingest-through-resolve timeline whose remote replay subtree carries
// the bucket's trace id across the process boundary — then reopens
// the coordinator's WAL and checks the recovered skeletons still
// render ingest-through-resolve after the restart.

package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"execrecon/internal/cluster"
	"execrecon/internal/fleet"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
)

// ObsOptions configures the observability experiment.
type ObsOptions struct {
	// Nodes is the cluster phase's triage-node count (default 2 — the
	// timeline-stitching smoke needs at least two tracer domains).
	Nodes int
	// WorkersPerNode is each node's concurrent-lease budget
	// (default 2).
	WorkersPerNode int
	// MachinesPerApp, Pace, Only as in FleetExpOptions.
	MachinesPerApp int
	Pace           time.Duration
	Only           []string
	// Trials is the Phase A wall-time trial count per mode; the
	// reported time is the minimum (default 3, matching E16 — single
	// fleet runs are scheduler-noise dominated).
	Trials int
	// Log receives progress lines.
	Log io.Writer
}

// ObsBucketRow compares one app's fleet verdict with observability
// off versus on.
type ObsBucketRow struct {
	App string `json:"app"`

	OffReproduced bool `json:"off_reproduced"`
	OffVerified   bool `json:"off_verified"`
	OnReproduced  bool `json:"on_reproduced"`
	OnVerified    bool `json:"on_verified"`

	// VerdictMatch: both modes agree on Reproduced and Verified — the
	// correctness gate (observability must be observation-only).
	VerdictMatch bool `json:"verdict_match"`
}

// TimelineCheck is one bucket timeline's completeness verdict.
type TimelineCheck struct {
	App     string `json:"app"`
	Key     uint64 `json:"key"`
	TraceID string `json:"trace_id"`
	State   string `json:"state"`

	Events int `json:"events"`
	Leases int `json:"leases"`

	// HasIngest/HasResolve: the lifecycle endpoints are on the tree.
	// HasReplay: a lease window carries the remote replay subtree.
	// Stitched: that subtree joins the bucket's trace (same trace id,
	// parented on the bucket root span) — the cross-process proof.
	HasIngest  bool `json:"has_ingest"`
	HasResolve bool `json:"has_resolve"`
	HasReplay  bool `json:"has_replay"`
	Stitched   bool `json:"stitched"`

	Complete bool `json:"complete"`
}

// ObsResult aggregates the experiment.
type ObsResult struct {
	Rows []ObsBucketRow `json:"rows"`
	// AllVerdictsMatch reports whether every bucket resolved
	// identically in both Phase A modes.
	AllVerdictsMatch bool `json:"all_verdicts_match"`
	// OffElapsed/OnElapsed are the Phase A fleet wall times; their
	// relative delta is the headline overhead.
	OffElapsed time.Duration `json:"off_elapsed_ns"`
	OnElapsed  time.Duration `json:"on_elapsed_ns"`

	// JournalEvents is the enabled fleet run's emitted event count
	// (the fleet journals only failure paths, so 0 on a healthy run);
	// ClusterJournalEvents is the Phase C coordinator's count (the
	// coordinator journals every lifecycle edge, so it must be > 0).
	// AccountedRuns/OverheadRows/RecordingBytes summarize the enabled
	// run's recording-overhead ledger.
	JournalEvents        uint64 `json:"journal_events"`
	ClusterJournalEvents uint64 `json:"cluster_journal_events"`
	OverheadRows         int    `json:"overhead_rows"`
	AccountedRuns        uint64 `json:"accounted_runs"`
	RecordingBytes       int64  `json:"recording_bytes"`

	// GateBreaches/GateAlerted are the Phase B synthetic budget-gate
	// smoke: the known-overbudget version must latch exactly one
	// breach and raise the journal alert.
	GateBreaches uint64 `json:"gate_breaches"`
	GateAlerted  bool   `json:"gate_alerted"`

	// Nodes is the cluster phase's node count; Timelines its
	// per-bucket completeness checks; Redispatched its re-dispatch
	// count (timelines must survive them).
	Nodes             int             `json:"nodes"`
	Timelines         []TimelineCheck `json:"timelines"`
	TimelinesComplete bool            `json:"timelines_complete"`
	Redispatched      int64           `json:"redispatched"`

	// RestartTimelines re-checks the same buckets after the
	// coordinator's WAL is reopened by a fresh coordinator — the
	// restart-survival gate (point events are not replayed, so the
	// check relaxes to the durable skeleton: ingest, final replay
	// span, resolution).
	RestartTimelines []TimelineCheck `json:"restart_timelines"`
	RestartComplete  bool            `json:"restart_complete"`
}

// OverheadPct is the Phase A enabled-over-disabled wall-time delta in
// percent.
func (r *ObsResult) OverheadPct() float64 {
	if r.OffElapsed <= 0 {
		return 0
	}
	return 100 * (float64(r.OnElapsed) - float64(r.OffElapsed)) / float64(r.OffElapsed)
}

// obsFleetRun is one Phase A fleet run; a nil registry means the
// disabled mode (journal/tracer/accountant nil too).
func obsFleetRun(only []string, opts ObsOptions, reg *telemetry.Registry,
	journal *telemetry.Journal, overhead *telemetry.Overhead) (*fleet.Result, error) {
	fapps, err := fleetApps(only)
	if err != nil {
		return nil, err
	}
	fo := fleet.Options{
		MachinesPerApp: opts.MachinesPerApp,
		Pace:           opts.Pace,
		Log:            opts.Log,
	}
	if reg != nil {
		fo.Telemetry = reg
		fo.Tracer = telemetry.NewTracer(0)
		fo.Journal = journal
		fo.Overhead = overhead
	}
	return fleet.Run(fapps, fo)
}

// checkTimeline validates one stitched bucket timeline. Restart-mode
// checks only the durable skeleton: recovery replays the ingest event
// and the final lease/replay span from the WAL, but not the
// intermediate point events (archive, rollout, resolve), so the
// resolution is checked via ResolvedAt instead of the resolve event.
func checkTimeline(tl cluster.BucketTimeline, restart bool) TimelineCheck {
	tc := TimelineCheck{
		App:     tl.App,
		Key:     tl.Key,
		TraceID: tl.TraceID,
		State:   tl.State,
	}
	rootSpan := tl.Root.SpanID
	for _, ch := range tl.Root.Children {
		switch ch.Name {
		case "ingest":
			tc.HasIngest = true
			tc.Events++
		case "lease":
			tc.Leases++
			for _, r := range ch.Children {
				if r.Name != "replay" {
					continue
				}
				tc.HasReplay = true
				if r.TraceID == tl.TraceID && r.ParentID == rootSpan {
					tc.Stitched = true
				}
			}
		case "resolve":
			tc.HasResolve = true
			tc.Events++
		default:
			tc.Events++
		}
	}
	resolved := tl.State == "resolved" && !tl.ResolvedAt.IsZero()
	validTrace := tl.TraceID != "" && tl.TraceID != "0000000000000000"
	ends := tc.HasResolve
	if restart {
		ends = true // point events are not durable; ResolvedAt is
	}
	tc.Complete = validTrace && resolved && tc.HasIngest && ends &&
		tc.Leases > 0 && tc.HasReplay && tc.Stitched
	return tc
}

// RunObs runs the three observability phases: the on/off fleet parity
// and overhead comparison, the synthetic budget-gate smoke, and the
// multi-node timeline-stitching run with its WAL-restart re-check.
func RunObs(opts ObsOptions) (*ObsResult, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 2
	}
	if opts.WorkersPerNode <= 0 {
		opts.WorkersPerNode = 2
	}
	if opts.MachinesPerApp <= 0 {
		opts.MachinesPerApp = 2
	}
	if opts.Pace == 0 {
		opts.Pace = 100 * time.Millisecond
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	res := &ObsResult{AllVerdictsMatch: true, Nodes: opts.Nodes}

	// Phase A: the corpus with the observability layer off and on,
	// interleaved off/on per trial so slow machine-load drift hits
	// both modes alike. Wall times keep the minimum of opts.Trials
	// runs per mode (E16's protocol): one fleet run is paced in
	// 100ms ticks and scheduler-noise dominated, and the minimum is
	// the least-perturbed sample of each mode. Each enabled trial
	// gets a fresh registry/journal/ledger so the reported ledger
	// describes exactly the kept (fastest) run.
	var off, on *fleet.Result
	var journal *telemetry.Journal
	var overhead *telemetry.Overhead
	for t := 0; t < opts.Trials; t++ {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "obs: phase A: off/on fleet pair (trial %d/%d)\n", t+1, opts.Trials)
		}
		r, err := obsFleetRun(opts.Only, opts, nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("obs: disabled fleet run: %w", err)
		}
		if off == nil || r.Elapsed < off.Elapsed {
			off = r
		}
		treg := telemetry.New()
		tj := telemetry.NewJournal(telemetry.JournalOptions{})
		tj.RegisterMetrics(treg)
		tov := telemetry.NewOverhead(telemetry.OverheadOptions{Journal: tj, Registry: treg})
		r, err = obsFleetRun(opts.Only, opts, treg, tj, tov)
		if err != nil {
			return nil, fmt.Errorf("obs: enabled fleet run: %w", err)
		}
		if on == nil || r.Elapsed < on.Elapsed {
			on, journal, overhead = r, tj, tov
		}
	}
	res.OffElapsed = off.Elapsed
	res.OnElapsed = on.Elapsed
	res.JournalEvents = journal.Emitted()
	for _, row := range overhead.Snapshot() {
		res.OverheadRows++
		res.AccountedRuns += row.Runs
		res.RecordingBytes += row.CostBytes
	}

	onBy := make(map[string]fleet.BucketResult, len(on.Buckets))
	for _, b := range on.Buckets {
		onBy[b.App] = b
	}
	for _, b := range off.Buckets {
		row := ObsBucketRow{App: b.App}
		if b.Report != nil {
			row.OffReproduced = b.Report.Reproduced
			row.OffVerified = b.Report.Verified
		}
		ob, ok := onBy[b.App]
		if ok && ob.Report != nil {
			row.OnReproduced = ob.Report.Reproduced
			row.OnVerified = ob.Report.Verified
		}
		row.VerdictMatch = ok &&
			row.OffReproduced == row.OnReproduced &&
			row.OffVerified == row.OnVerified
		if !row.VerdictMatch {
			res.AllVerdictsMatch = false
		}
		res.Rows = append(res.Rows, row)
	}
	if len(off.Buckets) != len(on.Buckets) {
		res.AllVerdictsMatch = false
	}

	// Phase B: deterministic budget-gate smoke. Version 1 runs at
	// twice the baseline mean against a 5% budget — the gate must
	// latch exactly once and the alert must reach the journal.
	gj := telemetry.NewJournal(telemetry.JournalOptions{})
	gate := telemetry.NewOverhead(telemetry.OverheadOptions{BudgetPct: 5, Journal: gj})
	for i := 0; i < 16; i++ {
		gate.RecordRun("gate-app", 0, false, time.Millisecond)
		gate.RecordRun("gate-app", 1, true, 2*time.Millisecond)
	}
	res.GateBreaches = gate.Breaches()
	for _, ev := range gj.Recent(telemetry.LevelError, 8) {
		if ev.Component == "overhead" {
			res.GateAlerted = true
		}
	}

	// Phase C: the multi-node cluster with per-node tracers; every
	// resolved bucket must stitch into one complete timeline.
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "obs: phase C: %d-node cluster with node tracers\n", opts.Nodes)
	}
	dir, err := os.MkdirTemp("", "er-obs-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fapps, err := fleetApps(opts.Only)
	if err != nil {
		return nil, err
	}
	creg := telemetry.New()
	cjournal := telemetry.NewJournal(telemetry.JournalOptions{})
	cjournal.RegisterMetrics(creg)
	coverhead := telemetry.NewOverhead(telemetry.OverheadOptions{Journal: cjournal, Registry: creg})
	hres, err := cluster.RunHarness(cluster.HarnessOptions{
		Apps:           fapps,
		Nodes:          opts.Nodes,
		WorkersPerNode: opts.WorkersPerNode,
		Dir:            dir,
		MachinesPerApp: opts.MachinesPerApp,
		Pace:           opts.Pace,
		Telemetry:      creg,
		Journal:        cjournal,
		Overhead:       coverhead,
		NodeTracers:    true,
		Log:            opts.Log,
	})
	if err != nil {
		return nil, fmt.Errorf("obs: cluster run: %w", err)
	}
	res.Redispatched = hres.Cluster.Redispatched
	res.ClusterJournalEvents = cjournal.Emitted()
	res.TimelinesComplete = len(hres.Timelines) > 0
	for _, tl := range hres.Timelines {
		tc := checkTimeline(tl, false)
		res.Timelines = append(res.Timelines, tc)
		if !tc.Complete {
			res.TimelinesComplete = false
		}
	}

	// Restart: reopen the same WAL with a fresh coordinator and check
	// the recovered skeletons still render ingest-through-resolve.
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		return nil, fmt.Errorf("obs: reopen store: %w", err)
	}
	defer store.Close()
	coord, err := cluster.NewCoordinator(fapps, cluster.CoordinatorOptions{
		Fleet:   fleet.Options{MachinesPerApp: opts.MachinesPerApp, Pace: opts.Pace},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
	})
	if err != nil {
		return nil, fmt.Errorf("obs: coordinator restart: %w", err)
	}
	restart := coord.Timelines()
	coord.Close()
	res.RestartComplete = len(restart) > 0
	for _, tl := range restart {
		tc := checkTimeline(tl, true)
		res.RestartTimelines = append(res.RestartTimelines, tc)
		if !tc.Complete {
			res.RestartComplete = false
		}
	}
	return res, nil
}

// Pass reports whether every gate held: verdict parity, the budget
// gate latching, and timeline completeness before and after restart.
// (The overhead budget itself is erbench's -max-overhead gate.)
func (r *ObsResult) Pass() bool {
	return r.AllVerdictsMatch &&
		r.GateBreaches == 1 && r.GateAlerted &&
		r.TimelinesComplete && r.RestartComplete
}

// RenderObs prints the parity table, the ledger and gate summary, and
// the timeline completeness checks.
func RenderObs(w io.Writer, r *ObsResult) {
	header := []string{"Application-BugID", "Off", "On", "Verdict"}
	verdict := func(rep, ver bool) string {
		switch {
		case rep && ver:
			return "reproduced+verified"
		case rep:
			return "reproduced"
		default:
			return "not reproduced"
		}
	}
	var rows [][]string
	for _, row := range r.Rows {
		match := "match"
		if !row.VerdictMatch {
			match = "MISMATCH"
		}
		rows = append(rows, []string{
			row.App,
			verdict(row.OffReproduced, row.OffVerified),
			verdict(row.OnReproduced, row.OnVerified),
			match,
		})
	}
	table(w, header, rows)
	fmt.Fprintf(w, "\nfleet wall time: off %v vs on %v (%+.2f%% overhead); verdicts identical: %v\n",
		r.OffElapsed.Round(time.Millisecond), r.OnElapsed.Round(time.Millisecond),
		r.OverheadPct(), r.AllVerdictsMatch)
	fmt.Fprintf(w, "journal: %d fleet events (healthy fleets are quiet), %d cluster events; overhead ledger: %d cells, %d runs accounted, %dB recording cost\n",
		r.JournalEvents, r.ClusterJournalEvents, r.OverheadRows, r.AccountedRuns, r.RecordingBytes)
	gate := "FAILED"
	if r.GateBreaches == 1 && r.GateAlerted {
		gate = "ok"
	}
	fmt.Fprintf(w, "budget gate smoke: %d breach(es), journal alert %v -> %s\n",
		r.GateBreaches, r.GateAlerted, gate)

	fmt.Fprintf(w, "\ntimeline stitching (%d nodes, %d redispatches):\n", r.Nodes, r.Redispatched)
	th := []string{"Bucket", "Trace", "State", "Leases", "Replay", "Stitched", "Complete"}
	tlRows := func(checks []TimelineCheck) [][]string {
		var out [][]string
		for _, tc := range checks {
			out = append(out, []string{
				fmt.Sprintf("%s/%#x", tc.App, tc.Key),
				tc.TraceID,
				tc.State,
				fmt.Sprintf("%d", tc.Leases),
				fmt.Sprintf("%v", tc.HasReplay),
				fmt.Sprintf("%v", tc.Stitched),
				fmt.Sprintf("%v", tc.Complete),
			})
		}
		return out
	}
	table(w, th, tlRows(r.Timelines))
	fmt.Fprintf(w, "all timelines complete: %v\n", r.TimelinesComplete)
	fmt.Fprintf(w, "\nafter coordinator WAL restart (%d recovered):\n", len(r.RestartTimelines))
	table(w, th, tlRows(r.RestartTimelines))
	fmt.Fprintf(w, "all recovered timelines complete: %v\n", r.RestartComplete)
}
