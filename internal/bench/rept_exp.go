package bench

import (
	"fmt"
	"io"

	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/rept"
	"execrecon/internal/vm"
)

// ReptRow is one point of the REPT accuracy-vs-trace-length
// comparison (§2.3/§5.2: beyond ~100 K instructions 15-60% of values
// are incorrectly recovered).
type ReptRow struct {
	Iterations    int
	TraceLen      int
	Writes        int
	CorrectPct    float64
	IncorrectPct  float64
	UnknownPct    float64
	OldestPct     float64 // correct fraction among the oldest 1000 writes
	RecoverablePc float64 // correct / (correct + incorrect): trustworthiness
}

// reptProgram is a single-frame compute kernel: a rolling hash over a
// table with data-dependent updates. Long traces overwrite registers
// and memory many times, destroying the information reverse recovery
// needs.
const reptProgram = `
int tbl[64];
func main() int {
	int n = input32("n");
	if (n < 0 || n > 2000000) { return 0; }
	int x = input32("x0");  // unknown seed: not forward-recoverable
	int i = 0;
	while (i < n) {
		int d = tbl[(i * 7) & 63];   // load: REPT guesses from the dump
		x = x + d + 1;               // invertible only when d is known
		tbl[(i * 13) & 63] = x;      // stores clobber older dump state
		if ((x & 1) == 1) { x = x + 2; }
		i = i + 1;
	}
	int z = x & 0;
	return 100 / z; // divide-by-zero failure ends the trace
}`

// RunReptAccuracy measures REPT-style recovery accuracy as the trace
// length grows.
func RunReptAccuracy(lengths []int) ([]ReptRow, error) {
	if len(lengths) == 0 {
		lengths = []int{50, 200, 1000, 5000, 20000, 100000}
	}
	mod, err := minc.Compile("rept-kernel", reptProgram)
	if err != nil {
		return nil, err
	}
	var rows []ReptRow
	for _, n := range lengths {
		ring := pt.NewRing(pt.DefaultRingSize)
		enc := pt.NewEncoder(ring)
		var truth []uint64
		cfg := vm.Config{
			Input:  vm.NewWorkload().Add("n", uint64(n)).Add("x0", 9731),
			Tracer: enc,
			OnRegWrite: func(fn string, id int32, dst int, val uint64) {
				if fn == "main" {
					truth = append(truth, val)
				}
			},
		}
		res := vm.New(mod, cfg).Run("main")
		if res.Failure == nil || res.Dump == nil {
			return nil, fmt.Errorf("bench: rept kernel did not fail")
		}
		enc.Finish()
		tr, err := pt.Decode(ring)
		if err != nil {
			return nil, err
		}
		rec, err := rept.Recover(mod, "main", tr, res.Dump, res.Failure.InstrID, truth)
		if err != nil {
			return nil, err
		}
		row := ReptRow{
			Iterations:   n,
			TraceLen:     rec.TraceLen,
			Writes:       rec.Writes,
			CorrectPct:   100 * rec.CorrectFrac(),
			IncorrectPct: 100 * rec.IncorrectFrac(),
		}
		row.UnknownPct = 100 - row.CorrectPct - row.IncorrectPct
		if rec.WritesOldest > 0 {
			row.OldestPct = 100 * float64(rec.CorrectOldest) / float64(rec.WritesOldest)
		}
		if rec.Correct+rec.Incorrect > 0 {
			row.RecoverablePc = 100 * float64(rec.Correct) / float64(rec.Correct+rec.Incorrect)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRept prints the accuracy table.
func RenderRept(w io.Writer, rows []ReptRow) {
	header := []string{"Loop iters", "Trace instrs", "Reg writes", "Correct", "Incorrect", "Oldest-1k correct"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Iterations),
			fmt.Sprintf("%d", r.TraceLen),
			fmt.Sprintf("%d", r.Writes),
			fmt.Sprintf("%.1f%%", r.CorrectPct),
			fmt.Sprintf("%.1f%%", r.IncorrectPct),
			fmt.Sprintf("%.1f%%", r.OldestPct),
		})
	}
	table(w, header, out)
	fmt.Fprintln(w, "\n(paper: REPT mis-recovers 15-60% of values beyond ~100K instructions,")
	fmt.Fprintln(w, " and recovered-but-wrong values are indistinguishable from correct ones)")
}
