package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/symex"
)

// SliceOptions configures the failure-slice ablation.
type SliceOptions struct {
	// QueryBudget is the per-query solver budget (0 = bench default).
	QueryBudget int64
	// Only restricts the run to the named apps (nil = all).
	Only []string
	// Log receives progress lines.
	Log io.Writer
}

// SliceRow compares one app's full ER reproduction with every traced
// instruction dispatched symbolically versus slice-pruned shepherding
// (instructions outside the static backward failure slice execute
// natively).
type SliceRow struct {
	App string

	// Full (baseline) reproduction: everything symbolic.
	FullSym        int64
	FullSymexTime  time.Duration
	FullOccur      int
	FullReproduced bool
	FullVerified   bool

	// Slice-pruned reproduction.
	SlicedSym        int64
	SlicedConc       int64
	SlicedSymexTime  time.Duration
	SlicedOccur      int
	SlicedReproduced bool
	SlicedVerified   bool

	// VerdictMatch: both modes agree on Reproduced and Verified.
	VerdictMatch bool
	// SitesMatch: both modes selected identical recording sites in
	// every stall iteration — the key-selection parity gate (the slice
	// must change *how* constraints are built, never *which* values
	// get recorded beyond statically deducible drops; deducible drops
	// are validated separately by the keyselect tests, so the bench
	// compares the post-drop sets of the sliced run against the full
	// run re-filtered the same way — in practice both pipelines run
	// the same deducibility pass, so the sequences must be equal).
	SitesMatch bool
	FailReason string
}

// SymReduction is the full/sliced symbolic-step ratio — how many times
// fewer instructions the shepherded interpreter had to dispatch
// through the symbolic machinery thanks to the slice.
func (r SliceRow) SymReduction() float64 {
	if r.SlicedSym <= 0 {
		return 0
	}
	return float64(r.FullSym) / float64(r.SlicedSym)
}

// ConcPct is the share of the sliced run's shepherded instructions
// executed natively.
func (r SliceRow) ConcPct() float64 {
	total := r.SlicedSym + r.SlicedConc
	if total == 0 {
		return 0
	}
	return 100 * float64(r.SlicedConc) / float64(total)
}

// SliceResult aggregates the ablation.
type SliceResult struct {
	Rows []SliceRow
	// TotalFullSym/TotalSlicedSym sum symbolic dispatches across apps.
	TotalFullSym   int64
	TotalSlicedSym int64
	// MeanReduction is the mean of the per-app full/sliced
	// symbolic-step ratios (the experiment's headline number).
	MeanReduction float64
	// AllParity reports whether every app matched verdicts AND
	// recording-site sequences across the two modes.
	AllParity bool
}

// sliceRun drives one full ER reproduction with or without the static
// failure slice. It mirrors core.Reproduce but keeps hold of the
// Pipeline, matching the other ablations' structure.
func sliceRun(a *apps.App, budget int64, staticSlice bool, log io.Writer) (*core.Report, error) {
	mod, err := a.Module()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Module:      mod,
		Symex:       symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		StaticSlice: staticSlice,
		Log:         log,
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed}}
	for !p.Done() {
		occ, err := src.Next(p.Request())
		if err != nil {
			return p.Report(), err
		}
		if _, err := p.Feed(occ); err != nil {
			return p.Report(), err
		}
	}
	return p.Report(), p.Err()
}

// sameSites reports whether two reproduction reports selected
// identical recording-site sequences: the same number of stall
// iterations, and in each, the same sites in the same order.
func sameSites(a, b *core.Report) bool {
	var sa, sb [][]symex.SiteKey
	for _, it := range a.Iterations {
		if it.Sites != nil {
			sa = append(sa, it.Sites)
		}
	}
	for _, it := range b.Iterations {
		if it.Sites != nil {
			sb = append(sb, it.Sites)
		}
	}
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if len(sa[i]) != len(sb[i]) {
			return false
		}
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				return false
			}
		}
	}
	return true
}

// RunSlice reproduces each Table 1 bug twice — full symbolic
// shepherding, then slice-pruned — and compares symbolic instruction
// counts, symbex time, reproduction verdicts, and the recording sites
// each stall iteration selected.
func RunSlice(opts SliceOptions) (*SliceResult, error) {
	res := &SliceResult{AllParity: true}
	var sumRatio float64
	var nRatio int
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		budget := opts.QueryBudget
		if budget == 0 {
			budget = DefaultQueryBudget
		}
		row := SliceRow{App: a.Name}

		full, err := sliceRun(a, budget, false, opts.Log)
		if err != nil && full == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllParity = false
			continue
		}
		row.FullSymexTime = full.TotalSymexTime
		row.FullOccur = full.Occurrences
		row.FullReproduced = full.Reproduced
		row.FullVerified = full.Verified
		for _, it := range full.Iterations {
			row.FullSym += it.SymSteps
		}

		sliced, err := sliceRun(a, budget, true, opts.Log)
		if err != nil && sliced == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllParity = false
			continue
		}
		row.SlicedSymexTime = sliced.TotalSymexTime
		row.SlicedOccur = sliced.Occurrences
		row.SlicedReproduced = sliced.Reproduced
		row.SlicedVerified = sliced.Verified
		for _, it := range sliced.Iterations {
			row.SlicedSym += it.SymSteps
			row.SlicedConc += it.ConcSteps
		}

		row.VerdictMatch = row.FullReproduced == row.SlicedReproduced &&
			row.FullVerified == row.SlicedVerified
		row.SitesMatch = sameSites(full, sliced)
		if !row.VerdictMatch || !row.SitesMatch {
			res.AllParity = false
		}
		res.TotalFullSym += row.FullSym
		res.TotalSlicedSym += row.SlicedSym
		if r := row.SymReduction(); r > 0 {
			sumRatio += r
			nRatio++
		}
		res.Rows = append(res.Rows, row)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "slice: %s full=%d sym, sliced=%d sym + %d conc (%.2fx, %.0f%% native) verdict=%v sites=%v\n",
				a.Name, row.FullSym, row.SlicedSym, row.SlicedConc,
				row.SymReduction(), row.ConcPct(), row.VerdictMatch, row.SitesMatch)
		}
	}
	if nRatio > 0 {
		res.MeanReduction = sumRatio / float64(nRatio)
	}
	return res, nil
}

// RenderSlice prints the ablation in a table plus the aggregate
// verdict line.
func RenderSlice(w io.Writer, res *SliceResult) {
	header := []string{"Application-BugID", "Full Sym", "Sliced Sym", "Native", "Reduction", "Sliced Time", "Verdict", "Sites"}
	var rows [][]string
	for _, r := range res.Rows {
		verdict := "match"
		if !r.VerdictMatch {
			verdict = "MISMATCH"
		}
		if r.FailReason != "" {
			verdict = "ERROR: " + r.FailReason
		}
		sites := "match"
		if !r.SitesMatch {
			sites = "MISMATCH"
		}
		rows = append(rows, []string{
			r.App,
			fmt.Sprintf("%d", r.FullSym),
			fmt.Sprintf("%d", r.SlicedSym),
			fmt.Sprintf("%.0f%%", r.ConcPct()),
			fmt.Sprintf("%.2fx", r.SymReduction()),
			r.SlicedSymexTime.Round(time.Microsecond).String(),
			verdict,
			sites,
		})
	}
	table(w, header, rows)
	fmt.Fprintf(w, "\nsymbolic dispatches: full %d vs sliced %d; mean per-app reduction %.2fx; verdict+site parity: %v\n",
		res.TotalFullSym, res.TotalSlicedSym, res.MeanReduction, res.AllParity)
}
