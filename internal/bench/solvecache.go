package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/solver"
	"execrecon/internal/symex"
)

// SolveCacheOptions configures the solver-session ablation.
type SolveCacheOptions struct {
	// QueryBudget is the per-query solver budget (0 = bench default).
	QueryBudget int64
	// Only restricts the run to the named apps (nil = all).
	Only []string
	// Portfolio, when > 1, adds a second comparison per app: the
	// incremental session solving sequentially vs racing each query
	// across that many CDCL workers. Unlike the fresh-vs-session half,
	// this pair runs under the app's stall-tuned budget (the Table 1
	// regime where queries give up and force reoccurrence waits) —
	// that is where racing buys wall clock, by converting budget-bound
	// Unknowns into definitive verdicts and so cutting whole
	// iterations. Gated on verdict parity across all configurations.
	Portfolio int
	// CubeVars additionally splits raced queries into 2^CubeVars cubes
	// in the portfolio configuration (0 = no cube workers).
	CubeVars int
	// Speculate additionally pre-solves the last stall's path
	// constraint during the portfolio configuration's reoccurrence
	// waits.
	Speculate bool
	// Pace is the simulated reoccurrence interval for the stall-budget
	// pair: occurrence i of a run is delivered no earlier than i×Pace
	// after the run starts, modeling a production failure that reoccurs
	// on a fixed cadence rather than on demand. The pair's end-to-end
	// times then measure what the paper measures — time to reproduction
	// including reoccurrence waits — so cutting occurrences, not raw
	// solver time, is what racing is paid to do (and what speculation's
	// overlap with the waits is worth). 0 = DefaultReoccurPace.
	Pace time.Duration
	// Log receives progress lines.
	Log io.Writer
}

// DefaultReoccurPace is the stall-budget pair's simulated reoccurrence
// interval. Production reoccurrence gaps are minutes to days; one
// second is small enough to keep the bench interactive while still
// dwarfing per-iteration compute, which is the regime the paper's
// deployment model assumes.
const DefaultReoccurPace = time.Second

// SolveCacheRow compares one app's full ER reproduction under
// fresh-per-query solving versus one persistent incremental session
// per pipeline.
type SolveCacheRow struct {
	App string

	// Fresh-solver (baseline) reproduction.
	FreshSolverTime time.Duration
	FreshSteps      int64
	FreshQueries    int64
	FreshOccur      int
	FreshReproduced bool
	FreshVerified   bool

	// Incremental-session reproduction.
	IncSolverTime time.Duration
	IncSteps      int64
	IncQueries    int64
	IncOccur      int
	IncReproduced bool
	IncVerified   bool

	// Session cache effectiveness.
	Session solver.IncStats

	// Sequential-vs-portfolio session reproductions under the app's
	// stall-tuned budget (all zero unless the ablation ran with
	// SolveCacheOptions.Portfolio > 1). The E2E fields are end-to-end
	// reproduction times with paced reoccurrence delivery — waits
	// included — the pair's headline metric.
	PortSeqTime       time.Duration
	PortSeqE2E        time.Duration
	PortSeqOccur      int
	PortSeqReproduced bool
	PortSeqVerified   bool
	PortSolverTime    time.Duration
	PortE2E           time.Duration
	PortOccur         int
	PortReproduced    bool
	PortVerified      bool
	// Portfolio carries the racing counters of the portfolio run's
	// session; Speculations/SpecHits its pre-solve outcomes (zero
	// unless Speculate).
	Portfolio    solver.PortfolioStats
	Speculations int
	SpecHits     int

	// VerdictMatch: all modes agree on Reproduced and Verified —
	// the correctness gate of the ablation.
	VerdictMatch bool
	FailReason   string
}

// Speedup is the fresh/incremental cumulative solver-time ratio.
func (r SolveCacheRow) Speedup() float64 {
	if r.IncSolverTime <= 0 {
		return 0
	}
	return float64(r.FreshSolverTime) / float64(r.IncSolverTime)
}

// ReusePct is the share of non-trivial constraints answered from the
// session cache without re-elimination or re-blasting.
func (r SolveCacheRow) ReusePct() float64 {
	if r.Session.ConstraintsSeen == 0 {
		return 0
	}
	return 100 * float64(r.Session.ConstraintsReused) / float64(r.Session.ConstraintsSeen)
}

// PortSpeedup is the sequential-session / portfolio-session end-to-end
// reproduction-time ratio under the stall-tuned budget — the wall
// clock bought by racing seeds, which is mostly the reoccurrence
// waits of the iterations they cut.
func (r SolveCacheRow) PortSpeedup() float64 {
	if r.PortE2E <= 0 {
		return 0
	}
	return float64(r.PortSeqE2E) / float64(r.PortE2E)
}

// SolveCacheResult aggregates the ablation.
type SolveCacheResult struct {
	Rows []SolveCacheRow
	// TotalFresh/TotalInc sum cumulative solver time across apps;
	// Speedup is their ratio (the experiment's headline number).
	TotalFresh time.Duration
	TotalInc   time.Duration
	// PortfolioWorkers echoes the requested racing width;
	// TotalPortSeq/TotalPort sum cumulative solver time and the E2E
	// variants end-to-end reproduction time (paced waits included) for
	// the stall-budget pair; Portfolio aggregates its racing counters
	// (all zero when the ablation ran without -portfolio).
	PortfolioWorkers int
	TotalPortSeq     time.Duration
	TotalPort        time.Duration
	TotalPortSeqE2E  time.Duration
	TotalPortE2E     time.Duration
	Portfolio        solver.PortfolioStats
	// AllVerdictsMatch reports whether every app reproduced (and
	// verified) identically in every mode run.
	AllVerdictsMatch bool
}

// Speedup is the aggregate fresh/incremental solver-time ratio.
func (r *SolveCacheResult) Speedup() float64 {
	if r.TotalInc <= 0 {
		return 0
	}
	return float64(r.TotalFresh) / float64(r.TotalInc)
}

// PortSpeedup is the aggregate sequential/portfolio end-to-end
// reproduction-time ratio under the stall-tuned budgets.
func (r *SolveCacheResult) PortSpeedup() float64 {
	if r.TotalPortE2E <= 0 {
		return 0
	}
	return float64(r.TotalPortSeqE2E) / float64(r.TotalPortE2E)
}

// solveCacheMode selects one of the ablation's configurations:
// fresh-per-query, sequential session, or portfolio session.
type solveCacheMode struct {
	incremental bool
	portfolio   int
	cubeVars    int
	speculate   bool
	// pace, when > 0, delays occurrence i until i×pace after the run
	// starts — the simulated production reoccurrence cadence.
	pace time.Duration
}

// solveCacheRun drives one full ER reproduction under the given mode,
// returning the report, (for sessions) the session's cumulative
// statistics, and the end-to-end wall clock including any paced
// reoccurrence waits. It mirrors core.Reproduce but keeps hold of the
// Pipeline so the session counters survive.
//
// Speculation is launched before the wait, exactly as a production
// driver would: the pre-solve goroutine gets the otherwise-dead wait
// time, and Feed joins it before touching the session.
func solveCacheRun(a *apps.App, budget int64, mode solveCacheMode, log io.Writer) (*core.Report, solver.IncStats, time.Duration, error) {
	mod, err := a.Module()
	if err != nil {
		return nil, solver.IncStats{}, 0, err
	}
	cfg := core.Config{
		Module:            mod,
		Symex:             symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		IncrementalSolver: mode.incremental,
		PortfolioWorkers:  mode.portfolio,
		PortfolioCubeVars: mode.cubeVars,
		Speculate:         mode.speculate,
		Log:               log,
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, solver.IncStats{}, 0, err
	}
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed}}
	start := time.Now()
	for n := 0; !p.Done(); n++ {
		p.Speculate() // no-op unless mode.speculate and a stall predicted a PC
		if mode.pace > 0 && n > 0 {
			// Occurrence n arrives at start+n×pace, however long the
			// analysis so far took: a failure in production reoccurs on
			// its own schedule, not the reconstruction's.
			if d := time.Until(start.Add(time.Duration(n) * mode.pace)); d > 0 {
				time.Sleep(d)
			}
		}
		occ, err := src.Next(p.Request())
		if err != nil {
			return p.Report(), p.SolverStats(), time.Since(start), err
		}
		if _, err := p.Feed(occ); err != nil {
			return p.Report(), p.SolverStats(), time.Since(start), err
		}
	}
	return p.Report(), p.SolverStats(), time.Since(start), p.Err()
}

// RunSolveCache reproduces each Table 1 bug twice — fresh solver per
// query, then one incremental session per pipeline — and compares
// cumulative solver time, abstract steps, and reproduction verdicts.
// With opts.Portfolio > 1 each bug is reproduced a third time through a
// portfolio session, adding the sequential-vs-raced wall-clock
// comparison under the same verdict-parity gate.
func RunSolveCache(opts SolveCacheOptions) (*SolveCacheResult, error) {
	res := &SolveCacheResult{AllVerdictsMatch: true}
	if opts.Portfolio > 1 {
		res.PortfolioWorkers = opts.Portfolio
	}
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		// Deliberately NOT the per-app stall-tuned budgets: those are
		// sized so that queries *give up* after a few thousand steps,
		// which caps both modes at budget×queries and turns the
		// comparison into one of give-up speed rather than solver
		// work. Like Fig. 5 (§5.2 runs with the solver timeout
		// disabled), the ablation uses the generous bench default so
		// every query runs to a real verdict and the measured time is
		// actual solving.
		budget := opts.QueryBudget
		if budget == 0 {
			budget = DefaultQueryBudget
		}
		row := SolveCacheRow{App: a.Name}

		fresh, _, _, err := solveCacheRun(a, budget, solveCacheMode{}, opts.Log)
		if err != nil && fresh == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllVerdictsMatch = false
			continue
		}
		row.FreshSolverTime = fresh.TotalSolverTime
		row.FreshOccur = fresh.Occurrences
		row.FreshReproduced = fresh.Reproduced
		row.FreshVerified = fresh.Verified
		for _, it := range fresh.Iterations {
			row.FreshQueries += it.Queries
			row.FreshSteps += it.SolverSteps
		}

		inc, st, _, err := solveCacheRun(a, budget, solveCacheMode{incremental: true}, opts.Log)
		if err != nil && inc == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllVerdictsMatch = false
			continue
		}
		row.IncSolverTime = inc.TotalSolverTime
		row.IncOccur = inc.Occurrences
		row.IncReproduced = inc.Reproduced
		row.IncVerified = inc.Verified
		for _, it := range inc.Iterations {
			row.IncQueries += it.Queries
			row.IncSteps += it.SolverSteps
		}
		row.Session = st

		row.VerdictMatch = row.FreshReproduced == row.IncReproduced &&
			row.FreshVerified == row.IncVerified

		if opts.Portfolio > 1 {
			// The racing comparison runs under the app's stall-tuned
			// budget — the regime where queries give up and the
			// reconstruction loops on reoccurrences. Racing pays off
			// exactly there: a diversified seed or cube finishing within
			// the limits the deterministic search exhausts turns a stall
			// iteration into progress, cutting both wall clock and
			// occurrence count. Under the generous bench budget nothing
			// ever stalls and racing is pure overhead.
			stallBudget := a.QueryBudget
			if stallBudget == 0 {
				stallBudget = budget
			}
			pace := opts.Pace
			if pace == 0 {
				pace = DefaultReoccurPace
			}
			seq, _, seqE2E, err := solveCacheRun(a, stallBudget,
				solveCacheMode{incremental: true, pace: pace}, opts.Log)
			if err != nil && seq == nil {
				row.FailReason = err.Error()
				res.Rows = append(res.Rows, row)
				res.AllVerdictsMatch = false
				continue
			}
			row.PortSeqTime = seq.TotalSolverTime
			row.PortSeqE2E = seqE2E
			row.PortSeqOccur = seq.Occurrences
			row.PortSeqReproduced = seq.Reproduced
			row.PortSeqVerified = seq.Verified

			port, pst, portE2E, err := solveCacheRun(a, stallBudget, solveCacheMode{
				incremental: true,
				portfolio:   opts.Portfolio,
				cubeVars:    opts.CubeVars,
				speculate:   opts.Speculate,
				pace:        pace,
			}, opts.Log)
			if err != nil && port == nil {
				row.FailReason = err.Error()
				res.Rows = append(res.Rows, row)
				res.AllVerdictsMatch = false
				continue
			}
			row.PortSolverTime = port.TotalSolverTime
			row.PortE2E = portE2E
			row.PortOccur = port.Occurrences
			row.PortReproduced = port.Reproduced
			row.PortVerified = port.Verified
			row.Portfolio = pst.Portfolio
			row.Speculations = port.Speculations
			row.SpecHits = port.SpecHits
			row.VerdictMatch = row.VerdictMatch &&
				row.PortSeqReproduced == row.PortReproduced &&
				row.PortSeqVerified == row.PortVerified
			res.TotalPortSeq += row.PortSeqTime
			res.TotalPort += row.PortSolverTime
			res.TotalPortSeqE2E += row.PortSeqE2E
			res.TotalPortE2E += row.PortE2E
			res.Portfolio.Merge(pst.Portfolio)
		}

		if !row.VerdictMatch {
			res.AllVerdictsMatch = false
		}
		res.TotalFresh += row.FreshSolverTime
		res.TotalInc += row.IncSolverTime
		res.Rows = append(res.Rows, row)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "solvecache: %s fresh=%v inc=%v speedup=%.2fx reuse=%.0f%% match=%v\n",
				a.Name, row.FreshSolverTime.Round(time.Microsecond),
				row.IncSolverTime.Round(time.Microsecond), row.Speedup(),
				row.ReusePct(), row.VerdictMatch)
			if opts.Portfolio > 1 {
				fmt.Fprintf(opts.Log, "solvecache: %s stall-budget e2e seq=%v (%d occ) portfolio=%v (%d occ) portspeedup=%.2fx races=%d wins(b/s/c)=%d/%d/%d\n",
					a.Name, row.PortSeqE2E.Round(time.Microsecond), row.PortSeqOccur,
					row.PortE2E.Round(time.Microsecond), row.PortOccur, row.PortSpeedup(),
					row.Portfolio.Races, row.Portfolio.BaseWins, row.Portfolio.SeedWins,
					row.Portfolio.CubeWins)
			}
		}
	}
	return res, nil
}

// RenderSolveCache prints the ablation in a table plus the aggregate
// verdict line. A portfolio run adds a second table comparing the
// session solving sequentially vs racing under the stall-tuned budget.
func RenderSolveCache(w io.Writer, res *SolveCacheResult) {
	header := []string{"Application-BugID", "Fresh Solver", "Incremental", "Speedup", "Reuse", "Fallbacks", "Verdict"}
	var rows [][]string
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.App,
			r.FreshSolverTime.Round(time.Microsecond).String(),
			r.IncSolverTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup()),
			fmt.Sprintf("%.0f%%", r.ReusePct()),
			fmt.Sprintf("%d", r.Session.FreshFallbacks),
			solveCacheVerdict(r),
		})
	}
	table(w, header, rows)
	fmt.Fprintf(w, "\ncumulative solver time: fresh %v vs incremental %v (%.2fx); verdicts identical: %v\n",
		res.TotalFresh.Round(time.Microsecond), res.TotalInc.Round(time.Microsecond),
		res.Speedup(), res.AllVerdictsMatch)

	if res.PortfolioWorkers > 1 {
		fmt.Fprintf(w, "\n-- portfolio racing under stall-tuned budgets, paced reoccurrences (%d workers) --\n", res.PortfolioWorkers)
		header = []string{"Application-BugID", "Sequential e2e", "Portfolio e2e", "PortSpd",
			"Occur seq/port", "Races", "Wins b/s/c", "Verdict"}
		rows = rows[:0]
		var seqOccur, portOccur int
		for _, r := range res.Rows {
			seqOccur += r.PortSeqOccur
			portOccur += r.PortOccur
			rows = append(rows, []string{
				r.App,
				r.PortSeqE2E.Round(time.Millisecond).String(),
				r.PortE2E.Round(time.Millisecond).String(),
				fmt.Sprintf("%.2fx", r.PortSpeedup()),
				fmt.Sprintf("%d/%d", r.PortSeqOccur, r.PortOccur),
				fmt.Sprintf("%d", r.Portfolio.Races),
				fmt.Sprintf("%d/%d/%d", r.Portfolio.BaseWins, r.Portfolio.SeedWins, r.Portfolio.CubeWins),
				solveCacheVerdict(r),
			})
		}
		table(w, header, rows)
		fmt.Fprintf(w, "\nportfolio (%d workers): e2e sequential %v vs raced %v (%.2fx); occurrences %d vs %d; races %d, wins base/seed/cube %d/%d/%d, unknowns %d, clauses shared/imported %d/%d\n",
			res.PortfolioWorkers,
			res.TotalPortSeqE2E.Round(time.Millisecond), res.TotalPortE2E.Round(time.Millisecond),
			res.PortSpeedup(), seqOccur, portOccur,
			res.Portfolio.Races, res.Portfolio.BaseWins,
			res.Portfolio.SeedWins, res.Portfolio.CubeWins, res.Portfolio.Unknowns,
			res.Portfolio.ClausesShared, res.Portfolio.ClausesImported)
		var specs, hits int
		for _, r := range res.Rows {
			specs += r.Speculations
			hits += r.SpecHits
		}
		if specs > 0 {
			fmt.Fprintf(w, "speculative pre-solve: %d launched, %d hit the next query's fast path\n", specs, hits)
		}
	}
}

func solveCacheVerdict(r SolveCacheRow) string {
	switch {
	case r.FailReason != "":
		return "ERROR: " + r.FailReason
	case !r.VerdictMatch:
		return "MISMATCH"
	}
	return "match"
}
