package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/solver"
	"execrecon/internal/symex"
)

// SolveCacheOptions configures the solver-session ablation.
type SolveCacheOptions struct {
	// QueryBudget is the per-query solver budget (0 = bench default).
	QueryBudget int64
	// Only restricts the run to the named apps (nil = all).
	Only []string
	// Log receives progress lines.
	Log io.Writer
}

// SolveCacheRow compares one app's full ER reproduction under
// fresh-per-query solving versus one persistent incremental session
// per pipeline.
type SolveCacheRow struct {
	App string

	// Fresh-solver (baseline) reproduction.
	FreshSolverTime time.Duration
	FreshSteps      int64
	FreshQueries    int64
	FreshOccur      int
	FreshReproduced bool
	FreshVerified   bool

	// Incremental-session reproduction.
	IncSolverTime time.Duration
	IncSteps      int64
	IncQueries    int64
	IncOccur      int
	IncReproduced bool
	IncVerified   bool

	// Session cache effectiveness.
	Session solver.IncStats

	// VerdictMatch: both modes agree on Reproduced and Verified —
	// the correctness gate of the ablation.
	VerdictMatch bool
	FailReason   string
}

// Speedup is the fresh/incremental cumulative solver-time ratio.
func (r SolveCacheRow) Speedup() float64 {
	if r.IncSolverTime <= 0 {
		return 0
	}
	return float64(r.FreshSolverTime) / float64(r.IncSolverTime)
}

// ReusePct is the share of non-trivial constraints answered from the
// session cache without re-elimination or re-blasting.
func (r SolveCacheRow) ReusePct() float64 {
	if r.Session.ConstraintsSeen == 0 {
		return 0
	}
	return 100 * float64(r.Session.ConstraintsReused) / float64(r.Session.ConstraintsSeen)
}

// SolveCacheResult aggregates the ablation.
type SolveCacheResult struct {
	Rows []SolveCacheRow
	// TotalFresh/TotalInc sum cumulative solver time across apps;
	// Speedup is their ratio (the experiment's headline number).
	TotalFresh time.Duration
	TotalInc   time.Duration
	// AllVerdictsMatch reports whether every app reproduced (and
	// verified) identically in both modes.
	AllVerdictsMatch bool
}

// Speedup is the aggregate fresh/incremental solver-time ratio.
func (r *SolveCacheResult) Speedup() float64 {
	if r.TotalInc <= 0 {
		return 0
	}
	return float64(r.TotalFresh) / float64(r.TotalInc)
}

// solveCacheRun drives one full ER reproduction with or without a
// persistent solver session, returning the report plus (for sessions)
// the session's cumulative statistics. It mirrors core.Reproduce but
// keeps hold of the Pipeline so the session counters survive.
func solveCacheRun(a *apps.App, budget int64, incremental bool, log io.Writer) (*core.Report, solver.IncStats, error) {
	mod, err := a.Module()
	if err != nil {
		return nil, solver.IncStats{}, err
	}
	cfg := core.Config{
		Module:            mod,
		Symex:             symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		IncrementalSolver: incremental,
		Log:               log,
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, solver.IncStats{}, err
	}
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed}}
	for !p.Done() {
		occ, err := src.Next(p.Request())
		if err != nil {
			return p.Report(), p.SolverStats(), err
		}
		if _, err := p.Feed(occ); err != nil {
			return p.Report(), p.SolverStats(), err
		}
	}
	return p.Report(), p.SolverStats(), p.Err()
}

// RunSolveCache reproduces each Table 1 bug twice — fresh solver per
// query, then one incremental session per pipeline — and compares
// cumulative solver time, abstract steps, and reproduction verdicts.
func RunSolveCache(opts SolveCacheOptions) (*SolveCacheResult, error) {
	res := &SolveCacheResult{AllVerdictsMatch: true}
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		// Deliberately NOT the per-app stall-tuned budgets: those are
		// sized so that queries *give up* after a few thousand steps,
		// which caps both modes at budget×queries and turns the
		// comparison into one of give-up speed rather than solver
		// work. Like Fig. 5 (§5.2 runs with the solver timeout
		// disabled), the ablation uses the generous bench default so
		// every query runs to a real verdict and the measured time is
		// actual solving.
		budget := opts.QueryBudget
		if budget == 0 {
			budget = DefaultQueryBudget
		}
		row := SolveCacheRow{App: a.Name}

		fresh, _, err := solveCacheRun(a, budget, false, opts.Log)
		if err != nil && fresh == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllVerdictsMatch = false
			continue
		}
		row.FreshSolverTime = fresh.TotalSolverTime
		row.FreshOccur = fresh.Occurrences
		row.FreshReproduced = fresh.Reproduced
		row.FreshVerified = fresh.Verified
		for _, it := range fresh.Iterations {
			row.FreshQueries += it.Queries
			row.FreshSteps += it.SolverSteps
		}

		inc, st, err := solveCacheRun(a, budget, true, opts.Log)
		if err != nil && inc == nil {
			row.FailReason = err.Error()
			res.Rows = append(res.Rows, row)
			res.AllVerdictsMatch = false
			continue
		}
		row.IncSolverTime = inc.TotalSolverTime
		row.IncOccur = inc.Occurrences
		row.IncReproduced = inc.Reproduced
		row.IncVerified = inc.Verified
		for _, it := range inc.Iterations {
			row.IncQueries += it.Queries
			row.IncSteps += it.SolverSteps
		}
		row.Session = st

		row.VerdictMatch = row.FreshReproduced == row.IncReproduced &&
			row.FreshVerified == row.IncVerified
		if !row.VerdictMatch {
			res.AllVerdictsMatch = false
		}
		res.TotalFresh += row.FreshSolverTime
		res.TotalInc += row.IncSolverTime
		res.Rows = append(res.Rows, row)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "solvecache: %s fresh=%v inc=%v speedup=%.2fx reuse=%.0f%% match=%v\n",
				a.Name, row.FreshSolverTime.Round(time.Microsecond),
				row.IncSolverTime.Round(time.Microsecond), row.Speedup(),
				row.ReusePct(), row.VerdictMatch)
		}
	}
	return res, nil
}

// RenderSolveCache prints the ablation in a table plus the aggregate
// verdict line.
func RenderSolveCache(w io.Writer, res *SolveCacheResult) {
	header := []string{"Application-BugID", "Fresh Solver", "Incremental", "Speedup", "Reuse", "Fallbacks", "Verdict"}
	var rows [][]string
	for _, r := range res.Rows {
		verdict := "match"
		if !r.VerdictMatch {
			verdict = "MISMATCH"
		}
		if r.FailReason != "" {
			verdict = "ERROR: " + r.FailReason
		}
		rows = append(rows, []string{
			r.App,
			r.FreshSolverTime.Round(time.Microsecond).String(),
			r.IncSolverTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", r.Speedup()),
			fmt.Sprintf("%.0f%%", r.ReusePct()),
			fmt.Sprintf("%d", r.Session.FreshFallbacks),
			verdict,
		})
	}
	table(w, header, rows)
	fmt.Fprintf(w, "\ncumulative solver time: fresh %v vs incremental %v (%.2fx); verdicts identical: %v\n",
		res.TotalFresh.Round(time.Microsecond), res.TotalInc.Round(time.Microsecond),
		res.Speedup(), res.AllVerdictsMatch)
}
