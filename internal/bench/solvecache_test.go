package bench_test

import (
	"strings"
	"testing"
	"time"

	"execrecon/internal/bench"
)

// TestSolveCachePortfolio runs the solver-session ablation's portfolio
// mode on a stall-heavy app subset: every app must reproduce with
// identical verdicts across all three configurations (fresh solver,
// sequential session, raced session), queries must actually race, and
// the renderer must surface the portfolio columns.
func TestSolveCachePortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("solvecache ablation runs full ER pipelines; skipped in -short")
	}
	only := []string{"SQLite-787fa71", "Nasm-2004-1287"}
	r, err := bench.RunSolveCache(bench.SolveCacheOptions{
		Only:      only,
		Portfolio: 3,
		CubeVars:  2,
		Speculate: true,
		Pace:      20 * time.Millisecond, // keep the paced waits test-sized
	})
	if err != nil {
		t.Fatalf("solvecache: %v", err)
	}
	if len(r.Rows) != len(only) {
		t.Fatalf("rows: %d, want %d", len(r.Rows), len(only))
	}
	if !r.AllVerdictsMatch {
		t.Error("verdict parity violated across solver configurations")
	}
	var races int64
	for _, row := range r.Rows {
		if !row.PortReproduced || !row.PortVerified {
			t.Errorf("%s: portfolio run reproduced=%v verified=%v (%s)",
				row.App, row.PortReproduced, row.PortVerified, row.FailReason)
		}
		if row.PortSolverTime <= 0 {
			t.Errorf("%s: portfolio run recorded no solver time", row.App)
		}
		if row.PortE2E <= 0 || row.PortSeqE2E <= 0 {
			t.Errorf("%s: end-to-end times not recorded (seq=%v port=%v)",
				row.App, row.PortSeqE2E, row.PortE2E)
		}
		if waits := time.Duration(row.PortSeqOccur-1) * 20 * time.Millisecond; row.PortSeqE2E < waits {
			t.Errorf("%s: sequential e2e %v shorter than its %d paced waits (%v)",
				row.App, row.PortSeqE2E, row.PortSeqOccur-1, waits)
		}
		races += row.Portfolio.Races
		if got := row.Portfolio.BaseWins + row.Portfolio.SeedWins +
			row.Portfolio.CubeWins + row.Portfolio.Unknowns; got != row.Portfolio.Races {
			t.Errorf("%s: race accounting: %d races, %d attributed", row.App, row.Portfolio.Races, got)
		}
	}
	if races == 0 {
		t.Error("no query raced despite portfolio workers")
	}
	if r.Portfolio.Races != races {
		t.Errorf("aggregate races %d != per-row sum %d", r.Portfolio.Races, races)
	}

	var sb strings.Builder
	bench.RenderSolveCache(&sb, r)
	out := sb.String()
	for _, want := range append([]string{"Portfolio", "PortSpd", "Races", "portfolio (3 workers)"}, only...) {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
