package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/symex"
)

// Table1Row mirrors one row of the paper's Table 1.
type Table1Row struct {
	App        string
	BugType    string
	MT         bool
	SrcLines   int
	Instrs     int64 // #Instr: dynamic instructions of the failing run
	Occur      int   // #Occur: failure occurrences needed
	SymbexTime time.Duration
	Reproduced bool
	Verified   bool
	FailReason string

	// Offline-cost extras (§5.3).
	GraphNodes int
	SelectTime time.Duration
	// RecordedBytes is the per-occurrence recording cost of the
	// final instrumentation.
	RecordedBytes int64
}

// Table1Options configures the Table 1 run.
type Table1Options struct {
	// QueryBudget is the solver-timeout analog (0 = default).
	QueryBudget int64
	// Only restricts the run to the named apps (nil = all 13).
	Only []string
	// Log receives progress lines.
	Log io.Writer
}

// RunTable1 reproduces every Table 1 bug through the full ER loop and
// reports the paper's columns.
func RunTable1(opts Table1Options) []Table1Row {
	var rows []Table1Row
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		rows = append(rows, runTable1App(a, opts))
	}
	return rows
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func runTable1App(a *apps.App, opts Table1Options) Table1Row {
	row := Table1Row{App: a.Name, BugType: a.BugType, MT: a.MT, SrcLines: a.SrcLines()}
	mod, err := a.Module()
	if err != nil {
		row.FailReason = err.Error()
		return row
	}
	budget := a.QueryBudget
	if budget == 0 {
		budget = opts.QueryBudget
	}
	if budget == 0 {
		budget = DefaultQueryBudget
	}
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Gen:    &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
		Symex:  symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		Log:    opts.Log,
	})
	if err != nil {
		row.FailReason = err.Error()
		if rep == nil {
			return row
		}
	}
	row.Instrs = rep.TraceInstrs
	row.Occur = rep.Occurrences
	row.SymbexTime = rep.TotalSymexTime
	row.Reproduced = rep.Reproduced
	row.Verified = rep.Verified
	for _, it := range rep.Iterations {
		if it.GraphNodes > row.GraphNodes {
			row.GraphNodes = it.GraphNodes
		}
		row.SelectTime += it.SelectTime
		if it.RecordingCost > 0 {
			row.RecordedBytes = it.RecordingCost
		}
	}
	return row
}

// RenderTable1 prints the rows in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	header := []string{"Application-BugID", "Bug Type", "MT", "LoC(minc)", "#Instr", "#Occur", "Symbex Time", "Reproduced"}
	var out [][]string
	for _, r := range rows {
		mt := "N"
		if r.MT {
			mt = "Y"
		}
		rep := "yes (verified)"
		if !r.Reproduced {
			rep = "NO: " + r.FailReason
		} else if !r.Verified {
			rep = "yes (unverified)"
		}
		out = append(out, []string{
			r.App, r.BugType, mt,
			fmt.Sprintf("%d", r.SrcLines),
			fmt.Sprintf("%d", r.Instrs),
			fmt.Sprintf("%d", r.Occur),
			r.SymbexTime.Round(time.Millisecond).String(),
			rep,
		})
	}
	table(w, header, out)
}

// RenderOffline prints the §5.3 offline-cost columns gathered during
// the Table 1 runs.
func RenderOffline(w io.Writer, rows []Table1Row) {
	header := []string{"Application-BugID", "Graph Nodes", "Selection Time", "Recorded B/occur"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.GraphNodes),
			r.SelectTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.RecordedBytes),
		})
	}
	table(w, header, out)
}
