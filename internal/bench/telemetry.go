// The telemetry overhead experiment: every Table 1 bug is reproduced
// twice — once with telemetry disabled (nil registry/tracer, the
// instrumentation's nil-check fast path) and once with a live
// registry plus span tracer attached — and the wall-clock delta is
// the price of observability. The acceptance budget is < 5%: the
// registry is touched once per iteration/stage, never per
// instruction, so the delta should be noise. The enabled runs also
// feed one shared registry whose er_core_stage_seconds histograms
// yield the corpus-wide per-stage latency summaries (p50/p90/p99)
// that erbench emits into its JSON artifact.

package bench

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
)

// TelemetryOptions configures the overhead experiment.
type TelemetryOptions struct {
	// QueryBudget is the per-query solver budget (0 = bench default).
	QueryBudget int64
	// Trials is the number of timed repetitions per mode; the minimum
	// is kept (default 3). Min-of-N suppresses scheduler noise the
	// same way the fig6 overhead runs do.
	Trials int
	// Only restricts the run to the named apps (nil = all).
	Only []string
	// Log receives progress lines.
	Log io.Writer
}

// TelemetryRow compares one app's reproduction with telemetry off
// versus on.
type TelemetryRow struct {
	App string `json:"app"`
	// Disabled/Enabled are min-of-Trials wall times for the full ER
	// reproduction in each mode.
	Disabled time.Duration `json:"disabled_ns"`
	Enabled  time.Duration `json:"enabled_ns"`

	DisabledReproduced bool `json:"disabled_reproduced"`
	DisabledVerified   bool `json:"disabled_verified"`
	EnabledReproduced  bool `json:"enabled_reproduced"`
	EnabledVerified    bool `json:"enabled_verified"`

	// VerdictMatch: both modes agree on Reproduced and Verified — the
	// correctness gate (telemetry must be observation-only).
	VerdictMatch bool   `json:"verdict_match"`
	FailReason   string `json:"fail_reason,omitempty"`
}

// OverheadPct is the enabled-over-disabled wall-time delta in percent
// (negative when the enabled run happened to be faster).
func (r TelemetryRow) OverheadPct() float64 {
	if r.Disabled <= 0 {
		return 0
	}
	return 100 * (float64(r.Enabled) - float64(r.Disabled)) / float64(r.Disabled)
}

// StageSummary is one ER stage's latency distribution across the
// whole enabled-mode corpus, read back from the shared registry's
// er_core_stage_seconds histogram.
type StageSummary struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Mean  float64 `json:"mean_seconds"`
}

// TelemetryResult aggregates the experiment.
type TelemetryResult struct {
	Rows []TelemetryRow `json:"rows"`
	// TotalDisabled/TotalEnabled sum the per-app minima; the aggregate
	// overhead is their relative delta (the headline number).
	TotalDisabled time.Duration `json:"total_disabled_ns"`
	TotalEnabled  time.Duration `json:"total_enabled_ns"`
	// AllVerdictsMatch reports whether every app reproduced (and
	// verified) identically in both modes.
	AllVerdictsMatch bool `json:"all_verdicts_match"`
	// Stages holds the corpus-wide per-stage latency summaries from
	// the enabled runs, in StageNames order (stages with no samples
	// are omitted).
	Stages []StageSummary `json:"stages"`
	// SpanTrees counts finished reconstruction span trees recorded by
	// the enabled runs (one per session).
	SpanTrees uint64 `json:"span_trees"`
}

// OverheadPct is the aggregate enabled-over-disabled delta in percent.
func (r *TelemetryResult) OverheadPct() float64 {
	if r.TotalDisabled <= 0 {
		return 0
	}
	return 100 * (float64(r.TotalEnabled) - float64(r.TotalDisabled)) / float64(r.TotalDisabled)
}

// telemetryRun is one timed full reproduction; reg/tracer nil means
// the disabled mode.
func telemetryRun(a *apps.App, budget int64, reg *telemetry.Registry, tracer *telemetry.Tracer) (*core.Report, time.Duration, error) {
	mod, err := a.Module()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	rep, err := core.Reproduce(core.Config{
		Module:    mod,
		Gen:       &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
		Symex:     symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		Telemetry: reg,
		Tracer:    tracer,
	})
	return rep, time.Since(start), err
}

// RunTelemetry measures the wall-clock price of the telemetry layer
// across the Table 1 corpus and collects the per-stage latency
// summaries of the instrumented runs.
func RunTelemetry(opts TelemetryOptions) (*TelemetryResult, error) {
	budget := opts.QueryBudget
	if budget == 0 {
		budget = DefaultQueryBudget
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 3
	}
	res := &TelemetryResult{AllVerdictsMatch: true}
	// One registry/tracer shared by every enabled run: the stage
	// histograms then summarize the whole corpus.
	reg := telemetry.New()
	tracer := telemetry.NewTracer(telemetry.DefaultKeepSpans)
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		row := TelemetryRow{App: a.Name}
		fail := func(err error) {
			row.FailReason = err.Error()
			res.AllVerdictsMatch = false
			res.Rows = append(res.Rows, row)
		}

		var base *core.Report
		for t := 0; t < trials; t++ {
			rep, d, err := telemetryRun(a, budget, nil, nil)
			if err != nil && rep == nil {
				fail(err)
				break
			}
			base = rep
			if t == 0 || d < row.Disabled {
				row.Disabled = d
			}
		}
		if base == nil {
			continue
		}
		row.DisabledReproduced = base.Reproduced
		row.DisabledVerified = base.Verified

		var inst *core.Report
		for t := 0; t < trials; t++ {
			rep, d, err := telemetryRun(a, budget, reg, tracer)
			if err != nil && rep == nil {
				fail(err)
				break
			}
			inst = rep
			if t == 0 || d < row.Enabled {
				row.Enabled = d
			}
		}
		if inst == nil {
			continue
		}
		row.EnabledReproduced = inst.Reproduced
		row.EnabledVerified = inst.Verified

		row.VerdictMatch = row.DisabledReproduced == row.EnabledReproduced &&
			row.DisabledVerified == row.EnabledVerified
		if !row.VerdictMatch {
			res.AllVerdictsMatch = false
		}
		res.TotalDisabled += row.Disabled
		res.TotalEnabled += row.Enabled
		res.Rows = append(res.Rows, row)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "telemetry: %s off=%v on=%v overhead=%+.1f%% match=%v\n",
				a.Name, row.Disabled.Round(time.Microsecond),
				row.Enabled.Round(time.Microsecond), row.OverheadPct(), row.VerdictMatch)
		}
	}
	res.Stages = StageSummaries(reg)
	res.SpanTrees = tracer.Finished()
	return res, nil
}

// StageSummaries reads the er_core_stage_seconds histogram family
// back out of a registry as per-stage quantile summaries, in
// core.StageNames order. Stages with no samples are omitted.
func StageSummaries(reg *telemetry.Registry) []StageSummary {
	fam, ok := reg.Family("er_core_stage_seconds")
	if !ok {
		return nil
	}
	byStage := make(map[string]telemetry.HistSnapshot, len(fam.Series))
	for _, s := range fam.Series {
		if s.Hist == nil {
			continue
		}
		for _, l := range s.Labels {
			if l.Name == "stage" {
				byStage[l.Value] = *s.Hist
			}
		}
	}
	var out []StageSummary
	for _, stage := range core.StageNames {
		hs, ok := byStage[stage]
		if !ok || hs.Count == 0 {
			continue
		}
		out = append(out, StageSummary{
			Stage: stage,
			Count: hs.Count,
			P50:   hs.Quantile(0.50),
			P90:   hs.Quantile(0.90),
			P99:   hs.Quantile(0.99),
			Mean:  hs.Mean(),
		})
	}
	return out
}

// RenderTelemetry prints the per-app comparison, the stage latency
// summary, and the aggregate overhead verdict.
func RenderTelemetry(w io.Writer, res *TelemetryResult) {
	header := []string{"Application-BugID", "Disabled", "Enabled", "Overhead", "Verdict"}
	var rows [][]string
	for _, r := range res.Rows {
		verdict := "match"
		if !r.VerdictMatch {
			verdict = "MISMATCH"
		}
		if r.FailReason != "" {
			verdict = "ERROR: " + r.FailReason
		}
		rows = append(rows, []string{
			r.App,
			r.Disabled.Round(time.Microsecond).String(),
			r.Enabled.Round(time.Microsecond).String(),
			fmt.Sprintf("%+.1f%%", r.OverheadPct()),
			verdict,
		})
	}
	table(w, header, rows)

	if len(res.Stages) > 0 {
		fmt.Fprintf(w, "\nper-stage latency (enabled runs, %d span trees):\n", res.SpanTrees)
		sh := []string{"Stage", "Count", "p50", "p90", "p99", "Mean"}
		var srows [][]string
		for _, s := range res.Stages {
			srows = append(srows, []string{
				s.Stage,
				fmt.Sprintf("%d", s.Count),
				fmtSeconds(s.P50),
				fmtSeconds(s.P90),
				fmtSeconds(s.P99),
				fmtSeconds(s.Mean),
			})
		}
		table(w, sh, srows)
	}
	fmt.Fprintf(w, "\ntotal wall time: disabled %v vs enabled %v (%+.2f%% overhead); verdicts identical: %v\n",
		res.TotalDisabled.Round(time.Microsecond), res.TotalEnabled.Round(time.Microsecond),
		res.OverheadPct(), res.AllVerdictsMatch)
}

// fmtSeconds renders a seconds quantity as a rounded duration.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
