package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTelemetryExpSmoke runs the overhead experiment on a small app
// subset (one immediate, one iterative) with a single trial per mode
// and checks verdict parity, stage-summary coverage, and the JSON
// artifact round-trip. Wall-clock overhead itself is asserted only by
// the full erbench run (CI smoke), not here — unit-test machines are
// too noisy for a 5% gate on two apps.
func TestTelemetryExpSmoke(t *testing.T) {
	res, err := RunTelemetry(TelemetryOptions{
		Only:   []string{"SQLite-4e8e485", "Nasm-2004-1287"},
		Trials: 1,
	})
	if err != nil {
		t.Fatalf("RunTelemetry: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if !res.AllVerdictsMatch {
		t.Fatalf("verdict parity violated: %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if !r.EnabledReproduced || !r.EnabledVerified {
			t.Errorf("%s: instrumented run did not reproduce+verify: %+v", r.App, r)
		}
		if r.Disabled <= 0 || r.Enabled <= 0 {
			t.Errorf("%s: missing timings: %+v", r.App, r)
		}
	}
	if res.SpanTrees != 2 {
		t.Errorf("span trees = %d, want 2", res.SpanTrees)
	}
	stages := map[string]StageSummary{}
	for _, s := range res.Stages {
		stages[s.Stage] = s
	}
	for _, want := range []string{"wait", "shepherd", "solve", "verify"} {
		s, ok := stages[want]
		if !ok {
			t.Errorf("stage summary missing %q (have %v)", want, res.Stages)
			continue
		}
		if s.Count == 0 {
			t.Errorf("stage %s: zero samples", want)
		}
		if s.P50 < 0 || s.P99 < s.P50 {
			t.Errorf("stage %s: inconsistent quantiles p50=%v p99=%v", want, s.P50, s.P99)
		}
	}

	// Render must not panic and must mention the aggregate verdict.
	var sb strings.Builder
	RenderTelemetry(&sb, res)
	if !strings.Contains(sb.String(), "verdicts identical: true") {
		t.Errorf("render missing aggregate verdict:\n%s", sb.String())
	}

	// JSON artifact round-trip.
	dir := t.TempDir()
	path, err := WriteJSONArtifact(dir, "telemetry", res)
	if err != nil {
		t.Fatalf("WriteJSONArtifact: %v", err)
	}
	if filepath.Base(path) != "BENCH_telemetry.json" {
		t.Errorf("artifact path = %s", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	var art struct {
		Experiment string          `json:"experiment"`
		Result     TelemetryResult `json:"result"`
	}
	if err := json.Unmarshal(b, &art); err != nil {
		t.Fatalf("artifact JSON: %v\n%s", err, b)
	}
	if art.Experiment != "telemetry" || len(art.Result.Rows) != 2 || len(art.Result.Stages) == 0 {
		t.Errorf("artifact round-trip lost data: %+v", art)
	}
}
