package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"execrecon/internal/apps"
	"execrecon/internal/core"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

// TracestoreRow is one app's archive measurements: the storage cost
// of archiving K reoccurrences of its failure (raw vs delta-stored
// bytes, ingest throughput) and the verdict-parity check (reproduction
// through the store must match the in-memory pipeline).
type TracestoreRow struct {
	App string
	// Occur is the number of reoccurrence traces archived.
	Occur int
	// RawBytes/StoredBytes are the archive totals; Ratio their
	// quotient (the delta-compression win).
	RawBytes    int64
	StoredBytes int64
	Ratio       float64
	// IngestMBps is the append throughput over the raw stream bytes.
	IngestMBps float64
	// MemReproduced/MemVerified is the in-memory pipeline verdict;
	// StoreReproduced/StoreVerified the verdict with every trace read
	// through the store's streaming reader.
	MemReproduced   bool
	MemVerified     bool
	StoreReproduced bool
	StoreVerified   bool
	// Parity is true when the two verdicts agree.
	Parity     bool
	FailReason string
}

// TracestoreOptions configures the archive experiment.
type TracestoreOptions struct {
	// Occurrences is how many reoccurrence traces to archive per app
	// for the compression measurement (default 8).
	Occurrences int
	// Dir roots the per-app store directories (default: a temp dir,
	// removed afterwards).
	Dir string
	// Only restricts the run to the named apps (nil = all 13).
	Only []string
	// Log receives progress lines.
	Log io.Writer
}

// RunTracestore measures the trace archive on all Table 1 apps:
// per-app compression ratio and ingest throughput over K archived
// reoccurrences of each failure, plus verdict parity between the
// in-memory reproduction pipeline and one whose every trace round-
// trips through the store.
func RunTracestore(opts TracestoreOptions) ([]TracestoreRow, error) {
	k := opts.Occurrences
	if k <= 0 {
		k = 8
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "erbench-tracestore-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	var rows []TracestoreRow
	for _, a := range apps.All() {
		if len(opts.Only) > 0 && !contains(opts.Only, a.Name) {
			continue
		}
		rows = append(rows, runTracestoreApp(a, k, filepath.Join(dir, a.Name), opts))
	}
	return rows, nil
}

func runTracestoreApp(a *apps.App, k int, dir string, opts TracestoreOptions) TracestoreRow {
	row := TracestoreRow{App: a.Name, Occur: k}
	mod, err := a.Module()
	if err != nil {
		row.FailReason = err.Error()
		return row
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "tracestore: %s: archiving %d reoccurrences\n", a.Name, k)
	}

	// Phase 1 — storage cost: archive k reoccurrence blobs. Each blob
	// is what a production ring holds at failure time: the window of
	// execution preceding the failure — a handful of benign requests
	// and then the failing one, all traced into the same ring (always-
	// on tracing records whatever ran, not just the failing request).
	// Reoccurrences of the same failure carry near-identical windows,
	// which is exactly the redundancy the delta encoder exploits.
	const window = 4 // benign requests preceding each failure
	store, err := tracestore.Open(filepath.Join(dir, "compress"), tracestore.Options{})
	if err != nil {
		row.FailReason = err.Error()
		return row
	}
	defer store.Close()
	var appendTime time.Duration
	for i := 0; i < k; i++ {
		ring := pt.NewRing(pt.DefaultRingSize)
		enc := pt.NewEncoder(ring)
		if a.Benign != nil {
			for j := 0; j < window; j++ {
				vm.New(mod, vm.Config{Input: a.Benign(j), Seed: a.Seed, Tracer: enc}).Run("main")
			}
		}
		res := vm.New(mod, vm.Config{Input: a.Failing(), Seed: a.Seed, Tracer: enc}).Run("main")
		if res.Failure == nil {
			row.FailReason = fmt.Sprintf("failing workload did not fail (occurrence %d)", i)
			return row
		}
		enc.Finish()
		start := time.Now()
		if _, err := store.AppendRing(res.Failure, tracestore.Meta{
			App: a.Name, Machine: i, Seed: a.Seed, Instrs: res.Stats.Instrs,
		}, ring); err != nil {
			row.FailReason = err.Error()
			return row
		}
		appendTime += time.Since(start)
	}
	st := store.Stats()
	row.RawBytes = st.RawBytes
	row.StoredBytes = st.StoredBytes
	row.Ratio = st.Ratio()
	if appendTime > 0 {
		row.IngestMBps = float64(st.RawBytes) / (1 << 20) / appendTime.Seconds()
	}

	// Phase 2 — verdict parity: full ER reproduction in memory vs
	// with every trace read back through the archive's streaming
	// reader.
	budget := a.QueryBudget
	if budget == 0 {
		budget = DefaultQueryBudget
	}
	cfg := core.Config{
		Module: mod,
		Symex:  symex.Options{QueryBudget: budget, MaxInstrs: 50_000_000},
		Log:    opts.Log,
	}
	memCfg := cfg
	memCfg.Gen = &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed}
	memRep, memErr := core.Reproduce(memCfg)

	parityStore, err := tracestore.Open(filepath.Join(dir, "parity"), tracestore.Options{})
	if err != nil {
		row.FailReason = err.Error()
		return row
	}
	defer parityStore.Close()
	storeCfg := cfg
	storeCfg.Source = &tracestore.Source{
		Store: parityStore,
		Gen:   &core.FixedWorkload{Workload: a.Failing(), Seed: a.Seed},
		App:   a.Name,
	}
	storeRep, storeErr := core.Reproduce(storeCfg)

	if memRep != nil {
		row.MemReproduced, row.MemVerified = memRep.Reproduced, memRep.Verified
	}
	if storeRep != nil {
		row.StoreReproduced, row.StoreVerified = storeRep.Reproduced, storeRep.Verified
	}
	row.Parity = row.MemReproduced == row.StoreReproduced && row.MemVerified == row.StoreVerified
	if memErr != nil && storeErr == nil || memErr == nil && storeErr != nil {
		row.Parity = false
	}
	if !row.Parity {
		row.FailReason = fmt.Sprintf("verdict divergence: mem(err=%v) store(err=%v)", memErr, storeErr)
	}
	return row
}

// RenderTracestore prints the archive experiment.
func RenderTracestore(w io.Writer, rows []TracestoreRow) {
	header := []string{"Application-BugID", "#Occur", "Raw B", "Stored B", "Ratio", "Ingest MB/s", "Verdict (mem)", "Verdict (store)", "Parity"}
	var out [][]string
	var ratioSum float64
	var ratioN int
	allParity := true
	verdict := func(rep, ver bool) string {
		switch {
		case rep && ver:
			return "yes (verified)"
		case rep:
			return "yes (unverified)"
		default:
			return "NO"
		}
	}
	for _, r := range rows {
		if r.FailReason != "" && r.Ratio == 0 {
			out = append(out, []string{r.App, "-", "-", "-", "-", "-", "-", "-", "ERR: " + r.FailReason})
			allParity = false
			continue
		}
		ratioSum += r.Ratio
		ratioN++
		parity := "yes"
		if !r.Parity {
			parity = "NO"
			allParity = false
		}
		out = append(out, []string{
			r.App,
			fmt.Sprintf("%d", r.Occur),
			fmt.Sprintf("%d", r.RawBytes),
			fmt.Sprintf("%d", r.StoredBytes),
			fmt.Sprintf("%.1fx", r.Ratio),
			fmt.Sprintf("%.1f", r.IngestMBps),
			verdict(r.MemReproduced, r.MemVerified),
			verdict(r.StoreReproduced, r.StoreVerified),
			parity,
		})
	}
	table(w, header, out)
	if ratioN > 0 {
		fmt.Fprintf(w, "mean compression ratio: %.1fx over %d apps; verdict parity: %v\n",
			ratioSum/float64(ratioN), ratioN, allParity)
	}
}

// TracestoreParity reports whether every row reproduced with verdicts
// identical through the store (the experiment's acceptance bit).
func TracestoreParity(rows []TracestoreRow) bool {
	for _, r := range rows {
		if !r.Parity {
			return false
		}
	}
	return len(rows) > 0
}
