// Package cgraph builds and analyzes the constraint graph of §3.2 —
// the dependency structure among values, operations, and symbolic
// memory states gathered by shepherded symbolic execution. Its job is
// to locate the two patterns that dominate constraint-solving cost
// (§3.3.1): the longest chain of symbolic writes, and the write chain
// updating the largest symbolic memory object. The symbolic values
// those chains read and write form the bottleneck set handed to key
// data value selection.
package cgraph

import (
	"sort"

	"execrecon/internal/expr"
)

// Object describes one memory object's final symbolic array state.
type Object struct {
	Label string
	Size  uint64
	Arr   *expr.Expr
}

// Chain is a symbolic write chain over one object.
type Chain struct {
	Object Object
	// Stores lists the KStore nodes from newest to oldest.
	Stores []*expr.Expr
	// SymWrites counts stores whose index or value is symbolic.
	SymWrites int
}

// Graph is the analyzed constraint graph.
type Graph struct {
	Constraints []*expr.Expr
	Objects     []Object
	Chains      []Chain

	nodes int
}

// Build constructs the graph from a path constraint and the final
// object states.
func Build(pc []*expr.Expr, objects []Object) *Graph {
	g := &Graph{Constraints: pc, Objects: objects}
	seen := make(map[*expr.Expr]bool)
	count := func(e *expr.Expr) {
		expr.Walk(e, func(n *expr.Expr) {
			if !seen[n] {
				seen[n] = true
				g.nodes++
			}
		})
	}
	for _, c := range pc {
		count(c)
	}
	for _, o := range objects {
		if o.Arr != nil {
			count(o.Arr)
		}
		g.Chains = append(g.Chains, buildChain(o))
	}
	return g
}

func buildChain(o Object) Chain {
	ch := Chain{Object: o}
	cur := o.Arr
	for cur != nil && cur.Kind == expr.KStore {
		ch.Stores = append(ch.Stores, cur)
		if !cur.Args[1].IsConst() || !cur.Args[2].IsConst() {
			ch.SymWrites++
		}
		cur = cur.Args[0]
	}
	return ch
}

// NumNodes returns the number of distinct graph nodes (§5.3 reports
// the largest graph observed).
func (g *Graph) NumNodes() int { return g.nodes }

// LongestWriteChain returns the chain with the most symbolic writes,
// or nil if no object was written symbolically.
func (g *Graph) LongestWriteChain() *Chain {
	var best *Chain
	for i := range g.Chains {
		c := &g.Chains[i]
		if c.SymWrites == 0 {
			continue
		}
		if best == nil || c.SymWrites > best.SymWrites {
			best = c
		}
	}
	return best
}

// LargestObjectChain returns the chain updating the largest object
// among those with symbolic writes, or nil.
func (g *Graph) LargestObjectChain() *Chain {
	var best *Chain
	for i := range g.Chains {
		c := &g.Chains[i]
		if c.SymWrites == 0 {
			continue
		}
		if best == nil || c.Object.Size > best.Object.Size {
			best = c
		}
	}
	return best
}

// BottleneckSet returns the symbolic values read and written by the
// operations of the longest write chain and the largest-object chain
// (§3.3.2) — the store indices and stored values that are not
// constant. The two chains may coincide.
func (g *Graph) BottleneckSet() []*expr.Expr {
	chains := map[*Chain]bool{}
	if c := g.LongestWriteChain(); c != nil {
		chains[c] = true
	}
	if c := g.LargestObjectChain(); c != nil {
		chains[c] = true
	}
	seen := make(map[*expr.Expr]bool)
	var out []*expr.Expr
	add := func(e *expr.Expr) {
		if e == nil || e.IsConst() || seen[e] {
			return
		}
		seen[e] = true
		out = append(out, e)
	}
	for c := range chains {
		for _, st := range c.Stores {
			add(st.Args[1]) // index
			add(st.Args[2]) // stored value
		}
	}
	// Deterministic order for reproducible selection.
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// ReadIndexSet returns the symbolic index expressions of Select
// operations in the constraint graph — the fallback bottleneck when a
// stall precedes any symbolic write chain (accesses to large symbolic
// memory objects are the second complexity source of §3.3.1).
func (g *Graph) ReadIndexSet() []*expr.Expr {
	seen := make(map[*expr.Expr]bool)
	var out []*expr.Expr
	visit := func(root *expr.Expr) {
		expr.Walk(root, func(n *expr.Expr) {
			if n.Kind == expr.KSelect {
				idx := n.Args[1]
				if !idx.IsConst() && !seen[idx] {
					seen[idx] = true
					out = append(out, idx)
				}
			}
		})
	}
	for _, c := range g.Constraints {
		visit(c)
	}
	for _, o := range g.Objects {
		if o.Arr != nil {
			visit(o.Arr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// SymbolicNodes returns every non-constant node in the graph, used by
// the random-recording baseline of §5.2.
func (g *Graph) SymbolicNodes() []*expr.Expr {
	seen := make(map[*expr.Expr]bool)
	var out []*expr.Expr
	visit := func(e *expr.Expr) {
		expr.Walk(e, func(n *expr.Expr) {
			if seen[n] || n.IsConst() || n.IsArray() {
				return
			}
			seen[n] = true
			out = append(out, n)
		})
	}
	for _, c := range g.Constraints {
		visit(c)
	}
	for _, o := range g.Objects {
		if o.Arr != nil {
			visit(o.Arr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}
