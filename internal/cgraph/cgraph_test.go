package cgraph

import (
	"testing"

	"execrecon/internal/expr"
)

// buildChainedState creates an object with n symbolic-index stores.
func buildChainedState(b *expr.Builder, n int, prefix string) *expr.Expr {
	arr := b.ConstArray(b.Const(0, 8), 32)
	for i := 0; i < n; i++ {
		idx := b.Var(prefix+"i"+string(rune('0'+i)), 32)
		val := b.Var(prefix+"v"+string(rune('0'+i)), 8)
		arr = b.Store(arr, idx, val)
	}
	return arr
}

func TestChainDetection(t *testing.T) {
	b := expr.NewBuilder()
	objs := []Object{
		{Label: "small", Size: 16, Arr: buildChainedState(b, 2, "s")},
		{Label: "big", Size: 4096, Arr: buildChainedState(b, 5, "b")},
		{Label: "concrete", Size: 64, Arr: b.Store(b.ConstArray(b.Const(0, 8), 32), b.Const(3, 32), b.Const(9, 8))},
	}
	g := Build(nil, objs)
	long := g.LongestWriteChain()
	if long == nil || long.Object.Label != "big" || long.SymWrites != 5 {
		t.Fatalf("longest chain: %+v", long)
	}
	large := g.LargestObjectChain()
	if large == nil || large.Object.Label != "big" {
		t.Fatalf("largest chain: %+v", large)
	}
	// The concrete store must not count as a symbolic write.
	for _, c := range g.Chains {
		if c.Object.Label == "concrete" && c.SymWrites != 0 {
			t.Errorf("concrete chain counted symbolic writes: %d", c.SymWrites)
		}
	}
}

func TestBottleneckSet(t *testing.T) {
	b := expr.NewBuilder()
	// One chain is both longest and largest: bottleneck = its
	// symbolic indices and values, deduplicated.
	i1 := b.Var("i1", 32)
	v1 := b.Var("v1", 8)
	arr := b.Store(b.ConstArray(b.Const(0, 8), 32), i1, v1)
	arr = b.Store(arr, b.Add(i1, b.Const(1, 32)), b.Const(7, 8))
	g := Build(nil, []Object{{Label: "o", Size: 128, Arr: arr}})
	bs := g.BottleneckSet()
	if len(bs) != 3 { // i1, v1, i1+1
		t.Fatalf("bottleneck: %d elements (%v)", len(bs), bs)
	}
	seen := map[*expr.Expr]bool{}
	for _, e := range bs {
		if seen[e] {
			t.Error("duplicate in bottleneck")
		}
		seen[e] = true
		if e.IsConst() {
			t.Error("constant in bottleneck")
		}
	}
}

func TestBottleneckMergesTwoChains(t *testing.T) {
	b := expr.NewBuilder()
	// Longest chain (3 writes, small object) and largest object
	// (1 write, big) are distinct: both contribute.
	objs := []Object{
		{Label: "long", Size: 8, Arr: buildChainedState(b, 3, "l")},
		{Label: "huge", Size: 1 << 20, Arr: buildChainedState(b, 1, "h")},
	}
	g := Build(nil, objs)
	bs := g.BottleneckSet()
	if len(bs) != 8 { // 3*(idx+val) + 1*(idx+val)
		t.Fatalf("bottleneck size %d, want 8", len(bs))
	}
}

func TestReadIndexSet(t *testing.T) {
	b := expr.NewBuilder()
	arr := b.ArrayVar("A", 32, 8)
	i := b.Var("i", 32)
	j := b.Var("j", 32)
	pc := []*expr.Expr{
		b.Eq(b.Select(arr, i), b.Const(1, 8)),
		b.Eq(b.Select(arr, b.Add(j, b.Const(2, 32))), b.Const(2, 8)),
		b.Eq(b.Select(arr, b.Const(5, 32)), b.Const(3, 8)), // concrete: excluded
	}
	g := Build(pc, nil)
	ris := g.ReadIndexSet()
	if len(ris) != 2 {
		t.Fatalf("read index set: %v", ris)
	}
}

func TestNumNodesAndSymbolic(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	pc := []*expr.Expr{b.Ult(b.Add(x, b.Const(1, 32)), b.Const(10, 32))}
	g := Build(pc, nil)
	if g.NumNodes() < 4 {
		t.Errorf("nodes: %d", g.NumNodes())
	}
	sn := g.SymbolicNodes()
	if len(sn) < 2 { // x, x+1, the comparison
		t.Errorf("symbolic nodes: %d", len(sn))
	}
	for _, n := range sn {
		if n.IsConst() || n.IsArray() {
			t.Errorf("bad symbolic node %v", n)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := Build(nil, nil)
	if g.LongestWriteChain() != nil || g.LargestObjectChain() != nil {
		t.Error("chains in empty graph")
	}
	if len(g.BottleneckSet()) != 0 {
		t.Error("nonempty bottleneck in empty graph")
	}
}
