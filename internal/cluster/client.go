package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the coordinator's /v1/* wire protocol. All methods
// are safe for concurrent use.
type Client struct {
	base string
	node string
	hc   *http.Client
}

// NewClient returns a client for the coordinator at base (e.g.
// "http://127.0.0.1:9090"). node names this peer in lease and
// liveness bookkeeping ("" for pure submit/query clients).
func NewClient(base, node string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		node: node,
		// The timeout must clear the coordinator's long-poll window
		// (maxPollWait) with margin, not race it.
		hc: &http.Client{Timeout: maxPollWait + 10*time.Second},
	}
}

// post round-trips one JSON request. Transport and decode errors are
// returned as errors; protocol-level rejections ride in the response
// envelope (OK=false).
func (cl *Client) post(path string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", path, err)
	}
	hr, err := cl.hc.Post(cl.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 512))
		return fmt.Errorf("cluster: %s: HTTP %d: %s", path, hr.StatusCode, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
		return fmt.Errorf("cluster: decode %s: %w", path, err)
	}
	return nil
}

// Lease asks for the next unleased bucket, long-polling up to wait.
func (cl *Client) Lease(wait time.Duration) (*LeaseResponse, error) {
	var resp LeaseResponse
	err := cl.post(PathLease, &LeaseRequest{
		V: ProtocolVersion, Node: cl.node, WaitMillis: wait.Milliseconds(),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Renew heartbeats a held lease; the request may piggyback the
// node's latest replay span snapshot and runtime vitals.
func (cl *Client) Renew(req *RenewRequest) (*RenewResponse, error) {
	req.V = ProtocolVersion
	req.Node = cl.node
	var resp RenewResponse
	if err := cl.post(PathRenew, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fetch asks for the next banked occurrence matching the cursor.
func (cl *Client) Fetch(app string, key, term, afterSeq uint64, version int, wait time.Duration) (*FetchResponse, error) {
	var resp FetchResponse
	err := cl.post(PathFetch, &FetchRequest{
		V: ProtocolVersion, Node: cl.node, App: app, Key: key, Term: term,
		AfterSeq: afterSeq, Version: version, WaitMillis: wait.Milliseconds(),
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Rollout ships the full accumulated site chain for deployment.
func (cl *Client) Rollout(req *RolloutRequest) (*RolloutResponse, error) {
	req.V = ProtocolVersion
	req.Node = cl.node
	var resp RolloutResponse
	if err := cl.post(PathRollout, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Resolve commits a finished reconstruction.
func (cl *Client) Resolve(req *ResolveRequest) (*ResolveResponse, error) {
	req.V = ProtocolVersion
	req.Node = cl.node
	var resp ResolveResponse
	if err := cl.post(PathResolve, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Submit ships one externally captured occurrence into the
// coordinator's ingest path.
func (cl *Client) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	req.V = ProtocolVersion
	var resp SubmitResponse
	if err := cl.post(PathSubmit, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Verdicts lists every bucket's triage outcome.
func (cl *Client) Verdicts() (*VerdictsResponse, error) {
	hr, err := cl.hc.Get(cl.base + PathVerdicts)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", PathVerdicts, err)
	}
	defer hr.Body.Close()
	var resp VerdictsResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: decode %s: %w", PathVerdicts, err)
	}
	return &resp, nil
}

// State fetches the coordinator's cluster snapshot.
func (cl *Client) State() (*ClusterSnapshot, error) {
	hr, err := cl.hc.Get(cl.base + PathState)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", PathState, err)
	}
	defer hr.Body.Close()
	var snap ClusterSnapshot
	if err := json.NewDecoder(hr.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cluster: decode %s: %w", PathState, err)
	}
	return &snap, nil
}
