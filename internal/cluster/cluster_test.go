package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"execrecon/internal/fleet"
	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

func compile(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	mod, err := minc.Compile(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return mod
}

// The same three-app mix as the fleet stress tests: alpha and beta
// reconstruct in one iteration; gamma stalls on a symbolic write
// chain under a small solver budget, forcing key-data-value
// selection and an instrumented rollout over the wire.
const alphaSrc = `
func main() int {
	int x = input32("x");
	assert(x != 42, "alpha bug");
	return 0;
}`

const betaSrc = `
func check(int v) {
	assert(v != 7, "beta bug");
}
func main() int {
	check(input32("y"));
	return 0;
}`

const gammaSrc = `
int m[256];
func main() int {
	int i = 0;
	while (i < 10) {
		int k = input32("k");
		if (k < 0 || k >= 250) { return 0; }
		m[k] = m[k + 1] + 1;
		i = i + 1;
	}
	assert(m[60] != 3, "gamma chain");
	return 0;
}`

func gammaWorkload() *vm.Workload {
	w := vm.NewWorkload().Add("k", 62, 61, 60)
	for i := 0; i < 7; i++ {
		w.Add("k", 200)
	}
	return w
}

func testApps(t *testing.T) []fleet.App {
	t.Helper()
	return []fleet.App{
		{
			Name:    "alpha",
			Module:  compile(t, "alpha", alphaSrc),
			Failing: func() *vm.Workload { return vm.NewWorkload().Add("x", 42) },
			Seed:    1,
		},
		{
			Name:    "beta",
			Module:  compile(t, "beta", betaSrc),
			Failing: func() *vm.Workload { return vm.NewWorkload().Add("y", 7) },
			Seed:    1,
		},
		{
			Name:    "gamma",
			Module:  compile(t, "gamma", gammaSrc),
			Failing: gammaWorkload,
			Seed:    1,
			Symex:   symex.Options{QueryBudget: 30_000},
		},
	}
}

// checkParity asserts verdict parity with the in-process fleet: every
// app's bucket resolved, reproduced, and verified.
func checkParity(t *testing.T, res *fleet.Result, apps []fleet.App) {
	t.Helper()
	if res == nil {
		t.Fatal("nil fleet result")
	}
	if len(res.Buckets) != len(apps) {
		t.Fatalf("buckets = %d, want %d: %+v", len(res.Buckets), len(apps), res.Buckets)
	}
	seen := map[string]fleet.BucketResult{}
	for _, b := range res.Buckets {
		seen[b.App] = b
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v (report %+v)",
				b.App, b.Reproduced, b.Verified, b.Report)
		}
	}
	for _, a := range apps {
		if _, ok := seen[a.Name]; !ok {
			t.Errorf("no bucket for app %s", a.Name)
		}
	}
	// gamma must have reconstructed across a rollout: > 1 iteration.
	if g, ok := seen["gamma"]; ok && g.Report != nil {
		if len(g.Report.Iterations) < 2 {
			t.Errorf("gamma iterations = %d, want >= 2 (stall + rollout + retry)", len(g.Report.Iterations))
		}
	}
}

// TestClusterSingleNode runs the full three-app mix through one
// remote triage node over real loopback HTTP: every verdict must
// match the in-process fleet, including gamma's wire-protocol rollout
// leg.
func TestClusterSingleNode(t *testing.T) {
	apps := testApps(t)
	res, err := RunHarness(HarnessOptions{
		Apps:           apps,
		Nodes:          1,
		Dir:            t.TempDir(),
		MachinesPerApp: 2,
		Pace:           50 * time.Microsecond,
		Timeout:        90 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v", err)
	}
	checkParity(t, res.Fleet, apps)
	if res.Killed != -1 {
		t.Errorf("Killed = %d without chaos", res.Killed)
	}
	snap := res.Cluster
	if snap.Granted < 3 {
		t.Errorf("leases granted = %d, want >= 3", snap.Granted)
	}
	if snap.Resolved != 3 {
		t.Errorf("remote resolutions = %d, want 3", snap.Resolved)
	}
	var nodeTotal int64
	for _, n := range res.NodeResolved {
		nodeTotal += n
	}
	if nodeTotal != 3 {
		t.Errorf("node-side resolved = %d, want 3", nodeTotal)
	}
	for _, b := range snap.Buckets {
		if b.State != "resolved" || !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s/%#x: state=%s reproduced=%v verified=%v",
				b.App, b.Key, b.State, b.Reproduced, b.Verified)
		}
	}
}

// TestClusterTwoNodes splits the same mix across two nodes: the work
// must actually distribute (every lease granted, all verdicts equal)
// regardless of which node wins which bucket.
func TestClusterTwoNodes(t *testing.T) {
	apps := testApps(t)
	res, err := RunHarness(HarnessOptions{
		Apps:           apps,
		Nodes:          2,
		WorkersPerNode: 2,
		Dir:            t.TempDir(),
		MachinesPerApp: 2,
		Pace:           50 * time.Microsecond,
		Timeout:        90 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v", err)
	}
	checkParity(t, res.Fleet, apps)
	var nodeTotal int64
	for _, n := range res.NodeResolved {
		nodeTotal += n
	}
	if nodeTotal != 3 {
		t.Errorf("node-side resolved = %d, want 3 (per node: %v)", nodeTotal, res.NodeResolved)
	}
	if res.Cluster.NodesLive < 1 {
		t.Errorf("nodes live = %d at shutdown, want >= 1", res.Cluster.NodesLive)
	}
}

// TestClusterKillNodeChaos is the acceptance chaos test (run with
// -race): kill -9 one of two nodes at a randomized point
// mid-reconstruction — while leases are held, possibly mid-fetch or
// mid-rollout — and every bucket must still resolve with full verdict
// parity, the victim's leases expiring and re-dispatching to the
// survivor, which replays the banked reoccurrences from the archive.
func TestClusterKillNodeChaos(t *testing.T) {
	apps := testApps(t)
	rng := rand.New(rand.NewSource(42))
	for run := 0; run < 2; run++ {
		killAfter := 50*time.Millisecond + time.Duration(rng.Int63n(int64(1200*time.Millisecond)))
		victim := rng.Intn(2)
		t.Run(fmt.Sprintf("kill_node%d_after_%v", victim, killAfter), func(t *testing.T) {
			res, err := RunHarness(HarnessOptions{
				Apps:           apps,
				Nodes:          2,
				WorkersPerNode: 2,
				TTL:            300 * time.Millisecond,
				Dir:            t.TempDir(),
				KillAfter:      killAfter,
				KillNode:       victim,
				MachinesPerApp: 2,
				Pace:           50 * time.Microsecond,
				Timeout:        90 * time.Second,
			})
			if err != nil {
				t.Fatalf("RunHarness: %v", err)
			}
			checkParity(t, res.Fleet, apps)
			if res.Killed != victim {
				t.Errorf("Killed = %d, want %d", res.Killed, victim)
			}
			snap := res.Cluster
			// Whatever the victim held at death must have been
			// re-dispatched, and expiries and re-dispatches must agree.
			if snap.Expired != snap.Redispatched {
				t.Errorf("expired %d != redispatched %d", snap.Expired, snap.Redispatched)
			}
			for _, b := range snap.Buckets {
				if b.State != "resolved" {
					t.Errorf("bucket %s/%#x not resolved: %+v", b.App, b.Key, b)
				}
			}
			// The survivor must have carried everything the victim
			// dropped: resolutions add up to the bucket count.
			var nodeTotal int64
			for _, n := range res.NodeResolved {
				nodeTotal += n
			}
			if nodeTotal != 3 {
				t.Errorf("node-side resolved = %d, want 3 (per node: %v, expired %d)",
					nodeTotal, res.NodeResolved, snap.Expired)
			}
			t.Logf("killed node-%d after %v: expired=%d redispatched=%d per-node=%v",
				victim, killAfter, snap.Expired, snap.Redispatched, res.NodeResolved)
		})
	}
}

// TestClusterRedispatchAfterKill pins the lease-expiry leg the
// randomized chaos runs may miss: the leaseholder is killed the
// moment its grant is observed — guaranteed mid-reconstruction, since
// gamma's solver leg runs for seconds — and a late-started survivor
// must inherit the bucket through TTL expiry and replay it from the
// archive to the same verdict.
func TestClusterRedispatchAfterKill(t *testing.T) {
	apps := testApps(t)[2:3] // gamma only: long reconstruction window
	dir := t.TempDir()
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(apps, CoordinatorOptions{
		Fleet: fleet.Options{
			MachinesPerApp: 2,
			Pace:           50 * time.Microsecond,
			Timeout:        90 * time.Second,
		},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
		TTL:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	victim, err := NewNode(NodeOptions{Name: "victim", Coordinator: coord.URL(), Apps: apps, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := coord.Snapshot()
		if snap.Granted >= 1 {
			if countResolved(snap) != 0 {
				t.Fatalf("gamma resolved before the kill window: %+v", snap)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased the bucket")
		}
		time.Sleep(time.Millisecond)
	}
	victim.Kill()
	survivor, err := NewNode(NodeOptions{Name: "survivor", Coordinator: coord.URL(), Apps: apps, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := coord.Wait()
	victim.Close()
	survivor.Close()
	if err != nil {
		t.Fatalf("Wait: %v\nsnapshot: %+v", err, coord.Snapshot())
	}
	checkParity(t, res, apps)
	snap := coord.Snapshot()
	if snap.Expired < 1 || snap.Redispatched < 1 {
		t.Errorf("expired=%d redispatched=%d, want >= 1 each", snap.Expired, snap.Redispatched)
	}
	if victim.Resolved() != 0 {
		t.Errorf("killed node resolved %d buckets", victim.Resolved())
	}
	if survivor.Resolved() != 1 {
		t.Errorf("survivor resolved %d buckets, want 1", survivor.Resolved())
	}
	t.Logf("redispatch: expired=%d redispatched=%d granted=%d", snap.Expired, snap.Redispatched, snap.Granted)
}

// TestClusterCoordinatorRestart crashes the coordinator mid-run (no
// checkpoint, no drain — the WAL and archive are all that survive)
// and restarts it over the same state: recovered verdicts must not be
// re-triaged, in-flight buckets must re-dispatch, and the final table
// must show every bucket resolved exactly once.
func TestClusterCoordinatorRestart(t *testing.T) {
	apps := testApps(t)
	dir := t.TempDir()
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	walPath := filepath.Join(dir, "lease.wal")

	copts := CoordinatorOptions{
		Fleet: fleet.Options{
			MachinesPerApp: 2,
			Pace:           50 * time.Microsecond,
			Timeout:        90 * time.Second,
		},
		Store:   store,
		WALPath: walPath,
		TTL:     300 * time.Millisecond,
	}
	coord1, err := NewCoordinator(apps, copts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	node1, err := NewNode(NodeOptions{
		Name: "n1", Coordinator: coord1.URL(), Apps: apps, Workers: 2,
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if err := node1.Start(); err != nil {
		t.Fatalf("node start: %v", err)
	}

	// Let the run get partway: at least one verdict committed to the
	// WAL (alpha and beta resolve fast; gamma's solver leg keeps the
	// run alive well past this point).
	deadline := time.Now().Add(60 * time.Second)
	for {
		snap := coord1.Snapshot()
		if countResolved(snap) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no bucket resolved before crash window: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	node1.Kill()
	coord1.Crash()
	node1.Close()
	snap1 := coord1.Snapshot()
	pre := countResolved(snap1)
	if pre < 1 {
		t.Fatalf("crash-time snapshot lost resolutions: %+v", snap1)
	}
	t.Logf("crashed with %d/3 buckets resolved (granted=%d)", pre, snap1.Granted)

	// Restart over the same WAL + archive with a fresh node.
	coord2, err := NewCoordinator(apps, copts)
	if err != nil {
		t.Fatalf("restart NewCoordinator: %v", err)
	}
	if err := coord2.Start(); err != nil {
		t.Fatalf("restart Start: %v", err)
	}
	node2, err := NewNode(NodeOptions{
		Name: "n2", Coordinator: coord2.URL(), Apps: apps, Workers: 2,
	})
	if err != nil {
		t.Fatalf("restart NewNode: %v", err)
	}
	if err := node2.Start(); err != nil {
		t.Fatalf("restart node start: %v", err)
	}
	res, err := coord2.Wait()
	node2.Close()
	if err != nil {
		t.Fatalf("restarted run: %v\nsnapshot: %+v", err, coord2.Snapshot())
	}
	checkParity(t, res, apps)

	snap2 := coord2.Snapshot()
	if snap2.Recovered < pre {
		t.Errorf("recovered %d lease records, want >= %d", snap2.Recovered, pre)
	}
	if got := countResolved(snap2); got != 3 {
		t.Errorf("final resolved buckets = %d, want 3: %+v", got, snap2.Buckets)
	}
	// No duplicated resolutions: pre-crash verdicts replay from the
	// WAL without a node ever re-triaging them, so the restarted run
	// remote-resolves exactly the remainder.
	if want := int64(3 - pre); node2.Resolved() != want {
		t.Errorf("node2 resolved %d buckets, want %d (pre-crash %d)", node2.Resolved(), want, pre)
	}
	if snap2.Resolved != int64(3-pre) {
		t.Errorf("restarted coordinator committed %d remote resolutions, want %d", snap2.Resolved, 3-pre)
	}
	for _, b := range snap2.Buckets {
		if b.State != "resolved" || !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s/%#x after restart: %+v", b.App, b.Key, b)
		}
	}
}

func countResolved(snap ClusterSnapshot) int {
	n := 0
	for _, b := range snap.Buckets {
		if b.State == "resolved" {
			n++
		}
	}
	return n
}

// TestClusterMetricsRoundTrip checks the er_cluster_* series and the
// /debug/er cluster section against the wire snapshot while the
// coordinator is live.
func TestClusterMetricsRoundTrip(t *testing.T) {
	apps := testApps(t)[:1] // alpha only: fast, deterministic counts
	dir := t.TempDir()
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := telemetry.New()
	coord, err := NewCoordinator(apps, CoordinatorOptions{
		Fleet: fleet.Options{
			MachinesPerApp: 1,
			Pace:           50 * time.Microsecond,
			Timeout:        60 * time.Second,
			Telemetry:      reg,
		},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	node, err := NewNode(NodeOptions{Name: "n0", Coordinator: coord.URL(), Apps: apps})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if err := node.Start(); err != nil {
		t.Fatalf("node start: %v", err)
	}

	cl := NewClient(coord.URL(), "")
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := cl.State()
		if err == nil && snap.Resolved >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bucket never resolved: %+v (err %v)", snap, err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /metrics: the er_cluster_* series must expose the same counts
	// the wire snapshot reports.
	body := httpGet(t, coord.URL()+"/metrics")
	for _, name := range []string{
		"er_cluster_nodes_live",
		"er_cluster_leases_granted_total",
		"er_cluster_leases_renewed_total",
		"er_cluster_leases_expired_total",
		"er_cluster_leases_redispatched_total",
		"er_cluster_buckets_resolved_total",
		"er_cluster_submits_total",
		"er_cluster_wal_bytes",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if v := metricValue(t, body, "er_cluster_buckets_resolved_total"); v != 1 {
		t.Errorf("er_cluster_buckets_resolved_total = %v, want 1", v)
	}
	if v := metricValue(t, body, "er_cluster_leases_granted_total"); v < 1 {
		t.Errorf("er_cluster_leases_granted_total = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "er_cluster_wal_bytes"); v <= 0 {
		t.Errorf("er_cluster_wal_bytes = %v, want > 0", v)
	}

	// /debug/er: the cluster section must round-trip as JSON and
	// agree with /v1/state.
	var dbg struct {
		State struct {
			Cluster ClusterSnapshot `json:"cluster"`
		} `json:"state"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, coord.URL()+"/debug/er")), &dbg); err != nil {
		t.Fatalf("/debug/er decode: %v", err)
	}
	if dbg.State.Cluster.Resolved != 1 {
		t.Errorf("/debug/er cluster.resolved = %d, want 1", dbg.State.Cluster.Resolved)
	}
	if dbg.State.Cluster.Granted < 1 {
		t.Errorf("/debug/er cluster.granted = %d, want >= 1", dbg.State.Cluster.Granted)
	}
	verd, err := cl.Verdicts()
	if err != nil || !verd.OK {
		t.Fatalf("verdicts: %v %+v", err, verd)
	}
	if len(verd.Buckets) != 1 || verd.Buckets[0].App != "alpha" || !verd.Buckets[0].Reproduced {
		t.Errorf("verdicts = %+v", verd.Buckets)
	}

	if _, err := coord.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	node.Close()
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return string(b)
}

// metricValue extracts an unlabelled series value from Prometheus
// text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := strings.TrimPrefix(line, name)
		if len(rest) == 0 || rest[0] != ' ' {
			continue // another metric sharing the prefix, or labelled
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parse %s value %q: %v", name, rest, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestClusterProtocolVersionMismatch: a node speaking the wrong
// protocol version is rejected in the envelope (HTTP 200, OK=false),
// and malformed JSON is a 400.
func TestClusterProtocolVersionMismatch(t *testing.T) {
	apps := testApps(t)[:1]
	dir := t.TempDir()
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(apps, CoordinatorOptions{
		Fleet:   fleet.Options{MachinesPerApp: 1, Timeout: 60 * time.Second},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer coord.Crash()

	body, _ := json.Marshal(&LeaseRequest{V: ProtocolVersion + 1, Node: "stale"})
	resp, err := http.Post(coord.URL()+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version mismatch: HTTP %d, want 200 + envelope rejection", resp.StatusCode)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	if lr.OK || !strings.Contains(lr.Err, "protocol version") {
		t.Errorf("version mismatch response = %+v", lr)
	}

	resp2, err := http.Post(coord.URL()+PathLease, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp2.StatusCode)
	}
}

// TestClusterValidation covers the assembly-time input checks.
func TestClusterValidation(t *testing.T) {
	apps := testApps(t)[:1]
	store, err := tracestore.Open(filepath.Join(t.TempDir(), "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := NewCoordinator(apps, CoordinatorOptions{WALPath: "x"}); err == nil {
		t.Error("coordinator without store accepted")
	}
	if _, err := NewCoordinator(apps, CoordinatorOptions{Store: store}); err == nil {
		t.Error("coordinator without WAL path accepted")
	}
	if _, err := NewNode(NodeOptions{Coordinator: "http://x", Apps: apps}); err == nil {
		t.Error("node without name accepted")
	}
	if _, err := NewNode(NodeOptions{Name: "n", Apps: apps}); err == nil {
		t.Error("node without coordinator accepted")
	}
	if _, err := NewNode(NodeOptions{Name: "n", Coordinator: "http://x"}); err == nil {
		t.Error("node without apps accepted")
	}
	if _, err := RunHarness(HarnessOptions{Apps: apps, Nodes: 0, Dir: "x"}); err == nil {
		t.Error("harness with zero nodes accepted")
	}
	if _, err := RunHarness(HarnessOptions{Apps: apps, Nodes: 1}); err == nil {
		t.Error("harness without state dir accepted")
	}
	if _, err := RunHarness(HarnessOptions{Apps: apps, Nodes: 2, Dir: "x",
		KillAfter: time.Second, KillNode: 5}); err == nil {
		t.Error("harness with out-of-range kill node accepted")
	}
}
