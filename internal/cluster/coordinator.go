package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"execrecon/internal/core"
	"execrecon/internal/fleet"
	"execrecon/internal/ir"
	"execrecon/internal/keyselect"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

// DefaultTTL is the default lease heartbeat deadline.
const DefaultTTL = 3 * time.Second

// CoordinatorOptions configures the cluster coordinator.
type CoordinatorOptions struct {
	// Fleet is the base fleet tuning (machines per app, pace, timeout,
	// telemetry registry, ...). Remote, Store, and ListenAddr are owned
	// by the coordinator and overwritten.
	Fleet fleet.Options
	// Store is the durable trace archive — required: it is the only
	// occurrence delivery path to (possibly re-dispatched) nodes.
	Store *tracestore.Store
	// WALPath is the lease/commit log file — required: it is what
	// makes the coordinator itself restartable.
	WALPath string
	// TTL is the lease heartbeat deadline (default DefaultTTL). Nodes
	// renew at TTL/3; the sweeper re-dispatches at expiry.
	TTL time.Duration
	// Listen is the coordinator endpoint address (default
	// "127.0.0.1:0"). It serves /metrics, /debug/er, and the /v1/*
	// wire protocol on one mux.
	Listen string
	// CheckpointBytes triggers a WAL checkpoint (snapshot + truncate)
	// once the log exceeds this size (default 256 KB).
	CheckpointBytes int64
	// Pprof mounts net/http/pprof on the endpoint.
	Pprof bool
	// Journal receives the coordinator's structured events (lease
	// lifecycle, sweeper/WAL errors that were previously silent) and
	// backs the endpoint's /debug/er/events drain. Nil disables.
	Journal *telemetry.Journal
	// Overhead is the recording-overhead accountant: rollouts
	// attribute their recording-set cost to it, and the endpoint
	// embeds its ledger (with budget-breach flags) in /debug/er. Nil
	// disables.
	Overhead *telemetry.Overhead
	// Log receives progress lines.
	Log io.Writer
}

// ctlState is a bucket lease's lifecycle:
//
//	pending -> leased -> resolved
//	   ^         |
//	   +-expire--+   (sweeper: TTL missed -> re-dispatch)
type ctlState int32

const (
	ctlPending ctlState = iota
	ctlLeased
	ctlResolved
)

func (s ctlState) String() string {
	switch s {
	case ctlPending:
		return "pending"
	case ctlLeased:
		return "leased"
	case ctlResolved:
		return "resolved"
	}
	return "unknown"
}

// bucketCtl is the coordinator's per-bucket lease record. All fields
// are guarded by Coordinator.mu.
type bucketCtl struct {
	addr bucketAddr
	sig  *vm.Failure
	// b is the fleet's live bucket; nil for WAL-recovered buckets
	// until production re-interns them.
	b            *fleet.Bucket
	state        ctlState
	queued       bool
	term         uint64
	node         string
	expiry       time.Time
	version      int // highest acknowledged rollout version
	iterations   int
	redispatches int
	report       *core.Report
	// notify is closed (and replaced) every time an occurrence is
	// banked under this bucket — the long-poll wakeup for Fetch.
	notify chan struct{}

	// Timeline state (timeline.go): the bucket's distributed trace
	// identity, lifecycle timestamps, bounded point events and lease
	// windows, and the per-term remote replay snapshots nodes ship
	// back on renew/resolve.
	trace      telemetry.SpanContext
	firstSeen  time.Time
	resolvedAt time.Time
	events     []tlEvent
	evDropped  int
	archived   bool // first archive event recorded
	leaseLog   []leaseWindow
	remote     map[uint64]telemetry.SpanSnapshot
}

// nodeSeen tracks a triage node's liveness and the vitals it
// piggybacks on heartbeats.
type nodeSeen struct {
	last   time.Time
	health NodeHealth
}

// Coordinator owns the production half of a distributed fleet: the
// producer machines, ingest, the bucket table, the trace archive, and
// the lease table — and serves the /v1/* wire protocol to triage
// nodes. It implements fleet.RemoteTriage.
type Coordinator struct {
	opts  CoordinatorOptions
	fleet *fleet.Fleet
	store *tracestore.Store
	wal   *WAL
	// base maps app name to its pristine module + entry, the root of
	// every stateless rollout rebuild.
	base   map[string]baseApp
	ttl    time.Duration
	server *telemetry.Server
	reg    *telemetry.Registry

	journal  *telemetry.Journal
	overhead *telemetry.Overhead

	mu        sync.Mutex
	ctls      map[bucketAddr]*bucketCtl
	queue     []*bucketCtl
	nodes     map[string]*nodeSeen
	recovered int
	// nodeGauges tracks which node names already have er_node_*
	// series registered (registration is dynamic, per first contact).
	nodeGauges map[string]bool

	// dispatch wakes lease long-pollers when the queue grows.
	dispatch chan struct{}

	granted      atomic.Int64
	renewed      atomic.Int64
	expired      atomic.Int64
	redispatched atomic.Int64
	resolvedN    atomic.Int64
	submits      atomic.Int64

	done chan struct{}
	wg   sync.WaitGroup
}

type baseApp struct {
	mod   *ir.Module
	entry string
}

// NewCoordinator replays the WAL, recovers the lease table, and
// assembles the coordinator's fleet in remote-node mode (not yet
// running).
func NewCoordinator(apps []fleet.App, opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("cluster: coordinator requires a trace store")
	}
	if opts.WALPath == "" {
		return nil, fmt.Errorf("cluster: coordinator requires a WAL path")
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	if opts.CheckpointBytes <= 0 {
		opts.CheckpointBytes = 256 << 10
	}
	wal, recovered, err := OpenWAL(opts.WALPath)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:       opts,
		store:      opts.Store,
		wal:        wal,
		base:       make(map[string]baseApp, len(apps)),
		ttl:        opts.TTL,
		journal:    opts.Journal,
		overhead:   opts.Overhead,
		ctls:       make(map[bucketAddr]*bucketCtl),
		nodes:      make(map[string]*nodeSeen),
		nodeGauges: make(map[string]bool),
		dispatch:   make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	for _, a := range apps {
		entry := a.Entry
		if entry == "" {
			entry = "main"
		}
		c.base[a.Name] = baseApp{mod: a.Module, entry: entry}
	}
	// Rebuild the lease table. Resolved buckets keep their verdicts
	// (re-interned buckets are resolved instantly, never re-triaged);
	// leases that were in flight at the crash are fenced — their term
	// survives (the next grant goes above it, so a zombie leaseholder
	// can never pass validation again) and the bucket re-queues when
	// production re-interns it.
	now := time.Now()
	for addr, rb := range recovered.Buckets {
		ctl := &bucketCtl{
			addr:         addr,
			sig:          rb.Sig,
			term:         rb.Term,
			version:      rb.Version,
			iterations:   rb.Iterations,
			redispatches: rb.Redispatches,
			notify:       make(chan struct{}),
			firstSeen:    rb.FirstSeen,
			resolvedAt:   rb.ResolvedAt,
		}
		// Restore the timeline skeleton: the trace id and ingest
		// time persisted on the grant, the final replay span on the
		// resolution — so ingest-through-resolve still renders for
		// buckets that completed before the crash.
		if rb.Trace != 0 {
			ctl.trace = telemetry.SpanContext{TraceID: rb.Trace, SpanID: telemetry.SpanID(rb.Trace)}
		}
		if !ctl.firstSeen.IsZero() {
			ctl.eventLocked(ctl.firstSeen, "ingest", telemetry.A("recovered", true))
		}
		ctl.eventLocked(now, "recovered", telemetry.A("term", rb.Term))
		if rb.Span != nil {
			ctl.remoteSpanLocked(rb.Term, *rb.Span)
			node := rb.Node
			if node == "" {
				node = rb.Span.Attrs["node"]
			}
			ctl.leaseLog = append(ctl.leaseLog, leaseWindow{
				term: rb.Term, node: node, start: rb.Span.Start,
				end: rb.ResolvedAt, reason: "resolved",
			})
		}
		if rb.Resolved {
			ctl.state = ctlResolved
			ctl.report = rb.Report
		} else {
			// The restarted fleet's machines are back at the
			// uninstrumented base deployment, so the rollout version
			// guard must reset with them: the next leaseholder replays
			// its chain from the archive and re-deploys each step.
			ctl.version = 0
			if rb.Leased {
				// Fence: log the forced expiry so the next replay agrees.
				if err := wal.Append(walRecord{T: walExpire, App: addr.App, Key: addr.Key, Term: rb.Term}); err != nil {
					wal.Close()
					return nil, err
				}
				ctl.eventLocked(now, "fenced",
					telemetry.A("term", rb.Term), telemetry.A("node", rb.Node))
				ctl.redispatches++
				c.expired.Add(1)
				c.redispatched.Add(1)
			}
		}
		c.ctls[addr] = ctl
		c.recovered++
	}
	if recovered.Records > 0 || recovered.Truncated > 0 {
		c.logf("cluster: WAL recovery: %d records, %d buckets (%d resolved), %d torn bytes truncated",
			recovered.Records, len(recovered.Buckets), c.countResolvedLocked(), recovered.Truncated)
	}

	fo := opts.Fleet
	fo.Remote = c
	fo.Store = opts.Store
	fo.ListenAddr = "" // the coordinator owns the endpoint
	f, err := fleet.New(apps, fo)
	if err != nil {
		wal.Close()
		return nil, err
	}
	c.fleet = f
	c.registerMetrics(fo.Telemetry)
	return c, nil
}

func (c *Coordinator) countResolvedLocked() int {
	n := 0
	for _, ctl := range c.ctls {
		if ctl.state == ctlResolved {
			n++
		}
	}
	return n
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.opts.Log != nil {
		fmt.Fprintf(c.opts.Log, format+"\n", args...)
	}
}

// Start launches the fleet's production half, the wire endpoint, and
// the lease sweeper.
func (c *Coordinator) Start() error {
	srv, err := telemetry.Serve(c.opts.Listen, telemetry.ServerOptions{
		Registry: c.opts.Fleet.Telemetry,
		Tracer:   c.opts.Fleet.Tracer,
		Journal:  c.journal,
		Overhead: c.overhead,
		Timeline: func() interface{} { return c.Timelines() },
		Pprof:    c.opts.Pprof,
		Debug: func() interface{} {
			return map[string]interface{}{
				"fleet":   c.fleet.Snapshot(),
				"cluster": c.Snapshot(),
			}
		},
		Extend: c.mount,
	})
	if err != nil {
		return fmt.Errorf("cluster: coordinator endpoint: %w", err)
	}
	c.server = srv
	if err := c.fleet.Start(); err != nil {
		srv.Close()
		return err
	}
	c.wg.Add(1)
	go c.sweeper()
	c.logf("cluster: coordinator on http://%s (TTL %v)", srv.Addr(), c.ttl)
	return nil
}

// Addr returns the bound endpoint address.
func (c *Coordinator) Addr() string { return c.server.Addr() }

// URL returns the coordinator base URL for Client.
func (c *Coordinator) URL() string { return "http://" + c.server.Addr() }

// Wait blocks until every expected failure resolves (or the fleet
// timeout fires), then shuts everything down: sweeper, endpoint, and
// — after a final checkpoint — the WAL.
func (c *Coordinator) Wait() (*fleet.Result, error) {
	res, ferr := c.fleet.Wait()
	close(c.done)
	c.wg.Wait()
	c.server.Close()
	c.mu.Lock()
	c.checkpointLocked()
	c.mu.Unlock()
	c.wal.Close()
	return res, ferr
}

// Crash abandons the coordinator without draining, checkpointing, or
// resolving anything — the kill -9 path the restart tests and the
// obs benchmark's coordinator-restart run exercise. The store stays
// open (it belongs to the caller).
func (c *Coordinator) Crash() {
	close(c.done)
	c.wg.Wait()
	c.server.Close()
	c.fleet.Abandon()
	c.wal.Close()
}

// Close releases a coordinator that was never started — the WAL
// handle is the only resource NewCoordinator acquires. It exists for
// recovery inspection (reopen the WAL, read Timelines, close);
// started coordinators shut down through Wait or Crash instead.
func (c *Coordinator) Close() { c.wal.Close() }

// --- fleet.RemoteTriage ---

// NewBucket attaches the fleet's freshly interned bucket to its lease
// record (creating one on first sight) and queues it for dispatch —
// or, if the WAL already carries its verdict, resolves it on the spot.
func (c *Coordinator) NewBucket(b *fleet.Bucket) {
	addr := bucketAddr{b.App, tracestore.KeyOf(b.Sig)}
	now := time.Now()
	c.mu.Lock()
	ctl := c.ctls[addr]
	if ctl == nil {
		ctl = &bucketCtl{addr: addr, sig: b.Sig, notify: make(chan struct{})}
		c.ctls[addr] = ctl
	}
	ctl.b = b
	if ctl.sig == nil {
		ctl.sig = b.Sig
	}
	// Mint the bucket's trace identity at first ingest (recovered
	// buckets keep the id the WAL grant persisted). The root span id
	// equals the trace id by convention; lease grants hand this
	// context to nodes so their replay trees stitch back under it.
	if !ctl.trace.Valid() {
		id := telemetry.NewTraceID()
		ctl.trace = telemetry.SpanContext{TraceID: id, SpanID: telemetry.SpanID(id)}
	}
	if ctl.firstSeen.IsZero() {
		ctl.firstSeen = now
		ctl.eventLocked(now, "ingest", telemetry.A("sig", b.Sig.Error()))
	}
	if ctl.state == ctlResolved {
		rep := ctl.report
		c.mu.Unlock()
		c.fleet.ResolveBucket(b, rep)
		c.journal.Log(telemetry.LevelInfo, "cluster", "bucket resolved from recovered WAL verdict",
			telemetry.A("app", addr.App), telemetry.A("key", fmt.Sprintf("%#x", addr.Key)))
		c.logf("cluster: bucket %s/%#x: resolved from recovered WAL verdict", addr.App, addr.Key)
		return
	}
	c.enqueueLocked(ctl)
	c.mu.Unlock()
	c.journal.Log(telemetry.LevelInfo, "cluster", "bucket ingested",
		telemetry.A("app", addr.App), telemetry.A("key", fmt.Sprintf("%#x", addr.Key)),
		telemetry.A("trace", ctl.trace.TraceID.String()))
}

// Banked wakes any node long-polling for this bucket's next banked
// occurrence, and marks the first archive on the timeline.
func (c *Coordinator) Banked(b *fleet.Bucket, seq uint64) {
	addr := bucketAddr{b.App, tracestore.KeyOf(b.Sig)}
	c.mu.Lock()
	if ctl := c.ctls[addr]; ctl != nil {
		if !ctl.archived {
			ctl.archived = true
			ctl.eventLocked(time.Now(), "archive", telemetry.A("seq", seq))
		}
		close(ctl.notify)
		ctl.notify = make(chan struct{})
	}
	c.mu.Unlock()
}

// enqueueLocked puts a pending ctl on the dispatch queue (idempotent)
// and signals lease long-pollers.
func (c *Coordinator) enqueueLocked(ctl *bucketCtl) {
	if ctl.queued || ctl.state != ctlPending || ctl.b == nil {
		return
	}
	ctl.queued = true
	c.queue = append(c.queue, ctl)
	select {
	case c.dispatch <- struct{}{}:
	default:
	}
}

// --- lease machinery ---

// grantLocked pops the next dispatchable bucket and leases it to
// node. The WAL append happens under the lock so the on-disk term
// order always matches the in-memory one.
func (c *Coordinator) grantLocked(node string) (*bucketCtl, uint64, error) {
	for len(c.queue) > 0 {
		ctl := c.queue[0]
		c.queue = c.queue[1:]
		ctl.queued = false
		if ctl.state != ctlPending || ctl.b == nil {
			continue // raced with resolve/expiry bookkeeping
		}
		ctl.term++
		if err := c.wal.Append(walRecord{
			T: walGrant, App: ctl.addr.App, Key: ctl.addr.Key,
			Node: node, Term: ctl.term, Sig: ctl.sig,
			Trace: ctl.trace.TraceID, FirstSeen: ctl.firstSeen,
		}); err != nil {
			ctl.term--
			c.enqueueLocked(ctl)
			return nil, 0, err
		}
		ctl.state = ctlLeased
		ctl.node = node
		now := time.Now()
		ctl.expiry = now.Add(c.ttl)
		ctl.openLeaseLocked(ctl.term, node, now)
		c.granted.Add(1)
		return ctl, ctl.term, nil
	}
	return nil, 0, nil
}

// validateLocked checks a node's fencing token: the lease must still
// be held by this node under this term.
func (ctl *bucketCtl) validateLocked(node string, term uint64) bool {
	return ctl != nil && ctl.state == ctlLeased && ctl.node == node && ctl.term == term
}

// touchNode records node liveness (any RPC counts).
func (c *Coordinator) touchNode(name string) {
	if name == "" {
		return
	}
	c.mu.Lock()
	ns := c.nodes[name]
	if ns == nil {
		ns = &nodeSeen{}
		c.nodes[name] = ns
	}
	ns.last = time.Now()
	c.mu.Unlock()
}

// sweeper expires overdue leases (re-dispatching their buckets) and
// prunes node liveness.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		c.mu.Lock()
		for _, ctl := range c.ctls {
			if ctl.state != ctlLeased || now.Before(ctl.expiry) {
				continue
			}
			if err := c.wal.Append(walRecord{
				T: walExpire, App: ctl.addr.App, Key: ctl.addr.Key,
				Node: ctl.node, Term: ctl.term,
			}); err != nil {
				// Previously a silent log line: a WAL that stops
				// accepting expiries threatens the fencing invariant,
				// so it is journaled at error level.
				c.journal.Log(telemetry.LevelError, "cluster", "wal expire append failed",
					telemetry.A("app", ctl.addr.App), telemetry.A("key", fmt.Sprintf("%#x", ctl.addr.Key)),
					telemetry.A("term", ctl.term), telemetry.A("err", err))
				c.logf("cluster: wal expire: %v", err)
				continue // retried next sweep
			}
			c.journal.Log(telemetry.LevelWarn, "cluster", "lease expired; re-dispatching",
				telemetry.A("app", ctl.addr.App), telemetry.A("key", fmt.Sprintf("%#x", ctl.addr.Key)),
				telemetry.A("term", ctl.term), telemetry.A("node", ctl.node))
			c.logf("cluster: lease %s/%#x term %d on %s expired; re-dispatching",
				ctl.addr.App, ctl.addr.Key, ctl.term, ctl.node)
			ctl.closeLeaseLocked(ctl.term, "expired", now)
			ctl.eventLocked(now, "expire",
				telemetry.A("term", ctl.term), telemetry.A("node", ctl.node))
			ctl.state = ctlPending
			ctl.node = ""
			ctl.redispatches++
			c.expired.Add(1)
			c.redispatched.Add(1)
			c.enqueueLocked(ctl)
		}
		for name, ns := range c.nodes {
			if now.Sub(ns.last) > 4*c.ttl {
				delete(c.nodes, name)
			}
		}
		c.mu.Unlock()
	}
}

// checkpointLocked snapshots the lease table into a single WAL
// checkpoint record, truncating the history it subsumes.
func (c *Coordinator) checkpointLocked() {
	state := make([]RecoveredBucket, 0, len(c.ctls))
	for _, ctl := range c.ctls {
		rb := RecoveredBucket{
			App: ctl.addr.App, Key: ctl.addr.Key, Sig: ctl.sig,
			Term: ctl.term, Version: ctl.version,
			Iterations: ctl.iterations, Redispatches: ctl.redispatches,
			Trace: ctl.trace.TraceID, FirstSeen: ctl.firstSeen,
			ResolvedAt: ctl.resolvedAt,
		}
		if sn, ok := ctl.remote[ctl.term]; ok {
			rb.Span = &sn
		}
		switch ctl.state {
		case ctlResolved:
			rb.Resolved = true
			rb.Report = ctl.report
		case ctlLeased:
			rb.Leased = true
			rb.Node = ctl.node
		}
		state = append(state, rb)
	}
	if err := c.wal.Checkpoint(state); err != nil {
		c.journal.Log(telemetry.LevelError, "cluster", "wal checkpoint failed",
			telemetry.A("err", err))
		c.logf("cluster: wal checkpoint: %v", err)
	}
}

// maybeCheckpointLocked checkpoints when the log has outgrown the
// configured bound.
func (c *Coordinator) maybeCheckpointLocked() {
	if c.wal.Bytes() > c.opts.CheckpointBytes {
		c.checkpointLocked()
	}
}

// rebuildModule re-derives the instrumented module for a rollout
// chain by applying it cumulatively to the app's base module.
// keyselect.Instrument is pure, which is what makes rollout requests
// stateless and replayable.
func (c *Coordinator) rebuildModule(app string, chain [][]symex.SiteKey) (*ir.Module, error) {
	b, ok := c.base[app]
	if !ok {
		return nil, fmt.Errorf("cluster: rollout names unknown app %q", app)
	}
	mod := b.mod
	for i, sites := range chain {
		next, err := keyselect.Instrument(mod, sites)
		if err != nil {
			return nil, fmt.Errorf("cluster: rebuild chain step %d: %w", i+1, err)
		}
		mod = next
	}
	return mod, nil
}

// Snapshot returns the cluster section of /debug/er.
func (c *Coordinator) Snapshot() ClusterSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Coordinator) snapshotLocked() ClusterSnapshot {
	snap := ClusterSnapshot{
		V:            ProtocolVersion,
		Granted:      c.granted.Load(),
		Renewed:      c.renewed.Load(),
		Expired:      c.expired.Load(),
		Redispatched: c.redispatched.Load(),
		Resolved:     c.resolvedN.Load(),
		Submits:      c.submits.Load(),
		WALBytes:     c.wal.Bytes(),
		Recovered:    c.recovered,
	}
	now := time.Now()
	leasesBy := make(map[string]int)
	for _, ctl := range c.ctls {
		if ctl.state == ctlLeased {
			leasesBy[ctl.node]++
		}
	}
	for name, ns := range c.nodes {
		if now.Sub(ns.last) <= 3*c.ttl {
			snap.NodesLive++
		}
		snap.Nodes = append(snap.Nodes, NodeInfo{
			Name: name, Leases: leasesBy[name], LastSeen: ns.last.Format(time.RFC3339Nano),
			Goroutines: ns.health.Goroutines, HeapBytes: ns.health.HeapBytes,
			Buckets: ns.health.Buckets,
		})
	}
	sort.Slice(snap.Nodes, func(i, j int) bool { return snap.Nodes[i].Name < snap.Nodes[j].Name })
	for _, ctl := range c.ctls {
		snap.Buckets = append(snap.Buckets, ctl.verdictLocked())
	}
	sort.Slice(snap.Buckets, func(i, j int) bool {
		if snap.Buckets[i].App != snap.Buckets[j].App {
			return snap.Buckets[i].App < snap.Buckets[j].App
		}
		return snap.Buckets[i].Key < snap.Buckets[j].Key
	})
	return snap
}

// nodesLive counts nodes heard from within the liveness window.
func (c *Coordinator) nodesLive() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	n := 0
	for _, ns := range c.nodes {
		if now.Sub(ns.last) <= 3*c.ttl {
			n++
		}
	}
	return n
}

func (ctl *bucketCtl) verdictLocked() BucketVerdict {
	v := BucketVerdict{
		App:          ctl.addr.App,
		Key:          ctl.addr.Key,
		State:        ctl.state.String(),
		Node:         ctl.node,
		Term:         ctl.term,
		Iterations:   ctl.iterations,
		Redispatches: ctl.redispatches,
	}
	if ctl.sig != nil {
		v.Sig = ctl.sig.Error()
	}
	if ctl.report != nil {
		v.Reproduced = ctl.report.Reproduced
		v.Verified = ctl.report.Verified
		v.FailReason = ctl.report.FailReason
	}
	return v
}
