package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"execrecon/internal/prod"
	"execrecon/internal/pt"
	"execrecon/internal/telemetry"
)

// maxPollWait bounds every long-poll (lease and fetch) so a dead
// client can never pin a handler past the endpoint's drain window.
const maxPollWait = 2 * time.Second

// mount attaches the wire protocol to the coordinator's telemetry
// mux (telemetry.ServerOptions.Extend).
func (c *Coordinator) mount(mux *http.ServeMux) {
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathRenew, c.handleRenew)
	mux.HandleFunc(PathFetch, c.handleFetch)
	mux.HandleFunc(PathRollout, c.handleRollout)
	mux.HandleFunc(PathResolve, c.handleResolve)
	mux.HandleFunc(PathSubmit, c.handleSubmit)
	mux.HandleFunc(PathVerdicts, c.handleVerdicts)
	mux.HandleFunc(PathState, c.handleState)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// okStatus / rejection build the response envelope.
func okStatus() Status { return Status{V: ProtocolVersion, OK: true} }

func rejection(format string, args ...interface{}) Status {
	return Status{V: ProtocolVersion, Err: fmt.Sprintf(format, args...)}
}

// decodeReq parses the body and enforces the protocol version; a
// false return means the rejection was already written.
func decodeReq(w http.ResponseWriter, r *http.Request, v interface{}, ver func() int) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("cluster: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	if got := ver(); got != ProtocolVersion {
		writeJSON(w, rejection("protocol version mismatch: node speaks v%d, coordinator v%d", got, ProtocolVersion))
		return false
	}
	return true
}

// clampWait converts a client's poll window to a bounded duration.
func clampWait(millis int64) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d < 0 {
		d = 0
	}
	if d > maxPollWait {
		d = maxPollWait
	}
	return d
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeReq(w, r, &req, func() int { return req.V }) {
		return
	}
	c.touchNode(req.Node)
	deadline := time.Now().Add(clampWait(req.WaitMillis))
	for {
		c.mu.Lock()
		ctl, term, err := c.grantLocked(req.Node)
		c.mu.Unlock()
		if err != nil {
			writeJSON(w, LeaseResponse{Status: rejection("lease grant: %v", err)})
			return
		}
		if ctl != nil {
			c.logf("cluster: leased %s/%#x term %d to %s", ctl.addr.App, ctl.addr.Key, term, req.Node)
			writeJSON(w, LeaseResponse{
				Status: okStatus(), Granted: true,
				App: ctl.addr.App, Key: ctl.addr.Key, Sig: ctl.sig,
				Term: term, TTLMillis: c.ttl.Milliseconds(),
				Trace: ctl.trace,
			})
			return
		}
		rem := time.Until(deadline)
		if rem <= 0 {
			writeJSON(w, LeaseResponse{Status: okStatus()})
			return
		}
		poll := 50 * time.Millisecond
		if rem < poll {
			poll = rem
		}
		select {
		case <-c.dispatch:
		case <-time.After(poll):
		case <-c.done:
			writeJSON(w, LeaseResponse{Status: rejection("coordinator shutting down")})
			return
		}
	}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decodeReq(w, r, &req, func() int { return req.V }) {
		return
	}
	c.touchNode(req.Node)
	addr := bucketAddr{req.App, req.Key}
	c.mu.Lock()
	if req.Health != nil {
		if ns := c.nodes[req.Node]; ns != nil {
			ns.health = *req.Health
			c.nodeGaugesLocked(req.Node)
		}
	}
	ctl := c.ctls[addr]
	if !ctl.validateLocked(req.Node, req.Term) {
		c.mu.Unlock()
		writeJSON(w, RenewResponse{Status: rejection("lease lost")})
		return
	}
	ctl.expiry = time.Now().Add(c.ttl)
	if req.Iterations > ctl.iterations {
		ctl.iterations = req.Iterations
	}
	if req.Span != nil {
		// Heartbeats ship the node's latest open replay snapshot: even a
		// node that dies mid-reconstruction leaves its partial subtree on
		// the bucket timeline.
		ctl.remoteSpanLocked(req.Term, *req.Span)
	}
	err := c.wal.Append(walRecord{
		T: walRenew, App: req.App, Key: req.Key,
		Node: req.Node, Term: req.Term, Iterations: req.Iterations,
	})
	c.maybeCheckpointLocked()
	c.mu.Unlock()
	if err != nil {
		writeJSON(w, RenewResponse{Status: rejection("wal: %v", err)})
		return
	}
	c.renewed.Add(1)
	writeJSON(w, RenewResponse{Status: okStatus()})
}

func (c *Coordinator) handleFetch(w http.ResponseWriter, r *http.Request) {
	var req FetchRequest
	if !decodeReq(w, r, &req, func() int { return req.V }) {
		return
	}
	c.touchNode(req.Node)
	addr := bucketAddr{req.App, req.Key}
	deadline := time.Now().Add(clampWait(req.WaitMillis))
	for {
		c.mu.Lock()
		ctl := c.ctls[addr]
		valid := ctl.validateLocked(req.Node, req.Term)
		var notify chan struct{}
		if valid {
			notify = ctl.notify
		}
		c.mu.Unlock()
		if !valid {
			writeJSON(w, FetchResponse{Status: rejection("lease lost")})
			return
		}
		// Scan the archive for the next matching record. The node's
		// cursor (AfterSeq) plus exact version matching skips records
		// banked for other apps sharing the key and records from stale
		// deployments.
		for _, ri := range c.store.Records(req.Key) {
			if ri.Seq < req.AfterSeq || ri.Meta.App != req.App ||
				ri.Meta.Lost > 0 || ri.Meta.Version != req.Version {
				continue
			}
			raw, info, err := c.store.ReadRaw(req.Key, ri.Seq)
			if err != nil {
				// Previously a silent log line: an unreadable archive
				// record means the node's replay skips an occurrence.
				c.journal.Log(telemetry.LevelWarn, "cluster", "archived occurrence unreadable; skipped",
					telemetry.A("app", req.App), telemetry.A("key", fmt.Sprintf("%#x", req.Key)),
					telemetry.A("seq", ri.Seq), telemetry.A("err", err))
				c.logf("cluster: fetch %s/%#x seq %d: %v", req.App, req.Key, ri.Seq, err)
				continue
			}
			writeJSON(w, FetchResponse{
				Status: okStatus(), Found: true,
				Seq: info.Seq, Raw: raw, Lost: info.Meta.Lost,
				Seed: info.Meta.Seed, Instrs: info.Meta.Instrs,
			})
			return
		}
		rem := time.Until(deadline)
		if rem <= 0 {
			writeJSON(w, FetchResponse{Status: okStatus()})
			return
		}
		poll := 500 * time.Millisecond
		if rem < poll {
			poll = rem
		}
		select {
		case <-notify:
		case <-time.After(poll):
		case <-c.done:
			writeJSON(w, FetchResponse{Status: rejection("coordinator shutting down")})
			return
		}
	}
}

func (c *Coordinator) handleRollout(w http.ResponseWriter, r *http.Request) {
	var req RolloutRequest
	if !decodeReq(w, r, &req, func() int { return req.V }) {
		return
	}
	c.touchNode(req.Node)
	addr := bucketAddr{req.App, req.Key}
	if req.Version != len(req.Chain) {
		writeJSON(w, RolloutResponse{Status: rejection("version %d does not match chain length %d", req.Version, len(req.Chain))})
		return
	}
	c.mu.Lock()
	ctl := c.ctls[addr]
	if !ctl.validateLocked(req.Node, req.Term) {
		c.mu.Unlock()
		writeJSON(w, RolloutResponse{Status: rejection("lease lost")})
		return
	}
	if req.Version <= ctl.version {
		// Replayed request (re-dispatched node retreading the chain):
		// the deployment is already at or past this version.
		c.mu.Unlock()
		writeJSON(w, RolloutResponse{Status: okStatus()})
		return
	}
	c.mu.Unlock()

	// Rebuild outside the lock — instrumentation is CPU work.
	mod, err := c.rebuildModule(req.App, req.Chain)
	if err != nil {
		writeJSON(w, RolloutResponse{Status: rejection("%v", err)})
		return
	}

	c.mu.Lock()
	if !ctl.validateLocked(req.Node, req.Term) {
		c.mu.Unlock()
		writeJSON(w, RolloutResponse{Status: rejection("lease lost")})
		return
	}
	if req.Version <= ctl.version {
		c.mu.Unlock()
		writeJSON(w, RolloutResponse{Status: okStatus()})
		return
	}
	if err := c.wal.Append(walRecord{
		T: walRollout, App: req.App, Key: req.Key,
		Node: req.Node, Term: req.Term, Version: req.Version,
	}); err != nil {
		c.mu.Unlock()
		writeJSON(w, RolloutResponse{Status: rejection("wal: %v", err)})
		return
	}
	ctl.version = req.Version
	ctl.eventLocked(time.Now(), "rollout",
		telemetry.A("version", req.Version), telemetry.A("sites", req.Sites),
		telemetry.A("cost_bytes", req.CostBytes))
	c.mu.Unlock()
	// Attribute the version's recording-set cost to the overhead
	// accountant's (app, version) ledger cell.
	c.overhead.SetRecordingCost(req.App, req.Version, req.Sites, req.CostBytes)
	c.journal.Log(telemetry.LevelInfo, "cluster", "rollout deployed",
		telemetry.A("app", req.App), telemetry.A("key", fmt.Sprintf("%#x", req.Key)),
		telemetry.A("version", req.Version), telemetry.A("sites", req.Sites))
	if err := c.fleet.Rollout(req.App, mod, req.Version); err != nil {
		writeJSON(w, RolloutResponse{Status: rejection("%v", err)})
		return
	}
	writeJSON(w, RolloutResponse{Status: okStatus()})
}

func (c *Coordinator) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req ResolveRequest
	if !decodeReq(w, r, &req, func() int { return req.V }) {
		return
	}
	c.touchNode(req.Node)
	if req.Report == nil {
		writeJSON(w, ResolveResponse{Status: rejection("resolve without a report")})
		return
	}
	addr := bucketAddr{req.App, req.Key}
	c.mu.Lock()
	ctl := c.ctls[addr]
	if ctl != nil && ctl.state == ctlResolved {
		c.mu.Unlock()
		writeJSON(w, ResolveResponse{Status: okStatus()}) // idempotent replay
		return
	}
	if !ctl.validateLocked(req.Node, req.Term) {
		c.mu.Unlock()
		writeJSON(w, ResolveResponse{Status: rejection("lease lost")})
		return
	}
	now := time.Now()
	if err := c.wal.Append(walRecord{
		T: walResolve, App: req.App, Key: req.Key,
		Node: req.Node, Term: req.Term, Sig: ctl.sig, Report: req.Report,
		At: now, Span: req.Span,
	}); err != nil {
		c.mu.Unlock()
		writeJSON(w, ResolveResponse{Status: rejection("wal: %v", err)})
		return
	}
	ctl.state = ctlResolved
	ctl.report = req.Report
	ctl.node = ""
	ctl.resolvedAt = now
	ctl.closeLeaseLocked(req.Term, "resolved", now)
	if req.Span != nil {
		ctl.remoteSpanLocked(req.Term, *req.Span)
	}
	ctl.eventLocked(now, "resolve",
		telemetry.A("node", req.Node), telemetry.A("reproduced", req.Report.Reproduced),
		telemetry.A("verified", req.Report.Verified))
	if n := len(req.Report.Iterations); n > ctl.iterations {
		ctl.iterations = n
	}
	b := ctl.b
	c.resolvedN.Add(1)
	c.maybeCheckpointLocked()
	c.mu.Unlock()
	c.fleet.ResolveBucket(b, req.Report)
	c.journal.Log(telemetry.LevelInfo, "cluster", "bucket resolved",
		telemetry.A("app", req.App), telemetry.A("key", fmt.Sprintf("%#x", req.Key)),
		telemetry.A("node", req.Node), telemetry.A("reproduced", req.Report.Reproduced),
		telemetry.A("verified", req.Report.Verified))
	c.logf("cluster: bucket %s/%#x resolved by %s (reproduced=%v verified=%v)",
		req.App, req.Key, req.Node, req.Report.Reproduced, req.Report.Verified)
	writeJSON(w, ResolveResponse{Status: okStatus()})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeReq(w, r, &req, func() int { return req.V }) {
		return
	}
	if req.Failure == nil {
		writeJSON(w, SubmitResponse{Status: rejection("submit without a failure signature")})
		return
	}
	if req.Lost > 0 {
		writeJSON(w, SubmitResponse{Status: rejection("trace ring overflowed (%d bytes lost); enlarge the capture ring", req.Lost)})
		return
	}
	if _, ok := c.base[req.App]; !ok {
		writeJSON(w, SubmitResponse{Status: rejection("unknown app %q", req.App)})
		return
	}
	var ring *pt.Ring
	if len(req.Raw) > 0 {
		ring = pt.NewRing(len(req.Raw))
		ring.Write(req.Raw)
	}
	accepted := c.fleet.Submit(&prod.TraceMsg{
		App:     req.App,
		Machine: req.Machine,
		Version: req.Version,
		Ring:    ring,
		Failure: req.Failure,
		Seed:    req.Seed,
		Instrs:  req.Instrs,
	})
	c.submits.Add(1)
	writeJSON(w, SubmitResponse{Status: okStatus(), Accepted: accepted})
}

func (c *Coordinator) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	snap := c.Snapshot()
	writeJSON(w, VerdictsResponse{Status: okStatus(), Buckets: snap.Buckets})
}

func (c *Coordinator) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Snapshot())
}
