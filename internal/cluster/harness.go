package cluster

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"execrecon/internal/fleet"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
)

// HarnessOptions configures an in-process multi-node cluster: one
// coordinator plus N triage nodes wired over real HTTP on loopback —
// the `erbench -exp fleet -nodes N` backend and the chaos-test
// substrate.
type HarnessOptions struct {
	// Apps is the application mix (coordinator machines produce their
	// failures; every node can triage every app).
	Apps []fleet.App
	// Nodes is the triage node count (>= 1).
	Nodes int
	// WorkersPerNode is each node's concurrent-lease budget
	// (default 2).
	WorkersPerNode int
	// TTL is the lease heartbeat deadline (default 500ms — loopback
	// heartbeats are cheap and short TTLs keep re-dispatch snappy).
	TTL time.Duration
	// Dir roots the durable state: Dir/store (trace archive) and
	// Dir/lease.wal (commit log). Required.
	Dir string
	// KillAfter, when > 0, kill -9s node KillNode that long after
	// start — the chaos mode. The run must still resolve every
	// bucket: the victim's leases expire and survivors replay from
	// the archive.
	KillAfter time.Duration
	// KillNode is the victim's index in [0, Nodes) (default 0).
	KillNode int
	// Fleet tuning passed through to the coordinator.
	MachinesPerApp int
	Pace           time.Duration
	Timeout        time.Duration
	// Node solver tuning.
	SolverSessions   bool
	PortfolioWorkers int
	Speculate        bool
	// Telemetry, when set, receives the er_fleet_*/er_cluster_*
	// series.
	Telemetry *telemetry.Registry
	// Journal, when set, receives the coordinator's and fleet's
	// structured events.
	Journal *telemetry.Journal
	// Overhead, when set, is the recording-overhead accountant the
	// coordinator's machines and rollouts report into.
	Overhead *telemetry.Overhead
	// NodeTracers, when true, gives every node its own tracer so
	// replay span trees ship back and stitch into bucket timelines.
	NodeTracers bool
	// Log receives progress lines.
	Log io.Writer
}

// HarnessResult is one multi-node run's outcome.
type HarnessResult struct {
	// Fleet is the coordinator fleet's aggregate result.
	Fleet *fleet.Result
	// Cluster is the closing lease-table snapshot.
	Cluster ClusterSnapshot
	// NodeResolved is the per-node resolved-bucket count.
	NodeResolved []int64
	// Killed is the chaos victim's index (-1 without chaos).
	Killed int
	// Timelines is every bucket's stitched end-to-end timeline,
	// captured before shutdown.
	Timelines []BucketTimeline
}

// RunHarness runs an in-process cluster to completion: coordinator on
// an ephemeral loopback port, N nodes leasing over real HTTP, and an
// optional mid-run node kill.
func RunHarness(opts HarnessOptions) (*HarnessResult, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("cluster: harness requires at least one node")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("cluster: harness requires a state directory")
	}
	if opts.TTL <= 0 {
		opts.TTL = 500 * time.Millisecond
	}
	if opts.WorkersPerNode <= 0 {
		opts.WorkersPerNode = 2
	}
	if opts.KillAfter > 0 && (opts.KillNode < 0 || opts.KillNode >= opts.Nodes) {
		return nil, fmt.Errorf("cluster: kill node %d out of range [0,%d)", opts.KillNode, opts.Nodes)
	}

	store, err := tracestore.Open(filepath.Join(opts.Dir, "store"), tracestore.Options{})
	if err != nil {
		return nil, err
	}
	defer store.Close()

	coord, err := NewCoordinator(opts.Apps, CoordinatorOptions{
		Fleet: fleet.Options{
			MachinesPerApp: opts.MachinesPerApp,
			Pace:           opts.Pace,
			Timeout:        opts.Timeout,
			Telemetry:      opts.Telemetry,
			Journal:        opts.Journal,
			Overhead:       opts.Overhead,
			Log:            opts.Log,
		},
		Store:    store,
		WALPath:  filepath.Join(opts.Dir, "lease.wal"),
		TTL:      opts.TTL,
		Journal:  opts.Journal,
		Overhead: opts.Overhead,
		Log:      opts.Log,
	})
	if err != nil {
		return nil, err
	}
	if err := coord.Start(); err != nil {
		return nil, err
	}

	nodes := make([]*Node, opts.Nodes)
	for i := range nodes {
		var tracer *telemetry.Tracer
		if opts.NodeTracers {
			tracer = telemetry.NewTracer(0)
		}
		n, err := NewNode(NodeOptions{
			Name:             fmt.Sprintf("node-%d", i),
			Coordinator:      coord.URL(),
			Apps:             opts.Apps,
			Workers:          opts.WorkersPerNode,
			SolverSessions:   opts.SolverSessions,
			PortfolioWorkers: opts.PortfolioWorkers,
			Speculate:        opts.Speculate,
			Tracer:           tracer,
			Log:              opts.Log,
		})
		if err == nil {
			err = n.Start()
		}
		if err != nil {
			coord.Crash()
			for _, m := range nodes[:i] {
				m.Close()
			}
			return nil, err
		}
		nodes[i] = n
	}

	killed := -1
	var killTimer *time.Timer
	if opts.KillAfter > 0 {
		victim := nodes[opts.KillNode]
		killed = opts.KillNode
		killTimer = time.AfterFunc(opts.KillAfter, func() {
			victim.Kill()
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "harness: killed node-%d after %v\n", opts.KillNode, opts.KillAfter)
			}
		})
	}

	res, werr := coord.Wait()
	if killTimer != nil {
		killTimer.Stop()
	}
	for _, n := range nodes {
		n.Close()
	}
	out := &HarnessResult{
		Fleet:     res,
		Cluster:   coord.Snapshot(),
		Killed:    killed,
		Timelines: coord.Timelines(),
	}
	for _, n := range nodes {
		out.NodeResolved = append(out.NodeResolved, n.Resolved())
	}
	return out, werr
}
