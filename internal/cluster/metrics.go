package cluster

import "execrecon/internal/telemetry"

// registerMetrics publishes the er_cluster_* series on the shared
// registry. Counters and gauges are collection-time callbacks over
// the coordinator's own atomics — one source of truth for /metrics,
// /debug/er, and /v1/state alike.
func (c *Coordinator) registerMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	c.reg = r
	r.GaugeFunc("er_cluster_nodes_live",
		"Triage nodes heard from within the liveness window (3×TTL).",
		func() float64 { return float64(c.nodesLive()) })
	r.CounterFunc("er_cluster_leases_granted_total",
		"Bucket leases granted to triage nodes.",
		func() float64 { return float64(c.granted.Load()) })
	r.CounterFunc("er_cluster_leases_renewed_total",
		"Lease heartbeat renewals accepted.",
		func() float64 { return float64(c.renewed.Load()) })
	r.CounterFunc("er_cluster_leases_expired_total",
		"Leases expired after a missed TTL (node death or partition).",
		func() float64 { return float64(c.expired.Load()) })
	r.CounterFunc("er_cluster_leases_redispatched_total",
		"Buckets re-dispatched to a surviving node after lease loss.",
		func() float64 { return float64(c.redispatched.Load()) })
	r.CounterFunc("er_cluster_buckets_resolved_total",
		"Buckets resolved by remote triage nodes.",
		func() float64 { return float64(c.resolvedN.Load()) })
	r.CounterFunc("er_cluster_submits_total",
		"Externally submitted occurrences (er client mode).",
		func() float64 { return float64(c.submits.Load()) })
	r.GaugeFunc("er_cluster_wal_bytes",
		"Current size of the lease/commit write-ahead log.",
		func() float64 { return float64(c.wal.Bytes()) })
}

// nodeGaugesLocked registers the er_node_* vitals series for a node
// on first contact (heartbeats keep the backing nodeSeen.health
// fresh; the closures read it under c.mu at collection time). Callers
// hold c.mu.
func (c *Coordinator) nodeGaugesLocked(name string) {
	if c.reg == nil || c.nodeGauges[name] {
		return
	}
	c.nodeGauges[name] = true
	node := telemetry.L("node", name)
	health := func(f func(NodeHealth, int) float64) func() float64 {
		return func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			ns := c.nodes[name]
			if ns == nil {
				return 0
			}
			leases := 0
			for _, ctl := range c.ctls {
				if ctl.state == ctlLeased && ctl.node == name {
					leases++
				}
			}
			return f(ns.health, leases)
		}
	}
	c.reg.GaugeFunc("er_node_goroutines",
		"Goroutines on the triage node, from its last heartbeat.",
		health(func(h NodeHealth, _ int) float64 { return float64(h.Goroutines) }), node)
	c.reg.GaugeFunc("er_node_heap_bytes",
		"Heap bytes in use on the triage node, from its last heartbeat.",
		health(func(h NodeHealth, _ int) float64 { return float64(h.HeapBytes) }), node)
	c.reg.GaugeFunc("er_node_buckets",
		"Bucket leases the triage node reports holding.",
		health(func(h NodeHealth, _ int) float64 { return float64(h.Buckets) }), node)
	c.reg.GaugeFunc("er_node_leases",
		"Bucket leases the coordinator's lease table holds for the node.",
		health(func(_ NodeHealth, leases int) float64 { return float64(leases) }), node)
}
