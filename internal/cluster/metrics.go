package cluster

import "execrecon/internal/telemetry"

// registerMetrics publishes the er_cluster_* series on the shared
// registry. Counters and gauges are collection-time callbacks over
// the coordinator's own atomics — one source of truth for /metrics,
// /debug/er, and /v1/state alike.
func (c *Coordinator) registerMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("er_cluster_nodes_live",
		"Triage nodes heard from within the liveness window (3×TTL).",
		func() float64 { return float64(c.nodesLive()) })
	r.CounterFunc("er_cluster_leases_granted_total",
		"Bucket leases granted to triage nodes.",
		func() float64 { return float64(c.granted.Load()) })
	r.CounterFunc("er_cluster_leases_renewed_total",
		"Lease heartbeat renewals accepted.",
		func() float64 { return float64(c.renewed.Load()) })
	r.CounterFunc("er_cluster_leases_expired_total",
		"Leases expired after a missed TTL (node death or partition).",
		func() float64 { return float64(c.expired.Load()) })
	r.CounterFunc("er_cluster_leases_redispatched_total",
		"Buckets re-dispatched to a surviving node after lease loss.",
		func() float64 { return float64(c.redispatched.Load()) })
	r.CounterFunc("er_cluster_buckets_resolved_total",
		"Buckets resolved by remote triage nodes.",
		func() float64 { return float64(c.resolvedN.Load()) })
	r.CounterFunc("er_cluster_submits_total",
		"Externally submitted occurrences (er client mode).",
		func() float64 { return float64(c.submits.Load()) })
	r.GaugeFunc("er_cluster_wal_bytes",
		"Current size of the lease/commit write-ahead log.",
		func() float64 { return float64(c.wal.Bytes()) })
}
