package cluster

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"execrecon/internal/core"
	"execrecon/internal/fleet"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// NodeOptions configures a triage node.
type NodeOptions struct {
	// Name identifies the node in lease and liveness bookkeeping.
	Name string
	// Coordinator is the coordinator base URL.
	Coordinator string
	// Apps lists the applications this node can triage (module,
	// entry, symex options; the production-side fields are unused).
	Apps []fleet.App
	// Workers is how many buckets the node reconstructs concurrently
	// (default 2).
	Workers int
	// MaxIterations bounds each pipeline's reoccurrence loop
	// (default 16).
	MaxIterations int
	// SolverSessions enables a persistent incremental solver session
	// per leased bucket; Speculate additionally pre-solves predicted
	// queries while waiting for the next banked occurrence.
	SolverSessions        bool
	SolverMaxSessionNodes int
	PortfolioWorkers      int
	PortfolioCubeVars     int
	Speculate             bool
	// Tracer records each leased bucket's replay as a span tree rooted
	// under the coordinator's bucket span (the lease grant carries the
	// parent context); snapshots ship back on heartbeats and with the
	// resolution. Nil disables span shipping (timelines still render
	// from coordinator-side events alone).
	Tracer *telemetry.Tracer
	// Log receives progress lines.
	Log io.Writer
}

// Node is a remote triage worker: it leases buckets from the
// coordinator, replays their banked occurrences through a local ER
// pipeline, ships rollout chains back, and resolves verdicts.
type Node struct {
	opts   NodeOptions
	client *Client
	apps   map[string]fleet.App

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	started  atomic.Bool
	killed   atomic.Bool
	leases   atomic.Int64 // leases accepted over the node's lifetime
	held     atomic.Int64 // leases currently held (heartbeat vitals)
	resolved atomic.Int64 // buckets this node resolved
	lost     atomic.Int64 // leases lost (fenced or expired under us)
}

// health samples the node's runtime vitals for a heartbeat.
func (n *Node) health() *NodeHealth {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &NodeHealth{
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
		Buckets:    int(n.held.Load()),
	}
}

// NewNode validates the options and assembles a node (not yet
// running).
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.Name == "" {
		return nil, fmt.Errorf("cluster: node requires a name")
	}
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("cluster: node requires a coordinator URL")
	}
	if len(opts.Apps) == 0 {
		return nil, fmt.Errorf("cluster: node requires at least one app module")
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	n := &Node{
		opts:   opts,
		client: NewClient(opts.Coordinator, opts.Name),
		apps:   make(map[string]fleet.App, len(opts.Apps)),
	}
	for _, a := range opts.Apps {
		n.apps[a.Name] = a
	}
	return n, nil
}

func (n *Node) logf(format string, args ...interface{}) {
	if n.opts.Log != nil {
		fmt.Fprintf(n.opts.Log, "node %s: "+format+"\n", append([]interface{}{n.opts.Name}, args...)...)
	}
}

// Start launches the lease workers.
func (n *Node) Start() error {
	if !n.started.CompareAndSwap(false, true) {
		return fmt.Errorf("cluster: node already started")
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	for i := 0; i < n.opts.Workers; i++ {
		n.wg.Add(1)
		go n.worker()
	}
	return nil
}

// Kill is the kill -9 of the chaos tests: every worker and heartbeat
// stops at its next context check and the node never speaks to the
// coordinator again. In-flight reconstructions are simply abandoned —
// their leases expire and the coordinator re-dispatches the buckets.
func (n *Node) Kill() {
	if n.killed.CompareAndSwap(false, true) {
		n.cancel()
	}
}

// Killed reports whether Kill was called.
func (n *Node) Killed() bool { return n.killed.Load() }

// Close stops the node and joins its workers. (A killed node's
// workers are already unwinding; Close just joins them.)
func (n *Node) Close() {
	if !n.started.Load() {
		return
	}
	n.cancel()
	n.wg.Wait()
}

// Resolved returns how many buckets this node resolved.
func (n *Node) Resolved() int64 { return n.resolved.Load() }

// LeasesLost returns how many leases this node lost to fencing.
func (n *Node) LeasesLost() int64 { return n.lost.Load() }

// worker is one lease loop: acquire, reconstruct, repeat.
func (n *Node) worker() {
	defer n.wg.Done()
	for n.ctx.Err() == nil {
		resp, err := n.client.Lease(time.Second)
		if n.ctx.Err() != nil {
			return
		}
		if err != nil || !resp.OK {
			if err != nil {
				n.logf("lease: %v", err)
			}
			select {
			case <-n.ctx.Done():
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		if !resp.Granted {
			continue
		}
		n.leases.Add(1)
		n.runLease(resp)
	}
}

// runLease drives one leased bucket's reconstruction to resolution —
// or abandons it the moment the lease is lost.
func (n *Node) runLease(l *LeaseResponse) {
	app, ok := n.apps[l.App]
	if !ok {
		// Misconfigured node: let the lease expire so a properly
		// configured survivor inherits the bucket.
		n.logf("leased %s/%#x but have no module for app %q; abandoning", l.App, l.Key, l.App)
		return
	}
	ttl := time.Duration(l.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	leaseCtx, leaseCancel := context.WithCancel(n.ctx)
	defer leaseCancel()
	n.held.Add(1)
	defer n.held.Add(-1)

	// Open the replay span as a remote child of the coordinator's
	// bucket span (the grant carried its context). The replay loop
	// refreshes spanSnap after every feed; the heartbeat goroutine
	// ships whatever is latest, so a node killed mid-reconstruction
	// still leaves its partial subtree on the bucket timeline.
	replay := n.opts.Tracer.StartRemote("replay", l.Trace,
		telemetry.A("node", n.opts.Name), telemetry.A("app", l.App),
		telemetry.A("key", fmt.Sprintf("%#x", l.Key)), telemetry.A("term", l.Term))
	var spanSnap atomic.Pointer[telemetry.SpanSnapshot]
	shipSnap := func() {
		if replay != nil {
			sn := replay.Snapshot()
			spanSnap.Store(&sn)
		}
	}
	shipSnap()

	p, err := core.NewPipeline(core.Config{
		Module:                app.Module,
		Entry:                 app.Entry,
		Symex:                 app.Symex,
		MaxIterations:         n.opts.MaxIterations,
		IncrementalSolver:     n.opts.SolverSessions,
		SolverMaxSessionNodes: n.opts.SolverMaxSessionNodes,
		PortfolioWorkers:      n.opts.PortfolioWorkers,
		PortfolioCubeVars:     n.opts.PortfolioCubeVars,
		Speculate:             n.opts.Speculate,
		Tracer:                n.opts.Tracer,
		ParentSpan:            replay,
		Log:                   n.opts.Log,
	})
	if err != nil {
		// A broken pipeline config is permanent for this node-app
		// pair; resolving as failed beats leaving the bucket to ping
		// between equally broken nodes forever.
		n.logf("pipeline for %s: %v", l.App, err)
		n.resolve(l, &core.Report{Failure: l.Sig, FailReason: err.Error()}, replay)
		return
	}

	// Heartbeat at TTL/3; a refused renewal means the lease is gone
	// and the reconstruction must be abandoned mid-flight.
	var iters atomic.Int32
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
			}
			resp, err := n.client.Renew(&RenewRequest{
				App: l.App, Key: l.Key, Term: l.Term,
				Iterations: int(iters.Load()),
				Span:       spanSnap.Load(),
				Health:     n.health(),
			})
			if err != nil || !resp.OK {
				if err == nil {
					n.lost.Add(1)
					n.logf("lease %s/%#x term %d lost: %s", l.App, l.Key, l.Term, resp.Err)
				}
				leaseCancel()
				return
			}
		}
	}()
	defer func() { leaseCancel(); <-hbDone }()

	// Replay from sequence zero: the archive is the delivery path, so
	// a re-dispatched bucket retreads its whole history (reference
	// occurrence, every banked reoccurrence, every rollout step) and
	// lands exactly where the dead node left off.
	var after uint64
	for !p.Done() {
		if leaseCtx.Err() != nil {
			return
		}
		fr, err := n.client.Fetch(l.App, l.Key, l.Term, after, p.Version(), 500*time.Millisecond)
		if err != nil {
			if leaseCtx.Err() != nil {
				return
			}
			n.logf("fetch %s/%#x: %v", l.App, l.Key, err)
			select {
			case <-leaseCtx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		if !fr.OK {
			n.lost.Add(1)
			n.logf("lease %s/%#x term %d fenced during fetch: %s", l.App, l.Key, l.Term, fr.Err)
			return
		}
		if !fr.Found {
			// Nothing banked for this version yet: production is still
			// re-hitting the failure. Overlap the wait with a
			// speculative pre-solve (no-op unless configured).
			p.Speculate()
			continue
		}
		after = fr.Seq + 1
		occ, err := occurrenceFromFetch(l.Sig, fr)
		if err != nil {
			n.logf("decode %s/%#x seq %d: %v", l.App, l.Key, fr.Seq, err)
			continue
		}
		before := p.Version()
		if _, err := p.Feed(occ); err != nil {
			n.logf("pipeline %s/%#x: %v", l.App, l.Key, err)
		}
		iters.Store(int32(len(p.Report().Iterations)))
		shipSnap()
		if p.Version() != before && !p.Done() {
			// Key data values selected: ship the full accumulated
			// chain so the coordinator can rebuild and deploy the
			// instrumented module statelessly.
			chain := chainOf(p.Report())
			sites, costBytes := recordingCostOf(p.Report())
			resp, err := n.client.Rollout(&RolloutRequest{
				App: l.App, Key: l.Key, Term: l.Term,
				Version: p.Version(), Chain: chain,
				Sites: sites, CostBytes: costBytes,
			})
			if err != nil {
				n.logf("rollout %s/%#x v%d: %v", l.App, l.Key, p.Version(), err)
				return // lease will expire; survivor replays
			}
			if !resp.OK {
				n.lost.Add(1)
				n.logf("lease %s/%#x term %d fenced during rollout: %s", l.App, l.Key, l.Term, resp.Err)
				return
			}
		}
	}
	if leaseCtx.Err() != nil {
		return // killed or fenced between the last feed and here
	}
	n.resolve(l, p.Report(), replay)
}

// resolve commits the verdict, shipping the finished replay span tree
// so the coordinator can pin the final remote subtree on the bucket
// timeline; a fenced resolve is logged and dropped (the surviving
// leaseholder will resolve instead).
func (n *Node) resolve(l *LeaseResponse, rep *core.Report, replay *telemetry.Span) {
	var span *telemetry.SpanSnapshot
	if replay != nil {
		replay.SetAttr("reproduced", rep.Reproduced)
		replay.SetAttr("verified", rep.Verified)
		replay.End()
		sn := replay.Snapshot()
		span = &sn
	}
	resp, err := n.client.Resolve(&ResolveRequest{
		App: l.App, Key: l.Key, Term: l.Term, Report: rep, Span: span,
	})
	if err != nil {
		n.logf("resolve %s/%#x: %v", l.App, l.Key, err)
		return
	}
	if !resp.OK {
		n.lost.Add(1)
		n.logf("lease %s/%#x term %d fenced during resolve: %s", l.App, l.Key, l.Term, resp.Err)
		return
	}
	n.resolved.Add(1)
	n.logf("resolved %s/%#x (reproduced=%v verified=%v, %d iterations)",
		l.App, l.Key, rep.Reproduced, rep.Verified, len(rep.Iterations))
}

// chainOf extracts the accumulated instrumentation-site chain from a
// pipeline report (one entry per stall iteration, in order).
func chainOf(rep *core.Report) [][]symex.SiteKey {
	var chain [][]symex.SiteKey
	for _, it := range rep.Iterations {
		if len(it.Sites) > 0 {
			chain = append(chain, it.Sites)
		}
	}
	return chain
}

// recordingCostOf totals the accumulated recording set across the
// report's stall iterations: the site count and estimated
// per-occurrence byte cost of the version about to roll out (the
// chain is cumulative, so the totals are too).
func recordingCostOf(rep *core.Report) (sites int, costBytes int64) {
	for _, it := range rep.Iterations {
		if len(it.Sites) > 0 {
			sites += len(it.Sites)
			costBytes += it.RecordingCost
		}
	}
	return sites, costBytes
}

// occurrenceFromFetch rebuilds a pipeline occurrence from a fetched
// archive record.
func occurrenceFromFetch(sig *vm.Failure, fr *FetchResponse) (*core.Occurrence, error) {
	occ := &core.Occurrence{
		Result: &vm.Result{
			Failure: sig,
			Stats:   vm.Stats{Instrs: fr.Instrs},
		},
		Seed: fr.Seed,
	}
	if len(fr.Raw) == 0 {
		return occ, nil // untraced occurrence
	}
	tr, err := pt.DecodeBytes(fr.Raw, fr.Lost)
	if err != nil {
		return nil, fmt.Errorf("trace decode: %w", err)
	}
	if tr.Truncated {
		return nil, fmt.Errorf("trace ring overflowed (%d bytes lost)", tr.LostBytes)
	}
	occ.Trace = tr
	return occ, nil
}
