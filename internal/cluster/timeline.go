package cluster

import (
	"fmt"
	"sort"
	"time"

	"execrecon/internal/telemetry"
)

// Per-bucket timeline assembly. A bucket's life crosses two
// processes — coordinator ingest/archive/lease on one side, node
// replay/solve on the other — and this file stitches both halves
// into a single span tree per bucket: a synthetic "bucket" root
// (start = ingest) carrying point events (ingest, archive, rollout,
// resolve, recovered) and one "lease" child per grant window, under
// which the remote replay subtree the leaseholder shipped back
// (heartbeat: latest open snapshot; resolve: final tree) is
// attached by term. The skeleton is durable: grants persist the
// trace id and ingest time, resolutions persist the final remote
// span, so timelines survive lease expiry, re-dispatch, and
// coordinator WAL restart.

const (
	// maxTimelineEvents bounds a bucket's point-event list; overflow
	// is counted and surfaced as a root attribute rather than
	// silently dropped.
	maxTimelineEvents = 48
	// maxLeaseWindows bounds the per-bucket lease history (each
	// re-dispatch opens a new window).
	maxLeaseWindows = 16
	// maxRemoteSpans bounds how many per-term remote replay snapshots
	// a bucket retains (the newest terms win).
	maxRemoteSpans = 8
)

// tlEvent is one point event on a bucket timeline.
type tlEvent struct {
	at    time.Time
	name  string
	attrs []telemetry.Attr
}

// leaseWindow is one grant's [start, end) on the timeline. reason is
// empty while the lease is live, then "resolved" or "expired".
type leaseWindow struct {
	term   uint64
	node   string
	start  time.Time
	end    time.Time
	reason string
}

// eventLocked appends a point event (bounded). Callers hold
// Coordinator.mu.
func (ctl *bucketCtl) eventLocked(at time.Time, name string, attrs ...telemetry.Attr) {
	if len(ctl.events) >= maxTimelineEvents {
		ctl.evDropped++
		return
	}
	ctl.events = append(ctl.events, tlEvent{at: at, name: name, attrs: attrs})
}

// openLeaseLocked starts a lease window at grant time.
func (ctl *bucketCtl) openLeaseLocked(term uint64, node string, at time.Time) {
	if len(ctl.leaseLog) >= maxLeaseWindows {
		// Keep the newest windows: drop the oldest closed one.
		copy(ctl.leaseLog, ctl.leaseLog[1:])
		ctl.leaseLog = ctl.leaseLog[:len(ctl.leaseLog)-1]
	}
	ctl.leaseLog = append(ctl.leaseLog, leaseWindow{term: term, node: node, start: at})
}

// closeLeaseLocked ends the window for term with the given reason.
func (ctl *bucketCtl) closeLeaseLocked(term uint64, reason string, at time.Time) {
	for i := len(ctl.leaseLog) - 1; i >= 0; i-- {
		if ctl.leaseLog[i].term == term {
			if ctl.leaseLog[i].reason == "" {
				ctl.leaseLog[i].end = at
				ctl.leaseLog[i].reason = reason
			}
			return
		}
	}
}

// remoteSpanLocked stores the newest replay snapshot for term
// (heartbeats replace; the resolve-time final tree replaces last).
func (ctl *bucketCtl) remoteSpanLocked(term uint64, sn telemetry.SpanSnapshot) {
	if ctl.remote == nil {
		ctl.remote = make(map[uint64]telemetry.SpanSnapshot)
	}
	if _, ok := ctl.remote[term]; !ok && len(ctl.remote) >= maxRemoteSpans {
		oldest := uint64(0)
		for t := range ctl.remote {
			if oldest == 0 || t < oldest {
				oldest = t
			}
		}
		delete(ctl.remote, oldest)
	}
	ctl.remote[term] = sn
}

// BucketTimeline is one bucket's stitched end-to-end story, as served
// by /debug/er/timeline and `er -coordinator timeline`.
type BucketTimeline struct {
	App          string    `json:"app"`
	Key          uint64    `json:"key"`
	TraceID      string    `json:"trace_id"`
	State        string    `json:"state"`
	FirstSeen    time.Time `json:"first_seen"`
	ResolvedAt   time.Time `json:"resolved_at,omitempty"`
	Redispatches int       `json:"redispatches"`
	// Root is the stitched span tree: ingest → archive → lease →
	// (remote) replay/reconstruction/iterations → rollouts → resolve.
	Root telemetry.SpanSnapshot `json:"root"`
}

// timelineLocked renders the ctl's current timeline. Callers hold
// Coordinator.mu.
func (ctl *bucketCtl) timelineLocked(now time.Time) BucketTimeline {
	tl := BucketTimeline{
		App:          ctl.addr.App,
		Key:          ctl.addr.Key,
		TraceID:      ctl.trace.TraceID.String(),
		State:        ctl.state.String(),
		FirstSeen:    ctl.firstSeen,
		ResolvedAt:   ctl.resolvedAt,
		Redispatches: ctl.redispatches,
	}
	root := telemetry.SpanSnapshot{
		Name:    "bucket",
		Start:   ctl.firstSeen,
		TraceID: ctl.trace.TraceID.String(),
		SpanID:  ctl.trace.SpanID.String(),
		Attrs: map[string]string{
			"app":   ctl.addr.App,
			"key":   fmt.Sprintf("%#x", ctl.addr.Key),
			"state": ctl.state.String(),
		},
	}
	if ctl.sig != nil {
		root.Attrs["sig"] = ctl.sig.Error()
	}
	if ctl.evDropped > 0 {
		root.Attrs["events_dropped"] = fmt.Sprintf("%d", ctl.evDropped)
	}
	if ctl.b != nil {
		root.Attrs["occurrences"] = fmt.Sprintf("%d", ctl.b.Occurrences())
	}
	end := ctl.resolvedAt
	if ctl.state != ctlResolved || end.IsZero() {
		root.Open = true
		end = now
	}
	if !ctl.firstSeen.IsZero() && end.After(ctl.firstSeen) {
		root.Duration = end.Sub(ctl.firstSeen)
	}
	for _, ev := range ctl.events {
		sn := telemetry.SpanSnapshot{
			Name:    ev.name,
			Start:   ev.at,
			TraceID: root.TraceID,
		}
		if len(ev.attrs) > 0 {
			sn.Attrs = make(map[string]string, len(ev.attrs))
			for _, a := range ev.attrs {
				sn.Attrs[a.Key] = a.Value
			}
		}
		root.Children = append(root.Children, sn)
	}
	for _, lw := range ctl.leaseLog {
		sn := telemetry.SpanSnapshot{
			Name:    "lease",
			Start:   lw.start,
			TraceID: root.TraceID,
			Attrs: map[string]string{
				"term": fmt.Sprintf("%d", lw.term),
				"node": lw.node,
			},
		}
		if lw.reason != "" {
			sn.Attrs["outcome"] = lw.reason
			if lw.end.After(lw.start) {
				sn.Duration = lw.end.Sub(lw.start)
			}
		} else {
			sn.Open = true
			if now.After(lw.start) {
				sn.Duration = now.Sub(lw.start)
			}
		}
		if remote, ok := ctl.remote[lw.term]; ok {
			sn.Children = append(sn.Children, remote)
		}
		root.Children = append(root.Children, sn)
	}
	sort.SliceStable(root.Children, func(i, j int) bool {
		return root.Children[i].Start.Before(root.Children[j].Start)
	})
	tl.Root = root
	return tl
}

// TimelineOf returns one bucket's stitched timeline.
func (c *Coordinator) TimelineOf(app string, key uint64) (BucketTimeline, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctl := c.ctls[bucketAddr{app, key}]
	if ctl == nil {
		return BucketTimeline{}, false
	}
	return ctl.timelineLocked(time.Now()), true
}

// Timelines returns every bucket's stitched timeline, sorted by
// (app, key) — the /debug/er/timeline body.
func (c *Coordinator) Timelines() []BucketTimeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]BucketTimeline, 0, len(c.ctls))
	for _, ctl := range c.ctls {
		out = append(out, ctl.timelineLocked(now))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Key < out[j].Key
	})
	return out
}
