package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"execrecon/internal/fleet"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
)

// requireCompleteTimeline asserts a resolved bucket's stitched
// timeline covers ingest through resolve and carries a remote replay
// subtree joined to the bucket's trace. restart relaxes the point-event
// checks to the durable skeleton (intermediate events are not
// replayed from the WAL; the resolution shows as ResolvedAt).
func requireCompleteTimeline(t *testing.T, tl BucketTimeline, restart bool) {
	t.Helper()
	if tl.State != "resolved" {
		t.Errorf("bucket %s/%#x: state = %s, want resolved", tl.App, tl.Key, tl.State)
	}
	if tl.TraceID == "" || tl.TraceID == "0000000000000000" {
		t.Errorf("bucket %s/%#x: no trace id", tl.App, tl.Key)
	}
	if tl.FirstSeen.IsZero() || tl.ResolvedAt.IsZero() {
		t.Errorf("bucket %s/%#x: lifecycle timestamps missing (%v, %v)",
			tl.App, tl.Key, tl.FirstSeen, tl.ResolvedAt)
	}
	if tl.Root.Name != "bucket" || tl.Root.Open {
		t.Errorf("bucket %s/%#x: root = %q open=%v", tl.App, tl.Key, tl.Root.Name, tl.Root.Open)
	}
	var hasIngest, hasResolve, hasReplay, stitched bool
	leases := 0
	for _, ch := range tl.Root.Children {
		switch ch.Name {
		case "ingest":
			hasIngest = true
		case "resolve":
			hasResolve = true
		case "lease":
			leases++
			for _, r := range ch.Children {
				if r.Name != "replay" {
					continue
				}
				hasReplay = true
				if r.TraceID == tl.TraceID && r.ParentID == tl.Root.SpanID {
					stitched = true
				}
			}
		}
	}
	if !hasIngest {
		t.Errorf("bucket %s/%#x: no ingest event", tl.App, tl.Key)
	}
	if !restart && !hasResolve {
		t.Errorf("bucket %s/%#x: no resolve event", tl.App, tl.Key)
	}
	if leases == 0 {
		t.Errorf("bucket %s/%#x: no lease window", tl.App, tl.Key)
	}
	if !hasReplay {
		t.Errorf("bucket %s/%#x: no remote replay subtree", tl.App, tl.Key)
	}
	if hasReplay && !stitched {
		t.Errorf("bucket %s/%#x: replay subtree not joined to the bucket trace", tl.App, tl.Key)
	}
}

// TestWireTraceContextRoundTrip drives the /v1/* envelopes by hand:
// the lease grant must carry the bucket's span context, a heartbeat
// must ship a span snapshot and node health that land on the timeline
// and the node table, and a heartbeat speaking the wrong protocol
// version must be rejected in the envelope.
func TestWireTraceContextRoundTrip(t *testing.T) {
	apps := testApps(t)[:1] // alpha
	dir := t.TempDir()
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(apps, CoordinatorOptions{
		Fleet:   fleet.Options{MachinesPerApp: 1, Pace: 50 * time.Microsecond, Timeout: 60 * time.Second},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer coord.Crash()

	cl := NewClient(coord.URL(), "hand-node")
	var lr *LeaseResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		lr, err = cl.Lease(time.Second)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if lr.Granted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted")
		}
	}
	if !lr.Trace.Valid() {
		t.Fatalf("lease grant carries no trace context: %+v", lr)
	}

	// A remote replay span opened under the granted context, shipped
	// on a heartbeat with node vitals.
	tracer := telemetry.NewTracer(0)
	replay := tracer.StartRemote("replay", lr.Trace, telemetry.A("node", "hand-node"))
	sn := replay.Snapshot()
	rr, err := cl.Renew(&RenewRequest{
		App: lr.App, Key: lr.Key, Term: lr.Term,
		Iterations: 1,
		Span:       &sn,
		Health:     &NodeHealth{Goroutines: 7, HeapBytes: 12345, Buckets: 1},
	})
	if err != nil || !rr.OK {
		t.Fatalf("renew: %v %+v", err, rr)
	}

	tl, ok := coord.TimelineOf(lr.App, lr.Key)
	if !ok {
		t.Fatal("no timeline for the leased bucket")
	}
	if tl.TraceID != lr.Trace.TraceID.String() {
		t.Errorf("timeline trace = %s, wire grant = %s", tl.TraceID, lr.Trace.TraceID)
	}
	var found bool
	for _, ch := range tl.Root.Children {
		if ch.Name != "lease" {
			continue
		}
		for _, r := range ch.Children {
			if r.Name == "replay" && r.ParentID == tl.Root.SpanID && r.TraceID == tl.TraceID {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("heartbeat span not attached under the lease window: %+v", tl.Root)
	}
	snap := coord.Snapshot()
	var health *NodeInfo
	for i := range snap.Nodes {
		if snap.Nodes[i].Name == "hand-node" {
			health = &snap.Nodes[i]
		}
	}
	if health == nil || health.Goroutines != 7 || health.HeapBytes != 12345 || health.Buckets != 1 {
		t.Errorf("node health not surfaced: %+v", health)
	}

	// Wrong protocol version in the heartbeat envelope: HTTP 200 with
	// an envelope rejection naming the version skew.
	body, _ := json.Marshal(&RenewRequest{
		V: ProtocolVersion + 1, Node: "hand-node",
		App: lr.App, Key: lr.Key, Term: lr.Term,
	})
	resp, err := http.Post(coord.URL()+PathRenew, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version mismatch: HTTP %d, want 200 + envelope rejection", resp.StatusCode)
	}
	var rr2 RenewResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr2); err != nil {
		t.Fatal(err)
	}
	if rr2.OK || !strings.Contains(rr2.Err, "protocol version") {
		t.Errorf("version mismatch response = %+v", rr2)
	}
}

// TestClusterTimelineStitching runs the three-app mix across two
// tracer-equipped nodes and checks every resolved bucket renders one
// stitched ingest-through-resolve timeline, with gamma's rollout leg
// on it.
func TestClusterTimelineStitching(t *testing.T) {
	apps := testApps(t)
	journal := telemetry.NewJournal(telemetry.JournalOptions{})
	overhead := telemetry.NewOverhead(telemetry.OverheadOptions{Journal: journal})
	res, err := RunHarness(HarnessOptions{
		Apps:           apps,
		Nodes:          2,
		WorkersPerNode: 2,
		Dir:            t.TempDir(),
		MachinesPerApp: 2,
		Pace:           50 * time.Microsecond,
		Timeout:        90 * time.Second,
		Journal:        journal,
		Overhead:       overhead,
		NodeTracers:    true,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v", err)
	}
	checkParity(t, res.Fleet, apps)
	if len(res.Timelines) != len(apps) {
		t.Fatalf("timelines = %d, want %d", len(res.Timelines), len(apps))
	}
	for _, tl := range res.Timelines {
		requireCompleteTimeline(t, tl, false)
		if tl.App == "gamma" {
			var rollouts int
			for _, ch := range tl.Root.Children {
				if ch.Name == "rollout" {
					rollouts++
				}
			}
			if rollouts == 0 {
				t.Errorf("gamma timeline has no rollout event: %+v", tl.Root.Children)
			}
		}
	}
	// The journal saw the lifecycle, and the accountant saw production.
	if journal.Emitted() == 0 {
		t.Error("journal saw no events")
	}
	var accounted uint64
	for _, row := range overhead.Snapshot() {
		accounted += row.Runs
	}
	if accounted == 0 {
		t.Error("overhead accountant saw no production runs")
	}
}

// TestClusterTimelineSurvivesRedispatch kills the leaseholder the
// moment gamma's grant is observed, lets a survivor inherit through
// TTL expiry, and requires the final timeline to carry both lease
// windows — the victim's expired one and the survivor's resolved one
// with its stitched replay tree.
func TestClusterTimelineSurvivesRedispatch(t *testing.T) {
	apps := testApps(t)[2:3] // gamma: long reconstruction window
	dir := t.TempDir()
	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(apps, CoordinatorOptions{
		Fleet: fleet.Options{
			MachinesPerApp: 2,
			Pace:           50 * time.Microsecond,
			Timeout:        90 * time.Second,
		},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
		TTL:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	victim, err := NewNode(NodeOptions{
		Name: "victim", Coordinator: coord.URL(), Apps: apps, Workers: 1,
		Tracer: telemetry.NewTracer(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if coord.Snapshot().Granted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased the bucket")
		}
		time.Sleep(time.Millisecond)
	}
	victim.Kill()
	survivor, err := NewNode(NodeOptions{
		Name: "survivor", Coordinator: coord.URL(), Apps: apps, Workers: 1,
		Tracer: telemetry.NewTracer(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := coord.Wait()
	victim.Close()
	survivor.Close()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	checkParity(t, res, apps)

	tls := coord.Timelines()
	if len(tls) != 1 {
		t.Fatalf("timelines = %d, want 1", len(tls))
	}
	tl := tls[0]
	requireCompleteTimeline(t, tl, false)
	if tl.Redispatches < 1 {
		t.Errorf("redispatches = %d, want >= 1", tl.Redispatches)
	}
	var windows, expired, resolved int
	var expireEvents int
	for _, ch := range tl.Root.Children {
		switch ch.Name {
		case "lease":
			windows++
			switch ch.Attrs["outcome"] {
			case "expired":
				expired++
			case "resolved":
				resolved++
			}
		case "expire":
			expireEvents++
		}
	}
	if windows < 2 || expired < 1 || resolved != 1 || expireEvents < 1 {
		t.Errorf("lease history: windows=%d expired=%d resolved=%d expireEvents=%d, want >=2/>=1/1/>=1\n%+v",
			windows, expired, resolved, expireEvents, tl.Root.Children)
	}
}

// TestClusterTimelineSurvivesRestart completes a traced two-node run,
// then reopens the WAL with a fresh coordinator: the recovered
// skeletons must still render ingest-through-resolve with the same
// trace ids and the final replay spans.
func TestClusterTimelineSurvivesRestart(t *testing.T) {
	apps := testApps(t)[:2] // alpha + beta: fast, no solver leg
	dir := t.TempDir()
	res, err := RunHarness(HarnessOptions{
		Apps:           apps,
		Nodes:          2,
		Dir:            dir,
		MachinesPerApp: 2,
		Pace:           50 * time.Microsecond,
		Timeout:        90 * time.Second,
		NodeTracers:    true,
	})
	if err != nil {
		t.Fatalf("RunHarness: %v", err)
	}
	checkParity(t, res.Fleet, apps)
	before := make(map[string]BucketTimeline, len(res.Timelines))
	for _, tl := range res.Timelines {
		requireCompleteTimeline(t, tl, false)
		before[fmt.Sprintf("%s/%#x", tl.App, tl.Key)] = tl
	}

	store, err := tracestore.Open(filepath.Join(dir, "store"), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(apps, CoordinatorOptions{
		Fleet:   fleet.Options{MachinesPerApp: 2, Timeout: time.Second},
		Store:   store,
		WALPath: filepath.Join(dir, "lease.wal"),
	})
	if err != nil {
		t.Fatalf("restart NewCoordinator: %v", err)
	}
	defer coord.Close()
	after := coord.Timelines()
	if len(after) != len(before) {
		t.Fatalf("recovered %d timelines, want %d", len(after), len(before))
	}
	for _, tl := range after {
		requireCompleteTimeline(t, tl, true)
		pre, ok := before[fmt.Sprintf("%s/%#x", tl.App, tl.Key)]
		if !ok {
			t.Errorf("recovered unknown bucket %s/%#x", tl.App, tl.Key)
			continue
		}
		if tl.TraceID != pre.TraceID {
			t.Errorf("bucket %s/%#x: trace id changed across restart: %s -> %s",
				tl.App, tl.Key, pre.TraceID, tl.TraceID)
		}
		if !tl.ResolvedAt.Equal(pre.ResolvedAt) {
			t.Errorf("bucket %s/%#x: resolution time changed across restart: %v -> %v",
				tl.App, tl.Key, pre.ResolvedAt, tl.ResolvedAt)
		}
		var recovered bool
		for _, ch := range tl.Root.Children {
			if ch.Name == "recovered" {
				recovered = true
			}
		}
		if !recovered {
			t.Errorf("bucket %s/%#x: no recovered marker on the restarted timeline", tl.App, tl.Key)
		}
	}
}
