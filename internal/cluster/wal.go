package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"execrecon/internal/core"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// The lease/commit log is a single append-only file of CRC-framed
// JSON records:
//
//	[4]byte magic "ERWL" | u32 payload len | u32 CRC32(payload) | payload
//
// (little-endian, mirroring the tracestore segment frame). A crash
// tears at most the tail; OpenWAL truncates the torn tail and keeps
// every fully framed record, so recovery is never fatal. Checkpoint
// rewrites the log as a single checkpoint record (snapshot to a temp
// file, then rename), truncating the history it subsumes.
var walMagic = [4]byte{'E', 'R', 'W', 'L'}

const (
	walFrameHeaderSize = 12
	walMaxPayload      = 64 << 20
)

// WAL record types. Grants, expiries, rollouts, and resolutions
// mutate recovered state; renewals only prove liveness (a restarted
// coordinator fences every in-flight lease regardless, so their
// replay effect is progress bookkeeping only).
const (
	walGrant      = "grant"
	walRenew      = "renew"
	walExpire     = "expire"
	walRollout    = "rollout"
	walResolve    = "resolve"
	walCheckpoint = "checkpoint"
)

// walRecord is the wire shape of one log entry; unused fields stay
// empty per type.
type walRecord struct {
	T    string `json:"t"`
	App  string `json:"app,omitempty"`
	Key  uint64 `json:"key,omitempty"`
	Node string `json:"node,omitempty"`
	Term uint64 `json:"term,omitempty"`
	// Sig rides on grants so recovered state is self-contained: a
	// restarted coordinator knows the bucket's signature before the
	// fleet re-interns it.
	Sig        *vm.Failure  `json:"sig,omitempty"`
	Version    int          `json:"version,omitempty"`
	Iterations int          `json:"iterations,omitempty"`
	Report     *core.Report `json:"report,omitempty"`
	// Trace/FirstSeen ride on grants, At and Span on resolutions —
	// the durable skeleton of the bucket's stitched timeline, so a
	// restarted coordinator still renders ingest-through-resolve for
	// buckets that completed before the crash.
	Trace     telemetry.TraceID       `json:"trace,omitempty"`
	FirstSeen time.Time               `json:"first_seen,omitempty"`
	At        time.Time               `json:"at,omitempty"`
	Span      *telemetry.SpanSnapshot `json:"span,omitempty"`
	// State is the full lease table (checkpoint records only).
	State []RecoveredBucket `json:"state,omitempty"`
}

// RecoveredBucket is one bucket's durable state as reconstructed from
// the log (and as serialized into checkpoints).
type RecoveredBucket struct {
	App string      `json:"app"`
	Key uint64      `json:"key"`
	Sig *vm.Failure `json:"sig,omitempty"`
	// Term is the highest lease term ever granted — the next grant
	// starts above it, fencing every pre-crash leaseholder.
	Term uint64 `json:"term"`
	// Version is the highest acknowledged rollout version.
	Version int `json:"version"`
	// Iterations is the last reported reconstruction progress.
	Iterations   int `json:"iterations,omitempty"`
	Redispatches int `json:"redispatches,omitempty"`
	// Leased marks a lease that was in flight when the log ends — a
	// restarted coordinator fences it (forced expiry + re-dispatch)
	// rather than re-arming it.
	Leased bool   `json:"leased,omitempty"`
	Node   string `json:"node,omitempty"`
	// Resolved buckets carry their final report; replaying it is what
	// prevents a re-interned bucket from being triaged twice.
	Resolved bool         `json:"resolved,omitempty"`
	Report   *core.Report `json:"report,omitempty"`
	// Timeline skeleton: the bucket's trace id, ingest time,
	// resolution time, and the final remote replay span the resolving
	// node shipped.
	Trace      telemetry.TraceID       `json:"trace,omitempty"`
	FirstSeen  time.Time               `json:"first_seen,omitempty"`
	ResolvedAt time.Time               `json:"resolved_at,omitempty"`
	Span       *telemetry.SpanSnapshot `json:"span,omitempty"`
}

// RecoveredState is the replay result of OpenWAL.
type RecoveredState struct {
	// Buckets maps (app, key) to recovered bucket state.
	Buckets map[bucketAddr]*RecoveredBucket
	// Records is the number of log records replayed; Truncated the
	// torn-tail bytes discarded.
	Records   int
	Truncated int64
}

// bucketAddr is the cluster-wide bucket identity. The archive key
// alone is insufficient: tracestore.KeyOf hashes only the signature,
// and distinct applications can legitimately share one (scheduler
// deadlocks most prominently), so the app participates everywhere a
// bucket is addressed.
type bucketAddr struct {
	App string
	Key uint64
}

// WAL is the coordinator's write-ahead lease/commit log. All methods
// are safe for concurrent use.
type WAL struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	bytes atomic.Int64
}

// OpenWAL opens (creating if needed) the log at path, truncating any
// torn tail, and returns the replayed state alongside the writable
// log.
func OpenWAL(path string) (*WAL, *RecoveredState, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: open wal %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: stat wal: %w", err)
	}
	recs, good, err := scanWAL(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if good < fi.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("cluster: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: seek wal: %w", err)
	}
	st := replayWAL(recs)
	st.Truncated = fi.Size() - good
	w := &WAL{f: f, path: path}
	w.bytes.Store(good)
	return w, st, nil
}

// scanWAL walks the frames, stopping (without error) at the first
// torn or corrupt one; good is the byte offset of the last intact
// frame end.
func scanWAL(f *os.File, size int64) (recs []walRecord, good int64, err error) {
	var off int64
	var hdr [walFrameHeaderSize]byte
	for off+walFrameHeaderSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return recs, off, nil
		}
		if [4]byte(hdr[:4]) != walMagic {
			return recs, off, nil
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if plen > walMaxPayload || off+walFrameHeaderSize+plen > size {
			return recs, off, nil
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+walFrameHeaderSize); err != nil {
			return recs, off, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[8:12]) {
			return recs, off, nil
		}
		var rec walRecord
		if json.Unmarshal(payload, &rec) != nil || rec.T == "" {
			// CRC-valid but unparseable: a future/foreign format.
			// Treat like a torn tail — keep everything before it.
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += walFrameHeaderSize + plen
	}
	return recs, off, nil
}

// replayWAL folds the record sequence into per-bucket state.
func replayWAL(recs []walRecord) *RecoveredState {
	st := &RecoveredState{Buckets: make(map[bucketAddr]*RecoveredBucket)}
	get := func(rec walRecord) *RecoveredBucket {
		addr := bucketAddr{rec.App, rec.Key}
		b := st.Buckets[addr]
		if b == nil {
			b = &RecoveredBucket{App: rec.App, Key: rec.Key}
			st.Buckets[addr] = b
		}
		return b
	}
	for _, rec := range recs {
		st.Records++
		switch rec.T {
		case walCheckpoint:
			// A checkpoint subsumes everything before it.
			st.Buckets = make(map[bucketAddr]*RecoveredBucket, len(rec.State))
			for i := range rec.State {
				b := rec.State[i]
				st.Buckets[bucketAddr{b.App, b.Key}] = &b
			}
		case walGrant:
			b := get(rec)
			if rec.Term > b.Term {
				b.Term = rec.Term
			}
			if b.Sig == nil {
				b.Sig = rec.Sig
			}
			if b.Trace == 0 {
				b.Trace = rec.Trace
			}
			if b.FirstSeen.IsZero() {
				b.FirstSeen = rec.FirstSeen
			}
			if !b.Resolved {
				b.Leased = true
				b.Node = rec.Node
			}
		case walRenew:
			b := get(rec)
			if rec.Iterations > b.Iterations {
				b.Iterations = rec.Iterations
			}
		case walExpire:
			b := get(rec)
			b.Redispatches++
			if rec.Term >= b.Term {
				b.Leased = false
				b.Node = ""
			}
		case walRollout:
			b := get(rec)
			if rec.Version > b.Version {
				b.Version = rec.Version
			}
		case walResolve:
			b := get(rec)
			if !b.Resolved {
				b.Resolved = true
				b.Report = rec.Report
				b.ResolvedAt = rec.At
				b.Span = rec.Span
			}
			b.Leased = false
			b.Node = ""
			if b.Sig == nil {
				b.Sig = rec.Sig
			}
		}
	}
	return st
}

// Append frames and writes one record. The write is buffered by the
// OS only — like the tracestore, the frame format confines crash
// damage to a recoverable torn tail, so fsync would only narrow the
// loss window, not change correctness.
func (w *WAL) Append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: wal marshal: %w", err)
	}
	frame := make([]byte, walFrameHeaderSize+len(payload))
	copy(frame[:4], walMagic[:])
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeaderSize:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("cluster: wal closed")
	}
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("cluster: wal append: %w", err)
	}
	w.bytes.Add(int64(len(frame)))
	return nil
}

// Checkpoint atomically replaces the log with a single checkpoint
// record holding the full lease table: the snapshot is written to a
// temp file in the same directory and renamed over the log, so a
// crash at any point leaves either the old history or the complete
// checkpoint — never a mix.
func (w *WAL) Checkpoint(state []RecoveredBucket) error {
	payload, err := json.Marshal(walRecord{T: walCheckpoint, State: state})
	if err != nil {
		return fmt.Errorf("cluster: checkpoint marshal: %w", err)
	}
	frame := make([]byte, walFrameHeaderSize+len(payload))
	copy(frame[:4], walMagic[:])
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeaderSize:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("cluster: wal closed")
	}
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal-checkpoint-*")
	if err != nil {
		return fmt.Errorf("cluster: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("cluster: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("cluster: checkpoint sync: %w", err)
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("cluster: checkpoint rename: %w", err)
	}
	old := w.f
	w.f = tmp
	old.Close()
	w.bytes.Store(int64(len(frame)))
	return nil
}

// Bytes returns the log's current on-disk size.
func (w *WAL) Bytes() int64 {
	if w == nil {
		return 0
	}
	return w.bytes.Load()
}

// Close closes the log file. Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
