package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"execrecon/internal/core"
	"execrecon/internal/vm"
)

func walSig(msg string) *vm.Failure {
	return &vm.Failure{Kind: vm.FailAssert, Msg: msg, Func: "main", InstrID: 7, Line: 3, Stack: []string{"main"}}
}

// walTestRecords is a representative log: two buckets, one resolved,
// one with a grant/renew/expire/re-grant/rollout history still in
// flight.
func walTestRecords() []walRecord {
	sigA, sigB := walSig("a"), walSig("b")
	rep := &core.Report{Reproduced: true, Verified: true, Failure: sigA,
		TestCase: vm.NewWorkload().Add("x", 42)}
	return []walRecord{
		{T: walGrant, App: "alpha", Key: 1, Node: "n0", Term: 1, Sig: sigA},
		{T: walGrant, App: "beta", Key: 2, Node: "n0", Term: 1, Sig: sigB},
		{T: walRenew, App: "beta", Key: 2, Node: "n0", Term: 1, Iterations: 1},
		{T: walResolve, App: "alpha", Key: 1, Node: "n0", Term: 1, Sig: sigA, Report: rep},
		{T: walExpire, App: "beta", Key: 2, Node: "n0", Term: 1},
		{T: walGrant, App: "beta", Key: 2, Node: "n1", Term: 2, Sig: sigB},
		{T: walRollout, App: "beta", Key: 2, Node: "n1", Term: 2, Version: 1},
		{T: walRenew, App: "beta", Key: 2, Node: "n1", Term: 2, Iterations: 3},
	}
}

// appendAll writes recs to a fresh WAL at path and returns each
// record's end offset in the file.
func appendAll(t *testing.T, path string, recs []walRecord) []int64 {
	t.Helper()
	w, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 {
		t.Fatalf("fresh WAL replayed %d records", st.Records)
	}
	var ends []int64
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.Bytes())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return ends
}

// checkReplayPrefix asserts that st matches replaying the first n
// test records.
func checkReplayPrefix(t *testing.T, st *RecoveredState, recs []walRecord, n int) {
	t.Helper()
	want := replayWAL(recs[:n])
	if st.Records != n {
		t.Fatalf("replayed %d records, want %d", st.Records, n)
	}
	if len(st.Buckets) != len(want.Buckets) {
		t.Fatalf("recovered %d buckets, want %d", len(st.Buckets), len(want.Buckets))
	}
	for addr, wb := range want.Buckets {
		gb := st.Buckets[addr]
		if gb == nil {
			t.Fatalf("bucket %v missing from recovery", addr)
		}
		if gb.Term != wb.Term || gb.Version != wb.Version ||
			gb.Resolved != wb.Resolved || gb.Leased != wb.Leased ||
			gb.Iterations != wb.Iterations || gb.Redispatches != wb.Redispatches {
			t.Fatalf("bucket %v: recovered %+v, want %+v", addr, gb, wb)
		}
		if wb.Resolved && (gb.Report == nil || !gb.Report.Reproduced) {
			t.Fatalf("bucket %v: resolved report not recovered", addr)
		}
	}
}

func TestWALReplay(t *testing.T) {
	recs := walTestRecords()
	st := replayWAL(recs)
	a := st.Buckets[bucketAddr{"alpha", 1}]
	if a == nil || !a.Resolved || a.Report == nil || !a.Report.Verified || a.Leased {
		t.Fatalf("alpha state = %+v", a)
	}
	if got := a.Report.TestCase.Streams["x"]; len(got) != 1 || got[0] != 42 {
		t.Fatalf("alpha test case lost in replay: %v", got)
	}
	b := st.Buckets[bucketAddr{"beta", 2}]
	if b == nil || b.Resolved || !b.Leased || b.Term != 2 || b.Version != 1 ||
		b.Iterations != 3 || b.Redispatches != 1 || b.Node != "n1" {
		t.Fatalf("beta state = %+v", b)
	}
}

func TestWALReopenAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.wal")
	recs := walTestRecords()
	appendAll(t, path, recs)
	w, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	checkReplayPrefix(t, st, recs, len(recs))
	if err := w.Append(walRecord{T: walResolve, App: "beta", Key: 2, Term: 2,
		Report: &core.Report{Reproduced: true}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, st2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != len(recs)+1 {
		t.Fatalf("records after reopen-append = %d, want %d", st2.Records, len(recs)+1)
	}
	if b := st2.Buckets[bucketAddr{"beta", 2}]; b == nil || !b.Resolved || b.Leased {
		t.Fatalf("beta not resolved after append: %+v", b)
	}
}

// TestWALTornTailEveryOffset mirrors the tracestore torn-tail suite:
// the log truncated at EVERY byte offset must recover exactly the
// records whose frames fit entirely in the prefix, and the truncated
// file must remain appendable.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := walTestRecords()
	ends := appendAll(t, full, recs)
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != ends[len(ends)-1] {
		t.Fatalf("file size %d != last end offset %d", len(blob), ends[len(ends)-1])
	}
	torn := filepath.Join(dir, "torn.wal")
	for off := 0; off <= len(blob); off++ {
		if err := os.WriteFile(torn, blob[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		w, st, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		// How many full frames fit in the prefix?
		wantN := 0
		for _, e := range ends {
			if int64(off) >= e {
				wantN++
			}
		}
		if st.Records != wantN {
			w.Close()
			t.Fatalf("offset %d: recovered %d records, want %d", off, st.Records, wantN)
		}
		var wantEnd int64
		if wantN > 0 {
			wantEnd = ends[wantN-1]
		}
		if st.Truncated != int64(off)-wantEnd {
			w.Close()
			t.Fatalf("offset %d: truncated %d bytes, want %d", off, st.Truncated, int64(off)-wantEnd)
		}
		checkReplayPrefix(t, st, recs, wantN)
		// The recovered log must accept appends at the clean boundary.
		if err := w.Append(walRecord{T: walGrant, App: "gamma", Key: 9, Term: 1}); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		w.Close()
		_, st2, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("offset %d: reopen: %v", off, err)
		}
		if st2.Records != wantN+1 {
			t.Fatalf("offset %d: reopen replayed %d, want %d", off, st2.Records, wantN+1)
		}
	}
}

// TestWALCorruptMiddle flips one byte inside an interior record's
// payload: recovery must keep everything before it and discard the
// rest (a CRC break is indistinguishable from a torn tail).
func TestWALCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lease.wal")
	recs := walTestRecords()
	ends := appendAll(t, path, recs)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte of record 3 (offsets inside frame 3's
	// payload start after its header).
	pos := ends[2] + walFrameHeaderSize + 2
	blob[pos] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	w, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if st.Records != 3 {
		t.Fatalf("recovered %d records past corruption, want 3", st.Records)
	}
	checkReplayPrefix(t, st, recs, 3)
}

func TestWALCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease.wal")
	recs := walTestRecords()
	appendAll(t, path, recs)
	w, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Bytes()
	var state []RecoveredBucket
	for _, b := range st.Buckets {
		state = append(state, *b)
	}
	if err := w.Checkpoint(state); err != nil {
		t.Fatal(err)
	}
	// Appends after the checkpoint must land in the new log.
	if err := w.Append(walRecord{T: walGrant, App: "beta", Key: 2, Node: "n2", Term: 3}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, st2, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 2 { // checkpoint + post-checkpoint grant
		t.Fatalf("records after checkpoint = %d, want 2", st2.Records)
	}
	if len(st2.Buckets) != len(st.Buckets) {
		t.Fatalf("checkpoint lost buckets: %d vs %d", len(st2.Buckets), len(st.Buckets))
	}
	a := st2.Buckets[bucketAddr{"alpha", 1}]
	if a == nil || !a.Resolved || a.Report == nil || !a.Report.Reproduced {
		t.Fatalf("alpha verdict lost across checkpoint: %+v", a)
	}
	b := st2.Buckets[bucketAddr{"beta", 2}]
	if b == nil || b.Term != 3 || b.Node != "n2" {
		t.Fatalf("post-checkpoint grant not applied: %+v", b)
	}
	// A checkpoint of this small table must have shrunk the log.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= before {
		t.Fatalf("checkpoint did not truncate: %d -> %d bytes", before, fi.Size())
	}
}
