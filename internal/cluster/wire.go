// Package cluster distributes the fleet's triage tier across
// processes: a coordinator owns the production half (producer
// machines, ingest, the bucket table, and the durable trace archive)
// and leases failure buckets to remote triage nodes over a versioned
// HTTP/JSON wire protocol layered on the telemetry introspection
// endpoint.
//
// The design leans on two durability anchors:
//
//   - The tracestore is the source of truth for occurrences. In
//     remote-node mode the fleet never queues reoccurrences in RAM —
//     every one is banked in the archive and nodes *fetch* them over
//     the wire, each tracking its own replay cursor. A node that dies
//     mid-reconstruction loses nothing: the survivor that inherits the
//     bucket replays the same banked records from sequence zero.
//   - A write-ahead lease/commit log (wal.go) makes the coordinator
//     itself restartable: lease grants, renewals, expiries, rollouts,
//     and resolutions are appended before they take effect, and a
//     restarted coordinator replays the log to recover resolved
//     verdicts (never re-counting them) and to fence still-in-flight
//     leases (their terms stay monotonic; the buckets are
//     re-dispatched, never re-armed).
//
// Buckets are leases: a grant carries a monotonically increasing term
// and a TTL; nodes renew at TTL/3 and every subsequent RPC (fetch,
// rollout, resolve) carries the term, so a node whose lease expired —
// because it crashed, stalled, or was partitioned — is fenced the
// moment it reappears: the coordinator answers OK=false and the
// zombie abandons the bucket.
//
// Rollouts are stateless on the wire: a node ships the *full*
// accumulated instrumentation-site chain, and the coordinator rebuilds
// the instrumented module from the app's base module by applying the
// chain cumulatively (keyselect.Instrument is pure), so rollout
// requests are idempotent and survive coordinator restarts.
package cluster

import (
	"execrecon/internal/core"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// ProtocolVersion is the wire protocol revision. Every request and
// response carries it in V; the coordinator rejects mismatches with
// OK=false so mixed deployments fail loudly instead of corrupting a
// reconstruction.
//
// v2 added distributed trace propagation (lease grants carry the
// bucket's SpanContext, renew/resolve ship span snapshots back),
// piggybacked node health on renewals, and recording-cost attribution
// on rollouts.
const ProtocolVersion = 2

// Wire paths (mounted on the coordinator's telemetry mux).
const (
	PathLease    = "/v1/lease"
	PathRenew    = "/v1/renew"
	PathFetch    = "/v1/fetch"
	PathRollout  = "/v1/rollout"
	PathResolve  = "/v1/resolve"
	PathSubmit   = "/v1/submit"
	PathVerdicts = "/v1/verdicts"
	PathState    = "/v1/state"
)

// Status is the common response envelope: OK=false carries a
// protocol-level rejection (stale term, lost lease, version mismatch)
// in Err; transport/encoding failures use HTTP status codes instead.
type Status struct {
	V   int    `json:"v"`
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
}

// LeaseRequest asks the coordinator for the next unleased bucket. The
// coordinator long-polls up to WaitMillis before answering
// Granted=false.
type LeaseRequest struct {
	V          int    `json:"v"`
	Node       string `json:"node"`
	WaitMillis int64  `json:"wait_millis,omitempty"`
}

// LeaseResponse grants (or declines) a bucket lease. Key is the
// bucket's archive key; Sig the full failure signature (keys can
// collide, signatures cannot); Term the fencing token every follow-up
// RPC must echo; TTLMillis the heartbeat deadline.
type LeaseResponse struct {
	Status
	Granted   bool        `json:"granted"`
	App       string      `json:"app,omitempty"`
	Key       uint64      `json:"key,omitempty"`
	Sig       *vm.Failure `json:"sig,omitempty"`
	Term      uint64      `json:"term,omitempty"`
	TTLMillis int64       `json:"ttl_millis,omitempty"`
	// Trace is the bucket timeline's span context: the node opens its
	// replay span tree as a remote child of it, so the snapshots it
	// ships back stitch under the coordinator's per-bucket timeline.
	Trace telemetry.SpanContext `json:"trace"`
}

// NodeHealth is the node-side runtime vitals piggybacked on every
// heartbeat — the coordinator surfaces them as er_node_* gauges.
type NodeHealth struct {
	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heap_bytes"`
	Buckets    int    `json:"buckets"` // leases currently held
}

// RenewRequest is the lease heartbeat (sent at TTL/3). Iterations
// reports reconstruction progress for the lease table; Span is the
// latest open snapshot of the node's replay span tree (the
// coordinator keeps the newest per term, so even a node that dies
// mid-reconstruction leaves its partial subtree on the timeline);
// Health carries the node's vitals.
type RenewRequest struct {
	V          int                     `json:"v"`
	Node       string                  `json:"node"`
	App        string                  `json:"app"`
	Key        uint64                  `json:"key"`
	Term       uint64                  `json:"term"`
	Iterations int                     `json:"iterations,omitempty"`
	Span       *telemetry.SpanSnapshot `json:"span,omitempty"`
	Health     *NodeHealth             `json:"health,omitempty"`
}

// RenewResponse: OK=false means the lease is lost (expired and
// re-dispatched, or fenced by a newer term) — the node must abandon
// the bucket immediately.
type RenewResponse struct {
	Status
}

// FetchRequest asks for the next banked occurrence of the leased
// bucket: the first archived record with sequence >= AfterSeq whose
// metadata matches the node's app and current deployment version.
// The node owns its replay cursor (AfterSeq), which keeps the
// coordinator stateless per fetch and makes re-dispatch a replay from
// zero. The coordinator long-polls up to WaitMillis when nothing
// matches yet.
type FetchRequest struct {
	V          int    `json:"v"`
	Node       string `json:"node"`
	App        string `json:"app"`
	Key        uint64 `json:"key"`
	Term       uint64 `json:"term"`
	AfterSeq   uint64 `json:"after_seq"`
	Version    int    `json:"version"`
	WaitMillis int64  `json:"wait_millis,omitempty"`
}

// FetchResponse carries one banked occurrence (Found) or nothing
// matched within the poll window (!Found, poll again). Raw is the
// materialized trace blob (empty for untraced occurrences); Lost the
// ring bytes lost to wrapping.
type FetchResponse struct {
	Status
	Found  bool   `json:"found"`
	Seq    uint64 `json:"seq,omitempty"`
	Raw    []byte `json:"raw,omitempty"`
	Lost   uint64 `json:"lost,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Instrs int64  `json:"instrs,omitempty"`
}

// RolloutRequest asks the coordinator to deploy the node's
// re-instrumented module to the app's producer machines. Chain is the
// *full* accumulated site chain (one entry per stall iteration);
// Version must equal len(Chain). Shipping the whole chain instead of
// the module keeps the request stateless and idempotent: the
// coordinator rebuilds the module from the app's base by applying the
// chain cumulatively.
type RolloutRequest struct {
	V       int               `json:"v"`
	Node    string            `json:"node"`
	App     string            `json:"app"`
	Key     uint64            `json:"key"`
	Term    uint64            `json:"term"`
	Version int               `json:"version"`
	Chain   [][]symex.SiteKey `json:"chain"`
	// Sites/CostBytes attribute the version's recording-set cost (site
	// count, estimated per-occurrence bytes) to the overhead
	// accountant's (app, version) ledger cell.
	Sites     int   `json:"sites,omitempty"`
	CostBytes int64 `json:"cost_bytes,omitempty"`
}

// RolloutResponse acknowledges (or fences) a rollout.
type RolloutResponse struct {
	Status
}

// ResolveRequest commits a finished reconstruction: the node's full
// pipeline report, including the reproducing test case and the
// verification verdict.
type ResolveRequest struct {
	V      int          `json:"v"`
	Node   string       `json:"node"`
	App    string       `json:"app"`
	Key    uint64       `json:"key"`
	Term   uint64       `json:"term"`
	Report *core.Report `json:"report"`
	// Span is the node's finished replay span tree for this lease —
	// the final remote subtree of the bucket timeline, persisted with
	// the resolution so stitched timelines survive coordinator
	// restarts.
	Span *telemetry.SpanSnapshot `json:"span,omitempty"`
}

// ResolveResponse acknowledges (or fences) a resolution.
type ResolveResponse struct {
	Status
}

// SubmitRequest ships one externally captured failure occurrence into
// the coordinator's ingest path — er's client mode. Raw is the trace
// ring contents; a wrapped ring (Lost > 0) is rejected, since triage
// cannot decode a blob missing its prefix.
type SubmitRequest struct {
	V       int         `json:"v"`
	App     string      `json:"app"`
	Machine int         `json:"machine,omitempty"`
	Version int         `json:"version"`
	Failure *vm.Failure `json:"failure"`
	Raw     []byte      `json:"raw,omitempty"`
	Lost    uint64      `json:"lost,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Instrs  int64       `json:"instrs,omitempty"`
}

// SubmitResponse reports whether ingest accepted the occurrence.
type SubmitResponse struct {
	Status
	Accepted bool `json:"accepted"`
}

// BucketVerdict is one bucket's triage outcome as served by
// /v1/verdicts.
type BucketVerdict struct {
	App          string `json:"app"`
	Key          uint64 `json:"key"`
	Sig          string `json:"sig"`
	State        string `json:"state"`
	Node         string `json:"node,omitempty"`
	Term         uint64 `json:"term"`
	Iterations   int    `json:"iterations"`
	Redispatches int    `json:"redispatches"`
	Reproduced   bool   `json:"reproduced"`
	Verified     bool   `json:"verified"`
	FailReason   string `json:"fail_reason,omitempty"`
}

// VerdictsResponse lists every bucket the coordinator knows about.
type VerdictsResponse struct {
	Status
	Buckets []BucketVerdict `json:"buckets"`
}

// NodeInfo is one triage node's liveness row, including the vitals
// the node piggybacks on heartbeats.
type NodeInfo struct {
	Name       string `json:"name"`
	Leases     int    `json:"leases"`
	LastSeen   string `json:"last_seen"`
	Goroutines int    `json:"goroutines,omitempty"`
	HeapBytes  uint64 `json:"heap_bytes,omitempty"`
	Buckets    int    `json:"buckets,omitempty"`
}

// ClusterSnapshot is the coordinator's cluster section of /debug/er
// (and the /v1/state body): node liveness, the lease table, and the
// re-dispatch / WAL counters that tell the crash-tolerance story.
type ClusterSnapshot struct {
	V            int             `json:"v"`
	Nodes        []NodeInfo      `json:"nodes"`
	NodesLive    int             `json:"nodes_live"`
	Buckets      []BucketVerdict `json:"buckets"`
	Granted      int64           `json:"leases_granted"`
	Renewed      int64           `json:"leases_renewed"`
	Expired      int64           `json:"leases_expired"`
	Redispatched int64           `json:"leases_redispatched"`
	Resolved     int64           `json:"buckets_resolved"`
	Submits      int64           `json:"submits"`
	WALBytes     int64           `json:"wal_bytes"`
	Recovered    int             `json:"recovered_buckets"`
}
