// Package core implements the end-to-end Execution Reconstruction
// loop of Fig. 2: deploy the (possibly instrumented) program in the
// simulated production environment, wait for the failure to reoccur,
// ship the trace to shepherded symbolic execution, and either emit a
// verified failure-reproducing test case or run key data value
// selection, re-instrument, and iterate (§3.3.4).
//
// The loop is factored in two layers. Pipeline (pipeline.go) is the
// analysis state machine, advanced one delivered Occurrence at a
// time; ReoccurrenceSource (source.go) is where occurrences come
// from. Reproduce composes the two into the original blocking loop;
// internal/fleet drives many pipelines concurrently from triaged
// production traffic.
package core

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/invariants"
	"execrecon/internal/ir"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// WorkloadGen produces the inputs and scheduler seed of each
// production run. Occurrence numbering is 1-based and counts only
// failing runs; generators may interleave benign traffic internally.
type WorkloadGen interface {
	// Run returns the workload and scheduler seed of the n-th
	// production run (0-based).
	Run(n int) (*vm.Workload, int64)
}

// FixedWorkload is a WorkloadGen replaying the same failing input
// every run — the simplest reoccurrence model. It also implements
// ReoccurrenceSource (see source.go).
type FixedWorkload struct {
	Workload *vm.Workload
	Seed     int64
}

// Run implements WorkloadGen.
func (f *FixedWorkload) Run(int) (*vm.Workload, int64) {
	return f.Workload.Clone(), f.Seed
}

// Config parameterizes a reproduction session.
type Config struct {
	Module *ir.Module
	Entry  string // defaults to "main"
	// Gen supplies production inputs; at least some runs must fail.
	// Ignored when Source is set.
	Gen WorkloadGen
	// Source supplies failure reoccurrences directly. When nil,
	// Reproduce wraps Gen in a GenSource. Pipelines driven manually
	// via Feed need neither.
	Source ReoccurrenceSource
	// Symex configures shepherded symbolic execution. The
	// QueryBudget plays the role of the paper's 30-second solver
	// timeout.
	Symex symex.Options
	// MaxIterations bounds the reoccurrence loop (default 16).
	MaxIterations int
	// MaxRunsPerIteration bounds production runs awaited per
	// failure reoccurrence (default 1000).
	MaxRunsPerIteration int
	// RingSize is the trace buffer capacity (default 64 MB).
	RingSize int
	// DeferTracing, when positive, leaves control-flow tracing off
	// until the failure has been observed that many times (§3.1:
	// "developers can configure ER to enable tracing only after a
	// failure is observed multiple times"). Untraced failures count
	// toward Occurrences but yield no trace to analyze.
	DeferTracing int
	// Log, when set, receives progress lines.
	Log io.Writer
	// RandomSelection replaces key data value selection with a
	// same-budget random choice — the §5.2 baseline.
	RandomSelection bool
	// RandomSeed seeds the random-selection baseline.
	RandomSeed int64
	// IncrementalSolver shares one persistent solver session across
	// the pipeline's iterations: Tseitin definitions, Ackermann
	// lemmas, and CDCL learned clauses survive from one reoccurrence
	// to the next, so iteration N+1 re-pays only for constraints it
	// has not seen before. Off by default (fresh solver per query,
	// the original behaviour). Overridden by Symex.Solver when the
	// caller injects its own session.
	IncrementalSolver bool
	// SolverMaxSessionNodes bounds the incremental session's interned
	// expression nodes before its caches reset (0 = solver default);
	// only meaningful with IncrementalSolver.
	SolverMaxSessionNodes int
	// PortfolioWorkers, when > 1, races each solver query's CDCL
	// descent across that many workers — the deterministic base search
	// plus seeded clones exchanging learnt clauses — with the first
	// definitive verdict winning and cancelling the rest. Applied to
	// the incremental session and to fresh per-query solvers alike.
	// Verdict-preserving: racing changes latency, never outcomes.
	PortfolioWorkers int
	// PortfolioCubeVars additionally splits grown queries into 2^n
	// cube workers over the n highest-occurrence variables (cube and
	// conquer); 0 disables splitting. Only meaningful with
	// PortfolioWorkers > 1.
	PortfolioCubeVars int
	// Speculate enables speculative pre-solve: while the pipeline sits
	// in the reoccurrence wait, the predicted next-iteration constraint
	// set (the last stall's path constraint) is solved into the
	// persistent session on a side goroutine, warming its caches and
	// learnt clauses for the query the next trace will actually issue.
	// Mispredictions are discarded at no correctness cost — the
	// session's assumption-based queries leave nothing to retract.
	// Requires IncrementalSolver.
	Speculate bool
	// Telemetry, when set, is the shared metrics registry the
	// pipeline reports into: per-stage latency histograms
	// (er_core_stage_seconds{stage=...}) and iteration/outcome
	// counters, plus the symbolic executor's and incremental solver
	// session's own er_symex_*/er_solver_* series (threaded through
	// automatically unless the caller injected its own Symex options).
	// Nil disables collection entirely.
	Telemetry *telemetry.Registry
	// Tracer, when set, records the whole reconstruction as one
	// nested span tree: a root "reconstruction" span with one
	// "iteration" child per analyzed occurrence, each carrying
	// shepherd/solve/keyselect/instrument/verify stage spans and
	// attributes (signature, iteration, recording-set size, solver
	// verdict). Drivers may attach their own children (ingest,
	// decode, reoccurrence-wait) via Pipeline.Span.
	Tracer *telemetry.Tracer
	// ParentSpan, when set with Tracer, makes the pipeline's root
	// "reconstruction" span a child of it instead of a fresh root —
	// how a remote triage node hangs its replay under the
	// coordinator's per-bucket timeline (the caller Ends the parent
	// to publish the tree).
	ParentSpan *telemetry.Span
	// Absint enables the abstract-interpretation layer
	// (internal/absint) across the loop: every solver query — fresh or
	// incremental-session — first runs the interval + known-bits
	// pre-discharge pass, undecided one-shot queries blast with
	// refined bits pinned, and a verified reproduction additionally
	// mines static invariant candidates that are confirmed
	// MIMIC-style against the reproduced input's concrete run before
	// being reported. Verdict-preserving throughout.
	Absint bool
	// AbsintWiden overrides the widening threshold of the mining
	// analysis (0 = absint default). Only meaningful with Absint.
	AbsintWiden int
	// StaticSlice enables the static dataflow analysis
	// (internal/dataflow) across the loop: shepherded symbolic
	// execution prunes instructions outside the backward failure slice
	// (executing them natively), and key data value selection drops
	// recording sites a replay can statically deduce from the rest.
	// The analysis is recomputed for every instrumented deployment.
	// Overridden by Symex.Slice when the caller injects an analysis.
	StaticSlice bool
}

// Iteration reports one pass of the loop.
type Iteration struct {
	Occurrence  int
	TraceEvents int
	TraceBytes  uint64
	Status      symex.Status
	StallReason string
	SymexTime   time.Duration
	SymexInstrs int64
	Queries     int64
	// SolverSteps is the abstract solver work metered during this
	// iteration; SolverTime the wall time spent inside solver queries
	// (a subset of SymexTime).
	SolverSteps int64
	SolverTime  time.Duration
	GraphNodes  int
	SelectTime  time.Duration
	// SymSteps/ConcSteps split the shepherded instruction count into
	// fully symbolic dispatches and natively executed (slice-pruned)
	// ones; without Config.StaticSlice every instruction is symbolic.
	SymSteps  int64
	ConcSteps int64
	// Recording describes what the next deployment will record.
	RecordingSites int
	RecordingCost  int64
	// Sites lists the selected instrumentation sites (stall iterations
	// only) — the recording set the ablations compare across modes.
	Sites []symex.SiteKey
}

// Report is the outcome of a reproduction session.
type Report struct {
	Reproduced  bool
	Verified    bool
	Occurrences int
	Iterations  []Iteration
	TestCase    *vm.Workload
	Failure     *vm.Failure
	// TotalSymexTime sums shepherded symbolic execution time across
	// iterations ("Symbex Time" of Table 1).
	TotalSymexTime time.Duration
	// TotalSolverTime sums solver query wall time across iterations —
	// the headline metric of the solvecache experiment.
	TotalSolverTime time.Duration
	// TraceInstrs is the dynamic instruction count of the failing
	// execution ("#Instr" of Table 1).
	TraceInstrs int64
	// Speculations counts speculative pre-solves launched during
	// reoccurrence waits (Config.Speculate); SpecHits the ones whose
	// warmed session state fed the next iteration's fast path, SpecMisses
	// the ones that completed but did not help, SpecDiscards the ones
	// cancelled before finishing.
	Speculations int
	SpecHits     int
	SpecMisses   int
	SpecDiscards int
	// TotalSATVars/TotalSATClauses accumulate the CNF volume blasted
	// across all solver queries; AbsintDischarged counts queries the
	// abstract pre-discharge pass decided and AbsintBits the variable
	// bits it pinned during blasting (Config.Absint only).
	TotalSATVars     int64
	TotalSATClauses  int64
	AbsintDischarged int64
	AbsintBits       int64
	// AbsintMined counts static invariant candidates proposed by the
	// abstract interpreter after a verified reproduction;
	// AbsintInvariants holds the subset that survived MIMIC-style
	// verification against the reproduced input's concrete run.
	AbsintMined      int
	AbsintInvariants []invariants.StaticCandidate
	FailReason       string
}

func (c *Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Reproduce runs the ER loop to completion: it awaits reoccurrences
// from the configured source (or workload generator) and feeds them
// to a Pipeline until the session ends.
func Reproduce(cfg Config) (*Report, error) {
	src := cfg.Source
	if src == nil {
		if cfg.Gen == nil {
			return nil, fmt.Errorf("core: no workload generator or reoccurrence source")
		}
		src = &GenSource{Gen: cfg.Gen}
	}
	p, err := NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	waitHist := StageHistogram(cfg.Telemetry, "wait")
	for !p.Done() {
		// The reoccurrence wait is driver time, not pipeline time, so
		// Reproduce owns the span and the stage sample. The wait is also
		// where speculative pre-solve overlaps solver work with
		// production's reoccurrence latency (no-op unless configured).
		wSpan := p.Span().Child("reoccurrence-wait")
		p.Speculate()
		waitStart := time.Now()
		occ, err := src.Next(p.Request())
		waitHist.Observe(time.Since(waitStart).Seconds())
		wSpan.End()
		if err != nil {
			p.rep.FailReason = err.Error()
			p.Abort(err.Error())
			return p.rep, err
		}
		if _, err := p.Feed(occ); err != nil {
			return p.Report(), err
		}
	}
	return p.Report(), p.Err()
}
