// Package core implements the end-to-end Execution Reconstruction
// loop of Fig. 2: deploy the (possibly instrumented) program in the
// simulated production environment, wait for the failure to reoccur,
// ship the trace to shepherded symbolic execution, and either emit a
// verified failure-reproducing test case or run key data value
// selection, re-instrument, and iterate (§3.3.4).
package core

import (
	"fmt"
	"io"
	"time"

	"execrecon/internal/ir"
	"execrecon/internal/keyselect"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// WorkloadGen produces the inputs and scheduler seed of each
// production run. Occurrence numbering is 1-based and counts only
// failing runs; generators may interleave benign traffic internally.
type WorkloadGen interface {
	// Run returns the workload and scheduler seed of the n-th
	// production run (0-based).
	Run(n int) (*vm.Workload, int64)
}

// FixedWorkload is a WorkloadGen replaying the same failing input
// every run — the simplest reoccurrence model.
type FixedWorkload struct {
	Workload *vm.Workload
	Seed     int64
}

// Run implements WorkloadGen.
func (f *FixedWorkload) Run(int) (*vm.Workload, int64) {
	return f.Workload.Clone(), f.Seed
}

// Config parameterizes a reproduction session.
type Config struct {
	Module *ir.Module
	Entry  string // defaults to "main"
	// Gen supplies production inputs; at least some runs must fail.
	Gen WorkloadGen
	// Symex configures shepherded symbolic execution. The
	// QueryBudget plays the role of the paper's 30-second solver
	// timeout.
	Symex symex.Options
	// MaxIterations bounds the reoccurrence loop (default 16).
	MaxIterations int
	// MaxRunsPerIteration bounds production runs awaited per
	// failure reoccurrence (default 1000).
	MaxRunsPerIteration int
	// RingSize is the trace buffer capacity (default 64 MB).
	RingSize int
	// DeferTracing, when positive, leaves control-flow tracing off
	// until the failure has been observed that many times (§3.1:
	// "developers can configure ER to enable tracing only after a
	// failure is observed multiple times"). Untraced failures count
	// toward Occurrences but yield no trace to analyze.
	DeferTracing int
	// Log, when set, receives progress lines.
	Log io.Writer
	// RandomSelection replaces key data value selection with a
	// same-budget random choice — the §5.2 baseline.
	RandomSelection bool
	// RandomSeed seeds the random-selection baseline.
	RandomSeed int64
}

// Iteration reports one pass of the loop.
type Iteration struct {
	Occurrence  int
	TraceEvents int
	TraceBytes  uint64
	Status      symex.Status
	StallReason string
	SymexTime   time.Duration
	SymexInstrs int64
	Queries     int64
	GraphNodes  int
	SelectTime  time.Duration
	// Recording describes what the next deployment will record.
	RecordingSites int
	RecordingCost  int64
}

// Report is the outcome of a reproduction session.
type Report struct {
	Reproduced  bool
	Verified    bool
	Occurrences int
	Iterations  []Iteration
	TestCase    *vm.Workload
	Failure     *vm.Failure
	// TotalSymexTime sums shepherded symbolic execution time across
	// iterations ("Symbex Time" of Table 1).
	TotalSymexTime time.Duration
	// TraceInstrs is the dynamic instruction count of the failing
	// execution ("#Instr" of Table 1).
	TraceInstrs int64
	FailReason  string
}

func (c *Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Reproduce runs the ER loop to completion.
func Reproduce(cfg Config) (*Report, error) {
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 16
	}
	if cfg.MaxRunsPerIteration == 0 {
		cfg.MaxRunsPerIteration = 1000
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = pt.DefaultRingSize
	}
	if err := cfg.Module.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid module: %w", err)
	}

	deployed := cfg.Module
	rep := &Report{}
	var signature *vm.Failure
	runIdx := 0

	// Deferred-tracing phase: observe (but do not trace) the first
	// occurrences.
	for d := 0; d < cfg.DeferTracing; d++ {
		failRes, err := awaitUntracedFailure(&cfg, deployed, &runIdx, signature)
		if err != nil {
			rep.FailReason = err.Error()
			return rep, err
		}
		if signature == nil {
			signature = failRes.Failure
			rep.Failure = signature
			rep.TraceInstrs = failRes.Stats.Instrs
		}
		rep.Occurrences++
		cfg.logf("untraced occurrence %d observed; tracing still deferred", rep.Occurrences)
	}

	for iter := 0; iter < cfg.MaxIterations; iter++ {
		// Online phase: run production until the failure reoccurs.
		trace, failRes, err := awaitFailure(&cfg, deployed, &runIdx, signature)
		if err != nil {
			rep.FailReason = err.Error()
			return rep, err
		}
		if signature == nil {
			signature = failRes.Failure
			rep.Failure = signature
			rep.TraceInstrs = failRes.Stats.Instrs
		}
		rep.Occurrences++
		it := Iteration{
			Occurrence:  rep.Occurrences,
			TraceEvents: len(trace.Events),
		}

		// Offline phase: shepherded symbolic execution.
		eng := symex.New(deployed, trace, failRes.Failure, cfg.Symex)
		sres := eng.Run(cfg.Entry)
		it.Status = sres.Status
		it.StallReason = sres.StallReason
		it.SymexTime = sres.Stats.Elapsed
		it.SymexInstrs = sres.Stats.Instrs
		it.Queries = sres.Stats.SolverQueries
		it.GraphNodes = sres.Stats.GraphNodes
		rep.TotalSymexTime += sres.Stats.Elapsed

		switch sres.Status {
		case symex.StatusCompleted:
			rep.Iterations = append(rep.Iterations, it)
			rep.Reproduced = true
			rep.TestCase = sres.TestCase
			// Verify: the generated input must reproduce the same
			// failure signature on a fresh concrete run.
			_, seed := cfg.Gen.Run(0)
			ver := vm.New(cfg.Module, vm.Config{Input: sres.TestCase.Clone(), Seed: seed}).Run(cfg.Entry)
			rep.Verified = ver.Failure.SameSignature(signature)
			cfg.logf("iteration %d: reproduced after %d occurrence(s); verified=%v",
				iter+1, rep.Occurrences, rep.Verified)
			return rep, nil

		case symex.StatusStalled:
			cfg.logf("iteration %d: stalled (%s); selecting key data values", iter+1, sres.StallReason)
			var sites []symex.SiteKey
			var cost int64
			selStart := time.Now()
			if cfg.RandomSelection {
				sites, cost, err = randomSelection(sres, cfg.RandomSeed+int64(iter))
			} else {
				var sel *keyselect.Selection
				sel, err = keyselect.Select(sres)
				if err == nil {
					sites, cost = sel.Sites, sel.TotalCostBytes
				}
			}
			it.SelectTime = time.Since(selStart)
			if err != nil {
				rep.Iterations = append(rep.Iterations, it)
				rep.FailReason = err.Error()
				return rep, fmt.Errorf("core: selection failed: %w", err)
			}
			it.RecordingSites = len(sites)
			it.RecordingCost = cost
			rep.Iterations = append(rep.Iterations, it)
			deployed, err = keyselect.Instrument(deployed, sites)
			if err != nil {
				rep.FailReason = err.Error()
				return rep, err
			}
			cfg.logf("iteration %d: instrumenting %d site(s), cost %d bytes/occurrence",
				iter+1, len(sites), cost)

		default:
			rep.Iterations = append(rep.Iterations, it)
			rep.FailReason = fmt.Sprintf("symbolic execution %v: %v", sres.Status, sres.Err)
			return rep, fmt.Errorf("core: %s", rep.FailReason)
		}
	}
	rep.FailReason = fmt.Sprintf("not reproduced within %d iterations", cfg.MaxIterations)
	return rep, nil
}

// awaitUntracedFailure runs production workloads without any tracer
// until the (matching) failure occurs.
func awaitUntracedFailure(cfg *Config, mod *ir.Module, runIdx *int, signature *vm.Failure) (*vm.Result, error) {
	for tries := 0; tries < cfg.MaxRunsPerIteration; tries++ {
		w, seed := cfg.Gen.Run(*runIdx)
		*runIdx++
		res := vm.New(mod, vm.Config{Input: w, Seed: seed}).Run(cfg.Entry)
		if res.Failure == nil {
			continue
		}
		if signature != nil && !res.Failure.SameSignature(signature) {
			continue
		}
		return res, nil
	}
	return nil, fmt.Errorf("core: failure did not reoccur within %d runs", cfg.MaxRunsPerIteration)
}

// awaitFailure runs production workloads until a failure (matching
// the signature, if known) occurs, returning its decoded trace.
func awaitFailure(cfg *Config, mod *ir.Module, runIdx *int, signature *vm.Failure) (*pt.Trace, *vm.Result, error) {
	for tries := 0; tries < cfg.MaxRunsPerIteration; tries++ {
		w, seed := cfg.Gen.Run(*runIdx)
		*runIdx++
		ring := pt.NewRing(cfg.RingSize)
		enc := pt.NewEncoder(ring)
		res := vm.New(mod, vm.Config{Input: w, Tracer: enc, Seed: seed}).Run(cfg.Entry)
		if res.Failure == nil {
			continue
		}
		if signature != nil && !res.Failure.SameSignature(signature) {
			continue // a different bug; keep waiting for ours
		}
		enc.Finish()
		trace, err := pt.Decode(ring)
		if err != nil {
			return nil, nil, fmt.Errorf("core: trace decode: %w", err)
		}
		if trace.Truncated {
			return nil, nil, fmt.Errorf("core: trace ring overflowed (%d bytes lost); increase RingSize", trace.LostBytes)
		}
		return trace, res, nil
	}
	return nil, nil, fmt.Errorf("core: failure did not reoccur within %d runs", cfg.MaxRunsPerIteration)
}
