package core_test

import (
	"testing"

	"execrecon/internal/core"
	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

// chainSrc builds constraints with a long symbolic write chain, the
// classic stall pattern of §3.3.1.
const chainSrc = `
int m[256];
func main() int {
	int i = 0;
	while (i < 10) {
		int k = input32("k");
		if (k < 0 || k >= 250) { return 0; }
		m[k] = m[k + 1] + 1;
		i = i + 1;
	}
	assert(m[60] != 3, "chain reaches 3");
	return 0;
}`

func chainWorkload() *vm.Workload {
	w := vm.NewWorkload().Add("k", 62, 61, 60)
	for i := 0; i < 7; i++ {
		w.Add("k", 200)
	}
	return w
}

func TestReproduceImmediate(t *testing.T) {
	// A simple failure reconstructs on the first occurrence (the
	// 2/13 case of the paper).
	mod := compile(t, `
func main() int {
	int x = input32("x");
	assert(x != 42, "the answer");
	return 0;
}`)
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Gen:    &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 42), Seed: 1},
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Occurrences != 1 {
		t.Errorf("occurrences = %d, want 1", rep.Occurrences)
	}
	if got := uint32(rep.TestCase.Streams["x"][0]); got != 42 {
		t.Errorf("x = %d, want 42", got)
	}
}

func TestReproduceIterative(t *testing.T) {
	// With a small solver budget, the first attempt stalls on the
	// write chain; recording key data values must unblock it within
	// a few reoccurrences (the 11/13 case).
	mod := compile(t, chainSrc)
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Gen:    &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:  symex.Options{QueryBudget: 30_000},
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced {
		t.Fatalf("not reproduced: %+v", rep)
	}
	if !rep.Verified {
		t.Fatal("test case not verified")
	}
	if rep.Occurrences < 2 {
		t.Errorf("occurrences = %d, want >= 2 (first attempt must stall)", rep.Occurrences)
	}
	first := rep.Iterations[0]
	if first.Status != symex.StatusStalled {
		t.Errorf("first iteration status %v, want stalled", first.Status)
	}
	if first.RecordingSites == 0 || first.RecordingCost == 0 {
		t.Errorf("first iteration selected nothing: %+v", first)
	}
	last := rep.Iterations[len(rep.Iterations)-1]
	if last.Status != symex.StatusCompleted {
		t.Errorf("last iteration status %v", last.Status)
	}
	t.Logf("reproduced in %d occurrences, %d sites, %d bytes/occurrence",
		rep.Occurrences, first.RecordingSites, first.RecordingCost)
}

func TestRandomSelectionBaselineFails(t *testing.T) {
	// The §5.2 baseline: random data recording at the same byte
	// budget should not unblock the stall (within the iteration
	// bound), while key selection does (previous test).
	mod := compile(t, chainSrc)
	rep, _ := core.Reproduce(core.Config{
		Module:          mod,
		Gen:             &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:           symex.Options{QueryBudget: 30_000},
		MaxIterations:   4,
		RandomSelection: true,
		RandomSeed:      12345,
	})
	if rep.Reproduced {
		t.Skip("random selection got lucky with this seed; acceptable but rare")
	}
	if rep.Occurrences < 2 {
		t.Errorf("random baseline should at least iterate, got %d occurrences", rep.Occurrences)
	}
}

func TestReproducePaperExample(t *testing.T) {
	mod := compile(t, `
uint V[256];
func foo(uint a, uint b, uint c, uint d) {
	uint x = a + b;
	if (x < 256 && c < 256 && d < 256) {
		V[x] = 1;
		if (V[c] == 0) { V[c] = 512; }
		V[V[x]] = x;
		if (c < d) {
			if (V[V[d]] == x) { abort("paper"); }
		}
	}
}
func main() int {
	foo((uint)input32("a"), (uint)input32("b"), (uint)input32("c"), (uint)input32("d"));
	return 0;
}`)
	w := vm.NewWorkload().Add("a", 0).Add("b", 2).Add("c", 0).Add("d", 2)
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Gen:    &core.FixedWorkload{Workload: w, Seed: 1},
		Symex:  symex.Options{QueryBudget: 400_000},
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: reproduced=%v verified=%v reason=%s",
			rep.Reproduced, rep.Verified, rep.FailReason)
	}
	t.Logf("paper example: %d occurrence(s), %v symbex time",
		rep.Occurrences, rep.TotalSymexTime)
}

func TestReoccurrenceFiltering(t *testing.T) {
	// The generator interleaves benign runs and a different bug;
	// the loop must wait for the matching signature.
	mod := compile(t, `
func main() int {
	int x = input32("x");
	if (x == 1) { abort("other bug"); }
	assert(x != 42, "target bug");
	return 0;
}`)
	gen := &mixedGen{}
	rep, err := core.Reproduce(core.Config{Module: mod, Gen: gen})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Failure.Kind != vm.FailAssert {
		t.Errorf("failure kind %v", rep.Failure.Kind)
	}
}

// mixedGen produces the target failure (x=42) first, then noise, then
// the target again, exercising signature matching.
type mixedGen struct{}

func (m *mixedGen) Run(n int) (*vm.Workload, int64) {
	switch n % 4 {
	case 0:
		return vm.NewWorkload().Add("x", 42), 1
	case 1:
		return vm.NewWorkload().Add("x", 7), 1 // benign
	case 2:
		return vm.NewWorkload().Add("x", 1), 1 // other bug
	default:
		return vm.NewWorkload().Add("x", 42), 1
	}
}

func TestReproduceFailsGracefullyOnNoFailure(t *testing.T) {
	mod := compile(t, `func main() int { return input32("x"); }`)
	_, err := core.Reproduce(core.Config{
		Module:              mod,
		Gen:                 &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5).Clone(), Seed: 1},
		MaxRunsPerIteration: 3,
	})
	if err == nil {
		t.Fatal("expected error when failure never occurs")
	}
}

func TestDeferredTracing(t *testing.T) {
	// §3.1: tracing can be enabled only after the failure has been
	// observed several times; the untraced occurrences still count.
	mod := compile(t, `
func main() int {
	int x = input32("x");
	assert(x != 42, "the answer");
	return 0;
}`)
	rep, err := core.Reproduce(core.Config{
		Module:       mod,
		Gen:          &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 42), Seed: 1},
		DeferTracing: 3,
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Occurrences != 4 { // 3 untraced + 1 traced
		t.Errorf("occurrences = %d, want 4", rep.Occurrences)
	}
	if len(rep.Iterations) != 1 {
		t.Errorf("iterations = %d, want 1 (only the traced one analyzes)", len(rep.Iterations))
	}
}

// TestReproduceWithAbsint drives the iterative chain workload with the
// abstract-interpretation layer on: the reproduction must still land
// (verdict parity with the plain run above), and the verified report
// must carry mined-and-confirmed static invariants plus the absint
// solver counters.
func TestReproduceWithAbsint(t *testing.T) {
	mod := compile(t, chainSrc)
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Gen:    &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:  symex.Options{QueryBudget: 30_000},
		Absint: true,
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("absint run did not reproduce+verify: %+v", rep)
	}
	if rep.TotalSATVars == 0 || rep.TotalSATClauses == 0 {
		t.Errorf("CNF volume not accounted: vars=%d clauses=%d", rep.TotalSATVars, rep.TotalSATClauses)
	}
	if rep.AbsintMined == 0 {
		t.Errorf("no static invariant candidates mined")
	}
	for _, inv := range rep.AbsintInvariants {
		if inv.Min > inv.Max {
			t.Errorf("invalid verified invariant %v", inv)
		}
	}
	// The same config over the incremental session must agree too.
	rep2, err := core.Reproduce(core.Config{
		Module:            compile(t, chainSrc),
		Gen:               &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:             symex.Options{QueryBudget: 30_000},
		Absint:            true,
		IncrementalSolver: true,
	})
	if err != nil {
		t.Fatalf("reproduce (incremental): %v", err)
	}
	if !rep2.Reproduced || !rep2.Verified {
		t.Fatalf("absint+incremental run did not reproduce+verify: %+v", rep2)
	}
}
