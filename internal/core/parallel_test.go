package core_test

import (
	"testing"
	"time"

	"execrecon/internal/core"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// TestReproducePortfolioParity runs the stall-then-iterate scenario
// with and without portfolio racing, with and without the incremental
// session: the reconstruction outcome must be identical — racing
// changes latency, never verdicts.
func TestReproducePortfolioParity(t *testing.T) {
	for _, tc := range []struct {
		name        string
		incremental bool
	}{
		{"fresh", false},
		{"incremental", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{0, 4} {
				mod := compile(t, chainSrc)
				rep, err := core.Reproduce(core.Config{
					Module:            mod,
					Gen:               &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
					Symex:             symex.Options{QueryBudget: 30_000},
					IncrementalSolver: tc.incremental,
					PortfolioWorkers:  workers,
					PortfolioCubeVars: 2,
				})
				if err != nil {
					t.Fatalf("workers=%d: reproduce: %v", workers, err)
				}
				if !rep.Reproduced || !rep.Verified {
					t.Fatalf("workers=%d: reproduced=%v verified=%v reason=%s",
						workers, rep.Reproduced, rep.Verified, rep.FailReason)
				}
			}
		})
	}
}

// TestReproduceSpeculation checks the speculative pre-solve plumbing:
// after the first stall every reoccurrence wait launches a speculation,
// each is settled exactly once (hit, miss, or discard), and the
// reconstruction still completes and verifies.
func TestReproduceSpeculation(t *testing.T) {
	mod := compile(t, chainSrc)
	rep, err := core.Reproduce(core.Config{
		Module:            mod,
		Gen:               &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:             symex.Options{QueryBudget: 30_000},
		IncrementalSolver: true,
		Speculate:         true,
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("reproduced=%v verified=%v reason=%s", rep.Reproduced, rep.Verified, rep.FailReason)
	}
	if rep.Speculations == 0 {
		t.Fatal("no speculation launched despite a stall iteration")
	}
	if got := rep.SpecHits + rep.SpecMisses + rep.SpecDiscards; got != rep.Speculations {
		t.Errorf("speculation accounting: %d launched, %d settled (hits %d, misses %d, discards %d)",
			rep.Speculations, got, rep.SpecHits, rep.SpecMisses, rep.SpecDiscards)
	}
	t.Logf("speculations: %d (hits %d, misses %d, discards %d)",
		rep.Speculations, rep.SpecHits, rep.SpecMisses, rep.SpecDiscards)
}

// TestPipelineAbortCancelsInFlightSolve pins the prompt-abort fix:
// Abort from another goroutine while Feed is deep inside a hard solver
// query must be observed on the next budget spend (not at the old
// 256-step deadline-check cadence against a one-minute timeout), so
// Feed returns almost immediately.
func TestPipelineAbortCancelsInFlightSolve(t *testing.T) {
	// The final query amounts to factoring a 32-bit semiprime
	// (65537 * 57089): far beyond a few seconds of CDCL, so a prompt
	// return can only come from the cancellation flag.
	mod := compile(t, `
func main() int {
	uint x = (uint)input32("x");
	uint y = (uint)input32("y");
	if (x > 2 && y > 2) {
		assert(x * y != 3741441793, "factored");
	}
	return 0;
}`)
	src := &core.GenSource{Gen: &core.FixedWorkload{
		Workload: vm.NewWorkload().Add("x", 65537).Add("y", 57089), Seed: 1,
	}}
	p, err := core.NewPipeline(core.Config{
		Module: mod,
		Symex:  symex.Options{QueryTimeout: time.Minute},
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	occ, err := src.Next(p.Request())
	if err != nil {
		t.Fatalf("Next: %v", err)
	}

	fed := make(chan struct{})
	go func() {
		defer close(fed)
		p.Feed(occ) // outcome irrelevant; only promptness matters
	}()
	time.Sleep(50 * time.Millisecond)
	aborted := time.Now()
	p.Abort("test shutdown")
	select {
	case <-fed:
	case <-time.After(10 * time.Second):
		t.Fatal("Feed still blocked 10s after Abort; cancellation not observed")
	}
	if lag := time.Since(aborted); lag > 3*time.Second {
		t.Errorf("Feed returned %v after Abort, want prompt cancellation", lag)
	}
}
