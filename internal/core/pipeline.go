// Incremental ER pipeline: the Fig. 2 loop factored so that it can be
// *driven by delivered reoccurrences* instead of pulling runs from a
// workload generator. Reproduce (core.go) wraps a Pipeline and a
// ReoccurrenceSource into the original blocking loop; the fleet
// scheduler (internal/fleet) feeds many Pipelines concurrently, one
// per failure-signature bucket, as trace blobs arrive from production
// machines.

package core

import (
	"fmt"
	"time"

	"execrecon/internal/absint"
	"execrecon/internal/dataflow"
	"execrecon/internal/expr"
	"execrecon/internal/invariants"
	"execrecon/internal/ir"
	"execrecon/internal/keyselect"
	"execrecon/internal/pt"
	"execrecon/internal/solver"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// Pipeline is one in-flight reproduction session, advanced one
// occurrence at a time by Feed. It is not safe for concurrent use;
// drive each Pipeline from a single goroutine.
type Pipeline struct {
	cfg Config

	deployed *ir.Module
	version  int // increments on each re-instrumentation
	rep      *Report
	// session is the persistent incremental solver shared by every
	// iteration's symbolic execution (nil unless
	// Config.IncrementalSolver is set). Constraint sets differ across
	// iterations — the session's assumption-based queries make that
	// sound without any invalidation bookkeeping.
	session *solver.Incremental
	// an is the static dataflow analysis of the deployed module,
	// recomputed on every re-instrumentation (nil unless
	// Config.StaticSlice is set).
	an *dataflow.Analysis
	// tel caches the telemetry series this pipeline updates (nil
	// unless Config.Telemetry is set); root is the session's
	// reconstruction span (nil unless Config.Tracer is set).
	tel  *pipelineTelemetry
	root *telemetry.Span
	// stop is the pipeline-wide cancellation flag: Abort trips it, and
	// every solver query the pipeline issues — in-flight or speculative
	// — observes it on its next budget spend, not just at the deadline
	// cadence.
	stop *solver.Cancel
	// Speculative pre-solve state (Config.Speculate): specPC is the
	// predicted next-iteration constraint set (the last stall's path
	// constraint); specStop/specDone track the in-flight speculation
	// goroutine, which is the only thing besides the driver ever
	// touching the session — and never concurrently, because every
	// session use joins it first via stopSpeculation. specFinished is
	// written by the goroutine before specDone closes.
	specPC       []*expr.Expr
	specStop     *solver.Cancel
	specDone     chan struct{}
	specSpan     *telemetry.Span
	specStart    time.Time
	specFinished bool
	signature    *vm.Failure
	seed         int64 // verification seed (from the first occurrence)
	haveSeed     bool
	deferLeft    int
	iters        int
	done         bool
	err          error
}

// NewPipeline validates the configuration and returns a pipeline
// ready to receive occurrences. Config.Gen/Config.Source are not
// required — feeding is the caller's job.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 16
	}
	if cfg.MaxRunsPerIteration == 0 {
		cfg.MaxRunsPerIteration = 1000
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = pt.DefaultRingSize
	}
	if cfg.Module == nil {
		return nil, fmt.Errorf("core: no module")
	}
	if err := cfg.Module.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid module: %w", err)
	}
	var root *telemetry.Span
	if cfg.ParentSpan != nil {
		// Hang the reconstruction under the caller's span (e.g. a triage
		// node's remote replay root) instead of starting a fresh trace.
		root = cfg.ParentSpan.Child("reconstruction", telemetry.A("entry", cfg.Entry))
	} else {
		root = cfg.Tracer.Start("reconstruction", telemetry.A("entry", cfg.Entry))
	}
	p := &Pipeline{
		cfg:       cfg,
		deployed:  cfg.Module,
		rep:       &Report{},
		deferLeft: cfg.DeferTracing,
		tel:       newPipelineTelemetry(cfg.Telemetry),
		root:      root,
		stop:      solver.NewCancel(nil),
	}
	if cfg.StaticSlice {
		p.an = dataflow.Analyze(cfg.Module)
	}
	if cfg.IncrementalSolver && cfg.Symex.Solver == nil {
		// Validate is off to match the engine's fresh-per-query solver
		// configuration (symex also disables it); the session's
		// self-checking mode stays available to callers that inject
		// their own session and is exercised by the differential tests.
		p.session = solver.NewIncremental(solver.Options{
			MaxSteps:        cfg.Symex.QueryBudget,
			Timeout:         cfg.Symex.QueryTimeout,
			Validate:        false,
			MaxSessionNodes: cfg.SolverMaxSessionNodes,
			Metrics:         cfg.Telemetry,
			Stop:            p.stop,
			Portfolio:       cfg.portfolio(),
			Absint:          cfg.Absint,
		})
	}
	return p, nil
}

// mineInvariants runs the abstract interpreter over the pristine
// module and keeps only the candidates the reproduced input's concrete
// run confirms — MIMIC-style, a static hypothesis must survive dynamic
// observation before it is reported (or later assumed by a solver).
func (p *Pipeline) mineInvariants(tc *vm.Workload) {
	if !p.cfg.Absint || tc == nil {
		return
	}
	mf := absint.AnalyzeModule(p.cfg.Module, p.cfg.Entry, absint.Config{WidenAfter: p.cfg.AbsintWiden})
	cands := absint.Mine(mf)
	p.rep.AbsintMined = len(cands)
	if len(cands) == 0 {
		return
	}
	obs, _ := invariants.CollectEntry(p.cfg.Module, p.cfg.Entry, tc.Clone(), p.seed)
	p.rep.AbsintInvariants = invariants.VerifyStatic(cands, [][]invariants.Obs{obs})
	p.cfg.logf("absint: %d static invariant candidates mined, %d verified on the reproduced input",
		len(cands), len(p.rep.AbsintInvariants))
}

// portfolio assembles the solver racing options from the config knobs.
func (c *Config) portfolio() solver.PortfolioOptions {
	return solver.PortfolioOptions{
		Workers:  c.PortfolioWorkers,
		CubeVars: c.PortfolioCubeVars,
	}
}

// SolverStats returns the persistent solver session's cumulative
// statistics (zero value when the pipeline runs without one).
func (p *Pipeline) SolverStats() solver.IncStats {
	if p.session == nil {
		return solver.IncStats{}
	}
	return p.session.Stats()
}

// Deployed returns the module production must currently run — the
// pristine module before the first stall, the ptwrite-instrumented
// one after each key data value selection.
func (p *Pipeline) Deployed() *ir.Module { return p.deployed }

// Version identifies the current deployment; it starts at 0 and
// increments every time the pipeline re-instruments. Sources that
// ship traces asynchronously use it to discard occurrences recorded
// on an out-of-date binary.
func (p *Pipeline) Version() int { return p.version }

// NeedsTrace reports whether the next occurrence must carry a decoded
// trace (false while deferred-tracing occurrences remain).
func (p *Pipeline) NeedsTrace() bool { return p.deferLeft == 0 }

// Signature returns the pinned failure signature (nil until the first
// occurrence is fed).
func (p *Pipeline) Signature() *vm.Failure { return p.signature }

// Done reports whether the session ended (reproduced, exhausted, or
// errored).
func (p *Pipeline) Done() bool { return p.done }

// Err returns the terminal error, if any.
func (p *Pipeline) Err() error { return p.err }

// Report returns the session report. It is complete once Done.
func (p *Pipeline) Report() *Report { return p.rep }

// Request returns the SourceRequest describing the occurrence the
// pipeline needs next.
func (p *Pipeline) Request() SourceRequest {
	return SourceRequest{
		Deployed:  p.deployed,
		Entry:     p.cfg.Entry,
		Traced:    p.NeedsTrace(),
		Signature: p.signature,
		MaxRuns:   p.cfg.MaxRunsPerIteration,
		RingSize:  p.cfg.RingSize,
	}
}

func (p *Pipeline) fail(format string, args ...interface{}) (bool, error) {
	p.err = fmt.Errorf(format, args...)
	p.rep.FailReason = p.err.Error()
	p.done = true
	p.tel.failed().Inc()
	return true, p.err
}

// Feed advances the session with one delivered occurrence. It returns
// done=true when the session ended; the terminal error (if any)
// mirrors what Reproduce would have returned. Occurrences that do not
// match the pinned signature are ignored (done=false, nil error), so
// sources need not filter perfectly.
func (p *Pipeline) Feed(occ *Occurrence) (bool, error) {
	if p.done {
		return true, p.err
	}
	// Settle any speculative pre-solve first: even occurrences that turn
	// out benign or foreign leave drivers free to read solver stats
	// right after Feed returns, which is only safe with the speculation
	// goroutine joined. A completed speculation's outcome is consumed by
	// the next analyzed occurrence below.
	p.stopSpeculation()
	if occ == nil || occ.Result == nil || occ.Result.Failure == nil {
		return false, nil // benign run; nothing to do
	}
	if p.signature != nil && !occ.Result.Failure.SameSignature(p.signature) {
		return false, nil // a different bug; not ours
	}
	if p.signature == nil {
		p.signature = occ.Result.Failure
		p.rep.Failure = p.signature
		p.rep.TraceInstrs = occ.Result.Stats.Instrs
		p.root.SetAttr("signature", p.signature.Error())
	}
	if !p.haveSeed {
		p.seed = occ.Seed
		p.haveSeed = true
	}
	p.rep.Occurrences++
	p.tel.occurrences().Inc()
	// Every path that terminates the session below must settle any
	// in-flight speculation and close the root span so the tree
	// publishes to the tracer ring.
	defer func() {
		if p.done {
			p.stopSpeculation()
			p.endRoot()
		}
	}()

	// Deferred-tracing phase: observe, count, do not analyze.
	if p.deferLeft > 0 {
		p.deferLeft--
		p.cfg.logf("untraced occurrence %d observed; tracing still deferred", p.rep.Occurrences)
		return false, nil
	}
	if !occ.traced() {
		return p.fail("core: traced occurrence expected but trace missing (occurrence %d)", p.rep.Occurrences)
	}

	it := Iteration{Occurrence: p.rep.Occurrences}
	itSpan := p.root.Child("iteration",
		telemetry.A("occurrence", p.rep.Occurrences),
		telemetry.A("iteration", p.iters+1),
		telemetry.A("version", p.version))
	defer itSpan.End()

	// Whether a completed speculation predicted this iteration's query
	// is judged by the session's fast-path counter: a hit means the
	// warmed trail answered (part of) the real query without search.
	speculated := p.specFinished
	p.specFinished = false
	var specFastSats int64
	if speculated {
		specFastSats = p.session.Stats().FastSats
	}

	// Offline phase: shepherded symbolic execution. With a persistent
	// session the engine's queries reuse all Tseitin/Ackermann/learned
	// work from earlier iterations.
	sxOpts := p.cfg.Symex
	if sxOpts.Solver == nil && p.session != nil {
		sxOpts.Solver = p.session
	}
	if sxOpts.Stop == nil {
		sxOpts.Stop = p.stop
	}
	if sxOpts.Portfolio.Workers == 0 {
		sxOpts.Portfolio = p.cfg.portfolio()
	}
	if sxOpts.Slice == nil && p.an != nil {
		sxOpts.Slice = p.an
	}
	if sxOpts.Metrics == nil {
		sxOpts.Metrics = p.cfg.Telemetry
	}
	if !sxOpts.Absint {
		sxOpts.Absint = p.cfg.Absint
	}
	var src pt.EventSource
	if occ.Trace != nil {
		it.TraceEvents = len(occ.Trace.Events)
		src = pt.NewCursor(occ.Trace)
	} else {
		// Streaming occurrence (trace-archive read path): the source
		// decodes incrementally while the executor shepherds, so the
		// event count is only known after the run.
		src = occ.Events
	}
	shSpan := itSpan.Child("shepherd")
	eng := symex.NewFromEvents(p.deployed, src, occ.Result.Failure, sxOpts)
	sres := eng.Run(p.cfg.Entry)
	if occ.Trace == nil {
		it.TraceEvents = src.Pos()
	}
	it.Status = sres.Status
	it.StallReason = sres.StallReason
	it.SymexTime = sres.Stats.Elapsed
	it.SymexInstrs = sres.Stats.Instrs
	it.Queries = sres.Stats.SolverQueries
	it.SolverSteps = sres.Stats.SolverSteps
	it.SolverTime = sres.Stats.SolverTime
	it.GraphNodes = sres.Stats.GraphNodes
	it.SymSteps = sres.Stats.SymSteps
	it.ConcSteps = sres.Stats.ConcSteps
	p.rep.TotalSymexTime += sres.Stats.Elapsed
	p.rep.TotalSolverTime += sres.Stats.SolverTime
	p.rep.TotalSATVars += sres.Stats.SATVars
	p.rep.TotalSATClauses += sres.Stats.SATClauses
	p.rep.AbsintDischarged += sres.Stats.AbsintDischarged
	p.rep.AbsintBits += sres.Stats.AbsintBits
	shSpan.SetAttr("status", sres.Status.String())
	shSpan.SetAttr("trace_events", it.TraceEvents)
	shSpan.SetAttr("instrs", sres.Stats.Instrs)
	shSpan.SetAttr("sym_steps", sres.Stats.SymSteps)
	shSpan.SetAttr("conc_steps", sres.Stats.ConcSteps)
	shSpan.SetAttr("queries", sres.Stats.SolverQueries)
	if sres.StallReason != "" {
		shSpan.SetAttr("stall_reason", sres.StallReason)
	}
	// Solving happens inside shepherding, so the solve span's duration
	// is externally metered from the engine's solver wall time rather
	// than clocked here.
	shSpan.Child("solve",
		telemetry.A("verdict", solverVerdict(sres.Status)),
		telemetry.A("steps", sres.Stats.SolverSteps),
	).EndAfter(sres.Stats.SolverTime)
	shSpan.End()
	p.tel.shepherd().Observe(sres.Stats.Elapsed.Seconds())
	p.tel.solve().Observe(sres.Stats.SolverTime.Seconds())
	if speculated {
		if p.session.Stats().FastSats > specFastSats {
			p.rep.SpecHits++
			p.tel.specHits().Inc()
			itSpan.SetAttr("speculation", "hit")
		} else {
			p.rep.SpecMisses++
			p.tel.specMisses().Inc()
			itSpan.SetAttr("speculation", "miss")
		}
	}

	switch sres.Status {
	case symex.StatusCompleted:
		p.rep.Iterations = append(p.rep.Iterations, it)
		p.rep.Reproduced = true
		p.rep.TestCase = sres.TestCase
		p.tel.iterations().Inc()
		p.tel.reproduced().Inc()
		// Verify: the generated input must reproduce the same failure
		// signature on a fresh concrete run of the pristine module.
		vSpan := itSpan.Child("verify")
		verStart := time.Now()
		ver := vm.New(p.cfg.Module, vm.Config{Input: sres.TestCase.Clone(), Seed: p.seed}).Run(p.cfg.Entry)
		p.rep.Verified = ver.Failure.SameSignature(p.signature)
		p.tel.verify().Observe(time.Since(verStart).Seconds())
		vSpan.SetAttr("verified", p.rep.Verified)
		vSpan.End()
		if p.rep.Verified {
			p.tel.verified().Inc()
			p.mineInvariants(sres.TestCase)
		}
		p.cfg.logf("iteration %d: reproduced after %d occurrence(s); verified=%v",
			p.iters+1, p.rep.Occurrences, p.rep.Verified)
		p.done = true
		return true, nil

	case symex.StatusStalled:
		p.cfg.logf("iteration %d: stalled (%s); selecting key data values", p.iters+1, sres.StallReason)
		p.tel.iterations().Inc()
		p.tel.stalls().Inc()
		// The stall's path constraint is the best prediction of the next
		// iteration's query — the re-instrumented run retreads the same
		// path with a few symbolic terms concretized — so it becomes the
		// speculation target for the coming reoccurrence wait.
		p.specPC = sres.PathConstraint
		var sites []symex.SiteKey
		var cost int64
		var err error
		ksSpan := itSpan.Child("keyselect")
		selStart := time.Now()
		if p.cfg.RandomSelection {
			sites, cost, err = randomSelection(sres, p.cfg.RandomSeed+int64(p.iters))
		} else {
			var sel *keyselect.Selection
			sel, err = keyselect.SelectWith(sres, keyselect.Options{Static: p.an})
			if err == nil {
				sites, cost = sel.Sites, sel.TotalCostBytes
			}
		}
		it.SelectTime = time.Since(selStart)
		p.tel.keyselect().Observe(it.SelectTime.Seconds())
		ksSpan.SetAttr("sites", len(sites))
		ksSpan.SetAttr("cost_bytes", cost)
		ksSpan.End()
		if err != nil {
			p.rep.Iterations = append(p.rep.Iterations, it)
			return p.fail("core: selection failed: %w", err)
		}
		it.RecordingSites = len(sites)
		it.RecordingCost = cost
		it.Sites = sites
		p.rep.Iterations = append(p.rep.Iterations, it)
		p.tel.sites().Add(int64(len(sites)))
		p.tel.recordBytes().Add(cost)
		inSpan := itSpan.Child("instrument", telemetry.A("sites", len(sites)))
		inStart := time.Now()
		instrumented, err := keyselect.Instrument(p.deployed, sites)
		if err != nil {
			inSpan.End()
			p.tel.failed().Inc()
			p.err = err
			p.rep.FailReason = err.Error()
			p.done = true
			return true, err
		}
		p.deployed = instrumented
		p.version++
		if p.cfg.StaticSlice {
			p.an = dataflow.Analyze(instrumented)
		}
		p.tel.instrument().Observe(time.Since(inStart).Seconds())
		inSpan.SetAttr("version", p.version)
		inSpan.End()
		p.cfg.logf("iteration %d: instrumenting %d site(s), cost %d bytes/occurrence",
			p.iters+1, len(sites), cost)
		p.iters++
		if p.iters >= p.cfg.MaxIterations {
			p.rep.FailReason = fmt.Sprintf("not reproduced within %d iterations", p.cfg.MaxIterations)
			p.done = true
			p.tel.failed().Inc()
		}
		return p.done, nil

	default:
		p.rep.Iterations = append(p.rep.Iterations, it)
		p.rep.FailReason = fmt.Sprintf("symbolic execution %v: %v", sres.Status, sres.Err)
		p.err = fmt.Errorf("core: %s", p.rep.FailReason)
		p.done = true
		p.tel.failed().Inc()
		return true, p.err
	}
}

// Speculate starts a speculative pre-solve of the predicted
// next-iteration constraint set — the last stall's path constraint —
// on a side goroutine, so solver work overlaps the reoccurrence wait
// instead of serializing behind it. The speculation solves into the
// persistent session, warming its import memo, cached CNF, learnt
// clauses, and (on sat) the held model trail the fast path extends;
// when the predicted set matches the next query's shared prefix the
// real solve starts from all of that for free. Drivers call it when
// they are about to block waiting for the next occurrence (Reproduce
// does; the fleet scheduler does when a bucket's queue runs dry).
//
// Returns true when a speculation was launched. No-op unless
// Config.Speculate and Config.IncrementalSolver are both set, a stall
// has produced a prediction, and no speculation is already in flight.
// A misprediction costs nothing but the side goroutine's time: the
// session's assumption-based queries leave no state to retract, and
// Feed cancels and joins the goroutine before the session is touched
// again.
func (p *Pipeline) Speculate() bool {
	if p.done || !p.cfg.Speculate || p.session == nil || len(p.specPC) == 0 || p.specDone != nil {
		return false
	}
	pc := p.specPC
	p.specPC = nil // one prediction, one speculation
	p.specStop = solver.NewCancel(p.stop)
	p.specDone = make(chan struct{})
	p.specStart = time.Now()
	p.specFinished = false
	p.specSpan = p.root.Child("speculate", telemetry.A("constraints", len(pc)))
	p.rep.Speculations++
	p.tel.speculations().Inc()
	session, stop, done := p.session, p.specStop, p.specDone
	go func() {
		defer close(done)
		_, _, _ = session.SolveStop(pc, stop)
		// Cancelled solves were discarded, not completed; the write is
		// published to the driver by the channel close.
		p.specFinished = !stop.Canceled()
	}()
	return true
}

// stopSpeculation cancels and joins the in-flight speculative
// pre-solve, if any. The session is single-goroutine, so every path
// that touches it — each Feed analysis and each terminal path — must
// pass through here first; the join is prompt because the cancellation
// flag is observed on every budget spend. Completed-vs-discarded is
// settled here; whether a completed speculation actually predicted the
// next query is judged in Feed via the session's fast-path counter.
func (p *Pipeline) stopSpeculation() {
	if p.specDone == nil {
		return
	}
	p.specStop.Cancel()
	<-p.specDone
	if !p.specFinished {
		p.rep.SpecDiscards++
		p.tel.specDiscards().Inc()
	}
	p.tel.speculate().Observe(time.Since(p.specStart).Seconds())
	p.specSpan.SetAttr("completed", p.specFinished)
	p.specSpan.End()
	p.specStop, p.specDone, p.specSpan = nil, nil, nil
}
