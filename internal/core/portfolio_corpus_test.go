package core_test

import (
	"testing"

	"execrecon/internal/core"
	"execrecon/internal/corpus"
	"execrecon/internal/solver"
	"execrecon/internal/symex"
)

// TestPortfolioCorpusDifferential is the randomized differential gate
// for the racing layer: a generated population spanning every bug
// pattern is reconstructed twice — sequential session vs portfolio
// session (racing seeds, cubes, speculation) — under each scenario's
// stall-tuned budget, and racing must never lose a reproduction the
// sequential configuration achieves. The gate is one-directional: any
// satisfying model a racing worker returns is a legitimate input, so
// the shepherded trajectory it induces can differ from the sequential
// model's — occasionally rescuing a scenario whose sequential-model
// trajectory diverges off the failure point. Such rescues are logged,
// not failed; only a portfolio regression (sequential reproduces,
// portfolio does not) is a bug.
func TestPortfolioCorpusDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus differential reconstructs a generated population twice; skipped in -short")
	}
	scs, _, err := corpus.Generate(corpus.GenConfig{N: 2 * len(corpus.Patterns()), Seed: 7})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	// run drives one reconstruction to completion. Pipeline errors
	// (e.g. a scenario whose shepherded execution diverges) are an
	// outcome, not a test failure: the differential compares them
	// across configurations like any other verdict.
	run := func(t *testing.T, sc *corpus.Scenario, workers int) (*core.Report, solver.IncStats) {
		t.Helper()
		mod, err := sc.Module()
		if err != nil {
			t.Fatalf("module: %v", err)
		}
		app := sc.App()
		p, err := core.NewPipeline(core.Config{
			Module:            mod,
			Symex:             symex.Options{QueryBudget: sc.QueryBudget, MaxInstrs: 50_000_000},
			IncrementalSolver: true,
			PortfolioWorkers:  workers,
			PortfolioCubeVars: min(workers, 2),
			Speculate:         workers > 1,
		})
		if err != nil {
			t.Fatalf("pipeline: %v", err)
		}
		src := &core.GenSource{Gen: &core.FixedWorkload{Workload: app.Failing(), Seed: app.Seed}}
		for !p.Done() {
			p.Speculate()
			occ, err := src.Next(p.Request())
			if err != nil {
				t.Fatalf("workers=%d: source: %v", workers, err)
			}
			if _, err := p.Feed(occ); err != nil {
				break // terminal pipeline failure; report carries the reason
			}
		}
		return p.Report(), p.SolverStats()
	}

	var stats solver.PortfolioStats
	for _, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			seq, _ := run(t, sc, 0)
			port, pst := run(t, sc, 4)
			switch {
			case (seq.Reproduced && !port.Reproduced) || (seq.Verified && !port.Verified):
				t.Errorf("portfolio lost a sequential verdict: sequential reproduced=%v verified=%v, portfolio reproduced=%v verified=%v (%s / %s)",
					seq.Reproduced, seq.Verified, port.Reproduced, port.Verified,
					seq.FailReason, port.FailReason)
			case seq.Reproduced != port.Reproduced || seq.Verified != port.Verified:
				t.Logf("portfolio rescue: sequential reproduced=%v verified=%v (%s), portfolio reproduced=%v verified=%v",
					seq.Reproduced, seq.Verified, seq.FailReason, port.Reproduced, port.Verified)
			}
			if got := pst.Portfolio.BaseWins + pst.Portfolio.SeedWins +
				pst.Portfolio.CubeWins + pst.Portfolio.Unknowns; got != pst.Portfolio.Races {
				t.Errorf("race accounting: %d races, %d attributed", pst.Portfolio.Races, got)
			}
			stats.Merge(pst.Portfolio)
		})
	}
	if stats.Races == 0 {
		t.Error("no query entered the portfolio layer across the whole population")
	}
	t.Logf("population: races=%d escalations=%d wins(b/s/c)=%d/%d/%d unknowns=%d",
		stats.Races, stats.Escalations, stats.BaseWins, stats.SeedWins,
		stats.CubeWins, stats.Unknowns)
}
