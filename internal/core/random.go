package core

import (
	"math/rand"
	"sort"

	"execrecon/internal/cgraph"
	"execrecon/internal/expr"
	"execrecon/internal/keyselect"
	"execrecon/internal/symex"
)

// randomSelection is the §5.2 baseline: record the same byte budget
// that key data value selection would spend, but pick the data
// elements uniformly at random among all symbolic nodes of the
// constraint graph.
func randomSelection(res *symex.Result, seed int64) ([]symex.SiteKey, int64, error) {
	sel, err := keyselect.Select(res)
	if err != nil {
		return nil, 0, err
	}
	budget := sel.TotalCostBytes

	objs := make([]cgraph.Object, 0, len(res.Objects))
	for _, o := range res.Objects {
		objs = append(objs, cgraph.Object{Label: o.Label, Size: o.Size, Arr: o.Arr})
	}
	g := cgraph.Build(res.PathConstraint, objs)
	nodes := g.SymbolicNodes()

	// Keep only recordable nodes (those with a defining site).
	type cand struct {
		e    *expr.Expr
		site symex.SiteKey
		cost int64
	}
	var cands []cand
	for _, n := range nodes {
		site, ok := res.ExprSites[n.ID()]
		if !ok {
			continue
		}
		st := res.Sites[site]
		if st == nil {
			continue
		}
		cands = append(cands, cand{e: n, site: site, cost: int64(st.Width.Bytes()) * st.Count})
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })

	var sites []symex.SiteKey
	seen := make(map[symex.SiteKey]bool)
	var spent int64
	for _, c := range cands {
		if spent >= budget {
			break
		}
		if seen[c.site] {
			continue
		}
		seen[c.site] = true
		sites = append(sites, c.site)
		spent += c.cost
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.InstrID < b.InstrID
	})
	return sites, spent, nil
}
