package core

import (
	"fmt"

	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// Occurrence is one delivered failure reoccurrence: the decoded trace
// (nil when tracing was deferred or disabled for this occurrence),
// the run outcome, and the scheduler seed of the failing run. The
// seed is what the loop replays when verifying a generated test case,
// so that multithreaded failures verify under the interleaving that
// produced them.
//
// Trace and Events are alternative trace carriers. Trace is the
// in-memory form (every event materialized). Events is a streaming
// source — e.g. a tracestore reader that delta-reconstructs and
// decodes an archived blob incrementally — consumed once by the
// pipeline's symbolic executor without ever holding the full event
// slice. When both are set, Trace wins.
type Occurrence struct {
	Trace  *pt.Trace
	Events pt.EventSource
	Result *vm.Result
	Seed   int64
}

// traced reports whether the occurrence carries trace data in either
// form.
func (o *Occurrence) traced() bool { return o.Trace != nil || o.Events != nil }

// SourceRequest describes what the loop needs next from a
// reoccurrence source: a failure matching Signature (nil until the
// first occurrence pins it), executed on the currently Deployed
// (possibly instrumented) module, with or without tracing.
type SourceRequest struct {
	// Deployed is the module production must run — the pristine
	// program on the first iteration, the ptwrite-instrumented one
	// after key data value selection.
	Deployed *ir.Module
	// Entry is the entry function (always set by the loop).
	Entry string
	// Traced selects whether the occurrence must carry a decoded
	// trace. False during the deferred-tracing phase (§3.1).
	Traced bool
	// Signature filters reoccurrences; nil accepts any failure.
	Signature *vm.Failure
	// MaxRuns bounds production runs awaited for this occurrence.
	MaxRuns int
	// RingSize is the trace buffer capacity to record with.
	RingSize int
}

// ReoccurrenceSource delivers failure reoccurrences to the ER loop.
// It is the seam between the analysis pipeline and however failures
// actually reoccur: the in-process workload replay of the single-app
// path (GenSource wrapping a WorkloadGen), or a fleet triage bucket
// fed by production machines shipping trace blobs (internal/fleet).
type ReoccurrenceSource interface {
	// Next blocks until the failure reoccurs under req.Deployed and
	// returns the occurrence. Implementations must honor
	// req.Signature (when non-nil, only matching failures are
	// delivered) and req.Traced (when true, Occurrence.Trace must be
	// a complete decoded trace).
	Next(req SourceRequest) (*Occurrence, error)
}

// GenSource adapts a WorkloadGen into a ReoccurrenceSource by running
// production workloads in-process until the failure reoccurs — the
// original single-app reoccurrence model.
type GenSource struct {
	Gen WorkloadGen

	runIdx int
}

// Next implements ReoccurrenceSource.
func (g *GenSource) Next(req SourceRequest) (*Occurrence, error) {
	if g.Gen == nil {
		return nil, fmt.Errorf("core: GenSource has no workload generator")
	}
	maxRuns := req.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 1000
	}
	for tries := 0; tries < maxRuns; tries++ {
		w, seed := g.Gen.Run(g.runIdx)
		g.runIdx++
		if !req.Traced {
			res := vm.New(req.Deployed, vm.Config{Input: w, Seed: seed}).Run(req.Entry)
			if res.Failure == nil {
				continue
			}
			if req.Signature != nil && !res.Failure.SameSignature(req.Signature) {
				continue
			}
			return &Occurrence{Result: res, Seed: seed}, nil
		}
		ring := pt.NewRing(req.RingSize)
		enc := pt.NewEncoder(ring)
		res := vm.New(req.Deployed, vm.Config{Input: w, Tracer: enc, Seed: seed}).Run(req.Entry)
		if res.Failure == nil {
			continue
		}
		if req.Signature != nil && !res.Failure.SameSignature(req.Signature) {
			continue // a different bug; keep waiting for ours
		}
		enc.Finish()
		trace, err := pt.Decode(ring)
		if err != nil {
			return nil, fmt.Errorf("core: trace decode: %w", err)
		}
		if trace.Truncated {
			return nil, fmt.Errorf("core: trace ring overflowed (%d bytes lost); increase RingSize", trace.LostBytes)
		}
		return &Occurrence{Trace: trace, Result: res, Seed: seed}, nil
	}
	return nil, fmt.Errorf("core: failure did not reoccur within %d runs", maxRuns)
}

// Next implements ReoccurrenceSource directly on FixedWorkload, so
// the simplest reoccurrence model plugs into Config.Source without an
// adapter.
func (f *FixedWorkload) Next(req SourceRequest) (*Occurrence, error) {
	return (&GenSource{Gen: f}).Next(req)
}

var (
	_ ReoccurrenceSource = (*GenSource)(nil)
	_ ReoccurrenceSource = (*FixedWorkload)(nil)
)
