package core_test

import (
	"strings"
	"testing"

	"execrecon/internal/core"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

func TestGenSourceFiltersBySignature(t *testing.T) {
	// The mixed generator interleaves benign runs, a different bug,
	// and the target bug; Next must skip everything that does not
	// match the requested signature.
	mod := compile(t, `
func main() int {
	int x = input32("x");
	if (x == 1) { abort("other bug"); }
	assert(x != 42, "target bug");
	return 0;
}`)
	src := &core.GenSource{Gen: &mixedGen{}}

	// First: grab the target signature with an unfiltered request.
	occ, err := src.Next(core.SourceRequest{
		Deployed: mod, Entry: "main", Traced: true, MaxRuns: 10, RingSize: 1 << 20,
	})
	if err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if occ.Result.Failure == nil || occ.Result.Failure.Kind != vm.FailAssert {
		t.Fatalf("first occurrence = %+v, want the assert bug", occ.Result.Failure)
	}
	sig := occ.Result.Failure

	// Then: filtered requests must only deliver matching failures,
	// even though the generator also produces the abort bug.
	for i := 0; i < 3; i++ {
		occ, err := src.Next(core.SourceRequest{
			Deployed: mod, Entry: "main", Traced: true,
			Signature: sig, MaxRuns: 20, RingSize: 1 << 20,
		})
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !occ.Result.Failure.SameSignature(sig) {
			t.Fatalf("Next %d delivered wrong signature %v", i, occ.Result.Failure)
		}
		if occ.Trace == nil {
			t.Fatalf("Next %d: traced request returned nil trace", i)
		}
	}
}

func TestGenSourceUntracedRequest(t *testing.T) {
	mod := compile(t, `
func main() int {
	int x = input32("x");
	assert(x != 42, "the answer");
	return 0;
}`)
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 42), Seed: 7}}
	occ, err := src.Next(core.SourceRequest{Deployed: mod, Entry: "main", Traced: false, MaxRuns: 5})
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if occ.Trace != nil {
		t.Error("untraced request returned a trace")
	}
	if occ.Result.Failure == nil {
		t.Error("occurrence has no failure")
	}
	if occ.Seed != 7 {
		t.Errorf("seed = %d, want the generator's 7", occ.Seed)
	}
}

func TestGenSourceExhaustsMaxRuns(t *testing.T) {
	mod := compile(t, `func main() int { return input32("x"); }`)
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 1, 1, 1, 1, 1, 1), Seed: 1}}
	_, err := src.Next(core.SourceRequest{Deployed: mod, Entry: "main", Traced: true, MaxRuns: 3, RingSize: 1 << 20})
	if err == nil || !strings.Contains(err.Error(), "did not reoccur") {
		t.Fatalf("err = %v, want reoccurrence exhaustion", err)
	}
}

func TestReproduceViaExplicitSource(t *testing.T) {
	// Config.Source (FixedWorkload implements ReoccurrenceSource
	// directly) must behave exactly like the Gen path.
	mod := compile(t, chainSrc)
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Source: &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:  symex.Options{QueryBudget: 30_000},
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: reproduced=%v verified=%v reason=%s",
			rep.Reproduced, rep.Verified, rep.FailReason)
	}
	if rep.Occurrences < 2 {
		t.Errorf("occurrences = %d, want >= 2 (first attempt must stall)", rep.Occurrences)
	}
}

func TestReproduceNeedsGenOrSource(t *testing.T) {
	mod := compile(t, `func main() int { return 0; }`)
	_, err := core.Reproduce(core.Config{Module: mod})
	if err == nil {
		t.Fatal("expected error with neither Gen nor Source")
	}
}

func TestPipelineManualDrive(t *testing.T) {
	// Drive a Pipeline by hand, checking the deployment version and
	// request shape evolve the way the fleet scheduler relies on.
	mod := compile(t, chainSrc)
	cfg := core.Config{
		Module: mod,
		Symex:  symex.Options{QueryBudget: 30_000},
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if p.Version() != 0 {
		t.Fatalf("initial version = %d, want 0", p.Version())
	}
	if !p.NeedsTrace() {
		t.Fatal("NeedsTrace should be true without deferred tracing")
	}
	if p.Signature() != nil {
		t.Fatal("signature pinned before any occurrence")
	}
	if req := p.Request(); req.Deployed != mod || req.Entry != "main" || !req.Traced {
		t.Fatalf("unexpected initial request: %+v", req)
	}

	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: chainWorkload(), Seed: 1}}
	versions := []int{p.Version()}
	for i := 0; i < 20 && !p.Done(); i++ {
		occ, err := src.Next(p.Request())
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if _, err := p.Feed(occ); err != nil {
			t.Fatalf("Feed: %v", err)
		}
		if v := p.Version(); v != versions[len(versions)-1] {
			versions = append(versions, v)
			// A version bump must swap in a different deployed module.
			if p.Deployed() == mod {
				t.Error("version bumped but Deployed() is still the pristine module")
			}
		}
	}
	if !p.Done() {
		t.Fatal("pipeline did not finish within 20 occurrences")
	}
	if err := p.Err(); err != nil {
		t.Fatalf("terminal error: %v", err)
	}
	rep := p.Report()
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
	if len(versions) < 2 {
		t.Errorf("versions = %v, want at least one re-instrumentation bump", versions)
	}
	if p.Signature() == nil || rep.Failure == nil {
		t.Error("signature not pinned after completion")
	}

	// Feeding a finished pipeline is a no-op that stays done.
	done, err := p.Feed(nil)
	if !done || err != nil {
		t.Errorf("Feed after done = (%v, %v), want (true, nil)", done, err)
	}
}

func TestPipelineIgnoresForeignAndBenign(t *testing.T) {
	mod := compile(t, `
func main() int {
	int x = input32("x");
	if (x == 1) { abort("other bug"); }
	assert(x != 42, "target bug");
	return 0;
}`)
	p, err := core.NewPipeline(core.Config{Module: mod})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}

	// Benign occurrence: ignored entirely.
	if done, err := p.Feed(&core.Occurrence{Result: &vm.Result{}}); done || err != nil {
		t.Fatalf("benign Feed = (%v, %v)", done, err)
	}
	if p.Report().Occurrences != 0 {
		t.Error("benign run counted as an occurrence")
	}

	// Pin the target signature via a real traced occurrence.
	src := &core.GenSource{Gen: &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 42), Seed: 1}}
	occ, err := src.Next(p.Request())
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	target := occ.Result.Failure

	// A different bug's occurrence must be ignored once pinned. Pin
	// first on a fresh pipeline, then feed the foreign failure.
	p2, _ := core.NewPipeline(core.Config{Module: mod, MaxIterations: 8, Symex: symex.Options{QueryBudget: 1}})
	if _, err := p2.Feed(occ); err != nil {
		t.Fatalf("pin Feed: %v", err)
	}
	if p2.Done() {
		t.Skip("tiny budget still completed; signature-filter path not reachable")
	}
	foreignSrc := &core.GenSource{Gen: &core.FixedWorkload{Workload: vm.NewWorkload().Add("x", 1), Seed: 1}}
	foreign, err := foreignSrc.Next(core.SourceRequest{Deployed: mod, Entry: "main", Traced: true, MaxRuns: 3, RingSize: 1 << 20})
	if err != nil {
		t.Fatalf("foreign Next: %v", err)
	}
	if foreign.Result.Failure.SameSignature(target) {
		t.Fatal("test bug: foreign failure matches target signature")
	}
	before := p2.Report().Occurrences
	if done, err := p2.Feed(foreign); done || err != nil {
		t.Fatalf("foreign Feed = (%v, %v)", done, err)
	}
	if p2.Report().Occurrences != before {
		t.Error("foreign failure counted as an occurrence")
	}
}
