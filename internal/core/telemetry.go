// Telemetry plumbing for the ER pipeline: per-stage latency
// histograms, outcome counters, and the nested span tree of a
// reconstruction session. Everything here is nil-safe — a pipeline
// configured without Config.Telemetry/Config.Tracer pays one
// predicted nil-check per stage, which is what keeps the telemetry
// overhead budget (< 5%, measured by `erbench -exp telemetry`) honest.

package core

import (
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
)

// Stage names used by the er_core_stage_seconds histogram and the
// span tree. Exported so the bench/CLI layers can render summaries in
// a stable order.
var StageNames = []string{
	"wait", "speculate", "decode", "shepherd", "solve", "keyselect", "instrument", "verify",
}

// pipelineTelemetry caches the registry series one pipeline updates;
// resolving them once in NewPipeline keeps Feed free of map lookups.
// All accessors are nil-receiver-safe and return nil-safe series, so
// instrumentation sites in Feed need no "telemetry enabled?" branches.
type pipelineTelemetry struct {
	cOccurrences *telemetry.Counter
	cIterations  *telemetry.Counter
	cStalls      *telemetry.Counter
	cReproduced  *telemetry.Counter
	cVerified    *telemetry.Counter
	cFailed      *telemetry.Counter
	cSites       *telemetry.Counter
	cRecordBytes *telemetry.Counter

	// Speculative pre-solve outcomes (Config.Speculate).
	cSpeculations *telemetry.Counter
	cSpecHits     *telemetry.Counter
	cSpecMisses   *telemetry.Counter
	cSpecDiscards *telemetry.Counter

	hShepherd   *telemetry.Histogram
	hSolve      *telemetry.Histogram
	hKeyselect  *telemetry.Histogram
	hInstrument *telemetry.Histogram
	hVerify     *telemetry.Histogram
	hWait       *telemetry.Histogram
	hSpeculate  *telemetry.Histogram
}

func (t *pipelineTelemetry) occurrences() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cOccurrences
}

func (t *pipelineTelemetry) iterations() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cIterations
}

func (t *pipelineTelemetry) stalls() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cStalls
}

func (t *pipelineTelemetry) reproduced() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cReproduced
}

func (t *pipelineTelemetry) verified() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cVerified
}

func (t *pipelineTelemetry) failed() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cFailed
}

func (t *pipelineTelemetry) sites() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cSites
}

func (t *pipelineTelemetry) recordBytes() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cRecordBytes
}

func (t *pipelineTelemetry) speculations() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cSpeculations
}

func (t *pipelineTelemetry) specHits() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cSpecHits
}

func (t *pipelineTelemetry) specMisses() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cSpecMisses
}

func (t *pipelineTelemetry) specDiscards() *telemetry.Counter {
	if t == nil {
		return nil
	}
	return t.cSpecDiscards
}

func (t *pipelineTelemetry) speculate() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hSpeculate
}

func (t *pipelineTelemetry) shepherd() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hShepherd
}

func (t *pipelineTelemetry) solve() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hSolve
}

func (t *pipelineTelemetry) keyselect() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hKeyselect
}

func (t *pipelineTelemetry) instrument() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hInstrument
}

func (t *pipelineTelemetry) verify() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hVerify
}

func (t *pipelineTelemetry) wait() *telemetry.Histogram {
	if t == nil {
		return nil
	}
	return t.hWait
}

// StageHistogram resolves the shared per-stage latency histogram —
// the one metric every layer (core, fleet drivers, CLIs) reports
// reconstruction-loop latencies through.
func StageHistogram(reg *telemetry.Registry, stage string) *telemetry.Histogram {
	return reg.Histogram("er_core_stage_seconds",
		"latency of each ER reconstruction stage", nil, telemetry.L("stage", stage))
}

func newPipelineTelemetry(reg *telemetry.Registry) *pipelineTelemetry {
	if reg == nil {
		return nil
	}
	return &pipelineTelemetry{
		cOccurrences: reg.Counter("er_core_occurrences_total", "matching failure occurrences fed to pipelines"),
		cIterations:  reg.Counter("er_core_iterations_total", "analysis iterations completed"),
		cStalls:      reg.Counter("er_core_stalls_total", "iterations that stalled on a solver budget"),
		cReproduced:  reg.Counter("er_core_reproduced_total", "sessions that generated a test case"),
		cVerified:    reg.Counter("er_core_verified_total", "sessions whose test case re-triggered the signature"),
		cFailed:      reg.Counter("er_core_failed_total", "sessions that ended without reproducing"),
		cSites:       reg.Counter("er_core_recording_sites_total", "key data value recording sites instrumented"),
		cRecordBytes: reg.Counter("er_core_recording_bytes_total", "estimated per-occurrence recording cost instrumented"),

		cSpeculations: reg.Counter("er_core_speculations_total", "speculative pre-solves launched during reoccurrence waits"),
		cSpecHits:     reg.Counter("er_core_speculation_hits_total", "speculations whose warmed state fed the next query's fast path"),
		cSpecMisses:   reg.Counter("er_core_speculation_misses_total", "speculations that completed without helping the next query"),
		cSpecDiscards: reg.Counter("er_core_speculation_discards_total", "speculations cancelled before completing"),

		hShepherd:   StageHistogram(reg, "shepherd"),
		hSolve:      StageHistogram(reg, "solve"),
		hKeyselect:  StageHistogram(reg, "keyselect"),
		hInstrument: StageHistogram(reg, "instrument"),
		hVerify:     StageHistogram(reg, "verify"),
		hWait:       StageHistogram(reg, "wait"),
		hSpeculate:  StageHistogram(reg, "speculate"),
	}
}

// Span returns the pipeline's root reconstruction span (nil without
// Config.Tracer). Drivers attach their own stage children to it —
// the fleet scheduler adds ingest/decode spans, Reproduce adds
// reoccurrence-wait spans — so one tree tells the whole story.
func (p *Pipeline) Span() *telemetry.Span { return p.root }

// endRoot closes the root span with the session verdict; idempotent
// via Span.End.
func (p *Pipeline) endRoot() {
	if p.root == nil {
		return
	}
	p.root.SetAttr("occurrences", p.rep.Occurrences)
	p.root.SetAttr("iterations", len(p.rep.Iterations))
	p.root.SetAttr("reproduced", p.rep.Reproduced)
	p.root.SetAttr("verified", p.rep.Verified)
	if p.rep.FailReason != "" {
		p.root.SetAttr("fail_reason", p.rep.FailReason)
	}
	p.root.End()
}

// Abort ends the pipeline on a driver-side terminal condition (the
// reoccurrence source failing, the fleet shutting down): it trips the
// pipeline-wide cancellation flag — so an in-flight solve, observed on
// its next budget spend rather than at the old 256-step deadline-check
// cadence, returns Unknown promptly — joins any speculative pre-solve,
// and closes the span tree with reason as a root attribute.
// Idempotent and nil-safe; on pipelines that ended normally only the
// (now moot) cancellation remains, their root having already closed.
//
// The cancellation itself is safe from any goroutine, including while
// the driver is blocked inside Feed; the speculation join and span
// cleanup assume the usual single-driver discipline.
func (p *Pipeline) Abort(reason string) {
	if p == nil {
		return
	}
	p.stop.Cancel()
	p.stopSpeculation()
	if p.root == nil {
		return
	}
	p.root.SetAttr("abort", reason)
	p.endRoot()
}

// solverVerdict maps a shepherded-execution outcome onto the solver
// verdict the final query returned — the span attribute the
// introspection endpoint keys on.
func solverVerdict(st symex.Status) string {
	switch st {
	case symex.StatusCompleted:
		return "sat"
	case symex.StatusStalled:
		return "unknown"
	case symex.StatusDiverged:
		return "unsat"
	default:
		return "error"
	}
}
