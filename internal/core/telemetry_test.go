package core_test

import (
	"testing"

	"execrecon/internal/core"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
)

// counterValue extracts the (single-series) counter value of a family.
func counterValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	fam, ok := reg.Family(name)
	if !ok {
		t.Fatalf("family %s not registered", name)
	}
	if len(fam.Series) != 1 {
		t.Fatalf("family %s has %d series, want 1", name, len(fam.Series))
	}
	return fam.Series[0].Value
}

// stageCount returns the observation count of the
// er_core_stage_seconds series with the given stage label.
func stageCount(t *testing.T, reg *telemetry.Registry, stage string) int64 {
	t.Helper()
	fam, ok := reg.Family("er_core_stage_seconds")
	if !ok {
		t.Fatalf("stage histogram family not registered")
	}
	for _, s := range fam.Series {
		for _, l := range s.Labels {
			if l.Name == "stage" && l.Value == stage {
				if s.Hist == nil {
					t.Fatalf("stage %s: no histogram snapshot", stage)
				}
				return s.Hist.Count
			}
		}
	}
	t.Fatalf("stage %s: series not found", stage)
	return 0
}

// TestPipelineTelemetry runs the iterative chain reproduction with a
// registry and tracer attached and checks that every stage reported:
// counters match the report, stage histograms carry one sample per
// stage execution, and the tracer retains one complete nested span
// tree for the session.
func TestPipelineTelemetry(t *testing.T) {
	mod := compile(t, chainSrc)
	reg := telemetry.New()
	tr := telemetry.NewTracer(4)
	rep, err := core.Reproduce(core.Config{
		Module:    mod,
		Gen:       &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:     symex.Options{QueryBudget: 30_000},
		Telemetry: reg,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
	iters := len(rep.Iterations)
	stalls := 0
	for _, it := range rep.Iterations {
		if it.Status == symex.StatusStalled {
			stalls++
		}
	}
	if stalls == 0 {
		t.Fatalf("expected at least one stalled iteration, got %d/%d", stalls, iters)
	}

	// Counters mirror the report exactly.
	checks := []struct {
		name string
		want float64
	}{
		{"er_core_occurrences_total", float64(rep.Occurrences)},
		{"er_core_iterations_total", float64(iters)},
		{"er_core_stalls_total", float64(stalls)},
		{"er_core_reproduced_total", 1},
		{"er_core_verified_total", 1},
	}
	for _, c := range checks {
		if got := counterValue(t, reg, c.name); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
	var wantSites, wantBytes float64
	for _, it := range rep.Iterations {
		wantSites += float64(it.RecordingSites)
		wantBytes += float64(it.RecordingCost)
	}
	if got := counterValue(t, reg, "er_core_recording_sites_total"); got != wantSites {
		t.Errorf("recording sites = %v, want %v", got, wantSites)
	}
	if got := counterValue(t, reg, "er_core_recording_bytes_total"); got != wantBytes {
		t.Errorf("recording bytes = %v, want %v", got, wantBytes)
	}

	// Stage histograms: one sample per stage execution.
	wantStage := map[string]int64{
		"shepherd":   int64(iters),
		"solve":      int64(iters),
		"keyselect":  int64(stalls),
		"instrument": int64(stalls),
		"verify":     1,
		"wait":       int64(rep.Occurrences),
	}
	for stage, want := range wantStage {
		if got := stageCount(t, reg, stage); got != want {
			t.Errorf("stage %s count = %d, want %d", stage, got, want)
		}
	}

	// Symex/solver series registered through the threaded registry.
	for _, name := range []string{"er_symex_runs_total", "er_symex_instrs_total"} {
		if _, ok := reg.Family(name); !ok {
			t.Errorf("family %s not registered via pipeline threading", name)
		}
	}

	// The tracer retained exactly one finished root tree describing
	// the full session.
	if got := tr.Finished(); got != 1 {
		t.Fatalf("finished roots = %d, want 1", got)
	}
	roots := tr.Recent()
	if len(roots) != 1 {
		t.Fatalf("recent roots = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "reconstruction" || root.Open {
		t.Fatalf("root = %q open=%v", root.Name, root.Open)
	}
	if root.Attrs["reproduced"] != "true" || root.Attrs["verified"] != "true" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if root.Attrs["signature"] == "" {
		t.Errorf("root missing signature attr")
	}
	var nIter, nWait int
	var checkClosed func(s telemetry.SpanSnapshot)
	checkClosed = func(s telemetry.SpanSnapshot) {
		if s.Open {
			t.Errorf("span %s still open in finished tree", s.Name)
		}
		if s.Duration < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Duration)
		}
		for _, c := range s.Children {
			checkClosed(c)
		}
	}
	checkClosed(root)
	for _, c := range root.Children {
		switch c.Name {
		case "iteration":
			nIter++
			var hasShepherd, hasSolve bool
			for _, g := range c.Children {
				if g.Name == "shepherd" {
					hasShepherd = true
					for _, gg := range g.Children {
						if gg.Name == "solve" {
							hasSolve = true
							if gg.Attrs["verdict"] == "" {
								t.Errorf("solve span missing verdict attr")
							}
						}
					}
				}
			}
			if !hasShepherd || !hasSolve {
				t.Errorf("iteration span missing shepherd/solve children: %+v", c)
			}
		case "reoccurrence-wait":
			nWait++
		}
	}
	if nIter != iters {
		t.Errorf("iteration spans = %d, want %d", nIter, iters)
	}
	if nWait != rep.Occurrences {
		t.Errorf("wait spans = %d, want %d", nWait, rep.Occurrences)
	}
}

// TestPipelineNoTelemetry checks the nil-telemetry path stays a
// no-op: no registry, no tracer, identical outcome.
func TestPipelineNoTelemetry(t *testing.T) {
	mod := compile(t, chainSrc)
	rep, err := core.Reproduce(core.Config{
		Module: mod,
		Gen:    &core.FixedWorkload{Workload: chainWorkload(), Seed: 1},
		Symex:  symex.Options{QueryBudget: 30_000},
	})
	if err != nil {
		t.Fatalf("reproduce: %v", err)
	}
	if !rep.Reproduced || !rep.Verified {
		t.Fatalf("report: %+v", rep)
	}
}
