// Package corpus is the scenario generator that scales the evaluation
// from the 13 hand-written Table 1 programs to a population of
// hundreds of generated failures (ROADMAP item 3, after "Reproducing
// Failures in Fault Signatures": reproduction evaluated as a
// *population* property over generated fault patterns).
//
// A scenario is a minc program produced from a randomized skeleton
// (straight-line, branching, loop, call-graph, or spawn-based
// multithreaded) into which one known bug pattern has been injected:
// integer overflow defeating a bounds check, a mis-checked
// out-of-bounds index, a use-after-free-style stale-slot read, an
// off-by-one loop bound, an assertion violation, and — through the
// VM's spawn/lock machinery — lock inversion and atomicity violation.
// Every scenario carries its ground truth: the failing input vector
// and scheduler seed, the expected failure kind and site, and a benign
// input distribution. Generation self-verifies each scenario by
// concrete VM execution (the failing input must fail with the expected
// signature; N benign inputs must not fail) before the scenario is
// handed to the ER loop, so population-level reproduction rates
// measure ER, not generator noise.
//
// Generation is deterministic: the same GenConfig.Seed produces
// byte-identical programs, workloads, and scheduler seeds.
package corpus

import (
	"fmt"
	"sync"

	"execrecon/internal/apps"
	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/prod"
	"execrecon/internal/vm"
)

// Pattern is an injected bug class.
type Pattern int

// The injected bug patterns. The first five are sequential; the last
// two exercise the multithreaded machinery (spawn/lock/yield).
const (
	// PatternOverflow: a size computation in a narrow integer width
	// wraps for large inputs, so the bounds check passes and a
	// far-out-of-bounds store follows (the classic allocation-size
	// overflow shape).
	PatternOverflow Pattern = iota
	// PatternOOB: an index is validated against the wrong table's
	// bound, admitting indices past the accessed array's end.
	PatternOOB
	// PatternStaleSlot: an evict path frees a slot's object but
	// leaves the stale pointer in the table; a later lookup checks the
	// pointer (not the liveness flag) and reads freed memory.
	PatternStaleSlot
	// PatternOffByOne: a loop bound uses <= where < was meant; only
	// the exact boundary input reads one element past the end.
	PatternOffByOne
	// PatternAssert: an accumulated invariant check fails for a rare
	// input combination the solver must invert.
	PatternAssert
	// PatternLockInversion: two workers acquire the same two locks in
	// opposite orders with a descheduling point in between; the
	// failing input enables both locking paths concurrently and the
	// run deadlocks.
	PatternLockInversion
	// PatternAtomicity: a check-then-act on a shared slot table races
	// with a clearing writer (pointer cleared before the liveness
	// flag, outside the reader's lock) — the memcached-2019-11596
	// class, generated in volume.
	PatternAtomicity
	numPatterns
)

var patternNames = [numPatterns]string{
	"overflow", "oob-index", "stale-slot", "off-by-one",
	"assert", "lock-inversion", "atomicity",
}

var patternBugTypes = [numPatterns]string{
	"Integer overflow", "Out-of-bounds access", "Use-after-free",
	"Off-by-one", "Assertion violation", "Deadlock", "Atomicity violation",
}

// String returns the pattern's short slug.
func (p Pattern) String() string {
	if p < 0 || p >= numPatterns {
		return fmt.Sprintf("pattern(%d)", int(p))
	}
	return patternNames[p]
}

// BugType returns the Table 1-style bug class label.
func (p Pattern) BugType() string { return patternBugTypes[p] }

// MT reports whether the pattern generates multithreaded programs.
func (p Pattern) MT() bool { return p == PatternLockInversion || p == PatternAtomicity }

// Patterns returns all patterns in generation order.
func Patterns() []Pattern {
	out := make([]Pattern, numPatterns)
	for i := range out {
		out[i] = Pattern(i)
	}
	return out
}

// Scenario is one generated program plus its ground truth.
type Scenario struct {
	// Name is unique within a generated population
	// (corpus-<pattern>-<index>).
	Name string
	// Pattern is the injected bug class.
	Pattern Pattern
	// SubSeed is the generator stream that produced this scenario
	// (diagnostic; the population is reproduced from GenConfig.Seed).
	SubSeed uint64
	// Src is the generated minc source.
	Src string
	// Kind is the expected failure kind of the ground-truth input.
	Kind vm.FailKind
	// FailFunc is the function expected to fail ("" for
	// scheduler-level failures such as deadlocks, which carry no
	// located site).
	FailFunc string
	// Failing is the ground-truth bug-triggering input vector
	// (callers clone before running).
	Failing *vm.Workload
	// SchedSeed is the scheduler seed under which Failing fails
	// (found by bounded search for the multithreaded patterns).
	SchedSeed int64
	// BenignSeeds are scheduler seeds the benign distribution was
	// verified under; production runs must draw from these.
	BenignSeeds []int64
	// Benign returns the i-th benign workload (deterministic in i).
	Benign func(i int) *vm.Workload
	// QueryBudget is the per-query solver budget for this scenario's
	// reconstruction.
	QueryBudget int64

	once sync.Once
	mod  *ir.Module
	err  error
}

// Module compiles (once) and returns the scenario's module.
func (s *Scenario) Module() (*ir.Module, error) {
	s.once.Do(func() { s.mod, s.err = minc.Compile(s.Name, s.Src) })
	if s.err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", s.Name, s.err)
	}
	return s.mod, nil
}

// BenignSeed returns the scheduler seed for the i-th benign production
// run, cycling through the verified seeds.
func (s *Scenario) BenignSeed(i int) int64 {
	return s.BenignSeeds[i%len(s.BenignSeeds)]
}

// App adapts the scenario to the evaluation-program shape shared with
// the hand-written Table 1 set, so every driver that consumes
// *apps.App (fleet conversion, overhead runners, lint sweeps) accepts
// generated scenarios unchanged.
func (s *Scenario) App() *apps.App {
	return &apps.App{
		Name:        s.Name,
		BugType:     s.Pattern.BugType(),
		MT:          s.Pattern.MT(),
		Kind:        s.Kind,
		Src:         s.Src,
		Failing:     func() *vm.Workload { return s.Failing.Clone() },
		Benign:      s.Benign,
		Seed:        s.SchedSeed,
		QueryBudget: s.QueryBudget,
	}
}

// Gen returns the production workload generator for this scenario's
// machines: benign traffic (under the verified benign scheduler
// seeds) with the ground-truth failing workload recurring every
// failEvery-th run — the prod.Machine producer shape the fleet
// deploys directly.
func (s *Scenario) Gen(failEvery int) func(n int) (*vm.Workload, int64) {
	return prod.Mix(
		func() *vm.Workload { return s.Failing.Clone() }, s.SchedSeed,
		s.Benign, s.BenignSeed, failEvery)
}
