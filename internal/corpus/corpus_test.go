package corpus_test

import (
	"reflect"
	"sync"
	"testing"

	"execrecon/internal/core"
	"execrecon/internal/corpus"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
)

// genBatch generates one scenario per pattern (two for short batches)
// with a fixed seed, failing the test on any generation error.
func genBatch(t *testing.T, n int, seed uint64) []*corpus.Scenario {
	t.Helper()
	scs, stats, err := corpus.Generate(corpus.GenConfig{N: n, Seed: seed})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if stats.Generated != n {
		t.Fatalf("generated %d scenarios, want %d", stats.Generated, n)
	}
	return scs
}

// TestGroundTruthPerPattern re-checks, independently of the
// generator's own self-verification, that each pattern's ground truth
// holds under concrete execution: the failing input fails with the
// expected kind at the expected site, and N benign inputs pass.
func TestGroundTruthPerPattern(t *testing.T) {
	scs := genBatch(t, 2*len(corpus.Patterns()), 42)
	covered := map[corpus.Pattern]bool{}
	for _, sc := range scs {
		covered[sc.Pattern] = true
		res, err := sc.Exec(sc.Failing.Clone(), sc.SchedSeed)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if res.Failure == nil {
			t.Errorf("%s: ground-truth input did not fail", sc.Name)
			continue
		}
		if !sc.Matches(res.Failure) {
			t.Errorf("%s: failed with %v, want %s in %q", sc.Name, res.Failure, sc.Kind, sc.FailFunc)
		}
		for i := 0; i < 8; i++ {
			bres, err := sc.Exec(sc.Benign(i), sc.BenignSeed(i))
			if err != nil {
				t.Fatalf("%s: benign %d: %v", sc.Name, i, err)
			}
			if bres.Failure != nil {
				t.Errorf("%s: benign run %d failed: %v", sc.Name, i, bres.Failure)
			}
		}
	}
	for _, p := range corpus.Patterns() {
		if !covered[p] {
			t.Errorf("pattern %s not covered by round-robin batch", p)
		}
	}
}

// TestGenerateDeterministic: same seed ⇒ byte-identical programs and
// identical ground truth; a different seed must actually vary the
// programs.
func TestGenerateDeterministic(t *testing.T) {
	n := len(corpus.Patterns())
	a := genBatch(t, n, 7)
	b := genBatch(t, n, 7)
	for i := range a {
		if a[i].Src != b[i].Src {
			t.Errorf("scenario %d (%s): sources differ across runs of seed 7", i, a[i].Pattern)
		}
		if a[i].SchedSeed != b[i].SchedSeed || a[i].SubSeed != b[i].SubSeed {
			t.Errorf("scenario %d: seeds differ (%d/%d vs %d/%d)",
				i, a[i].SchedSeed, a[i].SubSeed, b[i].SchedSeed, b[i].SubSeed)
		}
		if !reflect.DeepEqual(a[i].Failing.Streams, b[i].Failing.Streams) {
			t.Errorf("scenario %d: failing workloads differ", i)
		}
	}
	c := genBatch(t, n, 8)
	same := 0
	for i := range a {
		if a[i].Src == c[i].Src {
			same++
		}
	}
	if same == n {
		t.Errorf("seeds 7 and 8 generated identical populations")
	}
}

// TestMetricsCounters checks generation progress lands in the
// telemetry registry under the er_corpus_* families.
func TestMetricsCounters(t *testing.T) {
	reg := telemetry.New()
	m := corpus.NewMetrics(reg)
	_, stats, err := corpus.Generate(corpus.GenConfig{N: 3, Seed: 11, Metrics: m})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	fam, ok := reg.Family("er_corpus_generated_total")
	if !ok {
		t.Fatalf("er_corpus_generated_total not registered")
	}
	var total float64
	for _, s := range fam.Series {
		total += s.Value
	}
	if total != float64(stats.Generated) {
		t.Errorf("er_corpus_generated_total = %v, want %d", total, stats.Generated)
	}
}

// TestConcurrencyStress regenerates and re-verifies the multithreaded
// patterns from many goroutines — the -race stress for the spawn-based
// scenarios and the generator's own concurrency safety.
func TestConcurrencyStress(t *testing.T) {
	pats := []corpus.Pattern{corpus.PatternLockInversion, corpus.PatternAtomicity}
	scs, _, err := corpus.Generate(corpus.GenConfig{N: 4, Seed: 23, Patterns: pats})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var wg sync.WaitGroup
	for _, sc := range scs {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(sc *corpus.Scenario, g int) {
				defer wg.Done()
				res, err := sc.Exec(sc.Failing.Clone(), sc.SchedSeed)
				if err != nil || !sc.Matches(res.Failure) {
					t.Errorf("%s: goroutine %d: failing run mismatch (err=%v)", sc.Name, g, err)
					return
				}
				if bres, err := sc.Exec(sc.Benign(g), sc.BenignSeed(g)); err != nil || bres.Failure != nil {
					t.Errorf("%s: goroutine %d: benign run failed (err=%v)", sc.Name, g, err)
				}
			}(sc, g)
		}
	}
	wg.Wait()
}

// TestReproduceGenerated drives full ER reproduction over one
// generated scenario per pattern: the corpus exists so that this —
// population-scale reproduction — works end to end.
func TestReproduceGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("full ER loop per pattern")
	}
	scs := genBatch(t, len(corpus.Patterns()), 1)
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			mod, err := sc.Module()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Reproduce(core.Config{
				Module: mod,
				Gen:    &core.FixedWorkload{Workload: sc.Failing.Clone(), Seed: sc.SchedSeed},
				Symex:  symex.Options{QueryBudget: sc.QueryBudget, MaxInstrs: 50_000_000},
			})
			if err != nil {
				t.Fatalf("Reproduce: %v", err)
			}
			if !rep.Reproduced || !rep.Verified {
				t.Errorf("reproduced=%v verified=%v (%s)", rep.Reproduced, rep.Verified, rep.FailReason)
			}
		})
	}
}
