package corpus

import (
	"fmt"
)

// Solver budgets for generated scenarios, matching the range the
// hand-written Table 1 apps use (the generated programs are the same
// size class).
const (
	defaultSTBudget = 20000
	defaultMTBudget = 5000
)

// GenConfig configures a corpus generation run.
type GenConfig struct {
	// N is the number of scenarios to generate.
	N int
	// Seed is the master seed; the same seed yields byte-identical
	// scenarios.
	Seed uint64
	// Patterns restricts generation to a subset (default: all, in
	// round-robin order so any N ≥ len(Patterns()) spans every
	// pattern).
	Patterns []Pattern
	// BenignRuns is the number of benign executions each scenario is
	// verified against (default 6).
	BenignRuns int
	// SeedSearch bounds the scheduler-seed search for multithreaded
	// patterns (default 64).
	SeedSearch int
	// Attempts bounds generation retries per scenario slot before
	// giving up (default 8). A retry redraws the scenario from an
	// independent sub-seed stream, so determinism is preserved.
	Attempts int
	// Metrics, if set, receives generation progress counters.
	Metrics *Metrics
}

func (c *GenConfig) withDefaults() GenConfig {
	out := *c
	if out.BenignRuns == 0 {
		out.BenignRuns = 6
	}
	if out.SeedSearch == 0 {
		out.SeedSearch = 64
	}
	if out.Attempts == 0 {
		out.Attempts = 8
	}
	if len(out.Patterns) == 0 {
		out.Patterns = Patterns()
	}
	return out
}

// GenStats summarizes a generation run.
type GenStats struct {
	// Generated counts accepted (verified) scenarios.
	Generated int
	// Rejected counts draws that failed self-verification and were
	// redrawn from the next attempt stream.
	Rejected int
	// PerPattern counts accepted scenarios by pattern slug.
	PerPattern map[string]int
}

// Generate produces cfg.N self-verified scenarios. Every returned
// scenario's ground truth has been confirmed by concrete VM execution:
// the failing workload fails with the expected kind (at the expected
// function, where the pattern has one) under the recorded scheduler
// seed, and BenignRuns benign workloads complete cleanly. Scenarios
// are assigned patterns round-robin, so N ≥ len(patterns) spans every
// requested pattern.
func Generate(cfg GenConfig) ([]*Scenario, *GenStats, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 {
		return nil, nil, fmt.Errorf("corpus: N must be positive, got %d", cfg.N)
	}
	stats := &GenStats{PerPattern: make(map[string]int)}
	out := make([]*Scenario, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		p := cfg.Patterns[i%len(cfg.Patterns)]
		var sc *Scenario
		var lastErr error
		for attempt := 0; attempt < cfg.Attempts; attempt++ {
			seed := subSeed(cfg.Seed, i, attempt)
			cand := genOne(p, seed)
			cand.Name = fmt.Sprintf("corpus-%s-%03d", p, i)
			if err := cand.SelfVerify(cfg.BenignRuns, cfg.SeedSearch); err != nil {
				lastErr = err
				stats.Rejected++
				cfg.Metrics.rejected(p)
				continue
			}
			sc = cand
			break
		}
		if sc == nil {
			return nil, stats, fmt.Errorf("corpus: scenario %d (%s): no verifiable draw in %d attempts: %w",
				i, p, cfg.Attempts, lastErr)
		}
		out = append(out, sc)
		stats.Generated++
		stats.PerPattern[p.String()]++
		cfg.Metrics.generated(p)
	}
	return out, stats, nil
}

// genOne draws one scenario of the given pattern from the seed. The
// draw is deterministic; verification happens separately.
func genOne(p Pattern, seed uint64) *Scenario {
	r := newRNG(seed)
	var sc *Scenario
	switch p {
	case PatternLockInversion:
		sc = genLockInversion(r)
	case PatternAtomicity:
		sc = genAtomicity(r)
	default:
		sc = &Scenario{Pattern: p}
		var spec *stSpec
		switch p {
		case PatternOverflow:
			spec = genOverflow(r)
		case PatternOOB:
			spec = genOOB(r)
		case PatternStaleSlot:
			spec = genStaleSlot(r)
		case PatternOffByOne:
			spec = genOffByOne(r)
		case PatternAssert:
			spec = genAssert(r)
		default:
			panic(fmt.Sprintf("corpus: unknown pattern %d", int(p)))
		}
		emitST(r, spec, sc)
	}
	sc.SubSeed = seed
	return sc
}
