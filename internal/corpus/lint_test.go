package corpus_test

import (
	"testing"

	"execrecon/internal/absint"
	"execrecon/internal/corpus"
	"execrecon/internal/dataflow"
	"execrecon/internal/minc"
)

// TestCorpusProvableLintClean is the provable-lint regression gate for
// the generated population: the corpus injects *input-dependent* bugs
// (they fire only on the ground-truth failing workload), so the
// abstract interpreter — which proves facts over every input — must
// never promote one to an error-level finding. A finding here is a
// lint false positive: it would turn `er -lint` into a build breaker
// on code that is correct for almost all inputs.
func TestCorpusProvableLintClean(t *testing.T) {
	const n = 200
	scs, _, err := corpus.Generate(corpus.GenConfig{N: n, Seed: 1})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if len(scs) != n {
		t.Fatalf("generated %d scenarios, want %d", len(scs), n)
	}
	for _, sc := range scs {
		mod, err := sc.Module()
		if err != nil {
			t.Errorf("%s: compile: %v", sc.Name, err)
			continue
		}
		for _, f := range absint.Lint(mod, absint.Config{}) {
			if dataflow.ErrorLevel(f.Rule) {
				t.Errorf("%s (%s): provable-lint false positive: %s", sc.Name, sc.Pattern, f)
			}
		}
	}
}

// TestProvableLintFlagsKnownBugs is the matching true-positive gate:
// constructs that are wrong for *every* input — the shapes the corpus
// deliberately avoids — must be flagged at error level, so the clean
// result above means "no false positives", not "lint does nothing".
func TestProvableLintFlagsKnownBugs(t *testing.T) {
	cases := []struct {
		name, rule, src string
	}{
		{"oob", "provable-oob", `
int buf[4];
func main() int {
	int i = input32("n");
	buf[i & 3] = i;
	buf[7] = 1;
	return 0;
}
`},
		{"overflow", "provable-overflow", `
func main() int {
	int x = 3000000000;
	int y = x + x;
	return y;
}
`},
	}
	for _, tc := range cases {
		mod, err := minc.Compile(tc.name, tc.src)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		found := false
		for _, f := range absint.Lint(mod, absint.Config{}) {
			if f.Rule == tc.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no %s finding on a provably-buggy program", tc.name, tc.rule)
		}
	}
}
