package corpus

import "execrecon/internal/telemetry"

// Metrics publishes corpus population progress through the telemetry
// registry, so a fleet's /metrics and /debug/er endpoints show a
// corpus run advancing (scenarios generated and verified, draws
// rejected, reproductions settled).
type Metrics struct {
	reg *telemetry.Registry
}

// NewMetrics wires corpus counters into the registry (nil-safe: a nil
// registry yields no-op metrics, matching the telemetry package's
// conventions).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{reg: reg}
}

func (m *Metrics) registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// generated counts one accepted (self-verified) scenario.
func (m *Metrics) generated(p Pattern) {
	m.registry().Counter("er_corpus_generated_total",
		"Generated scenarios accepted after ground-truth verification.",
		telemetry.L("pattern", p.String())).Inc()
}

// rejected counts one draw that failed self-verification.
func (m *Metrics) rejected(p Pattern) {
	m.registry().Counter("er_corpus_rejected_total",
		"Scenario draws rejected by ground-truth self-verification.",
		telemetry.L("pattern", p.String())).Inc()
}

// Reproduced counts one settled ER outcome for a scenario.
func (m *Metrics) Reproduced(p Pattern, ok bool) {
	v := "false"
	if ok {
		v = "true"
	}
	m.registry().Counter("er_corpus_reproduced_total",
		"Corpus scenarios with a settled ER outcome, by result.",
		telemetry.L("pattern", p.String()), telemetry.L("reproduced", v)).Inc()
}
