package corpus

import (
	"fmt"

	"execrecon/internal/vm"
)

// Sequential patterns
//
// Each generator fills an stSpec; emitST wraps it in the shared
// randomized skeleton (request loop, call-graph filler, branching
// filler) and builds the ground-truth workloads.

// genOverflow: a size computation in a 16-bit temporary wraps for
// large request values, so the believed-safe bound check passes and
// the store lands far outside the table.
func genOverflow(r *rng) *stSpec {
	mult := []int{2, 4, 8, 16}[r.intn(4)]
	n := r.rangeInt(24, 80)
	limit := n * mult
	j := r.intn(n)
	trigger := uint64(65536/mult + j) // (short)(trigger*mult) == j*mult: wraps, passes the check
	spec := &stSpec{
		comment:  fmt.Sprintf("integer overflow: 16-bit size wrap defeats the < %d bound", limit),
		entry:    "probe",
		maxOps:   32,
		trigger:  [2]uint64{trigger, uint64(r.rangeInt(1, 4095))},
		kind:     vm.FailOutOfBounds,
		failFunc: "probe",
		budget:   defaultSTBudget,
	}
	spec.globals = func(s *src) {
		s.f("int tbl[%d];", n)
	}
	rr := r.fork()
	spec.funcs = func(s *src) {
		s.open("func probe(int idx, int v) int {")
		fillerStmts(rr, s, "gmix", []string{"idx", "v"}, 2)
		s.f("short need = (short)(idx * %d);", mult)
		s.open("if (need >= 0 && need < %d) {", limit)
		s.f("tbl[idx] = v;")
		s.f("return (int)need;")
		s.close()
		s.f("return 0;")
		s.close()
	}
	spec.benignPair = func(r *rng) (uint64, uint64) {
		return uint64(r.intn(n)), uint64(r.rangeInt(1, 4095))
	}
	return spec
}

// genOOB: the index is validated against the wrong table's bound (the
// larger shadow array), admitting indices past tbl's end.
func genOOB(r *rng) *stSpec {
	n := r.rangeInt(16, 48)
	m := n + r.rangeInt(8, 32)
	spec := &stSpec{
		comment:  fmt.Sprintf("out-of-bounds index: checked against %d, table holds %d", m, n),
		entry:    "record",
		maxOps:   32,
		trigger:  [2]uint64{uint64(r.rangeInt(n, m-1)), uint64(r.rangeInt(1, 4095))},
		kind:     vm.FailOutOfBounds,
		failFunc: "record",
		budget:   defaultSTBudget,
	}
	spec.globals = func(s *src) {
		s.f("int tbl[%d];", n)
		s.f("int shadow[%d];", m)
	}
	rr := r.fork()
	spec.funcs = func(s *src) {
		s.open("func record(int idx, int v) int {")
		fillerStmts(rr, s, "gmix", []string{"idx", "v"}, 2)
		s.open("if (idx >= 0 && idx < %d) {", m)
		s.f("shadow[idx] = v;")
		s.f("tbl[idx] = tbl[idx] + v;")
		s.f("return idx;")
		s.close()
		s.f("return 0;")
		s.close()
	}
	spec.benignPair = func(r *rng) (uint64, uint64) {
		return uint64(r.intn(n)), uint64(r.rangeInt(1, 4095))
	}
	return spec
}

// genStaleSlot: evict frees a slot's object but leaves the stale
// pointer in the table; lookup trusts the pointer (not the liveness
// flag) and reads freed memory. The failing request sequence is
// put k / evict k / lookup k.
func genStaleSlot(r *rng) *stSpec {
	slots := r.rangeInt(8, 24)
	objSize := []int{8, 12, 16}[r.intn(3)]
	key := uint64(r.intn(4096))
	spec := &stSpec{
		comment:  fmt.Sprintf("stale-slot read: evict leaves the freed pointer in a %d-slot table", slots),
		entry:    "cache_op",
		maxOps:   32,
		kind:     vm.FailUseAfterFree,
		failFunc: "lookup",
		budget:   defaultSTBudget,
	}
	spec.failingOps = [][2]uint64{{0, key}, {2, key}, {1, key}}
	spec.globals = func(s *src) {
		s.f("long slots[%d];", slots)
		s.f("int live[%d];", slots)
	}
	rr := r.fork()
	spec.funcs = func(s *src) {
		s.open("func put(int k, int v) int {")
		s.f("int s = k %% %d;", slots)
		s.open("if (live[s] == 0) {")
		s.f("char *p = malloc(%d);", objSize)
		s.f("int *ip = (int*)p;")
		s.f("ip[0] = v;")
		s.f("slots[s] = (long)p;")
		s.f("live[s] = 1;")
		s.close()
		s.open("if (live[s] == 1) {")
		s.f("int *ip = (int*)slots[s];")
		s.f("ip[0] = ip[0] + v;")
		s.close()
		s.f("return s;")
		s.close()

		s.open("func evict(int k) int {")
		s.f("int s = k %% %d;", slots)
		s.f("int hit = 0;")
		s.open("if (live[s] == 1) {")
		s.f("// BUG: the object is freed but slots[s] keeps the stale pointer")
		s.f("free((char*)slots[s]);")
		s.f("live[s] = 0;")
		s.f("hit = 1;")
		s.close()
		s.f("return hit;")
		s.close()

		s.open("func lookup(int k) int {")
		s.f("int s = k %% %d;", slots)
		s.f("int v = 0;")
		s.open("if (slots[s] != 0) {")
		s.f("// BUG: trusts the pointer instead of live[s]")
		s.f("int *ip = (int*)slots[s];")
		s.f("v = ip[0];")
		s.close()
		fillerStmts(rr, s, "v", []string{"k", "s"}, 1)
		s.f("return v;")
		s.close()

		s.open("func cache_op(int a, int b) int {")
		s.f("int op = a %% 3;")
		s.f("int out = 0;")
		s.f("if (op == 0) { out = put(b, b + 7); }")
		s.f("else if (op == 1) { out = lookup(b); }")
		s.f("else { out = evict(b); }")
		s.f("return out;")
		s.close()
	}
	spec.benignPair = func(r *rng) (uint64, uint64) {
		// puts and lookups only: without evicts no pointer goes stale.
		op := uint64(r.intn(2))
		if r.chance(25) {
			op += 3 // same op class modulo 3, different raw value
		}
		return op, uint64(r.intn(4096))
	}
	return spec
}

// genOffByOne: the summation loop runs i <= n where < was meant; the
// guard admits n == len(tbl), so exactly the boundary input reads one
// element past the end.
func genOffByOne(r *rng) *stSpec {
	n := r.rangeInt(12, 40)
	c := 2*r.rangeInt(1, 45) + 1
	spec := &stSpec{
		comment:  fmt.Sprintf("off-by-one: i <= n over a %d-entry table, guard admits n == %d", n, n),
		entry:    "scan",
		maxOps:   24,
		trigger:  [2]uint64{uint64(n), uint64(r.rangeInt(1, 4095))},
		kind:     vm.FailOutOfBounds,
		failFunc: "scan",
		budget:   defaultSTBudget,
	}
	spec.globals = func(s *src) {
		s.f("int tbl[%d];", n)
	}
	rr := r.fork()
	spec.funcs = func(s *src) {
		s.open("func scan(int n, int v) int {")
		s.f("int t = 0;")
		s.f("if (n < 0 || n > %d) { return 0; }", n)
		s.f("tbl[(n * %d) %% %d] = v;", c, n)
		fillerStmts(rr, s, "t", []string{"n", "v"}, 1)
		s.open("for (int i = 0; i <= n; i = i + 1) {")
		s.f("t = t + tbl[i];")
		s.close()
		s.f("return t;")
		s.close()
	}
	spec.benignPair = func(r *rng) (uint64, uint64) {
		return uint64(r.intn(n)), uint64(r.rangeInt(1, 4095))
	}
	return spec
}

// mixStep is one step of the assert pattern's checksum chain, mirrored
// exactly (int32 wrapping semantics) between the emitted minc and the
// generator's ground-truth evaluation.
type mixStep struct {
	op string // "xor", "mul", "add", "addb", "shr"
	c  int32
}

func evalMix(steps []mixStep, a, b int32) int32 {
	m := a
	for _, st := range steps {
		switch st.op {
		case "xor":
			m ^= st.c
		case "mul":
			m *= st.c
		case "add":
			m += st.c
		case "addb":
			m += b
		case "shr":
			m ^= m >> uint(st.c)
		}
	}
	return m & 255
}

// genAssert: an accumulated checksum invariant fails for exactly the
// input pair the generator chose; the solver has to invert the mixing
// chain to reproduce it.
func genAssert(r *rng) *stSpec {
	nSteps := r.rangeInt(2, 4)
	steps := make([]mixStep, 0, nSteps+1)
	usedB := false
	for i := 0; i < nSteps; i++ {
		switch r.intn(4) {
		case 0:
			steps = append(steps, mixStep{op: "xor", c: int32(r.rangeInt(1, 8191))})
		case 1:
			steps = append(steps, mixStep{op: "mul", c: int32(2*r.rangeInt(1, 127) + 1)})
		case 2:
			steps = append(steps, mixStep{op: "add", c: int32(r.rangeInt(1, 8191))})
		default:
			steps = append(steps, mixStep{op: "addb"})
			usedB = true
		}
	}
	if !usedB {
		steps = append(steps, mixStep{op: "addb"})
	}
	if r.chance(40) {
		steps = append(steps, mixStep{op: "shr", c: int32(r.rangeInt(3, 7))})
	}
	ta := int32(r.intn(4096))
	tb := int32(r.intn(4096))
	target := evalMix(steps, ta, tb)

	spec := &stSpec{
		comment:  fmt.Sprintf("assertion violation: %d-step checksum chain hits the forbidden value %d", len(steps), target),
		entry:    "check",
		maxOps:   24,
		trigger:  [2]uint64{uint64(ta), uint64(tb)},
		kind:     vm.FailAssert,
		failFunc: "check",
		budget:   defaultSTBudget,
	}
	spec.globals = func(s *src) {}
	rr := r.fork()
	spec.funcs = func(s *src) {
		s.open("func check(int a, int b) int {")
		s.f("int m = a;")
		for _, st := range steps {
			switch st.op {
			case "xor":
				s.f("m = m ^ %d;", st.c)
			case "mul":
				s.f("m = m * %d;", st.c)
			case "add":
				s.f("m = m + %d;", st.c)
			case "addb":
				s.f("m = m + b;")
			case "shr":
				s.f("m = m ^ (m >> %d);", st.c)
			}
		}
		s.f("m = m & 255;")
		fillerStmts(rr, s, "gmix", []string{"a", "b", "m"}, 1)
		s.f(`assert(m != %d, "checksum invariant");`, target)
		s.f("return m;")
		s.close()
	}
	spec.benignPair = func(r *rng) (uint64, uint64) {
		for {
			a := int32(r.intn(4096))
			b := int32(r.intn(4096))
			if evalMix(steps, a, b) != target {
				return uint64(a), uint64(b)
			}
		}
	}
	return spec
}

// Multithreaded patterns
//
// These emit full programs directly (spawn-based skeletons); the
// scheduler seed that exposes the interleaving is found by bounded
// search in generate.go.

// genLockInversion: two tellers move funds between two accounts,
// acquiring the two account locks in opposite orders with a
// descheduling point in between. The failing input enables both
// locking paths concurrently, and the run deadlocks.
func genLockInversion(r *rng) *Scenario {
	lockA := r.rangeInt(1, 4)
	lockB := lockA + r.rangeInt(1, 4)
	thresh := r.rangeInt(50, 200)
	bal0 := r.rangeInt(100, 900)
	bal1 := r.rangeInt(100, 900)

	s := &src{}
	s.f("// corpus scenario: lock inversion: move01 takes %d then %d, move10 takes %d then %d", lockA, lockB, lockB, lockA)
	s.f("int bal0 = %d;", bal0)
	s.f("int bal1 = %d;", bal1)
	s.f("int out0 = 0;")
	s.f("int out1 = 0;")
	s.f("int gmix = 0;")

	s.open("func move01(int amt) int {")
	s.f("lock(%d);", lockA)
	s.f("yield();")
	s.f("lock(%d); // BUG: move10 acquires these in the opposite order", lockB)
	s.f("bal0 = bal0 - amt;")
	s.f("bal1 = bal1 + amt;")
	s.f("unlock(%d);", lockB)
	s.f("unlock(%d);", lockA)
	s.f("return amt;")
	s.close()

	s.open("func move10(int amt) int {")
	s.f("lock(%d);", lockB)
	s.f("yield();")
	s.f("lock(%d);", lockA)
	s.f("bal1 = bal1 - amt;")
	s.f("bal0 = bal0 + amt;")
	s.f("unlock(%d);", lockA)
	s.f("unlock(%d);", lockB)
	s.f("return amt;")
	s.close()

	teller := func(idx int, move, tag string, out string) {
		s.open("func teller%d(int n) {", idx)
		s.f("int acc = 0;")
		s.open("for (int i = 0; i < n; i = i + 1) {")
		s.f(`int amt = input32("%s");`, tag)
		s.open("if (amt >= %d) {", thresh)
		s.f("acc = acc + %s(amt);", move)
		s.close()
		s.open("if (amt < %d) {", thresh)
		fillerStmts(r.fork(), s, "acc", []string{"amt", "i"}, 1)
		s.f("acc = acc + (amt & 31);")
		s.close()
		s.close()
		s.f("%s = acc;", out)
		s.close()
	}
	teller(0, "move01", "t0", "out0")
	teller(1, "move10", "t1", "out1")

	s.open("func main() int {")
	s.f(`int n0 = input32("cfg");`)
	s.f(`int n1 = input32("cfg");`)
	s.f("if (n0 < 0 || n0 > 16 || n1 < 0 || n1 > 16) { return 0 - 1; }")
	s.f("long t0 = spawn teller0(n0);")
	s.f("long t1 = spawn teller1(n1);")
	s.f("join(t0);")
	s.f("join(t1);")
	s.f("output(out0 + out1);")
	s.f("output(gmix);")
	s.f("return bal0 + bal1;")
	s.close()

	sc := &Scenario{
		Pattern:     PatternLockInversion,
		Src:         s.String(),
		Kind:        vm.FailDeadlock,
		FailFunc:    "", // scheduler-level: deadlocks carry no located site
		QueryBudget: defaultMTBudget,
	}

	// Ground truth: both tellers' first command is a transfer, so both
	// locking paths run concurrently.
	n0 := r.rangeInt(1, 3)
	n1 := r.rangeInt(1, 3)
	w := vm.NewWorkload()
	w.Add("cfg", uint64(n0), uint64(n1))
	w.Add("t0", uint64(thresh+r.intn(50)))
	for i := 1; i < n0; i++ {
		w.Add("t0", uint64(r.intn(thresh)))
	}
	w.Add("t1", uint64(thresh+r.intn(50)))
	for i := 1; i < n1; i++ {
		w.Add("t1", uint64(r.intn(thresh)))
	}
	sc.Failing = w

	benignSeed := r.next()
	sc.Benign = func(i int) *vm.Workload {
		br := newRNG(benignSeed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		bw := vm.NewWorkload()
		if i%2 == 0 {
			// Single active teller: transfers are lock-safe alone.
			k := br.rangeInt(3, 8)
			bw.Add("cfg", uint64(k), 0)
			for j := 0; j < k; j++ {
				bw.Add("t0", uint64(br.intn(thresh*2)))
			}
		} else {
			// Both tellers active, all commands below the transfer
			// threshold: no lock is ever taken.
			k0, k1 := br.rangeInt(2, 6), br.rangeInt(2, 6)
			bw.Add("cfg", uint64(k0), uint64(k1))
			for j := 0; j < k0; j++ {
				bw.Add("t0", uint64(br.intn(thresh)))
			}
			for j := 0; j < k1; j++ {
				bw.Add("t1", uint64(br.intn(thresh)))
			}
		}
		return bw
	}
	return sc
}

// genAtomicity: a slot-table writer clears the item pointer before the
// liveness flag (and outside the scanner's view of the update), so the
// scanner's check-then-act dereferences a cleared or freed item — the
// memcached-2019-11596 class.
func genAtomicity(r *rng) *Scenario {
	slots := r.rangeInt(8, 24)
	hash := 2*r.rangeInt(3, 1000) + 1
	rounds := r.rangeInt(2, 4)
	nKeys := r.rangeInt(3, 6)

	s := &src{}
	s.f("// corpus scenario: atomicity violation: drop clears items[s] before used[s], scan checks then derefs")
	s.f("int used[%d];", slots)
	s.f("long items[%d];", slots)
	s.f("int stored = 0;")
	s.f("int seen = 0;")

	s.open("func slot_of(int k) int {")
	s.f("int h = k * %d;", hash)
	s.f("if (h < 0) { h = 0 - h; }")
	s.f("return h %% %d;", slots)
	s.close()

	s.open("func store(int k, int v) {")
	s.f("int s = slot_of(k);")
	s.f("lock(1);")
	s.open("if (used[s] == 0) {")
	s.f("char *p = malloc(8);")
	s.f("int *ip = (int*)p;")
	s.f("ip[0] = v;")
	s.f("items[s] = (long)p;")
	s.f("used[s] = 1;")
	s.f("stored = stored + 1;")
	s.close()
	s.open("if (used[s] == 1 && items[s] != 0) {")
	s.f("int *ip = (int*)items[s];")
	s.f("ip[0] = v;")
	s.close()
	s.f("unlock(1);")
	s.close()

	s.open("func drop(int k) {")
	s.f("int s = slot_of(k);")
	s.open("if (used[s] == 1) {")
	s.f("// BUG: pointer cleared and freed before the flag, without the scanner's lock")
	s.f("long p = items[s];")
	s.f("items[s] = 0;")
	s.f("yield();")
	s.f("used[s] = 0;")
	s.f("free((char*)p);")
	s.close()
	s.close()

	s.open("func serve(int n) {")
	s.open("for (int i = 0; i < n; i = i + 1) {")
	s.f(`int op = input32("cmd");`)
	s.f(`int k = input32("cmd");`)
	s.f(`if (op == 1) { store(k, input32("cmd")); }`)
	s.f("else if (op == 2) { drop(k); }")
	s.close()
	s.close()

	s.open("func scan(int rounds) {")
	s.open("for (int r = 0; r < rounds; r = r + 1) {")
	s.open("for (int s = 0; s < %d; s = s + 1) {", slots)
	s.open("if (used[s] == 1) {")
	s.f("yield();")
	s.f("int *ip = (int*)items[s];")
	s.f("seen = seen + ip[0]; // race window: deref after drop's clear")
	s.close()
	s.close()
	s.close()
	s.close()

	s.open("func main() int {")
	s.f(`int n = input32("cfg");`)
	s.f(`int rounds = input32("cfg");`)
	s.f("if (n < 0 || n > 64 || rounds < 0 || rounds > 8) { return 0 - 1; }")
	s.f("long ts = spawn serve(n);")
	s.f("long tc = spawn scan(rounds);")
	s.f("join(ts);")
	s.f("join(tc);")
	s.f("output(stored);")
	s.f("output(seen);")
	s.f("return stored;")
	s.close()

	sc := &Scenario{
		Pattern: PatternAtomicity,
		Src:     s.String(),
		// Kind is pinned by the seed search: the same race window can
		// surface as a NULL deref (cleared slot) or a use-after-free
		// (freed item), depending on where the scanner is descheduled.
		Kind:        vm.FailNullDeref,
		FailFunc:    "scan",
		QueryBudget: defaultMTBudget,
	}

	// Ground truth: store nKeys keys, then drop them all while the
	// scanner walks the table.
	stride := r.rangeInt(1, 7)
	w := vm.NewWorkload()
	w.Add("cfg", uint64(2*nKeys), uint64(rounds))
	for i := 0; i < nKeys; i++ {
		w.Add("cmd", 1, uint64(i*stride), uint64(r.rangeInt(1, 999)))
	}
	for i := 0; i < nKeys; i++ {
		w.Add("cmd", 2, uint64(i*stride))
	}
	sc.Failing = w

	benignSeed := r.next()
	sc.Benign = func(i int) *vm.Workload {
		br := newRNG(benignSeed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		// Stores only: without drops no slot ever goes stale, so the
		// scanner is safe under every interleaving.
		k := br.rangeInt(4, 12)
		bw := vm.NewWorkload()
		bw.Add("cfg", uint64(k), uint64(br.rangeInt(1, 3)))
		for j := 0; j < k; j++ {
			bw.Add("cmd", 1, uint64(br.intn(64)), uint64(br.rangeInt(1, 999)))
		}
		return bw
	}
	return sc
}
