package corpus

// rng is a splitmix64 generator. The corpus generator owns its own
// primitive (rather than math/rand) so that "same seed ⇒ byte-identical
// programs" is a property of this package alone, independent of any
// standard-library reshuffle of rand's algorithms.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi] (inclusive).
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance reports true with probability pct/100.
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// pick returns one of the choices.
func (r *rng) pick(choices []string) string { return choices[r.intn(len(choices))] }

// fork splits off an independent stream, so a consumer can draw an
// unbounded number of values without perturbing the parent sequence.
func (r *rng) fork() *rng { return newRNG(r.next()) }

// subSeed derives an independent stream for (scenario index, attempt)
// pairs; mixing through splitmix keeps nearby indices uncorrelated.
func subSeed(master uint64, idx, attempt int) uint64 {
	r := rng{s: master ^ (uint64(idx)+1)*0x9e3779b97f4a7c15 ^ (uint64(attempt)+1)*0xd1b54a32d192ed03}
	return r.next()
}
