package corpus

import (
	"fmt"
	"strings"

	"execrecon/internal/vm"
)

// src accumulates generated minc source with indentation.
type src struct {
	b   strings.Builder
	ind int
}

func (s *src) f(format string, args ...interface{}) {
	for i := 0; i < s.ind; i++ {
		s.b.WriteByte('\t')
	}
	fmt.Fprintf(&s.b, format, args...)
	s.b.WriteByte('\n')
}

func (s *src) open(format string, args ...interface{}) {
	s.f(format, args...)
	s.ind++
}

func (s *src) close() {
	s.ind--
	s.f("}")
}

func (s *src) String() string { return s.b.String() }

// fillerExpr returns a side-effect-free arithmetic expression over the
// named operands. Only total operators are used (no division or
// modulus), so filler can never fault regardless of operand values.
func fillerExpr(r *rng, operands []string) string {
	ops := []string{"+", "-", "*", "^", "|", "&"}
	e := operands[r.intn(len(operands))]
	for n := r.rangeInt(1, 3); n > 0; n-- {
		op := ops[r.intn(len(ops))]
		var rhs string
		if r.chance(50) {
			rhs = operands[r.intn(len(operands))]
		} else {
			rhs = fmt.Sprintf("%d", r.rangeInt(1, 97))
		}
		e = fmt.Sprintf("(%s %s %s)", e, op, rhs)
	}
	if r.chance(30) {
		e = fmt.Sprintf("(%s >> %d)", e, r.rangeInt(1, 5))
	}
	return e
}

// emitMixHelper emits a pure arithmetic helper function and returns
// its name — the call-graph filler that varies skeletons (and failure
// line numbers) across scenarios.
func emitMixHelper(r *rng, s *src, idx int) string {
	name := fmt.Sprintf("mix%d", idx)
	s.open("func %s(int a, int b) int {", name)
	s.f("int t = %s;", fillerExpr(r, []string{"a", "b"}))
	for n := r.rangeInt(0, 2); n > 0; n-- {
		s.f("t = %s;", fillerExpr(r, []string{"t", "a", "b"}))
	}
	s.f("return t;")
	s.close()
	return name
}

// fillerStmts emits 0..max locals computed from the operands, folding
// each into the named accumulator so the work is observable (and thus
// neither dead-store lint noise nor trivially sliceable away).
func fillerStmts(r *rng, s *src, acc string, operands []string, max int) {
	for n := r.rangeInt(0, max); n > 0; n-- {
		v := fmt.Sprintf("f%d", r.intn(1000))
		s.f("int %s = %s;", v, fillerExpr(r, operands))
		s.f("%s = %s + (%s & %d);", acc, acc, v, (1<<uint(r.rangeInt(4, 8)))-1)
	}
}

// stSpec is a sequential scenario under assembly: pattern generators
// fill in the bug-owning globals/functions and the request ground
// truth; emitST wraps them in the shared skeleton (a request loop in
// main, optional relay indirection, filler helpers and branches).
type stSpec struct {
	comment string
	// globals and funcs are pattern-owned source fragments.
	globals func(s *src)
	funcs   func(s *src)
	// entry is the pattern's request handler: func entry(int a, int b) int.
	entry string
	// maxOps bounds main's request count (the usual input guard).
	maxOps int
	// trigger is the failing request (a, b).
	trigger [2]uint64
	// failingOps, when set, is the full failing request sequence and
	// overrides trigger — for patterns whose bug needs a multi-request
	// protocol (e.g. put/evict/lookup).
	failingOps [][2]uint64
	// benignPair draws one safe request.
	benignPair func(r *rng) (uint64, uint64)
	kind       vm.FailKind
	failFunc   string
	budget     int64
}

// emitST renders the full program for a sequential scenario and
// builds its ground-truth workloads.
func emitST(r *rng, spec *stSpec, sc *Scenario) {
	s := &src{}
	s.f("// corpus scenario: %s", spec.comment)
	spec.globals(s)
	s.f("int gmix = 0;")

	// Call-graph filler: 0-2 pure helpers, optionally called from the
	// main loop's filler branch.
	var helpers []string
	for i, n := 0, r.rangeInt(0, 2); i < n; i++ {
		helpers = append(helpers, emitMixHelper(r, s, i))
	}
	spec.funcs(s)

	// Optional relay indirection: main -> relay -> entry, deepening
	// the call graph (and the failure stack) for some scenarios.
	entry := spec.entry
	if r.chance(40) {
		s.open("func relay(int a, int b) int {")
		fillerStmts(r, s, "gmix", []string{"a", "b"}, 1)
		s.f("return %s(a, b);", spec.entry)
		s.close()
		entry = "relay"
	}

	s.open("func main() int {")
	s.f(`int n = input32("cfg");`)
	s.f("if (n < 1 || n > %d) { return 0 - 1; }", spec.maxOps)
	s.f("int total = 0;")
	s.open("for (int i = 0; i < n; i = i + 1) {")
	s.f(`int a = input32("req");`)
	s.f(`int b = input32("req");`)
	// Branching filler keyed on the request, safe for all inputs.
	if r.chance(60) {
		mask := (1 << uint(r.rangeInt(2, 4))) - 1
		s.open("if ((a & %d) == %d) {", mask, r.intn(mask+1))
		if len(helpers) > 0 && r.chance(70) {
			s.f("gmix = gmix + %s(a, i);", helpers[r.intn(len(helpers))])
		} else {
			fillerStmts(r, s, "gmix", []string{"a", "b", "i"}, 1)
			s.f("gmix = gmix + 1;")
		}
		s.close()
	}
	s.f("total = total + %s(a, b);", entry)
	s.close()
	s.f("output(total);")
	s.f("output(gmix);")
	s.f("return 0;")
	s.close()

	sc.Src = s.String()
	sc.Kind = spec.kind
	sc.FailFunc = spec.failFunc
	sc.QueryBudget = spec.budget
	sc.SchedSeed = 1
	sc.BenignSeeds = []int64{101, 202, 303}

	// Ground-truth failing workload: a few benign requests, then the
	// trigger sequence (requests after the failure never execute).
	trigger := spec.failingOps
	if trigger == nil {
		trigger = [][2]uint64{spec.trigger}
	}
	prefix := r.rangeInt(0, 4)
	w := vm.NewWorkload()
	w.Add("cfg", uint64(prefix+len(trigger)))
	for i := 0; i < prefix; i++ {
		a, b := spec.benignPair(r)
		w.Add("req", a, b)
	}
	for _, op := range trigger {
		w.Add("req", op[0], op[1])
	}
	sc.Failing = w

	benignSeed := r.next()
	benignPair := spec.benignPair
	maxOps := spec.maxOps
	sc.Benign = func(i int) *vm.Workload {
		br := newRNG(benignSeed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		k := br.rangeInt(3, minInt(10, maxOps))
		bw := vm.NewWorkload()
		bw.Add("cfg", uint64(k))
		for j := 0; j < k; j++ {
			a, b := benignPair(br)
			bw.Add("req", a, b)
		}
		return bw
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
