package corpus

import (
	"fmt"

	"execrecon/internal/vm"
)

// maxFailingInstrs bounds the failing run's dynamic instruction count
// so every accepted scenario's trace comfortably fits a production
// machine's default ring buffer.
const maxFailingInstrs = 150_000

// Exec runs the scenario's program on a workload under a scheduler
// seed, by concrete VM execution.
func (s *Scenario) Exec(w *vm.Workload, seed int64) (*vm.Result, error) {
	mod, err := s.Module()
	if err != nil {
		return nil, err
	}
	return vm.New(mod, vm.Config{Input: w, Seed: seed}).Run("main"), nil
}

// Matches reports whether a concrete failure is the scenario's
// expected one: same kind, and (where the pattern has a located site)
// same failing function. The atomicity pattern's race window can
// surface as either a NULL dereference (cleared slot pointer) or a
// use-after-free (freed item), so both kinds are its ground truth.
func (s *Scenario) Matches(f *vm.Failure) bool {
	if f == nil {
		return false
	}
	if s.Pattern == PatternAtomicity {
		return (f.Kind == vm.FailNullDeref || f.Kind == vm.FailUseAfterFree) && f.Func == s.FailFunc
	}
	if f.Kind != s.Kind {
		return false
	}
	return s.FailFunc == "" || f.Func == s.FailFunc
}

// SelfVerify confirms the scenario's ground truth by concrete
// execution before it is handed to ER: the program compiles, the
// failing workload fails with the expected kind/site (searching up to
// seedSearch scheduler seeds for the multithreaded patterns, and
// pinning SchedSeed plus the observed kind on success), the failing
// trace is small enough for a production ring, and benignRuns benign
// workloads complete cleanly under the scenario's benign scheduler
// seeds.
func (s *Scenario) SelfVerify(benignRuns, seedSearch int) error {
	if _, err := s.Module(); err != nil {
		return err
	}

	if s.Pattern.MT() {
		found := false
		for seed := int64(0); seed < int64(seedSearch); seed++ {
			res, err := s.Exec(s.Failing.Clone(), seed)
			if err != nil {
				return err
			}
			if s.Matches(res.Failure) {
				if res.Stats.Instrs > maxFailingInstrs {
					return fmt.Errorf("%s: failing run too large (%d instrs)", s.Name, res.Stats.Instrs)
				}
				s.SchedSeed = seed
				s.Kind = res.Failure.Kind
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: no scheduler seed in [0,%d) triggers %s", s.Name, seedSearch, s.Kind)
		}
		if len(s.BenignSeeds) == 0 {
			s.BenignSeeds = []int64{0, 3, 11}
		}
	} else {
		res, err := s.Exec(s.Failing.Clone(), s.SchedSeed)
		if err != nil {
			return err
		}
		if res.Failure == nil {
			return fmt.Errorf("%s: ground-truth input did not fail", s.Name)
		}
		if !s.Matches(res.Failure) {
			return fmt.Errorf("%s: ground-truth input failed with %v, want %s in %q",
				s.Name, res.Failure, s.Kind, s.FailFunc)
		}
		if res.Stats.Instrs > maxFailingInstrs {
			return fmt.Errorf("%s: failing run too large (%d instrs)", s.Name, res.Stats.Instrs)
		}
	}

	for i := 0; i < benignRuns; i++ {
		res, err := s.Exec(s.Benign(i), s.BenignSeed(i))
		if err != nil {
			return err
		}
		if res.Failure != nil {
			return fmt.Errorf("%s: benign run %d failed: %v", s.Name, i, res.Failure)
		}
	}
	return nil
}
