// Package dataflow is the static-analysis framework over the register
// IR: control-flow graphs with dominator trees, reaching definitions
// and def-use chains, liveness, interprocedural input-taint
// propagation through a conservative alias partition, and the backward
// failure slice that prunes shepherded symbolic execution
// (internal/symex) and informs key data value selection
// (internal/keyselect). A lint pass suite (lint.go) reuses the same
// analyses to catch latent IR-level bugs at the end of minc
// compilation.
//
// Everything here is purely static: no trace, no reoccurrence, no
// solver. That is the point — most instructions of a failing trace
// provably cannot influence the failure condition, and that fact is
// derivable from the IR before the first reoccurrence arrives.
package dataflow

import (
	"fmt"
	"io"

	"execrecon/internal/ir"
)

// CFG is the control-flow graph of one function, with reachability,
// reverse postorder, and the dominator tree (Cooper-Harvey-Kennedy
// iterative algorithm).
type CFG struct {
	F *ir.Func

	// Succs and Preds are block-index adjacency lists. Preds lists
	// only reachable predecessors.
	Succs [][]int
	Preds [][]int

	// Reachable marks blocks reachable from the entry block 0.
	Reachable []bool

	// RPO is the reverse postorder of reachable blocks (entry first).
	RPO []int

	// IDom is the immediate dominator of each reachable block; the
	// entry's IDom is itself, an unreachable block's is -1.
	IDom []int

	// DomChildren is the dominator tree's child lists.
	DomChildren [][]int

	rpoNum []int // block -> position in RPO (-1 if unreachable)
	preIn  []int // dominator-tree preorder interval start
	preOut []int // dominator-tree preorder interval end
}

// blockSuccs returns the successor block indices of b's terminator.
func blockSuccs(b *ir.Block) []int {
	t := b.Term()
	switch t.Op {
	case ir.OpBr:
		return []int{t.Blk}
	case ir.OpCondBr:
		if t.Blk == t.Blk2 {
			return []int{t.Blk}
		}
		return []int{t.Blk, t.Blk2}
	}
	return nil // ret, abort
}

// BuildCFG constructs the CFG and dominator tree of f.
func BuildCFG(f *ir.Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		F:           f,
		Succs:       make([][]int, n),
		Preds:       make([][]int, n),
		Reachable:   make([]bool, n),
		IDom:        make([]int, n),
		DomChildren: make([][]int, n),
		rpoNum:      make([]int, n),
		preIn:       make([]int, n),
		preOut:      make([]int, n),
	}
	for i, b := range f.Blocks {
		c.Succs[i] = blockSuccs(b)
		c.IDom[i] = -1
		c.rpoNum[i] = -1
	}
	// Reachability + postorder via iterative DFS from the entry.
	type frame struct{ blk, next int }
	var post []int
	stack := []frame{{0, 0}}
	c.Reachable[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(c.Succs[top.blk]) {
			s := c.Succs[top.blk][top.next]
			top.next++
			if !c.Reachable[s] {
				c.Reachable[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, top.blk)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i, b := range post {
		c.RPO[len(post)-1-i] = b
	}
	for i, b := range c.RPO {
		c.rpoNum[b] = i
	}
	// Reachable predecessors.
	for _, b := range c.RPO {
		for _, s := range c.Succs[b] {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}
	// Iterative dominators (Cooper, Harvey, Kennedy: "A Simple, Fast
	// Dominance Algorithm").
	intersect := func(a, b int) int {
		for a != b {
			for c.rpoNum[a] > c.rpoNum[b] {
				a = c.IDom[a]
			}
			for c.rpoNum[b] > c.rpoNum[a] {
				b = c.IDom[b]
			}
		}
		return a
	}
	c.IDom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO[1:] {
			newIdom := -1
			for _, p := range c.Preds[b] {
				if c.IDom[p] < 0 {
					continue // not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && c.IDom[b] != newIdom {
				c.IDom[b] = newIdom
				changed = true
			}
		}
	}
	for _, b := range c.RPO[1:] {
		c.DomChildren[c.IDom[b]] = append(c.DomChildren[c.IDom[b]], b)
	}
	// Preorder intervals for O(1) Dominates queries.
	clock := 0
	var number func(b int)
	number = func(b int) {
		clock++
		c.preIn[b] = clock
		for _, ch := range c.DomChildren[b] {
			number(ch)
		}
		c.preOut[b] = clock
	}
	number(0)
	return c
}

// RPONum returns b's position in reverse post-order, or -1 if the
// block is unreachable. A predecessor with RPONum >= the block's own
// marks a back edge — the loop-head test used by the abstract
// interpreter's widening.
func (c *CFG) RPONum(b int) int { return c.rpoNum[b] }

// Dominates reports whether block a dominates block b. Unreachable
// blocks dominate nothing and are dominated by nothing.
func (c *CFG) Dominates(a, b int) bool {
	if !c.Reachable[a] || !c.Reachable[b] {
		return false
	}
	return c.preIn[a] <= c.preIn[b] && c.preOut[b] <= c.preOut[a]
}

// WriteDOT renders the CFG as Graphviz DOT: solid edges are control
// flow (conditional-branch edges labeled T/F), dashed edges are the
// dominator tree, and unreachable blocks are greyed out. Used by
// `ertrace -dump-cfg` for debugging slices.
func (c *CFG) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n", c.F.Name); err != nil {
		return err
	}
	fmt.Fprintf(w, "  label=%q; labelloc=t;\n", c.F.Name)
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\"];")
	for i, b := range c.F.Blocks {
		style := ""
		if !c.Reachable[i] {
			style = ", style=dashed, color=gray"
		}
		fmt.Fprintf(w, "  b%d [label=\"b%d (%d instrs)\\n%s\"%s];\n",
			i, i, len(b.Instrs), b.Term(), style)
	}
	for i := range c.F.Blocks {
		t := c.F.Blocks[i].Term()
		switch t.Op {
		case ir.OpBr:
			fmt.Fprintf(w, "  b%d -> b%d;\n", i, t.Blk)
		case ir.OpCondBr:
			fmt.Fprintf(w, "  b%d -> b%d [label=\"T\"];\n", i, t.Blk)
			fmt.Fprintf(w, "  b%d -> b%d [label=\"F\"];\n", i, t.Blk2)
		}
	}
	for _, b := range c.RPO[1:] {
		fmt.Fprintf(w, "  b%d -> b%d [style=dashed, color=blue, constraint=false];\n",
			c.IDom[b], b)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
