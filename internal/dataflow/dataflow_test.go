package dataflow

import (
	"strings"
	"testing"

	"execrecon/internal/ir"
)

// block builds a basic block from instructions.
func block(idx int, instrs ...ir.Instr) *ir.Block {
	return &ir.Block{Index: idx, Instrs: instrs}
}

// fn builds a function, assigning instruction IDs.
func fn(name string, nparams, nregs int, blocks ...*ir.Block) *ir.Func {
	f := &ir.Func{Name: name, NParams: nparams, NumRegs: nregs, Blocks: blocks}
	for _, b := range blocks {
		for i := range b.Instrs {
			b.Instrs[i].ID = f.NewInstrID()
		}
	}
	return f
}

func mod(funcs ...*ir.Func) *ir.Module {
	m := &ir.Module{Name: "t"}
	for _, f := range funcs {
		m.AddFunc(f)
	}
	return m
}

// diamond builds:
//
//	b0: condbr r0 -> b1 | b2
//	b1: r1 = const 1; br b3
//	b2: r1 = const 2; br b3
//	b3: ret r1
func diamond() *ir.Func {
	return fn("diamond", 1, 2,
		block(0, ir.Instr{Op: ir.OpCondBr, A: ir.Reg(0), Blk: 1, Blk2: 2}),
		block(1, ir.Instr{Op: ir.OpConst, W: ir.W64, Dst: 1, A: ir.Imm(1)},
			ir.Instr{Op: ir.OpBr, Blk: 3}),
		block(2, ir.Instr{Op: ir.OpConst, W: ir.W64, Dst: 1, A: ir.Imm(2)},
			ir.Instr{Op: ir.OpBr, Blk: 3}),
		block(3, ir.Instr{Op: ir.OpRet, A: ir.Reg(1)}),
	)
}

func TestCFGDominators(t *testing.T) {
	c := BuildCFG(diamond())
	if len(c.RPO) != 4 || c.RPO[0] != 0 {
		t.Fatalf("RPO = %v", c.RPO)
	}
	for _, b := range []int{1, 2, 3} {
		if c.IDom[b] != 0 {
			t.Errorf("IDom[b%d] = %d, want 0", b, c.IDom[b])
		}
	}
	if !c.Dominates(0, 3) || c.Dominates(1, 3) || c.Dominates(2, 3) {
		t.Errorf("dominance wrong: 0>3=%v 1>3=%v 2>3=%v",
			c.Dominates(0, 3), c.Dominates(1, 3), c.Dominates(2, 3))
	}
	if !c.Dominates(1, 1) {
		t.Error("a block must dominate itself")
	}
}

func TestCFGUnreachable(t *testing.T) {
	f := fn("u", 0, 1,
		block(0, ir.Instr{Op: ir.OpRet, A: ir.Imm(0)}),
		block(1, ir.Instr{Op: ir.OpBr, Blk: 0}), // dead
	)
	c := BuildCFG(f)
	if c.Reachable[1] {
		t.Fatal("b1 should be unreachable")
	}
	if c.Dominates(1, 0) || c.Dominates(0, 1) {
		t.Error("unreachable blocks must not take part in dominance")
	}
}

func TestDefUseReachingDefs(t *testing.T) {
	f := diamond()
	c := BuildCFG(f)
	d := BuildDefUse(c)
	// The ret in b3 reads r1; both consts must reach it.
	defs := d.ReachingDefs(3, 0, 1)
	if len(defs) != 2 {
		t.Fatalf("ReachingDefs(b3, r1) = %v, want 2 defs", defs)
	}
	blks := map[int]bool{}
	for _, di := range defs {
		blks[d.Defs[di].Blk] = true
	}
	if !blks[1] || !blks[2] {
		t.Errorf("defs reach from blocks %v, want {1,2}", blks)
	}
	// Inside b1, immediately after the const, only that def reaches.
	defs = d.ReachingDefs(1, 1, 1)
	if len(defs) != 1 || d.Defs[defs[0]].Blk != 1 {
		t.Errorf("in-block query = %v", defs)
	}
}

func TestLiveness(t *testing.T) {
	f := diamond()
	d := BuildDefUse(BuildCFG(f))
	if !d.LiveIn[3].get(1) {
		t.Error("r1 must be live into b3")
	}
	if !d.LiveIn[0].get(0) {
		t.Error("r0 (the branch condition) must be live into the entry")
	}
	if d.LiveIn[1].get(1) {
		t.Error("r1 is defined before use in b1; not live-in")
	}
}

func TestTaintThroughMemory(t *testing.T) {
	// main: r0 = input; store g0 <- r0; r1 = load g0; r2 = const 7;
	// assert r2; ret r1
	g := &ir.Global{Name: "g", Size: 8}
	f := fn("main", 0, 4,
		block(0,
			ir.Instr{Op: ir.OpInput, W: ir.W64, Dst: 0, Tag: "x"},
			ir.Instr{Op: ir.OpGlobal, Dst: 3, A: ir.Imm(0)},
			ir.Instr{Op: ir.OpStore, W: ir.W64, A: ir.Reg(3), B: ir.Reg(0)},
			ir.Instr{Op: ir.OpLoad, W: ir.W64, Dst: 1, A: ir.Reg(3)},
			ir.Instr{Op: ir.OpConst, W: ir.W64, Dst: 2, A: ir.Imm(7)},
			ir.Instr{Op: ir.OpRet, A: ir.Reg(1)},
		),
	)
	m := mod(f)
	m.AddGlobal(g)
	tt := BuildTaint(m)
	if !tt.RegTaint[0][0] {
		t.Error("input dst must be tainted")
	}
	if !tt.ClassTaint[tt.GlobalClass(0)] {
		t.Error("global class must be tainted by the store")
	}
	if !tt.RegTaint[0][1] {
		t.Error("load from tainted global must taint r1")
	}
	if tt.RegTaint[0][2] {
		t.Error("const must stay untainted")
	}
	if tt.RegTaint[0][3] {
		t.Error("the global's address is not input-derived")
	}
	if !tt.RetTaint[0] {
		t.Error("returning tainted r1 must taint the return")
	}
}

func TestTaintInterprocedural(t *testing.T) {
	// id(a) { ret a }   main: r0 = input; r1 = call id(r0); ret r1
	id := fn("id", 1, 1, block(0, ir.Instr{Op: ir.OpRet, A: ir.Reg(0)}))
	main := fn("main", 0, 2,
		block(0,
			ir.Instr{Op: ir.OpInput, W: ir.W64, Dst: 0, Tag: "x"},
			ir.Instr{Op: ir.OpCall, Dst: 1, Tag: "id", Args: []ir.Arg{ir.Reg(0)}},
			ir.Instr{Op: ir.OpRet, A: ir.Reg(1)},
		),
	)
	m := mod(id, main)
	tt := BuildTaint(m)
	fi := m.FuncIndex("id")
	if !tt.RegTaint[fi][0] {
		t.Error("callee param must be tainted through the call")
	}
	mi := m.FuncIndex("main")
	if !tt.RegTaint[mi][1] {
		t.Error("call result must be tainted through the return")
	}
}

func TestMallocSymSize(t *testing.T) {
	f := fn("main", 0, 2,
		block(0,
			ir.Instr{Op: ir.OpInput, W: ir.W64, Dst: 0, Tag: "n"},
			ir.Instr{Op: ir.OpMalloc, Dst: 1, A: ir.Reg(0)},
			ir.Instr{Op: ir.OpRet, A: ir.Imm(0)},
		),
	)
	tt := BuildTaint(mod(f))
	c := tt.MallocClass(0, 0, 1)
	if c < 0 || !tt.ClassSymSize[c] {
		t.Fatalf("malloc with input-derived size must be flagged (class %d)", c)
	}
}

func TestAnalyzeModes(t *testing.T) {
	// r0 = input; r1 = r0 + 1; r2 = const 5; r3 = r2 * 3 (never used
	// downstream in any needed position); output r3; condbr r1 ...
	f := fn("main", 0, 5,
		block(0,
			ir.Instr{Op: ir.OpInput, W: ir.W64, Dst: 0, Tag: "x"},
			ir.Instr{Op: ir.OpAdd, W: ir.W64, Dst: 1, A: ir.Reg(0), B: ir.Imm(1)},
			ir.Instr{Op: ir.OpConst, W: ir.W64, Dst: 2, A: ir.Imm(5)},
			ir.Instr{Op: ir.OpMul, W: ir.W64, Dst: 3, A: ir.Reg(2), B: ir.Imm(3)},
			ir.Instr{Op: ir.OpOutput, W: ir.W64, A: ir.Reg(3)},
			ir.Instr{Op: ir.OpCondBr, A: ir.Reg(1), Blk: 1, Blk2: 2},
		),
		block(1, ir.Instr{Op: ir.OpRet, A: ir.Imm(0)}),
		block(2, ir.Instr{Op: ir.OpAbort, Tag: "boom"}),
	)
	a := Analyze(mod(f))
	fa := a.Func("main")
	if fa == nil {
		t.Fatal("no analysis for main")
	}
	if m := fa.Mode(0, 0); m != ModeSym {
		t.Errorf("input mode = %v, want sym", m)
	}
	if m := fa.Mode(0, 1); m != ModeSym {
		t.Errorf("tainted add mode = %v, want sym (feeds the branch)", m)
	}
	if !fa.Needed[1] {
		t.Error("branch condition r1 must be needed")
	}
	if fa.Needed[3] {
		t.Error("output-only r3 must not be needed")
	}
	if m := fa.Mode(0, 3); m != ModeSkip {
		t.Errorf("output-only mul mode = %v, want skip", m)
	}
	if m := fa.Mode(0, 4); m != ModeConc {
		t.Errorf("output mode = %v, want conc", m)
	}
	if m := fa.Mode(0, 5); m != ModeSym {
		t.Errorf("tainted condbr mode = %v, want sym", m)
	}
	if fa.NInstrs != 8 {
		t.Errorf("NInstrs = %d, want 8", fa.NInstrs)
	}
}

func TestAnalyzeUntaintedBranchConc(t *testing.T) {
	f := fn("main", 0, 2,
		block(0,
			ir.Instr{Op: ir.OpConst, W: ir.W64, Dst: 0, A: ir.Imm(1)},
			ir.Instr{Op: ir.OpCondBr, A: ir.Reg(0), Blk: 1, Blk2: 1},
		),
		block(1, ir.Instr{Op: ir.OpRet, A: ir.Imm(0)}),
	)
	a := Analyze(mod(f))
	fa := a.Func("main")
	if m := fa.Mode(0, 1); m != ModeConc {
		t.Errorf("untainted condbr mode = %v, want conc", m)
	}
	if m := fa.Mode(0, 0); m != ModeConc {
		t.Errorf("needed untainted const mode = %v, want conc", m)
	}
}

func TestAnalyzeLoadNoVal(t *testing.T) {
	// A load whose destination is never needed keeps its bounds
	// semantics (loadnv), never a plain skip.
	g := &ir.Global{Name: "g", Size: 8}
	f := fn("main", 0, 3,
		block(0,
			ir.Instr{Op: ir.OpGlobal, Dst: 0, A: ir.Imm(0)},
			ir.Instr{Op: ir.OpLoad, W: ir.W64, Dst: 1, A: ir.Reg(0)},
			ir.Instr{Op: ir.OpOutput, W: ir.W64, A: ir.Reg(1)},
			ir.Instr{Op: ir.OpRet, A: ir.Imm(0)},
		),
	)
	m := mod(f)
	m.AddGlobal(g)
	a := Analyze(m)
	fa := a.Func("main")
	if m := fa.Mode(0, 1); m != ModeLoadNoVal {
		t.Errorf("unneeded load mode = %v, want loadnv", m)
	}
	if !fa.Needed[0] {
		t.Error("load address must be needed even when the value is not")
	}
}

// --- lint fixtures: one negative fixture per rule ---

func findRule(fs []Finding, rule string) *Finding {
	for i := range fs {
		if fs[i].Rule == rule {
			return &fs[i]
		}
	}
	return nil
}

func TestLintMaybeUndef(t *testing.T) {
	// r1 is assigned only on the taken path but read afterwards.
	f := fn("undef", 1, 2,
		block(0, ir.Instr{Op: ir.OpCondBr, A: ir.Reg(0), Blk: 1, Blk2: 2}),
		block(1, ir.Instr{Op: ir.OpConst, W: ir.W64, Dst: 1, A: ir.Imm(1)},
			ir.Instr{Op: ir.OpBr, Blk: 2}),
		block(2, ir.Instr{Op: ir.OpRet, A: ir.Reg(1)}),
	)
	fs := LintFunc(f)
	got := findRule(fs, RuleMaybeUndef)
	if got == nil {
		t.Fatalf("no maybe-undef finding in %v", fs)
	}
	if got.Blk != 2 {
		t.Errorf("finding in b%d, want b2", got.Blk)
	}
}

func TestLintMaybeUndefCleanOnDominatingDef(t *testing.T) {
	fs := LintFunc(diamond())
	if got := findRule(fs, RuleMaybeUndef); got != nil {
		t.Fatalf("false positive: %v", got)
	}
}

func TestLintUnreachable(t *testing.T) {
	f := fn("dead", 0, 1,
		block(0, ir.Instr{Op: ir.OpRet, A: ir.Imm(0)}),
		block(1, ir.Instr{Op: ir.OpBr, Blk: 0}),
	)
	got := findRule(LintFunc(f), RuleUnreachable)
	if got == nil || got.Blk != 1 {
		t.Fatalf("want unreachable finding for b1, got %v", got)
	}
}

func TestLintDeadStore(t *testing.T) {
	f := fn("ds", 1, 3,
		block(0,
			ir.Instr{Op: ir.OpAdd, W: ir.W64, Dst: 1, A: ir.Reg(0), B: ir.Imm(1)}, // dead
			ir.Instr{Op: ir.OpMov, W: ir.W64, Dst: 2, A: ir.Imm(0)},               // zero-init: exempt
			ir.Instr{Op: ir.OpRet, A: ir.Reg(0)},
		),
	)
	fs := LintFunc(f)
	got := findRule(fs, RuleDeadStore)
	if got == nil {
		t.Fatalf("no dead-store finding in %v", fs)
	}
	n := 0
	for _, x := range fs {
		if x.Rule == RuleDeadStore {
			n++
		}
	}
	if n != 1 {
		t.Errorf("%d dead-store findings, want 1 (zero-init mov is exempt)", n)
	}
}

func TestLintWidthMismatch(t *testing.T) {
	// b1 defines r1 at width 8, b2 at width 32; b3 uses it raw.
	f := fn("wm", 1, 2,
		block(0, ir.Instr{Op: ir.OpCondBr, A: ir.Reg(0), Blk: 1, Blk2: 2}),
		block(1, ir.Instr{Op: ir.OpConst, W: ir.W8, Dst: 1, A: ir.Imm(1)},
			ir.Instr{Op: ir.OpBr, Blk: 3}),
		block(2, ir.Instr{Op: ir.OpConst, W: ir.W32, Dst: 1, A: ir.Imm(2)},
			ir.Instr{Op: ir.OpBr, Blk: 3}),
		block(3, ir.Instr{Op: ir.OpRet, A: ir.Reg(1)}),
	)
	got := findRule(LintFunc(f), RuleWidthMix)
	if got == nil || got.Blk != 3 {
		t.Fatalf("want width-mismatch finding at the use in b3, got %v", got)
	}
}

func TestLintWidthMismatchExemptsConversions(t *testing.T) {
	// Same shape, but the use normalises via zext: no finding.
	f := fn("wmok", 1, 3,
		block(0, ir.Instr{Op: ir.OpCondBr, A: ir.Reg(0), Blk: 1, Blk2: 2}),
		block(1, ir.Instr{Op: ir.OpConst, W: ir.W8, Dst: 1, A: ir.Imm(1)},
			ir.Instr{Op: ir.OpBr, Blk: 3}),
		block(2, ir.Instr{Op: ir.OpConst, W: ir.W32, Dst: 1, A: ir.Imm(2)},
			ir.Instr{Op: ir.OpBr, Blk: 3}),
		block(3, ir.Instr{Op: ir.OpZext, W: ir.W8, Dst: 2, A: ir.Reg(1)},
			ir.Instr{Op: ir.OpRet, A: ir.Reg(2)}),
	)
	if got := findRule(LintFunc(f), RuleWidthMix); got != nil {
		t.Fatalf("conversion use must be exempt, got %v", got)
	}
}

func TestLintCleanOnDiamond(t *testing.T) {
	if fs := LintFunc(diamond()); len(fs) != 0 {
		t.Fatalf("diamond should be lint-clean, got %v", fs)
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := BuildCFG(diamond()).WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "b0 -> b1", "label=\"T\"", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestDeducibility(t *testing.T) {
	// b0: r1 = input "x"; r2 = r1*3; r3 = const 5; r4 = r2+r3;
	//     assert r4; ret 0
	f := fn("main", 0, 5,
		block(0,
			ir.Instr{Op: ir.OpInput, W: ir.W32, Dst: 1, Tag: "x"},
			ir.Instr{Op: ir.OpMul, W: ir.W32, Dst: 2, A: ir.Reg(1), B: ir.Imm(3)},
			ir.Instr{Op: ir.OpConst, W: ir.W32, Dst: 3, A: ir.Imm(5)},
			ir.Instr{Op: ir.OpAdd, W: ir.W32, Dst: 4, A: ir.Reg(2), B: ir.Reg(3)},
			ir.Instr{Op: ir.OpAssert, A: ir.Reg(4)},
			ir.Instr{Op: ir.OpRet, A: ir.Imm(0)},
		))
	a := Analyze(mod(f))
	ded := NewDeducibility(a)
	inputID := f.Blocks[0].Instrs[0].ID
	mulID := f.Blocks[0].Instrs[1].ID
	addID := f.Blocks[0].Instrs[3].ID
	none := func(string, int32) bool { return false }
	recInput := func(fn string, id int32) bool { return fn == "main" && id == inputID }
	recMul := func(fn string, id int32) bool { return fn == "main" && id == mulID }

	if ded.Deducible("main", inputID, recInput) {
		t.Error("an input instruction must never be deducible")
	}
	if ded.Deducible("main", mulID, none) {
		t.Error("mul deducible with nothing recorded")
	}
	if !ded.Deducible("main", mulID, recInput) {
		t.Error("mul should be deducible from the recorded input")
	}
	if !ded.Deducible("main", addID, recInput) {
		t.Error("add should be deducible: const operand plus deducible mul")
	}
	if !ded.Deducible("main", addID, recMul) {
		t.Error("add should be deducible from the recorded mul")
	}
	if ded.Deducible("main", 9999, none) {
		t.Error("unknown instruction id must not be deducible")
	}
	if ded.Deducible("nosuch", mulID, none) {
		t.Error("unknown function must not be deducible")
	}
}

func TestDeducibilityCycle(t *testing.T) {
	// b0: r1 = const 0; br b1
	// b1: r1 = r1 + 1; r2 = r1 <u 10; condbr r2 -> b1 | b2
	// b2: ret r1
	f := fn("loop", 0, 3,
		block(0,
			ir.Instr{Op: ir.OpConst, W: ir.W32, Dst: 1, A: ir.Imm(0)},
			ir.Instr{Op: ir.OpBr, Blk: 1}),
		block(1,
			ir.Instr{Op: ir.OpAdd, W: ir.W32, Dst: 1, A: ir.Reg(1), B: ir.Imm(1)},
			ir.Instr{Op: ir.OpUlt, W: ir.W32, Dst: 2, A: ir.Reg(1), B: ir.Imm(10)},
			ir.Instr{Op: ir.OpCondBr, A: ir.Reg(2), Blk: 1, Blk2: 2}),
		block(2, ir.Instr{Op: ir.OpRet, A: ir.Reg(1)}),
	)
	a := Analyze(mod(f))
	ded := NewDeducibility(a)
	addID := f.Blocks[1].Instrs[0].ID
	none := func(string, int32) bool { return false }
	if ded.Deducible("loop", addID, none) {
		t.Error("loop-carried definition must be conservatively non-deducible")
	}
	// Recording the add itself makes the comparison deducible.
	recAdd := func(fn string, id int32) bool { return fn == "loop" && id == addID }
	ultID := f.Blocks[1].Instrs[1].ID
	if !ded.Deducible("loop", ultID, recAdd) {
		t.Error("comparison should be deducible once the add is recorded")
	}
}
