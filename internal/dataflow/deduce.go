package dataflow

import "execrecon/internal/ir"

// WritesReg reports whether in defines its Dst register.
func WritesReg(in *ir.Instr) bool { return writesReg(in) }

// Deducibility answers replay-time deducibility queries over a module
// analysis: can the value defined at an instruction be recomputed by a
// shepherded replay from a given set of recorded sites?
//
// A site is deducible when its instruction is a pure register
// computation and every reaching definition of every register operand
// is either itself recorded or (recursively) deducible. The chains
// bottom out at operand-free pure ops — constants, global and frame
// addresses, function addresses — all of which shepherded execution
// recomputes exactly (control flow and frame objects are supplied by
// the trace). Loads, inputs, calls, and allocations are never
// deducible: their values depend on state the static analysis cannot
// see. Cycles through loop-carried definitions are conservatively
// non-deducible.
//
// internal/keyselect uses this to prune recording sets: a bottleneck
// element whose site is deducible from the other recorded sites costs
// trace bandwidth without adding information.
type Deducibility struct {
	a  *Analysis
	du map[string]*DefUse
}

// NewDeducibility prepares deducibility queries over a.
func NewDeducibility(a *Analysis) *Deducibility {
	return &Deducibility{a: a, du: make(map[string]*DefUse)}
}

func (d *Deducibility) defuse(fa *FuncAnalysis) *DefUse {
	du, ok := d.du[fa.F.Name]
	if !ok {
		du = BuildDefUse(fa.CFG)
		d.du[fa.F.Name] = du
	}
	return du
}

type dedKey struct {
	fn string
	id int32
}

// Deducible reports whether the value defined at instruction instrID
// of function fn can be statically deduced from the sites for which
// recorded returns true.
func (d *Deducibility) Deducible(fn string, instrID int32, recorded func(fn string, instrID int32) bool) bool {
	return d.deducible(fn, instrID, recorded, make(map[dedKey]int))
}

// deducible is the memoized recursion. state: 1 = in progress (a cycle
// — conservatively not deducible), 2 = deducible, 3 = not.
func (d *Deducibility) deducible(fn string, id int32, recorded func(string, int32) bool, state map[dedKey]int) bool {
	key := dedKey{fn, id}
	switch state[key] {
	case 1, 3:
		return false
	case 2:
		return true
	}
	state[key] = 1
	ok := d.deducibleUncached(fn, id, recorded, state)
	if ok {
		state[key] = 2
	} else {
		state[key] = 3
	}
	return ok
}

func (d *Deducibility) deducibleUncached(fn string, id int32, recorded func(string, int32) bool, state map[dedKey]int) bool {
	fa := d.a.Func(fn)
	if fa == nil {
		return false
	}
	bi, ii := fa.F.FindInstrByID(id)
	if bi < 0 || !fa.CFG.Reachable[bi] {
		return false
	}
	in := &fa.F.Blocks[bi].Instrs[ii]
	if !pureOp(in.Op) {
		return false
	}
	du := d.defuse(fa)
	for _, reg := range readsOf(in, nil) {
		defs := du.ReachingDefs(bi, ii, reg)
		if len(defs) == 0 {
			// A parameter, or a read before any definition: the value
			// comes from outside the function's dataflow.
			return false
		}
		for _, di := range defs {
			def := du.Defs[di]
			if recorded(fn, def.Instr.ID) {
				continue
			}
			if !d.deducible(fn, def.Instr.ID, recorded, state) {
				return false
			}
		}
	}
	return true
}
