package dataflow

import "execrecon/internal/ir"

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) get(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }
func (s bitset) set(i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func (s bitset) clear(i int)    { s[i/64] &^= 1 << (uint(i) % 64) }

// or sets s |= t, reporting whether s changed.
func (s bitset) or(t bitset) bool {
	changed := false
	for i, w := range t {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// andInto sets s &= t.
func (s bitset) andInto(t bitset) {
	for i := range s {
		s[i] &= t[i]
	}
}

func (s bitset) copyFrom(t bitset) { copy(s, t) }

func (s bitset) equal(t bitset) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

func (s bitset) fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// Def is one register definition site.
type Def struct {
	Blk, Idx int // block index, instruction index within the block
	Reg      int
	Instr    *ir.Instr
}

// DefUse carries the per-function value-flow analyses: reaching
// definitions (per block-entry def sets plus on-demand per-use
// queries), def-use chains, and classic backward liveness.
type DefUse struct {
	CFG *CFG

	// Defs enumerates every register definition in the function, in
	// (block, instruction) order over reachable blocks.
	Defs []Def
	// DefsOfReg maps a register to the indices (into Defs) of its
	// definitions.
	DefsOfReg [][]int

	// ReachIn[b] is the set of definitions (bits over Defs) reaching
	// the entry of reachable block b.
	ReachIn []bitset

	// LiveIn/LiveOut are the registers live at block entry/exit.
	LiveIn, LiveOut []bitset

	defAt map[[2]int]int // (blk, idx) -> def index
}

// readsOf appends the register operands read by in.
func readsOf(in *ir.Instr, out []int) []int {
	if in.A.K == ir.ArgReg {
		out = append(out, in.A.Reg)
	}
	if in.B.K == ir.ArgReg {
		out = append(out, in.B.Reg)
	}
	for _, a := range in.Args {
		if a.K == ir.ArgReg {
			out = append(out, a.Reg)
		}
	}
	return out
}

// writesReg reports whether in writes its Dst register.
func writesReg(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpAbort, ir.OpAssert,
		ir.OpOutput, ir.OpPtWrite, ir.OpFree, ir.OpJoin, ir.OpLock,
		ir.OpUnlock, ir.OpYield, ir.OpInvalid:
		return false
	}
	return true
}

// BuildDefUse computes reaching definitions and liveness over c.
func BuildDefUse(c *CFG) *DefUse {
	f := c.F
	d := &DefUse{CFG: c, defAt: make(map[[2]int]int)}
	d.DefsOfReg = make([][]int, f.NumRegs)
	for _, bi := range c.RPO {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			if !writesReg(in) {
				continue
			}
			di := len(d.Defs)
			d.Defs = append(d.Defs, Def{Blk: bi, Idx: ii, Reg: in.Dst, Instr: in})
			d.DefsOfReg[in.Dst] = append(d.DefsOfReg[in.Dst], di)
			d.defAt[[2]int{bi, ii}] = di
		}
	}
	nd := len(d.Defs)
	nb := len(f.Blocks)

	// Per-block gen/kill for reaching definitions.
	gen := make([]bitset, nb)
	kill := make([]bitset, nb)
	out := make([]bitset, nb)
	d.ReachIn = make([]bitset, nb)
	for _, bi := range c.RPO {
		gen[bi], kill[bi] = newBitset(nd), newBitset(nd)
		out[bi], d.ReachIn[bi] = newBitset(nd), newBitset(nd)
		for ii := range f.Blocks[bi].Instrs {
			di, ok := d.defAt[[2]int{bi, ii}]
			if !ok {
				continue
			}
			reg := d.Defs[di].Reg
			for _, o := range d.DefsOfReg[reg] {
				gen[bi].clear(o)
				kill[bi].set(o)
			}
			gen[bi].set(di)
		}
	}
	tmp := newBitset(nd)
	for changed := true; changed; {
		changed = false
		for _, bi := range c.RPO {
			in := d.ReachIn[bi]
			for i := range in {
				in[i] = 0
			}
			for _, p := range c.Preds[bi] {
				in.or(out[p])
			}
			tmp.copyFrom(in)
			for i := range tmp {
				tmp[i] = (tmp[i] &^ kill[bi][i]) | gen[bi][i]
			}
			if !tmp.equal(out[bi]) {
				out[bi].copyFrom(tmp)
				changed = true
			}
		}
	}

	// Liveness: backward over registers.
	nr := f.NumRegs
	use := make([]bitset, nb)
	def := make([]bitset, nb)
	d.LiveIn = make([]bitset, nb)
	d.LiveOut = make([]bitset, nb)
	var reads []int
	for _, bi := range c.RPO {
		use[bi], def[bi] = newBitset(nr), newBitset(nr)
		d.LiveIn[bi], d.LiveOut[bi] = newBitset(nr), newBitset(nr)
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			reads = readsOf(in, reads[:0])
			for _, r := range reads {
				if !def[bi].get(r) {
					use[bi].set(r)
				}
			}
			if writesReg(in) && !use[bi].get(in.Dst) {
				def[bi].set(in.Dst)
			}
		}
	}
	tmp = newBitset(nr)
	for changed := true; changed; {
		changed = false
		for i := len(c.RPO) - 1; i >= 0; i-- {
			bi := c.RPO[i]
			lo := d.LiveOut[bi]
			for j := range lo {
				lo[j] = 0
			}
			for _, s := range c.Succs[bi] {
				lo.or(d.LiveIn[s])
			}
			tmp.copyFrom(lo)
			for j := range tmp {
				tmp[j] = (tmp[j] &^ def[bi][j]) | use[bi][j]
			}
			if !tmp.equal(d.LiveIn[bi]) {
				d.LiveIn[bi].copyFrom(tmp)
				changed = true
			}
		}
	}
	return d
}

// ReachingDefs returns the definitions of reg that reach the use at
// instruction (blk, idx) — the def-use chain endpoint query. The
// result indexes into Defs.
func (d *DefUse) ReachingDefs(blk, idx, reg int) []int {
	if !d.CFG.Reachable[blk] {
		return nil
	}
	// Walk the block from its entry: the last def of reg before idx
	// (if any) is the only one; otherwise the block-entry set applies.
	last := -1
	for ii := 0; ii < idx; ii++ {
		if di, ok := d.defAt[[2]int{blk, ii}]; ok && d.Defs[di].Reg == reg {
			last = di
		}
	}
	if last >= 0 {
		return []int{last}
	}
	var out []int
	for _, di := range d.DefsOfReg[reg] {
		if d.ReachIn[blk].get(di) {
			out = append(out, di)
		}
	}
	return out
}

// DefIndexAt returns the index into Defs of the definition at
// (blk, idx), or -1 if that instruction defines nothing.
func (d *DefUse) DefIndexAt(blk, idx int) int {
	if di, ok := d.defAt[[2]int{blk, idx}]; ok {
		return di
	}
	return -1
}
