package dataflow

import (
	"fmt"
	"sort"

	"execrecon/internal/ir"
)

// Lint rule identifiers.
const (
	RuleMaybeUndef  = "maybe-undef"       // register read before any assignment on some path
	RuleUnreachable = "unreachable-block" // block not reachable from the entry
	RuleDeadStore   = "dead-store"        // pure register definition never read
	RuleWidthMix    = "width-mismatch"    // defs of differing widths from different blocks reach one use

	// Rules proven by the abstract interpreter (internal/absint).
	// The provable-* rules are error-level: the flagged instruction
	// fails on every execution that reaches it.
	RuleProvableOOB      = "provable-oob"      // memory access out of bounds for every reaching value
	RuleProvableOverflow = "provable-overflow" // arithmetic wraps for every reaching value
	RuleAlwaysBranch     = "always-branch"     // computed branch condition with only one outcome
)

// ErrorLevel reports whether a rule is error-level: proven-fatal
// findings that should fail a lint run, as opposed to advisory ones.
func ErrorLevel(rule string) bool {
	switch rule {
	case RuleMaybeUndef, RuleUnreachable, RuleProvableOOB, RuleProvableOverflow:
		return true
	}
	return false
}

// Finding is one lint diagnostic.
type Finding struct {
	Rule string
	Func string
	Blk  int   // block index
	ID   int32 // instruction ID (0 for block-level findings)
	Line int32 // source line, if known
	Msg  string
}

func (f Finding) String() string {
	loc := fmt.Sprintf("%s/b%d", f.Func, f.Blk)
	if f.Line > 0 {
		loc = fmt.Sprintf("%s:%d (%s)", f.Func, f.Line, loc)
	}
	return fmt.Sprintf("%s: %s: %s", f.Rule, loc, f.Msg)
}

// Lint runs every rule over every function of mod. Findings are
// ordered by function, then block, then rule. The maybe-undef and
// unreachable-block rules flag violated compiler invariants; the
// dead-store and width-mismatch rules flag suspicious-but-legal IR.
func Lint(mod *ir.Module) []Finding {
	var out []Finding
	for _, f := range mod.Funcs {
		out = append(out, LintFunc(f)...)
	}
	return out
}

// LintFunc runs every rule over one function.
func LintFunc(f *ir.Func) []Finding {
	c := BuildCFG(f)
	d := BuildDefUse(c)
	var out []Finding
	out = append(out, lintUnreachable(c)...)
	out = append(out, lintMaybeUndef(c)...)
	out = append(out, lintDeadStores(d)...)
	out = append(out, lintWidthMix(d)...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Blk != out[j].Blk {
			return out[i].Blk < out[j].Blk
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func lintUnreachable(c *CFG) []Finding {
	var out []Finding
	for bi, b := range c.F.Blocks {
		if !c.Reachable[bi] {
			out = append(out, Finding{
				Rule: RuleUnreachable, Func: c.F.Name, Blk: bi,
				Line: b.Instrs[0].Line,
				Msg:  fmt.Sprintf("block b%d is unreachable from the entry", bi),
			})
		}
	}
	return out
}

// lintMaybeUndef runs a forward definite-assignment analysis: a
// register read that some path reaches without any prior assignment is
// flagged. Parameters are assigned on entry.
func lintMaybeUndef(c *CFG) []Finding {
	f := c.F
	nr := f.NumRegs
	nb := len(f.Blocks)
	in := make([]bitset, nb)
	outB := make([]bitset, nb)
	for _, bi := range c.RPO {
		in[bi], outB[bi] = newBitset(nr), newBitset(nr)
		in[bi].fill() // top for the intersection meet
		outB[bi].fill()
	}
	if len(c.RPO) > 0 {
		entry := c.RPO[0]
		for i := range in[entry] {
			in[entry][i] = 0
		}
		for r := 0; r < f.NParams && r < nr; r++ {
			in[entry].set(r)
		}
	}
	tmp := newBitset(nr)
	for changed := true; changed; {
		changed = false
		for _, bi := range c.RPO {
			if len(c.Preds[bi]) > 0 {
				in[bi].fill()
				for _, p := range c.Preds[bi] {
					in[bi].andInto(outB[p])
				}
				if bi == c.RPO[0] {
					// A loop back to the entry still guarantees params.
					for r := 0; r < f.NParams && r < nr; r++ {
						in[bi].set(r)
					}
				}
			}
			tmp.copyFrom(in[bi])
			for ii := range f.Blocks[bi].Instrs {
				inr := &f.Blocks[bi].Instrs[ii]
				if writesReg(inr) {
					tmp.set(inr.Dst)
				}
			}
			if !tmp.equal(outB[bi]) {
				outB[bi].copyFrom(tmp)
				changed = true
			}
		}
	}
	var out []Finding
	var reads []int
	cur := newBitset(nr)
	for _, bi := range c.RPO {
		cur.copyFrom(in[bi])
		for ii := range f.Blocks[bi].Instrs {
			inr := &f.Blocks[bi].Instrs[ii]
			reads = readsOf(inr, reads[:0])
			for _, r := range reads {
				if !cur.get(r) {
					out = append(out, Finding{
						Rule: RuleMaybeUndef, Func: f.Name, Blk: bi,
						ID: inr.ID, Line: inr.Line,
						Msg: fmt.Sprintf("r%d may be read before assignment at %q", r, inr),
					})
				}
			}
			if writesReg(inr) {
				cur.set(inr.Dst)
			}
		}
	}
	return out
}

// lintDeadStores flags pure register definitions whose value no
// execution can observe. Constant materialisations (OpConst, and
// OpMov from an immediate — the zero-init idiom) are exempt: frontends
// emit them defensively and they cost nothing.
func lintDeadStores(d *DefUse) []Finding {
	f := d.CFG.F
	var out []Finding
	var reads []int
	live := newBitset(f.NumRegs)
	for _, bi := range d.CFG.RPO {
		live.copyFrom(d.LiveOut[bi])
		blk := f.Blocks[bi]
		for ii := len(blk.Instrs) - 1; ii >= 0; ii-- {
			in := &blk.Instrs[ii]
			if writesReg(in) {
				if !live.get(in.Dst) && pureOp(in.Op) &&
					in.Op != ir.OpConst &&
					!(in.Op == ir.OpMov && in.A.K == ir.ArgImm) {
					out = append(out, Finding{
						Rule: RuleDeadStore, Func: f.Name, Blk: bi,
						ID: in.ID, Line: in.Line,
						Msg: fmt.Sprintf("value of %q is never read", in),
					})
				}
				live.clear(in.Dst)
			}
			reads = readsOf(in, reads[:0])
			for _, r := range reads {
				live.set(r)
			}
		}
	}
	return out
}

// widthBearing reports whether op materialises a value whose
// significant width is the instruction's W field. Comparisons (always
// 0/1), widening conversions (always a full 64-bit result), and
// address producers are excluded.
func widthBearing(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpMov, ir.OpLoad, ir.OpInput, ir.OpTrunc,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem,
		ir.OpSDiv, ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr:
		return true
	}
	return false
}

// lintWidthMix flags uses reached, from at least two different blocks,
// by width-bearing definitions of differing widths: the use sees a
// value whose significant width depends on the path taken, which is
// almost always a frontend conversion bug. Explicit width conversions
// at the use site are exempt — normalising mixed widths is their job.
func lintWidthMix(d *DefUse) []Finding {
	f := d.CFG.F
	var out []Finding
	var reads []int
	seen := make(map[[2]int32]bool) // (use ID, reg) already reported
	for _, bi := range d.CFG.RPO {
		for ii := range f.Blocks[bi].Instrs {
			in := &f.Blocks[bi].Instrs[ii]
			switch in.Op {
			case ir.OpZext, ir.OpSext, ir.OpTrunc, ir.OpMov:
				continue // conversions normalise width by design
			}
			reads = readsOf(in, reads[:0])
			for _, r := range reads {
				k := [2]int32{in.ID, int32(r)}
				if seen[k] {
					continue
				}
				defs := d.ReachingDefs(bi, ii, r)
				var w ir.Width
				var wBlk int
				mixed := false
				for _, di := range defs {
					def := d.Defs[di]
					if !widthBearing(def.Instr.Op) {
						continue
					}
					if w == 0 {
						w, wBlk = def.Instr.W, def.Blk
					} else if def.Instr.W != w && def.Blk != wBlk {
						mixed = true
					}
				}
				if mixed {
					seen[k] = true
					out = append(out, Finding{
						Rule: RuleWidthMix, Func: f.Name, Blk: bi,
						ID: in.ID, Line: in.Line,
						Msg: fmt.Sprintf("r%d reaches %q with differing widths from different blocks", r, in),
					})
				}
			}
		}
	}
	return out
}
