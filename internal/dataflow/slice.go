package dataflow

import "execrecon/internal/ir"

// Mode is the statically assigned execution mode of one instruction
// under slice-pruned shepherded symbolic execution.
type Mode uint8

// Execution modes. The soundness contract (see DESIGN.md "Static
// analysis") is that a slice-pruned run accumulates exactly the path
// constraint of the full run: ModeSym instructions execute the
// unmodified symbolic path; ModeConc instructions would have produced
// constant expressions in the full run, so evaluating them natively
// changes nothing; ModeSkip instructions produce values no constraint
// can ever read; ModeLoadNoVal loads perform the full address
// resolution, object check, and bounds constraints of a symbolic load
// but skip materialising the loaded value.
const (
	ModeSym Mode = iota
	ModeConc
	ModeSkip
	ModeLoadNoVal
)

func (m Mode) String() string {
	switch m {
	case ModeSym:
		return "sym"
	case ModeConc:
		return "conc"
	case ModeSkip:
		return "skip"
	case ModeLoadNoVal:
		return "loadnv"
	}
	return "mode?"
}

// FuncAnalysis carries the per-function results of Analyze.
type FuncAnalysis struct {
	F   *ir.Func
	CFG *CFG

	// Needed[r] reports that register r is in the backward failure
	// slice: its exact value may flow into a path constraint, a memory
	// address, an allocation size, a control-flow decision, or a
	// recorded data value. Unneeded registers may be left undefined by
	// the pruned executor.
	Needed []bool

	// Tainted[r] reports that r may be input-derived (see Taint).
	Tainted []bool

	// Modes[blk][ii] is the statically assigned execution mode.
	Modes [][]Mode

	// Static mode counts over reachable blocks.
	NInstrs, NSym, NConc, NSkip, NLoadNoVal int
}

// Mode returns the execution mode of instruction (blk, ii).
func (fa *FuncAnalysis) Mode(blk, ii int) Mode { return fa.Modes[blk][ii] }

// Analysis is the module-wide static analysis consumed by
// internal/symex (slice-pruned stepping) and internal/keyselect
// (static deducibility).
type Analysis struct {
	Mod   *ir.Module
	Taint *Taint
	Funcs []*FuncAnalysis

	byName map[string]*FuncAnalysis
	byFunc map[*ir.Func]*FuncAnalysis
}

// Func returns the analysis of the named function, or nil.
func (a *Analysis) Func(name string) *FuncAnalysis { return a.byName[name] }

// ByFunc returns the analysis of f, matching by identity first and by
// name as a fallback (instrumented clones share names, not pointers).
// A name match whose block/instruction shape disagrees with f — a
// stale analysis of a differently instrumented module — returns nil
// rather than a misaligned mode table.
func (a *Analysis) ByFunc(f *ir.Func) *FuncAnalysis {
	if fa, ok := a.byFunc[f]; ok {
		return fa
	}
	fa := a.byName[f.Name]
	if fa == nil || !fa.matches(f) {
		return nil
	}
	return fa
}

// matches reports whether fa's mode table lines up with f's shape.
func (fa *FuncAnalysis) matches(f *ir.Func) bool {
	if fa.F == f {
		return true
	}
	if len(fa.Modes) != len(f.Blocks) {
		return false
	}
	for i, b := range f.Blocks {
		if len(fa.Modes[i]) != len(b.Instrs) {
			return false
		}
	}
	return true
}

// SlicedOut returns the fraction of reachable instructions not
// executed fully symbolically (modes conc/skip/loadnv), across the
// module. Purely informational.
func (a *Analysis) SlicedOut() float64 {
	tot, out := 0, 0
	for _, fa := range a.Funcs {
		tot += fa.NInstrs
		out += fa.NConc + fa.NSkip + fa.NLoadNoVal
	}
	if tot == 0 {
		return 0
	}
	return float64(out) / float64(tot)
}

// pureOp reports whether op is a register-to-register computation with
// no side effects, no constraints, and no trace events — the ops the
// pruned executor may evaluate natively or skip outright.
func pureOp(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpMov, ir.OpZext, ir.OpSext, ir.OpTrunc,
		ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle,
		ir.OpFrame, ir.OpGlobal, ir.OpFuncAddr:
		return true
	}
	return false
}

// Analyze builds the full static analysis of mod: control-flow graphs
// and dominators, input taint, and the backward failure slice with its
// per-instruction execution modes.
func Analyze(mod *ir.Module) *Analysis {
	a := &Analysis{
		Mod:    mod,
		Taint:  BuildTaint(mod),
		byName: make(map[string]*FuncAnalysis, len(mod.Funcs)),
		byFunc: make(map[*ir.Func]*FuncAnalysis, len(mod.Funcs)),
	}
	for fi, f := range mod.Funcs {
		fa := &FuncAnalysis{
			F:       f,
			CFG:     BuildCFG(f),
			Needed:  make([]bool, f.NumRegs),
			Tainted: a.Taint.RegTaint[fi],
			Modes:   make([][]Mode, len(f.Blocks)),
		}
		for bi, b := range f.Blocks {
			fa.Modes[bi] = make([]Mode, len(b.Instrs))
		}
		a.Funcs = append(a.Funcs, fa)
		a.byName[f.Name] = fa
		a.byFunc[f] = fa
	}
	a.computeNeeded()
	a.assignModes()
	return a
}

// computeNeeded runs the interprocedural backward-slice fixpoint.
//
// Roots (R1) are the operands whose exact value the shepherded
// executor must materialise regardless of pruning: every potential
// failure site (assert conditions, load/store addresses and stored
// values, division operands, allocation sizes, free/join/lock
// operands), every control decision (condbr conditions, indirect call
// targets), and every recorded value (ptwrite). Neededness then
// propagates (R2) from a needed register to the operands of all its
// defining instructions, (R3) from a needed callee parameter to the
// argument registers of every call site, and (R4) from a needed
// call-site destination to the callee's return operands.
func (a *Analysis) computeNeeded() {
	mod := a.Mod
	retNeeded := make([]bool, len(mod.Funcs))
	need := func(fi int, args ...ir.Arg) bool {
		ch := false
		for _, arg := range args {
			if arg.K == ir.ArgReg && !a.Funcs[fi].Needed[arg.Reg] {
				a.Funcs[fi].Needed[arg.Reg] = true
				ch = true
			}
		}
		return ch
	}
	for changed := true; changed; {
		changed = false
		for fi, f := range mod.Funcs {
			fa := a.Funcs[fi]
			for _, b := range f.Blocks {
				for ii := range b.Instrs {
					in := &b.Instrs[ii]
					switch in.Op {
					// R1: roots.
					case ir.OpCondBr, ir.OpAssert, ir.OpMalloc, ir.OpFree,
						ir.OpJoin, ir.OpLock, ir.OpUnlock, ir.OpPtWrite,
						ir.OpLoad:
						changed = need(fi, in.A) || changed
					case ir.OpStore:
						changed = need(fi, in.A, in.B) || changed
					case ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem:
						changed = need(fi, in.A, in.B) || changed
						// R2 for the destination's own operands is
						// covered above: both operands are roots.
					case ir.OpCall:
						gi := mod.FuncIndex(in.Tag)
						if gi < 0 {
							break
						}
						// R3: needed callee params pull call args.
						for i, arg := range in.Args {
							if i < mod.Funcs[gi].NParams && a.Funcs[gi].Needed[i] {
								changed = need(fi, arg) || changed
							}
						}
						// R4: needed dst pulls callee returns.
						if fa.Needed[in.Dst] && !retNeeded[gi] {
							retNeeded[gi] = true
							changed = true
						}
					case ir.OpICall:
						changed = need(fi, in.A) || changed
						for _, gi := range a.Taint.AddrTaken {
							for i, arg := range in.Args {
								if i < mod.Funcs[gi].NParams && a.Funcs[gi].Needed[i] {
									changed = need(fi, arg) || changed
								}
							}
							if fa.Needed[in.Dst] && !retNeeded[gi] {
								retNeeded[gi] = true
								changed = true
							}
						}
					case ir.OpSpawn:
						if gi := mod.FuncIndex(in.Tag); gi >= 0 &&
							mod.Funcs[gi].NParams > 0 && a.Funcs[gi].Needed[0] {
							changed = need(fi, in.A) || changed
						}
					case ir.OpRet:
						if retNeeded[fi] {
							changed = need(fi, in.A) || changed
						}
					}
					// R2: a needed destination needs its operands.
					if writesReg(in) && fa.Needed[in.Dst] {
						switch in.Op {
						case ir.OpCall, ir.OpICall, ir.OpSpawn, ir.OpInput,
							ir.OpMalloc, ir.OpLoad:
							// Calls propagate via R3/R4; inputs have no
							// operands; malloc/load operands are roots.
						default:
							changed = need(fi, in.A, in.B) || changed
						}
					}
				}
			}
		}
	}
}

// assignModes fills the per-instruction mode tables from the needed
// and taint facts.
func (a *Analysis) assignModes() {
	for fi, f := range a.Mod.Funcs {
		fa := a.Funcs[fi]
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				m := ModeSym
				switch {
				case in.Op == ir.OpBr, in.Op == ir.OpOutput, in.Op == ir.OpYield:
					// No expression work in the full run either, but
					// the pruned stepper bypasses the dispatch and the
					// per-op bookkeeping.
					m = ModeConc
				case in.Op == ir.OpCondBr || in.Op == ir.OpAssert:
					if !a.Taint.Tainted(fi, in.A) {
						m = ModeConc
					}
				case in.Op == ir.OpLoad:
					if !fa.Needed[in.Dst] {
						m = ModeLoadNoVal
					}
				case pureOp(in.Op):
					switch {
					case !fa.Needed[in.Dst]:
						m = ModeSkip
					case !a.Taint.Tainted(fi, in.A) && !a.Taint.Tainted(fi, in.B):
						m = ModeConc
					}
				}
				fa.Modes[bi][ii] = m
				if !fa.CFG.Reachable[bi] {
					continue
				}
				fa.NInstrs++
				switch m {
				case ModeSym:
					fa.NSym++
				case ModeConc:
					fa.NConc++
				case ModeSkip:
					fa.NSkip++
				case ModeLoadNoVal:
					fa.NLoadNoVal++
				}
			}
		}
	}
}
