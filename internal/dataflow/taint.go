package dataflow

import "execrecon/internal/ir"

// Taint is the module-wide, flow-insensitive, interprocedural
// input-taint analysis. A register is tainted when its value may
// depend on an OpInput value; taint flows through arithmetic, through
// call/return and spawn sites (the minc param/recv sites), and through
// memory via a conservative alias partition.
//
// The partition has one class per global, one class per function frame
// (all frame slots of all activations of a function share a class),
// one class per malloc site, and a final TOP class standing for
// "unknown object" (a pointer whose provenance the analysis lost).
// Stores through a TOP pointer conservatively taint every class.
//
// The analysis is deliberately an over-approximation: internal/symex
// uses "untainted" only as a licence to try concrete evaluation, with
// a runtime fallback to the full symbolic path, so imprecision costs
// speed, never soundness.
type Taint struct {
	Mod *ir.Module

	// NumClasses counts alias classes; Top is the index of the TOP
	// class (always NumClasses-1).
	NumClasses int
	Top        int

	numGlobals int
	mallocCls  map[siteKey]int

	// ClassTaint marks classes whose memory may hold input-derived
	// bytes. ClassSymSize marks malloc-site classes whose allocation
	// size may be input-derived (their bounds checks are symbolic).
	ClassTaint   []bool
	ClassSymSize []bool
	classPts     []bitset // class -> classes its memory may point to

	// RegTaint[fi][r] reports whether register r of function fi may be
	// input-derived at some program point. RetTaint[fi] likewise for
	// the function's return value.
	RegTaint [][]bool
	RetTaint []bool

	regPts [][]bitset // per func, per reg: classes the reg may point to
	retPts []bitset

	// AddrTaken lists the indices of functions whose address is taken
	// (OpFuncAddr); indirect calls conservatively target all of them.
	AddrTaken []int
}

type siteKey struct{ fn, blk, ii int }

// GlobalClass returns the alias class of global gi.
func (t *Taint) GlobalClass(gi int) int { return gi }

// FrameClass returns the alias class of function fi's frame.
func (t *Taint) FrameClass(fi int) int { return t.numGlobals + fi }

// MallocClass returns the alias class of the malloc at (fn, blk, ii),
// or -1 if that instruction is not a malloc.
func (t *Taint) MallocClass(fn, blk, ii int) int {
	if c, ok := t.mallocCls[siteKey{fn, blk, ii}]; ok {
		return c
	}
	return -1
}

// Tainted reports whether operand a of function fi may be
// input-derived. Immediates never are.
func (t *Taint) Tainted(fi int, a ir.Arg) bool {
	return a.K == ir.ArgReg && t.RegTaint[fi][a.Reg]
}

// BuildTaint runs the fixpoint over mod.
func BuildTaint(mod *ir.Module) *Taint {
	t := &Taint{Mod: mod, mallocCls: make(map[siteKey]int)}
	t.numGlobals = len(mod.Globals)
	cls := t.numGlobals + len(mod.Funcs)
	seen := make(map[int]bool)
	for fi, f := range mod.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op == ir.OpMalloc {
					t.mallocCls[siteKey{fi, bi, ii}] = cls
					cls++
				}
				if in.Op == ir.OpFuncAddr {
					if gi := mod.FuncIndex(in.Tag); gi >= 0 && !seen[gi] {
						seen[gi] = true
						t.AddrTaken = append(t.AddrTaken, gi)
					}
				}
			}
		}
	}
	t.Top = cls
	t.NumClasses = cls + 1
	t.ClassTaint = make([]bool, t.NumClasses)
	t.ClassSymSize = make([]bool, t.NumClasses)
	t.classPts = make([]bitset, t.NumClasses)
	for c := range t.classPts {
		t.classPts[c] = newBitset(t.NumClasses)
	}
	t.RegTaint = make([][]bool, len(mod.Funcs))
	t.RetTaint = make([]bool, len(mod.Funcs))
	t.regPts = make([][]bitset, len(mod.Funcs))
	t.retPts = make([]bitset, len(mod.Funcs))
	for fi, f := range mod.Funcs {
		t.RegTaint[fi] = make([]bool, f.NumRegs)
		t.regPts[fi] = make([]bitset, f.NumRegs)
		for r := range t.regPts[fi] {
			t.regPts[fi][r] = newBitset(t.NumClasses)
		}
		t.retPts[fi] = newBitset(t.NumClasses)
	}
	for changed := true; changed; {
		changed = false
		for fi, f := range mod.Funcs {
			for bi, b := range f.Blocks {
				for ii := range b.Instrs {
					if t.transfer(fi, bi, ii, &b.Instrs[ii]) {
						changed = true
					}
				}
			}
		}
	}
	return t
}

// ptsOf returns the points-to set of operand a in function fi, or nil
// for immediates.
func (t *Taint) ptsOf(fi int, a ir.Arg) bitset {
	if a.K != ir.ArgReg {
		return nil
	}
	return t.regPts[fi][a.Reg]
}

// setTaint marks register r of fi tainted, reporting change.
func (t *Taint) setTaint(fi, r int, v bool) bool {
	if !v || t.RegTaint[fi][r] {
		return false
	}
	t.RegTaint[fi][r] = true
	return true
}

// addrClasses materialises the target classes of an address operand:
// its points-to set, or {TOP} when the analysis has no provenance.
func (t *Taint) addrClasses(fi int, a ir.Arg, out []int) []int {
	s := t.ptsOf(fi, a)
	empty := true
	if s != nil {
		for c := 0; c < t.NumClasses; c++ {
			if s.get(c) {
				out = append(out, c)
				empty = false
			}
		}
	}
	if empty {
		out = append(out, t.Top)
	}
	return out
}

// transfer applies one instruction's taint/points-to effect, reporting
// whether anything changed.
func (t *Taint) transfer(fi, bi, ii int, in *ir.Instr) bool {
	mod := t.Mod
	changed := false
	propTo := func(dst int, args ...ir.Arg) {
		for _, a := range args {
			if a.K != ir.ArgReg {
				continue
			}
			if t.setTaint(fi, dst, t.RegTaint[fi][a.Reg]) {
				changed = true
			}
			if t.regPts[fi][dst].or(t.regPts[fi][a.Reg]) {
				changed = true
			}
		}
	}
	callInto := func(gi int, args []ir.Arg) {
		g := mod.Funcs[gi]
		for i, a := range args {
			if i >= g.NParams || a.K != ir.ArgReg {
				continue
			}
			if t.setTaint(gi, i, t.RegTaint[fi][a.Reg]) {
				changed = true
			}
			if t.regPts[gi][i].or(t.regPts[fi][a.Reg]) {
				changed = true
			}
		}
	}
	retOut := func(dst, gi int) {
		if t.setTaint(fi, dst, t.RetTaint[gi]) {
			changed = true
		}
		if t.regPts[fi][dst].or(t.retPts[gi]) {
			changed = true
		}
	}

	switch in.Op {
	case ir.OpInput:
		changed = t.setTaint(fi, in.Dst, true)
	case ir.OpConst, ir.OpFuncAddr:
		// Untainted, no provenance.
	case ir.OpFrame:
		c := t.FrameClass(fi)
		if !t.regPts[fi][in.Dst].get(c) {
			t.regPts[fi][in.Dst].set(c)
			changed = true
		}
	case ir.OpGlobal:
		c := t.GlobalClass(int(in.A.Imm))
		if c >= t.numGlobals {
			c = t.Top
		}
		if !t.regPts[fi][in.Dst].get(c) {
			t.regPts[fi][in.Dst].set(c)
			changed = true
		}
	case ir.OpMalloc:
		c := t.mallocCls[siteKey{fi, bi, ii}]
		if !t.regPts[fi][in.Dst].get(c) {
			t.regPts[fi][in.Dst].set(c)
			changed = true
		}
		if t.Tainted(fi, in.A) && !t.ClassSymSize[c] {
			t.ClassSymSize[c] = true
			changed = true
		}
	case ir.OpMov, ir.OpZext, ir.OpSext, ir.OpTrunc:
		propTo(in.Dst, in.A)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv,
		ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr,
		ir.OpAShr, ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
		propTo(in.Dst, in.A, in.B)
	case ir.OpLoad:
		var buf [8]int
		for _, c := range t.addrClasses(fi, in.A, buf[:0]) {
			v := t.ClassTaint[c] || c == t.Top
			if t.setTaint(fi, in.Dst, v) {
				changed = true
			}
			if t.regPts[fi][in.Dst].or(t.classPts[c]) {
				changed = true
			}
			if c == t.Top && !t.regPts[fi][in.Dst].get(t.Top) {
				t.regPts[fi][in.Dst].set(t.Top)
				changed = true
			}
		}
		if t.setTaint(fi, in.Dst, t.Tainted(fi, in.A)) {
			changed = true
		}
	case ir.OpStore:
		vt := t.Tainted(fi, in.B)
		vp := t.ptsOf(fi, in.B)
		storeTo := func(c int) {
			if vt && !t.ClassTaint[c] {
				t.ClassTaint[c] = true
				changed = true
			}
			if vp != nil && t.classPts[c].or(vp) {
				changed = true
			}
		}
		var buf [8]int
		for _, c := range t.addrClasses(fi, in.A, buf[:0]) {
			if c == t.Top {
				// Unknown target: the store may hit anything.
				for all := 0; all < t.NumClasses; all++ {
					storeTo(all)
				}
				break
			}
			storeTo(c)
		}
	case ir.OpCall:
		if gi := mod.FuncIndex(in.Tag); gi >= 0 {
			callInto(gi, in.Args)
			retOut(in.Dst, gi)
		} else {
			changed = t.setTaint(fi, in.Dst, true) || changed
		}
	case ir.OpICall:
		for _, gi := range t.AddrTaken {
			callInto(gi, in.Args)
			retOut(in.Dst, gi)
		}
		if len(t.AddrTaken) == 0 {
			changed = t.setTaint(fi, in.Dst, true) || changed
		}
	case ir.OpSpawn:
		if gi := mod.FuncIndex(in.Tag); gi >= 0 {
			callInto(gi, []ir.Arg{in.A})
		}
		// The thread id itself is never input-derived.
	case ir.OpRet:
		if in.A.K == ir.ArgReg {
			if !t.RetTaint[fi] && t.RegTaint[fi][in.A.Reg] {
				t.RetTaint[fi] = true
				changed = true
			}
			if t.retPts[fi].or(t.regPts[fi][in.A.Reg]) {
				changed = true
			}
		}
	}
	return changed
}
