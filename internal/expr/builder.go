package expr

import (
	"fmt"
	"hash/maphash"
)

// Builder creates interned, locally simplified expression nodes. A
// Builder is not safe for concurrent use.
type Builder struct {
	seed    maphash.Seed
	table   map[uint64][]*Expr
	nextID  uint64
	created int

	// imports memoizes cross-builder translation by stable ID (see
	// Import). Lazily allocated; nil until the first Import call.
	imports    map[uint64]*Expr
	importHits int64
	importMiss int64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		seed:  maphash.MakeSeed(),
		table: make(map[uint64][]*Expr),
	}
}

// NumNodes returns the number of distinct nodes the builder has
// interned, a proxy for constraint state size (§5.3).
func (b *Builder) NumNodes() int { return b.created }

func (b *Builder) hashNode(e *Expr) uint64 {
	var h maphash.Hash
	h.SetSeed(b.seed)
	h.WriteByte(byte(e.Kind))
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(e.Width))
	put(uint64(e.IdxWidth))
	put(e.Val)
	put(uint64(e.Lo))
	h.WriteString(e.Name)
	for _, a := range e.Args {
		put(a.id)
	}
	return h.Sum64()
}

func nodeEqual(a, c *Expr) bool {
	if a.Kind != c.Kind || a.Width != c.Width || a.IdxWidth != c.IdxWidth ||
		a.Val != c.Val || a.Lo != c.Lo || a.Name != c.Name ||
		len(a.Args) != len(c.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != c.Args[i] {
			return false
		}
	}
	return true
}

// stableHash computes the builder-independent content hash of a node
// whose children already carry stable IDs (FNV-1a over the node's
// shape). Unlike hashNode it uses no per-builder seed, so structurally
// equal nodes from different builders hash identically.
func stableHash(e *Expr) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(uint64(e.Kind))
	mix(uint64(e.Width))
	mix(uint64(e.IdxWidth))
	mix(e.Val)
	mix(uint64(e.Lo))
	mix(uint64(len(e.Name)))
	for i := 0; i < len(e.Name); i++ {
		h ^= uint64(e.Name[i])
		h *= fnvPrime
	}
	for _, a := range e.Args {
		mix(a.stable)
	}
	return h
}

// intern returns the canonical node for e, creating it if needed.
func (b *Builder) intern(e Expr) *Expr {
	h := b.hashNode(&e)
	for _, c := range b.table[h] {
		if nodeEqual(&e, c) {
			return c
		}
	}
	n := new(Expr)
	*n = e
	n.hash = h
	n.stable = stableHash(n)
	b.nextID++
	n.id = b.nextID
	b.created++
	b.table[h] = append(b.table[h], n)
	return n
}

// Import translates a node built by any Builder (including b itself)
// into b's node space, returning the structurally identical canonical
// node owned by b. Translation is memoized by stable ID, so importing
// a DAG whose prefix was imported before touches only the new suffix —
// the cheap "resume" operation incremental solver sessions rely on
// when the ER loop rebuilds near-identical constraint sets with a
// fresh Builder every iteration. Nodes are re-interned with their
// exact foreign shape (no re-simplification), which preserves
// structural identity and hence stable IDs.
func (b *Builder) Import(e *Expr) *Expr {
	if b.imports == nil {
		b.imports = make(map[uint64]*Expr)
	}
	if c, ok := b.imports[e.stable]; ok {
		// Cheap shape check guards against (astronomically unlikely)
		// stable-ID collisions; on mismatch fall through and rebuild
		// without memoizing.
		if c.Kind == e.Kind && c.Width == e.Width && c.Val == e.Val &&
			c.Name == e.Name && len(c.Args) == len(e.Args) {
			b.importHits++
			return c
		}
	}
	b.importMiss++
	args := e.Args
	if len(args) > 0 {
		args = make([]*Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = b.Import(a)
		}
	}
	n := b.intern(Expr{
		Kind: e.Kind, Width: e.Width, IdxWidth: e.IdxWidth,
		Val: e.Val, Name: e.Name, Lo: e.Lo, Args: args,
	})
	b.imports[e.stable] = n
	return n
}

// ImportStats returns the Import memo's cumulative hit and miss
// counts — the solver-session reuse signal surfaced in
// solver.IncStats.
func (b *Builder) ImportStats() (hits, misses int64) { return b.importHits, b.importMiss }

func checkWidth(w uint) {
	if w < 1 || w > 64 {
		panic(fmt.Sprintf("expr: width %d out of range [1,64]", w))
	}
}

// Const returns the w-bit constant v (truncated to w bits).
func (b *Builder) Const(v uint64, w uint) *Expr {
	checkWidth(w)
	return b.intern(Expr{Kind: KConst, Width: w, Val: Truncate(v, w)})
}

// Bool returns the 1-bit constant for v.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		return b.Const(1, 1)
	}
	return b.Const(0, 1)
}

// True returns the 1-bit constant 1.
func (b *Builder) True() *Expr { return b.Const(1, 1) }

// False returns the 1-bit constant 0.
func (b *Builder) False() *Expr { return b.Const(0, 1) }

// Var returns the named w-bit free variable.
func (b *Builder) Var(name string, w uint) *Expr {
	checkWidth(w)
	return b.intern(Expr{Kind: KVar, Width: w, Name: name})
}

// ArrayVar returns a named free array from idxW-bit indices to w-bit
// elements.
func (b *Builder) ArrayVar(name string, idxW, w uint) *Expr {
	checkWidth(w)
	checkWidth(idxW)
	return b.intern(Expr{Kind: KArrayVar, Width: w, IdxWidth: idxW, Name: name})
}

// ConstArray returns an array whose every element equals elem.
func (b *Builder) ConstArray(elem *Expr, idxW uint) *Expr {
	checkWidth(idxW)
	return b.intern(Expr{Kind: KConstArray, Width: elem.Width, IdxWidth: idxW, Args: []*Expr{elem}})
}

func binWidthCheck(op Kind, x, y *Expr) {
	if x.Width != y.Width || x.IsArray() || y.IsArray() {
		panic(fmt.Sprintf("expr: %s operand sort mismatch: %d vs %d", op, x.Width, y.Width))
	}
}

// commutative normalization: constants go on the right, otherwise
// operands are ordered by id, so a+b and b+a intern to the same node.
// Keeping constants out of the id ordering makes the canonical form
// independent of node creation order: a constant's id depends on when
// it was first interned, which varies between otherwise identical
// symbolic runs (e.g. full vs slice-pruned shepherding).
func orderComm(x, y *Expr) (*Expr, *Expr) {
	if x.IsConst() && !y.IsConst() {
		return y, x
	}
	if y.IsConst() && !x.IsConst() {
		return x, y
	}
	if x.id > y.id {
		return y, x
	}
	return x, y
}

// Add returns x+y.
func (b *Builder) Add(x, y *Expr) *Expr {
	binWidthCheck(KAdd, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val+y.Val, x.Width)
	}
	if x.IsConst() && x.Val == 0 {
		return y
	}
	if y.IsConst() && y.Val == 0 {
		return x
	}
	// (a + c1) + c2 => a + (c1+c2)
	if y.IsConst() && x.Kind == KAdd && x.Args[1].IsConst() {
		return b.Add(x.Args[0], b.Const(x.Args[1].Val+y.Val, x.Width))
	}
	x, y = orderComm(x, y)
	// keep constants on the right for the fold above
	if x.IsConst() {
		x, y = y, x
	}
	return b.intern(Expr{Kind: KAdd, Width: x.Width, Args: []*Expr{x, y}})
}

// Sub returns x-y.
func (b *Builder) Sub(x, y *Expr) *Expr {
	binWidthCheck(KSub, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val-y.Val, x.Width)
	}
	if y.IsConst() && y.Val == 0 {
		return x
	}
	if x == y {
		return b.Const(0, x.Width)
	}
	return b.intern(Expr{Kind: KSub, Width: x.Width, Args: []*Expr{x, y}})
}

// Mul returns x*y.
func (b *Builder) Mul(x, y *Expr) *Expr {
	binWidthCheck(KMul, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val*y.Val, x.Width)
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		switch y.Val {
		case 0:
			return b.Const(0, x.Width)
		case 1:
			return x
		}
	}
	x, y = orderComm(x, y)
	return b.intern(Expr{Kind: KMul, Width: x.Width, Args: []*Expr{x, y}})
}

// UDiv returns the unsigned quotient x/y, with x/0 = all-ones
// (SMT-LIB semantics).
func (b *Builder) UDiv(x, y *Expr) *Expr {
	binWidthCheck(KUDiv, x, y)
	if x.IsConst() && y.IsConst() {
		if y.Val == 0 {
			return b.Const(mask(x.Width), x.Width)
		}
		return b.Const(x.Val/y.Val, x.Width)
	}
	if y.IsConst() && y.Val == 1 {
		return x
	}
	return b.intern(Expr{Kind: KUDiv, Width: x.Width, Args: []*Expr{x, y}})
}

// URem returns the unsigned remainder, with x%0 = x (SMT-LIB).
func (b *Builder) URem(x, y *Expr) *Expr {
	binWidthCheck(KURem, x, y)
	if x.IsConst() && y.IsConst() {
		if y.Val == 0 {
			return x
		}
		return b.Const(x.Val%y.Val, x.Width)
	}
	if y.IsConst() && y.Val == 1 {
		return b.Const(0, x.Width)
	}
	return b.intern(Expr{Kind: KURem, Width: x.Width, Args: []*Expr{x, y}})
}

// SDiv returns the signed quotient (truncated), with x/0 defined as in
// SMT-LIB (-1 for non-negative x, 1 for negative x).
func (b *Builder) SDiv(x, y *Expr) *Expr {
	binWidthCheck(KSDiv, x, y)
	if x.IsConst() && y.IsConst() {
		xv, yv := SignExtendValue(x.Val, x.Width), SignExtendValue(y.Val, y.Width)
		if yv == 0 {
			if xv >= 0 {
				return b.Const(mask(x.Width), x.Width)
			}
			return b.Const(1, x.Width)
		}
		if yv == -1 && xv == -9223372036854775808 {
			return b.Const(x.Val, x.Width) // MIN/-1 wraps
		}
		return b.Const(uint64(xv/yv), x.Width)
	}
	return b.intern(Expr{Kind: KSDiv, Width: x.Width, Args: []*Expr{x, y}})
}

// SRem returns the signed remainder (sign of dividend), x%0 = x.
func (b *Builder) SRem(x, y *Expr) *Expr {
	binWidthCheck(KSRem, x, y)
	if x.IsConst() && y.IsConst() {
		xv, yv := SignExtendValue(x.Val, x.Width), SignExtendValue(y.Val, y.Width)
		if yv == 0 {
			return x
		}
		if yv == -1 {
			return b.Const(0, x.Width)
		}
		return b.Const(uint64(xv%yv), x.Width)
	}
	return b.intern(Expr{Kind: KSRem, Width: x.Width, Args: []*Expr{x, y}})
}

// And returns the bitwise conjunction.
func (b *Builder) And(x, y *Expr) *Expr {
	binWidthCheck(KAnd, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val&y.Val, x.Width)
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		if y.Val == 0 {
			return b.Const(0, x.Width)
		}
		if y.Val == mask(x.Width) {
			return x
		}
	}
	if x == y {
		return x
	}
	x, y = orderComm(x, y)
	return b.intern(Expr{Kind: KAnd, Width: x.Width, Args: []*Expr{x, y}})
}

// Or returns the bitwise disjunction.
func (b *Builder) Or(x, y *Expr) *Expr {
	binWidthCheck(KOr, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val|y.Val, x.Width)
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() {
		if y.Val == 0 {
			return x
		}
		if y.Val == mask(x.Width) {
			return b.Const(mask(x.Width), x.Width)
		}
	}
	if x == y {
		return x
	}
	x, y = orderComm(x, y)
	return b.intern(Expr{Kind: KOr, Width: x.Width, Args: []*Expr{x, y}})
}

// Xor returns the bitwise exclusive or.
func (b *Builder) Xor(x, y *Expr) *Expr {
	binWidthCheck(KXor, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Const(x.Val^y.Val, x.Width)
	}
	if x.IsConst() {
		x, y = y, x
	}
	if y.IsConst() && y.Val == 0 {
		return x
	}
	if x == y {
		return b.Const(0, x.Width)
	}
	x, y = orderComm(x, y)
	return b.intern(Expr{Kind: KXor, Width: x.Width, Args: []*Expr{x, y}})
}

// Not returns the bitwise complement.
func (b *Builder) Not(x *Expr) *Expr {
	if x.IsConst() {
		return b.Const(^x.Val, x.Width)
	}
	if x.Kind == KNot {
		return x.Args[0]
	}
	return b.intern(Expr{Kind: KNot, Width: x.Width, Args: []*Expr{x}})
}

// Neg returns the two's-complement negation.
func (b *Builder) Neg(x *Expr) *Expr {
	if x.IsConst() {
		return b.Const(-x.Val, x.Width)
	}
	if x.Kind == KNeg {
		return x.Args[0]
	}
	return b.intern(Expr{Kind: KNeg, Width: x.Width, Args: []*Expr{x}})
}

// Shl returns x shifted left by y; shifts ≥ width yield zero.
func (b *Builder) Shl(x, y *Expr) *Expr {
	binWidthCheck(KShl, x, y)
	if y.IsConst() {
		if y.Val >= uint64(x.Width) {
			return b.Const(0, x.Width)
		}
		if y.Val == 0 {
			return x
		}
		if x.IsConst() {
			return b.Const(x.Val<<y.Val, x.Width)
		}
	}
	return b.intern(Expr{Kind: KShl, Width: x.Width, Args: []*Expr{x, y}})
}

// LShr returns the logical right shift.
func (b *Builder) LShr(x, y *Expr) *Expr {
	binWidthCheck(KLShr, x, y)
	if y.IsConst() {
		if y.Val >= uint64(x.Width) {
			return b.Const(0, x.Width)
		}
		if y.Val == 0 {
			return x
		}
		if x.IsConst() {
			return b.Const(Truncate(x.Val, x.Width)>>y.Val, x.Width)
		}
	}
	return b.intern(Expr{Kind: KLShr, Width: x.Width, Args: []*Expr{x, y}})
}

// AShr returns the arithmetic right shift.
func (b *Builder) AShr(x, y *Expr) *Expr {
	binWidthCheck(KAShr, x, y)
	if y.IsConst() {
		if y.Val == 0 {
			return x
		}
		if x.IsConst() {
			sh := y.Val
			if sh >= uint64(x.Width) {
				sh = uint64(x.Width) - 1
			}
			return b.Const(uint64(SignExtendValue(x.Val, x.Width)>>sh), x.Width)
		}
	}
	return b.intern(Expr{Kind: KAShr, Width: x.Width, Args: []*Expr{x, y}})
}

// Eq returns the 1-bit equality x == y. Arrays may not be compared.
func (b *Builder) Eq(x, y *Expr) *Expr {
	binWidthCheck(KEq, x, y)
	if x == y {
		return b.True()
	}
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.Val == y.Val)
	}
	// Boolean equality with a constant simplifies to the operand or
	// its negation.
	if x.Width == 1 {
		if y.IsConst() {
			if y.Val == 1 {
				return x
			}
			return b.BoolNot(x)
		}
		if x.IsConst() {
			if x.Val == 1 {
				return y
			}
			return b.BoolNot(y)
		}
	}
	x, y = orderComm(x, y)
	return b.intern(Expr{Kind: KEq, Width: 1, Args: []*Expr{x, y}})
}

// Ne returns the 1-bit disequality.
func (b *Builder) Ne(x, y *Expr) *Expr { return b.BoolNot(b.Eq(x, y)) }

// Ult returns the 1-bit unsigned less-than.
func (b *Builder) Ult(x, y *Expr) *Expr {
	binWidthCheck(KUlt, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.Val < y.Val)
	}
	if x == y {
		return b.False()
	}
	if y.IsConst() && y.Val == 0 {
		return b.False()
	}
	return b.intern(Expr{Kind: KUlt, Width: 1, Args: []*Expr{x, y}})
}

// Ule returns the 1-bit unsigned less-or-equal.
func (b *Builder) Ule(x, y *Expr) *Expr {
	binWidthCheck(KUle, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(x.Val <= y.Val)
	}
	if x == y {
		return b.True()
	}
	if x.IsConst() && x.Val == 0 {
		return b.True()
	}
	return b.intern(Expr{Kind: KUle, Width: 1, Args: []*Expr{x, y}})
}

// Slt returns the 1-bit signed less-than.
func (b *Builder) Slt(x, y *Expr) *Expr {
	binWidthCheck(KSlt, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(SignExtendValue(x.Val, x.Width) < SignExtendValue(y.Val, y.Width))
	}
	if x == y {
		return b.False()
	}
	return b.intern(Expr{Kind: KSlt, Width: 1, Args: []*Expr{x, y}})
}

// Sle returns the 1-bit signed less-or-equal.
func (b *Builder) Sle(x, y *Expr) *Expr {
	binWidthCheck(KSle, x, y)
	if x.IsConst() && y.IsConst() {
		return b.Bool(SignExtendValue(x.Val, x.Width) <= SignExtendValue(y.Val, y.Width))
	}
	if x == y {
		return b.True()
	}
	return b.intern(Expr{Kind: KSle, Width: 1, Args: []*Expr{x, y}})
}

// Ugt, Uge, Sgt, Sge are the flipped comparison helpers.
func (b *Builder) Ugt(x, y *Expr) *Expr { return b.Ult(y, x) }
func (b *Builder) Uge(x, y *Expr) *Expr { return b.Ule(y, x) }
func (b *Builder) Sgt(x, y *Expr) *Expr { return b.Slt(y, x) }
func (b *Builder) Sge(x, y *Expr) *Expr { return b.Sle(y, x) }

// BoolAnd returns the 1-bit conjunction.
func (b *Builder) BoolAnd(x, y *Expr) *Expr {
	if x.Width != 1 || y.Width != 1 {
		panic("expr: BoolAnd on non-boolean")
	}
	return b.And(x, y)
}

// BoolOr returns the 1-bit disjunction.
func (b *Builder) BoolOr(x, y *Expr) *Expr {
	if x.Width != 1 || y.Width != 1 {
		panic("expr: BoolOr on non-boolean")
	}
	return b.Or(x, y)
}

// BoolNot returns the 1-bit negation.
func (b *Builder) BoolNot(x *Expr) *Expr {
	if x.Width != 1 {
		panic("expr: BoolNot on non-boolean")
	}
	return b.Not(x)
}

// Implies returns (not x) or y.
func (b *Builder) Implies(x, y *Expr) *Expr { return b.BoolOr(b.BoolNot(x), y) }

// Ite returns if cond then x else y.
func (b *Builder) Ite(cond, x, y *Expr) *Expr {
	if cond.Width != 1 {
		panic("expr: Ite condition must be boolean")
	}
	if x.Width != y.Width || x.IsArray() != y.IsArray() {
		panic("expr: Ite branch sort mismatch")
	}
	if cond.IsTrue() {
		return x
	}
	if cond.IsFalse() {
		return y
	}
	if x == y {
		return x
	}
	// Boolean ite folds to connectives, which bit-blast compactly.
	if x.Width == 1 && !x.IsArray() {
		return b.BoolOr(b.BoolAnd(cond, x), b.BoolAnd(b.BoolNot(cond), y))
	}
	return b.intern(Expr{Kind: KIte, Width: x.Width, IdxWidth: x.IdxWidth, Args: []*Expr{cond, x, y}})
}

// Concat returns hi ∘ lo, the (hi.Width+lo.Width)-bit concatenation.
func (b *Builder) Concat(hi, lo *Expr) *Expr {
	w := hi.Width + lo.Width
	checkWidth(w)
	if hi.IsConst() && lo.IsConst() {
		return b.Const(hi.Val<<lo.Width|Truncate(lo.Val, lo.Width), w)
	}
	return b.intern(Expr{Kind: KConcat, Width: w, Args: []*Expr{hi, lo}})
}

// Extract returns bits [lo, lo+w) of x.
func (b *Builder) Extract(x *Expr, lo, w uint) *Expr {
	checkWidth(w)
	if lo+w > x.Width {
		panic(fmt.Sprintf("expr: extract [%d,%d) beyond width %d", lo, lo+w, x.Width))
	}
	if lo == 0 && w == x.Width {
		return x
	}
	if x.IsConst() {
		return b.Const(x.Val>>lo, w)
	}
	if x.Kind == KExtract {
		return b.Extract(x.Args[0], x.Lo+lo, w)
	}
	if x.Kind == KConcat {
		hw, lw := x.Args[0].Width, x.Args[1].Width
		if lo+w <= lw {
			return b.Extract(x.Args[1], lo, w)
		}
		if lo >= lw {
			return b.Extract(x.Args[0], lo-lw, w)
		}
		_ = hw
	}
	if x.Kind == KZExt && lo+w <= x.Args[0].Width {
		return b.Extract(x.Args[0], lo, w)
	}
	return b.intern(Expr{Kind: KExtract, Width: w, Lo: lo, Args: []*Expr{x}})
}

// ZExt zero-extends x to w bits.
func (b *Builder) ZExt(x *Expr, w uint) *Expr {
	checkWidth(w)
	if w == x.Width {
		return x
	}
	if w < x.Width {
		panic("expr: ZExt to narrower width")
	}
	if x.IsConst() {
		return b.Const(x.Val, w)
	}
	if x.Kind == KZExt {
		return b.ZExt(x.Args[0], w)
	}
	return b.intern(Expr{Kind: KZExt, Width: w, Args: []*Expr{x}})
}

// SExt sign-extends x to w bits.
func (b *Builder) SExt(x *Expr, w uint) *Expr {
	checkWidth(w)
	if w == x.Width {
		return x
	}
	if w < x.Width {
		panic("expr: SExt to narrower width")
	}
	if x.IsConst() {
		return b.Const(uint64(SignExtendValue(x.Val, x.Width)), w)
	}
	return b.intern(Expr{Kind: KSExt, Width: w, Args: []*Expr{x}})
}

// Select returns array[idx].
func (b *Builder) Select(arr, idx *Expr) *Expr {
	if !arr.IsArray() {
		panic("expr: Select on non-array")
	}
	if idx.Width != arr.IdxWidth {
		panic("expr: Select index width mismatch")
	}
	// Forward reads through stores when the comparison is decidable
	// syntactically.
	cur := arr
	for {
		switch cur.Kind {
		case KStore:
			si := cur.Args[1]
			if si == idx {
				return cur.Args[2]
			}
			if si.IsConst() && idx.IsConst() {
				// Distinct constants: skip this store.
				cur = cur.Args[0]
				continue
			}
			// Unknown aliasing: stop.
		case KConstArray:
			return cur.Args[0]
		}
		break
	}
	return b.intern(Expr{Kind: KSelect, Width: arr.Width, Args: []*Expr{cur, idx}})
}

// Store returns arr with idx mapped to val.
func (b *Builder) Store(arr, idx, val *Expr) *Expr {
	if !arr.IsArray() {
		panic("expr: Store on non-array")
	}
	if idx.Width != arr.IdxWidth || val.Width != arr.Width {
		panic("expr: Store sort mismatch")
	}
	// Store-over-store at the same index overwrites.
	if arr.Kind == KStore && arr.Args[1] == idx {
		return b.Store(arr.Args[0], idx, val)
	}
	return b.intern(Expr{Kind: KStore, Width: arr.Width, IdxWidth: arr.IdxWidth, Args: []*Expr{arr, idx, val}})
}
