package expr

import "fmt"

// Assignment maps variable names to concrete values: bitvector
// variables to uint64 values (truncated to their width) and array
// variables to index→value maps with a default.
type Assignment struct {
	Vars   map[string]uint64
	Arrays map[string]*ArrayValue
}

// ArrayValue is a concrete array: explicit entries over a default.
type ArrayValue struct {
	Elems   map[uint64]uint64
	Default uint64
}

// Get returns the value at index i.
func (a *ArrayValue) Get(i uint64) uint64 {
	if v, ok := a.Elems[i]; ok {
		return v
	}
	return a.Default
}

// NewAssignment returns an empty assignment.
func NewAssignment() *Assignment {
	return &Assignment{Vars: make(map[string]uint64), Arrays: make(map[string]*ArrayValue)}
}

// evalCtx carries the per-evaluation memo tables. Expression nodes
// are interned DAGs with heavy sharing (a symbolic store chain's path
// constraint references the same subterms thousands of times), so
// un-memoized recursion is exponential; the memo makes one evaluation
// linear in distinct nodes. Keys are node pointers — valid for the
// lifetime of one evaluation regardless of which builder interned
// them.
type evalCtx struct {
	asn   *Assignment
	memo  map[*Expr]uint64
	amemo map[*Expr]*ArrayValue
}

// evalArray evaluates an array-sorted expression to a concrete
// ArrayValue.
func (ctx *evalCtx) evalArray(e *Expr) (*ArrayValue, error) {
	if av, ok := ctx.amemo[e]; ok {
		return av, nil
	}
	av, err := ctx.evalArrayUncached(e)
	if err != nil {
		return nil, err
	}
	if ctx.amemo == nil {
		ctx.amemo = make(map[*Expr]*ArrayValue)
	}
	ctx.amemo[e] = av
	return av, nil
}

func (ctx *evalCtx) evalArrayUncached(e *Expr) (*ArrayValue, error) {
	switch e.Kind {
	case KArrayVar:
		if av, ok := ctx.asn.Arrays[e.Name]; ok {
			return av, nil
		}
		// Unassigned arrays default to all-zero.
		return &ArrayValue{Elems: map[uint64]uint64{}}, nil
	case KConstArray:
		d, err := ctx.eval(e.Args[0])
		if err != nil {
			return nil, err
		}
		return &ArrayValue{Elems: map[uint64]uint64{}, Default: d}, nil
	case KStore:
		base, err := ctx.evalArray(e.Args[0])
		if err != nil {
			return nil, err
		}
		idx, err := ctx.eval(e.Args[1])
		if err != nil {
			return nil, err
		}
		val, err := ctx.eval(e.Args[2])
		if err != nil {
			return nil, err
		}
		elems := make(map[uint64]uint64, len(base.Elems)+1)
		for k, v := range base.Elems {
			elems[k] = v
		}
		elems[idx] = val
		return &ArrayValue{Elems: elems, Default: base.Default}, nil
	case KIte:
		c, err := ctx.eval(e.Args[0])
		if err != nil {
			return nil, err
		}
		if c != 0 {
			return ctx.evalArray(e.Args[1])
		}
		return ctx.evalArray(e.Args[2])
	}
	return nil, fmt.Errorf("expr: evalArray on %s", e.Kind)
}

// Eval evaluates a bitvector expression under the assignment,
// returning the value truncated to the expression's width. Unassigned
// variables evaluate to zero.
func (asn *Assignment) Eval(e *Expr) (uint64, error) {
	// Leaves skip the memo allocation entirely.
	switch e.Kind {
	case KConst:
		return e.Val, nil
	case KVar:
		return Truncate(asn.Vars[e.Name], e.Width), nil
	}
	ctx := &evalCtx{asn: asn, memo: make(map[*Expr]uint64)}
	return ctx.eval(e)
}

func (ctx *evalCtx) eval(e *Expr) (uint64, error) {
	switch e.Kind {
	case KConst:
		return e.Val, nil
	case KVar:
		return Truncate(ctx.asn.Vars[e.Name], e.Width), nil
	}
	if v, ok := ctx.memo[e]; ok {
		return v, nil
	}
	v, err := ctx.evalUncached(e)
	if err != nil {
		return 0, err
	}
	ctx.memo[e] = v
	return v, nil
}

func (ctx *evalCtx) evalUncached(e *Expr) (uint64, error) {
	if e.Kind == KSelect {
		arr, err := ctx.evalArray(e.Args[0])
		if err != nil {
			return 0, err
		}
		idx, err := ctx.eval(e.Args[1])
		if err != nil {
			return 0, err
		}
		return Truncate(arr.Get(idx), e.Width), nil
	}
	// Evaluate bitvector operands.
	var a, c, d uint64
	var err error
	if len(e.Args) > 0 && !e.Args[0].IsArray() {
		if a, err = ctx.eval(e.Args[0]); err != nil {
			return 0, err
		}
	}
	if len(e.Args) > 1 && !e.Args[1].IsArray() {
		if c, err = ctx.eval(e.Args[1]); err != nil {
			return 0, err
		}
	}
	if len(e.Args) > 2 && !e.Args[2].IsArray() {
		if d, err = ctx.eval(e.Args[2]); err != nil {
			return 0, err
		}
	}
	w := e.Width
	bool2 := func(v bool) (uint64, error) {
		if v {
			return 1, nil
		}
		return 0, nil
	}
	switch e.Kind {
	case KAdd:
		return Truncate(a+c, w), nil
	case KSub:
		return Truncate(a-c, w), nil
	case KMul:
		return Truncate(a*c, w), nil
	case KUDiv:
		if c == 0 {
			return mask(w), nil
		}
		return Truncate(a/c, w), nil
	case KURem:
		if c == 0 {
			return a, nil
		}
		return Truncate(a%c, w), nil
	case KSDiv:
		xa, xc := SignExtendValue(a, e.Args[0].Width), SignExtendValue(c, e.Args[1].Width)
		if xc == 0 {
			if xa >= 0 {
				return mask(w), nil
			}
			return 1, nil
		}
		if xc == -1 && xa == -9223372036854775808 {
			return a, nil // MIN/-1 wraps to MIN in two's complement
		}
		return Truncate(uint64(xa/xc), w), nil
	case KSRem:
		xa, xc := SignExtendValue(a, e.Args[0].Width), SignExtendValue(c, e.Args[1].Width)
		if xc == 0 {
			return a, nil
		}
		if xc == -1 {
			return 0, nil
		}
		return Truncate(uint64(xa%xc), w), nil
	case KAnd:
		return a & c, nil
	case KOr:
		return a | c, nil
	case KXor:
		return a ^ c, nil
	case KNot:
		return Truncate(^a, w), nil
	case KNeg:
		return Truncate(-a, w), nil
	case KShl:
		if c >= uint64(w) {
			return 0, nil
		}
		return Truncate(a<<c, w), nil
	case KLShr:
		if c >= uint64(w) {
			return 0, nil
		}
		return a >> c, nil
	case KAShr:
		sh := c
		if sh >= uint64(w) {
			sh = uint64(w) - 1
		}
		return Truncate(uint64(SignExtendValue(a, e.Args[0].Width)>>sh), w), nil
	case KEq:
		if e.Args[0].IsArray() {
			return 0, fmt.Errorf("expr: array equality not supported")
		}
		return bool2(a == c)
	case KUlt:
		return bool2(a < c)
	case KUle:
		return bool2(a <= c)
	case KSlt:
		return bool2(SignExtendValue(a, e.Args[0].Width) < SignExtendValue(c, e.Args[1].Width))
	case KSle:
		return bool2(SignExtendValue(a, e.Args[0].Width) <= SignExtendValue(c, e.Args[1].Width))
	case KIte:
		if e.Args[1].IsArray() {
			return 0, fmt.Errorf("expr: Eval of array-sorted ite")
		}
		if a != 0 {
			return c, nil
		}
		return d, nil
	case KConcat:
		return Truncate(a<<e.Args[1].Width|Truncate(c, e.Args[1].Width), w), nil
	case KExtract:
		return Truncate(a>>e.Lo, w), nil
	case KZExt:
		return Truncate(a, e.Args[0].Width), nil
	case KSExt:
		return Truncate(uint64(SignExtendValue(a, e.Args[0].Width)), w), nil
	}
	return 0, fmt.Errorf("expr: Eval of %s", e.Kind)
}

// MustEval evaluates e and panics on structural errors; intended for
// tests and for verification of solver models.
func (asn *Assignment) MustEval(e *Expr) uint64 {
	v, err := asn.Eval(e)
	if err != nil {
		panic(err)
	}
	return v
}

// Satisfies reports whether every constraint in cs evaluates to true.
// One memo spans the whole set, so shared subterms across constraints
// are evaluated once.
func (asn *Assignment) Satisfies(cs []*Expr) (bool, error) {
	ctx := &evalCtx{asn: asn, memo: make(map[*Expr]uint64)}
	for _, c := range cs {
		v, err := ctx.eval(c)
		if err != nil {
			return false, err
		}
		if v == 0 {
			return false, nil
		}
	}
	return true, nil
}

// Vars returns the distinct KVar and KArrayVar leaves in e.
func VarsOf(e *Expr) []*Expr {
	var vars []*Expr
	Walk(e, func(x *Expr) {
		if x.Kind == KVar || x.Kind == KArrayVar {
			vars = append(vars, x)
		}
	})
	return vars
}
