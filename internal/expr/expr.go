// Package expr implements a hash-consed expression DAG over fixed-width
// bitvectors and arrays, the term language shared by the shepherded
// symbolic executor (internal/symex), the constraint solver
// (internal/solver), and the constraint-graph analysis (internal/cgraph).
//
// Booleans are represented as bitvectors of width 1, which keeps the
// node vocabulary small and mirrors the encoding used by bit-blasting
// SMT solvers such as STP, whose internal structure inspired the
// constraint graph of the paper (§3.2).
//
// All nodes are created through a Builder, which interns structurally
// identical nodes and applies local simplification rules at build time.
// Node identity (pointer equality) therefore coincides with structural
// equality for nodes produced by the same Builder.
package expr

import (
	"fmt"
	"strings"
)

// Kind enumerates expression node kinds.
type Kind uint8

// Node kinds. Arithmetic and comparison kinds operate on bitvectors of
// equal width; comparison kinds yield width-1 results.
const (
	KInvalid Kind = iota

	// Leaves.
	KConst    // constant bitvector, value in Val
	KVar      // free bitvector variable (symbolic input)
	KArrayVar // free array variable (symbolic memory object)

	// Bitvector arithmetic.
	KAdd
	KSub
	KMul
	KUDiv
	KURem
	KSDiv
	KSRem

	// Bitwise.
	KAnd
	KOr
	KXor
	KNot
	KNeg
	KShl
	KLShr
	KAShr

	// Comparisons (result width 1).
	KEq
	KUlt
	KUle
	KSlt
	KSle

	// Structure.
	KIte     // Args[0] cond (w1), Args[1], Args[2]
	KConcat  // Args[0] high bits, Args[1] low bits
	KExtract // bits [Lo, Lo+Width) of Args[0]
	KZExt
	KSExt

	// Arrays. Array values map IdxWidth-bit indices to Width-bit
	// elements.
	KSelect     // Args[0] array, Args[1] index
	KStore      // Args[0] array, Args[1] index, Args[2] value
	KConstArray // array with every element equal to Args[0]
)

var kindNames = map[Kind]string{
	KConst: "const", KVar: "var", KArrayVar: "arrayvar",
	KAdd: "add", KSub: "sub", KMul: "mul", KUDiv: "udiv", KURem: "urem",
	KSDiv: "sdiv", KSRem: "srem",
	KAnd: "and", KOr: "or", KXor: "xor", KNot: "not", KNeg: "neg",
	KShl: "shl", KLShr: "lshr", KAShr: "ashr",
	KEq: "eq", KUlt: "ult", KUle: "ule", KSlt: "slt", KSle: "sle",
	KIte: "ite", KConcat: "concat", KExtract: "extract",
	KZExt: "zext", KSExt: "sext",
	KSelect: "select", KStore: "store", KConstArray: "constarray",
}

// String returns the lower-case mnemonic of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Expr is an immutable expression node. Do not construct directly; use
// a Builder.
type Expr struct {
	Kind Kind
	// Width is the bitvector width of the node's value, or the
	// element width for array-sorted nodes. Widths are limited to
	// 1..64.
	Width uint
	// IdxWidth is the index width for array-sorted nodes, zero
	// otherwise.
	IdxWidth uint
	// Val holds the constant value for KConst (truncated to Width
	// bits).
	Val uint64
	// Name identifies KVar and KArrayVar leaves.
	Name string
	// Lo is the low bit position for KExtract.
	Lo uint
	// Args are the operand nodes.
	Args []*Expr

	id     uint64
	hash   uint64
	stable uint64
}

// ID returns a builder-unique identifier, useful as a map key where
// pointer identity is inconvenient.
func (e *Expr) ID() uint64 { return e.id }

// StableID returns a content-derived identifier that is identical for
// structurally equal nodes across different Builders (unlike ID and
// the internal interning hash, both of which are builder-local). It is
// computed once at interning time from the node's kind, widths,
// constant payload, name, and the children's stable IDs, so it costs
// O(1) per node. Long-lived caches keyed by StableID survive the
// per-iteration Builder churn of the ER loop — the property the
// incremental solver sessions (internal/solver.Incremental) are built
// on.
func (e *Expr) StableID() uint64 { return e.stable }

// IsArray reports whether the node denotes an array value.
func (e *Expr) IsArray() bool {
	switch e.Kind {
	case KArrayVar, KStore, KConstArray:
		return true
	}
	return false
}

// IsConst reports whether the node is a constant bitvector.
func (e *Expr) IsConst() bool { return e.Kind == KConst }

// IsBool reports whether the node is a 1-bit (boolean) value.
func (e *Expr) IsBool() bool { return !e.IsArray() && e.Width == 1 }

// ConstValue returns the constant value, panicking if the node is not
// constant.
func (e *Expr) ConstValue() uint64 {
	if e.Kind != KConst {
		panic("expr: ConstValue on non-constant " + e.Kind.String())
	}
	return e.Val
}

// IsTrue reports whether e is the 1-bit constant 1.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Width == 1 && e.Val == 1 }

// IsFalse reports whether e is the 1-bit constant 0.
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.Width == 1 && e.Val == 0 }

// mask returns the w-bit mask.
func mask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// Truncate truncates v to w bits.
func Truncate(v uint64, w uint) uint64 { return v & mask(w) }

// SignExtendValue sign-extends the w-bit value v to 64 bits.
func SignExtendValue(v uint64, w uint) int64 {
	v = Truncate(v, w)
	if w == 64 || v&(1<<(w-1)) == 0 {
		return int64(v)
	}
	return int64(v | ^mask(w))
}

// String renders the expression as an s-expression, with sharing not
// shown (subtrees may repeat).
func (e *Expr) String() string {
	var b strings.Builder
	e.write(&b, 0)
	return b.String()
}

func (e *Expr) write(b *strings.Builder, depth int) {
	if depth > 12 {
		b.WriteString("...")
		return
	}
	switch e.Kind {
	case KConst:
		fmt.Fprintf(b, "%d:%d", e.Val, e.Width)
	case KVar:
		fmt.Fprintf(b, "%s:%d", e.Name, e.Width)
	case KArrayVar:
		fmt.Fprintf(b, "%s:[%d=>%d]", e.Name, e.IdxWidth, e.Width)
	case KExtract:
		fmt.Fprintf(b, "(extract %d+%d ", e.Lo, e.Width)
		e.Args[0].write(b, depth+1)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(e.Kind.String())
		for _, a := range e.Args {
			b.WriteByte(' ')
			a.write(b, depth+1)
		}
		b.WriteByte(')')
	}
}

// Size returns the number of distinct nodes reachable from e.
func (e *Expr) Size() int {
	seen := make(map[*Expr]bool)
	var walk func(*Expr)
	var n int
	walk = func(x *Expr) {
		if seen[x] {
			return
		}
		seen[x] = true
		n++
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	return n
}

// Walk calls fn for every distinct node reachable from e, parents
// before children.
func Walk(e *Expr, fn func(*Expr)) {
	seen := make(map[*Expr]bool)
	var walk func(*Expr)
	walk = func(x *Expr) {
		if seen[x] {
			return
		}
		seen[x] = true
		fn(x)
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
}
