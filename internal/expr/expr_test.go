package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	b := NewBuilder()
	cases := []struct {
		name string
		got  *Expr
		want uint64
	}{
		{"add", b.Add(b.Const(3, 32), b.Const(4, 32)), 7},
		{"add-wrap", b.Add(b.Const(0xffffffff, 32), b.Const(1, 32)), 0},
		{"sub", b.Sub(b.Const(3, 32), b.Const(4, 32)), 0xffffffff},
		{"mul", b.Mul(b.Const(6, 32), b.Const(7, 32)), 42},
		{"udiv", b.UDiv(b.Const(42, 32), b.Const(5, 32)), 8},
		{"udiv0", b.UDiv(b.Const(42, 32), b.Const(0, 32)), 0xffffffff},
		{"urem", b.URem(b.Const(42, 32), b.Const(5, 32)), 2},
		{"urem0", b.URem(b.Const(42, 32), b.Const(0, 32)), 42},
		{"sdiv", b.SDiv(b.Const(0xfffffff6, 32), b.Const(3, 32)), Truncate(uint64(0xfffffffd), 32)}, // -10/3 = -3
		{"srem", b.SRem(b.Const(0xfffffff6, 32), b.Const(3, 32)), Truncate(uint64(0xffffffff), 32)}, // -10%3 = -1
		{"and", b.And(b.Const(0b1100, 8), b.Const(0b1010, 8)), 0b1000},
		{"or", b.Or(b.Const(0b1100, 8), b.Const(0b1010, 8)), 0b1110},
		{"xor", b.Xor(b.Const(0b1100, 8), b.Const(0b1010, 8)), 0b0110},
		{"not", b.Not(b.Const(0b1100, 8)), 0b11110011},
		{"neg", b.Neg(b.Const(1, 8)), 0xff},
		{"shl", b.Shl(b.Const(1, 8), b.Const(3, 8)), 8},
		{"shl-over", b.Shl(b.Const(1, 8), b.Const(9, 8)), 0},
		{"lshr", b.LShr(b.Const(0x80, 8), b.Const(3, 8)), 0x10},
		{"ashr", b.AShr(b.Const(0x80, 8), b.Const(3, 8)), 0xf0},
		{"concat", b.Concat(b.Const(0xab, 8), b.Const(0xcd, 8)), 0xabcd},
		{"extract", b.Extract(b.Const(0xabcd, 16), 8, 8), 0xab},
		{"zext", b.ZExt(b.Const(0xff, 8), 16), 0xff},
		{"sext", b.SExt(b.Const(0xff, 8), 16), 0xffff},
	}
	for _, c := range cases {
		if !c.got.IsConst() {
			t.Errorf("%s: not folded to constant: %s", c.name, c.got)
			continue
		}
		if c.got.Val != c.want {
			t.Errorf("%s: got %#x want %#x", c.name, c.got.Val, c.want)
		}
	}
}

func TestComparisonFolding(t *testing.T) {
	b := NewBuilder()
	if !b.Ult(b.Const(3, 32), b.Const(4, 32)).IsTrue() {
		t.Error("3 <u 4 should fold true")
	}
	if !b.Slt(b.Const(0xffffffff, 32), b.Const(0, 32)).IsTrue() {
		t.Error("-1 <s 0 should fold true")
	}
	if b.Slt(b.Const(0, 32), b.Const(0xffffffff, 32)).IsTrue() {
		t.Error("0 <s -1 should fold false")
	}
	x := b.Var("x", 32)
	if !b.Eq(x, x).IsTrue() {
		t.Error("x == x should fold true")
	}
	if !b.Ule(x, x).IsTrue() {
		t.Error("x <=u x should fold true")
	}
	if !b.Ult(x, x).IsFalse() {
		t.Error("x <u x should fold false")
	}
}

func TestInterning(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	if b.Add(x, y) != b.Add(x, y) {
		t.Error("identical adds not interned")
	}
	if b.Add(x, y) != b.Add(y, x) {
		t.Error("commutative adds not normalized")
	}
	if b.Var("x", 32) != x {
		t.Error("vars not interned")
	}
	if b.Add(x, y) == b.Sub(x, y) {
		t.Error("distinct kinds interned together")
	}
}

func TestIdentitySimplifications(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	zero := b.Const(0, 32)
	one := b.Const(1, 32)
	ones := b.Const(^uint64(0), 32)
	if b.Add(x, zero) != x || b.Add(zero, x) != x {
		t.Error("x+0 != x")
	}
	if b.Mul(x, one) != x {
		t.Error("x*1 != x")
	}
	if !b.Mul(x, zero).IsConst() {
		t.Error("x*0 not folded")
	}
	if b.And(x, ones) != x {
		t.Error("x&~0 != x")
	}
	if b.Or(x, zero) != x {
		t.Error("x|0 != x")
	}
	if b.Xor(x, x) != zero {
		t.Error("x^x != 0")
	}
	if b.Sub(x, x) != zero {
		t.Error("x-x != 0")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("~~x != x")
	}
	if b.Neg(b.Neg(x)) != x {
		t.Error("--x != x")
	}
	// Constant re-association: (x+1)+1 == x+2.
	if b.Add(b.Add(x, one), one) != b.Add(x, b.Const(2, 32)) {
		t.Error("add constants not re-associated")
	}
}

func TestBoolSimplifications(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 1)
	if b.Eq(p, b.True()) != p {
		t.Error("p == true should be p")
	}
	if b.Eq(p, b.False()) != b.BoolNot(p) {
		t.Error("p == false should be !p")
	}
	if b.Ite(b.True(), b.Const(1, 8), b.Const(2, 8)).Val != 1 {
		t.Error("ite(true) not folded")
	}
	if b.Ite(b.False(), b.Const(1, 8), b.Const(2, 8)).Val != 2 {
		t.Error("ite(false) not folded")
	}
	x := b.Var("x", 8)
	if b.Ite(p, x, x) != x {
		t.Error("ite with equal branches not folded")
	}
}

func TestArraySimplifications(t *testing.T) {
	b := NewBuilder()
	arr := b.ArrayVar("A", 32, 8)
	i := b.Var("i", 32)
	v := b.Const(7, 8)
	st := b.Store(arr, i, v)
	if b.Select(st, i) != v {
		t.Error("select of store at same index should forward")
	}
	// Distinct constant indices skip the store.
	st2 := b.Store(arr, b.Const(4, 32), v)
	sel := b.Select(st2, b.Const(5, 32))
	if sel.Kind != KSelect || sel.Args[0] != arr {
		t.Errorf("select at distinct constant should skip store, got %s", sel)
	}
	// Store-over-store at same index collapses.
	st3 := b.Store(b.Store(arr, i, b.Const(1, 8)), i, b.Const(2, 8))
	if st3.Args[0] != arr {
		t.Error("store-over-store at same index should collapse")
	}
	// Select of const array.
	ca := b.ConstArray(b.Const(9, 8), 32)
	if b.Select(ca, i).Val != 9 {
		t.Error("select of constarray should fold")
	}
}

func TestExtractConcat(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	c := b.Concat(x, y)
	if b.Extract(c, 0, 8) != y {
		t.Error("extract low of concat")
	}
	if b.Extract(c, 8, 8) != x {
		t.Error("extract high of concat")
	}
	if b.Extract(b.Extract(b.Var("z", 32), 8, 16), 4, 8) != b.Extract(b.Var("z", 32), 12, 8) {
		t.Error("nested extract not fused")
	}
	if b.Extract(b.ZExt(x, 32), 0, 8) != x {
		t.Error("extract of zext not simplified")
	}
}

func TestSignExtendValue(t *testing.T) {
	if SignExtendValue(0xff, 8) != -1 {
		t.Error("0xff:8 should be -1")
	}
	if SignExtendValue(0x7f, 8) != 127 {
		t.Error("0x7f:8 should be 127")
	}
	if SignExtendValue(0x80, 8) != -128 {
		t.Error("0x80:8 should be -128")
	}
	if SignExtendValue(5, 64) != 5 {
		t.Error("64-bit passthrough")
	}
}

func TestEvalBasic(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	asn := NewAssignment()
	asn.Vars["x"] = 10
	asn.Vars["y"] = 3
	checks := []struct {
		e    *Expr
		want uint64
	}{
		{b.Add(x, y), 13},
		{b.Sub(x, y), 7},
		{b.Mul(x, y), 30},
		{b.UDiv(x, y), 3},
		{b.URem(x, y), 1},
		{b.Ult(y, x), 1},
		{b.Slt(x, y), 0},
		{b.Eq(x, y), 0},
		{b.Ite(b.Ult(y, x), x, y), 10},
		{b.Shl(x, y), 80},
	}
	for _, c := range checks {
		got := asn.MustEval(c.e)
		if got != c.want {
			t.Errorf("eval %s: got %d want %d", c.e, got, c.want)
		}
	}
}

func TestEvalArrays(t *testing.T) {
	b := NewBuilder()
	arr := b.ArrayVar("A", 32, 8)
	i := b.Var("i", 32)
	asn := NewAssignment()
	asn.Vars["i"] = 5
	asn.Arrays["A"] = &ArrayValue{Elems: map[uint64]uint64{5: 42}, Default: 7}
	if got := asn.MustEval(b.Select(arr, i)); got != 42 {
		t.Errorf("select: got %d", got)
	}
	if got := asn.MustEval(b.Select(arr, b.Const(6, 32))); got != 7 {
		t.Errorf("select default: got %d", got)
	}
	st := b.Store(arr, b.Const(6, 32), b.Const(9, 8))
	if got := asn.MustEval(b.Select(st, b.Const(6, 32))); got != 9 {
		t.Errorf("select of store: got %d", got)
	}
	// Store must not mutate the base array value.
	if got := asn.MustEval(b.Select(arr, b.Const(6, 32))); got != 7 {
		t.Errorf("base array mutated by store eval: got %d", got)
	}
}

func TestWalkAndSize(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	e := b.Add(b.Mul(x, x), x) // nodes: add, mul, x
	if e.Size() != 3 {
		t.Errorf("size: got %d want 3", e.Size())
	}
	var kinds []Kind
	Walk(e, func(n *Expr) { kinds = append(kinds, n.Kind) })
	if len(kinds) != 3 {
		t.Errorf("walk visited %d nodes", len(kinds))
	}
	vars := VarsOf(e)
	if len(vars) != 1 || vars[0] != x {
		t.Errorf("VarsOf: %v", vars)
	}
}

// TestQuickAddSubInverse checks (x+y)-y == x for random values via the
// evaluator.
func TestQuickAddSubInverse(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 64)
	y := b.Var("y", 64)
	e := b.Sub(b.Add(x, y), y)
	f := func(xv, yv uint64) bool {
		asn := NewAssignment()
		asn.Vars["x"] = xv
		asn.Vars["y"] = yv
		return asn.MustEval(e) == xv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalMatchesGo cross-checks the evaluator against native Go
// arithmetic on 32-bit operands.
func TestQuickEvalMatchesGo(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	type op struct {
		e  *Expr
		fn func(a, c uint32) uint64
	}
	ops := []op{
		{b.Add(x, y), func(a, c uint32) uint64 { return uint64(a + c) }},
		{b.Sub(x, y), func(a, c uint32) uint64 { return uint64(a - c) }},
		{b.Mul(x, y), func(a, c uint32) uint64 { return uint64(a * c) }},
		{b.And(x, y), func(a, c uint32) uint64 { return uint64(a & c) }},
		{b.Or(x, y), func(a, c uint32) uint64 { return uint64(a | c) }},
		{b.Xor(x, y), func(a, c uint32) uint64 { return uint64(a ^ c) }},
		{b.UDiv(x, y), func(a, c uint32) uint64 {
			if c == 0 {
				return 0xffffffff
			}
			return uint64(a / c)
		}},
		{b.URem(x, y), func(a, c uint32) uint64 {
			if c == 0 {
				return uint64(a)
			}
			return uint64(a % c)
		}},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, c := rng.Uint32(), rng.Uint32()
		if i%5 == 0 {
			c &= 0xf // exercise small and zero divisors
		}
		asn := NewAssignment()
		asn.Vars["x"] = uint64(a)
		asn.Vars["y"] = uint64(c)
		for _, o := range ops {
			if got, want := asn.MustEval(o.e), o.fn(a, c); got != want {
				t.Fatalf("%s a=%#x c=%#x: got %#x want %#x", o.e, a, c, got, want)
			}
		}
	}
}

func TestBuilderNumNodes(t *testing.T) {
	b := NewBuilder()
	n0 := b.NumNodes()
	x := b.Var("x", 32)
	b.Add(x, b.Const(1, 32))
	b.Add(x, b.Const(1, 32)) // interned, no new nodes
	if b.NumNodes() != n0+3 {
		t.Errorf("NumNodes: got %d want %d", b.NumNodes(), n0+3)
	}
}

func TestWidthPanics(t *testing.T) {
	b := NewBuilder()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("width0", func() { b.Const(1, 0) })
	mustPanic("width65", func() { b.Var("w", 65) })
	mustPanic("mismatch", func() { b.Add(b.Var("a", 8), b.Var("b", 16)) })
	mustPanic("ite-cond", func() { b.Ite(b.Var("c", 8), b.Const(0, 8), b.Const(1, 8)) })
	mustPanic("extract-range", func() { b.Extract(b.Var("x", 8), 4, 8) })
	mustPanic("select-nonarray", func() { b.Select(b.Var("x", 8), b.Const(0, 8)) })
}
