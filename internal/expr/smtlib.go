package expr

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteSMTLIB renders a constraint set as an SMT-LIB 2 script
// (QF_ABV), so path constraints gathered by shepherded symbolic
// execution can be cross-checked with external solvers (Z3, cvc5,
// STP). Shared subterms are emitted as let-free named definitions via
// define-fun to keep the output linear in DAG size.
func WriteSMTLIB(w io.Writer, cs []*Expr) error {
	p := &smtPrinter{
		w:     w,
		names: make(map[*Expr]string),
	}
	fmt.Fprintln(w, "(set-logic QF_ABV)")

	// Declare free variables, deterministically ordered.
	type decl struct {
		name string
		sort string
	}
	seen := make(map[string]bool)
	var decls []decl
	for _, c := range cs {
		Walk(c, func(n *Expr) {
			switch n.Kind {
			case KVar:
				if !seen[n.Name] {
					seen[n.Name] = true
					decls = append(decls, decl{smtSym(n.Name), fmt.Sprintf("(_ BitVec %d)", n.Width)})
				}
			case KArrayVar:
				if !seen[n.Name] {
					seen[n.Name] = true
					decls = append(decls, decl{smtSym(n.Name),
						fmt.Sprintf("(Array (_ BitVec %d) (_ BitVec %d))", n.IdxWidth, n.Width)})
				}
			}
		})
	}
	sort.Slice(decls, func(i, j int) bool { return decls[i].name < decls[j].name })
	for _, d := range decls {
		fmt.Fprintf(w, "(declare-fun %s () %s)\n", d.name, d.sort)
	}

	for _, c := range cs {
		if !c.IsBool() {
			return fmt.Errorf("expr: non-boolean constraint in SMT-LIB export")
		}
		s, err := p.term(c)
		if err != nil {
			return err
		}
		// Booleans are 1-bit vectors; assert equality with #b1.
		fmt.Fprintf(w, "(assert (= %s #b1))\n", s)
	}
	fmt.Fprintln(w, "(check-sat)")
	fmt.Fprintln(w, "(get-model)")
	return p.err
}

type smtPrinter struct {
	w     io.Writer
	names map[*Expr]string
	next  int
	err   error
}

// smtSym sanitizes a variable name into an SMT-LIB symbol.
func smtSym(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return "v_" + b.String()
}

// term returns an SMT-LIB term for e, introducing a define-fun for
// any node with more than trivial size so the output stays compact.
func (p *smtPrinter) term(e *Expr) (string, error) {
	if s, ok := p.names[e]; ok {
		return s, nil
	}
	s, err := p.build(e)
	if err != nil {
		return "", err
	}
	// Name interior nodes so sharing is preserved.
	if len(e.Args) > 0 {
		p.next++
		name := fmt.Sprintf("t%d", p.next)
		var sortStr string
		if e.IsArray() {
			sortStr = fmt.Sprintf("(Array (_ BitVec %d) (_ BitVec %d))", e.IdxWidth, e.Width)
		} else {
			sortStr = fmt.Sprintf("(_ BitVec %d)", e.Width)
		}
		fmt.Fprintf(p.w, "(define-fun %s () %s %s)\n", name, sortStr, s)
		p.names[e] = name
		return name, nil
	}
	p.names[e] = s
	return s, nil
}

func (p *smtPrinter) build(e *Expr) (string, error) {
	bin := func(op string) (string, error) {
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		b, err := p.term(e.Args[1])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(%s %s %s)", op, a, b), nil
	}
	cmp := func(op string) (string, error) {
		s, err := bin(op)
		if err != nil {
			return "", err
		}
		// 1-bit booleans: wrap the Bool result back into BitVec 1.
		return fmt.Sprintf("(ite %s #b1 #b0)", s), nil
	}
	switch e.Kind {
	case KConst:
		return fmt.Sprintf("(_ bv%d %d)", e.Val, e.Width), nil
	case KVar, KArrayVar:
		return smtSym(e.Name), nil
	case KAdd:
		return bin("bvadd")
	case KSub:
		return bin("bvsub")
	case KMul:
		return bin("bvmul")
	case KUDiv:
		return bin("bvudiv")
	case KURem:
		return bin("bvurem")
	case KSDiv:
		return bin("bvsdiv")
	case KSRem:
		return bin("bvsrem")
	case KAnd:
		return bin("bvand")
	case KOr:
		return bin("bvor")
	case KXor:
		return bin("bvxor")
	case KShl:
		return bin("bvshl")
	case KLShr:
		return bin("bvlshr")
	case KAShr:
		return bin("bvashr")
	case KNot:
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(bvnot %s)", a), nil
	case KNeg:
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(bvneg %s)", a), nil
	case KEq:
		return cmp("=")
	case KUlt:
		return cmp("bvult")
	case KUle:
		return cmp("bvule")
	case KSlt:
		return cmp("bvslt")
	case KSle:
		return cmp("bvsle")
	case KIte:
		c, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		a, err := p.term(e.Args[1])
		if err != nil {
			return "", err
		}
		b, err := p.term(e.Args[2])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(ite (= %s #b1) %s %s)", c, a, b), nil
	case KConcat:
		return bin("concat")
	case KExtract:
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("((_ extract %d %d) %s)", e.Lo+e.Width-1, e.Lo, a), nil
	case KZExt:
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("((_ zero_extend %d) %s)", e.Width-e.Args[0].Width, a), nil
	case KSExt:
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("((_ sign_extend %d) %s)", e.Width-e.Args[0].Width, a), nil
	case KSelect:
		return bin("select")
	case KStore:
		a, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		i, err := p.term(e.Args[1])
		if err != nil {
			return "", err
		}
		v, err := p.term(e.Args[2])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("(store %s %s %s)", a, i, v), nil
	case KConstArray:
		v, err := p.term(e.Args[0])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("((as const (Array (_ BitVec %d) (_ BitVec %d))) %s)",
			e.IdxWidth, e.Width, v), nil
	}
	return "", fmt.Errorf("expr: cannot export %s to SMT-LIB", e.Kind)
}
