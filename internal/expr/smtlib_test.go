package expr

import (
	"strings"
	"testing"
)

func TestSMTLIBExport(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	arr := b.ArrayVar("A", 32, 8)
	shared := b.Add(x, y)
	cs := []*Expr{
		b.Ult(shared, b.Const(100, 32)),
		b.Eq(b.Mul(shared, b.Const(2, 32)), b.Const(60, 32)),
		b.Eq(b.Select(b.Store(arr, x, b.Const(7, 8)), y), b.Const(7, 8)),
	}
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, cs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"(set-logic QF_ABV)",
		"(declare-fun v_x () (_ BitVec 32))",
		"(declare-fun v_y () (_ BitVec 32))",
		"(declare-fun v_A () (Array (_ BitVec 32) (_ BitVec 8)))",
		"bvadd",
		"bvmul",
		"store",
		"select",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sharing: the x+y term is defined once, not inlined twice.
	if n := strings.Count(out, "(bvadd v_x v_y)"); n != 1 {
		t.Errorf("shared term emitted %d times", n)
	}
	// Every assert wraps a 1-bit term.
	if !strings.Contains(out, "(assert (= t") {
		t.Errorf("asserts missing:\n%s", out)
	}
}

func TestSMTLIBAllOps(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	p := b.Var("p", 1)
	terms := []*Expr{
		b.Add(x, y), b.Sub(x, y), b.Mul(x, y), b.UDiv(x, y), b.URem(x, y),
		b.SDiv(x, y), b.SRem(x, y), b.And(x, y), b.Or(x, y), b.Xor(x, y),
		b.Not(x), b.Neg(x), b.Shl(x, y), b.LShr(x, y), b.AShr(x, y),
		b.Ite(p, x, y),
		// Extracts placed so builder simplifications cannot erase the
		// structural node under test.
		b.Extract(b.Concat(x, y), 12, 8), // spans the concat seam
		b.Extract(x, 4, 8),
		b.Extract(b.ZExt(x, 32), 8, 16), // reaches into the extension
		b.Extract(b.SExt(x, 32), 8, 16),
	}
	var cs []*Expr
	for _, e := range terms {
		cs = append(cs, b.Eq(b.Extract(e, 0, 8), b.Const(1, 8)))
	}
	// A store on a constant array keeps the (as const ...) base alive.
	ca := b.Store(b.ConstArray(b.Const(0, 8), 16), x, b.Const(9, 8))
	cs = append(cs,
		b.Ult(x, y), b.Ule(x, y), b.Slt(x, y), b.Sle(x, y),
		b.Ult(b.ZExt(x, 32), b.Const(70000, 32)), // zero_extend survives whole
		b.Eq(b.Select(ca, y), b.Const(0, 8)),
	)
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, cs); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{
		"bvadd", "bvsub", "bvmul", "bvudiv", "bvurem", "bvsdiv", "bvsrem",
		"bvand", "bvor", "bvxor", "bvnot", "bvneg", "bvshl", "bvlshr", "bvashr",
		"concat", "extract", "zero_extend", "sign_extend",
		"bvult", "bvule", "bvslt", "bvsle", "as const",
	} {
		if !strings.Contains(sb.String(), op) {
			t.Errorf("missing operator %s", op)
		}
	}
}

func TestSMTLIBSymbolSanitization(t *testing.T) {
	b := NewBuilder()
	weird := b.Var("in!req!1", 8)
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, []*Expr{b.Eq(weird, b.Const(1, 8))}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "!") {
		t.Errorf("unsanitized symbol:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "v_in_req_1") {
		t.Errorf("expected sanitized name:\n%s", sb.String())
	}
}

func TestSMTLIBRejectsNonBoolean(t *testing.T) {
	b := NewBuilder()
	var sb strings.Builder
	if err := WriteSMTLIB(&sb, []*Expr{b.Var("x", 8)}); err == nil {
		t.Error("expected error for non-boolean constraint")
	}
}
