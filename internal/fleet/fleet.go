package fleet

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"execrecon/internal/absint"
	"execrecon/internal/core"
	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
	"execrecon/internal/prod"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/telemetry"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

// App is one application deployed across the fleet. Its machines
// replay the failing workload (each reoccurrence ships a trace blob)
// until the app's failure bucket finishes reconstruction.
type App struct {
	Name   string
	Module *ir.Module
	// Entry is the entry function (default "main").
	Entry string
	// Failing constructs the bug-triggering workload. Machines replay
	// it every production run unless Gen is set.
	Failing func() *vm.Workload
	// Seed is the scheduler seed of failing runs (relevant for
	// multithreaded bugs).
	Seed int64
	// Gen, when set, supplies each machine's n-th production run
	// (workload plus scheduler seed) instead of the fixed Failing
	// replay — the hook for realistic traffic where failing requests
	// arrive embedded in benign load (see prod.Mix). It must be
	// pure/concurrency-safe: machines call it from their own
	// goroutines with their own run counters. At least one of Failing
	// and Gen must be set.
	Gen func(n int) (*vm.Workload, int64)
	// Machines is the number of producer machines running this app
	// (default Options.MachinesPerApp).
	Machines int
	// Symex configures shepherded symbolic execution for this app's
	// pipeline.
	Symex symex.Options
}

// Options tunes the fleet.
type Options struct {
	// Shards is the ingest shard count (default 4).
	Shards int
	// QueueCap is the per-shard ingest capacity (default 256).
	QueueCap int
	// Policy selects overflow behavior (default Backpressure).
	Policy OverflowPolicy
	// Workers is the scheduler worker-pool size: how many ER
	// pipelines run concurrently (default GOMAXPROCS).
	Workers int
	// MachinesPerApp is the default producer count per app
	// (default 2).
	MachinesPerApp int
	// PendingCap bounds each bucket's reoccurrence queue
	// (default 64).
	PendingCap int
	// RingSize is the machines' per-run trace buffer
	// (default prod.MachineRingSize).
	RingSize int
	// MaxIterations bounds each pipeline's reoccurrence loop
	// (default 16).
	MaxIterations int
	// Pace spaces each machine's production runs (default 1ms),
	// modelling request arrival rather than a busy loop.
	Pace time.Duration
	// ExpectFailures is how many distinct failure signatures the
	// fleet waits to resolve before shutting down (default: one per
	// app).
	ExpectFailures int
	// Timeout bounds the whole fleet run (default 2 minutes;
	// negative disables).
	Timeout time.Duration
	// SolverSessions enables a persistent incremental solver session
	// per bucket pipeline: solver state (Tseitin definitions,
	// Ackermann lemmas, CDCL learned clauses) is reused across a
	// bucket's ER iterations and dropped when the bucket retires, so
	// memory stays bounded by the number of in-flight buckets.
	// Off by default (fresh solver per query).
	SolverSessions bool
	// SolverMaxSessionNodes bounds each session's interned expression
	// nodes before it resets (0 = solver default); only meaningful
	// with SolverSessions.
	SolverMaxSessionNodes int
	// PortfolioWorkers, when > 1, races each bucket pipeline's solver
	// queries across that many seeded CDCL workers (first definitive
	// verdict wins, the rest are cancelled). Verdict-preserving; an
	// app can override via its own Symex.Portfolio options.
	PortfolioWorkers int
	// PortfolioCubeVars additionally splits grown queries into 2^n
	// cube workers (cube and conquer); only meaningful with
	// PortfolioWorkers > 1.
	PortfolioCubeVars int
	// Speculate lets a bucket pipeline pre-solve its predicted
	// next-iteration constraint set whenever its reoccurrence queue
	// runs dry, overlapping solver work with the wait for production
	// to re-hit the failure. Requires SolverSessions.
	Speculate bool
	// Absint enables the abstract-interpretation layer in every
	// bucket pipeline: solver pre-discharge + narrowed blasting, and
	// verified static invariant mining on reproduction. Registered
	// apps additionally get an upfront provable-lint pass whose
	// error-level proof count lands on er_absint_lint_proofs_total.
	Absint bool
	// AbsintWiden overrides the widening threshold (0 = default).
	AbsintWiden int
	// Store, when set, is the persistent trace archive: triage
	// appends every ingested reoccurrence to it (delta-compressed
	// against the bucket's reference trace), occurrences that overflow
	// a bucket's in-RAM pending queue spill to it instead of being
	// dropped (the pipeline replays them from disk when the live queue
	// runs dry), and buckets retire their archive key on resolution so
	// compaction can reclaim interior records. Nil disables archival:
	// hot traces live only in RAM and overflow drops, the previous
	// behavior.
	Store *tracestore.Store
	// Remote, when set, switches the fleet to remote-node mode: no
	// in-process pipeline workers run. Ingest still interns buckets
	// and banks every reoccurrence in the Store (which becomes the
	// durable source of truth and is therefore required), but instead
	// of scheduling a local pipeline, new buckets are handed to the
	// dispatcher — the cluster coordinator leases them to triage
	// nodes, which replay the banked occurrences over the wire and
	// report back through Rollout and ResolveBucket. Occurrences are
	// never queued in RAM in this mode; the archive is the only
	// delivery path, which is what makes a node crash recoverable.
	Remote RemoteTriage
	// Telemetry, when set, is the shared metrics registry the whole
	// subsystem reports into: fleet-level gauges/counters
	// (er_fleet_*), each bucket pipeline's core stage histograms and
	// outcome counters (er_core_*), the symbolic executor's and
	// incremental solver sessions' series (er_symex_*/er_solver_*),
	// and — when Store is set — the archive's er_tracestore_* series.
	// Nil disables collection.
	Telemetry *telemetry.Registry
	// Tracer, when set, records each bucket pipeline's reconstruction
	// as a nested span tree; the fleet attaches its own
	// reoccurrence-wait and decode children. Recent finished trees are
	// exposed on the introspection endpoint's /debug/er.
	Tracer *telemetry.Tracer
	// Journal, when set, receives the fleet's structured events —
	// archive/spill failures that were previously silent log lines —
	// and backs the introspection endpoint's /debug/er/events drain.
	Journal *telemetry.Journal
	// Overhead, when set, is the recording-overhead accountant: every
	// production machine reports its run wall times to it (attributed
	// by app and deployment version), rollouts attribute their
	// recording-set cost, and the introspection endpoint embeds its
	// ledger in /debug/er.
	Overhead *telemetry.Overhead
	// ListenAddr, when non-empty, serves the live introspection
	// endpoint while the fleet runs: GET /metrics (Prometheus text
	// format 0.0.4 of the Telemetry registry) and GET /debug/er (JSON
	// fleet snapshot plus recent span trees). Use "127.0.0.1:0" to
	// bind an ephemeral port; IntrospectionAddr reports the bound
	// address. The listener closes when Wait returns.
	ListenAddr string
	// Pprof additionally mounts net/http/pprof handlers on the
	// introspection endpoint (/debug/pprof/...).
	Pprof bool
	// Log receives progress lines when set.
	Log io.Writer
}

func (o *Options) withDefaults(apps int) Options {
	v := *o
	if v.Shards <= 0 {
		v.Shards = 4
	}
	if v.QueueCap <= 0 {
		v.QueueCap = 256
	}
	if v.Workers <= 0 {
		v.Workers = runtime.GOMAXPROCS(0)
	}
	if v.MachinesPerApp <= 0 {
		v.MachinesPerApp = 2
	}
	if v.PendingCap <= 0 {
		v.PendingCap = 64
	}
	if v.RingSize <= 0 {
		v.RingSize = prod.MachineRingSize
	}
	if v.MaxIterations <= 0 {
		v.MaxIterations = 16
	}
	if v.Pace == 0 {
		v.Pace = time.Millisecond
	}
	if v.ExpectFailures <= 0 {
		v.ExpectFailures = apps
	}
	if v.Timeout == 0 {
		v.Timeout = 2 * time.Minute
	}
	return v
}

// RemoteTriage is the seam of the fleet's remote-node mode: the
// consumer (the cluster coordinator) that dispatches buckets to
// out-of-process triage nodes instead of the in-process worker pool.
// Both callbacks are invoked from ingest drainer goroutines and must
// not block for long — they gate triage throughput.
type RemoteTriage interface {
	// NewBucket is called exactly once per distinct (app, signature)
	// bucket, when its first occurrence is interned.
	NewBucket(b *Bucket)
	// Banked is called after an occurrence is durably appended to the
	// trace archive under the bucket's key with the given sequence
	// number — the signal that wakes a node blocked waiting for the
	// next reoccurrence.
	Banked(b *Bucket, seq uint64)
}

// Fleet wires machines, ingest, triage, and the pipeline scheduler
// together.
type Fleet struct {
	opts   Options
	apps   []App
	byName map[string]*appGroup

	ingest    *Ingest
	table     *Table
	work      chan *Bucket
	completed chan *Bucket

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup // machines + triage + workers
	started  atomic.Bool
	start    time.Time
	resolved atomic.Int64 // completed buckets

	// lintProofs counts error-level provable-lint findings across the
	// registered app modules (computed once in New when Options.Absint
	// is set; surfaced as er_absint_lint_proofs_total).
	lintProofs int64

	// Introspection endpoint (nil unless Options.ListenAddr is set)
	// and the pre-resolved fleet-owned stage histograms.
	server     *telemetry.Server
	waitHist   *telemetry.Histogram
	decodeHist *telemetry.Histogram

	waitOnce sync.Once
	result   *Result
	waitErr  error
}

// appGroup is an app plus its producer machines.
type appGroup struct {
	app      App
	machines []*prod.Machine
}

// Result is the outcome of a fleet run.
type Result struct {
	// Elapsed is the end-to-end wall time from Start to the last
	// bucket resolving.
	Elapsed time.Duration
	// Buckets holds the final per-bucket outcomes in bucket order.
	Buckets []BucketResult
	// Final is the closing stats snapshot.
	Final Snapshot
}

// BucketResult pairs a bucket's final snapshot with its pipeline
// report.
type BucketResult struct {
	BucketSnapshot
	Report *core.Report
}

// New validates the apps and assembles a fleet (not yet running).
func New(apps []App, opts Options) (*Fleet, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("fleet: no applications")
	}
	if opts.Remote != nil && opts.Store == nil {
		return nil, fmt.Errorf("fleet: remote-node mode requires a trace store (the archive is the delivery path)")
	}
	o := opts.withDefaults(len(apps))
	f := &Fleet{
		opts:      o,
		apps:      apps,
		byName:    make(map[string]*appGroup, len(apps)),
		ingest:    NewIngest(o.Shards, o.QueueCap, o.Policy),
		table:     NewTable(o.PendingCap),
		work:      make(chan *Bucket, 4096),
		completed: make(chan *Bucket, 4096),
	}
	machineID := 0
	for i := range apps {
		a := apps[i]
		if a.Name == "" {
			return nil, fmt.Errorf("fleet: app %d has no name", i)
		}
		if _, dup := f.byName[a.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate app %q", a.Name)
		}
		if a.Module == nil {
			return nil, fmt.Errorf("fleet: app %q has no module", a.Name)
		}
		if a.Failing == nil && a.Gen == nil {
			return nil, fmt.Errorf("fleet: app %q has no failing workload or generator", a.Name)
		}
		g := &appGroup{app: a}
		n := a.Machines
		if n <= 0 {
			n = o.MachinesPerApp
		}
		for m := 0; m < n; m++ {
			gen := a.Gen
			if gen == nil {
				base := a.Failing()
				seed := a.Seed
				gen = func(int) (*vm.Workload, int64) { return base.Clone(), seed }
			}
			mc := &prod.Machine{
				App:      a.Name,
				ID:       machineID,
				Entry:    a.Entry,
				Gen:      gen,
				Sink:     f.ingest,
				RingSize: o.RingSize,
				Pace:     o.Pace,
				Trace:    true,
				Overhead: o.Overhead,
			}
			mc.Deploy(prod.Deployment{Module: a.Module, Version: 0})
			g.machines = append(g.machines, mc)
			machineID++
		}
		f.byName[a.Name] = g
		if o.Absint {
			// Upfront provable lint over each registered module: proven
			// OOB/overflow in deployed code is worth flagging before any
			// failure ever reoccurs.
			for _, fd := range absint.Lint(a.Module, absint.Config{WidenAfter: o.AbsintWiden}) {
				if dataflow.ErrorLevel(fd.Rule) {
					f.lintProofs++
					f.logf("fleet: app %q: %s", a.Name, fd)
				}
			}
		}
	}
	if o.Telemetry != nil {
		f.registerMetrics(o.Telemetry)
		if o.Store != nil {
			o.Store.RegisterMetrics(o.Telemetry)
		}
	}
	return f, nil
}

func (f *Fleet) logf(format string, args ...interface{}) {
	if f.opts.Log != nil {
		fmt.Fprintf(f.opts.Log, format+"\n", args...)
	}
}

// Start spins up the producer machines, the triage drainers (one per
// ingest shard), and the scheduler worker pool.
func (f *Fleet) Start() error {
	if !f.started.CompareAndSwap(false, true) {
		return fmt.Errorf("fleet: already started")
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.start = time.Now()

	if f.opts.ListenAddr != "" {
		srv, err := telemetry.Serve(f.opts.ListenAddr, telemetry.ServerOptions{
			Registry: f.opts.Telemetry,
			Tracer:   f.opts.Tracer,
			Journal:  f.opts.Journal,
			Overhead: f.opts.Overhead,
			Debug:    func() interface{} { return f.Snapshot() },
			Pprof:    f.opts.Pprof,
		})
		if err != nil {
			f.cancel()
			return fmt.Errorf("fleet: introspection endpoint: %w", err)
		}
		f.server = srv
		f.logf("fleet: introspection endpoint on http://%s (/metrics, /debug/er)", srv.Addr())
	}

	for s := 0; s < f.ingest.Shards(); s++ {
		f.wg.Add(1)
		go f.drainShard(s)
	}
	if f.opts.Remote == nil {
		for w := 0; w < f.opts.Workers; w++ {
			f.wg.Add(1)
			go f.worker()
		}
	}
	for _, g := range f.byName {
		for _, m := range g.machines {
			f.wg.Add(1)
			go func(m *prod.Machine) {
				defer f.wg.Done()
				m.Serve(f.ctx)
			}(m)
		}
	}
	return nil
}

// drainShard is the triage consumer of one ingest shard: it interns
// the failure signature (creating a bucket exactly once per distinct
// failure), queues the occurrence for the bucket's pipeline, and
// hands new buckets to the scheduler.
func (f *Fleet) drainShard(s int) {
	defer f.wg.Done()
	sh := f.ingest.Shard(s)
	for {
		select {
		case <-f.ctx.Done():
			return
		case msg := <-sh:
			b, isNew := f.table.Intern(msg.Failure, msg.App)
			if r := f.opts.Remote; r != nil {
				// Remote-node mode: bank the occurrence durably and
				// notify the dispatcher — the archive, not RAM, is the
				// delivery path to the (possibly restarted) node.
				b.occurrences.Add(1)
				if isNew {
					f.logf("fleet: new failure bucket %d (%s): %v [remote]", b.ID, b.App, b.Sig)
					r.NewBucket(b)
				}
				seq, err := f.opts.Store.AppendRing(msg.Failure, tracestore.Meta{
					App: msg.App, Machine: msg.Machine, Version: msg.Version,
					Seed: msg.Seed, Instrs: msg.Instrs,
				}, msg.Ring)
				if err != nil {
					b.badDrops.Add(1)
					// In remote mode the archive is the only delivery
					// path, so a failed append silently loses the
					// occurrence — journal it at error level.
					f.opts.Journal.Log(telemetry.LevelError, "fleet", "archive append failed; occurrence lost",
						telemetry.A("app", b.App), telemetry.A("bucket", b.ID), telemetry.A("err", err))
					f.logf("fleet: bucket %d (%s): archive append: %v", b.ID, b.App, err)
					continue
				}
				r.Banked(b, seq)
				continue
			}
			var seq uint64
			archived := false
			if st := f.opts.Store; st != nil {
				var err error
				seq, err = st.AppendRing(msg.Failure, tracestore.Meta{
					App: msg.App, Machine: msg.Machine, Version: msg.Version,
					Seed: msg.Seed, Instrs: msg.Instrs,
				}, msg.Ring)
				if err != nil {
					f.opts.Journal.Log(telemetry.LevelWarn, "fleet", "archive append failed; occurrence stays RAM-only",
						telemetry.A("app", b.App), telemetry.A("bucket", b.ID), telemetry.A("err", err))
					f.logf("fleet: bucket %d (%s): archive append: %v", b.ID, b.App, err)
				} else {
					archived = true
				}
			}
			b.offerOrSpill(msg, archived, seq)
			if isNew {
				f.logf("fleet: new failure bucket %d (%s): %v", b.ID, b.App, b.Sig)
				select {
				case f.work <- b:
				default:
					// Scheduler queue saturated (4096 distinct
					// in-flight failures); resolve as failed so the
					// fleet still terminates.
					b.state.Store(int32(BucketFailed))
					f.bucketDone(b)
				}
			}
		}
	}
}

// worker runs queued buckets' pipelines to completion, one at a time.
func (f *Fleet) worker() {
	defer f.wg.Done()
	for {
		select {
		case <-f.ctx.Done():
			return
		case b := <-f.work:
			f.runBucket(b)
		}
	}
}

// runBucket drives one bucket's ER pipeline event-driven: each
// delivered reoccurrence advances the pipeline one step, and each
// re-instrumentation is rolled out to the app's machines, whose next
// failing runs ship the richer traces the pipeline asked for.
func (f *Fleet) runBucket(b *Bucket) {
	b.state.Store(int32(BucketRunning))
	g := f.byName[b.App]
	if g == nil {
		f.logf("fleet: bucket %d names unknown app %q; abandoning", b.ID, b.App)
		b.state.Store(int32(BucketFailed))
		f.bucketDone(b)
		return
	}
	p, err := core.NewPipeline(core.Config{
		Module:                g.app.Module,
		Entry:                 g.app.Entry,
		Symex:                 g.app.Symex,
		MaxIterations:         f.opts.MaxIterations,
		RingSize:              f.opts.RingSize,
		IncrementalSolver:     f.opts.SolverSessions,
		SolverMaxSessionNodes: f.opts.SolverMaxSessionNodes,
		PortfolioWorkers:      f.opts.PortfolioWorkers,
		PortfolioCubeVars:     f.opts.PortfolioCubeVars,
		Speculate:             f.opts.Speculate,
		Absint:                f.opts.Absint,
		AbsintWiden:           f.opts.AbsintWiden,
		Telemetry:             f.opts.Telemetry,
		Tracer:                f.opts.Tracer,
		Log:                   f.opts.Log,
	})
	if err != nil {
		f.logf("fleet: bucket %d (%s): %v", b.ID, b.App, err)
		b.state.Store(int32(BucketFailed))
		f.bucketDone(b)
		return
	}
	for !p.Done() {
		var msg *prod.TraceMsg
		select {
		case <-f.ctx.Done():
			p.Abort("fleet shutdown")
			b.state.Store(int32(BucketFailed))
			f.bucketDone(b)
			return
		case msg = <-b.pending:
		default:
			// The live queue is dry: replay a spilled occurrence from
			// the archive, if any survived an earlier overflow.
			if occ, ok := f.replaySpilled(b, p.Version()); ok {
				f.feedOccurrence(b, g, p, occ)
				continue
			}
			wSpan := p.Span().Child("reoccurrence-wait")
			// About to block on production: let the pipeline pre-solve
			// its predicted next query while we wait (no-op unless
			// Options.Speculate). Feed settles the speculation before
			// the session is touched again.
			if p.Speculate() {
				b.recordSpecStats(p)
			}
			waitStart := time.Now()
			select {
			case <-f.ctx.Done():
				wSpan.End()
				p.Abort("fleet shutdown")
				b.state.Store(int32(BucketFailed))
				f.bucketDone(b)
				return
			case msg = <-b.pending:
			}
			f.waitHist.Observe(time.Since(waitStart).Seconds())
			wSpan.End()
		}
		if msg.Version != p.Version() {
			// Recorded on an out-of-date deployment (pre-rollout
			// binary still reporting); the trace lacks the
			// recorded values this iteration needs.
			b.staleDrops.Add(1)
			continue
		}
		dSpan := p.Span().Child("decode")
		decodeStart := time.Now()
		occ, err := occurrenceFrom(msg)
		f.decodeHist.Observe(time.Since(decodeStart).Seconds())
		if err != nil {
			dSpan.SetAttr("error", err.Error())
			dSpan.End()
			b.badDrops.Add(1)
			f.logf("fleet: bucket %d (%s): dropping blob: %v", b.ID, b.App, err)
			continue
		}
		if occ.Trace != nil {
			dSpan.SetAttr("events", len(occ.Trace.Events))
		}
		dSpan.End()
		f.feedOccurrence(b, g, p, occ)
	}
	// Resolved: the archive no longer needs every reoccurrence of this
	// failure — retire its bucket so compaction reclaims the interior
	// records (the reference and final occurrence survive as the audit
	// pair).
	if st := f.opts.Store; st != nil {
		st.Retire(tracestore.KeyOf(b.Sig))
	}
	rep := p.Report()
	b.report.Store(rep)
	if rep.Reproduced {
		b.state.Store(int32(BucketReproduced))
	} else {
		b.state.Store(int32(BucketFailed))
	}
	// Retire this app's machines: its failure is resolved, so the
	// fleet stops spending production capacity reproducing it.
	for _, m := range g.machines {
		m.Deploy(prod.Deployment{})
	}
	f.bucketDone(b)
}

// feedOccurrence advances the bucket's pipeline by one reoccurrence
// and rolls out any re-instrumented deployment it produced.
func (f *Fleet) feedOccurrence(b *Bucket, g *appGroup, p *core.Pipeline, occ *core.Occurrence) {
	before := p.Version()
	if _, err := p.Feed(occ); err != nil {
		f.logf("fleet: bucket %d (%s): pipeline: %v", b.ID, b.App, err)
	}
	b.iterations.Store(int32(len(p.Report().Iterations)))
	b.recordSolverStats(p)
	b.recordSpecStats(p)
	if p.Version() != before && !p.Done() {
		// Key data values selected: roll the instrumented
		// module out to this app's machines.
		dep := prod.Deployment{Module: p.Deployed(), Version: p.Version()}
		for _, m := range g.machines {
			m.Deploy(dep)
		}
		if f.opts.Overhead != nil {
			// Attribute the new version's recording-set cost
			// (cumulative across the chain) to the overhead ledger.
			sites, cost := 0, int64(0)
			for _, it := range p.Report().Iterations {
				if len(it.Sites) > 0 {
					sites += len(it.Sites)
					cost += it.RecordingCost
				}
			}
			f.opts.Overhead.SetRecordingCost(b.App, p.Version(), sites, cost)
		}
		f.logf("fleet: bucket %d (%s): rolled out instrumented deployment v%d",
			b.ID, b.App, p.Version())
	}
}

// replaySpilled pops spilled archive records until it finds one
// recorded on the pipeline's current deployment version, and rebuilds
// it as a streaming occurrence: the trace decodes straight off the
// segment log (delta ops applied on the fly), never materializing the
// event slice. Stale or unreadable spills are dropped with the same
// accounting as their live counterparts.
func (f *Fleet) replaySpilled(b *Bucket, version int) (*core.Occurrence, bool) {
	st := f.opts.Store
	if st == nil {
		return nil, false
	}
	key := tracestore.KeyOf(b.Sig)
	for {
		seq, ok := b.popSpill()
		if !ok {
			return nil, false
		}
		r, err := st.OpenEvents(key, seq)
		if err != nil {
			b.badDrops.Add(1)
			f.opts.Journal.Log(telemetry.LevelWarn, "fleet", "spilled occurrence unreadable; dropped",
				telemetry.A("app", b.App), telemetry.A("bucket", b.ID),
				telemetry.A("seq", seq), telemetry.A("err", err))
			f.logf("fleet: bucket %d (%s): spilled record %d unreadable: %v", b.ID, b.App, seq, err)
			continue
		}
		info := r.Info()
		if info.Meta.Version != version {
			b.staleDrops.Add(1)
			continue
		}
		if info.Meta.Lost > 0 {
			// Mirror the live path: a wrapped ring lacks its prefix.
			b.badDrops.Add(1)
			continue
		}
		occ := &core.Occurrence{
			Result: &vm.Result{
				Failure: b.Sig,
				Stats:   vm.Stats{Instrs: info.Meta.Instrs},
			},
			Seed: info.Meta.Seed,
		}
		if info.RawLen > 0 {
			occ.Events = r
		}
		b.replayed.Add(1)
		return occ, true
	}
}

// Rollout deploys mod as the named app's next versioned binary across
// its producer machines — the remote-node analog of the rollout a
// local pipeline triggers from feedOccurrence. The cluster coordinator
// calls it when a triage node's pipeline selects key data values.
func (f *Fleet) Rollout(app string, mod *ir.Module, version int) error {
	g := f.byName[app]
	if g == nil {
		return fmt.Errorf("fleet: rollout names unknown app %q", app)
	}
	dep := prod.Deployment{Module: mod, Version: version}
	for _, m := range g.machines {
		m.Deploy(dep)
	}
	f.logf("fleet: app %s: rolled out instrumented deployment v%d [remote]", app, version)
	return nil
}

// ResolveBucket finishes a bucket whose reconstruction ran on a remote
// triage node: it records the report, retires the app's machines and
// the bucket's archive key, and signals completion toward Wait. It
// returns false (and does nothing) if the bucket was already resolved
// — the idempotence a coordinator replaying its commit log relies on.
func (f *Fleet) ResolveBucket(b *Bucket, rep *core.Report) bool {
	if !b.remoteResolved.CompareAndSwap(false, true) {
		return false
	}
	if st := f.opts.Store; st != nil {
		st.Retire(tracestore.KeyOf(b.Sig))
	}
	b.report.Store(rep)
	b.iterations.Store(int32(len(rep.Iterations)))
	if rep.Reproduced {
		b.state.Store(int32(BucketReproduced))
	} else {
		b.state.Store(int32(BucketFailed))
	}
	if g := f.byName[b.App]; g != nil {
		for _, m := range g.machines {
			m.Deploy(prod.Deployment{})
		}
	}
	f.bucketDone(b)
	return true
}

// Submit offers an externally produced trace message to the fleet's
// ingest path — the coordinator's entry point for occurrences shipped
// over the wire (er's client mode) rather than by in-process machines.
// It reports whether ingest accepted the message.
func (f *Fleet) Submit(msg *prod.TraceMsg) bool { return f.ingest.Emit(msg) }

func (f *Fleet) bucketDone(b *Bucket) {
	b.doneAt.Store(time.Now().UnixNano())
	f.resolved.Add(1)
	select {
	case f.completed <- b:
	default:
	}
}

// occurrenceFrom decodes a shipped trace blob into a pipeline
// occurrence.
func occurrenceFrom(msg *prod.TraceMsg) (*core.Occurrence, error) {
	occ := &core.Occurrence{
		Result: &vm.Result{
			Failure: msg.Failure,
			Stats:   vm.Stats{Instrs: msg.Instrs},
		},
		Seed: msg.Seed,
	}
	if msg.Ring == nil {
		return occ, nil // untraced occurrence (deferred-tracing fleet)
	}
	tr, err := pt.Decode(msg.Ring)
	if err != nil {
		return nil, fmt.Errorf("trace decode: %w", err)
	}
	if tr.Truncated {
		return nil, fmt.Errorf("trace ring overflowed (%d bytes lost)", tr.LostBytes)
	}
	occ.Trace = tr
	return occ, nil
}

// Wait blocks until every expected failure resolves (or the timeout
// fires), then shuts the fleet down and returns the aggregate result.
func (f *Fleet) Wait() (*Result, error) {
	f.waitOnce.Do(func() {
		var timeout <-chan time.Time
		if f.opts.Timeout > 0 {
			t := time.NewTimer(f.opts.Timeout)
			defer t.Stop()
			timeout = t.C
		}
		expect := int64(f.opts.ExpectFailures)
		done := 0
	loop:
		for int64(done) < expect {
			select {
			case <-f.completed:
				done++
			case <-timeout:
				f.waitErr = fmt.Errorf("fleet: timed out after %v with %d/%d failures resolved",
					f.opts.Timeout, done, expect)
				break loop
			}
		}
		elapsed := time.Since(f.start)
		f.cancel()
		f.ingest.Close()
		f.wg.Wait()
		f.server.Close()

		res := &Result{Elapsed: elapsed, Final: f.Snapshot()}
		for _, b := range f.table.Buckets() {
			res.Buckets = append(res.Buckets, BucketResult{
				BucketSnapshot: f.snapshotBucket(b),
				Report:         b.report.Load(),
			})
		}
		f.result = res
	})
	return f.result, f.waitErr
}

// Abandon tears the fleet down immediately — machines, drainers, and
// workers stop without waiting for outstanding buckets to resolve.
// It is the crash-simulation path of the cluster tests and the
// shutdown of a coordinator being killed; normal runs use Wait.
func (f *Fleet) Abandon() {
	if !f.started.Load() {
		return
	}
	f.cancel()
	f.ingest.Close()
	f.wg.Wait()
	f.server.Close()
}

// Run is the one-shot convenience: New + Start + Wait.
func Run(apps []App, opts Options) (*Result, error) {
	f, err := New(apps, opts)
	if err != nil {
		return nil, err
	}
	if err := f.Start(); err != nil {
		return nil, err
	}
	return f.Wait()
}
