package fleet

import (
	"sync"
	"testing"
	"time"

	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/prod"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

func compile(t *testing.T, name, src string) *ir.Module {
	t.Helper()
	mod, err := minc.Compile(name, src)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return mod
}

// Three fleet apps with distinct failure signatures. gamma stalls on
// a long symbolic write chain under a small solver budget, forcing
// key-data-value selection, re-instrumentation, and a fleet rollout.
const alphaSrc = `
func main() int {
	int x = input32("x");
	assert(x != 42, "alpha bug");
	return 0;
}`

const betaSrc = `
func check(int v) {
	assert(v != 7, "beta bug");
}
func main() int {
	check(input32("y"));
	return 0;
}`

const gammaSrc = `
int m[256];
func main() int {
	int i = 0;
	while (i < 10) {
		int k = input32("k");
		if (k < 0 || k >= 250) { return 0; }
		m[k] = m[k + 1] + 1;
		i = i + 1;
	}
	assert(m[60] != 3, "gamma chain");
	return 0;
}`

func gammaWorkload() *vm.Workload {
	w := vm.NewWorkload().Add("k", 62, 61, 60)
	for i := 0; i < 7; i++ {
		w.Add("k", 200)
	}
	return w
}

func testApps(t *testing.T) []App {
	t.Helper()
	return []App{
		{
			Name:    "alpha",
			Module:  compile(t, "alpha", alphaSrc),
			Failing: func() *vm.Workload { return vm.NewWorkload().Add("x", 42) },
			Seed:    1,
		},
		{
			Name:    "beta",
			Module:  compile(t, "beta", betaSrc),
			Failing: func() *vm.Workload { return vm.NewWorkload().Add("y", 7) },
			Seed:    1,
		},
		{
			Name:    "gamma",
			Module:  compile(t, "gamma", gammaSrc),
			Failing: gammaWorkload,
			Seed:    1,
			Symex:   symex.Options{QueryBudget: 30_000},
		},
	}
}

// TestFleetStress is the acceptance stress test: >= 8 producer
// machines and >= 4 pipeline workers over >= 3 distinct failure
// signatures, one of which (gamma) stalls and forces an instrumented
// rollout mid-fleet. Run with -race.
func TestFleetStress(t *testing.T) {
	apps := testApps(t)
	f, err := New(apps, Options{
		Shards:         4,
		QueueCap:       32,
		Workers:        4,
		MachinesPerApp: 3, // 9 producers total
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Exercise the live stats surface mid-run.
	_ = f.Snapshot()

	res, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v\nsnapshot: %+v", err, f.Snapshot())
	}
	if len(res.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3: %+v", len(res.Buckets), res.Buckets)
	}
	seen := map[string]BucketResult{}
	hashes := map[uint64]bool{}
	for _, b := range res.Buckets {
		seen[b.App] = b
		hashes[b.Hash] = true
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v (report %+v)",
				b.App, b.Reproduced, b.Verified, b.Report)
		}
		if b.Occurrences < 1 {
			t.Errorf("bucket %s: occurrences = %d", b.App, b.Occurrences)
		}
	}
	if len(hashes) != 3 {
		t.Errorf("signature hashes not distinct: %v", hashes)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if _, ok := seen[name]; !ok {
			t.Errorf("no bucket for app %s", name)
		}
	}
	// gamma must have iterated: its first attempt stalls, so it needs
	// > 1 occurrence and at least one instrumented rollout.
	if g := seen["gamma"]; g.Report != nil {
		if g.Report.Occurrences < 2 {
			t.Errorf("gamma occurrences = %d, want >= 2 (stall + retry)", g.Report.Occurrences)
		}
		if len(g.Report.Iterations) < 2 {
			t.Errorf("gamma iterations = %d, want >= 2", len(g.Report.Iterations))
		}
	}
	// Dedup: machines kept producing while pipelines ran, so triage
	// must have seen more occurrences than the 3 that spawned work.
	if res.Final.Accepted < 3 {
		t.Errorf("accepted = %d, want >= 3", res.Final.Accepted)
	}
	if res.Final.Machines.Fails < res.Final.Accepted {
		t.Errorf("machine fails %d < accepted %d", res.Final.Machines.Fails, res.Final.Accepted)
	}
}

// TestFleetStressSolverSessions re-runs the fleet stress with
// persistent per-bucket solver sessions enabled (run with -race): the
// verdicts must be identical to the fresh-solver fleet, and the
// session counters must surface in the final snapshot. gamma's
// multi-iteration bucket is what exercises cross-iteration reuse.
func TestFleetStressSolverSessions(t *testing.T) {
	apps := testApps(t)
	f, err := New(apps, Options{
		Shards:         4,
		QueueCap:       32,
		Workers:        4,
		MachinesPerApp: 3,
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
		SolverSessions: true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	_ = f.Snapshot() // live stats surface mid-run

	res, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v\nsnapshot: %+v", err, f.Snapshot())
	}
	if len(res.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3: %+v", len(res.Buckets), res.Buckets)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v (report %+v)",
				b.App, b.Reproduced, b.Verified, b.Report)
		}
	}
	// The sessions must actually have been used and their counters
	// aggregated into the fleet snapshot.
	if res.Final.SolverSolves == 0 {
		t.Errorf("SolverSolves = 0 with sessions enabled: %+v", res.Final)
	}
	if res.Final.SolverBlasted == 0 {
		t.Errorf("SolverBlasted = 0 with sessions enabled: %+v", res.Final)
	}
	// gamma stalls and re-runs with more instrumentation, so its
	// session answers overlapping constraint sets across iterations:
	// some reuse must show up fleet-wide.
	if res.Final.SolverReused == 0 {
		t.Errorf("SolverReused = 0: gamma's multi-iteration bucket should reuse cached constraints: %+v", res.Final)
	}
	// Per-bucket counters must be consistent with the aggregate.
	var solves int64
	for _, b := range res.Final.Buckets {
		solves += b.SolverSolves
	}
	if solves != res.Final.SolverSolves {
		t.Errorf("per-bucket solves %d != aggregate %d", solves, res.Final.SolverSolves)
	}
}

// TestFleetSequentialOneWorker: the same fleet resolves with a single
// pipeline worker (the sequential baseline of the fleet benchmark).
func TestFleetSequentialOneWorker(t *testing.T) {
	res, err := Run(testApps(t), Options{
		Workers:        1,
		MachinesPerApp: 1,
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v", b.App, b.Reproduced, b.Verified)
		}
	}
}

func sig(kind vm.FailKind, fn string, id int32, stack ...string) *vm.Failure {
	return &vm.Failure{Kind: kind, Func: fn, InstrID: id, Stack: stack}
}

func TestSigHashMatchesSameSignature(t *testing.T) {
	a := sig(vm.FailAssert, "main", 3, "main")
	b := sig(vm.FailAssert, "main", 3, "main")
	if !a.SameSignature(b) {
		t.Fatal("fixture broken: a and b should match")
	}
	if SigHash(a) != SigHash(b) {
		t.Error("equal signatures must hash equally")
	}
	cases := []*vm.Failure{
		sig(vm.FailAbort, "main", 3, "main"),          // different kind
		sig(vm.FailAssert, "helper", 3, "main"),       // different pc func
		sig(vm.FailAssert, "main", 4, "main"),         // different instr
		sig(vm.FailAssert, "main", 3, "main", "main"), // deeper stack
		sig(vm.FailAssert, "main", 3, "other"),        // same pc, different stack
		sig(vm.FailAssert, "mai", 3, "nmain"),         // boundary shift across fields
	}
	for i, c := range cases {
		if a.SameSignature(c) {
			t.Errorf("case %d: fixture broken, signatures match", i)
			continue
		}
		if SigHash(a) == SigHash(c) {
			t.Errorf("case %d: distinct signature hashed equally", i)
		}
	}
}

// TestTableCollisionChaining forces every signature onto one hash and
// checks that distinct failures still get distinct buckets via the
// SameSignature chain.
func TestTableCollisionChaining(t *testing.T) {
	tbl := newTableWithHash(4, func(*vm.Failure) uint64 { return 0xdead })
	a := sig(vm.FailAssert, "main", 1, "main")
	b := sig(vm.FailAssert, "main", 2, "main") // same hash, different signature
	ba, newA := tbl.Intern(a, "appA")
	bb, newB := tbl.Intern(b, "appB")
	if !newA || !newB {
		t.Fatalf("both interns should be new: %v %v", newA, newB)
	}
	if ba == bb {
		t.Fatal("colliding distinct signatures shared a bucket")
	}
	if ba.Hash != bb.Hash {
		t.Fatal("test fixture broken: hashes differ")
	}
	if got, isNew := tbl.Intern(a, "appA"); got != ba || isNew {
		t.Errorf("re-intern of a: bucket=%p isNew=%v", got, isNew)
	}
	if tbl.Len() != 2 {
		t.Errorf("table len = %d, want 2", tbl.Len())
	}
}

// TestTablePerAppBuckets checks the dedup key is (app, signature):
// two applications sharing one signature — the norm for
// scheduler-level deadlocks, which all report the same located-nowhere
// <scheduler> site — must get distinct buckets.
func TestTablePerAppBuckets(t *testing.T) {
	tbl := NewTable(4)
	dead := sig(vm.FailDeadlock, "<scheduler>", 0)
	ba, newA := tbl.Intern(dead, "corpus-lock-inversion-005")
	bb, newB := tbl.Intern(dead, "corpus-lock-inversion-012")
	if !newA || !newB {
		t.Fatalf("both interns should be new: %v %v", newA, newB)
	}
	if ba == bb {
		t.Fatal("two apps sharing a signature shared a bucket")
	}
	if got, isNew := tbl.Intern(dead, "corpus-lock-inversion-005"); got != ba || isNew {
		t.Errorf("re-intern for the same app: bucket=%p isNew=%v", got, isNew)
	}
	if tbl.Len() != 2 {
		t.Errorf("table len = %d, want 2", tbl.Len())
	}
}

// TestTableConcurrentIntern hammers Intern+offer from many goroutines
// (run with -race): each distinct signature must get exactly one
// bucket and no occurrence may be lost unaccounted.
func TestTableConcurrentIntern(t *testing.T) {
	tbl := NewTable(8)
	sigs := []*vm.Failure{
		sig(vm.FailAssert, "a", 1, "a"),
		sig(vm.FailAssert, "b", 2, "a", "b"),
		sig(vm.FailNullDeref, "c", 3, "c"),
		sig(vm.FailOutOfBounds, "d", 4, "d"),
	}
	const workers = 16
	const perWorker = 200
	creations := make([]int, len(sigs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := (w + i) % len(sigs)
				b, isNew := tbl.Intern(sigs[k], "app")
				if isNew {
					mu.Lock()
					creations[k]++
					mu.Unlock()
				}
				b.offer(&prod.TraceMsg{Failure: sigs[k]})
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != len(sigs) {
		t.Fatalf("table len = %d, want %d", tbl.Len(), len(sigs))
	}
	for k, n := range creations {
		if n != 1 {
			t.Errorf("signature %d created %d buckets, want 1", k, n)
		}
	}
	var total int64
	for _, b := range tbl.Buckets() {
		queued := int64(len(b.pending))
		dropped := b.pendingDrops.Load()
		if got := b.Occurrences(); got != queued+dropped {
			// offer always accounts: occurrences == queued + dropped
			// (nothing was consumed in this test).
			t.Errorf("bucket %d: occurrences=%d queued=%d dropped=%d", b.ID, got, queued, dropped)
		}
		total += b.Occurrences()
	}
	if want := int64(workers * perWorker); total != want {
		t.Errorf("total occurrences = %d, want %d", total, want)
	}
}

func TestIngestDropAccounting(t *testing.T) {
	q := NewIngest(1, 2, DropNewest)
	f := sig(vm.FailAssert, "main", 1, "main")
	accepted := 0
	for i := 0; i < 10; i++ {
		if q.Emit(&prod.TraceMsg{Failure: f}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Errorf("accepted = %d, want 2 (shard capacity)", accepted)
	}
	if got := q.Accepted(); got != 2 {
		t.Errorf("Accepted() = %d, want 2", got)
	}
	if drops := q.Drops(); drops[0] != 8 {
		t.Errorf("drops = %v, want [8]", drops)
	}
	if depths := q.Depths(); depths[0] != 2 {
		t.Errorf("depths = %v, want [2]", depths)
	}
	if q.Emit(nil) {
		t.Error("nil message must be rejected")
	}
}

func TestIngestCloseUnblocksBackpressure(t *testing.T) {
	q := NewIngest(1, 1, Backpressure)
	f := sig(vm.FailAssert, "main", 1, "main")
	if !q.Emit(&prod.TraceMsg{Failure: f}) {
		t.Fatal("first emit should be accepted")
	}
	blocked := make(chan bool)
	go func() {
		blocked <- q.Emit(&prod.TraceMsg{Failure: f}) // shard full: blocks
	}()
	select {
	case <-blocked:
		t.Fatal("second emit should have blocked on the full shard")
	case <-time.After(20 * time.Millisecond):
	}
	q.Close()
	select {
	case ok := <-blocked:
		if ok {
			t.Error("emit after close must report rejection")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock the producer")
	}
	if q.Emit(&prod.TraceMsg{Failure: f}) {
		t.Error("emit on a closed queue must be rejected")
	}
	q.Close() // idempotent
}

// TestIngestShardsBySignature: all reoccurrences of one failure land
// on one shard, in order.
func TestIngestShardsBySignature(t *testing.T) {
	q := NewIngest(8, 64, Backpressure)
	f := sig(vm.FailAssert, "main", 9, "main")
	for i := 0; i < 16; i++ {
		if !q.Emit(&prod.TraceMsg{Machine: i, Failure: f}) {
			t.Fatalf("emit %d rejected", i)
		}
	}
	want := int(SigHash(f) % 8)
	for i, d := range q.Depths() {
		if i == want && d != 16 {
			t.Errorf("shard %d depth = %d, want 16", i, d)
		}
		if i != want && d != 0 {
			t.Errorf("shard %d depth = %d, want 0", i, d)
		}
	}
	for i := 0; i < 16; i++ {
		msg := <-q.Shard(want)
		if msg.Machine != i {
			t.Fatalf("shard order broken: got machine %d at position %d", msg.Machine, i)
		}
	}
}

// TestFleetPortfolioSpeculation re-runs the fleet stress with solver
// sessions, portfolio racing, and speculative pre-solve all enabled
// (run with -race): verdicts must match the sequential fleet, and the
// racing counters must surface in the per-bucket and aggregate
// snapshots. gamma's stall-and-retry bucket is what actually races
// non-trivial queries and opens speculation windows.
func TestFleetPortfolioSpeculation(t *testing.T) {
	apps := testApps(t)
	f, err := New(apps, Options{
		Shards:           4,
		QueueCap:         32,
		Workers:          4,
		MachinesPerApp:   3,
		Pace:             50 * time.Microsecond,
		Timeout:          60 * time.Second,
		SolverSessions:   true,
		PortfolioWorkers: 4,
		Speculate:        true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	_ = f.Snapshot() // live stats surface mid-run

	res, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v\nsnapshot: %+v", err, f.Snapshot())
	}
	if len(res.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3: %+v", len(res.Buckets), res.Buckets)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v (report %+v)",
				b.App, b.Reproduced, b.Verified, b.Report)
		}
	}
	// Racing must have happened somewhere (gamma's grown queries miss
	// the fast path) and the per-bucket counters must sum to the
	// aggregate.
	if res.Final.Portfolio.Races == 0 {
		t.Errorf("Portfolio.Races = 0 with workers=4: %+v", res.Final.Portfolio)
	}
	var races int64
	for _, b := range res.Final.Buckets {
		races += b.Portfolio.Races
	}
	if races != res.Final.Portfolio.Races {
		t.Errorf("per-bucket races %d != aggregate %d", races, res.Final.Portfolio.Races)
	}
	wins := res.Final.Portfolio.BaseWins + res.Final.Portfolio.SeedWins +
		res.Final.Portfolio.CubeWins + res.Final.Portfolio.Unknowns
	if wins != res.Final.Portfolio.Races {
		t.Errorf("race outcomes %d != races %d: %+v", wins, res.Final.Portfolio.Races, res.Final.Portfolio)
	}
	t.Logf("portfolio: %+v; speculation: %+v", res.Final.Portfolio, res.Final.Speculation)
}
