package fleet

import (
	"sync/atomic"

	"execrecon/internal/prod"
)

// OverflowPolicy selects what a full ingest shard does with a new
// message.
type OverflowPolicy int

const (
	// Backpressure blocks the producer until the shard drains (or
	// the fleet shuts down). This is the lossless default: machines
	// slow down instead of losing occurrences.
	Backpressure OverflowPolicy = iota
	// DropNewest rejects the message immediately and accounts the
	// drop — the real-fleet behavior when the collector is saturated
	// and stalling production is unacceptable.
	DropNewest
)

// Ingest is a bounded, sharded MPSC queue between many producer
// machines and the triage drainers. Messages shard by signature hash,
// so all reoccurrences of one failure land on one shard and stay in
// arrival order; distinct failures spread across shards and do not
// contend.
//
// Ingest implements prod.TraceSink.
type Ingest struct {
	shards []chan *prod.TraceMsg
	policy OverflowPolicy
	done   chan struct{}
	closed atomic.Bool

	accepted atomic.Int64
	drops    []paddedCounter // per-shard overflow drops
}

// paddedCounter is a cache-line padded atomic counter so per-shard
// drop accounting does not false-share under many producers.
type paddedCounter struct {
	n atomic.Int64
	_ [56]byte
}

// NewIngest returns a queue with the given shard count and per-shard
// capacity (both floored at 1).
func NewIngest(shards, capacity int, policy OverflowPolicy) *Ingest {
	if shards < 1 {
		shards = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	q := &Ingest{
		shards: make([]chan *prod.TraceMsg, shards),
		policy: policy,
		done:   make(chan struct{}),
		drops:  make([]paddedCounter, shards),
	}
	for i := range q.shards {
		q.shards[i] = make(chan *prod.TraceMsg, capacity)
	}
	return q
}

func (q *Ingest) shardOf(msg *prod.TraceMsg) int {
	return int(SigHash(msg.Failure) % uint64(len(q.shards)))
}

// Emit implements prod.TraceSink. It returns false when the message
// was dropped (overflow under DropNewest, or the queue is closed).
func (q *Ingest) Emit(msg *prod.TraceMsg) bool {
	if msg == nil || msg.Failure == nil {
		return false
	}
	sh := q.shardOf(msg)
	if q.policy == DropNewest {
		select {
		case <-q.done:
			return false
		case q.shards[sh] <- msg:
			q.accepted.Add(1)
			return true
		default:
			q.drops[sh].n.Add(1)
			return false
		}
	}
	select {
	case <-q.done:
		return false
	case q.shards[sh] <- msg:
		q.accepted.Add(1)
		return true
	}
}

// Shard exposes one shard's receive side to a triage drainer.
func (q *Ingest) Shard(i int) <-chan *prod.TraceMsg { return q.shards[i] }

// Shards returns the shard count.
func (q *Ingest) Shards() int { return len(q.shards) }

// Done returns a channel closed when the queue shuts down.
func (q *Ingest) Done() <-chan struct{} { return q.done }

// Close shuts the queue down: blocked and future producers fail fast
// (Emit returns false). Close is idempotent.
func (q *Ingest) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.done)
	}
}

// Depths returns the current per-shard queue depths.
func (q *Ingest) Depths() []int {
	out := make([]int, len(q.shards))
	for i, sh := range q.shards {
		out[i] = len(sh)
	}
	return out
}

// Drops returns the per-shard overflow drop counts.
func (q *Ingest) Drops() []int64 {
	out := make([]int64, len(q.drops))
	for i := range q.drops {
		out[i] = q.drops[i].n.Load()
	}
	return out
}

// Accepted returns the total messages accepted into the queue.
func (q *Ingest) Accepted() int64 { return q.accepted.Load() }

var _ prod.TraceSink = (*Ingest)(nil)
