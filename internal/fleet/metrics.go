package fleet

import (
	"fmt"

	"execrecon/internal/core"
	"execrecon/internal/telemetry"
)

// registerMetrics publishes the fleet's er_fleet_* series into the
// shared registry as collection-time callbacks. Everything reads
// through the same atomics/locks Snapshot uses, so a /metrics scrape
// and a Snapshot call always agree — there is no second copy of the
// numbers to fall out of sync.
//
// Per-bucket drop/spill counters are exposed as fleet-wide aggregates
// (summed over the bucket table at collection time) rather than one
// labelled series per bucket: bucket cardinality is unbounded in a
// long-lived fleet, and the per-bucket split stays available on
// /debug/er.
func (f *Fleet) registerMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for s := 0; s < f.ingest.Shards(); s++ {
		s := s
		lbl := telemetry.L("shard", fmt.Sprintf("%d", s))
		reg.GaugeFunc("er_fleet_ingest_depth",
			"current ingest shard queue occupancy",
			func() float64 { return float64(f.ingest.Depths()[s]) }, lbl)
		reg.CounterFunc("er_fleet_ingest_drops_total",
			"trace blobs dropped on ingest overflow (DropNewest policy)",
			func() float64 { return float64(f.ingest.Drops()[s]) }, lbl)
	}
	reg.CounterFunc("er_fleet_ingest_accepted_total",
		"trace blobs accepted into ingest",
		func() float64 { return float64(f.ingest.Accepted()) })

	machineCounter := func(name, help string, sel func(st machineStatsView) int64) {
		reg.CounterFunc(name, help, func() float64 {
			var total int64
			for _, g := range f.byName {
				for _, m := range g.machines {
					st := m.Stats()
					total += sel(machineStatsView{st.Runs, st.Fails, st.Shipped, st.Dropped})
				}
			}
			return float64(total)
		})
	}
	machineCounter("er_fleet_machine_runs_total",
		"production runs executed across the fleet",
		func(st machineStatsView) int64 { return st.runs })
	machineCounter("er_fleet_machine_fails_total",
		"failing production runs across the fleet",
		func(st machineStatsView) int64 { return st.fails })
	machineCounter("er_fleet_machine_shipped_total",
		"trace blobs shipped by producer machines",
		func(st machineStatsView) int64 { return st.shipped })
	machineCounter("er_fleet_machine_dropped_total",
		"trace blobs producer machines failed to ship",
		func(st machineStatsView) int64 { return st.dropped })

	for _, state := range []BucketState{BucketQueued, BucketRunning, BucketReproduced, BucketFailed} {
		state := state
		reg.GaugeFunc("er_fleet_buckets",
			"failure buckets by lifecycle state",
			func() float64 {
				var n int
				for _, b := range f.table.Buckets() {
					if b.State() == state {
						n++
					}
				}
				return float64(n)
			}, telemetry.L("state", state.String()))
	}
	reg.CounterFunc("er_fleet_buckets_resolved_total",
		"buckets whose pipelines ended (reproduced or failed)",
		func() float64 { return float64(f.resolved.Load()) })

	bucketCounter := func(name, help string, sel func(b *Bucket) int64) {
		reg.CounterFunc(name, help, func() float64 {
			var total int64
			for _, b := range f.table.Buckets() {
				total += sel(b)
			}
			return float64(total)
		})
	}
	bucketCounter("er_fleet_occurrences_total",
		"matching occurrences triaged into buckets",
		func(b *Bucket) int64 { return b.occurrences.Load() })
	bucketCounter("er_fleet_pending_drops_total",
		"occurrences dropped on full bucket queues",
		func(b *Bucket) int64 { return b.pendingDrops.Load() })
	bucketCounter("er_fleet_stale_drops_total",
		"occurrences dropped for an out-of-date deployment version",
		func(b *Bucket) int64 { return b.staleDrops.Load() })
	bucketCounter("er_fleet_bad_drops_total",
		"occurrences dropped as undecodable or truncated",
		func(b *Bucket) int64 { return b.badDrops.Load() })
	bucketCounter("er_fleet_spills_total",
		"occurrences parked in the trace archive on queue overflow",
		func(b *Bucket) int64 { return b.spills.Load() })
	bucketCounter("er_fleet_replays_total",
		"spilled occurrences replayed from the trace archive",
		func(b *Bucket) int64 { return b.replayed.Load() })

	reg.CounterFunc("er_absint_lint_proofs_total",
		"error-level provable lint findings across registered app modules",
		func() float64 { return float64(f.lintProofs) })

	// The fleet owns the wait/decode legs of the shared per-stage
	// histogram; its bucket pipelines fill in the rest (shepherd,
	// solve, keyselect, instrument, verify).
	f.waitHist = core.StageHistogram(reg, "wait")
	f.decodeHist = core.StageHistogram(reg, "decode")
}

// machineStatsView decouples the metric selectors from the
// prod.MachineStats field set.
type machineStatsView struct {
	runs, fails, shipped, dropped int64
}

// IntrospectionAddr returns the bound address of the live
// introspection endpoint ("" when Options.ListenAddr is unset or the
// fleet has not started).
func (f *Fleet) IntrospectionAddr() string {
	if f.server == nil {
		return ""
	}
	return f.server.Addr()
}
