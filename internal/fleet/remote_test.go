package fleet

import (
	"sync"
	"testing"
	"time"

	"execrecon/internal/core"
	"execrecon/internal/pt"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

// fakeDispatcher simulates the coordinator side of the RemoteTriage
// seam: each new bucket gets its own "node" goroutine that replays the
// banked occurrences from the archive through a private pipeline and
// reports back through ResolveBucket — the minimal in-process stand-in
// for a cluster triage node.
type fakeDispatcher struct {
	t     *testing.T
	store *tracestore.Store
	apps  map[string]App

	mu     sync.Mutex
	fleet  *Fleet
	news   map[*Bucket]int
	notify map[*Bucket]chan uint64
	wg     sync.WaitGroup
}

func (d *fakeDispatcher) NewBucket(b *Bucket) {
	d.mu.Lock()
	d.news[b]++
	ch := make(chan uint64, 256)
	d.notify[b] = ch
	f := d.fleet
	d.mu.Unlock()
	d.wg.Add(1)
	go d.nodeRun(f, b, ch)
}

func (d *fakeDispatcher) Banked(b *Bucket, seq uint64) {
	d.mu.Lock()
	ch := d.notify[b]
	d.mu.Unlock()
	select {
	case ch <- seq:
	default: // node backlogged; it can re-read the archive anyway
	}
}

func (d *fakeDispatcher) nodeRun(f *Fleet, b *Bucket, ch chan uint64) {
	defer d.wg.Done()
	app := d.apps[b.App]
	p, err := core.NewPipeline(core.Config{
		Module: app.Module,
		Entry:  app.Entry,
		Symex:  app.Symex,
	})
	if err != nil {
		d.t.Errorf("node pipeline for %s: %v", b.App, err)
		return
	}
	key := tracestore.KeyOf(b.Sig)
	for !p.Done() {
		seq, ok := <-ch
		if !ok {
			return
		}
		data, info, err := d.store.ReadRaw(key, seq)
		if err != nil {
			d.t.Errorf("node read %s seq %d: %v", b.App, seq, err)
			return
		}
		if info.Meta.App != b.App || info.Meta.Version != p.Version() {
			continue
		}
		occ := &core.Occurrence{
			Result: &vm.Result{
				Failure: b.Sig,
				Stats:   vm.Stats{Instrs: info.Meta.Instrs},
			},
			Seed: info.Meta.Seed,
		}
		if len(data) > 0 {
			tr, err := pt.DecodeBytes(data, info.Meta.Lost)
			if err != nil {
				d.t.Errorf("node decode %s seq %d: %v", b.App, seq, err)
				return
			}
			occ.Trace = tr
		}
		if _, err := p.Feed(occ); err != nil {
			d.t.Errorf("node feed %s: %v", b.App, err)
			return
		}
	}
	if !f.ResolveBucket(b, p.Report()) {
		d.t.Errorf("bucket %d (%s): first ResolveBucket returned false", b.ID, b.App)
	}
	if f.ResolveBucket(b, p.Report()) {
		d.t.Errorf("bucket %d (%s): duplicate ResolveBucket not rejected", b.ID, b.App)
	}
}

// TestFleetRemoteMode drives the fleet in remote-node mode end to end
// with a fake dispatcher: no in-process workers run, every occurrence
// is banked in the archive (the delivery path), per-bucket node
// goroutines replay them, and ResolveBucket is the single —
// idempotent — resolution edge.
func TestFleetRemoteMode(t *testing.T) {
	st, err := tracestore.Open(t.TempDir(), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Alpha and beta only: single-iteration reconstructions that never
	// roll out an instrumented deployment — the rollout leg of the seam
	// is covered by the cluster tests.
	apps := testApps(t)[:2]
	byName := make(map[string]App, len(apps))
	for _, a := range apps {
		byName[a.Name] = a
	}
	d := &fakeDispatcher{
		t:      t,
		store:  st,
		apps:   byName,
		news:   make(map[*Bucket]int),
		notify: make(map[*Bucket]chan uint64),
	}
	f, err := New(apps, Options{
		Remote:         d,
		Store:          st,
		MachinesPerApp: 2,
		Timeout:        time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	d.fleet = f
	d.mu.Unlock()
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	res, err := f.Wait()
	if err != nil {
		t.Fatal(err)
	}
	d.wg.Wait()

	if len(res.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(res.Buckets))
	}
	for _, br := range res.Buckets {
		if br.Report == nil || !br.Report.Reproduced {
			t.Errorf("bucket %s: not reproduced remotely (report %+v)", br.App, br.Report)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.news) != 2 {
		t.Fatalf("NewBucket buckets = %d, want 2", len(d.news))
	}
	for b, n := range d.news {
		if n != 1 {
			t.Errorf("bucket %s: NewBucket called %d times, want 1", b.App, n)
		}
		key := tracestore.KeyOf(b.Sig)
		if recs := st.Records(key); len(recs) == 0 {
			t.Errorf("bucket %s: no banked records in the archive", b.App)
		}
		if !st.Retired(key) {
			t.Errorf("bucket %s: archive key not retired on resolution", b.App)
		}
	}
}

// TestFleetRemoteRequiresStore pins the invariant that remote-node
// mode refuses to run without the durable delivery path.
func TestFleetRemoteRequiresStore(t *testing.T) {
	d := &fakeDispatcher{}
	if _, err := New(testApps(t)[:1], Options{Remote: d}); err == nil {
		t.Fatal("New accepted Remote without Store")
	}
}
