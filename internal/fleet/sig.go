// Package fleet is the concurrent trace-ingestion and failure-triage
// subsystem that sits between the simulated production fleet
// (internal/prod machines shipping PT trace blobs) and the ER
// analysis loop (internal/core pipelines).
//
// Data flow:
//
//	machines ──Emit──▶ Ingest (sharded bounded MPSC queue,
//	                   backpressure or drop-with-accounting)
//	         ──drain─▶ Triage (signature-hash bucketing, dedup,
//	                   per-bucket reoccurrence queues)
//	         ──new bucket─▶ Scheduler (worker pool; one independent
//	                   ER pipeline per bucket, fed event-driven by
//	                   that bucket's reoccurrences; re-instrumented
//	                   modules are rolled back out to the machines)
//
// Everything observable is exported through Fleet.Snapshot: queue
// depths, drop counters, bucket populations, and per-bucket pipeline
// progress.
package fleet

import (
	"hash/fnv"

	"execrecon/internal/vm"
)

// SigHash returns the canonical signature hash of a failure: a 64-bit
// FNV-1a over exactly the fields vm.Failure.SameSignature compares
// (kind, program counter, and call stack). Equal signatures hash
// equally; distinct signatures may collide, which triage resolves by
// chaining buckets and re-checking SameSignature.
func SigHash(f *vm.Failure) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put32 := func(v uint32) {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:4])
	}
	put32(uint32(f.Kind))
	h.Write([]byte(f.Func))
	h.Write([]byte{0})
	put32(uint32(f.InstrID))
	for _, fn := range f.Stack {
		h.Write([]byte(fn))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
