package fleet

import (
	"time"

	"execrecon/internal/prod"
	"execrecon/internal/solver"
	"execrecon/internal/tracestore"
)

// Snapshot is a point-in-time view of the whole subsystem: ingest
// queue state, producer counters, and per-bucket triage/pipeline
// progress. It is safe to take while the fleet runs.
type Snapshot struct {
	// Elapsed is the time since Start.
	Elapsed time.Duration
	// QueueDepths is the per-shard ingest occupancy.
	QueueDepths []int
	// QueueDrops is the per-shard overflow drop count (DropNewest
	// policy).
	QueueDrops []int64
	// Accepted is the total messages accepted into ingest.
	Accepted int64
	// Machines aggregates the producer machines' counters.
	Machines prod.MachineStats
	// SolverSolves/SolverReused/SolverBlasted/SolverFallbacks/
	// SolverResets aggregate the buckets' persistent-solver-session
	// counters (all zero when Options.SolverSessions is off). Reused
	// vs Blasted is the fleet-wide cache hit split: how many
	// constraints were answered from session caches versus lowered
	// from scratch.
	SolverSolves    int64
	SolverReused    int64
	SolverBlasted   int64
	SolverFallbacks int64
	SolverResets    int64
	// AbsintDischarged/AbsintLemmas/AbsintFacts aggregate the abstract
	// pre-discharge pass across bucket sessions (zero unless
	// Options.Absint); LintProofs is the error-level provable-lint
	// finding count over the registered app modules.
	AbsintDischarged int64
	AbsintLemmas     int64
	AbsintFacts      int64
	LintProofs       int64
	// Portfolio aggregates the buckets' solver-racing counters (all
	// zero unless Options.PortfolioWorkers > 1): races run, wins by
	// worker kind, and learned-clause exchange traffic.
	Portfolio solver.PortfolioStats
	// Speculation aggregates the buckets' speculative pre-solve
	// outcomes (all zero unless Options.Speculate).
	Speculation SpecStats
	// StoreEnabled reports whether the fleet runs with a persistent
	// trace archive (Options.Store); Store is then its stats snapshot:
	// live segments, raw vs stored bytes (the delta-compression win),
	// torn-tail recoveries, and compaction totals.
	StoreEnabled bool
	Store        tracestore.Stats
	// Spills/Replayed aggregate the buckets' archive spill traffic:
	// occurrences parked on disk when a bucket's in-RAM queue
	// overflowed, and spilled occurrences replayed into pipelines from
	// the segment log.
	Spills   int64
	Replayed int64
	// Buckets holds per-bucket progress in creation order.
	Buckets []BucketSnapshot
}

// BucketSnapshot is one bucket's progress.
type BucketSnapshot struct {
	ID      int
	App     string
	Failure string
	Hash    uint64
	State   string
	// Occurrences is the total matching occurrences triaged in.
	Occurrences int64
	// Pending is the bucket queue's current depth.
	Pending int
	// PendingDrops counts occurrences dropped on a full bucket
	// queue; StaleDrops those recorded on out-of-date deployments;
	// BadDrops undecodable/truncated blobs.
	PendingDrops int64
	StaleDrops   int64
	BadDrops     int64
	// Spills counts occurrences that overflowed the in-RAM queue and
	// were parked in the trace archive instead of dropped; Replayed
	// counts spilled occurrences later streamed back into the
	// pipeline. Both stay zero without Options.Store.
	Spills   int64
	Replayed int64
	// Iterations is the pipeline's completed analysis iterations.
	Iterations int
	// Solver-session counters (zero unless the fleet runs with
	// SolverSessions): queries answered, constraints reused from the
	// session cache vs blasted fresh, validation fallbacks, resets.
	SolverSolves    int64
	SolverReused    int64
	SolverBlasted   int64
	SolverFallbacks int64
	SolverResets    int64
	// Absint counters mirror the session's abstract pre-discharge
	// activity; AbsintMined/AbsintVerified the post-reproduction
	// static invariant mining (zero unless Options.Absint).
	AbsintDischarged int64
	AbsintLemmas     int64
	AbsintFacts      int64
	AbsintMined      int
	AbsintVerified   int
	// Portfolio carries the session's racing counters; Speculation the
	// pipeline's pre-solve outcomes. Zero without the matching options.
	Portfolio   solver.PortfolioStats
	Speculation SpecStats
	// Reproduced/Verified mirror the pipeline report once resolved.
	Reproduced bool
	Verified   bool
	// Elapsed runs from the bucket's first occurrence to its
	// resolution (or to now while in flight).
	Elapsed time.Duration
}

// Snapshot captures the subsystem's current state.
func (f *Fleet) Snapshot() Snapshot {
	s := Snapshot{
		QueueDepths: f.ingest.Depths(),
		QueueDrops:  f.ingest.Drops(),
		Accepted:    f.ingest.Accepted(),
	}
	if f.started.Load() {
		s.Elapsed = time.Since(f.start)
	}
	for _, g := range f.byName {
		for _, m := range g.machines {
			st := m.Stats()
			s.Machines.Runs += st.Runs
			s.Machines.Fails += st.Fails
			s.Machines.Shipped += st.Shipped
			s.Machines.Dropped += st.Dropped
		}
	}
	if st := f.opts.Store; st != nil {
		s.StoreEnabled = true
		s.Store = st.Stats()
	}
	s.LintProofs = f.lintProofs
	for _, b := range f.table.Buckets() {
		bs := f.snapshotBucket(b)
		s.Spills += bs.Spills
		s.Replayed += bs.Replayed
		s.SolverSolves += bs.SolverSolves
		s.SolverReused += bs.SolverReused
		s.SolverBlasted += bs.SolverBlasted
		s.SolverFallbacks += bs.SolverFallbacks
		s.SolverResets += bs.SolverResets
		s.AbsintDischarged += bs.AbsintDischarged
		s.AbsintLemmas += bs.AbsintLemmas
		s.AbsintFacts += bs.AbsintFacts
		s.Portfolio.Merge(bs.Portfolio)
		s.Speculation.Speculations += bs.Speculation.Speculations
		s.Speculation.Hits += bs.Speculation.Hits
		s.Speculation.Misses += bs.Speculation.Misses
		s.Speculation.Discards += bs.Speculation.Discards
		s.Buckets = append(s.Buckets, bs)
	}
	return s
}

func (f *Fleet) snapshotBucket(b *Bucket) BucketSnapshot {
	bs := BucketSnapshot{
		ID:           b.ID,
		App:          b.App,
		Failure:      b.Sig.Error(),
		Hash:         b.Hash,
		State:        b.State().String(),
		Occurrences:  b.occurrences.Load(),
		Pending:      len(b.pending),
		PendingDrops: b.pendingDrops.Load(),
		StaleDrops:   b.staleDrops.Load(),
		BadDrops:     b.badDrops.Load(),
		Spills:       b.spills.Load(),
		Replayed:     b.replayed.Load(),
		Iterations:   int(b.iterations.Load()),
	}
	st := b.loadSolverStats()
	bs.SolverSolves = st.Solves
	bs.SolverReused = st.ConstraintsReused
	bs.SolverBlasted = st.ConstraintsBlasted
	bs.SolverFallbacks = st.FreshFallbacks
	bs.SolverResets = st.Resets
	bs.AbsintDischarged = st.AbsintDischarged
	bs.AbsintLemmas = st.AbsintLemmas
	bs.AbsintFacts = st.AbsintFacts
	bs.Portfolio = st.Portfolio
	bs.Speculation = b.loadSpecStats()
	if rep := b.report.Load(); rep != nil {
		bs.Reproduced = rep.Reproduced
		bs.Verified = rep.Verified
		bs.AbsintMined = rep.AbsintMined
		bs.AbsintVerified = len(rep.AbsintInvariants)
	}
	if done := b.doneAt.Load(); done != 0 {
		bs.Elapsed = time.Unix(0, done).Sub(b.firstSeen)
	} else {
		bs.Elapsed = time.Since(b.firstSeen)
	}
	return bs
}
