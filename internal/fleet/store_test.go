package fleet

import (
	"testing"
	"time"

	"execrecon/internal/prod"
	"execrecon/internal/pt"
	"execrecon/internal/tracestore"
	"execrecon/internal/vm"
)

// TestFleetWithStore runs the stress fleet with the persistent trace
// archive wired in (run with -race): every ingested reoccurrence is
// archived delta-compressed, verdicts stay identical to the
// store-less fleet, the snapshot surfaces archive stats, and resolved
// buckets are retired in the store.
func TestFleetWithStore(t *testing.T) {
	apps := testApps(t)
	store, err := tracestore.Open(t.TempDir(), tracestore.Options{AutoCompact: true})
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	defer store.Close()

	f, err := New(apps, Options{
		Shards:         4,
		QueueCap:       32,
		Workers:        4,
		MachinesPerApp: 3,
		PendingCap:     1, // overflow aggressively: exercise the spill path
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
		Store:          store,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	_ = f.Snapshot() // live stats surface mid-run

	res, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v\nsnapshot: %+v", err, f.Snapshot())
	}
	if len(res.Buckets) != 3 {
		t.Fatalf("buckets = %d, want 3: %+v", len(res.Buckets), res.Buckets)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v (report %+v)",
				b.App, b.Reproduced, b.Verified, b.Report)
		}
	}
	final := res.Final
	if !final.StoreEnabled {
		t.Fatal("snapshot.StoreEnabled = false")
	}
	// Every drained message was archived: accepted messages are either
	// still sitting in a shard queue at shutdown (bounded by the total
	// ingest capacity) or went through the archive append.
	backlog := int64(0)
	for _, d := range final.QueueDepths {
		backlog += 32 // QueueCap per shard
		_ = d
	}
	if final.Store.Appends < final.Accepted-backlog {
		t.Errorf("archive appends %d < accepted %d - backlog %d", final.Store.Appends, final.Accepted, backlog)
	}
	if final.Store.References < 3 {
		t.Errorf("archive references = %d, want >= 3 (one per signature)", final.Store.References)
	}
	// Resolved buckets were retired in the store, and auto-compaction
	// reclaimed their interior records.
	for _, b := range res.Buckets {
		key := tracestore.KeyOf(f.table.Buckets()[b.ID].Sig)
		if !store.Retired(key) {
			t.Errorf("bucket %s (key %#x) not retired in store", b.App, key)
		}
	}
	if final.Store.Compactions < 1 || final.Store.ReclaimedBytes <= 0 {
		t.Errorf("auto-compaction did not run: %+v", final.Store)
	}
}

// TestSpillReplay exercises the overflow spill path deterministically:
// occurrences that overflow a bucket's pending queue are parked in the
// archive and replayed — in order, version-filtered — when the live
// queue runs dry.
func TestSpillReplay(t *testing.T) {
	store, err := tracestore.Open(t.TempDir(), tracestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	f, err := New(testApps(t), Options{PendingCap: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	sig := &vm.Failure{Kind: vm.FailAssert, Func: "spill", InstrID: 3, Stack: []string{"main", "spill"}}
	b, isNew := f.table.Intern(sig, "alpha")
	if !isNew {
		t.Fatal("bucket not new")
	}

	makeMsg := func(seed int64, version int) *prod.TraceMsg {
		ring := pt.NewRing(1 << 16)
		enc := pt.NewEncoder(ring)
		enc.Chunk(0, 0)
		for i := 0; i < 50; i++ {
			enc.TNT(i%2 == 0)
		}
		enc.Finish()
		return &prod.TraceMsg{
			App: "alpha", Version: version, Ring: ring,
			Failure: sig, Seed: seed, Instrs: 100 + seed,
		}
	}

	// Archive + offer like drainShard does. PendingCap 1: the first
	// message occupies the queue, the rest spill.
	for i := 0; i < 4; i++ {
		version := 0
		if i == 2 {
			version = 1 // recorded on a stale deployment
		}
		msg := makeMsg(int64(i), version)
		seq, err := store.AppendRing(msg.Failure, tracestore.Meta{
			App: msg.App, Version: msg.Version, Seed: msg.Seed, Instrs: msg.Instrs,
		}, msg.Ring)
		if err != nil {
			t.Fatalf("AppendRing %d: %v", i, err)
		}
		b.offerOrSpill(msg, true, seq)
	}
	if got := b.spills.Load(); got != 3 {
		t.Fatalf("spills = %d, want 3", got)
	}
	if got := len(b.pending); got != 1 {
		t.Fatalf("pending depth = %d, want 1", got)
	}

	// Replay at version 0: seqs 1 and 3 stream back in order; seq 2
	// (stale deployment) is filtered with accounting.
	for _, wantSeed := range []int64{1, 3} {
		occ, ok := f.replaySpilled(b, 0)
		if !ok {
			t.Fatalf("replaySpilled returned nothing (want seed %d)", wantSeed)
		}
		if occ.Seed != wantSeed {
			t.Fatalf("replayed seed = %d, want %d", occ.Seed, wantSeed)
		}
		if occ.Result.Failure != sig || occ.Result.Stats.Instrs != 100+wantSeed {
			t.Fatalf("replayed occurrence = %+v", occ)
		}
		if occ.Events == nil {
			t.Fatal("replayed occurrence has no event stream")
		}
		n := 0
		for occ.Events.Next() != nil {
			n++
		}
		if n != 51 { // Chunk + 50 TNTs
			t.Fatalf("replayed stream decoded %d events, want 51", n)
		}
	}
	if _, ok := f.replaySpilled(b, 0); ok {
		t.Fatal("replaySpilled returned a fourth occurrence")
	}
	if got := b.staleDrops.Load(); got != 1 {
		t.Fatalf("staleDrops = %d, want 1", got)
	}
	if got := b.replayed.Load(); got != 2 {
		t.Fatalf("replayed = %d, want 2", got)
	}
	// The snapshot surfaces the spill traffic.
	snap := f.Snapshot()
	if snap.Spills != 3 || snap.Replayed != 2 {
		t.Fatalf("snapshot spills=%d replayed=%d, want 3/2", snap.Spills, snap.Replayed)
	}
	if !snap.StoreEnabled || snap.Store.Records != 4 {
		t.Fatalf("snapshot store stats = %+v", snap.Store)
	}
}
