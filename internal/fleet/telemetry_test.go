package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// TestFleetTelemetryEndpoint runs a full telemetry-enabled fleet with
// the live introspection endpoint bound to an ephemeral port, scrapes
// /metrics and /debug/er mid-run and after resolution, and checks the
// exposition covers every instrumented layer. Run with -race: the
// scrapes race the producers, triage, and pipeline workers by design.
func TestFleetTelemetryEndpoint(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTracer(8)
	f, err := New(testApps(t), Options{
		Shards:         4,
		Workers:        4,
		MachinesPerApp: 2,
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
		SolverSessions: true,
		Telemetry:      reg,
		Tracer:         tr,
		ListenAddr:     "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := f.IntrospectionAddr()
	if addr == "" {
		t.Fatal("no introspection address")
	}

	// Scrape while the fleet is hot (races with every subsystem).
	if _, err := httpGet(t, "http://"+addr+"/metrics"); err != nil {
		t.Fatalf("mid-run /metrics: %v", err)
	}
	if _, err := httpGet(t, "http://"+addr+"/debug/er"); err != nil {
		t.Fatalf("mid-run /debug/er: %v", err)
	}

	res, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v", b.App, b.Reproduced, b.Verified)
		}
	}

	// The endpoint closed with Wait.
	if _, err := httpGet(t, "http://"+addr+"/metrics"); err == nil {
		t.Error("endpoint still serving after Wait")
	}

	// The registry covers every layer; render the final exposition
	// directly (the same bytes /metrics served).
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	body := sb.String()
	for _, name := range []string{
		"er_fleet_ingest_accepted_total",
		"er_fleet_machine_runs_total",
		"er_fleet_buckets_resolved_total",
		"er_fleet_occurrences_total",
		"er_core_stage_seconds",
		"er_core_reproduced_total",
		"er_symex_runs_total",
		"er_solver_solves_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if !strings.Contains(body, `er_fleet_buckets{state="reproduced"} 3`) {
		t.Errorf("bucket state gauge wrong:\n%s", grepLines(body, "er_fleet_buckets{"))
	}

	// Span trees: one finished reconstruction per bucket.
	if got := tr.Finished(); got != 3 {
		t.Errorf("finished span trees = %d, want 3", got)
	}
	for _, root := range tr.Recent() {
		if root.Name != "reconstruction" || root.Open {
			t.Errorf("bad root: %+v", root)
		}
	}
}

// TestFleetDebugEndpointJSON checks /debug/er serves a parseable JSON
// snapshot with per-bucket state and recent span trees.
func TestFleetDebugEndpointJSON(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTracer(8)
	f, err := New(testApps(t), Options{
		Workers:        4,
		MachinesPerApp: 2,
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
		Telemetry:      reg,
		Tracer:         tr,
		ListenAddr:     "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := f.IntrospectionAddr()
	body, err := httpGet(t, "http://"+addr+"/debug/er")
	if err != nil {
		t.Fatalf("/debug/er: %v", err)
	}
	var doc struct {
		Time    string          `json:"time"`
		State   json.RawMessage `json:"state"`
		Metrics json.RawMessage `json:"metrics"`
		Spans   json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("debug JSON: %v\n%s", err, body)
	}
	if doc.Time == "" || doc.State == nil {
		t.Errorf("debug doc incomplete: %s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal(doc.State, &snap); err != nil {
		t.Fatalf("state is not a fleet snapshot: %v", err)
	}
	if _, err := f.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

// TestSnapshotRaceDuringIngest is the silent-stats-loss regression:
// hammer Snapshot (and the registry collection callbacks) from
// several goroutines while the fleet ingests, triages, and runs
// pipelines. Run with -race. It also checks solver-session counters
// are internally consistent in every observed snapshot — the
// field-per-atomic mirror this replaced could surface torn
// combinations such as reused+blasted exceeding constraints seen.
func TestSnapshotRaceDuringIngest(t *testing.T) {
	reg := telemetry.New()
	f, err := New(testApps(t), Options{
		Workers:        4,
		MachinesPerApp: 3,
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
		SolverSessions: true,
		Telemetry:      reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var torn []string
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := f.Snapshot()
				for _, b := range s.Buckets {
					// Solves/reuse/blast are published together; any
					// cross-field inconsistency means a torn read.
					if b.SolverReused > 0 && b.SolverSolves == 0 {
						mu.Lock()
						torn = append(torn, fmt.Sprintf(
							"bucket %s: reused=%d with solves=0", b.App, b.SolverReused))
						mu.Unlock()
					}
				}
				_ = reg.Snapshot() // collection callbacks race ingest too
				var sb strings.Builder
				_ = reg.WritePrometheus(&sb)
			}
		}()
	}

	res, err := f.Wait()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(torn) > 0 {
		t.Errorf("torn solver-stat reads observed: %v", torn)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced {
			t.Errorf("bucket %s not reproduced under snapshot hammer", b.App)
		}
	}
}

func httpGet(t *testing.T, url string) (string, error) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return string(b), nil
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestFleetAbsintTelemetryRoundTrip runs an absint-enabled fleet whose
// app set includes a module with a provably out-of-bounds store in a
// dead helper, scrapes /metrics and /debug/er, and checks the
// er_absint_* series round-trip against the fleet snapshot.
func TestFleetAbsintTelemetryRoundTrip(t *testing.T) {
	reg := telemetry.New()
	apps := testApps(t)
	apps = append(apps, App{
		Name: "delta",
		// never() is unreachable at runtime but statically analyzed:
		// the 400-byte offset into a 16-byte global is a provable OOB,
		// so registration must count one error-level lint proof while
		// main stays reproducible.
		Module: compile(t, "delta", `
int small[4];
func never() {
	small[100] = 1;
}
func main() int {
	int z = input32("z");
	assert(z != 9, "delta bug");
	return 0;
}`),
		Failing: func() *vm.Workload { return vm.NewWorkload().Add("z", 9) },
		Seed:    1,
	})
	f, err := New(apps, Options{
		Workers:        4,
		MachinesPerApp: 1,
		Pace:           50 * time.Microsecond,
		Timeout:        60 * time.Second,
		SolverSessions: true,
		Absint:         true,
		Telemetry:      reg,
		ListenAddr:     "127.0.0.1:0",
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := f.IntrospectionAddr()
	if body, err := httpGet(t, "http://"+addr+"/metrics"); err != nil {
		t.Fatalf("mid-run /metrics: %v", err)
	} else if !strings.Contains(body, "er_absint_lint_proofs_total") {
		t.Errorf("mid-run exposition missing er_absint_lint_proofs_total")
	}
	if _, err := httpGet(t, "http://"+addr+"/debug/er"); err != nil {
		t.Fatalf("mid-run /debug/er: %v", err)
	}
	res, err := f.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for _, b := range res.Buckets {
		if !b.Reproduced || !b.Verified {
			t.Errorf("bucket %s: reproduced=%v verified=%v", b.App, b.Reproduced, b.Verified)
		}
	}
	snap := res.Final
	if snap.LintProofs == 0 {
		t.Errorf("no lint proofs counted despite the provable OOB in delta")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	body := sb.String()
	for _, name := range []string{
		"er_absint_lint_proofs_total",
		"er_absint_discharged_total",
		"er_absint_lemmas_total",
		"er_absint_facts_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	want := fmt.Sprintf("er_absint_lint_proofs_total %d", snap.LintProofs)
	if !strings.Contains(body, want) {
		t.Errorf("lint proofs mismatch: want %q in\n%s", want, grepLines(body, "er_absint"))
	}
	// Session-side absint counters must agree between snapshot
	// aggregation and the registry (both read the same IncStats).
	if snap.AbsintDischarged > 0 {
		if !strings.Contains(body, "er_absint_discharged_total") {
			t.Errorf("discharged counter missing from exposition")
		}
	}
	// The verified buckets of an absint fleet carry mined invariants.
	mined := 0
	for _, b := range snap.Buckets {
		mined += b.AbsintMined
	}
	if mined == 0 {
		t.Errorf("no bucket mined static invariant candidates")
	}
}
