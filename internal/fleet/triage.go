package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"execrecon/internal/core"
	"execrecon/internal/prod"
	"execrecon/internal/solver"
	"execrecon/internal/vm"
)

// BucketState is a bucket's pipeline lifecycle.
type BucketState int32

const (
	// BucketQueued: distinct failure discovered, pipeline waiting
	// for a scheduler worker.
	BucketQueued BucketState = iota
	// BucketRunning: a worker is driving this bucket's ER pipeline.
	BucketRunning
	// BucketReproduced: the pipeline emitted a verified test case.
	BucketReproduced
	// BucketFailed: the pipeline ended without reproducing.
	BucketFailed
)

func (s BucketState) String() string {
	switch s {
	case BucketQueued:
		return "queued"
	case BucketRunning:
		return "running"
	case BucketReproduced:
		return "reproduced"
	case BucketFailed:
		return "failed"
	}
	return "unknown"
}

// Bucket groups all reoccurrences of one failure signature. The first
// occurrence creates the bucket (and spawns ER work); subsequent
// occurrences only increment counters and queue for the bucket's
// pipeline — the dedup that keeps one fleet-wide failure from
// spawning one analysis per machine.
type Bucket struct {
	ID   int
	Hash uint64
	// Sig is the canonical failure signature (from the first
	// occurrence).
	Sig *vm.Failure
	// App is the application name reported by the occurrences. It is
	// part of the dedup key (buckets intern by (app, signature), since
	// distinct programs can share a signature) and routes deployment
	// rollouts.
	App string

	pending chan *prod.TraceMsg

	// spilled holds archive sequence numbers of occurrences that
	// overflowed the in-RAM pending queue while the fleet runs with a
	// trace store: instead of dropping them, triage parks the archived
	// seq here and the bucket's pipeline replays them from disk when
	// the live queue runs dry (cold/backlogged buckets never lose
	// reoccurrences).
	spillMu sync.Mutex
	spilled []uint64

	occurrences  atomic.Int64 // total matching occurrences seen by triage
	pendingDrops atomic.Int64 // occurrences dropped because pending was full
	spills       atomic.Int64 // occurrences parked in the archive on overflow
	replayed     atomic.Int64 // spilled occurrences replayed from the archive
	staleDrops   atomic.Int64 // occurrences dropped for an out-of-date version
	badDrops     atomic.Int64 // occurrences dropped as undecodable/truncated
	state        atomic.Int32
	iterations   atomic.Int32 // analysis iterations completed so far
	// remoteResolved latches the first ResolveBucket call in remote-node
	// mode, making resolution idempotent across lease re-dispatch and
	// coordinator commit-log replay.
	remoteResolved atomic.Bool
	// solverStats is the pipeline's persistent-solver progress,
	// mirrored after each fed occurrence (nil when the fleet runs with
	// fresh-per-query solving). One pointer store publishes the whole
	// struct, so a concurrent Snapshot always reads an internally
	// consistent set of counters — the previous field-per-atomic
	// mirror could be observed mid-update (e.g. reused > solves). The
	// session itself lives on the pipeline and dies with it when the
	// bucket retires; only this snapshot outlives it.
	solverStats atomic.Pointer[solver.IncStats]
	// specStats mirrors the pipeline's speculative pre-solve outcome
	// counters the same way (nil until the first speculation window).
	specStats atomic.Pointer[SpecStats]
	report    atomic.Pointer[core.Report]
	firstSeen time.Time
	doneAt    atomic.Int64 // unix nanos; 0 while in flight
}

// Occurrences returns the total matching occurrences triaged into the
// bucket (including ones later dropped as stale or overflowed).
func (b *Bucket) Occurrences() int64 { return b.occurrences.Load() }

// recordSolverStats mirrors the pipeline's persistent-solver counters
// into the bucket so concurrent Snapshot calls can read them without
// touching the (single-goroutine) pipeline. The whole struct is
// published with a single pointer store: readers see either the
// previous snapshot or this one, never a torn mix of the two.
func (b *Bucket) recordSolverStats(p *core.Pipeline) {
	st := p.SolverStats()
	b.solverStats.Store(&st)
}

// loadSolverStats returns the last published solver-session snapshot
// (zero value before the first publication).
func (b *Bucket) loadSolverStats() solver.IncStats {
	if st := b.solverStats.Load(); st != nil {
		return *st
	}
	return solver.IncStats{}
}

// SpecStats counts a bucket pipeline's speculative pre-solve outcomes
// (Options.Speculate): launched, hit (warmed state fed the next
// query's fast path), completed-but-unhelpful, and cancelled.
type SpecStats struct {
	Speculations int64
	Hits         int64
	Misses       int64
	Discards     int64
}

// recordSpecStats mirrors the pipeline report's speculation counters.
// Unlike recordSolverStats it reads only the driver-owned report, so
// it is safe to call while a speculation goroutine holds the session —
// which is exactly when the scheduler calls it.
func (b *Bucket) recordSpecStats(p *core.Pipeline) {
	rep := p.Report()
	b.specStats.Store(&SpecStats{
		Speculations: int64(rep.Speculations),
		Hits:         int64(rep.SpecHits),
		Misses:       int64(rep.SpecMisses),
		Discards:     int64(rep.SpecDiscards),
	})
}

// loadSpecStats returns the last published speculation snapshot.
func (b *Bucket) loadSpecStats() SpecStats {
	if st := b.specStats.Load(); st != nil {
		return *st
	}
	return SpecStats{}
}

// State returns the bucket's lifecycle state.
func (b *Bucket) State() BucketState { return BucketState(b.state.Load()) }

// offer enqueues a reoccurrence for the bucket's pipeline without
// blocking triage; a full pending queue drops with accounting (the
// pipeline only ever needs "the next" occurrence, so backlog beyond
// the queue bound is redundant anyway).
func (b *Bucket) offer(msg *prod.TraceMsg) bool {
	return b.offerOrSpill(msg, false, 0)
}

// offerOrSpill is offer with a spill fallback: when the pending queue
// is full and the occurrence is already archived under seq, the seq is
// parked on the spill list for later replay instead of being dropped.
func (b *Bucket) offerOrSpill(msg *prod.TraceMsg, archived bool, seq uint64) bool {
	b.occurrences.Add(1)
	select {
	case b.pending <- msg:
		return true
	default:
		if archived {
			b.spillMu.Lock()
			b.spilled = append(b.spilled, seq)
			b.spillMu.Unlock()
			b.spills.Add(1)
		} else {
			b.pendingDrops.Add(1)
		}
		return false
	}
}

// popSpill dequeues the oldest spilled archive sequence number.
func (b *Bucket) popSpill() (uint64, bool) {
	b.spillMu.Lock()
	defer b.spillMu.Unlock()
	if len(b.spilled) == 0 {
		return 0, false
	}
	seq := b.spilled[0]
	b.spilled = b.spilled[1:]
	return seq, true
}

// Table is the concurrent signature-hash bucket index. Lookups hash
// the failure, then resolve collisions by chaining and re-checking
// full SameSignature equality, so two distinct failures that happen
// to share a hash still get distinct buckets.
type Table struct {
	mu         sync.RWMutex
	byHash     map[uint64][]*Bucket
	all        []*Bucket
	pendingCap int
	// hash is the signature hash function; tests override it to
	// force collisions.
	hash func(*vm.Failure) uint64
}

// NewTable returns an empty bucket table whose buckets hold at most
// pendingCap queued reoccurrences (floored at 1).
func NewTable(pendingCap int) *Table {
	return newTableWithHash(pendingCap, SigHash)
}

func newTableWithHash(pendingCap int, hash func(*vm.Failure) uint64) *Table {
	if pendingCap < 1 {
		pendingCap = 1
	}
	return &Table{
		byHash:     make(map[uint64][]*Bucket),
		pendingCap: pendingCap,
		hash:       hash,
	}
}

// Intern returns the bucket for the (app, failure) pair, creating it
// if the pair is new. isNew is true exactly once per distinct pair —
// the dedup edge that spawns pipeline work. The app participates in
// the key because signatures only locate a site within one program:
// different applications can legitimately share a signature (most
// prominently scheduler-level deadlocks, which all report the same
// located-nowhere <scheduler> site) and must still get distinct
// buckets, distinct pipelines, and distinct rollout targets.
func (t *Table) Intern(f *vm.Failure, app string) (b *Bucket, isNew bool) {
	h := t.hash(f)

	t.mu.RLock()
	for _, c := range t.byHash[h] {
		if c.App == app && c.Sig.SameSignature(f) {
			t.mu.RUnlock()
			return c, false
		}
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.byHash[h] {
		if c.App == app && c.Sig.SameSignature(f) {
			return c, false // raced with another inserter
		}
	}
	b = &Bucket{
		ID:        len(t.all),
		Hash:      h,
		Sig:       f,
		App:       app,
		pending:   make(chan *prod.TraceMsg, t.pendingCap),
		firstSeen: time.Now(),
	}
	t.byHash[h] = append(t.byHash[h], b)
	t.all = append(t.all, b)
	return b, true
}

// Buckets returns a snapshot of all buckets in creation order.
func (t *Table) Buckets() []*Bucket {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Bucket, len(t.all))
	copy(out, t.all)
	return out
}

// Len returns the number of distinct signatures seen.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.all)
}
