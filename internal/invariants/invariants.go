// Package invariants implements a Daikon-style likely-invariant
// detector and a MIMIC-style failure localizer (§5.4). Invariants are
// inferred over function entry and exit program points from passing
// executions; presented with a failing execution (in ER's use, the
// reconstructed one), the localizer reports the invariants the
// failure violates, ranked, as candidate root causes.
package invariants

import (
	"fmt"
	"sort"

	"execrecon/internal/ir"
	"execrecon/internal/vm"
)

// Obs is one observation at a program point: the concrete values of
// the point's variables (arguments at entry, return value at exit).
type Obs struct {
	Point string // "func:enter" or "func:exit"
	Vars  []int64
}

// Collect runs mod under the workload and gathers observations at
// every function entry and exit.
func Collect(mod *ir.Module, w *vm.Workload, seed int64) ([]Obs, *vm.Result) {
	return CollectEntry(mod, "main", w, seed)
}

// CollectEntry is Collect with an explicit entry function.
func CollectEntry(mod *ir.Module, entry string, w *vm.Workload, seed int64) ([]Obs, *vm.Result) {
	var obs []Obs
	cfg := vm.Config{
		Input: w,
		Seed:  seed,
		OnCall: func(fn string, args []uint64) {
			vars := make([]int64, len(args))
			for i, a := range args {
				vars[i] = int64(a)
			}
			obs = append(obs, Obs{Point: fn + ":enter", Vars: vars})
		},
		OnReturn: func(fn string, ret uint64) {
			obs = append(obs, Obs{Point: fn + ":exit", Vars: []int64{int64(ret)}})
		},
	}
	res := vm.New(mod, cfg).Run(entry)
	return obs, res
}

// varInv tracks candidate unary invariants of one variable.
type varInv struct {
	samples  int
	min, max int64
	nonzero  bool
	distinct map[int64]bool // capped; nil once overflowed
}

const maxDistinct = 5

func newVarInv() *varInv {
	return &varInv{min: 1<<63 - 1, max: -(1 << 63), nonzero: true, distinct: map[int64]bool{}}
}

func (v *varInv) observe(x int64) {
	v.samples++
	if x < v.min {
		v.min = x
	}
	if x > v.max {
		v.max = x
	}
	if x == 0 {
		v.nonzero = false
	}
	if v.distinct != nil {
		v.distinct[x] = true
		if len(v.distinct) > maxDistinct {
			v.distinct = nil
		}
	}
}

// pairInv tracks candidate binary invariants between two variables of
// one point.
type pairInv struct {
	eq, le, ge bool
}

// pointInv aggregates invariants of one program point.
type pointInv struct {
	nvars int
	vars  []*varInv
	pairs map[[2]int]*pairInv
}

// Set is an inferred likely-invariant set.
type Set struct {
	points map[string]*pointInv
	runs   int
}

// Infer merges observations from several passing runs (the paper's
// case study uses 4) into a likely-invariant set.
func Infer(passingRuns [][]Obs) *Set {
	s := &Set{points: make(map[string]*pointInv), runs: len(passingRuns)}
	for _, run := range passingRuns {
		for _, o := range run {
			p := s.points[o.Point]
			if p == nil {
				p = &pointInv{nvars: len(o.Vars), pairs: make(map[[2]int]*pairInv)}
				for range o.Vars {
					p.vars = append(p.vars, newVarInv())
				}
				for i := 0; i < len(o.Vars); i++ {
					for j := i + 1; j < len(o.Vars); j++ {
						p.pairs[[2]int{i, j}] = &pairInv{eq: true, le: true, ge: true}
					}
				}
				s.points[o.Point] = p
			}
			if len(o.Vars) != p.nvars {
				continue
			}
			for i, x := range o.Vars {
				p.vars[i].observe(x)
			}
			for ij, pr := range p.pairs {
				a, b := o.Vars[ij[0]], o.Vars[ij[1]]
				if a != b {
					pr.eq = false
				}
				if a > b {
					pr.le = false
				}
				if a < b {
					pr.ge = false
				}
			}
		}
	}
	return s
}

// Violation is one invariant broken by the failing execution.
type Violation struct {
	Point string
	Desc  string
	// Confidence grows with the number of supporting samples.
	Confidence int
}

// Check evaluates the failing run's observations against the set,
// returning the violated invariants ranked by confidence.
func (s *Set) Check(failing []Obs) []Violation {
	var out []Violation
	seen := make(map[string]bool)
	add := func(point, desc string, conf int) {
		key := point + "|" + desc
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Violation{Point: point, Desc: desc, Confidence: conf})
	}
	for _, o := range failing {
		p := s.points[o.Point]
		if p == nil {
			add(o.Point, "program point never reached in passing runs", 1)
			continue
		}
		if len(o.Vars) != p.nvars {
			continue
		}
		for i, x := range o.Vars {
			v := p.vars[i]
			if x < v.min || x > v.max {
				add(o.Point, fmt.Sprintf("var%d = %d outside observed range [%d, %d]", i, x, v.min, v.max), v.samples)
			}
			if v.nonzero && x == 0 {
				add(o.Point, fmt.Sprintf("var%d == 0 (always nonzero in passing runs)", i), v.samples)
			}
			if v.distinct != nil && !v.distinct[x] {
				add(o.Point, fmt.Sprintf("var%d = %d not in observed value set", i, x), v.samples)
			}
		}
		for ij, pr := range p.pairs {
			a, b := o.Vars[ij[0]], o.Vars[ij[1]]
			if pr.eq && a != b {
				add(o.Point, fmt.Sprintf("var%d == var%d violated (%d vs %d)", ij[0], ij[1], a, b), p.vars[ij[0]].samples)
			}
			if pr.le && a > b {
				add(o.Point, fmt.Sprintf("var%d <= var%d violated (%d vs %d)", ij[0], ij[1], a, b), p.vars[ij[0]].samples)
			}
			if pr.ge && a < b {
				add(o.Point, fmt.Sprintf("var%d >= var%d violated (%d vs %d)", ij[0], ij[1], a, b), p.vars[ij[0]].samples)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Point < out[j].Point
	})
	return out
}

// NumPoints returns the number of program points with invariants.
func (s *Set) NumPoints() int { return len(s.points) }

// StaticCandidate is a candidate invariant proposed by static
// analysis (internal/absint mines these from its interval facts):
// at Point, variable Var (an argument index, or -1 for the return
// value) lies in [Min,Max], and is nonzero when Nonzero is set.
//
// Candidates are MIMIC-style hypotheses: they become usable solver
// assumptions only after VerifyStatic confirms them against the
// concrete observations of a reproduced input.
type StaticCandidate struct {
	Point    string // "func:enter" or "func:exit"
	Var      int    // argument index, or -1 for the return value
	Min, Max int64
	Nonzero  bool
}

func (c StaticCandidate) String() string {
	v := fmt.Sprintf("var%d", c.Var)
	if c.Var < 0 {
		v = "ret"
	}
	s := fmt.Sprintf("%s: %d <= %s <= %d", c.Point, c.Min, v, c.Max)
	if c.Nonzero {
		s += " (nonzero)"
	}
	return s
}

// holds reports whether the candidate is consistent with one
// observation at its point.
func (c StaticCandidate) holds(o Obs) bool {
	i := c.Var
	if i < 0 {
		i = 0 // exit points record the return value as var 0
	}
	if i >= len(o.Vars) {
		return true // point arity mismatch: nothing to contradict
	}
	x := o.Vars[i]
	if x < c.Min || x > c.Max {
		return false
	}
	if c.Nonzero && x == 0 {
		return false
	}
	return true
}

// VerifyStatic filters cands down to those verified by the observed
// runs: the candidate's point was observed at least once and no
// observation violates it. Unobserved candidates are dropped — an
// assumption that was never exercised on the reproduced input has no
// concrete evidence behind it.
func VerifyStatic(cands []StaticCandidate, runs [][]Obs) []StaticCandidate {
	var out []StaticCandidate
	for _, c := range cands {
		seen, ok := false, true
		for _, run := range runs {
			for _, o := range run {
				if o.Point != c.Point {
					continue
				}
				seen = true
				if !c.holds(o) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if seen && ok {
			out = append(out, c)
		}
	}
	return out
}
