package invariants_test

import (
	"strings"
	"testing"

	"execrecon/internal/invariants"
	"execrecon/internal/minc"
	"execrecon/internal/vm"
)

const invProg = `
func helper(int a, int b) int {
	return a + b;
}
func main() int {
	int n = input32("n");
	if (n <= 0 || n > 32) { return -1; }
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		acc = helper(acc, input32("v"));
	}
	output(acc);
	return 0;
}`

func TestCollect(t *testing.T) {
	mod, err := minc.Compile("t", invProg)
	if err != nil {
		t.Fatal(err)
	}
	obs, res := invariants.Collect(mod, vm.NewWorkload().Add("n", 2).Add("v", 5, 6), 1)
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	var enters, exits int
	for _, o := range obs {
		if strings.HasSuffix(o.Point, ":enter") {
			enters++
		}
		if strings.HasSuffix(o.Point, ":exit") {
			exits++
		}
	}
	if enters != 3 || exits != 3 { // main + 2x helper
		t.Errorf("enters=%d exits=%d", enters, exits)
	}
}

func TestInferAndCheck(t *testing.T) {
	// Passing observations keep helper's second argument in [1,9];
	// the failing run passes 100.
	passing := [][]invariants.Obs{
		{{Point: "f:enter", Vars: []int64{0, 3}}, {Point: "f:enter", Vars: []int64{3, 9}}},
		{{Point: "f:enter", Vars: []int64{0, 1}}, {Point: "f:enter", Vars: []int64{1, 5}}},
		{{Point: "f:enter", Vars: []int64{0, 2}}},
		{{Point: "f:enter", Vars: []int64{0, 7}}},
	}
	set := invariants.Infer(passing)
	if set.NumPoints() != 1 {
		t.Fatalf("points: %d", set.NumPoints())
	}
	viol := set.Check([]invariants.Obs{{Point: "f:enter", Vars: []int64{0, 100}}})
	if len(viol) == 0 {
		t.Fatal("no violations for out-of-range value")
	}
	found := false
	for _, v := range viol {
		if strings.Contains(v.Desc, "outside observed range") {
			found = true
		}
	}
	if !found {
		t.Errorf("range violation missing: %v", viol)
	}
	// In-range observation: no violations.
	if got := set.Check([]invariants.Obs{{Point: "f:enter", Vars: []int64{1, 4}}}); len(got) != 0 {
		t.Errorf("unexpected violations: %v", got)
	}
}

func TestPairInvariants(t *testing.T) {
	passing := [][]invariants.Obs{
		{{Point: "g:enter", Vars: []int64{1, 5}}, {Point: "g:enter", Vars: []int64{2, 7}}},
		{{Point: "g:enter", Vars: []int64{3, 30}}},
	}
	set := invariants.Infer(passing)
	// var0 <= var1 held in all passing runs; 10 > 4 violates it.
	viol := set.Check([]invariants.Obs{{Point: "g:enter", Vars: []int64{10, 4}}})
	found := false
	for _, v := range viol {
		if strings.Contains(v.Desc, "var0 <= var1") {
			found = true
		}
	}
	if !found {
		t.Errorf("pair violation missing: %v", viol)
	}
}

func TestUnseenPoint(t *testing.T) {
	set := invariants.Infer([][]invariants.Obs{{{Point: "a:enter", Vars: []int64{1}}}})
	viol := set.Check([]invariants.Obs{{Point: "never:enter", Vars: []int64{0}}})
	if len(viol) != 1 || !strings.Contains(viol[0].Desc, "never reached") {
		t.Errorf("unseen point: %v", viol)
	}
}

func TestNonZeroInvariant(t *testing.T) {
	passing := [][]invariants.Obs{
		{{Point: "h:exit", Vars: []int64{4}}, {Point: "h:exit", Vars: []int64{9}}},
	}
	set := invariants.Infer(passing)
	viol := set.Check([]invariants.Obs{{Point: "h:exit", Vars: []int64{0}}})
	found := false
	for _, v := range viol {
		if strings.Contains(v.Desc, "always nonzero") {
			found = true
		}
	}
	if !found {
		t.Errorf("nonzero violation missing: %v", viol)
	}
}

func TestViolationRanking(t *testing.T) {
	// The higher-support invariant must rank first.
	passing := [][]invariants.Obs{}
	run := []invariants.Obs{}
	for i := 0; i < 50; i++ {
		run = append(run, invariants.Obs{Point: "hot:enter", Vars: []int64{1}})
	}
	run = append(run, invariants.Obs{Point: "cold:enter", Vars: []int64{2}})
	passing = append(passing, run)
	set := invariants.Infer(passing)
	viol := set.Check([]invariants.Obs{
		{Point: "cold:enter", Vars: []int64{99}},
		{Point: "hot:enter", Vars: []int64{99}},
	})
	if len(viol) < 2 {
		t.Fatalf("violations: %v", viol)
	}
	if viol[0].Point != "hot:enter" {
		t.Errorf("ranking wrong: %v", viol)
	}
}
