// Package ir defines the typed register intermediate representation
// shared by the concrete interpreter (internal/vm), the PT-like trace
// decoder (internal/pt), and the shepherded symbolic executor
// (internal/symex). It plays the role LLVM IR plays in the paper's
// prototype: the common substrate onto which control-flow traces are
// mapped and over which symbolic execution runs (§4).
//
// The machine is a register machine: each function owns a flat file
// of 64-bit registers. Instruction semantics are driven by an explicit
// operation width (8/16/32/64 bits). Memory is object-granular:
// addresses pack an object identifier in the high 32 bits and a byte
// offset in the low 32 bits, so the interpreter detects NULL
// dereferences, out-of-bounds accesses, and use-after-free natively —
// the failure classes of Table 1.
package ir

import (
	"fmt"
	"sync"
)

// Width is an operation width in bits.
type Width uint8

// Supported operation widths.
const (
	W8  Width = 8
	W16 Width = 16
	W32 Width = 32
	W64 Width = 64
)

// Bytes returns the width in bytes.
func (w Width) Bytes() int { return int(w) / 8 }

// Op enumerates instruction operations.
type Op uint8

// Instruction operations. BinOp-style operations read A and B and
// write Dst; comparison results are 0 or 1.
const (
	OpInvalid Op = iota

	// Data movement.
	OpConst // Dst = A.Imm
	OpMov   // Dst = A (with truncation to W)

	// Integer arithmetic (width W, wrapping).
	OpAdd
	OpSub
	OpMul
	OpUDiv // division by zero is a failure
	OpURem
	OpSDiv
	OpSRem

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Comparisons (Dst is 0/1, operands width W).
	OpEq
	OpNe
	OpUlt
	OpUle
	OpSlt
	OpSle

	// Width conversion. OpZext/OpSext widen A from width W to 64
	// bits in the register; OpTrunc truncates to W.
	OpZext
	OpSext
	OpTrunc

	// Memory. Addresses are 64-bit object-packed pointers.
	OpLoad     // Dst = mem[A] (width W)
	OpStore    // mem[A] = B (width W)
	OpFrame    // Dst = address of frame slot at offset A.Imm
	OpGlobal   // Dst = address of global #A.Imm
	OpMalloc   // Dst = new object of A bytes
	OpFree     // free object at A
	OpFuncAddr // Dst = index of function named Tag (for indirect calls)

	// Control flow.
	OpBr     // jump to Blk
	OpCondBr // if A != 0 jump to Blk else Blk2 (emits a TNT bit)
	OpCall   // direct call to Tag with Args; Dst = return value
	OpICall  // indirect call: callee index in A (emits a TIP packet)
	OpRet    // return A (emits a compressed-ret TNT bit)

	// Environment and failure intrinsics.
	OpInput   // Dst = next value from input stream Tag (width W)
	OpAbort   // fail: program abort (Tag = message)
	OpAssert  // fail if A == 0 (Tag = message)
	OpOutput  // append A to the observable output (width W)
	OpPtWrite // record A into the trace as a PTW packet (data value)

	// Threads.
	OpSpawn  // Dst = thread id running function Tag with argument A
	OpJoin   // join thread id A
	OpLock   // acquire mutex A
	OpUnlock // release mutex A
	OpYield  // scheduling hint: end the current chunk
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpUDiv: "udiv", OpURem: "urem", OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpEq: "eq", OpNe: "ne", OpUlt: "ult", OpUle: "ule", OpSlt: "slt", OpSle: "sle",
	OpZext: "zext", OpSext: "sext", OpTrunc: "trunc",
	OpLoad: "load", OpStore: "store", OpFrame: "frame", OpGlobal: "global",
	OpMalloc: "malloc", OpFree: "free", OpFuncAddr: "funcaddr",
	OpBr: "br", OpCondBr: "condbr", OpCall: "call", OpICall: "icall", OpRet: "ret",
	OpInput: "input", OpAbort: "abort", OpAssert: "assert",
	OpOutput: "output", OpPtWrite: "ptwrite",
	OpSpawn: "spawn", OpJoin: "join", OpLock: "lock", OpUnlock: "unlock",
	OpYield: "yield",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpBr, OpCondBr, OpRet, OpAbort:
		return true
	}
	return false
}

// ArgKind distinguishes operand encodings.
type ArgKind uint8

// Operand kinds.
const (
	ArgNone ArgKind = iota
	ArgReg          // register operand
	ArgImm          // immediate operand
)

// Arg is an instruction operand: a register index or an immediate.
type Arg struct {
	K   ArgKind
	Reg int
	Imm uint64
}

// Reg returns a register operand.
func Reg(r int) Arg { return Arg{K: ArgReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v uint64) Arg { return Arg{K: ArgImm, Imm: v} }

// String renders the operand.
func (a Arg) String() string {
	switch a.K {
	case ArgReg:
		return fmt.Sprintf("r%d", a.Reg)
	case ArgImm:
		return fmt.Sprintf("#%d", a.Imm)
	}
	return "_"
}

// Instr is a single instruction. The zero value is invalid.
type Instr struct {
	Op   Op
	W    Width
	Dst  int
	A, B Arg
	// Blk and Blk2 are branch targets (block indices). For OpCondBr,
	// Blk is the taken (A != 0) target.
	Blk, Blk2 int
	// Tag names the callee (OpCall, OpSpawn, OpFuncAddr), the input
	// stream (OpInput), or the failure message (OpAbort, OpAssert).
	Tag string
	// Args are call arguments.
	Args []Arg
	// ID is the per-function instruction identifier, stable across
	// instrumentation, used to name data values and match failure
	// signatures.
	ID int32
	// Line is the source line in the minc program, for diagnostics.
	Line int32
}

// String renders the instruction.
func (in *Instr) String() string {
	switch in.Op {
	case OpBr:
		return fmt.Sprintf("br b%d", in.Blk)
	case OpCondBr:
		return fmt.Sprintf("condbr %s b%d b%d", in.A, in.Blk, in.Blk2)
	case OpCall:
		return fmt.Sprintf("r%d = call %s%v", in.Dst, in.Tag, in.Args)
	case OpICall:
		return fmt.Sprintf("r%d = icall %s%v", in.Dst, in.A, in.Args)
	case OpRet:
		return fmt.Sprintf("ret %s", in.A)
	case OpConst:
		return fmt.Sprintf("r%d = const.%d %d", in.Dst, in.W, in.A.Imm)
	case OpInput:
		return fmt.Sprintf("r%d = input.%d %q", in.Dst, in.W, in.Tag)
	case OpStore:
		return fmt.Sprintf("store.%d [%s] %s", in.W, in.A, in.B)
	case OpLoad:
		return fmt.Sprintf("r%d = load.%d [%s]", in.Dst, in.W, in.A)
	default:
		return fmt.Sprintf("r%d = %s.%d %s %s", in.Dst, in.Op, in.W, in.A, in.B)
	}
}

// Block is a basic block: zero or more non-terminator instructions
// followed by exactly one terminator.
type Block struct {
	Index  int
	Instrs []Instr
}

// Term returns the block terminator.
func (b *Block) Term() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// Func is a function. The first NParams registers hold the arguments.
type Func struct {
	Name      string
	NParams   int
	NumRegs   int
	FrameSize int64
	Blocks    []*Block

	// nextID assigns instruction IDs; see NewInstrID.
	nextID int32
}

// NewInstrID returns a fresh instruction ID for this function.
func (f *Func) NewInstrID() int32 {
	f.nextID++
	return f.nextID
}

// Global is a module-level memory object.
type Global struct {
	Name string
	Size int64
	// Init holds the initial contents; shorter than Size means
	// zero-filled tail.
	Init []byte
}

// Module is a complete program. Once built, a Module is read-only and
// safe for concurrent execution by many VMs (a production fleet runs
// the same deployed module on every machine); the lazily built
// function index is guarded accordingly.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	idxMu   sync.RWMutex
	funcIdx map[string]int
}

// index returns the name→index map, building it on first use. Safe
// for concurrent callers.
func (m *Module) index() map[string]int {
	m.idxMu.RLock()
	idx := m.funcIdx
	m.idxMu.RUnlock()
	if idx != nil {
		return idx
	}
	m.idxMu.Lock()
	defer m.idxMu.Unlock()
	if m.funcIdx == nil {
		idx := make(map[string]int, len(m.Funcs))
		for i, f := range m.Funcs {
			idx[f.Name] = i
		}
		m.funcIdx = idx
	}
	return m.funcIdx
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	if i, ok := m.index()[name]; ok {
		return m.Funcs[i]
	}
	return nil
}

// FuncIndex returns the index of the named function, or -1.
func (m *Module) FuncIndex(name string) int {
	if i, ok := m.index()[name]; ok {
		return i
	}
	return -1
}

// AddFunc appends f to the module and invalidates the index.
func (m *Module) AddFunc(f *Func) {
	m.Funcs = append(m.Funcs, f)
	m.idxMu.Lock()
	m.funcIdx = nil
	m.idxMu.Unlock()
}

// AddGlobal appends g and returns its index.
func (m *Module) AddGlobal(g *Global) int {
	m.Globals = append(m.Globals, g)
	return len(m.Globals) - 1
}

// NumInstrs returns the static instruction count of the module.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}
