package ir

import (
	"strings"
	"testing"
)

// tinyFunc builds a minimal valid function: one block returning 0.
func tinyFunc(name string) *Func {
	f := &Func{Name: name, NumRegs: 4}
	f.Blocks = []*Block{{Index: 0, Instrs: []Instr{
		{Op: OpConst, W: W32, Dst: 0, A: Imm(0), ID: f.NewInstrID()},
		{Op: OpRet, A: Reg(0), ID: f.NewInstrID()},
	}}}
	return f
}

func TestValidateOK(t *testing.T) {
	m := &Module{Name: "t"}
	m.AddFunc(tinyFunc("main"))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Module
		want  string
	}{
		{"empty module", func() *Module { return &Module{} }, "no functions"},
		{"no blocks", func() *Module {
			m := &Module{}
			m.AddFunc(&Func{Name: "main", NumRegs: 1})
			return m
		}, "no blocks"},
		{"missing terminator", func() *Module {
			m := &Module{}
			f := &Func{Name: "main", NumRegs: 1}
			f.Blocks = []*Block{{Index: 0, Instrs: []Instr{{Op: OpConst, W: W32, Dst: 0}}}}
			m.AddFunc(f)
			return m
		}, "terminator"},
		{"register out of range", func() *Module {
			m := &Module{}
			f := &Func{Name: "main", NumRegs: 1}
			f.Blocks = []*Block{{Index: 0, Instrs: []Instr{
				{Op: OpMov, W: W32, Dst: 0, A: Reg(9)},
				{Op: OpRet, A: Imm(0)},
			}}}
			m.AddFunc(f)
			return m
		}, "out of range"},
		{"bad branch target", func() *Module {
			m := &Module{}
			f := &Func{Name: "main", NumRegs: 1}
			f.Blocks = []*Block{{Index: 0, Instrs: []Instr{{Op: OpBr, Blk: 7}}}}
			m.AddFunc(f)
			return m
		}, "block b7"},
		{"unknown callee", func() *Module {
			m := &Module{}
			f := &Func{Name: "main", NumRegs: 1}
			f.Blocks = []*Block{{Index: 0, Instrs: []Instr{
				{Op: OpCall, Dst: 0, Tag: "ghost"},
				{Op: OpRet, A: Imm(0)},
			}}}
			m.AddFunc(f)
			return m
		}, "unknown callee"},
		{"bad width", func() *Module {
			m := &Module{}
			f := &Func{Name: "main", NumRegs: 1}
			f.Blocks = []*Block{{Index: 0, Instrs: []Instr{
				{Op: OpConst, W: 7, Dst: 0},
				{Op: OpRet, A: Imm(0)},
			}}}
			m.AddFunc(f)
			return m
		}, "invalid width"},
		{"frame offset overflow", func() *Module {
			m := &Module{}
			f := &Func{Name: "main", NumRegs: 1, FrameSize: 8}
			f.Blocks = []*Block{{Index: 0, Instrs: []Instr{
				{Op: OpFrame, Dst: 0, A: Imm(64)},
				{Op: OpRet, A: Imm(0)},
			}}}
			m.AddFunc(f)
			return m
		}, "frame offset"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.build().Validate()
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestFuncLookup(t *testing.T) {
	m := &Module{}
	m.AddFunc(tinyFunc("a"))
	m.AddFunc(tinyFunc("b"))
	if m.FuncByName("a") == nil || m.FuncByName("b") == nil {
		t.Error("lookup failed")
	}
	if m.FuncByName("c") != nil {
		t.Error("ghost function found")
	}
	if m.FuncIndex("b") != 1 {
		t.Errorf("index: %d", m.FuncIndex("b"))
	}
	if m.FuncIndex("zzz") != -1 {
		t.Error("missing function index")
	}
}

func TestInstrIDsAndLookup(t *testing.T) {
	f := tinyFunc("main")
	id := f.Blocks[0].Instrs[1].ID
	bi, ii := f.FindInstrByID(id)
	if bi != 0 || ii != 1 {
		t.Errorf("found at b%d[%d]", bi, ii)
	}
	if bi, ii := f.FindInstrByID(999); bi != -1 || ii != -1 {
		t.Error("ghost instruction found")
	}
	// Fresh IDs never collide with existing ones.
	seen := map[int32]bool{id: true, f.Blocks[0].Instrs[0].ID: true}
	for i := 0; i < 100; i++ {
		nid := f.NewInstrID()
		if seen[nid] {
			t.Fatalf("duplicate ID %d", nid)
		}
		seen[nid] = true
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := &Module{Name: "t"}
	m.AddGlobal(&Global{Name: "g", Size: 4, Init: []byte{1, 2, 3, 4}})
	f := tinyFunc("main")
	f.Blocks[0].Instrs[0].Args = []Arg{Reg(1)}
	m.AddFunc(f)
	c := m.Clone()
	c.Globals[0].Init[0] = 99
	c.Funcs[0].Blocks[0].Instrs[0].Dst = 3
	c.Funcs[0].Blocks[0].Instrs[0].Args[0] = Imm(7)
	if m.Globals[0].Init[0] != 1 {
		t.Error("global init shared")
	}
	if m.Funcs[0].Blocks[0].Instrs[0].Dst != 0 {
		t.Error("instruction shared")
	}
	if m.Funcs[0].Blocks[0].Instrs[0].Args[0].K != ArgReg {
		t.Error("args slice shared")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDumpAndStrings(t *testing.T) {
	m := &Module{Name: "t"}
	m.AddGlobal(&Global{Name: "g", Size: 8})
	m.AddFunc(tinyFunc("main"))
	d := m.Dump()
	for _, want := range []string{"module t", "global @0 g", "func main", "ret"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
	if Reg(3).String() != "r3" || Imm(9).String() != "#9" {
		t.Error("arg strings")
	}
	if OpAdd.String() != "add" || !OpRet.IsTerminator() || OpAdd.IsTerminator() {
		t.Error("op metadata")
	}
	if W32.Bytes() != 4 || W8.Bytes() != 1 {
		t.Error("width bytes")
	}
}

func TestNumInstrs(t *testing.T) {
	m := &Module{}
	m.AddFunc(tinyFunc("a"))
	m.AddFunc(tinyFunc("b"))
	if m.NumInstrs() != 4 {
		t.Errorf("instrs: %d", m.NumInstrs())
	}
}
