package ir

import (
	"fmt"
	"strings"
)

// Dump renders the module as readable text, for debugging and golden
// tests.
func (m *Module) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for i, g := range m.Globals {
		fmt.Fprintf(&b, "global @%d %s [%d bytes]\n", i, g.Name, g.Size)
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(&b, "\nfunc %s(params=%d regs=%d frame=%d)\n",
			f.Name, f.NParams, f.NumRegs, f.FrameSize)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "b%d:\n", blk.Index)
			for ii := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", blk.Instrs[ii].String())
			}
		}
	}
	return b.String()
}

// InstrAt returns the instruction at (block, index), or nil.
func (f *Func) InstrAt(blk, idx int) *Instr {
	if blk < 0 || blk >= len(f.Blocks) {
		return nil
	}
	b := f.Blocks[blk]
	if idx < 0 || idx >= len(b.Instrs) {
		return nil
	}
	return &b.Instrs[idx]
}

// FindInstrByID locates the instruction with the given ID, returning
// block and index or (-1, -1).
func (f *Func) FindInstrByID(id int32) (int, int) {
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			if b.Instrs[ii].ID == id {
				return bi, ii
			}
		}
	}
	return -1, -1
}

// Clone returns a deep copy of the module. Instrumentation transforms
// clone first so the deployed binary in one "production" iteration is
// never mutated while a trace from the previous iteration is being
// analyzed.
func (m *Module) Clone() *Module {
	nm := &Module{Name: m.Name}
	for _, g := range m.Globals {
		ng := &Global{Name: g.Name, Size: g.Size, Init: append([]byte(nil), g.Init...)}
		nm.Globals = append(nm.Globals, ng)
	}
	for _, f := range m.Funcs {
		nf := &Func{
			Name:      f.Name,
			NParams:   f.NParams,
			NumRegs:   f.NumRegs,
			FrameSize: f.FrameSize,
			nextID:    f.nextID,
		}
		for _, b := range f.Blocks {
			nb := &Block{Index: b.Index, Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			for ii := range nb.Instrs {
				if nb.Instrs[ii].Args != nil {
					nb.Instrs[ii].Args = append([]Arg(nil), nb.Instrs[ii].Args...)
				}
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		nm.Funcs = append(nm.Funcs, nf)
	}
	return nm
}
