package ir

import "fmt"

// Validate checks structural well-formedness of a module: block
// termination, register and block index ranges, callee resolution,
// and width sanity. It returns the first violation found.
func (m *Module) Validate() error {
	if len(m.Funcs) == 0 {
		return fmt.Errorf("ir: module %q has no functions", m.Name)
	}
	for _, f := range m.Funcs {
		if err := m.validateFunc(f); err != nil {
			return fmt.Errorf("ir: func %s: %w", f.Name, err)
		}
	}
	return nil
}

// opWritesReg reports whether the op writes its Dst register.
func opWritesReg(o Op) bool {
	switch o {
	case OpStore, OpBr, OpCondBr, OpRet, OpAbort, OpAssert, OpOutput,
		OpPtWrite, OpFree, OpJoin, OpLock, OpUnlock, OpYield, OpInvalid:
		return false
	}
	return true
}

func validWidth(w Width) bool {
	switch w {
	case W8, W16, W32, W64:
		return true
	}
	return false
}

func (m *Module) validateFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if f.NParams > f.NumRegs {
		return fmt.Errorf("%d params exceed %d registers", f.NParams, f.NumRegs)
	}
	checkArg := func(a Arg) error {
		if a.K == ArgReg && (a.Reg < 0 || a.Reg >= f.NumRegs) {
			return fmt.Errorf("register r%d out of range [0,%d)", a.Reg, f.NumRegs)
		}
		return nil
	}
	checkBlk := func(i int) error {
		if i < 0 || i >= len(f.Blocks) {
			return fmt.Errorf("block b%d out of range", i)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if b.Index != bi {
			return fmt.Errorf("block %d has index %d", bi, b.Index)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block b%d is empty", bi)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			if in.Op.IsTerminator() != last {
				return fmt.Errorf("b%d[%d] %s: terminator placement", bi, ii, in)
			}
			if err := checkArg(in.A); err != nil {
				return fmt.Errorf("b%d[%d] %s: %w", bi, ii, in, err)
			}
			if err := checkArg(in.B); err != nil {
				return fmt.Errorf("b%d[%d] %s: %w", bi, ii, in, err)
			}
			for _, a := range in.Args {
				if err := checkArg(a); err != nil {
					return fmt.Errorf("b%d[%d] %s: %w", bi, ii, in, err)
				}
			}
			if opWritesReg(in.Op) && (in.Dst < 0 || in.Dst >= f.NumRegs) {
				return fmt.Errorf("b%d[%d] %s: dst out of range", bi, ii, in)
			}
			switch in.Op {
			case OpBr:
				if err := checkBlk(in.Blk); err != nil {
					return err
				}
			case OpCondBr:
				if err := checkBlk(in.Blk); err != nil {
					return err
				}
				if err := checkBlk(in.Blk2); err != nil {
					return err
				}
			case OpCall, OpSpawn:
				callee := m.FuncByName(in.Tag)
				if callee == nil {
					return fmt.Errorf("b%d[%d]: unknown callee %q", bi, ii, in.Tag)
				}
				if len(in.Args) != callee.NParams {
					return fmt.Errorf("b%d[%d]: %q wants %d args, got %d",
						bi, ii, in.Tag, callee.NParams, len(in.Args))
				}
			case OpFuncAddr:
				if m.FuncByName(in.Tag) == nil {
					return fmt.Errorf("b%d[%d]: unknown function %q", bi, ii, in.Tag)
				}
			case OpGlobal:
				if in.A.K != ArgImm || in.A.Imm >= uint64(len(m.Globals)) {
					return fmt.Errorf("b%d[%d]: global %s out of range", bi, ii, in.A)
				}
			case OpFrame:
				if in.A.K != ArgImm || int64(in.A.Imm) >= f.FrameSize {
					return fmt.Errorf("b%d[%d]: frame offset %s beyond frame size %d",
						bi, ii, in.A, f.FrameSize)
				}
			}
			switch in.Op {
			case OpConst, OpMov, OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpSDiv,
				OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr, OpEq, OpNe,
				OpUlt, OpUle, OpSlt, OpSle, OpZext, OpSext, OpTrunc, OpLoad,
				OpStore, OpInput, OpOutput:
				if !validWidth(in.W) {
					return fmt.Errorf("b%d[%d] %s: invalid width %d", bi, ii, in, in.W)
				}
			}
		}
	}
	return nil
}
