package keyselect

import (
	"testing"

	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
	"execrecon/internal/symex"
)

// TestDropDeducible exercises the static deducibility pruning on a
// hand-built recording set: a pure derived value whose chain bottoms
// out at another recorded site is dropped; the root survives.
func TestDropDeducible(t *testing.T) {
	f := &ir.Func{Name: "main", NumRegs: 4}
	f.Blocks = []*ir.Block{{Index: 0, Instrs: []ir.Instr{
		{Op: ir.OpInput, W: ir.W32, Dst: 1, Tag: "x"},
		{Op: ir.OpMul, W: ir.W32, Dst: 2, A: ir.Reg(1), B: ir.Imm(3)},
		{Op: ir.OpAdd, W: ir.W32, Dst: 3, A: ir.Reg(2), B: ir.Imm(7)},
		{Op: ir.OpAssert, A: ir.Reg(3)},
		{Op: ir.OpRet, A: ir.Imm(0)},
	}}}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].ID = f.NewInstrID()
		}
	}
	m := &ir.Module{Name: "t"}
	m.AddFunc(f)
	a := dataflow.Analyze(m)

	inputID := f.Blocks[0].Instrs[0].ID
	addID := f.Blocks[0].Instrs[2].ID
	rec := []Element{
		{Site: symex.SiteKey{Func: "main", InstrID: inputID}, CostBytes: 40, Width: ir.W32},
		{Site: symex.SiteKey{Func: "main", InstrID: addID}, CostBytes: 400, Width: ir.W32},
	}
	kept := dropDeducible(rec, a)
	if len(kept) != 1 {
		t.Fatalf("kept %d elements, want 1: %+v", len(kept), kept)
	}
	if kept[0].Site.InstrID != inputID {
		t.Errorf("kept site #%d, want the input site #%d", kept[0].Site.InstrID, inputID)
	}

	// A lone site always survives, deducible or not.
	solo := []Element{{Site: symex.SiteKey{Func: "main", InstrID: addID}, CostBytes: 400, Width: ir.W32}}
	if got := dropDeducible(solo, a); len(got) != 1 {
		t.Fatalf("lone element dropped: %+v", got)
	}
}
