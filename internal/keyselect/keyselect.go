// Package keyselect implements key data value selection (§3.3): given
// a stalled shepherded execution's constraint graph, it computes the
// bottleneck set (the symbolic values on the dominant write chains)
// and then minimizes the recording cost by substituting expensive
// elements with cheaper ancestor sets from which they can be deduced —
// the DFS of §3.3.2, with cost(E) = sizeof(E) × refcount(E). The
// output is a set of instrumentation sites at which the ER runtime
// inserts ptwrite instructions (§3.3.3).
package keyselect

import (
	"fmt"
	"sort"
	"time"

	"execrecon/internal/cgraph"
	"execrecon/internal/dataflow"
	"execrecon/internal/expr"
	"execrecon/internal/ir"
	"execrecon/internal/symex"
)

// Element is one member of the recording set.
type Element struct {
	Expr *expr.Expr
	Site symex.SiteKey
	// CostBytes = sizeof(value) × dynamic count at the site.
	CostBytes int64
	Width     ir.Width
}

// Selection is the result of one key data value selection pass.
type Selection struct {
	// Bottleneck is the raw bottleneck set before minimization.
	Bottleneck []*expr.Expr
	// Recording is the minimized recording set.
	Recording []Element
	// Sites is the deduplicated instrumentation site list.
	Sites []symex.SiteKey
	// TotalCostBytes is the summed recording cost.
	TotalCostBytes int64
	// DroppedDeducible counts recording elements removed by the static
	// deducibility pass (Options.Static).
	DroppedDeducible int
	GraphNodes       int
	Elapsed          time.Duration
}

const infCost = int64(1) << 60

// Select analyzes a stalled symbolic execution result and returns the
// recording set.
func Select(res *symex.Result) (*Selection, error) {
	return SelectWith(res, Options{})
}

// Options tunes the selection, mainly for ablation studies.
type Options struct {
	// NoMinimize skips the §3.3.2 cost-reduction DFS and records the
	// raw bottleneck set directly (the "naive strategy" the paper
	// rejects for its overhead).
	NoMinimize bool

	// Static, when non-nil, is the module's static dataflow analysis.
	// After minimization, recording elements whose defining sites a
	// shepherded replay can statically recompute from the remaining
	// recorded sites (dataflow.Deducibility) are dropped: recording
	// them costs trace bandwidth without adding information.
	Static *dataflow.Analysis
}

// SelectWith is Select with explicit options.
func SelectWith(res *symex.Result, opts Options) (*Selection, error) {
	start := time.Now()
	objs := make([]cgraph.Object, 0, len(res.Objects))
	for _, o := range res.Objects {
		objs = append(objs, cgraph.Object{Label: o.Label, Size: o.Size, Arr: o.Arr})
	}
	g := cgraph.Build(res.PathConstraint, objs)
	bottleneck := g.BottleneckSet()
	if len(bottleneck) == 0 {
		// The stall preceded any symbolic write chain: fall back to
		// the expression whose query stalled, plus the symbolic
		// read indices of large-object accesses.
		if res.StallExpr != nil && !res.StallExpr.IsConst() {
			bottleneck = append(bottleneck, res.StallExpr)
		}
		bottleneck = append(bottleneck, g.ReadIndexSet()...)
	}
	if len(bottleneck) == 0 {
		// Last resort: record the raw program inputs appearing in
		// the path constraint (the paper notes parts of the input
		// are themselves key data values).
		seen := make(map[*expr.Expr]bool)
		for _, c := range res.PathConstraint {
			for _, v := range expr.VarsOf(c) {
				if v.Kind == expr.KVar && !seen[v] {
					seen[v] = true
					bottleneck = append(bottleneck, v)
				}
			}
		}
	}
	if len(bottleneck) == 0 {
		return nil, fmt.Errorf("keyselect: empty bottleneck set (no symbolic write chains, reads, or stall expression)")
	}
	sel := &Selection{Bottleneck: bottleneck, GraphNodes: g.NumNodes()}

	ks := &selector{res: res}
	var recording []Element
	if opts.NoMinimize {
		recording = ks.direct(bottleneck)
	} else {
		recording = ks.minimize(bottleneck)
	}
	if len(recording) == 0 {
		return nil, fmt.Errorf("keyselect: no recordable elements for bottleneck set of %d", len(bottleneck))
	}
	if opts.Static != nil {
		kept := dropDeducible(recording, opts.Static)
		sel.DroppedDeducible = len(recording) - len(kept)
		recording = kept
	}

	siteSeen := make(map[symex.SiteKey]bool)
	for _, el := range recording {
		sel.Recording = append(sel.Recording, el)
		sel.TotalCostBytes += el.CostBytes
		if !siteSeen[el.Site] {
			siteSeen[el.Site] = true
			sel.Sites = append(sel.Sites, el.Site)
		}
	}
	sort.Slice(sel.Sites, func(i, j int) bool {
		a, b := sel.Sites[i], sel.Sites[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.InstrID < b.InstrID
	})
	sel.Elapsed = time.Since(start)
	return sel, nil
}

// dropDeducible removes recording elements whose sites are statically
// deducible from the sites that remain recorded. Elements are
// considered at site granularity (co-sited elements share one ptwrite)
// in descending cost order, so the most expensive redundant sites drop
// first; at least one site always survives.
func dropDeducible(rec []Element, a *dataflow.Analysis) []Element {
	if len(rec) <= 1 {
		return rec
	}
	ded := dataflow.NewDeducibility(a)

	type site = symex.SiteKey
	cost := make(map[site]int64)
	for _, el := range rec {
		cost[el.Site] += el.CostBytes
	}
	sites := make([]site, 0, len(cost))
	for s := range cost {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if cost[a] != cost[b] {
			return cost[a] > cost[b]
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.InstrID < b.InstrID
	})

	kept := make(map[site]bool, len(sites))
	for _, s := range sites {
		kept[s] = true
	}
	for _, s := range sites {
		if len(kept) == 1 {
			break
		}
		if !kept[s] {
			continue
		}
		delete(kept, s) // test s against the others
		recorded := func(fn string, id int32) bool {
			return kept[site{Func: fn, InstrID: id}]
		}
		if !ded.Deducible(s.Func, s.InstrID, recorded) {
			kept[s] = true
		}
	}

	out := rec[:0]
	for _, el := range rec {
		if kept[el.Site] {
			out = append(out, el)
		}
	}
	return out
}

type selector struct {
	res *symex.Result
}

// costOf returns the recording cost of node n, or infCost when n is
// not recordable (no defining site).
func (s *selector) costOf(n *expr.Expr) (int64, symex.SiteKey, bool) {
	key, ok := s.res.ExprSites[n.ID()]
	if !ok {
		return infCost, symex.SiteKey{}, false
	}
	st := s.res.Sites[key]
	if st == nil {
		return infCost, symex.SiteKey{}, false
	}
	width := int64(st.Width.Bytes())
	if width == 0 {
		width = 8
	}
	return width * st.Count, key, true
}

// direct is the naive strategy §3.3.2 rejects: record every
// bottleneck element where it first appears, with no cost comparison.
// Unrecordable wrapper nodes are covered by their *shallowest*
// recordable descendants (the values nearest the bottleneck), not the
// cheapest ones.
func (s *selector) direct(bottleneck []*expr.Expr) []Element {
	set := make(map[*expr.Expr]bool)
	var out []Element
	add := func(e *expr.Expr) {
		if set[e] {
			return
		}
		set[e] = true
		cost, site, ok := s.costOf(e)
		if !ok {
			return
		}
		st := s.res.Sites[site]
		out = append(out, Element{Expr: e, Site: site, CostBytes: cost, Width: st.Width})
	}
	var cover func(e *expr.Expr, depth int)
	cover = func(e *expr.Expr, depth int) {
		if e.IsConst() || depth > 256 {
			return
		}
		if _, _, ok := s.costOf(e); ok {
			add(e)
			return
		}
		for _, a := range e.Args {
			cover(a, depth+1)
		}
	}
	for _, e := range bottleneck {
		cover(e, 0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Expr.ID() < out[j].Expr.ID() })
	return out
}

// minimize implements the iterative cost-reduction of §3.3.2.
func (s *selector) minimize(bottleneck []*expr.Expr) []Element {
	// The working set, keyed by node.
	set := make(map[*expr.Expr]bool)
	order := make([]*expr.Expr, 0, len(bottleneck))
	for _, e := range bottleneck {
		if !set[e] {
			set[e] = true
			order = append(order, e)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range order {
			if !set[e] {
				continue
			}
			selfCost, _, recordable := s.costOf(e)
			// Support cost treating every *other* set element as
			// already known.
			delete(set, e)
			suppCost, suppSet := s.support(e, set)
			if suppCost < selfCost || (!recordable && suppCost < infCost) {
				// Replace e with its support.
				for n := range suppSet {
					if !set[n] {
						set[n] = true
						order = append(order, n)
					}
				}
				changed = true
			} else {
				set[e] = true // keep e
			}
		}
	}
	var out []Element
	for _, e := range order {
		if !set[e] {
			continue
		}
		cost, site, ok := s.costOf(e)
		if !ok {
			// Unrecordable leftovers are dropped; their support
			// was also unrecordable.
			continue
		}
		st := s.res.Sites[site]
		out = append(out, Element{Expr: e, Site: site, CostBytes: cost, Width: st.Width})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Expr.ID() < out[j].Expr.ID() })
	return out
}

// support computes the cheapest set of recordable nodes (outside the
// known set) from which n can be deduced, via memoized DFS over the
// constraint graph.
func (s *selector) support(n *expr.Expr, known map[*expr.Expr]bool) (int64, map[*expr.Expr]bool) {
	memo := make(map[*expr.Expr]*suppResult)
	r := s.supp(n, known, memo, 0)
	return r.cost, r.set
}

type suppResult struct {
	cost int64
	set  map[*expr.Expr]bool
}

func (s *selector) supp(n *expr.Expr, known map[*expr.Expr]bool, memo map[*expr.Expr]*suppResult, depth int) *suppResult {
	if n.IsConst() || n.Kind == expr.KConstArray && n.Args[0].IsConst() {
		return &suppResult{cost: 0, set: map[*expr.Expr]bool{}}
	}
	if known[n] {
		return &suppResult{cost: 0, set: map[*expr.Expr]bool{}}
	}
	if r, ok := memo[n]; ok {
		return r
	}
	if depth > 10_000 {
		return &suppResult{cost: infCost, set: map[*expr.Expr]bool{}}
	}
	// Option A: record n itself.
	best := &suppResult{cost: infCost, set: map[*expr.Expr]bool{}}
	if cost, _, ok := s.costOf(n); ok {
		best = &suppResult{cost: cost, set: map[*expr.Expr]bool{n: true}}
	}
	// Option B: deduce n from its operands.
	if len(n.Args) > 0 {
		var sum int64
		union := make(map[*expr.Expr]bool)
		feasible := true
		for _, a := range n.Args {
			r := s.supp(a, known, memo, depth+1)
			if r.cost >= infCost {
				feasible = false
				break
			}
			for k := range r.set {
				if !union[k] {
					union[k] = true
					if c, _, ok := s.costOf(k); ok {
						sum += c
					}
				}
			}
			if sum >= best.cost {
				feasible = false
				break
			}
		}
		if feasible && sum < best.cost {
			best = &suppResult{cost: sum, set: union}
		}
	}
	memo[n] = best
	return best
}

// Instrument returns a clone of mod with a ptwrite inserted after
// every selected site (§3.3.3). Instruction IDs of existing
// instructions are preserved; the inserted ptwrites receive fresh IDs.
//
// Placements are validated against the control-flow graph: a site must
// name a value-producing instruction in a block that is reachable from
// — and hence dominated by — the function entry. An unreachable or
// non-defining site would emit a ptwrite that the traced run never
// executes (or that records garbage), desynchronizing event matching
// in the next shepherded run.
func Instrument(mod *ir.Module, sites []symex.SiteKey) (*ir.Module, error) {
	nm := mod.Clone()
	cfgs := make(map[*ir.Func]*dataflow.CFG)
	for _, site := range sites {
		fn := nm.FuncByName(site.Func)
		if fn == nil {
			return nil, fmt.Errorf("keyselect: instrumenting unknown function %q", site.Func)
		}
		bi, ii := fn.FindInstrByID(site.InstrID)
		if bi < 0 {
			return nil, fmt.Errorf("keyselect: site %s#%d not found", site.Func, site.InstrID)
		}
		cfg := cfgs[fn]
		if cfg == nil {
			cfg = dataflow.BuildCFG(fn)
			cfgs[fn] = cfg
		}
		if !cfg.Reachable[bi] || !cfg.Dominates(0, bi) {
			return nil, fmt.Errorf("keyselect: site %s#%d is in unreachable block b%d", site.Func, site.InstrID, bi)
		}
		blk := fn.Blocks[bi]
		orig := blk.Instrs[ii]
		if orig.Op.IsTerminator() {
			return nil, fmt.Errorf("keyselect: site %s#%d is a terminator", site.Func, site.InstrID)
		}
		if !dataflow.WritesReg(&orig) {
			return nil, fmt.Errorf("keyselect: site %s#%d (%s) defines no register", site.Func, site.InstrID, orig.Op)
		}
		ptw := ir.Instr{
			Op:   ir.OpPtWrite,
			W:    widthOfSite(&orig),
			A:    ir.Reg(orig.Dst),
			ID:   fn.NewInstrID(),
			Line: orig.Line,
		}
		blk.Instrs = append(blk.Instrs[:ii+1],
			append([]ir.Instr{ptw}, blk.Instrs[ii+1:]...)...)
	}
	if err := nm.Validate(); err != nil {
		return nil, fmt.Errorf("keyselect: instrumented module invalid: %w", err)
	}
	return nm, nil
}

// widthOfSite picks the recorded width for a site instruction.
func widthOfSite(in *ir.Instr) ir.Width {
	switch in.Op {
	case ir.OpSext, ir.OpZext, ir.OpLoad, ir.OpFrame, ir.OpGlobal, ir.OpMalloc,
		ir.OpFuncAddr, ir.OpCall, ir.OpICall, ir.OpSpawn:
		return ir.W64
	}
	if in.W != 0 {
		return in.W
	}
	return ir.W64
}
