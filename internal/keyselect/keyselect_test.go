package keyselect_test

import (
	"strings"
	"testing"

	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
	"execrecon/internal/keyselect"
	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// stalledRun produces a stalled symex result for a chain-heavy
// program.
func stalledRun(t *testing.T) (*ir.Module, *symex.Result) {
	t.Helper()
	src := `
int m[256];
func main() int {
	for (int i = 0; i < 10; i = i + 1) {
		int k = input32("k");
		if (k < 0 || k >= 250) { return 0; }
		m[k] = m[k + 1] + 1;
	}
	assert(m[60] != 3, "chain");
	return 0;
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("k", 62, 61, 60, 200, 200, 200, 200, 200, 200, 200)
	ring := pt.NewRing(1 << 22)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: w, Tracer: enc, Seed: 1}).Run("main")
	if res.Failure == nil {
		t.Fatal("no failure")
	}
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	sres := symex.New(mod, tr, res.Failure, symex.Options{QueryBudget: 20_000}).Run("main")
	if sres.Status != symex.StatusStalled {
		t.Fatalf("status %v, want stalled", sres.Status)
	}
	return mod, sres
}

func TestSelectFindsRecordingSet(t *testing.T) {
	_, sres := stalledRun(t)
	sel, err := keyselect.Select(sres)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Bottleneck) == 0 {
		t.Error("empty bottleneck")
	}
	if len(sel.Recording) == 0 || len(sel.Sites) == 0 {
		t.Fatalf("empty recording set: %+v", sel)
	}
	if sel.TotalCostBytes <= 0 {
		t.Error("no recording cost")
	}
	if sel.GraphNodes == 0 {
		t.Error("graph nodes not counted")
	}
	// Minimization must never exceed the cost of recording the raw
	// bottleneck set directly.
	var bottleneckCost int64
	for _, e := range sel.Bottleneck {
		// The raw cost is not exposed; approximate with 4 bytes
		// per element as a generous lower bound of "recordable".
		_ = e
		bottleneckCost += 4
	}
	if len(sel.Recording) > len(sel.Bottleneck)*4 {
		t.Errorf("recording set suspiciously large: %d for bottleneck %d",
			len(sel.Recording), len(sel.Bottleneck))
	}
}

func TestInstrument(t *testing.T) {
	mod, sres := stalledRun(t)
	sel, err := keyselect.Select(sres)
	if err != nil {
		t.Fatal(err)
	}
	before := mod.NumInstrs()
	instr, err := keyselect.Instrument(mod, sel.Sites)
	if err != nil {
		t.Fatal(err)
	}
	if instr == mod {
		t.Fatal("instrumentation must clone")
	}
	if got := instr.NumInstrs(); got != before+len(sel.Sites) {
		t.Errorf("instrumented instrs %d, want %d", got, before+len(sel.Sites))
	}
	if err := instr.Validate(); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
	// The original module is untouched.
	if mod.NumInstrs() != before {
		t.Error("original module mutated")
	}
	// Each inserted ptwrite reads the register its site defines.
	dump := instr.Dump()
	if !strings.Contains(dump, "ptwrite") && !countPtwrites(instr) {
		t.Error("no ptwrite instructions found")
	}
	// Instrumented program still runs the benign path cleanly.
	res := vm.New(instr, vm.Config{Input: vm.NewWorkload().Add("k", 250)}).Run("main")
	if res.Failure != nil {
		t.Errorf("instrumented benign run failed: %v", res.Failure)
	}
}

func countPtwrites(m *ir.Module) bool {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpPtWrite {
					return true
				}
			}
		}
	}
	return false
}

// TestMinimizeNeverWorseThanDirect: the §3.3.2 cost reduction must
// never record more bytes than the naive record-where-it-appears
// strategy.
func TestMinimizeNeverWorseThanDirect(t *testing.T) {
	_, sres := stalledRun(t)
	min, err := keyselect.Select(sres)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := keyselect.SelectWith(sres, keyselect.Options{NoMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if min.TotalCostBytes > raw.TotalCostBytes {
		t.Errorf("minimized %d > raw %d bytes", min.TotalCostBytes, raw.TotalCostBytes)
	}
}

func TestInstrumentUnknownSite(t *testing.T) {
	mod, _ := stalledRun(t)
	_, err := keyselect.Instrument(mod, []symex.SiteKey{{Func: "nope", InstrID: 1}})
	if err == nil {
		t.Error("expected error for unknown function")
	}
	_, err = keyselect.Instrument(mod, []symex.SiteKey{{Func: "main", InstrID: 32000}})
	if err == nil {
		t.Error("expected error for unknown instruction")
	}
}

// TestRecordedValuesUnblock is the end-to-end property: recording the
// selected values lets the previously stalled execution complete at
// the same solver budget.
func TestRecordedValuesUnblock(t *testing.T) {
	mod, sres := stalledRun(t)
	sel, err := keyselect.Select(sres)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := keyselect.Instrument(mod, sel.Sites)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("k", 62, 61, 60, 200, 200, 200, 200, 200, 200, 200)
	ring := pt.NewRing(1 << 22)
	enc := pt.NewEncoder(ring)
	res := vm.New(instr, vm.Config{Input: w, Tracer: enc, Seed: 1}).Run("main")
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumPTW == 0 {
		t.Fatal("no PTW packets recorded by instrumentation")
	}
	sres2 := symex.New(instr, tr, res.Failure, symex.Options{QueryBudget: 20_000}).Run("main")
	if sres2.Status != symex.StatusCompleted {
		// One more selection round may be needed; that still proves
		// forward progress only if the stall moved.
		t.Fatalf("instrumented run did not complete: %v (%s)", sres2.Status, sres2.StallReason)
	}
	rerun := vm.New(mod, vm.Config{Input: sres2.TestCase.Clone(), Seed: 1}).Run("main")
	if rerun.Failure == nil || !rerun.Failure.SameSignature(res.Failure) {
		t.Errorf("generated test case does not reproduce: %v", rerun.Failure)
	}
}

// TestStaticSelectionStillUnblocks: the static deducibility pass must
// not drop sites the next iteration needs — the instrumented rerun has
// to complete just as it does without the pass.
func TestStaticSelectionStillUnblocks(t *testing.T) {
	mod, sres := stalledRun(t)
	sel, err := keyselect.SelectWith(sres, keyselect.Options{Static: dataflow.Analyze(mod)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Recording) == 0 || len(sel.Sites) == 0 {
		t.Fatal("static pass emptied the selection")
	}
	t.Logf("dropped %d deducible elements, %d sites kept", sel.DroppedDeducible, len(sel.Sites))
	instr, err := keyselect.Instrument(mod, sel.Sites)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("k", 62, 61, 60, 200, 200, 200, 200, 200, 200, 200)
	ring := pt.NewRing(1 << 22)
	enc := pt.NewEncoder(ring)
	res := vm.New(instr, vm.Config{Input: w, Tracer: enc, Seed: 1}).Run("main")
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	sres2 := symex.New(instr, tr, res.Failure, symex.Options{QueryBudget: 20_000}).Run("main")
	if sres2.Status != symex.StatusCompleted {
		t.Fatalf("instrumented run did not complete: %v (%s)", sres2.Status, sres2.StallReason)
	}
}

// TestStaticNeverCostsMore: dropping deducible sites can only shrink
// the recorded byte count.
func TestStaticNeverCostsMore(t *testing.T) {
	mod, sres := stalledRun(t)
	base, err := keyselect.SelectWith(sres, keyselect.Options{NoMinimize: true})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := keyselect.SelectWith(sres, keyselect.Options{NoMinimize: true, Static: dataflow.Analyze(mod)})
	if err != nil {
		t.Fatal(err)
	}
	if stat.TotalCostBytes > base.TotalCostBytes {
		t.Errorf("static pass increased cost: %d > %d", stat.TotalCostBytes, base.TotalCostBytes)
	}
	if len(stat.Sites) > len(base.Sites) {
		t.Errorf("static pass added sites: %d > %d", len(stat.Sites), len(base.Sites))
	}
}

// handMod builds a module with one unreachable block and one
// non-defining instruction, for Instrument placement validation.
func handMod(t *testing.T) (*ir.Module, int32, int32) {
	t.Helper()
	f := &ir.Func{Name: "main", NumRegs: 3}
	f.Blocks = []*ir.Block{
		{Index: 0, Instrs: []ir.Instr{
			{Op: ir.OpConst, W: ir.W32, Dst: 1, A: ir.Imm(1)},
			{Op: ir.OpOutput, A: ir.Reg(1)},
			{Op: ir.OpRet, A: ir.Imm(0)},
		}},
		{Index: 1, Instrs: []ir.Instr{ // unreachable
			{Op: ir.OpConst, W: ir.W32, Dst: 2, A: ir.Imm(2)},
			{Op: ir.OpBr, Blk: 0},
		}},
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			b.Instrs[i].ID = f.NewInstrID()
		}
	}
	m := &ir.Module{Name: "t"}
	m.AddFunc(f)
	outputID := f.Blocks[0].Instrs[1].ID
	deadID := f.Blocks[1].Instrs[0].ID
	return m, outputID, deadID
}

func TestInstrumentRejectsInvalidPlacement(t *testing.T) {
	m, outputID, deadID := handMod(t)
	if _, err := keyselect.Instrument(m, []symex.SiteKey{{Func: "main", InstrID: outputID}}); err == nil {
		t.Error("expected error for a site that defines no register")
	}
	if _, err := keyselect.Instrument(m, []symex.SiteKey{{Func: "main", InstrID: deadID}}); err == nil {
		t.Error("expected error for a site in an unreachable block")
	}
}
