package minc

import (
	"fmt"

	"execrecon/internal/ir"
)

// TypeKind classifies minc types.
type TypeKind uint8

// Type kinds.
const (
	TyVoid TypeKind = iota
	TyInt           // sized integer, signed or unsigned
	TyPtr
	TyArray
)

// Type is a minc type. Integer types carry width and signedness;
// pointers and arrays carry an element type.
type Type struct {
	Kind   TypeKind
	Width  ir.Width // TyInt
	Signed bool     // TyInt
	Elem   *Type    // TyPtr, TyArray
	Len    int64    // TyArray
}

// Primitive types.
var (
	TypeVoid   = &Type{Kind: TyVoid}
	TypeChar   = &Type{Kind: TyInt, Width: ir.W8, Signed: true}
	TypeShort  = &Type{Kind: TyInt, Width: ir.W16, Signed: true}
	TypeInt    = &Type{Kind: TyInt, Width: ir.W32, Signed: true}
	TypeLong   = &Type{Kind: TyInt, Width: ir.W64, Signed: true}
	TypeUchar  = &Type{Kind: TyInt, Width: ir.W8, Signed: false}
	TypeUshort = &Type{Kind: TyInt, Width: ir.W16, Signed: false}
	TypeUint   = &Type{Kind: TyInt, Width: ir.W32, Signed: false}
	TypeUlong  = &Type{Kind: TyInt, Width: ir.W64, Signed: false}
)

// PtrTo returns a pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: TyPtr, Elem: elem} }

// Size returns the byte size of the type.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TyInt:
		return int64(t.Width.Bytes())
	case TyPtr:
		return 8
	case TyArray:
		return t.Elem.Size() * t.Len
	}
	return 0
}

// IsInt reports whether the type is an integer.
func (t *Type) IsInt() bool { return t.Kind == TyInt }

// IsPtr reports whether the type is a pointer.
func (t *Type) IsPtr() bool { return t.Kind == TyPtr }

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TyInt:
		return t.Width == o.Width && t.Signed == o.Signed
	case TyPtr:
		return t.Elem.Equal(o.Elem)
	case TyArray:
		return t.Len == o.Len && t.Elem.Equal(o.Elem)
	}
	return true
}

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case TyVoid:
		return "void"
	case TyInt:
		base := map[ir.Width]string{ir.W8: "char", ir.W16: "short", ir.W32: "int", ir.W64: "long"}[t.Width]
		if !t.Signed {
			base = "u" + base
		}
		return base
	case TyPtr:
		return t.Elem.String() + "*"
	case TyArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	}
	return "?"
}

// Expression nodes.

type expression interface{ exprLine() int }

type exprBase struct{ line int }

func (e exprBase) exprLine() int { return e.line }

type numberLit struct {
	exprBase
	val uint64
	typ *Type // defaults to int; long when it does not fit
}

type stringLit struct {
	exprBase
	val string
}

type identExpr struct {
	exprBase
	name string
}

type unaryExpr struct {
	exprBase
	op string // - ! ~ * &
	x  expression
}

type binaryExpr struct {
	exprBase
	op   string
	x, y expression
}

type indexExpr struct {
	exprBase
	x   expression
	idx expression
}

type callExpr struct {
	exprBase
	name string
	args []expression
}

type spawnExpr struct {
	exprBase
	name string
	args []expression
}

type castExpr struct {
	exprBase
	typ *Type
	x   expression
}

type sizeofExpr struct {
	exprBase
	typ *Type
}

// Statement nodes.

type statement interface{ stmtLine() int }

type stmtBase struct{ line int }

func (s stmtBase) stmtLine() int { return s.line }

type declStmt struct {
	stmtBase
	name string
	typ  *Type
	init expression // nil for none
}

type assignStmt struct {
	stmtBase
	lhs expression // ident, index, or deref
	rhs expression
}

type ifStmt struct {
	stmtBase
	cond      expression
	then, els []statement
}

type whileStmt struct {
	stmtBase
	cond expression
	body []statement
}

type forStmt struct {
	stmtBase
	init statement // nil allowed
	cond expression
	post statement // nil allowed
	body []statement
}

type returnStmt struct {
	stmtBase
	val expression // nil for void
}

type breakStmt struct{ stmtBase }
type continueStmt struct{ stmtBase }

type exprStmt struct {
	stmtBase
	x expression
}

// Top-level declarations.

type funcDecl struct {
	line   int
	name   string
	params []param
	ret    *Type
	body   []statement
}

type param struct {
	name string
	typ  *Type
}

type globalDecl struct {
	line     int
	name     string
	typ      *Type
	initVals []uint64 // integer initializers (element-wise)
	initStr  string   // string initializer for char arrays
	hasInit  bool
}

type program struct {
	globals []*globalDecl
	funcs   []*funcDecl
}
