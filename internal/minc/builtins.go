package minc

import (
	"execrecon/internal/ir"
)

// callExpr lowers user calls and the builtin intrinsics.
func (c *compiler) callExpr(x *callExpr) (val, error) {
	line := x.exprLine()
	argN := func(want int) error {
		if len(x.args) != want {
			return errf(line, "%s expects %d argument(s), got %d", x.name, want, len(x.args))
		}
		return nil
	}
	strArg := func(i int) (string, error) {
		s, ok := x.args[i].(*stringLit)
		if !ok {
			return "", errf(line, "%s: argument %d must be a string literal", x.name, i+1)
		}
		return s.val, nil
	}

	switch x.name {
	case "input8", "input16", "input32", "input64":
		if err := argN(1); err != nil {
			return val{}, err
		}
		tag, err := strArg(0)
		if err != nil {
			return val{}, err
		}
		var w ir.Width
		var t *Type
		switch x.name {
		case "input8":
			w, t = ir.W8, TypeChar
		case "input16":
			w, t = ir.W16, TypeShort
		case "input32":
			w, t = ir.W32, TypeInt
		default:
			w, t = ir.W64, TypeLong
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpInput, W: w, Dst: r, Tag: tag})
		return val{arg: ir.Reg(r), typ: t}, nil

	case "abort":
		msg := "abort"
		if len(x.args) == 1 {
			m, err := strArg(0)
			if err != nil {
				return val{}, err
			}
			msg = m
		} else if len(x.args) != 0 {
			return val{}, errf(line, "abort takes at most one string")
		}
		c.emit(ir.Instr{Op: ir.OpAbort, Tag: msg})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "assert":
		if len(x.args) != 1 && len(x.args) != 2 {
			return val{}, errf(line, "assert(cond [, msg])")
		}
		cond, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		msg := "assertion failed"
		if len(x.args) == 2 {
			m, err := strArg(1)
			if err != nil {
				return val{}, err
			}
			msg = m
		}
		c.emit(ir.Instr{Op: ir.OpAssert, A: cond.arg, Tag: msg})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "malloc":
		if err := argN(1); err != nil {
			return val{}, err
		}
		n, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		n = c.convert(n, TypeLong, line)
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpMalloc, Dst: r, A: n.arg})
		return val{arg: ir.Reg(r), typ: PtrTo(TypeChar)}, nil

	case "free":
		if err := argN(1); err != nil {
			return val{}, err
		}
		p, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		if !p.typ.IsPtr() {
			return val{}, errf(line, "free of non-pointer")
		}
		c.emit(ir.Instr{Op: ir.OpFree, A: p.arg})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "output":
		if err := argN(1); err != nil {
			return val{}, err
		}
		v, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		v = c.convert(v, TypeUlong, line)
		c.emit(ir.Instr{Op: ir.OpOutput, W: ir.W64, A: v.arg})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "join":
		if err := argN(1); err != nil {
			return val{}, err
		}
		t, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		t = c.convert(t, TypeLong, line)
		c.emit(ir.Instr{Op: ir.OpJoin, A: t.arg})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "lock", "unlock":
		if err := argN(1); err != nil {
			return val{}, err
		}
		m, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		m = c.convert(m, TypeLong, line)
		op := ir.OpLock
		if x.name == "unlock" {
			op = ir.OpUnlock
		}
		c.emit(ir.Instr{Op: op, A: m.arg})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "yield":
		if err := argN(0); err != nil {
			return val{}, err
		}
		c.emit(ir.Instr{Op: ir.OpYield})
		return val{arg: ir.Imm(0), typ: TypeVoid}, nil

	case "fnptr":
		if err := argN(1); err != nil {
			return val{}, err
		}
		name, err := strArg(0)
		if err != nil {
			return val{}, err
		}
		if _, ok := c.sigs[name]; !ok {
			return val{}, errf(line, "fnptr of unknown function %q", name)
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpFuncAddr, Dst: r, Tag: name})
		return val{arg: ir.Reg(r), typ: TypeLong}, nil

	case "icall0", "icall1", "icall2":
		nArgs := int(x.name[5] - '0')
		if err := argN(nArgs + 1); err != nil {
			return val{}, err
		}
		fp, err := c.expr(x.args[0])
		if err != nil {
			return val{}, err
		}
		fp = c.convert(fp, TypeLong, line)
		var args []ir.Arg
		for _, a := range x.args[1:] {
			v, err := c.expr(a)
			if err != nil {
				return val{}, err
			}
			v = c.convert(v, TypeLong, line)
			args = append(args, v.arg)
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpICall, Dst: r, A: fp.arg, Args: args})
		return val{arg: ir.Reg(r), typ: TypeLong}, nil
	}

	// User-defined function call.
	sig, ok := c.sigs[x.name]
	if !ok {
		return val{}, errf(line, "call of unknown function %q", x.name)
	}
	if len(x.args) != len(sig.params) {
		return val{}, errf(line, "%s: want %d args, got %d", x.name, len(sig.params), len(x.args))
	}
	args, err := c.callArgs(x.args, sig.params, line)
	if err != nil {
		return val{}, err
	}
	r := c.newReg()
	c.emit(ir.Instr{Op: ir.OpCall, Dst: r, Tag: x.name, Args: args})
	ret := sig.ret
	if ret.Kind == TyVoid {
		return val{arg: ir.Reg(r), typ: TypeVoid}, nil
	}
	return val{arg: ir.Reg(r), typ: ret}, nil
}
