package minc

import (
	"fmt"

	"execrecon/internal/absint"
	"execrecon/internal/dataflow"
	"execrecon/internal/ir"
)

// Compile parses, type-checks, and lowers a minc program to an ir
// module. The module is validated, and the codegen-invariant lint
// rules (maybe-undef, unreachable-block) are enforced, before it is
// returned: lowering zero-initializes every register local and prunes
// the dead blocks its statement emitter creates, so a violation is a
// compiler bug, not a property of the user program.
func Compile(name, src string) (*ir.Module, error) {
	mod, _, err := compile(name, src)
	return mod, err
}

// CompileWithLint is Compile plus the full lint suite: the advisory
// dataflow rules (dead stores, cross-block width inconsistencies —
// suspicious but executable) followed by the abstract-interpretation
// rules, which include the error-level provable findings
// (provable-oob, provable-overflow: the fault fires on every
// execution reaching the site). Callers gate severity with
// dataflow.ErrorLevel.
func CompileWithLint(name, src string) (*ir.Module, []dataflow.Finding, error) {
	mod, findings, err := compile(name, src)
	if err != nil {
		return mod, findings, err
	}
	return mod, append(findings, absint.Lint(mod, absint.Config{})...), nil
}

func compile(name, src string) (*ir.Module, []dataflow.Finding, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, nil, err
	}
	c := &compiler{mod: &ir.Module{Name: name}, prog: prog}
	if err := c.run(); err != nil {
		return nil, nil, err
	}
	if err := c.mod.Validate(); err != nil {
		return nil, nil, fmt.Errorf("minc: internal error: %w", err)
	}
	var advisory []dataflow.Finding
	for _, f := range dataflow.Lint(c.mod) {
		switch f.Rule {
		case dataflow.RuleMaybeUndef, dataflow.RuleUnreachable:
			return nil, nil, fmt.Errorf("minc: internal error: %s", f)
		default:
			advisory = append(advisory, f)
		}
	}
	return c.mod, advisory, nil
}

// pruneUnreachable removes blocks no path from the entry reaches and
// renumbers the survivors. The statement emitter deliberately parks
// code that follows a terminator in fresh dead blocks (see emit);
// this pass drops them so the shipped module satisfies the
// unreachable-block lint invariant. Instruction IDs are untouched.
func pruneUnreachable(f *ir.Func) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := make([]bool, len(f.Blocks))
	work := []int{0}
	reach[0] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		t := f.Blocks[b].Term()
		if t == nil {
			continue
		}
		visit := func(s int) {
			if s >= 0 && s < len(f.Blocks) && !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
		switch t.Op {
		case ir.OpBr:
			visit(t.Blk)
		case ir.OpCondBr:
			visit(t.Blk)
			visit(t.Blk2)
		}
	}
	remap := make([]int, len(f.Blocks))
	kept := f.Blocks[:0]
	for i, b := range f.Blocks {
		if !reach[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		b.Index = len(kept)
		kept = append(kept, b)
	}
	f.Blocks = kept
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		if t.Op == ir.OpBr || t.Op == ir.OpCondBr {
			t.Blk = remap[t.Blk]
			if t.Op == ir.OpCondBr {
				t.Blk2 = remap[t.Blk2]
			}
		}
	}
}

// symbol binds a name in scope.
type symbol struct {
	typ *Type
	// Exactly one of the following locations applies.
	reg      int   // register-allocated scalar local (reg >= 0)
	frameOff int64 // frame-allocated local (when reg < 0 and !isGlobal)
	isGlobal bool
	gidx     int // global index
	isParam  bool
}

type funcSig struct {
	params []*Type
	ret    *Type
}

type compiler struct {
	mod  *ir.Module
	prog *program

	sigs    map[string]*funcSig
	globals map[string]*symbol
	strLits map[string]int // string literal -> global index

	// Per-function state.
	fn         *ir.Func
	decl       *funcDecl
	scopes     []map[string]*symbol
	addrTaken  map[string]bool
	curBlk     int
	terminated bool
	breakTo    []int
	contTo     []int
	line       int32
}

func (c *compiler) run() error {
	c.sigs = make(map[string]*funcSig)
	c.globals = make(map[string]*symbol)
	c.strLits = make(map[string]int)

	for _, g := range c.prog.globals {
		if _, dup := c.globals[g.name]; dup {
			return errf(g.line, "duplicate global %q", g.name)
		}
		init := make([]byte, g.typ.Size())
		if g.hasInit {
			switch {
			case g.initStr != "":
				if g.typ.Kind != TyArray || g.typ.Elem.Width != ir.W8 {
					return errf(g.line, "string initializer requires char array")
				}
				if int64(len(g.initStr)) >= g.typ.Len {
					return errf(g.line, "string initializer too long")
				}
				copy(init, g.initStr)
			default:
				elem := g.typ
				if g.typ.Kind == TyArray {
					elem = g.typ.Elem
				}
				es := elem.Size()
				if int64(len(g.initVals))*es > g.typ.Size() {
					return errf(g.line, "too many initializers")
				}
				for i, v := range g.initVals {
					for b := int64(0); b < es; b++ {
						init[int64(i)*es+b] = byte(v >> (8 * uint(b)))
					}
				}
			}
		}
		gi := c.mod.AddGlobal(&ir.Global{Name: g.name, Size: g.typ.Size(), Init: init})
		c.globals[g.name] = &symbol{typ: g.typ, isGlobal: true, gidx: gi, reg: -1}
	}
	for _, f := range c.prog.funcs {
		if _, dup := c.sigs[f.name]; dup {
			return errf(f.line, "duplicate function %q", f.name)
		}
		sig := &funcSig{ret: f.ret}
		for _, pm := range f.params {
			if pm.typ.Kind == TyArray || pm.typ.Kind == TyVoid {
				return errf(f.line, "parameter %q must be scalar or pointer", pm.name)
			}
			sig.params = append(sig.params, pm.typ)
		}
		c.sigs[f.name] = sig
	}
	for _, f := range c.prog.funcs {
		if err := c.compileFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// Scope handling.

func (c *compiler) pushScope() { c.scopes = append(c.scopes, map[string]*symbol{}) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *compiler) lookup(name string) *symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if s, ok := c.globals[name]; ok {
		return s
	}
	return nil
}

func (c *compiler) define(line int, name string, s *symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(line, "redeclaration of %q", name)
	}
	top[name] = s
	return nil
}

// IR emission helpers.

func (c *compiler) newReg() int {
	r := c.fn.NumRegs
	c.fn.NumRegs++
	return r
}

func (c *compiler) newBlock() int {
	b := &ir.Block{Index: len(c.fn.Blocks)}
	c.fn.Blocks = append(c.fn.Blocks, b)
	return b.Index
}

// setBlock switches emission to block b.
func (c *compiler) setBlock(b int) {
	c.curBlk = b
	c.terminated = false
}

func (c *compiler) emit(in ir.Instr) *ir.Instr {
	if c.terminated {
		// Unreachable code after a terminator: emit into a fresh
		// dead block to keep blocks well-formed.
		c.setBlock(c.newBlock())
	}
	in.ID = c.fn.NewInstrID()
	in.Line = c.line
	blk := c.fn.Blocks[c.curBlk]
	blk.Instrs = append(blk.Instrs, in)
	if in.Op.IsTerminator() {
		c.terminated = true
	}
	return &blk.Instrs[len(blk.Instrs)-1]
}

// val is a typed rvalue: either an immediate or a register.
type val struct {
	arg ir.Arg
	typ *Type
}

func (c *compiler) materialize(v val) int {
	if v.arg.K == ir.ArgReg {
		return v.arg.Reg
	}
	r := c.newReg()
	c.emit(ir.Instr{Op: ir.OpConst, W: widthOf(v.typ), Dst: r, A: v.arg})
	return r
}

func widthOf(t *Type) ir.Width {
	switch t.Kind {
	case TyInt:
		return t.Width
	case TyPtr, TyArray:
		return ir.W64
	}
	return ir.W64
}

func isSigned(t *Type) bool { return t.Kind == TyInt && t.Signed }

// compileFunc lowers one function.
func (c *compiler) compileFunc(f *funcDecl) error {
	c.fn = &ir.Func{Name: f.name, NParams: len(f.params)}
	c.decl = f
	c.scopes = nil
	c.addrTaken = map[string]bool{}
	markAddrTaken(f.body, c.addrTaken)
	c.breakTo, c.contTo = nil, nil

	c.pushScope()
	for i, pm := range f.params {
		r := c.fn.NumRegs
		c.fn.NumRegs++
		sym := &symbol{typ: pm.typ, reg: r, isParam: true}
		if c.addrTaken[pm.name] {
			// Spill address-taken parameters to the frame.
			sym = &symbol{typ: pm.typ, reg: -1, frameOff: c.fn.FrameSize}
			c.fn.FrameSize += pm.typ.Size()
		}
		if err := c.define(f.line, pm.name, sym); err != nil {
			return err
		}
		_ = i
	}
	c.setBlock(c.newBlock())
	// Spill stores for address-taken params must come first.
	for i, pm := range f.params {
		sym := c.lookup(pm.name)
		if sym.reg < 0 {
			addr := c.newReg()
			c.emit(ir.Instr{Op: ir.OpFrame, Dst: addr, A: ir.Imm(uint64(sym.frameOff))})
			c.emit(ir.Instr{Op: ir.OpStore, W: widthOf(pm.typ), A: ir.Reg(addr), B: ir.Reg(i)})
		}
	}
	if err := c.stmts(f.body); err != nil {
		return err
	}
	if !c.terminated {
		c.emit(ir.Instr{Op: ir.OpRet, A: ir.Imm(0)})
	}
	c.popScope()
	pruneUnreachable(c.fn)
	// Frame instructions validate against FrameSize; functions with
	// no frame data keep FrameSize 0 and never emit OpFrame.
	c.mod.AddFunc(c.fn)
	return nil
}

// markAddrTaken records identifiers whose address is taken.
func markAddrTaken(stmts []statement, out map[string]bool) {
	var walkE func(e expression)
	walkE = func(e expression) {
		switch x := e.(type) {
		case *unaryExpr:
			if x.op == "&" {
				if id, ok := x.x.(*identExpr); ok {
					out[id.name] = true
				}
			}
			walkE(x.x)
		case *binaryExpr:
			walkE(x.x)
			walkE(x.y)
		case *indexExpr:
			walkE(x.x)
			walkE(x.idx)
		case *callExpr:
			for _, a := range x.args {
				walkE(a)
			}
		case *spawnExpr:
			for _, a := range x.args {
				walkE(a)
			}
		case *castExpr:
			walkE(x.x)
		}
	}
	var walkS func(ss []statement)
	walkS = func(ss []statement) {
		for _, s := range ss {
			switch st := s.(type) {
			case *declStmt:
				if st.init != nil {
					walkE(st.init)
				}
			case *assignStmt:
				walkE(st.lhs)
				walkE(st.rhs)
			case *ifStmt:
				walkE(st.cond)
				walkS(st.then)
				walkS(st.els)
			case *whileStmt:
				walkE(st.cond)
				walkS(st.body)
			case *forStmt:
				if st.init != nil {
					walkS([]statement{st.init})
				}
				if st.cond != nil {
					walkE(st.cond)
				}
				if st.post != nil {
					walkS([]statement{st.post})
				}
				walkS(st.body)
			case *returnStmt:
				if st.val != nil {
					walkE(st.val)
				}
			case *exprStmt:
				walkE(st.x)
			}
		}
	}
	walkS(stmts)
}

func (c *compiler) stmts(ss []statement) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s statement) error {
	c.line = int32(s.stmtLine())
	switch st := s.(type) {
	case *declStmt:
		return c.declStmt(st)
	case *assignStmt:
		return c.assignStmt(st)
	case *ifStmt:
		return c.ifStmt(st)
	case *whileStmt:
		return c.whileStmt(st)
	case *forStmt:
		return c.forStmt(st)
	case *returnStmt:
		var v val
		if st.val != nil {
			var err error
			v, err = c.expr(st.val)
			if err != nil {
				return err
			}
			v = c.convert(v, c.decl.ret, st.stmtLine())
		} else {
			if c.decl.ret != TypeVoid && c.decl.ret.Kind != TyVoid {
				return errf(st.stmtLine(), "missing return value")
			}
			v = val{arg: ir.Imm(0), typ: TypeLong}
		}
		c.emit(ir.Instr{Op: ir.OpRet, A: v.arg})
		return nil
	case *breakStmt:
		if len(c.breakTo) == 0 {
			return errf(st.stmtLine(), "break outside loop")
		}
		c.emit(ir.Instr{Op: ir.OpBr, Blk: c.breakTo[len(c.breakTo)-1]})
		return nil
	case *continueStmt:
		if len(c.contTo) == 0 {
			return errf(st.stmtLine(), "continue outside loop")
		}
		c.emit(ir.Instr{Op: ir.OpBr, Blk: c.contTo[len(c.contTo)-1]})
		return nil
	case *exprStmt:
		_, err := c.expr(st.x)
		return err
	}
	return errf(s.stmtLine(), "unsupported statement")
}

func (c *compiler) declStmt(st *declStmt) error {
	if st.typ.Kind == TyVoid {
		return errf(st.stmtLine(), "void variable %q", st.name)
	}
	if st.typ.Kind == TyArray || c.addrTaken[st.name] {
		sym := &symbol{typ: st.typ, reg: -1, frameOff: c.fn.FrameSize}
		c.fn.FrameSize += st.typ.Size()
		if err := c.define(st.stmtLine(), st.name, sym); err != nil {
			return err
		}
		if st.init != nil {
			if st.typ.Kind == TyArray {
				return errf(st.stmtLine(), "array initializers are not supported for locals")
			}
			v, err := c.expr(st.init)
			if err != nil {
				return err
			}
			v = c.convert(v, st.typ, st.stmtLine())
			addr := c.newReg()
			c.emit(ir.Instr{Op: ir.OpFrame, Dst: addr, A: ir.Imm(uint64(sym.frameOff))})
			c.emit(ir.Instr{Op: ir.OpStore, W: widthOf(st.typ), A: ir.Reg(addr), B: v.arg})
		}
		return nil
	}
	r := c.newReg()
	sym := &symbol{typ: st.typ, reg: r}
	if err := c.define(st.stmtLine(), st.name, sym); err != nil {
		return err
	}
	var v val
	if st.init != nil {
		var err error
		v, err = c.expr(st.init)
		if err != nil {
			return err
		}
		v = c.convert(v, st.typ, st.stmtLine())
	} else {
		v = val{arg: ir.Imm(0), typ: st.typ}
	}
	c.emit(ir.Instr{Op: ir.OpMov, W: widthOf(st.typ), Dst: r, A: v.arg})
	return nil
}

func (c *compiler) assignStmt(st *assignStmt) error {
	rhs, err := c.expr(st.rhs)
	if err != nil {
		return err
	}
	// Register-allocated scalar?
	if id, ok := st.lhs.(*identExpr); ok {
		sym := c.lookup(id.name)
		if sym == nil {
			return errf(st.stmtLine(), "undefined variable %q", id.name)
		}
		if sym.reg >= 0 {
			rhs = c.convert(rhs, sym.typ, st.stmtLine())
			c.emit(ir.Instr{Op: ir.OpMov, W: widthOf(sym.typ), Dst: sym.reg, A: rhs.arg})
			return nil
		}
	}
	addr, elem, err := c.address(st.lhs)
	if err != nil {
		return err
	}
	if elem.Kind == TyArray {
		return errf(st.stmtLine(), "cannot assign to array")
	}
	rhs = c.convert(rhs, elem, st.stmtLine())
	c.emit(ir.Instr{Op: ir.OpStore, W: widthOf(elem), A: addr, B: rhs.arg})
	return nil
}

func (c *compiler) ifStmt(st *ifStmt) error {
	cond, err := c.expr(st.cond)
	if err != nil {
		return err
	}
	thenB := c.newBlock()
	elseB := c.newBlock()
	endB := elseB
	if len(st.els) > 0 {
		endB = c.newBlock()
	}
	c.emit(ir.Instr{Op: ir.OpCondBr, A: cond.arg, Blk: thenB, Blk2: elseB})
	c.setBlock(thenB)
	if err := c.stmts(st.then); err != nil {
		return err
	}
	if !c.terminated {
		c.emit(ir.Instr{Op: ir.OpBr, Blk: endB})
	}
	if len(st.els) > 0 {
		c.setBlock(elseB)
		if err := c.stmts(st.els); err != nil {
			return err
		}
		if !c.terminated {
			c.emit(ir.Instr{Op: ir.OpBr, Blk: endB})
		}
	}
	c.setBlock(endB)
	return nil
}

func (c *compiler) whileStmt(st *whileStmt) error {
	condB := c.newBlock()
	bodyB := c.newBlock()
	endB := c.newBlock()
	c.emit(ir.Instr{Op: ir.OpBr, Blk: condB})
	c.setBlock(condB)
	cond, err := c.expr(st.cond)
	if err != nil {
		return err
	}
	c.emit(ir.Instr{Op: ir.OpCondBr, A: cond.arg, Blk: bodyB, Blk2: endB})
	c.setBlock(bodyB)
	c.breakTo = append(c.breakTo, endB)
	c.contTo = append(c.contTo, condB)
	err = c.stmts(st.body)
	c.breakTo = c.breakTo[:len(c.breakTo)-1]
	c.contTo = c.contTo[:len(c.contTo)-1]
	if err != nil {
		return err
	}
	if !c.terminated {
		c.emit(ir.Instr{Op: ir.OpBr, Blk: condB})
	}
	c.setBlock(endB)
	return nil
}

func (c *compiler) forStmt(st *forStmt) error {
	c.pushScope()
	defer c.popScope()
	if st.init != nil {
		if err := c.stmt(st.init); err != nil {
			return err
		}
	}
	condB := c.newBlock()
	bodyB := c.newBlock()
	postB := c.newBlock()
	endB := c.newBlock()
	c.emit(ir.Instr{Op: ir.OpBr, Blk: condB})
	c.setBlock(condB)
	if st.cond != nil {
		cond, err := c.expr(st.cond)
		if err != nil {
			return err
		}
		c.emit(ir.Instr{Op: ir.OpCondBr, A: cond.arg, Blk: bodyB, Blk2: endB})
	} else {
		c.emit(ir.Instr{Op: ir.OpBr, Blk: bodyB})
	}
	c.setBlock(bodyB)
	c.breakTo = append(c.breakTo, endB)
	c.contTo = append(c.contTo, postB)
	err := c.stmts(st.body)
	c.breakTo = c.breakTo[:len(c.breakTo)-1]
	c.contTo = c.contTo[:len(c.contTo)-1]
	if err != nil {
		return err
	}
	if !c.terminated {
		c.emit(ir.Instr{Op: ir.OpBr, Blk: postB})
	}
	c.setBlock(postB)
	if st.post != nil {
		if err := c.stmt(st.post); err != nil {
			return err
		}
	}
	c.emit(ir.Instr{Op: ir.OpBr, Blk: condB})
	c.setBlock(endB)
	return nil
}
