package minc

import (
	"fmt"

	"execrecon/internal/ir"
)

// convert coerces v to type to, emitting widening/narrowing as
// needed.
func (c *compiler) convert(v val, to *Type, line int) val {
	from := v.typ
	if from.Equal(to) {
		return val{arg: v.arg, typ: to}
	}
	// Pointer casts and int<->pointer conversions are value-
	// preserving (both are 64-bit).
	if (from.IsPtr() || from.Kind == TyArray) && (to.IsPtr() || (to.IsInt() && to.Width == ir.W64)) {
		return val{arg: v.arg, typ: to}
	}
	if from.IsInt() && to.IsPtr() {
		if from.Width == ir.W64 {
			return val{arg: v.arg, typ: to}
		}
		v = c.convert(v, TypeUlong, line)
		return val{arg: v.arg, typ: to}
	}
	if !from.IsInt() || !to.IsInt() {
		// Defensive: should be rejected earlier.
		return val{arg: v.arg, typ: to}
	}
	if v.arg.K == ir.ArgImm {
		// Compile-time conversion of constants.
		x := v.arg.Imm
		if from.Signed && from.Width < ir.W64 {
			x = uint64(signExtendConst(x, from.Width))
		}
		return val{arg: ir.Imm(maskConst(x, to.Width)), typ: to}
	}
	if to.Width == from.Width {
		return val{arg: v.arg, typ: to}
	}
	r := c.newReg()
	if to.Width > from.Width {
		op := ir.OpZext
		if from.Signed {
			op = ir.OpSext
		}
		c.emit(ir.Instr{Op: op, W: from.Width, Dst: r, A: v.arg})
	} else {
		c.emit(ir.Instr{Op: ir.OpTrunc, W: to.Width, Dst: r, A: v.arg})
	}
	return val{arg: ir.Reg(r), typ: to}
}

func maskConst(v uint64, w ir.Width) uint64 {
	if w == ir.W64 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

func signExtendConst(v uint64, w ir.Width) int64 {
	switch w {
	case ir.W8:
		return int64(int8(v))
	case ir.W16:
		return int64(int16(v))
	case ir.W32:
		return int64(int32(v))
	}
	return int64(v)
}

// usualArith applies the usual arithmetic conversions: promote both
// operands to a common integer type of at least 32 bits; the result
// is unsigned if either promoted operand is unsigned.
func usualArith(a, b *Type) *Type {
	w := ir.W32
	if a.Width > w {
		w = a.Width
	}
	if b.Width > w {
		w = b.Width
	}
	signed := a.Signed && b.Signed
	return &Type{Kind: TyInt, Width: w, Signed: signed}
}

// address computes the address of an lvalue, returning the address
// operand and the element type.
func (c *compiler) address(e expression) (ir.Arg, *Type, error) {
	c.line = int32(e.exprLine())
	switch x := e.(type) {
	case *identExpr:
		sym := c.lookup(x.name)
		if sym == nil {
			return ir.Arg{}, nil, errf(x.exprLine(), "undefined variable %q", x.name)
		}
		if sym.reg >= 0 {
			return ir.Arg{}, nil, errf(x.exprLine(), "cannot take address of register variable %q", x.name)
		}
		r := c.newReg()
		if sym.isGlobal {
			c.emit(ir.Instr{Op: ir.OpGlobal, Dst: r, A: ir.Imm(uint64(sym.gidx))})
		} else {
			c.emit(ir.Instr{Op: ir.OpFrame, Dst: r, A: ir.Imm(uint64(sym.frameOff))})
		}
		return ir.Reg(r), sym.typ, nil
	case *indexExpr:
		base, err := c.expr(x.x)
		if err != nil {
			return ir.Arg{}, nil, err
		}
		var elem *Type
		switch base.typ.Kind {
		case TyPtr:
			elem = base.typ.Elem
		default:
			return ir.Arg{}, nil, errf(x.exprLine(), "indexing non-pointer type %s", base.typ)
		}
		idx, err := c.expr(x.idx)
		if err != nil {
			return ir.Arg{}, nil, err
		}
		idx = c.convert(idx, TypeLong, x.exprLine())
		// addr = base + idx*sizeof(elem)
		scaled := idx.arg
		if es := elem.Size(); es != 1 {
			r := c.newReg()
			c.emit(ir.Instr{Op: ir.OpMul, W: ir.W64, Dst: r, A: idx.arg, B: ir.Imm(uint64(es))})
			scaled = ir.Reg(r)
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpAdd, W: ir.W64, Dst: r, A: base.arg, B: scaled})
		return ir.Reg(r), elem, nil
	case *unaryExpr:
		if x.op == "*" {
			ptr, err := c.expr(x.x)
			if err != nil {
				return ir.Arg{}, nil, err
			}
			if !ptr.typ.IsPtr() {
				return ir.Arg{}, nil, errf(x.exprLine(), "dereference of non-pointer %s", ptr.typ)
			}
			return ptr.arg, ptr.typ.Elem, nil
		}
	}
	return ir.Arg{}, nil, errf(e.exprLine(), "expression is not addressable")
}

// expr lowers an expression to a typed value.
func (c *compiler) expr(e expression) (val, error) {
	c.line = int32(e.exprLine())
	switch x := e.(type) {
	case *numberLit:
		return val{arg: ir.Imm(x.val), typ: x.typ}, nil
	case *stringLit:
		gi, ok := c.strLits[x.val]
		if !ok {
			data := append([]byte(x.val), 0)
			gi = c.mod.AddGlobal(&ir.Global{
				Name: fmt.Sprintf(".str%d", len(c.strLits)),
				Size: int64(len(data)), Init: data,
			})
			c.strLits[x.val] = gi
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpGlobal, Dst: r, A: ir.Imm(uint64(gi))})
		return val{arg: ir.Reg(r), typ: PtrTo(TypeChar)}, nil
	case *identExpr:
		sym := c.lookup(x.name)
		if sym == nil {
			return val{}, errf(x.exprLine(), "undefined variable %q", x.name)
		}
		if sym.typ.Kind == TyArray {
			// Array decay: the value of an array is its address.
			addr, _, err := c.address(x)
			if err != nil {
				return val{}, err
			}
			return val{arg: addr, typ: PtrTo(sym.typ.Elem)}, nil
		}
		if sym.reg >= 0 {
			return val{arg: ir.Reg(sym.reg), typ: sym.typ}, nil
		}
		addr, _, err := c.address(x)
		if err != nil {
			return val{}, err
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpLoad, W: widthOf(sym.typ), Dst: r, A: addr})
		return val{arg: ir.Reg(r), typ: sym.typ}, nil
	case *unaryExpr:
		return c.unaryExpr(x)
	case *binaryExpr:
		return c.binaryExpr(x)
	case *indexExpr:
		addr, elem, err := c.address(x)
		if err != nil {
			return val{}, err
		}
		if elem.Kind == TyArray {
			return val{arg: addr, typ: PtrTo(elem.Elem)}, nil
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpLoad, W: widthOf(elem), Dst: r, A: addr})
		return val{arg: ir.Reg(r), typ: elem}, nil
	case *callExpr:
		return c.callExpr(x)
	case *spawnExpr:
		sig, ok := c.sigs[x.name]
		if !ok {
			return val{}, errf(x.exprLine(), "spawn of unknown function %q", x.name)
		}
		if len(x.args) != len(sig.params) {
			return val{}, errf(x.exprLine(), "spawn %s: want %d args, got %d", x.name, len(sig.params), len(x.args))
		}
		args, err := c.callArgs(x.args, sig.params, x.exprLine())
		if err != nil {
			return val{}, err
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpSpawn, Dst: r, Tag: x.name, Args: args})
		return val{arg: ir.Reg(r), typ: TypeLong}, nil
	case *castExpr:
		v, err := c.expr(x.x)
		if err != nil {
			return val{}, err
		}
		return c.convert(v, x.typ, x.exprLine()), nil
	case *sizeofExpr:
		return val{arg: ir.Imm(uint64(x.typ.Size())), typ: TypeLong}, nil
	}
	return val{}, errf(e.exprLine(), "unsupported expression")
}

func (c *compiler) unaryExpr(x *unaryExpr) (val, error) {
	switch x.op {
	case "-":
		v, err := c.expr(x.x)
		if err != nil {
			return val{}, err
		}
		if !v.typ.IsInt() {
			return val{}, errf(x.exprLine(), "negation of non-integer")
		}
		t := usualArith(v.typ, v.typ)
		v = c.convert(v, t, x.exprLine())
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpSub, W: t.Width, Dst: r, A: ir.Imm(0), B: v.arg})
		return val{arg: ir.Reg(r), typ: t}, nil
	case "!":
		v, err := c.expr(x.x)
		if err != nil {
			return val{}, err
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpEq, W: widthOf(v.typ), Dst: r, A: v.arg, B: ir.Imm(0)})
		return val{arg: ir.Reg(r), typ: TypeInt}, nil
	case "~":
		v, err := c.expr(x.x)
		if err != nil {
			return val{}, err
		}
		if !v.typ.IsInt() {
			return val{}, errf(x.exprLine(), "complement of non-integer")
		}
		t := usualArith(v.typ, v.typ)
		v = c.convert(v, t, x.exprLine())
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpXor, W: t.Width, Dst: r, A: v.arg, B: ir.Imm(^uint64(0))})
		return val{arg: ir.Reg(r), typ: t}, nil
	case "*":
		addr, elem, err := c.address(x)
		if err != nil {
			return val{}, err
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: ir.OpLoad, W: widthOf(elem), Dst: r, A: addr})
		return val{arg: ir.Reg(r), typ: elem}, nil
	case "&":
		addr, typ, err := c.address(x.x)
		if err != nil {
			return val{}, err
		}
		if typ.Kind == TyArray {
			return val{arg: addr, typ: PtrTo(typ.Elem)}, nil
		}
		return val{arg: addr, typ: PtrTo(typ)}, nil
	}
	return val{}, errf(x.exprLine(), "unsupported unary operator %q", x.op)
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (c *compiler) binaryExpr(x *binaryExpr) (val, error) {
	if x.op == "&&" || x.op == "||" {
		return c.shortCircuit(x)
	}
	a, err := c.expr(x.x)
	if err != nil {
		return val{}, err
	}
	b, err := c.expr(x.y)
	if err != nil {
		return val{}, err
	}
	// Pointer arithmetic: ptr ± int scales by element size.
	if (x.op == "+" || x.op == "-") && a.typ.IsPtr() && b.typ.IsInt() {
		b = c.convert(b, TypeLong, x.exprLine())
		scaled := b.arg
		if es := a.typ.Elem.Size(); es != 1 {
			r := c.newReg()
			c.emit(ir.Instr{Op: ir.OpMul, W: ir.W64, Dst: r, A: b.arg, B: ir.Imm(uint64(es))})
			scaled = ir.Reg(r)
		}
		op := ir.OpAdd
		if x.op == "-" {
			op = ir.OpSub
		}
		r := c.newReg()
		c.emit(ir.Instr{Op: op, W: ir.W64, Dst: r, A: a.arg, B: scaled})
		return val{arg: ir.Reg(r), typ: a.typ}, nil
	}
	// Pointer comparisons compare raw addresses.
	if cmpOps[x.op] && (a.typ.IsPtr() || b.typ.IsPtr()) {
		a = c.convert(a, TypeUlong, x.exprLine())
		b = c.convert(b, TypeUlong, x.exprLine())
	}
	if !a.typ.IsInt() || !b.typ.IsInt() {
		return val{}, errf(x.exprLine(), "operator %q requires integer operands (%s, %s)", x.op, a.typ, b.typ)
	}
	t := usualArith(a.typ, b.typ)
	a = c.convert(a, t, x.exprLine())
	b = c.convert(b, t, x.exprLine())
	var op ir.Op
	resTyp := t
	switch x.op {
	case "+":
		op = ir.OpAdd
	case "-":
		op = ir.OpSub
	case "*":
		op = ir.OpMul
	case "/":
		op = ir.OpUDiv
		if t.Signed {
			op = ir.OpSDiv
		}
	case "%":
		op = ir.OpURem
		if t.Signed {
			op = ir.OpSRem
		}
	case "&":
		op = ir.OpAnd
	case "|":
		op = ir.OpOr
	case "^":
		op = ir.OpXor
	case "<<":
		op = ir.OpShl
	case ">>":
		op = ir.OpLShr
		if t.Signed {
			op = ir.OpAShr
		}
	case "==":
		op, resTyp = ir.OpEq, TypeInt
	case "!=":
		op, resTyp = ir.OpNe, TypeInt
	case "<":
		op, resTyp = pick(t.Signed, ir.OpSlt, ir.OpUlt), TypeInt
	case "<=":
		op, resTyp = pick(t.Signed, ir.OpSle, ir.OpUle), TypeInt
	case ">":
		op, resTyp = pick(t.Signed, ir.OpSlt, ir.OpUlt), TypeInt
		a, b = b, a
	case ">=":
		op, resTyp = pick(t.Signed, ir.OpSle, ir.OpUle), TypeInt
		a, b = b, a
	default:
		return val{}, errf(x.exprLine(), "unsupported operator %q", x.op)
	}
	r := c.newReg()
	c.emit(ir.Instr{Op: op, W: t.Width, Dst: r, A: a.arg, B: b.arg})
	return val{arg: ir.Reg(r), typ: resTyp}, nil
}

func pick(cond bool, a, b ir.Op) ir.Op {
	if cond {
		return a
	}
	return b
}

// shortCircuit lowers && and || with branching, like C.
func (c *compiler) shortCircuit(x *binaryExpr) (val, error) {
	r := c.newReg()
	a, err := c.expr(x.x)
	if err != nil {
		return val{}, err
	}
	evalY := c.newBlock()
	endB := c.newBlock()
	// Seed the result with the outcome decided by the left side.
	if x.op == "&&" {
		c.emit(ir.Instr{Op: ir.OpMov, W: ir.W32, Dst: r, A: ir.Imm(0)})
		c.emit(ir.Instr{Op: ir.OpCondBr, A: a.arg, Blk: evalY, Blk2: endB})
	} else {
		c.emit(ir.Instr{Op: ir.OpMov, W: ir.W32, Dst: r, A: ir.Imm(1)})
		c.emit(ir.Instr{Op: ir.OpCondBr, A: a.arg, Blk: endB, Blk2: evalY})
	}
	c.setBlock(evalY)
	b, err := c.expr(x.y)
	if err != nil {
		return val{}, err
	}
	c.emit(ir.Instr{Op: ir.OpNe, W: widthOf(b.typ), Dst: r, A: b.arg, B: ir.Imm(0)})
	c.emit(ir.Instr{Op: ir.OpBr, Blk: endB})
	c.setBlock(endB)
	return val{arg: ir.Reg(r), typ: TypeInt}, nil
}

func (c *compiler) callArgs(args []expression, params []*Type, line int) ([]ir.Arg, error) {
	out := make([]ir.Arg, len(args))
	for i, a := range args {
		v, err := c.expr(a)
		if err != nil {
			return nil, err
		}
		v = c.convert(v, params[i], line)
		out[i] = v.arg
	}
	return out, nil
}
