package minc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the front end mangled fragments of real
// programs plus random token soup; every input must produce either a
// module or an error — never a panic.
func TestParserNeverPanics(t *testing.T) {
	base := `
int V[16];
func helper(int a, int b) int { return a * b + V[a & 15]; }
func main() int {
	int x = input32("x");
	if (x > 0 && x < 100) {
		for (int i = 0; i < x; i = i + 1) { V[i & 15] = helper(i, x); }
	}
	assert(x != 7, "seven");
	return x;
}`
	rng := rand.New(rand.NewSource(2024))
	frag := []string{
		"func", "int", "(", ")", "{", "}", "[", "]", ";", ",", "=", "+",
		"*", "&&", "||", "return", "if", "while", "for", "x", "0x",
		"\"str", "'c", "12345678901234567890123", "sizeof", "spawn",
		"(int)", "&", "input32", "/*", "//", "uchar", "-",
	}
	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = Compile("fuzz", src)
	}
	// Truncations of a valid program at every byte.
	for i := 0; i <= len(base); i += 7 {
		check(base[:i])
	}
	// Random single-edit mutations.
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		pos := rng.Intn(len(b))
		switch rng.Intn(3) {
		case 0:
			b[pos] = byte(rng.Intn(256))
		case 1:
			b = append(b[:pos], b[pos+1:]...)
		default:
			ins := frag[rng.Intn(len(frag))]
			b = append(b[:pos], append([]byte(ins), b[pos:]...)...)
		}
		check(string(b))
	}
	// Pure token soup.
	for trial := 0; trial < 200; trial++ {
		var sb strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			sb.WriteString(frag[rng.Intn(len(frag))])
			sb.WriteByte(' ')
		}
		check(sb.String())
	}
}

// TestCompiledFuzzProgramsRunSafely compiles random-but-valid
// arithmetic programs and checks the VM executes them without
// internal panics (failures are fine; they are the product).
func TestCompiledFuzzProgramsRunSafely(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"}
	for trial := 0; trial < 60; trial++ {
		var body strings.Builder
		body.WriteString("func main() int {\n\tint a = input32(\"v\");\n\tint b = input32(\"v\");\n\tint r = 1;\n")
		for i := 0; i < 1+rng.Intn(6); i++ {
			op := ops[rng.Intn(len(ops))]
			switch rng.Intn(3) {
			case 0:
				body.WriteString("\tr = r " + op + " a;\n")
			case 1:
				body.WriteString("\tr = a " + op + " b;\n")
			default:
				body.WriteString("\tr = r " + op + " b;\n")
			}
		}
		body.WriteString("\toutput(r);\n\treturn 0;\n}")
		mod, err := Compile("fuzzrun", body.String())
		if err != nil {
			t.Fatalf("valid-by-construction program rejected: %v\n%s", err, body.String())
		}
		if err := mod.Validate(); err != nil {
			t.Fatalf("generated IR invalid: %v", err)
		}
	}
}
