package minc_test

// This file lives in minc_test (not minc) because the corpus
// generator imports the minc front end; importing corpus from within
// package minc would cycle.

import (
	"math/rand"
	"testing"

	"execrecon/internal/corpus"
	"execrecon/internal/minc"
)

// TestGeneratedCorpusSeedsFuzz uses generator-emitted programs as
// fuzz corpus seeds: the corpus shapes (spawn-based skeletons, nested
// loops, call chains, casts) cover front-end surface the hand-written
// fuzz base misses. Every mutation must compile or error — never
// panic — and the unmutated seeds must all compile.
func TestGeneratedCorpusSeedsFuzz(t *testing.T) {
	scs, _, err := corpus.Generate(corpus.GenConfig{N: len(corpus.Patterns()), Seed: 99})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = minc.Compile("genfuzz", src)
	}
	rng := rand.New(rand.NewSource(3))
	frag := []string{
		"spawn", "join(", "lock(", "yield();", "free(", "malloc(",
		"(long)", "(int*)", "(short)", "input32", "assert(", "else",
		"for (", "}", ";", "int *",
	}
	for _, sc := range scs {
		if _, err := minc.Compile(sc.Name, sc.Src); err != nil {
			t.Errorf("%s: generated seed does not compile: %v", sc.Name, err)
			continue
		}
		// Truncations at sampled byte offsets.
		for i := 0; i <= len(sc.Src); i += 31 {
			check(sc.Src[:i])
		}
		// Random single-edit mutations.
		for trial := 0; trial < 40; trial++ {
			b := []byte(sc.Src)
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0:
				b[pos] = byte(rng.Intn(256))
			case 1:
				b = append(b[:pos], b[pos+1:]...)
			default:
				ins := frag[rng.Intn(len(frag))]
				b = append(b[:pos], append([]byte(ins), b[pos:]...)...)
			}
			check(string(b))
		}
	}
}
