package minc

import (
	"strconv"
	"strings"
)

// lexer tokenizes minc source.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole source up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekByte2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.peekByte2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekByte2() == '*':
			l.pos += 2
			for {
				if l.pos+1 >= len(l.src) {
					return errf(l.line, "unterminated block comment")
				}
				if l.src[l.pos] == '\n' {
					l.line++
				}
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					break
				}
				l.pos++
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-byte punctuation, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
	"<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	line := l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line}, nil
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		start := l.pos
		base := 10
		if c == '0' && (l.peekByte2() == 'x' || l.peekByte2() == 'X') {
			l.pos += 2
			start = l.pos
			base = 16
			for l.pos < len(l.src) && isHex(l.src[l.pos]) {
				l.pos++
			}
		} else {
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseUint(text, base, 64)
		if err != nil {
			return token{}, errf(line, "bad number %q", text)
		}
		return token{kind: tokNumber, text: text, num: v, line: line}, nil
	case isAlpha(c):
		start := l.pos
		for l.pos < len(l.src) && (isAlpha(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		return token{kind: k, text: text, line: line}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, errf(line, "unterminated string")
			}
			ch := l.src[l.pos]
			l.pos++
			if ch == '"' {
				break
			}
			if ch == '\\' {
				e, err := l.escape(line)
				if err != nil {
					return token{}, err
				}
				sb.WriteByte(e)
				continue
			}
			if ch == '\n' {
				return token{}, errf(line, "newline in string")
			}
			sb.WriteByte(ch)
		}
		return token{kind: tokString, text: sb.String(), line: line}, nil
	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return token{}, errf(line, "unterminated char literal")
		}
		var v byte
		if l.src[l.pos] == '\\' {
			l.pos++
			e, err := l.escape(line)
			if err != nil {
				return token{}, err
			}
			v = e
		} else {
			v = l.src[l.pos]
			l.pos++
		}
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return token{}, errf(line, "unterminated char literal")
		}
		l.pos++
		return token{kind: tokNumber, text: string(v), num: uint64(v), line: line}, nil
	}
	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, line: line}, nil
		}
	}
	return token{}, errf(line, "unexpected character %q", string(c))
}

// escape consumes one escape sequence body (after the backslash).
func (l *lexer) escape(line int) (byte, error) {
	if l.pos >= len(l.src) {
		return 0, errf(line, "unterminated escape")
	}
	ch := l.src[l.pos]
	l.pos++
	switch ch {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'x':
		if l.pos+1 >= len(l.src) || !isHex(l.src[l.pos]) || !isHex(l.src[l.pos+1]) {
			return 0, errf(line, "bad hex escape")
		}
		v, _ := strconv.ParseUint(l.src[l.pos:l.pos+2], 16, 8)
		l.pos += 2
		return byte(v), nil
	}
	return 0, errf(line, "unknown escape \\%c", ch)
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
