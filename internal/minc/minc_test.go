package minc

import (
	"strings"
	"testing"

	"execrecon/internal/dataflow"
)

func compileOK(t *testing.T, src string) {
	t.Helper()
	if _, err := Compile("test", src); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func compileErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Compile("test", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestCompileMinimal(t *testing.T) {
	compileOK(t, `func main() int { return 0; }`)
}

func TestCompileArithmetic(t *testing.T) {
	compileOK(t, `
func main() int {
	int a = 1 + 2 * 3 - 4 / 2;
	int b = (a << 2) | (a & 7) ^ (a % 3);
	uint c = (uint)a >> 1;
	long d = (long)b + (long)c;
	return (int)d;
}`)
}

func TestCompileControlFlow(t *testing.T) {
	compileOK(t, `
func f(int n) int {
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
		if (acc > 100) { break; }
		if (acc < 0) { continue; }
	}
	while (acc > 10) { acc = acc / 2; }
	return acc;
}
func main() int { return f(10); }`)
}

func TestCompileGlobalsArraysPointers(t *testing.T) {
	compileOK(t, `
int V[256];
int counter = 41;
char msg[16] = "hi";
int tbl[4] = {1, 2, 3, 4};

func main() int {
	V[0] = counter;
	int *p = &V[0];
	p[1] = *p + 1;
	char *s = msg;
	char c = s[0];
	char buf[8];
	buf[0] = c;
	int x = 5;
	int *px = &x;
	*px = 6;
	return x + (int)c;
}`)
}

func TestCompileFuncsAndBuiltins(t *testing.T) {
	compileOK(t, `
func helper(int a, int b) int { return a + b; }
func noret(int x) { output(x); }

func main() int {
	int v = input32("req");
	char b = input8("req");
	assert(v >= 0, "neg");
	char *p = malloc(16);
	p[0] = b;
	free(p);
	noret(helper(v, 2));
	long fp = fnptr("helper");
	long r = icall2(fp, 1, 2);
	return (int)r;
}`)
}

func TestCompileThreads(t *testing.T) {
	compileOK(t, `
int shared = 0;
func worker(int n) {
	lock(1);
	shared = shared + n;
	unlock(1);
}
func main() int {
	long t1 = spawn worker(1);
	long t2 = spawn worker(2);
	join(t1);
	join(t2);
	return shared;
}`)
}

func TestCompileShortCircuit(t *testing.T) {
	compileOK(t, `
func main() int {
	int a = 1;
	int b = 0;
	if (a > 0 && b == 0) { a = 2; }
	if (a > 5 || b < 3) { a = 3; }
	int c = a && b;
	int d = a || b;
	return c + d;
}`)
}

func TestErrors(t *testing.T) {
	compileErr(t, `func main() int { return x; }`, "undefined variable")
	compileErr(t, `func main() int { int a = 1; int a = 2; return a; }`, "redeclaration")
	compileErr(t, `func main() int { break; }`, "break outside loop")
	compileErr(t, `func f() int { return 0; } func f() int { return 1; }`, "duplicate function")
	compileErr(t, `int g; int g;`, "duplicate global")
	compileErr(t, `func main() int { unknown(1); return 0; }`, "unknown function")
	compileErr(t, `func f(int a) int { return a; } func main() int { return f(); }`, "want 1 args")
	compileErr(t, `func main() int { return 1 +; }`, "unexpected token")
	compileErr(t, `func main() int { int v = input32(5); return v; }`, "string literal")
}

func TestAddressOfRegisterSpills(t *testing.T) {
	// Taking &x forces x into the frame; the program must compile and
	// the pointer write must be visible through the named variable.
	compileOK(t, `
func main() int {
	int x = 1;
	int *p = &x;
	*p = 42;
	return x;
}`)
}

func TestLexerFeatures(t *testing.T) {
	compileOK(t, `
// line comment
/* block
   comment */
func main() int {
	int hex = 0x1F;
	int ch = 'a';
	int esc = '\n';
	char s[8];
	s[0] = 'a';
	return hex + ch + esc + (int)s[0];
}`)
}

func TestNegativeLiterals(t *testing.T) {
	compileOK(t, `
int g = -5;
int arr[2] = {-1, -2};
func main() int { int x = -3; return x + g + arr[0]; }`)
}

func TestParserEOFRobustness(t *testing.T) {
	bad := []string{
		`func main() int {`,
		`func main(`,
		`int g[`,
		`func main() int { if (`,
		`func`,
		`"str"`,
	}
	for _, src := range bad {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestSizeof(t *testing.T) {
	compileOK(t, `func main() int { return (int)(sizeof(int) + sizeof(char) + sizeof(long*)); }`)
}

func TestIRValidates(t *testing.T) {
	mod, err := Compile("t", `
func fib(int n) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(10); }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if mod.FuncByName("fib") == nil || mod.FuncByName("main") == nil {
		t.Fatal("functions missing")
	}
	dump := mod.Dump()
	if !strings.Contains(dump, "func fib") {
		t.Errorf("dump missing fib:\n%s", dump)
	}
}

func TestPruneUnreachableBlocks(t *testing.T) {
	// Statements after a return are parked in dead blocks by the
	// emitter; the prune pass must drop them before the module ships.
	mod, err := Compile("test", `
func main() int {
	int x = input32("x");
	if (x > 0) {
		return 1;
		output(99);
	}
	return 0;
	output(7);
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.FuncByName("main")
	c := dataflow.BuildCFG(f)
	for bi := range f.Blocks {
		if !c.Reachable[bi] {
			t.Errorf("block b%d survived pruning unreachable", bi)
		}
	}
	// The dead output(99)/output(7) must be gone entirely.
	if d := mod.Dump(); strings.Contains(d, "99") {
		t.Errorf("dead code survived pruning:\n%s", d)
	}
}

func TestCompileWithLintDeadStore(t *testing.T) {
	src := `
func main() int {
	int y = input32("y");
	int x = y + 1;
	x = 3;
	output(x);
	return 0;
}`
	mod, findings, err := CompileWithLint("test", src)
	if err != nil || mod == nil {
		t.Fatalf("compile: %v", err)
	}
	var dead int
	for _, f := range findings {
		if f.Rule == dataflow.RuleDeadStore {
			dead++
		}
		if f.Rule == dataflow.RuleMaybeUndef || f.Rule == dataflow.RuleUnreachable {
			t.Errorf("invariant rule leaked as advisory finding: %v", f)
		}
	}
	if dead == 0 {
		t.Errorf("expected a dead-store finding, got %v", findings)
	}
}

func TestCompileWithLintCleanProgram(t *testing.T) {
	_, findings, err := CompileWithLint("test", `
func main() int {
	int x = input32("x");
	assert(x != 41, "boom");
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("unexpected findings: %v", findings)
	}
}
