package minc

import "fmt"

// parser is a recursive-descent parser over the token slice.
type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return errf(p.cur().line, "expected %q, found %q", s, p.cur().String())
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return t, errf(t.line, "expected identifier, found %q", t.String())
	}
	p.advance()
	return t, nil
}

var baseTypes = map[string]*Type{
	"char": TypeChar, "short": TypeShort, "int": TypeInt, "long": TypeLong,
	"uchar": TypeUchar, "ushort": TypeUshort, "uint": TypeUint, "ulong": TypeUlong,
	"void": TypeVoid,
}

// atType reports whether the current token begins a type.
func (p *parser) atType() bool {
	t := p.cur()
	return t.kind == tokKeyword && baseTypes[t.text] != nil
}

// parseType parses a base type with pointer suffixes.
func (p *parser) parseType() (*Type, error) {
	t := p.cur()
	base := baseTypes[t.text]
	if t.kind != tokKeyword || base == nil {
		return nil, errf(t.line, "expected type, found %q", t.String())
	}
	p.advance()
	typ := base
	for p.acceptPunct("*") {
		typ = PtrTo(typ)
	}
	return typ, nil
}

func (p *parser) program() (*program, error) {
	prog := &program{}
	for p.cur().kind != tokEOF {
		if p.isKeyword("func") {
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, f)
			continue
		}
		g, err := p.globalDecl()
		if err != nil {
			return nil, err
		}
		prog.globals = append(prog.globals, g)
	}
	return prog, nil
}

func (p *parser) globalDecl() (*globalDecl, error) {
	line := p.cur().line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	g := &globalDecl{line: line, name: name.text, typ: typ}
	if p.acceptPunct("[") {
		n := p.cur()
		if n.kind != tokNumber {
			return nil, errf(n.line, "expected array length")
		}
		p.advance()
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		g.typ = &Type{Kind: TyArray, Elem: typ, Len: int64(n.num)}
	}
	if p.acceptPunct("=") {
		g.hasInit = true
		switch {
		case p.cur().kind == tokString:
			g.initStr = p.advance().text
		case p.acceptPunct("{"):
			for !p.acceptPunct("}") {
				n := p.cur()
				neg := false
				if p.isPunct("-") {
					neg = true
					p.advance()
					n = p.cur()
				}
				if n.kind != tokNumber {
					return nil, errf(n.line, "expected number in initializer")
				}
				p.advance()
				v := n.num
				if neg {
					v = -v
				}
				g.initVals = append(g.initVals, v)
				if !p.acceptPunct(",") && !p.isPunct("}") {
					return nil, errf(p.cur().line, "expected , or } in initializer")
				}
			}
		default:
			n := p.cur()
			neg := false
			if p.isPunct("-") {
				neg = true
				p.advance()
				n = p.cur()
			}
			if n.kind != tokNumber {
				return nil, errf(n.line, "expected constant initializer")
			}
			p.advance()
			v := n.num
			if neg {
				v = -v
			}
			g.initVals = append(g.initVals, v)
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) funcDecl() (*funcDecl, error) {
	line := p.cur().line
	p.advance() // func
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	f := &funcDecl{line: line, name: name.text, ret: TypeVoid}
	for !p.acceptPunct(")") {
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		f.params = append(f.params, param{name: pn.text, typ: typ})
		if !p.acceptPunct(",") && !p.isPunct(")") {
			return nil, errf(p.cur().line, "expected , or ) in parameters")
		}
	}
	if p.atType() {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) block() ([]statement, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []statement
	for !p.acceptPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, errf(p.cur().line, "unexpected end of file in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) statement() (statement, error) {
	line := p.cur().line
	switch {
	case p.atType():
		return p.declStatement()
	case p.isKeyword("if"):
		return p.ifStatement()
	case p.isKeyword("while"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &whileStmt{stmtBase{line}, cond, body}, nil
	case p.isKeyword("for"):
		return p.forStatement()
	case p.isKeyword("return"):
		p.advance()
		var val expression
		if !p.isPunct(";") {
			var err error
			val, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &returnStmt{stmtBase{line}, val}, nil
	case p.isKeyword("break"):
		p.advance()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &breakStmt{stmtBase{line}}, nil
	case p.isKeyword("continue"):
		p.advance()
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &continueStmt{stmtBase{line}}, nil
	}
	s, err := p.simpleStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStatement parses an assignment or expression statement
// (without the trailing semicolon), used by for-headers too.
func (p *parser) simpleStatement() (statement, error) {
	line := p.cur().line
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("=") {
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch lhs.(type) {
		case *identExpr, *indexExpr:
		case *unaryExpr:
			if lhs.(*unaryExpr).op != "*" {
				return nil, errf(line, "invalid assignment target")
			}
		default:
			return nil, errf(line, "invalid assignment target")
		}
		return &assignStmt{stmtBase{line}, lhs, rhs}, nil
	}
	return &exprStmt{stmtBase{line}, lhs}, nil
}

func (p *parser) declStatement() (statement, error) {
	line := p.cur().line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("[") {
		n := p.cur()
		if n.kind != tokNumber {
			return nil, errf(n.line, "expected array length")
		}
		p.advance()
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		typ = &Type{Kind: TyArray, Elem: typ, Len: int64(n.num)}
	}
	var init expression
	if p.acceptPunct("=") {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &declStmt{stmtBase{line}, name.text, typ, init}, nil
}

func (p *parser) ifStatement() (statement, error) {
	line := p.cur().line
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []statement
	if p.isKeyword("else") {
		p.advance()
		if p.isKeyword("if") {
			s, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			els = []statement{s}
		} else {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return &ifStmt{stmtBase{line}, cond, then, els}, nil
}

func (p *parser) forStatement() (statement, error) {
	line := p.cur().line
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	f := &forStmt{stmtBase: stmtBase{line}}
	if !p.isPunct(";") {
		if p.atType() {
			// Declaration in for-init shares declStatement's
			// semicolon handling.
			d, err := p.declForInit()
			if err != nil {
				return nil, err
			}
			f.init = d
		} else {
			s, err := p.simpleStatement()
			if err != nil {
				return nil, err
			}
			f.init = s
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if !p.isPunct(";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.cond = c
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		s, err := p.simpleStatement()
		if err != nil {
			return nil, err
		}
		f.post = s
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) declForInit() (statement, error) {
	line := p.cur().line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var init expression
	if p.acceptPunct("=") {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	return &declStmt{stmtBase{line}, name.text, typ, init}, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (expression, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (expression, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.advance()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{exprBase{t.line}, t.text, lhs, rhs}
	}
}

func (p *parser) unary() (expression, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.advance()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &unaryExpr{exprBase{t.line}, t.text, x}, nil
		case "(":
			// Possible cast: "(" type ")" unary.
			if p.peek().kind == tokKeyword && baseTypes[p.peek().text] != nil {
				p.advance() // (
				typ, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.unary()
				if err != nil {
					return nil, err
				}
				return &castExpr{exprBase{t.line}, typ, x}, nil
			}
		}
	}
	return p.postfix()
}

func (p *parser) postfix() (expression, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if p.isPunct("[") {
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &indexExpr{exprBase{t.line}, x, idx}
			continue
		}
		return x, nil
	}
}

func (p *parser) primary() (expression, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.advance()
		typ := TypeInt
		if t.num > 0x7fffffff {
			typ = TypeLong
		}
		return &numberLit{exprBase{t.line}, t.num, typ}, nil
	case t.kind == tokString:
		p.advance()
		return &stringLit{exprBase{t.line}, t.text}, nil
	case t.kind == tokKeyword && t.text == "sizeof":
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &sizeofExpr{exprBase{t.line}, typ}, nil
	case t.kind == tokKeyword && t.text == "spawn":
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		return &spawnExpr{exprBase{t.line}, name.text, args}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.isPunct("(") {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &callExpr{exprBase{t.line}, t.text, args}, nil
		}
		return &identExpr{exprBase{t.line}, t.text}, nil
	case p.isPunct("("):
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.line, "unexpected token %q", t.String())
}

func (p *parser) callArgs() ([]expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []expression
	for !p.acceptPunct(")") {
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.acceptPunct(",") && !p.isPunct(")") {
			return nil, errf(p.cur().line, "expected , or ) in call")
		}
	}
	return args, nil
}

var _ = fmt.Sprintf // keep fmt for future diagnostics
