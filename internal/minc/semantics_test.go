package minc_test

import (
	"testing"

	"execrecon/internal/minc"
	"execrecon/internal/vm"
)

// evalProg compiles and runs a program, returning its outputs.
func evalProg(t *testing.T, src string, w *vm.Workload) []uint64 {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res := vm.New(mod, vm.Config{Input: w}).Run("main")
	if res.Failure != nil {
		t.Fatalf("failure: %v", res.Failure)
	}
	return res.Output
}

// expectOutputs runs main and compares the output stream.
func expectOutputs(t *testing.T, src string, want ...uint64) {
	t.Helper()
	got := evalProg(t, src, vm.NewWorkload())
	if len(got) != len(want) {
		t.Fatalf("outputs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPrecedence(t *testing.T) {
	expectOutputs(t, `
func main() int {
	output(2 + 3 * 4);        // 14
	output((2 + 3) * 4);      // 20
	output(1 << 2 + 1);       // shift binds tighter than + in minc? No: << is level 8, + is 9 -> 1 << (2+1)?
	output(10 - 4 - 3);       // left assoc: 3
	output(2 * 3 % 4);        // left assoc: 2
	output(1 | 2 ^ 3 & 2);    // & > ^ > |: 1 | (2 ^ (3 & 2)) = 1
	return 0;
}`, 14, 20, 8, 3, 2, 1)
}

func TestCPrecedenceShift(t *testing.T) {
	// In C, + binds tighter than <<: 1 << 2 + 1 == 1 << 3 == 8.
	expectOutputs(t, `func main() int { output(1 << 2 + 1); return 0; }`, 8)
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right side of && must not evaluate when the left is false.
	expectOutputs(t, `
int calls = 0;
func bump() int { calls = calls + 1; return 1; }
func main() int {
	int a = 0;
	if (a == 1 && bump() == 1) { output(999); }
	output(calls);            // 0: bump never ran
	if (a == 0 || bump() == 1) { output(1); }
	output(calls);            // still 0
	if (a == 0 && bump() == 1) { output(2); }
	output(calls);            // 1
	return 0;
}`, 0, 1, 0, 2, 1)
}

func TestUnsignedVsSignedComparison(t *testing.T) {
	expectOutputs(t, `
func main() int {
	int s = -1;
	uint u = (uint)s;
	if (s < 0) { output(1); }         // signed: true
	if (u > 1000) { output(2); }      // unsigned: 0xffffffff large
	uint a = 1;
	int b = -2;
	// mixed: converted to unsigned (either operand unsigned)
	if (a < (uint)b) { output(3); }
	return 0;
}`, 1, 2, 3)
}

func TestIntegerWrap(t *testing.T) {
	expectOutputs(t, `
func main() int {
	int big = 2147483647;
	output((uint)(big + 1));          // signed wrap to INT_MIN
	uchar c = (uchar)255;
	output((int)(uchar)(c + (uchar)1)); // 8-bit wrap to 0
	short sh = (short)32767;
	output((uint)(int)(short)(sh + (short)1)); // 16-bit wrap
	return 0;
}`, 0x80000000, 0, 0xffff8000)
}

func TestPointerArithmeticScaling(t *testing.T) {
	expectOutputs(t, `
int arr[4];
func main() int {
	arr[0] = 10; arr[1] = 20; arr[2] = 30; arr[3] = 40;
	int *p = arr;
	output(*(p + 2));    // scaled by 4: arr[2]
	p = p + 1;
	output(p[1]);        // arr[2]
	output(*(p - 1));    // back to arr[0]
	long diff = (long)(p + 1) - (long)p;
	output(diff);        // 4 bytes
	return 0;
}`, 30, 30, 10, 4)
}

func TestCharAndStringHandling(t *testing.T) {
	expectOutputs(t, `
char msg[8] = "AB";
func main() int {
	output((int)msg[0]);
	output((int)msg[1]);
	output((int)msg[2]);  // NUL-ish (zero fill)
	char *s = "xy";
	output((int)s[1]);
	return 0;
}`, 'A', 'B', 0, 'y')
}

func TestDivisionTruncation(t *testing.T) {
	expectOutputs(t, `
func main() int {
	int a = -7;
	output((uint)(a / 2));   // -3 (truncation toward zero)
	output((uint)(a % 2));   // -1
	output(7 / 2);           // 3
	output(7 % 2);           // 1
	return 0;
}`, 0xfffffffd, 0xffffffff, 3, 1)
}

func TestForLoopVariants(t *testing.T) {
	expectOutputs(t, `
func main() int {
	int acc = 0;
	for (int i = 0; i < 5; i = i + 1) { acc = acc + i; }
	output(acc); // 10
	int j = 0;
	for (; j < 3; j = j + 1) { }
	output(j);   // 3
	int k = 0;
	for (k = 10; k > 0; ) { k = k - 3; }
	output((uint)k); // 10,7,4,1,-2
	int brk = 0;
	for (int i = 0; ; i = i + 1) {
		if (i == 4) { brk = i; break; }
	}
	output(brk); // 4
	int cont = 0;
	for (int i = 0; i < 6; i = i + 1) {
		if (i % 2 == 0) { continue; }
		cont = cont + i;
	}
	output(cont); // 1+3+5 = 9
	return 0;
}`, 10, 3, 0xfffffffe, 4, 9)
}

func TestNestedFunctionCalls(t *testing.T) {
	expectOutputs(t, `
func add(int a, int b) int { return a + b; }
func twice(int x) int { return add(x, x); }
func main() int {
	output(add(twice(3), twice(add(1, 1)))); // 6 + 4 = 10
	return 0;
}`, 10)
}

func TestGlobalInitializers(t *testing.T) {
	expectOutputs(t, `
int scalar = 42;
int negative = -7;
int list[4] = {10, 20, 30};
long wide = 1;
func main() int {
	output(scalar);
	output((uint)negative);
	output(list[0] + list[1] + list[2] + list[3]); // 60 (zero-filled tail)
	output(wide);
	return 0;
}`, 42, 0xfffffff9, 60, 1)
}

func TestSextZextLoads(t *testing.T) {
	expectOutputs(t, `
char signedb[2];
uchar unsignedb[2];
func main() int {
	signedb[0] = (char)0xF0;
	unsignedb[0] = (uchar)0xF0;
	int a = (int)signedb[0];    // sign-extended: -16
	int b = (int)unsignedb[0];  // zero-extended: 240
	output((uint)a);
	output(b);
	return 0;
}`, 0xfffffff0, 240)
}

func TestRecursionAndFrames(t *testing.T) {
	expectOutputs(t, `
func fact(int n) int {
	int local[2];
	local[0] = n;
	if (n <= 1) { return 1; }
	int r = fact(n - 1);
	return local[0] * r; // frame must survive the recursive call
}
func main() int { output(fact(6)); return 0; }`, 720)
}

func TestCastChains(t *testing.T) {
	expectOutputs(t, `
func main() int {
	long big = 0x1234567890;
	int truncated = (int)big;
	output((uint)truncated);        // 0x34567890
	char c = (char)truncated;       // 0x90 -> -112
	output((uint)(int)c);           // sign-extended
	return 0;
}`, 0x34567890, 0xffffff90)
}
