// Package minc implements a small C-like language — "mini C" — that
// compiles to the ir register machine. The evaluation programs of
// Table 1 (the PHP, SQLite, memcached, … bug analogs) are written in
// minc, playing the role the C/C++ applications play in the paper:
// realistic programs whose failing executions ER reconstructs.
//
// The language has signed and unsigned integers of four widths,
// pointers with C-style scaled arithmetic, arrays, functions, string
// literals, and intrinsics for program input (the non-determinism
// source, standing in for files/sockets/syscalls), failure injection
// (assert/abort), heap allocation, observable output, and threads
// (spawn/join/lock/unlock).
package minc

import "fmt"

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct   // operators and delimiters
	tokKeyword // reserved words
)

type token struct {
	kind tokKind
	text string
	num  uint64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokNumber:
		return fmt.Sprintf("%d", t.num)
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

var keywords = map[string]bool{
	"func": true, "return": true, "if": true, "else": true,
	"while": true, "for": true, "break": true, "continue": true,
	"char": true, "short": true, "int": true, "long": true,
	"uchar": true, "ushort": true, "uint": true, "ulong": true,
	"void": true, "sizeof": true, "spawn": true,
}

// Error is a positioned front-end error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minc:%d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
