package prod

import (
	"context"
	"sync/atomic"
	"time"

	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// TraceMsg is one shipped failure report: the raw PT ring blob, the
// failure signature, and the run metadata a triage layer needs to
// bucket and analyze the occurrence. The ring is shipped undecoded —
// decoding is the consumer's job, as in a real fleet where machines
// only copy the hardware buffer out.
type TraceMsg struct {
	// App names the application the machine runs. Triage interns
	// buckets by (app, signature) — distinct applications can share a
	// signature — and uses it to route deployment rollouts.
	App string
	// Machine is the producing machine's id.
	Machine int
	// Version is the deployment version the failing run executed.
	// Consumers discard occurrences recorded on out-of-date binaries
	// after a re-instrumentation rollout.
	Version int
	// Ring is the raw trace blob (nil when tracing was disabled).
	Ring *pt.Ring
	// Failure is the failure signature of the run.
	Failure *vm.Failure
	// Seed is the scheduler seed of the failing run.
	Seed int64
	// Instrs is the dynamic instruction count of the failing run.
	Instrs int64
}

// TraceSink accepts shipped trace messages. Emit reports whether the
// message was accepted (false means it was dropped at the boundary —
// e.g. a bounded ingest queue overflowing under a drop policy, or a
// fleet that has shut down).
type TraceSink interface {
	Emit(msg *TraceMsg) bool
}

// Deployment is a versioned module rollout. Version 0 is the pristine
// program; each ER re-instrumentation bumps the version.
type Deployment struct {
	Module  *ir.Module
	Version int
}

// Machine simulates one production box: it runs its application's
// workload mix in a loop under always-on PT-style tracing and ships a
// TraceMsg to the sink whenever a run fails. Deployments can be
// swapped concurrently (atomically) while the machine serves, the
// analog of a fleet-wide binary rollout.
type Machine struct {
	// App names the application (copied into every TraceMsg).
	App string
	// ID identifies the machine within the fleet.
	ID int
	// Entry is the entry function (default "main").
	Entry string
	// Gen supplies the workload and scheduler seed of run i. Runs
	// may be benign; only failing runs are shipped.
	Gen func(i int) (*vm.Workload, int64)
	// Sink receives failing runs' trace messages.
	Sink TraceSink
	// RingSize is the per-run trace buffer capacity (default 64 KB —
	// fleet machines ship small blobs, not the 64 MB analysis ring;
	// a blob that overflows is dropped by triage with accounting, so
	// size this to the application's failing-run trace length).
	RingSize int
	// Pace is an optional delay between runs, modelling production
	// request spacing (0 = run back-to-back).
	Pace time.Duration
	// Trace enables control-flow tracing (fleet default). When
	// false the machine only observes failures (deferred-tracing
	// fleets) and ships messages with a nil Ring.
	Trace bool
	// Overhead, when set, receives every run's wall time attributed
	// to (App, deployment version, traced?) — the raw material of the
	// recording-overhead SLO accounting. Nil disables (no timing
	// syscalls on the run path).
	Overhead *telemetry.Overhead

	dep     atomic.Pointer[Deployment]
	runs    atomic.Int64
	fails   atomic.Int64
	shipped atomic.Int64
	dropped atomic.Int64
}

// MachineRingSize is the default per-run trace buffer of a fleet
// machine.
const MachineRingSize = 64 << 10

// Deploy installs a new versioned module; the next run picks it up.
// Deploying a zero Deployment (nil Module) retires the machine: its
// serve loop exits after the current run — how the fleet winds down
// an application whose failure has been reconstructed.
func (m *Machine) Deploy(d Deployment) { m.dep.Store(&d) }

// Current returns the machine's active deployment (zero Deployment if
// none was installed).
func (m *Machine) Current() Deployment {
	if d := m.dep.Load(); d != nil {
		return *d
	}
	return Deployment{}
}

// MachineStats is a point-in-time view of a machine's counters.
type MachineStats struct {
	Runs    int64 // workload runs executed
	Fails   int64 // runs that failed
	Shipped int64 // trace messages accepted by the sink
	Dropped int64 // trace messages rejected by the sink
}

// Stats returns the machine's counters.
func (m *Machine) Stats() MachineStats {
	return MachineStats{
		Runs:    m.runs.Load(),
		Fails:   m.fails.Load(),
		Shipped: m.shipped.Load(),
		Dropped: m.dropped.Load(),
	}
}

// Serve runs workloads until ctx is cancelled. It is safe to run many
// machines concurrently against one sink (the sink is the MPSC
// boundary).
func (m *Machine) Serve(ctx context.Context) {
	entry := m.Entry
	if entry == "" {
		entry = "main"
	}
	ringSize := m.RingSize
	if ringSize <= 0 {
		ringSize = MachineRingSize
	}
	var ring *pt.Ring // reused across benign runs, shipped on failure
	for i := 0; ctx.Err() == nil; i++ {
		d := m.Current()
		if d.Module == nil {
			return // nothing deployed
		}
		w, seed := m.Gen(i)
		var enc *pt.Encoder
		if m.Trace {
			if ring == nil {
				ring = pt.NewRing(ringSize)
			} else {
				ring.Reset()
			}
			enc = pt.NewEncoder(ring)
		}
		var tracer vm.Tracer
		if enc != nil {
			tracer = enc
		}
		var runStart time.Time
		if m.Overhead != nil {
			runStart = time.Now()
		}
		res := vm.New(d.Module, vm.Config{Input: w, Tracer: tracer, Seed: seed}).Run(entry)
		if m.Overhead != nil {
			m.Overhead.RecordRun(m.App, d.Version, enc != nil, time.Since(runStart))
		}
		m.runs.Add(1)
		if res.Failure != nil {
			m.fails.Add(1)
			msg := &TraceMsg{
				App:     m.App,
				Machine: m.ID,
				Version: d.Version,
				Failure: res.Failure,
				Seed:    seed,
				Instrs:  res.Stats.Instrs,
			}
			if enc != nil {
				enc.Finish()
				msg.Ring = ring
				ring = nil // shipped; allocate a fresh one next run
			}
			if m.Sink.Emit(msg) {
				m.shipped.Add(1)
			} else {
				m.dropped.Add(1)
			}
		}
		if m.Pace > 0 {
			// Plain sleep: cheaper than a timer+select per run, and
			// Pace is sub-millisecond in practice, so cancellation
			// latency (checked at the top of the loop) stays small.
			time.Sleep(m.Pace)
		}
	}
}
