package prod_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/prod"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

func compileMachine(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return mod
}

// recordSink collects every emitted message; Accept toggles the
// accept/drop response so drop accounting can be exercised.
type recordSink struct {
	mu     sync.Mutex
	msgs   []*prod.TraceMsg
	accept bool
}

func (s *recordSink) Emit(msg *prod.TraceMsg) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, msg)
	return s.accept
}

func (s *recordSink) all() []*prod.TraceMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*prod.TraceMsg(nil), s.msgs...)
}

const mixSrc = `
func main() int {
	int x = input32("x");
	assert(x != 42, "the answer");
	return 0;
}`

func TestMachineShipsFailingRunsOnly(t *testing.T) {
	mod := compileMachine(t, mixSrc)
	sink := &recordSink{accept: true}
	m := &prod.Machine{
		App: "demo",
		ID:  3,
		Gen: func(i int) (*vm.Workload, int64) {
			if i%2 == 0 {
				return vm.NewWorkload().Add("x", 7), int64(i) // benign
			}
			return vm.NewWorkload().Add("x", 42), int64(i) // fails
		},
		Sink:  sink,
		Trace: true,
	}
	m.Deploy(prod.Deployment{Module: mod, Version: 0})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Serve(ctx) }()
	waitFor(t, func() bool { return m.Stats().Shipped >= 4 })
	cancel()
	<-done

	st := m.Stats()
	if st.Fails != st.Shipped {
		t.Errorf("fails=%d shipped=%d, want equal (accepting sink)", st.Fails, st.Shipped)
	}
	if st.Runs <= st.Fails {
		t.Errorf("runs=%d fails=%d: benign runs should also execute", st.Runs, st.Fails)
	}
	for i, msg := range sink.all() {
		if msg.App != "demo" || msg.Machine != 3 {
			t.Fatalf("msg %d routing metadata = %q/%d", i, msg.App, msg.Machine)
		}
		if msg.Failure == nil || msg.Failure.Kind != vm.FailAssert {
			t.Fatalf("msg %d failure = %v", i, msg.Failure)
		}
		if msg.Ring == nil {
			t.Fatalf("msg %d shipped without a ring despite Trace=true", i)
		}
		if msg.Seed%2 != 1 {
			t.Fatalf("msg %d seed = %d, want odd (failing runs only)", i, msg.Seed)
		}
		// The shipped blob must decode into the failing run's trace.
		tr, err := pt.Decode(msg.Ring)
		if err != nil {
			t.Fatalf("msg %d decode: %v", i, err)
		}
		if len(tr.Events) == 0 {
			t.Fatalf("msg %d decoded to an empty trace", i)
		}
	}
}

func TestMachineDeploymentVersionAndRetirement(t *testing.T) {
	mod := compileMachine(t, mixSrc)
	sink := &recordSink{accept: true}
	m := &prod.Machine{
		App:   "demo",
		Gen:   func(int) (*vm.Workload, int64) { return vm.NewWorkload().Add("x", 42), 1 },
		Sink:  sink,
		Trace: true,
	}
	m.Deploy(prod.Deployment{Module: mod, Version: 0})

	done := make(chan struct{})
	go func() { defer close(done); m.Serve(context.Background()) }()
	waitFor(t, func() bool { return m.Stats().Shipped >= 1 })

	// Roll out version 1; new messages must carry it.
	m.Deploy(prod.Deployment{Module: mod, Version: 1})
	waitFor(t, func() bool {
		for _, msg := range sink.all() {
			if msg.Version == 1 {
				return true
			}
		}
		return false
	})

	// Retiring (zero Deployment) must exit Serve without cancelling
	// the context — the fleet's wind-down path.
	m.Deploy(prod.Deployment{})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not exit after retirement deploy")
	}
	if got := m.Current(); got.Module != nil {
		t.Errorf("Current after retirement = %+v, want zero", got)
	}
	for _, msg := range sink.all() {
		if msg.Version != 0 && msg.Version != 1 {
			t.Errorf("unexpected deployment version %d", msg.Version)
		}
	}
}

func TestMachineDropAccountingAndUntraced(t *testing.T) {
	mod := compileMachine(t, mixSrc)
	sink := &recordSink{accept: false} // sink rejects everything
	m := &prod.Machine{
		App:   "demo",
		Gen:   func(int) (*vm.Workload, int64) { return vm.NewWorkload().Add("x", 42), 1 },
		Sink:  sink,
		Trace: false, // deferred-tracing fleet: no ring shipped
	}
	m.Deploy(prod.Deployment{Module: mod, Version: 0})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Serve(ctx) }()
	waitFor(t, func() bool { return m.Stats().Dropped >= 3 })
	cancel()
	<-done

	st := m.Stats()
	if st.Shipped != 0 {
		t.Errorf("shipped=%d with a rejecting sink, want 0", st.Shipped)
	}
	if st.Dropped != st.Fails {
		t.Errorf("dropped=%d fails=%d, want equal", st.Dropped, st.Fails)
	}
	for i, msg := range sink.all() {
		if msg.Ring != nil {
			t.Fatalf("msg %d carries a ring despite Trace=false", i)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}
